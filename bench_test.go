package stellar_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation and route-server scaling benches. Each benchmark runs the same
// driver as cmd/stellar-lab (at CI-friendly scale) and reports the
// headline metric of its experiment as a custom unit alongside the usual
// ns/op, so `go test -bench=. -benchmem` regenerates the evaluation.

import (
	"bytes"
	"fmt"
	"net/netip"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
	"stellar/internal/core"
	"stellar/internal/experiments"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitigation"
	"stellar/internal/netpkt"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// BenchmarkTable1Matrix regenerates Table 1 (qualitative comparison).
func BenchmarkTable1Matrix(b *testing.B) {
	var adv int
	for i := 0; i < b.N; i++ {
		adv = mitigation.AdvantageCount()[mitigation.AdvancedBlackholing]
	}
	b.ReportMetric(float64(adv), "advbh-advantages")
}

// BenchmarkFig2cCollateral regenerates Figure 2(c): the collateral-
// damage port-share series around the memcached attack.
func BenchmarkFig2cCollateral(b *testing.B) {
	cfg := experiments.DefaultFig2cConfig()
	var r experiments.Fig2cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2c(cfg)
	}
	b.ReportMetric(r.ShareDuring("11211")*100, "attackport-share-%")
}

// BenchmarkFig3aPortDist regenerates Figure 3(a): UDP source ports of
// blackholed traffic with Welch significance.
func BenchmarkFig3aPortDist(b *testing.B) {
	cfg := experiments.DefaultFig3aConfig()
	var r experiments.Fig3aResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig3a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	sig := 0
	for _, p := range r.Ports {
		if p.Significant {
			sig++
		}
	}
	b.ReportMetric(float64(sig), "significant-ports")
}

// BenchmarkFig3bPolicyUsage regenerates Figure 3(b).
func BenchmarkFig3bPolicyUsage(b *testing.B) {
	cfg := experiments.DefaultFig3bConfig()
	cfg.Announcements = 20000
	var r experiments.Fig3bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3b(cfg)
	}
	b.ReportMetric(r.Share["All"]*100, "all-policy-%")
}

// BenchmarkFig3cRTBHAttack regenerates Figure 3(c): the booter attack
// under RTBH. Metric: residual attack traffic after the blackhole.
func BenchmarkFig3cRTBHAttack(b *testing.B) {
	cfg := experiments.DefaultFig3cConfig()
	cfg.Members = 120
	var r experiments.Fig3cResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig3c(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ResidualBps/1e6, "residual-Mbps")
}

// BenchmarkFig9Scaling regenerates Figure 9's three feasibility grids by
// allocating on the TCAM model.
func BenchmarkFig9Scaling(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.N = 2
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(cfg)
	}
	ok := 0
	for _, g := range r.Grids {
		for _, c := range g.Cells {
			if c == "OK" {
				ok++
			}
		}
	}
	b.ReportMetric(float64(ok), "feasible-cells")
}

// BenchmarkFig10aCPUModel regenerates Figure 10(a): the CPU regression
// and the sustainable update rate at the 15% cap.
func BenchmarkFig10aCPUModel(b *testing.B) {
	cfg := experiments.DefaultFig10aConfig()
	var r experiments.Fig10aResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig10a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxRateAtCap, "updates-per-s-at-cap")
}

// BenchmarkFig10bQueueWait regenerates Figure 10(b): the waiting-time
// CDF of the controller's token-bucket queue at the 4/s limit.
func BenchmarkFig10bQueueWait(b *testing.B) {
	cfg := experiments.DefaultFig10bConfig()
	cfg.DurationSec = 1800
	var r experiments.Fig10bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10b(cfg)
	}
	b.ReportMetric(r.Curves[0].ECDF.P(1)*100, "pct-under-1s")
}

// BenchmarkFig10cStellarAttack regenerates Figure 10(c): the booter
// attack under Stellar. Metric: residual traffic after the drop phase.
func BenchmarkFig10cStellarAttack(b *testing.B) {
	cfg := experiments.DefaultFig10cConfig()
	cfg.Members = 120
	var r experiments.Fig10cResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig10c(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FinalBps/1e6, "residual-Mbps")
	b.ReportMetric(r.ShapedBps/1e6, "shaped-Mbps")
}

// BenchmarkSec52Functionality regenerates the Section 5.2 lab check.
func BenchmarkSec52Functionality(b *testing.B) {
	var r experiments.Sec52Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Sec52(9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BenignDeliveredBps/1e6, "benign-Mbps")
}

// ---------------------------------------------------------------------
// Ablation benches: design choices worth ablating.

// BenchmarkAblationEgressVsIngress compares the paper's egress filtering
// placement against ingress placement on a capacity-constrained small
// IXP: with egress filtering the attack crosses the platform core before
// dying, so a small core congests; ingress filtering (modeled as
// dropping at the source ports, i.e. before the core) does not. Metric:
// benign traffic delivered under each placement.
func BenchmarkAblationEgressVsIngress(b *testing.B) {
	target := netip.MustParseAddr("100.64.0.10")
	rng := stats.NewRand(1)
	peers := traffic.MakePeers(20)
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 8e9, 0, 1<<30, rng)
	attack.RampTicks = 0
	web := traffic.NewWebService(target, peers[:4], 4e8, rng)

	run := func(ingress bool) float64 {
		fab := fabric.New()
		fab.PlatformCapacityBps = 2e9 // small IXP: core is the bottleneck
		mac := netpkt.MustParseMAC("02:00:00:00:00:99")
		port := fabric.NewPort("victim", mac, 1e9)
		m := fabric.MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = 123
		_ = port.InstallRule(&fabric.Rule{ID: "drop", Match: m, Action: fabric.ActionDrop})
		_ = fab.AddPort(port)

		offers := append(attack.Offers(10, 1), web.Offers(10, 1)...)
		if ingress {
			// Ingress placement: matching traffic never reaches the core.
			var kept []fabric.Offer
			for _, o := range offers {
				if !(o.Flow.Proto == netpkt.ProtoUDP && o.Flow.SrcPort == 123) {
					kept = append(kept, o)
				}
			}
			offers = kept
		}
		st, err := fab.Tick(fabric.TickOffers{"victim": offers}, 1)
		if err != nil {
			b.Fatal(err)
		}
		return st.TotalDeliveredBytes() * 8
	}

	var egress, ingress float64
	for i := 0; i < b.N; i++ {
		egress = run(false)
		ingress = run(true)
	}
	b.ReportMetric(egress/1e6, "egress-delivered-Mbps")
	b.ReportMetric(ingress/1e6, "ingress-delivered-Mbps")
}

// BenchmarkAblationQueueRate sweeps the change queue's dequeue limit and
// reports the p95 signal-to-config delay — the trade between switch CPU
// protection and mitigation reaction time.
func BenchmarkAblationQueueRate(b *testing.B) {
	cfg := experiments.DefaultFig10bConfig()
	cfg.DurationSec = 1800
	cfg.Rates = []float64{1, 2, 4.33, 8, 16}
	var r experiments.Fig10bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10b(cfg)
	}
	for _, c := range r.Curves {
		b.ReportMetric(stats.Percentile(c.Waits, 95), fmt.Sprintf("p95s-at-%gps", c.Rate))
	}
}

// BenchmarkAblationAddPath measures the correctness cost of disabling
// ADD-PATH on the controller feed: with best-path-only delivery, a
// second member's blackholing rule for a shared prefix is lost. Metric:
// rules installed with and without ADD-PATH semantics.
func BenchmarkAblationAddPath(b *testing.B) {
	run := func(addPath bool) int {
		members := member.MakePopulation(member.PopulationConfig{N: 4, PortCapacityBps: 1e9, Seed: 2})
		// Two members share a delegated prefix.
		shared := netip.MustParsePrefix("100.99.0.0/24")
		members[0].Prefixes = append(members[0].Prefixes, shared)
		members[1].Prefixes = append(members[1].Prefixes, shared)
		x, err := ixp.Build(ixp.Config{
			ASN: 6695, BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
			Members: members, EnableStellar: true, QueueRate: 1000, QueueBurst: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		host := netip.MustParsePrefix("100.99.0.7/32")
		if err := x.Announce(members[0].Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
			b.Fatal(err)
		}
		if addPath {
			// Full feed: the second member's rule also arrives.
			if err := x.Announce(members[1].Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(53)}); err != nil {
				b.Fatal(err)
			}
		} else {
			// Best-path-only feed: the RS would suppress the non-best
			// announcement; the second rule never reaches the controller.
		}
		x.Mitigations.Process(x.Clock() + 10)
		return x.Mitigations.AppliedChanges()
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(with), "rules-with-addpath")
	b.ReportMetric(float64(without), "rules-without-addpath")
}

// BenchmarkAblationSignaling compares the two signaling transports of
// Section 4.2.1 end to end: in-band BGP extended communities (full wire
// marshal/unmarshal through a session pair) versus a direct API call
// (controller event injection). Metric: signals per second.
func BenchmarkAblationSignaling(b *testing.B) {
	prefix := netip.MustParsePrefix("100.10.10.10/32")
	spec := core.DropUDPSrcPort(123)
	ec, err := spec.Encode()
	if err != nil {
		b.Fatal(err)
	}
	attrs := bgp.PathAttrs{
		Origin:         bgp.OriginIGP,
		ASPath:         []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
		NextHop:        netip.MustParseAddr("80.81.192.10"),
		ExtCommunities: []bgp.ExtCommunity{ec},
	}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.PathPrefix{{Prefix: prefix}}}

	b.Run("bgp-extended-community", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wire, err := bgp.Marshal(u, nil)
			if err != nil {
				b.Fatal(err)
			}
			msg, _, err := bgp.Unmarshal(wire, nil)
			if err != nil {
				b.Fatal(err)
			}
			got := msg.(*bgp.Update)
			if specs := core.SignalsFrom(&got.Attrs); len(specs) != 1 {
				b.Fatal("signal lost")
			}
		}
	})
	b.Run("direct-api", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if specs := core.SignalsFrom(&u.Attrs); len(specs) != 1 {
				b.Fatal("signal lost")
			}
		}
	})
}

// BenchmarkEdgeRouterAllocation measures the hardware model's admission
// control throughput (the per-change cost inside the network manager).
func BenchmarkEdgeRouterAllocation(b *testing.B) {
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(350, hw.RTBHUnitN))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		port := i % 350
		if err := router.Allocate(port, 1, 3); err != nil {
			b.Fatal(err)
		}
		if err := router.Release(port, 1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricEgress measures the data-plane classification rate of a
// port carrying 16 installed blackholing rules and 200 concurrent flows.
func BenchmarkFabricEgress(b *testing.B) {
	mac := netpkt.MustParseMAC("02:00:00:00:00:01")
	port := fabric.NewPort("victim", mac, 1e9)
	for i := 0; i < 16; i++ {
		m := fabric.MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = int32(1000 + i)
		_ = port.InstallRule(&fabric.Rule{ID: string(rune('a' + i)), Match: m, Action: fabric.ActionDrop})
	}
	offers := make([]fabric.Offer, 200)
	src := netip.MustParseAddr("198.51.100.1")
	dst := netip.MustParseAddr("100.10.10.10")
	for i := range offers {
		offers[i] = fabric.Offer{
			Flow: netpkt.FlowKey{Src: src, Dst: dst, Proto: netpkt.ProtoUDP,
				SrcPort: uint16(i), DstPort: 443},
			Bytes: 1e4, Packets: 10,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Egress(offers, 1)
	}
}

// ---------------------------------------------------------------------
// Fabric classifier benchmarks (the compiled-classifier tentpole).
//
// benchRules builds a blackholing-deployment-shaped rule set: mostly
// per-source-port drop rules (the amplification signatures of Figure
// 3a), plus destination-prefix and MAC rules, so every index of the
// compiled classifier carries load. The "linear-scan" series is the
// retained baseline — the seed's first-match scan over Port.Rules() —
// so the speedup of the compiled path is measured in-tree. The shape
// intentionally mirrors benchFabric in cmd/stellar-lab/bench.go so the
// archived JSON numbers track these benchmarks.

func benchRules(n int) []*fabric.Rule {
	rules := make([]*fabric.Rule, 0, n)
	for i := 0; i < n; i++ {
		m := fabric.MatchAll()
		switch i % 8 {
		case 6:
			m.DstIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 20, byte(i >> 8), byte(i)}), 32)
		case 7:
			mac := netpkt.MAC{0x02, 0x77, 0, 0, byte(i >> 8), byte(i)}
			m.SrcMAC = &mac
		default:
			m.Proto = netpkt.ProtoUDP
			m.SrcPort = int32(1000 + i)
		}
		rules = append(rules, &fabric.Rule{ID: fmt.Sprintf("r%04d", i), Match: m, Action: fabric.ActionDrop})
	}
	return rules
}

func benchFlows(n int) []netpkt.FlowKey {
	flows := make([]netpkt.FlowKey, n)
	for i := range flows {
		srcPort := uint16(40000 + i) // benign: no rule matches
		if i%4 == 0 {
			srcPort = uint16(1000 + i) // hits a drop rule
		}
		flows[i] = netpkt.FlowKey{
			SrcMAC:  netpkt.MAC{0x02, 0x10, 0, 0, 0, byte(i)},
			Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{100, 10, 10, 10}),
			Proto:   netpkt.ProtoUDP,
			SrcPort: srcPort,
			DstPort: 443,
		}
	}
	return flows
}

// BenchmarkFabricClassifier compares classification cost at growing
// rule counts: the retained linear-scan baseline, the compiled
// classifier hashing on demand, and the compiled classifier fed
// pre-hashed flows (the egress hot-loop configuration). The acceptance
// bar is compiled ≥ 5x linear at 1024 rules.
func BenchmarkFabricClassifier(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), 1e9)
		for _, r := range benchRules(n) {
			if err := port.InstallRule(r); err != nil {
				b.Fatal(err)
			}
		}
		flows := benchFlows(512)
		hashes := make([]uint64, len(flows))
		for i, f := range flows {
			hashes[i] = f.Hash()
		}
		rules := port.Rules()
		b.Run(fmt.Sprintf("linear-scan/rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := flows[i%len(flows)]
				for _, r := range rules {
					if r.Match.Matches(f) {
						break
					}
				}
			}
		})
		b.Run(fmt.Sprintf("compiled/rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				port.Classify(flows[i%len(flows)])
			}
		})
		b.Run(fmt.Sprintf("compiled-prehashed/rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i % len(flows)
				port.ClassifyHashed(flows[j], hashes[j])
			}
		})
	}
}

// BenchmarkFabricEgress1kRules measures a full egress tick against 1024
// installed rules with pre-hashed offers — the configuration the
// parallel IXP tick runs per port.
func BenchmarkFabricEgress1kRules(b *testing.B) {
	port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), 1e9)
	for _, r := range benchRules(1024) {
		if err := port.InstallRule(r); err != nil {
			b.Fatal(err)
		}
	}
	flows := benchFlows(256)
	offers := make([]fabric.Offer, len(flows))
	for i, f := range flows {
		offers[i] = fabric.Offer{Flow: f, FlowHash: f.Hash(), Bytes: 1e4, Packets: 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Egress(offers, 1)
	}
}

// BenchmarkFabricParallelTick measures the platform tick across many
// member ports — the worker-pool fan-out the IXP simulation drives
// every tick.
func BenchmarkFabricParallelTick(b *testing.B) {
	const ports = 64
	fab := fabric.New()
	offers := make(fabric.TickOffers, ports)
	for p := 0; p < ports; p++ {
		name := fmt.Sprintf("AS%d", 64512+p)
		mac := netpkt.MAC{0x02, 0x20, 0, 0, byte(p >> 8), byte(p)}
		port := fabric.NewPort(name, mac, 1e9)
		for _, r := range benchRules(64) {
			if err := port.InstallRule(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := fab.AddPort(port); err != nil {
			b.Fatal(err)
		}
		flows := benchFlows(64)
		os := make([]fabric.Offer, len(flows))
		for i, f := range flows {
			f.SrcMAC = mac
			os[i] = fabric.Offer{Flow: f, FlowHash: f.Hash(), Bytes: 1e4, Packets: 10}
		}
		offers[name] = os
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fab.Tick(offers, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*ports)/b.Elapsed().Seconds(), "port-ticks/s")
}

// BenchmarkCompareMitigations regenerates the quantitative five-way
// comparison backing Table 1.
func BenchmarkCompareMitigations(b *testing.B) {
	cfg := experiments.DefaultCompareConfig()
	var r experiments.CompareResult
	for i := 0; i < b.N; i++ {
		r = experiments.CompareMitigations(cfg)
	}
	b.ReportMetric(r.Row(mitigation.AdvancedBlackholing).BenignDeliveredFrac*100, "advbh-benign-%")
	b.ReportMetric(r.Row(mitigation.RTBH).AttackResidualFrac*100, "rtbh-residual-%")
}

// BenchmarkCombinedTSS regenerates the Section 6 economics: Stellar as a
// scrubbing pre-filter.
func BenchmarkCombinedTSS(b *testing.B) {
	cfg := experiments.DefaultCompareConfig()
	var r experiments.CombinedTSSResult
	for i := 0; i < b.N; i++ {
		r = experiments.CombinedTSS(cfg)
	}
	b.ReportMetric(r.SavingsFrac*100, "scrub-cost-savings-%")
}

// ---------------------------------------------------------------------
// Route-server update-pipeline benchmarks (the sharded-RIB tentpole).
//
// The workload drives the update path from many concurrent peer
// sessions, each announcing batches of blackhole /32s — the attack-load
// shape of Section 5. "SingleLockBaseline" is the seed's pre-sharding
// design (bench_baseline_test.go): one global mutex over the whole
// pipeline, sort-based best-path on every change, one exported message
// per (peer, prefix). "ShardedParallel" is the current pipeline:
// lock-free import checks, per-shard RIB locks with cached best paths,
// batched per-peer exports.

const (
	benchPeers             = 100
	benchPrefixesPerUpdate = 10
)

func benchMakeUpdate(asn uint32, id int, c *uint32) *bgp.Update {
	u := &bgp.Update{Attrs: bgp.PathAttrs{
		Origin:      bgp.OriginIGP,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
		NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(id)}),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
	}}
	for k := 0; k < benchPrefixesPerUpdate; k++ {
		addr := netip.AddrFrom4([4]byte{100, byte(id), byte(*c >> 8), byte(*c)})
		*c++
		u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
	}
	return u
}

// BenchmarkRouteServerSingleLockBaseline drives the seed's single-lock
// pipeline replica: record its updates/s next to ShardedParallel's to see
// the speedup.
func BenchmarkRouteServerSingleLockBaseline(b *testing.B) {
	rs := newSeedRouteServer(6695, netip.MustParseAddr("80.81.193.66"))
	for i := 0; i < benchPeers; i++ {
		rs.addPeer(fmt.Sprintf("AS%d", 64512+i), uint32(64512+i))
	}
	var nextPeer atomic.Int64
	b.SetParallelism(4) // many sessions per core, like a real route server
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextPeer.Add(1)-1) % benchPeers
		name := fmt.Sprintf("AS%d", 64512+id)
		var c uint32
		for pb.Next() {
			u := benchMakeUpdate(uint32(64512+id), id, &c)
			if _, err := rs.handleUpdate(name, u); err != nil {
				panic(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
	b.ReportMetric(float64(b.N*benchPrefixesPerUpdate)/b.Elapsed().Seconds(), "prefixes/s")
}

// BenchmarkRouteServerShardedParallel is the sharded pipeline under the
// same 100-peer concurrent load.
func BenchmarkRouteServerShardedParallel(b *testing.B) {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	cfgs := make([]routeserver.PeerConfig, benchPeers)
	for i := range cfgs {
		cfgs[i] = routeserver.PeerConfig{
			Name:  fmt.Sprintf("AS%d", 64512+i),
			ASN:   uint32(64512 + i),
			BGPID: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		}
		if err := rs.AddPeer(cfgs[i]); err != nil {
			b.Fatal(err)
		}
	}
	var nextPeer atomic.Int64
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextPeer.Add(1)-1) % benchPeers
		cfg := cfgs[id]
		var c uint32
		for pb.Next() {
			u := benchMakeUpdate(cfg.ASN, id, &c)
			if _, _, err := rs.HandleUpdateBatch(cfg.Name, u); err != nil {
				panic(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
	b.ReportMetric(float64(b.N*benchPrefixesPerUpdate)/b.Elapsed().Seconds(), "prefixes/s")
}

// BenchmarkRouteServerWithdrawChurn measures announce/withdraw cycles —
// the blackholing signal churn of an attack ramp — on the sharded
// pipeline.
func BenchmarkRouteServerWithdrawChurn(b *testing.B) {
	const peers = 32
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	cfgs := make([]routeserver.PeerConfig, peers)
	for i := range cfgs {
		cfgs[i] = routeserver.PeerConfig{
			Name:  fmt.Sprintf("AS%d", 64512+i),
			ASN:   uint32(64512 + i),
			BGPID: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		}
		if err := rs.AddPeer(cfgs[i]); err != nil {
			b.Fatal(err)
		}
	}
	var nextPeer atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextPeer.Add(1)-1) % peers
		cfg := cfgs[id]
		var c uint32
		for pb.Next() {
			addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
			c++
			p := netip.PrefixFrom(addr, 32)
			u := &bgp.Update{
				Attrs: bgp.PathAttrs{
					Origin:      bgp.OriginIGP,
					ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{cfg.ASN}}},
					NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(id)}),
					Communities: []bgp.Community{bgp.CommunityBlackhole},
				},
				NLRI: []bgp.PathPrefix{{Prefix: p}},
			}
			if _, _, err := rs.HandleUpdateBatch(cfg.Name, u); err != nil {
				panic(err)
			}
			w := &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: p}}}
			if _, _, err := rs.HandleUpdateBatch(cfg.Name, w); err != nil {
				panic(err)
			}
		}
	})
}

// BenchmarkRIBParallel isolates the sharded table: parallel AddWithBest /
// RemoveWithBest / Best across a wide prefix space, at one shard (the
// old single-lock layout) and at the default shard count.
func BenchmarkRIBParallel(b *testing.B) {
	for _, shards := range []int{1, rib.DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tbl := rib.NewSharded(shards)
			attrs := bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
				NextHop: netip.MustParseAddr("192.0.2.1"),
			}
			var nextWorker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(nextWorker.Add(1) - 1)
				var c uint32
				for pb.Next() {
					addr := netip.AddrFrom4([4]byte{10, byte(w), byte(c >> 8), byte(c)})
					c++
					key := rib.PathKey{Prefix: netip.PrefixFrom(addr, 32), Peer: "p", PathID: uint32(w)}
					tbl.AddWithBest(key, 64512, attrs)
					tbl.Best(key.Prefix)
					tbl.RemoveWithBest(key)
				}
			})
		})
	}
}

// ---------------------------------------------------------------------
// Scenario-pipeline benchmarks (the sharded flow-monitoring tentpole).
//
// The workload is the paper's booter shape at multi-victim scale: every
// victim port carries an NTP amplification attack plus benign web
// traffic from a shared peer pool. "Baseline" is the retained
// pre-sharding pipeline (bench_baseline_test.go): N sequential
// single-victim loops, fresh offer slices per tick, a materialized
// DeliveredByFlow map per port tick, one map-based collector record per
// delivered flow and a map-walk active-peer count per tick.
// "ScenarioPipeline" is the live multi-victim engine: one parallel
// fabric pass per tick streaming delivered flows into per-worker
// collector shards, reused offer buffers and zero allocations per
// record on the observe path. Both run at GOMAXPROCS=4 (the acceptance
// configuration; the bar is pipeline >= 5x baseline).

const (
	scenarioBenchVictims = 4
	scenarioBenchPeers   = 48
	scenarioBenchTicks   = 40
)

// scenarioBenchSetup wires the shared IXP and per-victim sources for
// both the benchmarks and the pipeline-vs-baseline cross-check test.
func scenarioBenchSetup(tb testing.TB) (*ixp.IXP, []*member.Member, [][]ixp.Source) {
	tb.Helper()
	members := member.MakePopulation(member.PopulationConfig{
		N: scenarioBenchVictims + scenarioBenchPeers, HonoringFraction: 0.3,
		PortCapacityBps: 1e9, Seed: 9,
	})
	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
	})
	if err != nil {
		tb.Fatal(err)
	}
	peers := ixp.PeersOf(members[scenarioBenchVictims:])
	sources := make([][]ixp.Source, scenarioBenchVictims)
	for v := 0; v < scenarioBenchVictims; v++ {
		rng := stats.NewRand(uint64(31 + v))
		target := members[v].Prefixes[0].Addr().Next()
		attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 2e9, 0, 1<<30, rng)
		attack.RampTicks = 0
		web := traffic.NewWebService(target, peers[:12], 2e8, rng)
		sources[v] = []ixp.Source{attack, web}
	}
	return x, members, sources
}

// BenchmarkScenarioPipeline measures the live multi-victim engine:
// end-to-end scenario ticks per second (each tick serves every victim).
func BenchmarkScenarioPipeline(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	x, members, sources := scenarioBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var delivered float64
	for i := 0; i < b.N; i++ {
		victims := make([]ixp.Victim, scenarioBenchVictims)
		for v := range victims {
			victims[v] = ixp.Victim{Port: members[v].Name, Sources: sources[v]}
		}
		sc := &ixp.Scenario{IXP: x, Ticks: scenarioBenchTicks, Dt: 1, Victims: victims}
		series, err := sc.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		delivered = 0
		for _, s := range series {
			for _, smp := range s.Samples {
				delivered += smp.DeliveredBps / 8
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*scenarioBenchTicks)/b.Elapsed().Seconds(), "ticks/s")
	b.ReportMetric(delivered, "delivered-bytes")
}

// BenchmarkScenarioPipelineBaseline runs the identical workload through
// the frozen pre-sharding replica (seedScenarioRun).
func BenchmarkScenarioPipelineBaseline(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	x, members, sources := scenarioBenchSetup(b)
	victims := make([]seedScenarioVictim, scenarioBenchVictims)
	for v := range victims {
		victims[v] = seedScenarioVictim{port: members[v].Name, sources: sources[v]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var delivered float64
	for i := 0; i < b.N; i++ {
		var err error
		delivered, err = seedScenarioRun(x, victims, scenarioBenchTicks, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*scenarioBenchTicks)/b.Elapsed().Seconds(), "ticks/s")
	b.ReportMetric(delivered, "delivered-bytes")
}

// TestScenarioPipelineMatchesBaseline cross-checks the two engines on
// the bench workload: identical delivered-byte totals, so the speedup
// is measured on equal work.
func TestScenarioPipelineMatchesBaseline(t *testing.T) {
	x1, members1, sources1 := scenarioBenchSetup(t)
	victims := make([]ixp.Victim, scenarioBenchVictims)
	for v := range victims {
		victims[v] = ixp.Victim{Port: members1[v].Name, Sources: sources1[v]}
	}
	sc := &ixp.Scenario{IXP: x1, Ticks: 10, Dt: 1, Victims: victims}
	series, err := sc.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var livSum float64
	for _, s := range series {
		for _, smp := range s.Samples {
			livSum += smp.DeliveredBps / 8
		}
	}

	x2, members2, sources2 := scenarioBenchSetup(t)
	seedVictims := make([]seedScenarioVictim, scenarioBenchVictims)
	for v := range seedVictims {
		seedVictims[v] = seedScenarioVictim{port: members2[v].Name, sources: sources2[v]}
	}
	seedSum, err := seedScenarioRun(x2, seedVictims, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := livSum - seedSum; diff > 1e-6*seedSum || diff < -1e-6*seedSum {
		t.Fatalf("pipeline delivered %v bytes, baseline %v", livSum, seedSum)
	}
}

// benchReplayDump renders updates MRT BGP4MP records across peers
// announcing blackhole /32s, the BENCH_bgp.json replay workload at
// go-test scale.
func benchReplayDump(updates, peers, prefixesPer int) []byte {
	base := time.Unix(1700000000, 0)
	localIP := netip.MustParseAddr("80.81.192.1")
	var dump []byte
	var err error
	var c uint32
	for i := 0; i < updates; i++ {
		id := i % peers
		asn := uint32(64512 + id)
		peerIP := netip.AddrFrom4([4]byte{80, 81, 192, byte(id)})
		u := &bgp.Update{Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
			NextHop:     peerIP,
			Communities: []bgp.Community{bgp.CommunityBlackhole},
		}}
		for k := 0; k < prefixesPer; k++ {
			addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
			c++
			u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
		}
		dump, err = bgppipe.AppendMRTMessage(dump, base.Add(time.Duration(i)*time.Millisecond),
			asn, 6695, peerIP, localIP, u, nil)
		if err != nil {
			panic(err)
		}
	}
	return dump
}

// BenchmarkBGPRoundtrip measures the wire codec: one parse + marshal
// roundtrip of a representative UPDATE per iteration.
func BenchmarkBGPRoundtrip(b *testing.B) {
	u := &bgp.Update{Attrs: bgp.PathAttrs{
		Origin:      bgp.OriginIGP,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512, 65000, 65100}}},
		NextHop:     netip.MustParseAddr("80.81.192.12"),
		Communities: []bgp.Community{bgp.CommunityBlackhole, bgp.MakeCommunity(6695, 666)},
	}}
	for i := 0; i < 8; i++ {
		addr := netip.AddrFrom4([4]byte{100, 10, byte(i), 0})
		u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 24)})
	}
	wire, err := bgp.Marshal(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, _, err := bgp.Unmarshal(wire, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bgp.Marshal(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkBGPReplay measures the replay path end to end: an in-memory
// MRT capture streamed through the bgppipe scanner into a sharded
// route-server RIB — the workload behind the BENCH_bgp.json bar.
func BenchmarkBGPReplay(b *testing.B) {
	const replayUpdates, replayPeers, prefixesPer = 2000, 32, 8
	dump := benchReplayDump(replayUpdates, replayPeers, prefixesPer)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		rs := routeserver.New(routeserver.Config{
			ASN:              6695,
			BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		})
		apply := bgppipe.FeedRouteServer(rs, nil)
		sc := bgppipe.NewMRTScanner(bytes.NewReader(dump))
		for {
			rec, err := sc.Next()
			if err != nil {
				break
			}
			if err := apply(rec); err != nil {
				b.Fatal(err)
			}
			updates++
		}
	}
	if updates != b.N*replayUpdates {
		b.Fatalf("replayed %d updates, want %d", updates, b.N*replayUpdates)
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/s")
	b.ReportMetric(float64(updates*prefixesPer)/b.Elapsed().Seconds(), "prefixes/s")
}
