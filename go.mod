module stellar

go 1.22
