// Command ixpd runs a live, wire-level IXP control plane: a route server
// listening for real BGP-4 sessions over TCP, with a Stellar blackholing
// controller attached to its southbound feed and an emulated switching
// fabric behind it.
//
// Members connect with any BGP speaker that talks RFC 4271 + RFC 1997
// communities (the repository's bgpsession package suffices, see
// examples/quickstart for the in-process variant). Announcing a /32
// tagged with the BLACKHOLE community triggers RTBH; announcing it with
// Stellar's Advanced Blackholing extended community installs fine-
// grained drop/shape rules and logs them.
//
// The daemon is a bgppipe assembly: a listen stage terminates member
// TCP sessions onto the pipe's RX line, an rsfeed stage applies them to
// the route server, and the coalesced exports ride the TX line back
// through the listen stage to the owed members.
//
// Usage:
//
//	ixpd -bgp-listen 127.0.0.1:1790 -asn 6695 -open-irr
//
// With -open-irr the route server auto-registers each peer's first
// announcement origin in the IRR (lab mode); without it, register
// prefixes via -irr AS:prefix flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
	"stellar/internal/bgpsession"
	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
)

type irrFlags []string

func (f *irrFlags) String() string     { return strings.Join(*f, ",") }
func (f *irrFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	bgpListen := flag.String("bgp-listen", "", "TCP address terminating member BGP sessions")
	listen := flag.String("listen", "127.0.0.1:1790", "deprecated alias for -bgp-listen")
	asn := flag.Uint("asn", 6695, "IXP AS number")
	bgpID := flag.String("bgp-id", "80.81.192.1", "route server BGP identifier")
	blackholeNH := flag.String("blackhole-nexthop", "80.81.193.66", "RTBH next hop")
	openIRR := flag.Bool("open-irr", false, "auto-register announced origins in the IRR (lab mode)")
	tick := flag.Duration("tick", time.Second, "wall-clock interval between control ticks (TTL expiry, change-queue pacing)")
	var irrEntries irrFlags
	flag.Var(&irrEntries, "irr", "IRR entry ASN:prefix (repeatable)")
	flag.Parse()

	addr := *bgpListen
	if addr == "" {
		addr = *listen
	}
	d, err := newDaemon(uint32(*asn), *bgpID, *blackholeNH, *openIRR, irrEntries, tick.Seconds())
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := d.newPipe(ln)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ixpd: route server AS%d listening on %s (open-irr=%v)", *asn, ln.Addr(), *openIRR)
	// Wall-clock control ticks: one engine control tick per -tick
	// interval, so mitigation TTLs expire and the change queue drains
	// even while no BGP activity arrives.
	go func() {
		t := time.NewTicker(*tick)
		defer t.Stop()
		for range t.C {
			d.tick()
		}
	}()
	pipe.Start()
	if err := pipe.Wait(); err != nil {
		log.Fatal(err)
	}
}

type daemon struct {
	asn     uint32
	bgpID   netip.Addr
	openIRR bool

	rs        *routeserver.RouteServer
	policy    *irr.Policy
	ctl       *mitctl.Controller
	community *mitctl.CommunityChannel
	qosMgr    *core.QoSManager
	fab       *fabric.Fabric
	router    *hw.EdgeRouter

	// ticker drives the daemon's control stage through the engine's
	// real-time façade: each tick advances the virtual clock and drains
	// the mitigation change queue. Ticks come from two cadences — a
	// near-zero-dt tick per southbound route-server event (prompt
	// application without advancing wall-clock budgets), plus the
	// full-Dt wall-clock loop in main so TTLs expire even on an idle
	// exchange — serialized by tickMu (engine.Ticker itself is
	// single-caller).
	ticker *engine.Ticker
	tickMu sync.Mutex

	mu         sync.Mutex
	peerASN    map[string]uint32
	peerMAC    map[string]netpkt.MAC
	nextPort   int
	portIndex  map[string]int
	clock      float64
	loggedErrs int
}

// ControlTick implements engine.Control for the live daemon: advance
// the virtual clock by dt, apply every due configuration change, and
// log what happened — the same control stage a simulated run executes
// on the engine spine, driven here by real time and BGP activity.
func (d *daemon) ControlTick(_ int, dt float64) float64 {
	d.mu.Lock()
	d.clock += dt
	now := d.clock
	d.mu.Unlock()
	if n := d.ctl.Process(now); n > 0 {
		log.Printf("ixpd: applied %d configuration change(s)", n)
	}
	// Log only errors that appeared since the last tick, not the whole
	// accumulated history every time.
	total := d.ctl.ErrorCount()
	d.mu.Lock()
	fresh := total - d.loggedErrs
	d.loggedErrs = total
	d.mu.Unlock()
	if fresh > 0 {
		errs := d.ctl.Errors()
		if fresh > len(errs) {
			fresh = len(errs) // older ones aged out of the window
		}
		for _, e := range errs[len(errs)-fresh:] {
			log.Printf("ixpd: apply error: %s: %v", e.Change, e.Err)
		}
	}
	return now
}

// tick advances the control stage by one full -tick interval; safe
// from any goroutine.
func (d *daemon) tick() {
	d.tickMu.Lock()
	d.ticker.Tick()
	d.tickMu.Unlock()
}

// eventTick runs a control tick for a southbound BGP event. It advances
// the virtual clock by only a millisecond: the event should apply
// promptly, but TTL expiry and change-queue pacing are wall-clock
// budgets owned by the -tick loop — a burst of announcements must not
// fast-forward them.
func (d *daemon) eventTick() {
	d.tickMu.Lock()
	d.ticker.TickDt(0.001)
	d.tickMu.Unlock()
}

// newDaemon wires the daemon; tickSeconds is the -tick interval, the
// simulated seconds one wall-clock control tick advances.
func newDaemon(asn uint32, bgpID, blackholeNH string, openIRR bool, irrEntries []string, tickSeconds float64) (*daemon, error) {
	id, err := netip.ParseAddr(bgpID)
	if err != nil {
		return nil, err
	}
	nh, err := netip.ParseAddr(blackholeNH)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		asn: asn, bgpID: id, openIRR: openIRR,
		policy:    irr.NewPolicy(),
		fab:       fabric.New(),
		peerASN:   make(map[string]uint32),
		peerMAC:   make(map[string]netpkt.MAC),
		portIndex: make(map[string]int),
	}
	for _, e := range irrEntries {
		parts := strings.SplitN(e, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -irr entry %q (want ASN:prefix)", e)
		}
		var entryASN uint32
		if _, err := fmt.Sscanf(parts[0], "%d", &entryASN); err != nil {
			return nil, fmt.Errorf("bad -irr ASN in %q", e)
		}
		p, err := netip.ParsePrefix(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad -irr prefix in %q: %v", e, err)
		}
		d.policy.IRR.Register(entryASN, p)
	}
	d.rs = routeserver.New(routeserver.Config{
		ASN: asn, BlackholeNextHop: nh, Policy: d.policy,
	})
	d.router = hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(1024, hw.RTBHUnitN))
	d.qosMgr = core.NewQoSManager(d.fab, d.router, nil)
	d.ctl = mitctl.New(mitctl.Config{
		Manager: d.qosMgr,
		Validator: &mitctl.IRRValidator{
			Registry: d.policy.IRR,
			ASNOf: func(name string) (uint32, bool) {
				d.mu.Lock()
				defer d.mu.Unlock()
				asn, ok := d.peerASN[name]
				return asn, ok
			},
		},
		MemberMAC: func(name string) (netpkt.MAC, bool) {
			d.mu.Lock()
			defer d.mu.Unlock()
			mac, ok := d.peerMAC[name]
			return mac, ok
		},
	})
	d.community = mitctl.NewCommunityChannel(d.ctl)
	// The mitigation lifecycle is observable: log every transition.
	d.ctl.Subscribe(func(ev mitctl.Event) {
		m := ev.Mitigation
		switch ev.Type {
		case mitctl.EventRejected:
			log.Printf("ixpd: mitigation %s %s (owner %s): %s", m.ID, ev.Type, m.Requester, m.LastError)
		default:
			log.Printf("ixpd: mitigation %s %s (owner %s, %v toward %s)",
				m.ID, ev.Type, m.Requester, m.Action, m.Target)
		}
	})
	d.rs.SetMitigationSource(func() []routeserver.MitigationRow {
		d.mu.Lock()
		now := d.clock
		d.mu.Unlock()
		return mitctl.MitigationRows(d.ctl, now)
	})
	d.ticker = &engine.Ticker{Control: d, Dt: tickSeconds}
	d.rs.Subscribe(func(ev routeserver.ControllerEvent) {
		// The signal enters the lifecycle at the current virtual time;
		// the control tick that follows advances the clock and applies
		// what became due — the paper's one-tick signal-to-config delay,
		// identical to the simulated engine spine.
		d.mu.Lock()
		now := d.clock
		d.mu.Unlock()
		d.community.HandleEvent(ev, now)
		d.eventTick()
	})
	return d, nil
}

// newPipe assembles the daemon's wire pipeline on ln: a listen stage
// terminating member sessions, and an rsfeed stage applying them to
// the route server with the daemon's registration and lab-IRR hooks.
func (d *daemon) newPipe(ln net.Listener) (*bgppipe.Pipe, error) {
	pipe := bgppipe.New(bgppipe.Options{})
	lst := bgppipe.NewListen(ln, bgpsession.Config{LocalAS: d.asn, BGPID: d.bgpID})
	feed := &bgppipe.RSFeed{
		RS: d.rs,
		OnPeerUp: func(peer string, asn uint32, _ netip.Addr) {
			d.registerPeer(peer, asn)
			log.Printf("ixpd: session established with %s", peer)
		},
		OnPeerDown: func(peer string, err error) {
			log.Printf("ixpd: session with %s closed: %v", peer, err)
		},
		PreUpdate: d.preUpdate,
		OnReject: func(r routeserver.Rejection) {
			log.Printf("ixpd: rejected %s from %s: %s", r.Prefix, r.Peer, r.Reason)
		},
		OnError: func(peer string, err error) {
			log.Printf("ixpd: update from %s: %v", peer, err)
		},
	}
	if err := pipe.Attach(lst); err != nil {
		return nil, err
	}
	if err := pipe.Attach(feed); err != nil {
		return nil, err
	}
	return pipe, nil
}

// registerPeer attaches a member's fabric port and hardware slot on
// first sight (the route server registration itself is the rsfeed
// stage's job).
func (d *daemon) registerPeer(name string, asn uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, known := d.peerMAC[name]; !known {
		var mac netpkt.MAC
		mac[0] = 0x02
		mac[1] = 0x30
		mac[2] = byte(d.nextPort >> 8)
		mac[3] = byte(d.nextPort)
		if err := d.fab.AddPort(fabric.NewPort(name, mac, 10e9)); err != nil && err != fabric.ErrDuplicatePort {
			log.Printf("ixpd: add port %s: %v", name, err)
		}
		d.portIndex[name] = d.nextPort
		d.qosMgr.SetPortIndex(name, d.nextPort)
		d.peerMAC[name] = mac
		d.nextPort++
	}
	d.peerASN[name] = asn
}

// preUpdate implements the -open-irr lab mode: register the covering
// /24 (or the prefix itself when shorter) of each announcement so
// blackholing /32s validate.
func (d *daemon) preUpdate(_ string, u *bgp.Update) {
	if !d.openIRR {
		return
	}
	d.mu.Lock()
	origin := u.Attrs.OriginAS()
	for _, pp := range u.AllAnnounced() {
		p := pp.Prefix
		if p.Addr().Is4() && p.Bits() > 24 {
			p = netip.PrefixFrom(p.Addr(), 24).Masked()
		}
		if !d.policy.IRR.Authorized(origin, p) {
			d.policy.IRR.Register(origin, p)
		}
	}
	d.mu.Unlock()
}
