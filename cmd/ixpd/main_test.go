package main

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
	"stellar/internal/core"
)

// TestDaemonEndToEnd boots the daemon on a loopback listener, connects
// two members over real TCP BGP sessions, and exercises both services:
// RTBH (the /32 with the BLACKHOLE community reaches the other member
// with the null next hop) and Advanced Blackholing (the extended
// community installs a QoS rule on the announcing member's port).
func TestDaemonEndToEnd(t *testing.T) {
	d, err := newDaemon(6695, "80.81.192.1", "80.81.193.66", true, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := d.newPipe(ln)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()
	defer func() {
		pipe.Stop()
		if err := pipe.Wait(); err != nil {
			t.Errorf("pipe: %v", err)
		}
	}()

	dial := func(asn uint32, id string, handler bgpsession.Handler) *bgpsession.Session {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s := bgpsession.New(conn, bgpsession.Config{
			LocalAS: asn, BGPID: netip.MustParseAddr(id),
		}, handler)
		go s.Run()
		deadline := time.Now().Add(3 * time.Second)
		for s.State() != bgpsession.StateEstablished {
			if time.Now().After(deadline) {
				t.Fatalf("AS%d not established: %v", asn, s.Err())
			}
			time.Sleep(time.Millisecond)
		}
		return s
	}

	received := make(chan *bgp.Update, 8)
	observer := dial(64513, "10.0.0.13", func(e bgpsession.Event) {
		if e.Update != nil {
			received <- e.Update
		}
	})
	defer observer.Close()
	victim := dial(64512, "10.0.0.12", nil)
	defer victim.Close()
	time.Sleep(50 * time.Millisecond) // let registrations settle

	host := netip.MustParsePrefix("100.10.10.10/32")
	spec := core.DropUDPSrcPort(123)
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:         bgp.OriginIGP,
			ASPath:         []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop:        netip.MustParseAddr("80.81.192.12"),
			Communities:    []bgp.Community{bgp.CommunityBlackhole},
			ExtCommunities: []bgp.ExtCommunity{ec},
		},
		NLRI: []bgp.PathPrefix{{Prefix: host}},
	}
	if err := victim.SendUpdate(u); err != nil {
		t.Fatal(err)
	}

	// RTBH propagation: the observer sees the /32 with the blackhole
	// next hop.
	select {
	case got := <-received:
		if len(got.NLRI) != 1 || got.NLRI[0].Prefix != host {
			t.Fatalf("export: %+v", got)
		}
		if got.Attrs.NextHop != netip.MustParseAddr("80.81.193.66") {
			t.Fatalf("next hop: %v", got.Attrs.NextHop)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no export received")
	}

	// The looking glass shows the accepted route, flagged blackhole
	// (the RIB keeps the announced next hop; the RTBH rewrite happens
	// on export).
	glass := d.rs.Glass(host)
	if len(glass) != 1 || !glass[0].Best || glass[0].Peer != "AS64512" || !glass[0].Blackhole {
		t.Fatalf("looking glass: %+v", glass)
	}

	// Advanced Blackholing: the daemon's mitigation controller installed
	// a drop rule on the victim's fabric port.
	port, err := d.fab.PortByName("AS64512")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for port.RuleCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if port.RuleCount() != 1 {
		t.Fatalf("rules: %d (controller errors: %v)", port.RuleCount(), d.ctl.Errors())
	}
	if got := len(d.ctl.Active()); got != 1 {
		t.Fatalf("live mitigations: %d", got)
	}

	// Session teardown withdraws the member's routes and rules.
	victim.Close()
	deadline = time.Now().Add(3 * time.Second)
	for port.RuleCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if port.RuleCount() != 0 {
		t.Fatalf("rules after teardown: %d", port.RuleCount())
	}
}
