package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func genCSV(t *testing.T, args ...string) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	return lines
}

func TestHeaderAndRows(t *testing.T) {
	lines := genCSV(t, "-vector", "ntp", "-peers", "4", "-ticks", "5", "-rate", "1e8")
	if lines[0] != "tick,src_member,src_ip,proto,src_port,dst_port,bytes,packets" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no data rows")
	}
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		if len(f) != 8 {
			t.Fatalf("row has %d fields: %s", len(f), l)
		}
		tick, err := strconv.Atoi(f[0])
		if err != nil || tick < 0 || tick >= 5 {
			t.Fatalf("bad tick in %s", l)
		}
		if b, err := strconv.ParseFloat(f[6], 64); err != nil || b <= 0 {
			t.Fatalf("bad bytes in %s", l)
		}
	}
}

func TestNTPSourcePort(t *testing.T) {
	lines := genCSV(t, "-vector", "ntp", "-peers", "2", "-ticks", "2", "-rate", "1e8")
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		if f[4] != "123" {
			t.Fatalf("NTP amplification must source from port 123: %s", l)
		}
	}
}

func TestWebVector(t *testing.T) {
	lines := genCSV(t, "-vector", "web", "-peers", "3", "-ticks", "3", "-rate", "1e8")
	if len(lines) < 2 {
		t.Fatal("web workload emitted no flows")
	}
}

func TestDeterministicSeed(t *testing.T) {
	a := genCSV(t, "-vector", "dns", "-peers", "3", "-ticks", "4", "-seed", "7")
	b := genCSV(t, "-vector", "dns", "-peers", "3", "-ticks", "4", "-seed", "7")
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("same seed produced different output")
	}
	c := genCSV(t, "-vector", "dns", "-peers", "3", "-ticks", "4", "-seed", "8")
	if strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seed produced identical output")
	}
}

func TestStartTickDelaysAttack(t *testing.T) {
	lines := genCSV(t, "-vector", "memcached", "-peers", "2", "-ticks", "6", "-start", "3", "-rate", "1e8")
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		tick, _ := strconv.Atoi(f[0])
		if tick < 3 {
			t.Fatalf("attack traffic before start tick: %s", l)
		}
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-vector", "no-such-vector"}, &buf); err == nil {
		t.Fatal("unknown vector accepted")
	}
	if err := run([]string{"-target", "not-an-ip"}, &buf); err == nil {
		t.Fatal("bad target accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
