// Command attackgen emits synthetic attack and benign workloads as CSV
// time series — the hardware-accelerated traffic generator of the
// paper's lab setup, reduced to flow-level aggregates. Output columns:
// tick, src_member, src_ip, proto, src_port, dst_port, bytes, packets.
//
// Usage:
//
//	attackgen -vector ntp -rate 1e9 -peers 40 -ticks 600 -target 100.10.10.10
//	attackgen -vector web -rate 8e8 -peers 5 -ticks 600
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"

	"stellar/internal/fabric"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatalf("attackgen: %v", err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("attackgen", flag.ContinueOnError)
	vector := fs.String("vector", "ntp", "workload: ntp|dns|ldap|memcached|chargen|port-0|web")
	rate := fs.Float64("rate", 1e9, "aggregate rate in bits/s")
	peerCount := fs.Int("peers", 40, "number of source peers")
	ticks := fs.Int("ticks", 600, "duration in 1-second ticks")
	start := fs.Int("start", 0, "attack start tick")
	target := fs.String("target", "100.10.10.10", "victim address")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dst, err := netip.ParseAddr(*target)
	if err != nil {
		return fmt.Errorf("bad target: %v", err)
	}
	rng := stats.NewRand(*seed)
	peers := traffic.MakePeers(*peerCount)

	var offersAt func(tick int) []fabric.Offer
	if *vector == "web" {
		web := traffic.NewWebService(dst, peers, *rate, rng)
		offersAt = func(tick int) []fabric.Offer { return web.Offers(tick, 1) }
	} else {
		v, err := traffic.VectorByName(*vector)
		if err != nil {
			return err
		}
		atk := traffic.NewAttack(v, dst, peers, *rate, *start, *ticks, rng)
		offersAt = func(tick int) []fabric.Offer { return atk.Offers(tick, 1) }
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tick,src_member,src_ip,proto,src_port,dst_port,bytes,packets")
	for tick := 0; tick < *ticks; tick++ {
		for _, o := range offersAt(tick) {
			fmt.Fprintf(bw, "%d,%s,%s,%s,%d,%d,%.0f,%.0f\n",
				tick, o.Flow.SrcMAC, o.Flow.Src, o.Flow.Proto,
				o.Flow.SrcPort, o.Flow.DstPort, o.Bytes, o.Packets)
		}
	}
	return bw.Flush()
}
