// Command attackgen emits synthetic attack and benign workloads as CSV
// time series — the hardware-accelerated traffic generator of the
// paper's lab setup, reduced to flow-level aggregates. Output columns:
// tick, src_member, src_ip, proto, src_port, dst_port, bytes, packets.
//
// Usage:
//
//	attackgen -vector ntp -rate 1e9 -peers 40 -ticks 600 -target 100.10.10.10
//	attackgen -vector web -rate 8e8 -peers 5 -ticks 600
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"

	"stellar/internal/fabric"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	vector := flag.String("vector", "ntp", "workload: ntp|dns|ldap|memcached|chargen|port-0|web")
	rate := flag.Float64("rate", 1e9, "aggregate rate in bits/s")
	peerCount := flag.Int("peers", 40, "number of source peers")
	ticks := flag.Int("ticks", 600, "duration in 1-second ticks")
	start := flag.Int("start", 0, "attack start tick")
	target := flag.String("target", "100.10.10.10", "victim address")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	flag.Parse()

	dst, err := netip.ParseAddr(*target)
	if err != nil {
		log.Fatalf("attackgen: bad target: %v", err)
	}
	rng := stats.NewRand(*seed)
	peers := traffic.MakePeers(*peerCount)

	var offersAt func(tick int) []fabric.Offer
	if *vector == "web" {
		web := traffic.NewWebService(dst, peers, *rate, rng)
		offersAt = func(tick int) []fabric.Offer { return web.Offers(tick, 1) }
	} else {
		v, err := traffic.VectorByName(*vector)
		if err != nil {
			log.Fatalf("attackgen: %v", err)
		}
		atk := traffic.NewAttack(v, dst, peers, *rate, *start, *ticks, rng)
		offersAt = func(tick int) []fabric.Offer { return atk.Offers(tick, 1) }
	}

	w := os.Stdout
	fmt.Fprintln(w, "tick,src_member,src_ip,proto,src_port,dst_port,bytes,packets")
	for tick := 0; tick < *ticks; tick++ {
		for _, o := range offersAt(tick) {
			fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%.0f,%.0f\n",
				tick, o.Flow.SrcMAC, o.Flow.Src, o.Flow.Proto,
				o.Flow.SrcPort, o.Flow.DstPort, o.Bytes, o.Packets)
		}
	}
}
