package main

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
	"stellar/internal/routeserver"
)

// bgpBench is the wire-format section of the report: raw BGP codec
// throughput (parse + marshal roundtrips over a mixed UPDATE corpus)
// and MRT replay throughput — a BGP4MP capture streamed through the
// bgppipe scanner into a sharded route-server RIB, the cmd/ixpd replay
// path end to end.
type bgpBench struct {
	Messages             int     `json:"messages"`
	RoundtripMsgsPerSec  float64 `json:"roundtrip_msgs_per_sec"`
	RoundtripNsPerMsg    float64 `json:"roundtrip_ns_per_msg"`
	ReplayUpdates        int     `json:"replay_updates"`
	ReplayPrefixes       int     `json:"replay_prefixes"`
	ReplayUpdatesPerSec  float64 `json:"replay_updates_per_sec"`
	ReplayPrefixesPerSec float64 `json:"replay_prefixes_per_sec"`
}

// benchBGPCorpus builds a mixed wire-format corpus: UPDATEs of varying
// shape (path lengths, communities, MEDs, withdrawals) plus the
// session chatter (OPEN, KEEPALIVE, NOTIFICATION) a live feed carries.
func benchBGPCorpus() [][]byte {
	var corpus [][]byte
	add := func(m bgp.Message) {
		wire, err := bgp.Marshal(m, nil)
		if err != nil {
			panic(err)
		}
		corpus = append(corpus, wire)
	}
	add(bgp.NewOpen(64512, 90, netip.MustParseAddr("10.0.0.1")))
	add(&bgp.Keepalive{})
	add(&bgp.Notification{Code: bgp.NotifCease})
	med := uint32(100)
	for i := 0; i < 61; i++ {
		u := &bgp.Update{Attrs: bgp.PathAttrs{
			Origin: bgp.OriginIGP,
			ASPath: []bgp.ASPathSegment{{Type: bgp.ASSequence,
				ASNs: []uint32{uint32(64512 + i), 65000, uint32(65100 + i%7)}[:1+i%3]}},
			NextHop: netip.AddrFrom4([4]byte{80, 81, 192, byte(i)}),
		}}
		if i%3 == 0 {
			u.Attrs.Communities = []bgp.Community{bgp.CommunityBlackhole, bgp.MakeCommunity(6695, uint16(i))}
		}
		if i%4 == 0 {
			u.Attrs.MED = &med
		}
		for k := 0; k <= i%8; k++ {
			addr := netip.AddrFrom4([4]byte{100, byte(i), byte(k), 0})
			u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 24)})
		}
		if i%5 == 0 {
			addr := netip.AddrFrom4([4]byte{101, byte(i), 0, 0})
			u.Withdrawn = append(u.Withdrawn, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 24)})
		}
		add(u)
	}
	return corpus
}

// benchBGPDump renders updates MRT BGP4MP records spread across peers,
// prefixesPer prefixes each, and reports the dump plus the prefix count.
func benchBGPDump(updates, peers, prefixesPer int) ([]byte, int) {
	base := time.Unix(1700000000, 0)
	localIP := netip.MustParseAddr("80.81.192.1")
	var dump []byte
	var err error
	prefixes := 0
	var c uint32
	for i := 0; i < updates; i++ {
		id := i % peers
		asn := uint32(64512 + id)
		peerIP := netip.AddrFrom4([4]byte{80, 81, 192, byte(id)})
		u := &bgp.Update{Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
			NextHop: peerIP,
			// Blackhole /32s pass the import policy at any length.
			Communities: []bgp.Community{bgp.CommunityBlackhole},
		}}
		for k := 0; k < prefixesPer; k++ {
			addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
			c++
			u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
		}
		prefixes += prefixesPer
		dump, err = bgppipe.AppendMRTMessage(dump, base.Add(time.Duration(i)*time.Millisecond),
			asn, 6695, peerIP, localIP, u, nil)
		if err != nil {
			panic(err)
		}
	}
	return dump, prefixes
}

// benchBGP measures the wire-format pipeline: codec roundtrips over the
// mixed corpus, then an MRT replay into a sharded RIB via the same
// scanner + FeedRouteServer path the engine replay drivers use.
func benchBGP(messages int) (*bgpBench, error) {
	corpus := benchBGPCorpus()
	start := time.Now()
	for i := 0; i < messages; i++ {
		wire := corpus[i%len(corpus)]
		msg, _, err := bgp.Unmarshal(wire, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: corpus parse: %w", err)
		}
		if _, err := bgp.Marshal(msg, nil); err != nil {
			return nil, fmt.Errorf("bench: corpus marshal: %w", err)
		}
	}
	elapsed := time.Since(start)

	const replayPeers, prefixesPer = 32, 8
	replayUpdates := messages / 4
	if replayUpdates < replayPeers {
		replayUpdates = replayPeers
	}
	dump, prefixes := benchBGPDump(replayUpdates, replayPeers, prefixesPer)
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	apply := bgppipe.FeedRouteServer(rs, nil)
	sc := bgppipe.NewMRTScanner(bytes.NewReader(dump))
	applied := 0
	replayStart := time.Now()
	for {
		rec, err := sc.Next()
		if err != nil {
			break
		}
		if err := apply(rec); err != nil {
			return nil, fmt.Errorf("bench: replay apply: %w", err)
		}
		applied++
	}
	replayElapsed := time.Since(replayStart).Seconds()
	if applied != replayUpdates {
		return nil, fmt.Errorf("bench: replay applied %d of %d updates", applied, replayUpdates)
	}

	return &bgpBench{
		Messages:             messages,
		RoundtripMsgsPerSec:  float64(messages) / elapsed.Seconds(),
		RoundtripNsPerMsg:    float64(elapsed.Nanoseconds()) / float64(messages),
		ReplayUpdates:        replayUpdates,
		ReplayPrefixes:       prefixes,
		ReplayUpdatesPerSec:  float64(replayUpdates) / replayElapsed,
		ReplayPrefixesPerSec: float64(prefixes) / replayElapsed,
	}, nil
}
