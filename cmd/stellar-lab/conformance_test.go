package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stellar/internal/conformance"
)

func TestConformanceCommandList(t *testing.T) {
	var buf bytes.Buffer
	if err := runConformanceCommand([]string{"-list"}, &buf); err != nil {
		t.Fatalf("list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"baseline-rtbh", "sec52-lab", "mrt-replay"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestConformanceCommandJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	if err := runConformanceCommand([]string{"-json", path, "trace-replay"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "trace-replay") {
		t.Errorf("text report missing profile name:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep conformance.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Total != 1 || !rep.Pass {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Profiles[0].Profile != "trace-replay" {
		t.Fatalf("wrong profile in report: %q", rep.Profiles[0].Profile)
	}
}

func TestConformanceCommandFaultsOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := runConformanceCommand([]string{"-faults-only", "-list"}, &buf); err != nil {
		t.Fatalf("faults-only list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"tcam-squeeze-degrade", "flap-mid-mitigation", "queue-stall-recovery", "replay-with-loss"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos subset missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "baseline-rtbh") {
		t.Errorf("fault-free profile in chaos subset:\n%s", out)
	}
}

func TestConformanceCommandUnknownProfile(t *testing.T) {
	var buf bytes.Buffer
	err := runConformanceCommand([]string{"no-such-profile"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("want unknown-profile error, got %v", err)
	}
}
