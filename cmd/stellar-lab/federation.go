package main

// The federation subcommand runs a synthetic multi-IXP deployment — N
// exchanges with shared victims and cross-IXP peers, mitigation gossip
// between them — and prints the consolidated report. benchFederation
// is the matching bench section: a 10-exchange, ~1M-member-flow run
// measuring aggregate flow throughput and signaling propagation.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"stellar/internal/federation"
)

func runFederationCommand(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("federation", flag.ContinueOnError)
	exchanges := fs.Int("exchanges", 4, "number of exchanges")
	victims := fs.Int("victims", 2, "shared victims present at every exchange")
	sharedPeers := fs.Int("shared-peers", 8, "cross-IXP peers announcing at every exchange")
	localPeers := fs.Int("local-peers", 24, "peers private to each exchange")
	ticks := fs.Int("ticks", 120, "simulated ticks")
	delay := fs.Int("gossip-delay", 1, "gossip propagation delay in ticks")
	mitigate := fs.Int("mitigate-tick", 30, "tick the victims request mitigation at exchange 0 (negative: never)")
	seed := fs.Uint64("seed", 7, "population and traffic seed")
	jsonPath := fs.String("json", "", "also write the consolidated report as JSON to this path ('-' for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: stellar-lab federation [-exchanges N] [-victims N] [-ticks N] [-gossip-delay N] [-json PATH]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	fed, err := federation.BuildSynthetic(federation.TopologyConfig{
		Exchanges:        *exchanges,
		Victims:          *victims,
		SharedPeers:      *sharedPeers,
		LocalPeers:       *localPeers,
		Ticks:            *ticks,
		GossipDelayTicks: *delay,
		MitigateTick:     *mitigate,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	report, err := fed.Run()
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Format())

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			if _, err := w.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// federationBench is the multi-IXP section of the bench report: a
// federation of exchanges driven on one clock with gossip between
// their mitigation controllers, measured as aggregate generated flow
// throughput plus the propagation lag of the mitigation signal. The
// regression bars demand barFederationFlowsPerSec aggregate flows/s
// and that every signal reaches every exchange within the configured
// gossip delay.
type federationBench struct {
	Exchanges             int                  `json:"exchanges"`
	Victims               int                  `json:"victims"`
	SharedPeers           int                  `json:"shared_peers"`
	LocalPeersPerExchange int                  `json:"local_peers_per_exchange"`
	Ticks                 int                  `json:"ticks"`
	GOMAXPROCS            int                  `json:"gomaxprocs"`
	GossipDelayTicks      int                  `json:"gossip_delay_ticks"`
	Seconds               float64              `json:"seconds"`
	OfferedFlows          int64                `json:"offered_flows"`
	FlowsPerSec           float64              `json:"flows_per_sec"`
	TicksPerSec           float64              `json:"ticks_per_sec"`
	Signals               int                  `json:"signals"`
	SignalsComplete       int                  `json:"signals_complete"`
	MaxPropagationTicks   int                  `json:"max_propagation_ticks"`
	DepthRuns             []federationDepthRun `json:"depth_runs,omitempty"`
}

// federationDepthRun is one point of the federation section's depth
// dimension: the identical topology with every per-exchange engine at
// the given pipeline depth, all fold work sharing the one pool.
type federationDepthRun struct {
	Depth       int     `json:"depth"`
	FlowsPerSec float64 `json:"flows_per_sec"`
	TicksPerSec float64 `json:"ticks_per_sec"`
}

// benchFederation runs the synthetic topology once as a short warmup,
// then once per pipeline depth (1, 2 and 4) at full length — timing
// only Run (the synchronized engines), not topology construction.
// Federations are single-use like the engines they wrap, so each run
// builds its own. The Depth 2 run (the engine default) is the headline
// section; the sweep fills depth_runs, every run on the identical
// topology with all per-exchange fold work sharing the one pool.
func benchFederation(exchanges, victims, localPeers, ticks, delay int) (*federationBench, error) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const sharedPeers = 8
	const headlineDepth = 2
	build := func(nTicks, depth int) (*federation.Federation, error) {
		return federation.BuildSynthetic(federation.TopologyConfig{
			Exchanges:        exchanges,
			Victims:          victims,
			SharedPeers:      sharedPeers,
			LocalPeers:       localPeers,
			Ticks:            nTicks,
			GossipDelayTicks: delay,
			Depth:            depth,
			Seed:             9,
		})
	}

	warmTicks := ticks / 4
	if warmTicks < 20 {
		warmTicks = 20
	}
	warm, err := build(warmTicks, headlineDepth)
	if err != nil {
		return nil, err
	}
	if _, err := warm.Run(); err != nil {
		return nil, err
	}

	res := &federationBench{
		Exchanges:             exchanges,
		Victims:               victims,
		SharedPeers:           sharedPeers,
		LocalPeersPerExchange: localPeers,
		Ticks:                 ticks,
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		GossipDelayTicks:      delay,
	}
	for _, depth := range []int{1, 2, 4} {
		fed, err := build(ticks, depth)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := fed.Run()
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		res.DepthRuns = append(res.DepthRuns, federationDepthRun{
			Depth:       depth,
			FlowsPerSec: float64(rep.OfferedFlows) / secs,
			TicksPerSec: float64(ticks) / secs,
		})
		if depth == headlineDepth {
			res.Seconds = secs
			res.OfferedFlows = rep.OfferedFlows
			res.FlowsPerSec = float64(rep.OfferedFlows) / secs
			res.TicksPerSec = float64(ticks) / secs
			res.Signals = len(rep.Signals)
			res.MaxPropagationTicks = rep.MaxPropagationTicks()
			for _, s := range rep.Signals {
				if s.Complete {
					res.SignalsComplete++
				}
			}
		}
	}
	return res, nil
}
