// Command stellar-lab regenerates every table and figure of the paper's
// evaluation from the simulation substrate. Each subcommand runs one
// experiment and prints the corresponding rows/series.
//
// Usage:
//
//	stellar-lab <experiment> [-seed N] [-scale small|full]
//
// Experiments: table1, fig2c, fig3a, fig3b, fig3c, fig9, fig10a,
// fig10b, fig10c, sec52, all. The conformance subcommand runs the
// declarative scenario matrix instead of a single experiment; the
// federation subcommand runs a synthetic multi-IXP deployment with
// cross-IXP mitigation gossip.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"stellar/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "stellar-lab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: stellar-lab <table1|fig2c|fig3a|fig3b|fig3c|fig9|fig10a|fig10b|fig10c|sec52|compare|combined-tss|bench|conformance|federation|all> [flags]")
	}
	name := args[0]
	if name == "bench" {
		// Route-server throughput probe with JSON output (its own flags).
		return runBenchCommand(args[1:], os.Stdout)
	}
	if name == "conformance" {
		// Declarative scenario matrix with JSON report (its own flags).
		return runConformanceCommand(args[1:], os.Stdout)
	}
	if name == "federation" {
		// Synthetic multi-IXP run with gossip signaling (its own flags).
		return runFederationCommand(args[1:], os.Stdout)
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "override the experiment's default seed (0 keeps it)")
	scale := fs.String("scale", "full", "experiment scale: small (CI-sized) or full (paper-sized)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	small := *scale == "small"

	experimentsToRun := []string{name}
	if name == "all" {
		experimentsToRun = []string{"table1", "fig2c", "fig3a", "fig3b", "fig3c",
			"fig9", "fig10a", "fig10b", "fig10c", "sec52", "compare", "combined-tss"}
	}
	for i, exp := range experimentsToRun {
		if i > 0 {
			fmt.Println("\n" + string(make([]byte, 0)) + "================================================================")
		}
		if err := runOne(exp, *seed, small); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
	}
	return nil
}

func runOne(name string, seed uint64, small bool) error {
	switch name {
	case "table1":
		fmt.Print(experiments.Table1().Format())
	case "fig2c":
		cfg := experiments.DefaultFig2cConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Print(experiments.Fig2c(cfg).Format())
	case "fig3a":
		cfg := experiments.DefaultFig3aConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if small {
			cfg.Events = 50
		}
		r, err := experiments.Fig3a(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	case "fig3b":
		cfg := experiments.DefaultFig3bConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if small {
			cfg.Announcements = 20000
		}
		fmt.Print(experiments.Fig3b(cfg).Format())
	case "fig3c":
		cfg := experiments.DefaultFig3cConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if small {
			cfg.Members = 120
		}
		r, err := experiments.Fig3c(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	case "fig9":
		cfg := experiments.DefaultFig9Config()
		if small {
			cfg.N = 2
		}
		fmt.Print(experiments.Fig9(cfg).Format())
	case "fig10a":
		cfg := experiments.DefaultFig10aConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		r, err := experiments.Fig10a(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	case "fig10b":
		cfg := experiments.DefaultFig10bConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if small {
			cfg.DurationSec = 3600
		}
		fmt.Print(experiments.Fig10b(cfg).Format())
	case "fig10c":
		cfg := experiments.DefaultFig10cConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if small {
			cfg.Members = 120
		}
		r, err := experiments.Fig10c(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	case "sec52":
		if seed == 0 {
			seed = 9
		}
		r, err := experiments.Sec52(seed)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	case "compare":
		cfg := experiments.DefaultCompareConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Print(experiments.CompareMitigations(cfg).Format())
	case "combined-tss":
		cfg := experiments.DefaultCompareConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Print(experiments.CombinedTSS(cfg).Format())
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
