package main

// `stellar-lab bench -diff old.json new.json` compares two archived
// bench reports metric by metric: every numeric leaf common to both is
// printed with its delta, so a PR's perf movement is one command away
// from the BENCH_*.json trail CI keeps. `bench -trend dir/` extends
// the pairwise diff to the whole archive: every BENCH_*.json run in
// the directory becomes one column of a per-metric trajectory table,
// in filename order.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchDiff loads two bench reports and prints per-metric deltas.
func benchDiff(w io.Writer, oldPath, newPath string) error {
	oldVals, err := loadBenchMetrics(oldPath)
	if err != nil {
		return err
	}
	newVals, err := loadBenchMetrics(newPath)
	if err != nil {
		return err
	}

	paths := make([]string, 0, len(oldVals))
	seen := make(map[string]bool, len(oldVals)+len(newVals))
	for p := range oldVals {
		paths = append(paths, p)
		seen[p] = true
	}
	for p := range newVals {
		if !seen[p] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	width := 0
	for _, p := range paths {
		if len(p) > width {
			width = len(p)
		}
	}
	for _, p := range paths {
		o, hasOld := oldVals[p]
		n, hasNew := newVals[p]
		switch {
		case !hasOld:
			fmt.Fprintf(w, "%-*s  %14s -> %14s\n", width, p, "(absent)", fmtMetric(n))
		case !hasNew:
			fmt.Fprintf(w, "%-*s  %14s -> %14s\n", width, p, fmtMetric(o), "(absent)")
		default:
			line := fmt.Sprintf("%-*s  %14s -> %14s", width, p, fmtMetric(o), fmtMetric(n))
			if o != n && o != 0 {
				line += fmt.Sprintf("  (%+.1f%%)", 100*(n-o)/o)
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// benchTrend prints a per-metric trajectory table over a directory of
// archived bench reports. Files are ordered by name — CI archives runs
// under sortable names — and every numeric leaf appearing in any run
// becomes a row, with a last-vs-first delta when both endpoints carry
// the metric. A single archived run is a valid (one-column) trend, so
// the first CI run seeds the trajectory rather than failing it.
func benchTrend(w io.Writer, dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("bench -trend: no *.json reports in %s", dir)
	}
	sort.Strings(paths)

	runs := make([]map[string]float64, len(paths))
	names := make([]string, len(paths))
	for i, p := range paths {
		vals, err := loadBenchMetrics(p)
		if err != nil {
			return err
		}
		runs[i] = vals
		names[i] = strings.TrimSuffix(filepath.Base(p), ".json")
	}

	metricSet := make(map[string]bool)
	for _, vals := range runs {
		for m := range vals {
			metricSet[m] = true
		}
	}
	metrics := make([]string, 0, len(metricSet))
	for m := range metricSet {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)

	metricWidth := len("metric")
	for _, m := range metrics {
		if len(m) > metricWidth {
			metricWidth = len(m)
		}
	}
	colWidth := 14
	for _, n := range names {
		if len(n) > colWidth {
			colWidth = len(n)
		}
	}

	fmt.Fprintf(w, "bench trend over %d runs (%s):\n", len(paths), dir)
	fmt.Fprintf(w, "%-*s", metricWidth, "metric")
	for _, n := range names {
		fmt.Fprintf(w, "  %*s", colWidth, n)
	}
	fmt.Fprintln(w)
	for _, m := range metrics {
		fmt.Fprintf(w, "%-*s", metricWidth, m)
		for _, vals := range runs {
			if v, ok := vals[m]; ok {
				fmt.Fprintf(w, "  %*s", colWidth, fmtMetric(v))
			} else {
				fmt.Fprintf(w, "  %*s", colWidth, "-")
			}
		}
		first, hasFirst := runs[0][m]
		last, hasLast := runs[len(runs)-1][m]
		if len(runs) > 1 && hasFirst && hasLast && first != 0 && first != last {
			fmt.Fprintf(w, "  (%+.1f%%)", 100*(last-first)/first)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// loadBenchMetrics flattens a report's numeric leaves into
// dotted-path -> value (arrays indexed as name[i]).
func loadBenchMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flattenMetrics("", doc, out)
	return out, nil
}

func flattenMetrics(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenMetrics(p, child, out)
		}
	case []any:
		for i, child := range x {
			flattenMetrics(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	}
}

// fmtMetric renders a value compactly: integers bare, rates with two
// decimals.
func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
