package main

// `stellar-lab bench -diff old.json new.json` compares two archived
// bench reports metric by metric: every numeric leaf common to both is
// printed with its delta, so a PR's perf movement is one command away
// from the BENCH_*.json trail CI keeps.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// benchDiff loads two bench reports and prints per-metric deltas.
func benchDiff(w io.Writer, oldPath, newPath string) error {
	oldVals, err := loadBenchMetrics(oldPath)
	if err != nil {
		return err
	}
	newVals, err := loadBenchMetrics(newPath)
	if err != nil {
		return err
	}

	paths := make([]string, 0, len(oldVals))
	seen := make(map[string]bool, len(oldVals)+len(newVals))
	for p := range oldVals {
		paths = append(paths, p)
		seen[p] = true
	}
	for p := range newVals {
		if !seen[p] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	width := 0
	for _, p := range paths {
		if len(p) > width {
			width = len(p)
		}
	}
	for _, p := range paths {
		o, hasOld := oldVals[p]
		n, hasNew := newVals[p]
		switch {
		case !hasOld:
			fmt.Fprintf(w, "%-*s  %14s -> %14s\n", width, p, "(absent)", fmtMetric(n))
		case !hasNew:
			fmt.Fprintf(w, "%-*s  %14s -> %14s\n", width, p, fmtMetric(o), "(absent)")
		default:
			line := fmt.Sprintf("%-*s  %14s -> %14s", width, p, fmtMetric(o), fmtMetric(n))
			if o != n && o != 0 {
				line += fmt.Sprintf("  (%+.1f%%)", 100*(n-o)/o)
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// loadBenchMetrics flattens a report's numeric leaves into
// dotted-path -> value (arrays indexed as name[i]).
func loadBenchMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flattenMetrics("", doc, out)
	return out, nil
}

func flattenMetrics(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenMetrics(p, child, out)
		}
	case []any:
		for i, child := range x {
			flattenMetrics(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	}
}

// fmtMetric renders a value compactly: integers bare, rates with two
// decimals.
func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
