package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"stellar/internal/conformance"
)

// runConformanceCommand executes the embedded conformance matrix — every
// profile, or a named subset — and prints the human-readable report. With
// -json PATH it also writes the structured report for CI artifacts; the
// process exits non-zero when any expectation fails so pipelines gate on it.
func runConformanceCommand(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	jsonPath := fs.String("json", "", "also write the structured report as JSON to this path ('-' for stdout)")
	list := fs.Bool("list", false, "list the embedded profiles and exit")
	faultsOnly := fs.Bool("faults-only", false, "run only profiles with a fault-injection section (the chaos subset)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: stellar-lab conformance [-json PATH] [-list] [-faults-only] [profile ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles, err := conformance.Profiles()
	if err != nil {
		return err
	}
	if *faultsOnly {
		var sel []*conformance.Profile
		for _, p := range profiles {
			if p.Faults != nil {
				sel = append(sel, p)
			}
		}
		if len(sel) == 0 {
			return fmt.Errorf("conformance: no profiles carry a faults section")
		}
		profiles = sel
	}
	if *list {
		for _, p := range profiles {
			fmt.Fprintf(w, "%-24s %s\n", p.Name, p.Description)
		}
		return nil
	}
	if names := fs.Args(); len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		var sel []*conformance.Profile
		for _, p := range profiles {
			if want[p.Name] {
				sel = append(sel, p)
				delete(want, p.Name)
			}
		}
		for n := range want {
			return fmt.Errorf("conformance: unknown profile %q (use -list)", n)
		}
		profiles = sel
	}

	report, err := conformance.RunProfiles(profiles)
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Format())

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			if _, err := w.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	if !report.Pass {
		return fmt.Errorf("conformance: %d of %d profiles failed", report.Failed, report.Total)
	}
	return nil
}
