package main

import "testing"

// TestRunAllExperimentsSmallScale executes every subcommand end to end
// at CI scale, covering the CLI plumbing and every experiment driver.
func TestRunAllExperimentsSmallScale(t *testing.T) {
	for _, exp := range []string{
		"table1", "fig2c", "fig3a", "fig3b", "fig3c", "fig9",
		"fig10a", "fig10b", "fig10c", "sec52", "compare", "combined-tss",
	} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{exp, "-scale", "small"}); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"not-an-experiment"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"fig3a", "-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSeedOverride(t *testing.T) {
	if err := run([]string{"fig3b", "-scale", "small", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
}
