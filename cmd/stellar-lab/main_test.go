package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunAllExperimentsSmallScale executes every subcommand end to end
// at CI scale, covering the CLI plumbing and every experiment driver.
func TestRunAllExperimentsSmallScale(t *testing.T) {
	for _, exp := range []string{
		"table1", "fig2c", "fig3a", "fig3b", "fig3c", "fig9",
		"fig10a", "fig10b", "fig10c", "sec52", "compare", "combined-tss",
	} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{exp, "-scale", "small"}); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"not-an-experiment"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"fig3a", "-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSeedOverride(t *testing.T) {
	if err := run([]string{"fig3b", "-scale", "small", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchCommandJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := runBenchCommand([]string{"-peers", "8", "-prefixes", "100", "-update-size", "10", "-scenario-victims", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("bench output is not JSON: %v\n%s", err, buf.String())
	}
	if r.Benchmark != "routeserver-throughput" || len(r.Results) != 2 {
		t.Fatalf("report: %+v", r)
	}
	for _, res := range r.Results {
		if res.UpdatesPerSec <= 0 || res.Prefixes != 8*100 {
			t.Fatalf("result %s: %+v", res.Name, res)
		}
	}
	if r.Results[0].Name != "single-lock" || r.Results[0].Shards != 1 {
		t.Fatalf("baseline result: %+v", r.Results[0])
	}
	if r.Results[1].Name != "sharded" || r.Results[1].Shards < 2 {
		t.Fatalf("sharded result: %+v", r.Results[1])
	}
	if r.SpeedupX <= 0 {
		t.Fatalf("speedup: %v", r.SpeedupX)
	}
	if err := runBenchCommand([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad bench flag accepted")
	}
}

func TestBenchCommandFabricSection(t *testing.T) {
	var buf bytes.Buffer
	if err := runBenchCommand([]string{"-peers", "2", "-prefixes", "20", "-scenario-victims", "0",
		"-fabric-rules", "64", "-fabric-flows", "32"}, &buf); err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("bench output is not JSON: %v", err)
	}
	f := r.Fabric
	if f == nil {
		t.Fatal("fabric section missing")
	}
	if f.Rules != 64 || f.Flows != 32 {
		t.Fatalf("fabric config: %+v", f)
	}
	if f.LinearNsPerOp <= 0 || f.CompiledNsPerOp <= 0 || f.PrehashedNsPerOp <= 0 {
		t.Fatalf("fabric timings: %+v", f)
	}
	if f.CompiledSpeedupX <= 0 || f.EgressTicksPerSec <= 0 {
		t.Fatalf("fabric derived metrics: %+v", f)
	}

	// -fabric-rules 0 skips the section.
	buf.Reset()
	if err := runBenchCommand([]string{"-peers", "2", "-prefixes", "20", "-fabric-rules", "0", "-scenario-victims", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var r2 benchReport
	if err := json.Unmarshal(buf.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Fabric != nil {
		t.Fatal("fabric section present despite -fabric-rules 0")
	}
}

func TestBenchCommandOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := runBenchCommand([]string{"-peers", "4", "-prefixes", "40", "-scenario-victims", "0", "-out", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("file output not JSON: %v", err)
	}
}

func TestBenchCommandRejectsZeroFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-update-size", "0"}, {"-peers", "0"}, {"-prefixes", "0"},
	} {
		if err := runBenchCommand(args, io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestBenchCommandScenarioSection(t *testing.T) {
	var buf bytes.Buffer
	err := runBenchCommand([]string{"-peers", "2", "-prefixes", "20", "-fabric-rules", "0",
		"-scenario-victims", "2", "-scenario-peers", "12", "-scenario-ticks", "20"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("bench output is not JSON: %v", err)
	}
	s := r.Scenario
	if s == nil {
		t.Fatal("scenario section missing")
	}
	if s.Victims != 2 || s.PeersPerVictim != 12 || s.Ticks != 20 {
		t.Fatalf("scenario config: %+v", s)
	}
	if s.GOMAXPROCS != 4 {
		t.Fatalf("scenario gomaxprocs: %d, want 4 (the acceptance configuration)", s.GOMAXPROCS)
	}
	if s.FlowsPerTick <= 0 || s.BaselineTicksPerSec <= 0 || s.PipelineTicksPerSec <= 0 {
		t.Fatalf("scenario timings: %+v", s)
	}
	if s.SpeedupX <= 0 || s.ObserveNsPerRecord <= 0 {
		t.Fatalf("scenario derived metrics: %+v", s)
	}

	// -scenario-victims 0 skips the section.
	buf.Reset()
	if err := runBenchCommand([]string{"-peers", "2", "-prefixes", "20", "-fabric-rules", "0",
		"-scenario-victims", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var r2 benchReport
	if err := json.Unmarshal(buf.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Scenario != nil {
		t.Fatal("scenario section present despite -scenario-victims 0")
	}
}

func TestBenchCheckBars(t *testing.T) {
	ok := benchReport{
		SpeedupX: 1.5,
		Fabric:   &fabricBench{CompiledSpeedupX: 40},
		Scenario: &scenarioBench{SpeedupX: 5},
	}
	if err := checkBars(&ok); err != nil {
		t.Fatalf("healthy report failed check: %v", err)
	}
	for name, bad := range map[string]benchReport{
		"routeserver": {SpeedupX: 0.5},
		"fabric":      {SpeedupX: 1.5, Fabric: &fabricBench{CompiledSpeedupX: 2}},
		"scenario":    {SpeedupX: 1.5, Scenario: &scenarioBench{SpeedupX: 1}},
	} {
		if err := checkBars(&bad); err == nil {
			t.Fatalf("%s regression passed check", name)
		}
	}
	// Sections not measured are not checked.
	if err := checkBars(&benchReport{SpeedupX: 1.2}); err != nil {
		t.Fatalf("section-free report failed: %v", err)
	}
}

func TestBenchCommandProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	err := runBenchCommand([]string{"-peers", "2", "-prefixes", "20", "-fabric-rules", "0",
		"-scenario-victims", "0", "-cpuprofile", cpu, "-memprofile", mem}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
