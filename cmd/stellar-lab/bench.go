package main

// The bench subcommand measures route-server update throughput and emits
// the numbers as JSON, so CI can archive a machine-readable perf
// trajectory (BENCH_routeserver.json) next to the human-readable `go
// test -bench` output. It drives the same concurrent multi-peer workload
// as bench_test.go: every peer announces batches of blackhole /32s from
// its own goroutine. Two configurations run back to back — "single-lock"
// (one RIB shard plus a global mutex over the whole pipeline, the
// pre-sharding serialization discipline) and "sharded" (the live
// parallel pipeline) — so every archived report carries its own baseline.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
)

type benchConfig struct {
	Peers             int `json:"peers"`
	PrefixesPerPeer   int `json:"prefixes_per_peer"`
	PrefixesPerUpdate int `json:"prefixes_per_update"`
	Shards            int `json:"shards"`
}

type benchResult struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Updates        int     `json:"updates"`
	Prefixes       int     `json:"prefixes"`
	Seconds        float64 `json:"seconds"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	PrefixesPerSec float64 `json:"prefixes_per_sec"`
}

type benchReport struct {
	Benchmark  string        `json:"benchmark"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Config     benchConfig   `json:"config"`
	Results    []benchResult `json:"results"`
	SpeedupX   float64       `json:"sharded_speedup_x"`
}

func runBenchCommand(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	peers := fs.Int("peers", 64, "concurrent peer sessions")
	prefixes := fs.Int("prefixes", 2000, "prefixes announced per peer")
	updateSize := fs.Int("update-size", 10, "prefixes per UPDATE message")
	shards := fs.Int("shards", 0, "RIB shards for the sharded run (0 = default)")
	out := fs.String("out", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers < 1 || *prefixes < 1 || *updateSize < 1 {
		return fmt.Errorf("bench: -peers, -prefixes and -update-size must be >= 1")
	}
	cfg := benchConfig{
		Peers:             *peers,
		PrefixesPerPeer:   *prefixes,
		PrefixesPerUpdate: *updateSize,
		Shards:            *shards,
	}
	if cfg.Shards == 0 {
		cfg.Shards = rib.DefaultShards
	}

	report := benchReport{
		Benchmark:  "routeserver-throughput",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	single := benchThroughput(cfg, 1, true)
	single.Name = "single-lock"
	sharded := benchThroughput(cfg, cfg.Shards, false)
	sharded.Name = "sharded"
	report.Results = []benchResult{single, sharded}
	if single.UpdatesPerSec > 0 {
		report.SpeedupX = sharded.UpdatesPerSec / single.UpdatesPerSec
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// benchThroughput runs the multi-peer announce workload once and times
// it. serialize wraps every HandleUpdateBatch in one global mutex,
// reproducing the seed's one-big-lock pipeline on today's code.
func benchThroughput(cfg benchConfig, shards int, serialize bool) benchResult {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		RIBShards:        shards,
	})
	names := make([]string, cfg.Peers)
	for i := range names {
		names[i] = fmt.Sprintf("AS%d", 64512+i)
		if err := rs.AddPeer(routeserver.PeerConfig{
			Name:  names[i],
			ASN:   uint32(64512 + i),
			BGPID: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		}); err != nil {
			panic(err)
		}
	}
	updatesPerPeer := cfg.PrefixesPerPeer / cfg.PrefixesPerUpdate
	if updatesPerPeer == 0 {
		updatesPerPeer = 1
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Peers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			asn := uint32(64512 + id)
			var c uint32
			for n := 0; n < updatesPerPeer; n++ {
				u := &bgp.Update{Attrs: bgp.PathAttrs{
					Origin:      bgp.OriginIGP,
					ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
					NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(id)}),
					Communities: []bgp.Community{bgp.CommunityBlackhole},
				}}
				for k := 0; k < cfg.PrefixesPerUpdate; k++ {
					addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
					c++
					u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
				}
				if serialize {
					mu.Lock()
				}
				_, _, err := rs.HandleUpdateBatch(names[id], u)
				if serialize {
					mu.Unlock()
				}
				if err != nil {
					panic(err)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	updates := cfg.Peers * updatesPerPeer
	prefixes := updates * cfg.PrefixesPerUpdate
	return benchResult{
		Shards:         shards,
		Updates:        updates,
		Prefixes:       prefixes,
		Seconds:        elapsed,
		UpdatesPerSec:  float64(updates) / elapsed,
		PrefixesPerSec: float64(prefixes) / elapsed,
	}
}
