package main

// The bench subcommand measures route-server update throughput, the
// fabric data-plane classifier and the end-to-end scenario pipeline,
// and emits the numbers as JSON, so CI can archive a machine-readable
// perf trajectory (BENCH_routeserver.json) next to the human-readable
// `go test -bench` output. The JSON schema is documented in README.md
// ("Benchmark JSON schema").
//
// The control-plane half drives the same concurrent multi-peer workload
// as bench_test.go: every peer announces batches of blackhole /32s from
// its own goroutine. Two configurations run back to back — "single-lock"
// (one RIB shard plus a global mutex over the whole pipeline, the
// pre-sharding serialization discipline) and "sharded" (the live
// parallel pipeline) — so every archived report carries its own baseline.
// The data-plane half (the "fabric" section) compares the retained
// linear-scan classification baseline against the compiled classifier on
// one port carrying -fabric-rules rules. The "scenario" section runs the
// multi-victim attack scenario end to end — the live engine (parallel
// fabric pass, delivered flows streamed into sharded collectors) versus
// the retained serial single-victim pipeline (per-tick DeliveredByFlow
// maps, map-based collector) — at GOMAXPROCS=4, the acceptance
// configuration.
//
// -cpuprofile / -memprofile write pprof profiles of the bench run;
// -check exits non-zero when any section falls below its stated
// regression bar (see README.md), which is how CI gates regressions.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

type benchConfig struct {
	Peers             int `json:"peers"`
	PrefixesPerPeer   int `json:"prefixes_per_peer"`
	PrefixesPerUpdate int `json:"prefixes_per_update"`
	Shards            int `json:"shards"`
}

type benchResult struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Updates        int     `json:"updates"`
	Prefixes       int     `json:"prefixes"`
	Seconds        float64 `json:"seconds"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	PrefixesPerSec float64 `json:"prefixes_per_sec"`
}

type benchReport struct {
	Benchmark  string           `json:"benchmark"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Config     benchConfig      `json:"config"`
	Results    []benchResult    `json:"results"`
	SpeedupX   float64          `json:"sharded_speedup_x"`
	Fabric     *fabricBench     `json:"fabric,omitempty"`
	Scenario   *scenarioBench   `json:"scenario,omitempty"`
	Mitctl     *mitctlBench     `json:"mitctl,omitempty"`
	Engine     *engineBench     `json:"engine,omitempty"`
	BGP        *bgpBench        `json:"bgp,omitempty"`
	Federation *federationBench `json:"federation,omitempty"`
}

// engineBench is the stage-graph-runtime section of the report: the
// pipelined engine (internal/engine: pipelined ticks with a parallel
// per-victim fold side, shared worker pool, streamed monitoring)
// against the serial driver-pulled ixp.Tick loop on the identical
// multi-victim workload, both at GOMAXPROCS=4. The two paths must
// produce byte-identical per-tick delivered/dropped counters (enforced
// here, not just in tests) so the speedup is measured on provably equal
// work; the regression bar demands pipeline >= barEngineSpeedupX x
// serial. DepthRuns is the depth dimension — the same workload at
// Depth 1/2/4, every run checked against the serial delivered bytes —
// and depth_scaling_x (Depth 4 over Depth 1 flows/s) carries its own
// bar on multi-core hosts: Depth must behave as a throughput knob, not
// just overlap.
type engineBench struct {
	Victims           int                  `json:"victims"`
	PeersPerVictim    int                  `json:"peers_per_victim"`
	Ticks             int                  `json:"ticks"`
	GOMAXPROCS        int                  `json:"gomaxprocs"`
	Depth             int                  `json:"depth"`
	SerialTicksPerSec float64              `json:"serial_ticks_per_sec"`
	EngineTicksPerSec float64              `json:"engine_ticks_per_sec"`
	SpeedupX          float64              `json:"speedup_x"`
	DeliveredBytes    float64              `json:"delivered_bytes"`
	DepthRuns         []engineDepthRun     `json:"depth_runs,omitempty"`
	DepthScalingX     float64              `json:"depth_scaling_x,omitempty"`
	Profile           *engine.StageProfile `json:"stage_profile,omitempty"`
}

// engineDepthRun is one point of the engine section's depth dimension.
type engineDepthRun struct {
	Depth       int     `json:"depth"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	FlowsPerSec float64 `json:"flows_per_sec"`
}

// mitctlBench is the mitigation-control-plane half of the report: the
// full declarative lifecycle (Request → validate → queue → install,
// measured as controller installs/s and its inverse,
// lifecycle_ns_per_install — the amortized wall-clock cost per
// installed change, not a per-request latency) against the floor of
// raw manager Apply calls on an identical rule population. overhead_x
// is direct/controller; the regression bar demands the lifecycle stays
// within barMitctlMinRatio of the raw floor.
type mitctlBench struct {
	Members                  int     `json:"members"`
	Requests                 int     `json:"requests"`
	DirectInstallsPerSec     float64 `json:"direct_installs_per_sec"`
	ControllerInstallsPerSec float64 `json:"controller_installs_per_sec"`
	LifecycleNsPerInstall    float64 `json:"lifecycle_ns_per_install"`
	OverheadX                float64 `json:"overhead_x"`
}

// scenarioBench is the end-to-end half of the report: the multi-victim
// scenario pipeline (live engine) versus the retained serial
// single-victim pipeline, both at GOMAXPROCS=4. A "tick" serves every
// victim; records are delivered-flow observations entering the monitor.
type scenarioBench struct {
	Victims             int     `json:"victims"`
	PeersPerVictim      int     `json:"peers_per_victim"`
	Ticks               int     `json:"ticks"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	FlowsPerTick        int     `json:"flows_per_tick"`
	BaselineTicksPerSec float64 `json:"baseline_ticks_per_sec"`
	PipelineTicksPerSec float64 `json:"pipeline_ticks_per_sec"`
	SpeedupX            float64 `json:"speedup_x"`
	ObserveNsPerRecord  float64 `json:"observe_ns_per_record"`
}

// fabricBench is the data-plane half of the report: classification cost
// on one port under the retained linear-scan baseline versus the
// compiled classifier (hash-on-demand and pre-hashed), plus a full
// egress-tick rate with the compiled path.
type fabricBench struct {
	Rules               int     `json:"rules"`
	Flows               int     `json:"flows"`
	LinearNsPerOp       float64 `json:"linear_ns_per_classify"`
	CompiledNsPerOp     float64 `json:"compiled_ns_per_classify"`
	PrehashedNsPerOp    float64 `json:"prehashed_ns_per_classify"`
	CompiledSpeedupX    float64 `json:"compiled_speedup_x"`
	EgressTicksPerSec   float64 `json:"egress_ticks_per_sec"`
	EgressFlowsPerSec   float64 `json:"egress_flows_per_sec"`
	ClassifierBuildUsec float64 `json:"classifier_build_usec"`
}

func runBenchCommand(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	peers := fs.Int("peers", 64, "concurrent peer sessions")
	prefixes := fs.Int("prefixes", 2000, "prefixes announced per peer")
	updateSize := fs.Int("update-size", 10, "prefixes per UPDATE message")
	shards := fs.Int("shards", 0, "RIB shards for the sharded run (0 = default)")
	fabricRules := fs.Int("fabric-rules", 1024, "installed rules for the fabric classifier bench (0 = skip)")
	fabricFlows := fs.Int("fabric-flows", 512, "distinct flows offered in the fabric classifier bench")
	scenarioVictims := fs.Int("scenario-victims", 4, "victim ports in the scenario pipeline bench (0 = skip)")
	scenarioPeers := fs.Int("scenario-peers", 48, "attack peers per victim in the scenario pipeline bench")
	scenarioTicks := fs.Int("scenario-ticks", 120, "simulated ticks per scenario pipeline run")
	mitctlRequests := fs.Int("mitctl-requests", 4096, "mitigation requests in the mitctl lifecycle bench (0 = skip)")
	mitctlMembers := fs.Int("mitctl-members", 64, "member ports in the mitctl lifecycle bench")
	bgpMessages := fs.Int("bgp-messages", 50000, "BGP messages in the wire-format codec/replay bench (0 = skip)")
	fedExchanges := fs.Int("federation-exchanges", 10, "exchanges in the multi-IXP federation bench (0 = skip)")
	fedVictims := fs.Int("federation-victims", 4, "shared victims in the federation bench")
	fedLocalPeers := fs.Int("federation-local-peers", 196, "local peers per exchange in the federation bench")
	fedTicks := fs.Int("federation-ticks", 100, "simulated ticks per federation bench run")
	fedDelay := fs.Int("federation-delay", 2, "gossip propagation delay in ticks for the federation bench")
	diff := fs.Bool("diff", false, "compare two archived reports instead of running: bench -diff old.json new.json")
	trend := fs.String("trend", "", "print a per-metric trajectory table from a directory of archived bench reports instead of running")
	stageProfile := fs.Bool("stage-profile", false, "collect engine stage-profile counters (per-stage ns, spine/fold wait) into the report")
	check := fs.Bool("check", false, "exit non-zero when any section falls below its stated regression bar")
	sections := fs.String("sections", "", "also write one <prefix><section>.json file per measured section (e.g. -sections BENCH_)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at the end of the bench run to this file")
	out := fs.String("out", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		rest := fs.Args()
		if len(rest) != 2 {
			return fmt.Errorf("bench -diff: want two report files, got %d", len(rest))
		}
		return benchDiff(w, rest[0], rest[1])
	}
	if *trend != "" {
		return benchTrend(w, *trend)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *peers < 1 || *prefixes < 1 || *updateSize < 1 {
		return fmt.Errorf("bench: -peers, -prefixes and -update-size must be >= 1")
	}
	cfg := benchConfig{
		Peers:             *peers,
		PrefixesPerPeer:   *prefixes,
		PrefixesPerUpdate: *updateSize,
		Shards:            *shards,
	}
	if cfg.Shards == 0 {
		cfg.Shards = rib.DefaultShards
	}

	report := benchReport{
		Benchmark:  "routeserver-throughput",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	single := benchThroughput(cfg, 1, true)
	single.Name = "single-lock"
	sharded := benchThroughput(cfg, cfg.Shards, false)
	sharded.Name = "sharded"
	report.Results = []benchResult{single, sharded}
	if single.UpdatesPerSec > 0 {
		report.SpeedupX = sharded.UpdatesPerSec / single.UpdatesPerSec
	}
	if *fabricRules > 0 {
		fb, err := benchFabric(*fabricRules, *fabricFlows)
		if err != nil {
			return err
		}
		report.Fabric = fb
	}
	if *scenarioVictims > 0 {
		sb, err := benchScenario(*scenarioVictims, *scenarioPeers, *scenarioTicks)
		if err != nil {
			return err
		}
		report.Scenario = sb
	}
	if *mitctlRequests > 0 {
		mb, err := benchMitctl(*mitctlMembers, *mitctlRequests)
		if err != nil {
			return err
		}
		report.Mitctl = mb
	}
	if *scenarioVictims > 0 {
		eb, err := benchEngine(*scenarioVictims, *scenarioPeers, *scenarioTicks, *stageProfile)
		if err != nil {
			return err
		}
		report.Engine = eb
	}
	if *bgpMessages > 0 {
		gb, err := benchBGP(*bgpMessages)
		if err != nil {
			return err
		}
		report.BGP = gb
	}
	if *fedExchanges > 0 {
		fb, err := benchFederation(*fedExchanges, *fedVictims, *fedLocalPeers, *fedTicks, *fedDelay)
		if err != nil {
			return err
		}
		report.Federation = fb
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if *sections != "" {
		if err := writeSections(*sections, &report); err != nil {
			return err
		}
	}
	// With -out the console is free, so render the collected stage
	// profile as a table there; without -out the JSON on stdout already
	// carries it under engine.stage_profile.
	if *stageProfile && *out != "" && report.Engine != nil && report.Engine.Profile != nil {
		writeStageProfile(w, report.Engine.Profile)
	}
	if *check {
		return checkBars(&report)
	}
	return nil
}

// writeStageProfile renders the engine's stage-profile counters: where
// pipeline time went per stage, and which side (spine vs fold) spent
// time blocked on the other.
func writeStageProfile(w io.Writer, p *engine.StageProfile) {
	fmt.Fprintf(w, "engine stage profile (%d ticks):\n", p.Ticks)
	for _, st := range p.Stages {
		var nsPerRun float64
		if st.Runs > 0 {
			nsPerRun = float64(st.Ns) / float64(st.Runs)
		}
		fmt.Fprintf(w, "  %-8s %10.2f ms total  %8d runs  %12.0f ns/run\n",
			st.Name, float64(st.Ns)/1e6, st.Runs, nsPerRun)
	}
	fmt.Fprintf(w, "  spine-wait %.2f ms   fold-wait %.2f ms\n",
		float64(p.SpineWaitNs)/1e6, float64(p.FoldWaitNs)/1e6)
}

// writeSections archives every measured section as its own
// <prefix><section>.json file — one artifact per subsystem, so the
// per-PR bench trajectory (routeserver, fabric, scenario, mitctl,
// engine) stays comparable even as the combined report grows. Each file
// repeats the host header and carries only its section.
func writeSections(prefix string, r *benchReport) error {
	write := func(name string, section benchReport) error {
		section.Benchmark = r.Benchmark + ":" + name
		section.GOOS, section.GOARCH = r.GOOS, r.GOARCH
		section.CPUs, section.GOMAXPROCS = r.CPUs, r.GOMAXPROCS
		f, err := os.Create(prefix + name + ".json")
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(section); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("routeserver", benchReport{
		Config: r.Config, Results: r.Results, SpeedupX: r.SpeedupX,
	}); err != nil {
		return err
	}
	if r.Fabric != nil {
		if err := write("fabric", benchReport{Fabric: r.Fabric}); err != nil {
			return err
		}
	}
	if r.Scenario != nil {
		if err := write("scenario", benchReport{Scenario: r.Scenario}); err != nil {
			return err
		}
	}
	if r.Mitctl != nil {
		if err := write("mitctl", benchReport{Mitctl: r.Mitctl}); err != nil {
			return err
		}
	}
	if r.Engine != nil {
		if err := write("engine", benchReport{Engine: r.Engine}); err != nil {
			return err
		}
	}
	if r.BGP != nil {
		if err := write("bgp", benchReport{BGP: r.BGP}); err != nil {
			return err
		}
	}
	if r.Federation != nil {
		if err := write("federation", benchReport{Federation: r.Federation}); err != nil {
			return err
		}
	}
	return nil
}

// Regression bars for `bench -check`, documented in README.md. The
// bars are deliberately below the typical measurements (sharded ~1.5x+,
// compiled classifier ~75x, scenario ~5x+ at GOMAXPROCS=4) so CI fails
// on real regressions, not run-to-run noise.
const (
	barShardedSpeedupX  = 0.8
	barFabricSpeedupX   = 5.0
	barScenarioSpeedupX = 3.0
	// barMitctlMinRatio: the declarative lifecycle (validate, queue,
	// versioned store, events) must sustain at least this fraction of
	// the raw manager-Apply install rate (typically ~0.4-0.8x).
	barMitctlMinRatio = 0.10
	// barEngineSpeedupX: the pipelined stage-graph runtime must beat
	// the serial driver-pulled ixp.Tick loop by this factor at
	// GOMAXPROCS=4 (typically ~4x even on one core, from buffer reuse
	// and streamed monitoring; pipelining adds more on real cores).
	barEngineSpeedupX = 1.5
	// barEngineDepthScalingX: Depth 4 must outrun Depth 1 by this
	// factor on the engine section's depth dimension — the parallel
	// fold side has to turn extra in-flight batches into throughput.
	// Only enforced on hosts with >= 2 CPUs; on one core the fold
	// fan-out cannot beat the serial fold by construction.
	barEngineDepthScalingX = 1.2
	// BGP wire-format bars: the codec sustains ~1M parse+marshal
	// roundtrips/s and MRT replay into the sharded RIB ~15k updates/s
	// on a dev box; the bars sit far below so only a structural
	// regression (quadratic attr copying, per-message allocation storms)
	// trips them on shared CI runners.
	barBGPRoundtripMsgsPerSec = 150_000
	barBGPReplayUpdatesPerSec = 2_000
	// barFederationFlowsPerSec: the 10-exchange federation bench
	// generates and classifies ~1M member flows per run; the aggregate
	// rate across all exchange pipelines on the shared pool typically
	// sits in the millions/s, so the bar only trips on a structural
	// slowdown (barrier convoying, pool starvation). The propagation
	// check next to it is exact: every gossiped signal must install at
	// every exchange within the configured delay.
	barFederationFlowsPerSec = 200_000
)

// checkBars fails the run when a measured section sits below its bar.
func checkBars(r *benchReport) error {
	var failures []string
	if r.SpeedupX > 0 && r.SpeedupX < barShardedSpeedupX {
		failures = append(failures, fmt.Sprintf(
			"routeserver: sharded_speedup_x %.2f < %.2f", r.SpeedupX, barShardedSpeedupX))
	}
	if r.Fabric != nil && r.Fabric.CompiledSpeedupX < barFabricSpeedupX {
		failures = append(failures, fmt.Sprintf(
			"fabric: compiled_speedup_x %.2f < %.2f", r.Fabric.CompiledSpeedupX, barFabricSpeedupX))
	}
	if r.Scenario != nil && r.Scenario.SpeedupX < barScenarioSpeedupX {
		failures = append(failures, fmt.Sprintf(
			"scenario: speedup_x %.2f < %.2f", r.Scenario.SpeedupX, barScenarioSpeedupX))
	}
	if r.Mitctl != nil && r.Mitctl.ControllerInstallsPerSec < barMitctlMinRatio*r.Mitctl.DirectInstallsPerSec {
		failures = append(failures, fmt.Sprintf(
			"mitctl: controller_installs_per_sec %.0f < %.2f x direct (%.0f)",
			r.Mitctl.ControllerInstallsPerSec, barMitctlMinRatio, r.Mitctl.DirectInstallsPerSec))
	}
	if r.Engine != nil && r.Engine.SpeedupX < barEngineSpeedupX {
		failures = append(failures, fmt.Sprintf(
			"engine: speedup_x %.2f < %.2f", r.Engine.SpeedupX, barEngineSpeedupX))
	}
	if r.Engine != nil && r.Engine.DepthScalingX > 0 && r.CPUs >= 2 &&
		r.Engine.DepthScalingX < barEngineDepthScalingX {
		failures = append(failures, fmt.Sprintf(
			"engine: depth_scaling_x %.2f < %.2f (depth 4 vs depth 1)",
			r.Engine.DepthScalingX, barEngineDepthScalingX))
	}
	if r.BGP != nil && r.BGP.RoundtripMsgsPerSec < barBGPRoundtripMsgsPerSec {
		failures = append(failures, fmt.Sprintf(
			"bgp: roundtrip_msgs_per_sec %.0f < %d", r.BGP.RoundtripMsgsPerSec, barBGPRoundtripMsgsPerSec))
	}
	if r.BGP != nil && r.BGP.ReplayUpdatesPerSec < barBGPReplayUpdatesPerSec {
		failures = append(failures, fmt.Sprintf(
			"bgp: replay_updates_per_sec %.0f < %d", r.BGP.ReplayUpdatesPerSec, barBGPReplayUpdatesPerSec))
	}
	if r.Federation != nil {
		if r.Federation.FlowsPerSec < barFederationFlowsPerSec {
			failures = append(failures, fmt.Sprintf(
				"federation: flows_per_sec %.0f < %d", r.Federation.FlowsPerSec, barFederationFlowsPerSec))
		}
		if r.Federation.SignalsComplete < r.Federation.Signals {
			failures = append(failures, fmt.Sprintf(
				"federation: %d of %d signals incomplete",
				r.Federation.Signals-r.Federation.SignalsComplete, r.Federation.Signals))
		}
		if r.Federation.Signals > 0 && r.Federation.MaxPropagationTicks > r.Federation.GossipDelayTicks {
			failures = append(failures, fmt.Sprintf(
				"federation: max_propagation_ticks %d > configured delay %d",
				r.Federation.MaxPropagationTicks, r.Federation.GossipDelayTicks))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: regression bars violated: %v", failures)
	}
	return nil
}

// benchScenario measures the end-to-end scenario pipeline: victims
// member ports each under an NTP amplification attack from a shared
// peer pool plus benign web traffic, run once through the retained
// serial single-victim pipeline (per-tick DeliveredByFlow maps, one
// map-collector record per delivered flow, map-walk peer counts) and
// once through the live multi-victim engine (parallel fabric pass,
// records streamed into sharded collectors). Both run at GOMAXPROCS=4
// — the acceptance configuration — and must deliver identical bytes.
func benchScenario(victims, peersPer, ticks int) (*scenarioBench, error) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	build := func() (*ixp.IXP, []*member.Member, [][]ixp.Source, error) {
		members := member.MakePopulation(member.PopulationConfig{
			N: victims + peersPer, HonoringFraction: 0.3,
			PortCapacityBps: 1e9, Seed: 9,
		})
		x, err := ixp.Build(ixp.Config{
			ASN:              6695,
			BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
			Members:          members,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		peers := ixp.PeersOf(members[victims:])
		webPeers := len(peers) / 4
		if webPeers < 1 {
			webPeers = 1
		}
		sources := make([][]ixp.Source, victims)
		for v := 0; v < victims; v++ {
			rng := stats.NewRand(uint64(31 + v))
			target := members[v].Prefixes[0].Addr().Next()
			attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 2e9, 0, 1<<30, rng)
			attack.RampTicks = 0
			web := traffic.NewWebService(target, peers[:webPeers], 2e8, rng)
			sources[v] = []ixp.Source{attack, web}
		}
		return x, members, sources, nil
	}

	res := &scenarioBench{
		Victims: victims, PeersPerVictim: peersPer, Ticks: ticks,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Baseline: the retained pre-sharding pipeline, one victim at a time.
	// Returns (seconds, delivered bytes).
	const peerMinBps = 1e3
	runBaseline := func(x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, nTicks int) (float64, float64, error) {
		var delivered float64
		start := time.Now()
		for v := 0; v < victims; v++ {
			mon := flowmon.NewMapCollector()
			for tick := 0; tick < nTicks; tick++ {
				var offers []fabric.Offer
				for _, src := range sources[v] {
					offers = append(offers, src.Offers(tick, 1)...)
				}
				if v == 0 && tick == 0 && res.FlowsPerTick == 0 {
					res.FlowsPerTick = len(offers) * victims
				}
				reports, err := x.Tick(fabric.TickOffers{members[v].Name: offers}, 1)
				if err != nil {
					return 0, 0, err
				}
				rep := reports[members[v].Name]
				for flow, bytes := range rep.Result.DeliveredByFlow {
					mon.Observe(flowmon.Record{Bin: tick, Key: flow, Bytes: bytes})
				}
				_ = x.ActivePeers(rep.Result, peerMinBps/8)
				delivered += rep.Result.DeliveredBytes
			}
		}
		return time.Since(start).Seconds(), delivered, nil
	}

	// Live engine: one multi-victim run. Returns (seconds, delivered).
	runPipeline := func(x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, nTicks int) (float64, float64, error) {
		vs := make([]ixp.Victim, victims)
		for v := range vs {
			vs[v] = ixp.Victim{Port: members[v].Name, Sources: sources[v]}
		}
		sc := &ixp.Scenario{IXP: x, Ticks: nTicks, Dt: 1, Victims: vs}
		start := time.Now()
		series, err := sc.RunAll()
		if err != nil {
			return 0, 0, err
		}
		secs := time.Since(start).Seconds()
		var delivered float64
		for _, s := range series {
			for _, smp := range s.Samples {
				delivered += smp.DeliveredBps / 8
			}
		}
		return secs, delivered, nil
	}

	// Each engine gets a warmup pass (runtime, pools and allocator reach
	// steady state) and is then timed over the full tick count; short
	// timed runs are otherwise dominated by cold-start effects.
	warmTicks := ticks / 4
	if warmTicks < 20 {
		warmTicks = 20
	}
	xb, membersB, sourcesB, err := build()
	if err != nil {
		return nil, err
	}
	if _, _, err := runBaseline(xb, membersB, sourcesB, warmTicks); err != nil {
		return nil, err
	}
	baseSecs, baseDelivered, err := runBaseline(xb, membersB, sourcesB, ticks)
	if err != nil {
		return nil, err
	}
	res.BaselineTicksPerSec = float64(ticks) / baseSecs

	xp, membersP, sourcesP, err := build()
	if err != nil {
		return nil, err
	}
	if _, _, err := runPipeline(xp, membersP, sourcesP, warmTicks); err != nil {
		return nil, err
	}
	pipeSecs, pipeDelivered, err := runPipeline(xp, membersP, sourcesP, ticks)
	if err != nil {
		return nil, err
	}
	if diff := pipeDelivered - baseDelivered; diff > 1e-6*baseDelivered || diff < -1e-6*baseDelivered {
		return nil, fmt.Errorf("bench: scenario engines diverged: pipeline delivered %v bytes, baseline %v",
			pipeDelivered, baseDelivered)
	}
	res.PipelineTicksPerSec = float64(ticks) / pipeSecs
	if res.BaselineTicksPerSec > 0 {
		res.SpeedupX = res.PipelineTicksPerSec / res.BaselineTicksPerSec
	}

	// Steady-state observe cost per record on one shard.
	mon := flowmon.NewCollectorShards(1)
	sh := mon.Shard(0)
	key := netpkt.FlowKey{
		SrcMAC: netpkt.MAC{0x02, 0x10, 0, 0, 0, 1},
		Src:    netip.AddrFrom4([4]byte{198, 51, 100, 1}),
		Dst:    netip.AddrFrom4([4]byte{100, 10, 10, 10}),
		Proto:  netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
	}
	res.ObserveNsPerRecord = timePerOp(func(i int) { sh.ObserveFlow(i/1000, key, 100) })
	return res, nil
}

// countingSource wraps a Source with an offer counter, so the depth
// sweeps report flows/s on exactly the work they timed.
type countingSource struct {
	src engine.Source
	n   *atomic.Int64
}

func (c *countingSource) Offers(tick int, dt float64) []fabric.Offer {
	out := c.src.Offers(tick, dt)
	c.n.Add(int64(len(out)))
	return out
}

func (c *countingSource) AppendOffers(dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	before := len(dst)
	if ap, ok := c.src.(engine.OfferAppender); ok {
		dst = ap.AppendOffers(dst, tick, dt)
	} else {
		dst = append(dst, c.src.Offers(tick, dt)...)
	}
	c.n.Add(int64(len(dst) - before))
	return dst
}

// benchEngine measures the stage-graph runtime end to end: the same
// multi-victim attack workload as benchScenario, driven once through
// the serial ixp.Tick loop (fresh offer slices, one synchronous tick
// call, materialized DeliveredByFlow maps, map-collector records,
// map-walk peer counts — the pre-engine driver shape) and then through
// engine.New at Depth 1, 2 and 4 (pipelined ticks on a shared worker
// pool, per-victim fold units fanned across it). Every engine run's
// delivered bytes must match the serial run exactly — the engine's
// determinism contract — before any speedup counts. The Depth 2 run is
// the headline engine_ticks_per_sec; the sweep fills depth_runs and
// depth_scaling_x. With profile set, the Depth 2 run also collects the
// stage-profile counters.
func benchEngine(victims, peersPer, ticks int, profile bool) (*engineBench, error) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	build := func() (*ixp.IXP, []*member.Member, [][]ixp.Source, error) {
		members := member.MakePopulation(member.PopulationConfig{
			N: victims + peersPer, HonoringFraction: 0.3,
			PortCapacityBps: 1e9, Seed: 9,
		})
		x, err := ixp.Build(ixp.Config{
			ASN:              6695,
			BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
			Members:          members,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		peers := ixp.PeersOf(members[victims:])
		webPeers := len(peers) / 4
		if webPeers < 1 {
			webPeers = 1
		}
		sources := make([][]ixp.Source, victims)
		for v := 0; v < victims; v++ {
			rng := stats.NewRand(uint64(31 + v))
			target := members[v].Prefixes[0].Addr().Next()
			attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 2e9, 0, 1<<30, rng)
			attack.RampTicks = 0
			web := traffic.NewWebService(target, peers[:webPeers], 2e8, rng)
			sources[v] = []ixp.Source{attack, web}
		}
		return x, members, sources, nil
	}

	res := &engineBench{
		Victims: victims, PeersPerVictim: peersPer, Ticks: ticks,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Depth: 2,
	}

	// Serial ixp.Tick loop; returns (seconds, delivered bytes).
	runSerial := func(x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, nTicks int) (float64, float64, error) {
		const peerMinBytes = 1e3 / 8
		mons := make([]*flowmon.MapCollector, victims)
		for v := range mons {
			mons[v] = flowmon.NewMapCollector()
		}
		var delivered float64
		start := time.Now()
		for tick := 0; tick < nTicks; tick++ {
			offers := make(fabric.TickOffers, victims)
			for v := 0; v < victims; v++ {
				var os []fabric.Offer
				for _, src := range sources[v] {
					os = append(os, src.Offers(tick, 1)...)
				}
				offers[members[v].Name] = os
			}
			reports, err := x.Tick(offers, 1)
			if err != nil {
				return 0, 0, err
			}
			for v := 0; v < victims; v++ {
				rep := reports[members[v].Name]
				for flow, bytes := range rep.Result.DeliveredByFlow {
					mons[v].Observe(flowmon.Record{Bin: tick, Key: flow, Bytes: bytes})
				}
				_ = x.ActivePeers(rep.Result, peerMinBytes)
				delivered += rep.Result.DeliveredBytes
			}
		}
		return time.Since(start).Seconds(), delivered, nil
	}

	// Pipelined engine at one depth; returns (seconds, delivered bytes,
	// stage profile).
	var flowCount atomic.Int64
	runEngine := func(x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, nTicks, depth int, prof bool) (float64, float64, *engine.StageProfile, error) {
		specs := make([]engine.VictimSpec, victims)
		srcs := make([][]engine.Source, victims)
		for v := 0; v < victims; v++ {
			specs[v] = engine.VictimSpec{Port: members[v].Name}
			srcs[v] = make([]engine.Source, len(sources[v]))
			for i, src := range sources[v] {
				srcs[v][i] = &countingSource{src: src, n: &flowCount}
			}
		}
		eng := engine.New(engine.Config{
			Driver:       engine.NewSourcesDriver(specs, srcs),
			Control:      x,
			DataPlane:    x,
			Ticks:        nTicks,
			Dt:           1,
			Depth:        depth,
			Profile:      prof,
			MemberFilter: x.MemberFilter(),
		})
		start := time.Now()
		series, err := eng.Run()
		if err != nil {
			return 0, 0, nil, err
		}
		secs := time.Since(start).Seconds()
		var delivered float64
		for _, s := range series {
			for _, smp := range s.Samples {
				delivered += smp.DeliveredBps / 8
			}
		}
		var sp *engine.StageProfile
		if len(series) > 0 {
			sp = series[0].Profile
		}
		return secs, delivered, sp, nil
	}

	warmTicks := ticks / 4
	if warmTicks < 20 {
		warmTicks = 20
	}
	xs, membersS, sourcesS, err := build()
	if err != nil {
		return nil, err
	}
	if _, _, err := runSerial(xs, membersS, sourcesS, warmTicks); err != nil {
		return nil, err
	}
	serialSecs, serialDelivered, err := runSerial(xs, membersS, sourcesS, ticks)
	if err != nil {
		return nil, err
	}
	res.SerialTicksPerSec = float64(ticks) / serialSecs

	for _, depth := range []int{1, 2, 4} {
		xe, membersE, sourcesE, err := build()
		if err != nil {
			return nil, err
		}
		if _, _, _, err := runEngine(xe, membersE, sourcesE, warmTicks, depth, false); err != nil {
			return nil, err
		}
		flowCount.Store(0)
		engineSecs, engineDelivered, prof, err := runEngine(xe, membersE, sourcesE, ticks, depth, depth == res.Depth && profile)
		if err != nil {
			return nil, err
		}
		// Sources are stateful (warmup advanced every pair identically),
		// so the timed runs replay the same ticks: exact equality, no
		// tolerance.
		if engineDelivered != serialDelivered {
			return nil, fmt.Errorf("bench: engine at depth %d diverged from serial ixp.Tick: delivered %v vs %v bytes",
				depth, engineDelivered, serialDelivered)
		}
		run := engineDepthRun{
			Depth:       depth,
			TicksPerSec: float64(ticks) / engineSecs,
			FlowsPerSec: float64(flowCount.Load()) / engineSecs,
		}
		res.DepthRuns = append(res.DepthRuns, run)
		if depth == res.Depth {
			res.DeliveredBytes = engineDelivered
			res.EngineTicksPerSec = run.TicksPerSec
			if res.SerialTicksPerSec > 0 {
				res.SpeedupX = res.EngineTicksPerSec / res.SerialTicksPerSec
			}
			res.Profile = prof
		}
	}
	if first := res.DepthRuns[0]; first.FlowsPerSec > 0 {
		res.DepthScalingX = res.DepthRuns[len(res.DepthRuns)-1].FlowsPerSec / first.FlowsPerSec
	}
	return res, nil
}

// benchFabric measures the port classifier: a blackholing-shaped rule
// set (mostly per-source-port drops plus prefix and MAC rules), a flow
// population of which a quarter matches, classified by (a) the retained
// linear-scan baseline over Port.Rules(), (b) Port.Classify hashing on
// demand, and (c) Port.ClassifyHashed with pre-hashed flows, then a
// full flow-level egress tick on the compiled path. The rule/flow
// shape intentionally mirrors benchRules/benchFlows in bench_test.go so
// the JSON numbers track the go-test benchmarks.
func benchFabric(nRules, nFlows int) (*fabricBench, error) {
	if nFlows < 1 {
		nFlows = 1
	}
	port := fabric.NewPort("victim", netpkt.MAC{0x02, 0, 0, 0, 0, 1}, 1e9)
	buildStart := time.Now()
	for i := 0; i < nRules; i++ {
		m := fabric.MatchAll()
		switch i % 8 {
		case 6:
			m.DstIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 20, byte(i >> 8), byte(i)}), 32)
		case 7:
			mac := netpkt.MAC{0x02, 0x77, 0, 0, byte(i >> 8), byte(i)}
			m.SrcMAC = &mac
		default:
			m.Proto = netpkt.ProtoUDP
			m.SrcPort = int32(1000 + i)
		}
		if err := port.InstallRule(&fabric.Rule{ID: fmt.Sprintf("r%04d", i), Match: m, Action: fabric.ActionDrop}); err != nil {
			return nil, fmt.Errorf("bench: install fabric rule: %w", err)
		}
	}
	buildUsec := time.Since(buildStart).Seconds() * 1e6 / float64(nRules)

	flows := make([]netpkt.FlowKey, nFlows)
	hashes := make([]uint64, nFlows)
	offers := make([]fabric.Offer, nFlows)
	for i := range flows {
		srcPort := uint16(40000 + i)
		if i%4 == 0 {
			srcPort = uint16(1000 + i)
		}
		flows[i] = netpkt.FlowKey{
			SrcMAC:  netpkt.MAC{0x02, 0x10, 0, 0, 0, byte(i)},
			Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{100, 10, 10, 10}),
			Proto:   netpkt.ProtoUDP,
			SrcPort: srcPort,
			DstPort: 443,
		}
		hashes[i] = flows[i].Hash()
		offers[i] = fabric.Offer{Flow: flows[i], FlowHash: hashes[i], Bytes: 1e4, Packets: 10}
	}

	rules := port.Rules()
	res := &fabricBench{Rules: nRules, Flows: nFlows, ClassifierBuildUsec: buildUsec}
	res.LinearNsPerOp = timePerOp(func(i int) {
		f := flows[i%nFlows]
		for _, r := range rules {
			if r.Match.Matches(f) {
				break
			}
		}
	})
	res.CompiledNsPerOp = timePerOp(func(i int) { port.Classify(flows[i%nFlows]) })
	res.PrehashedNsPerOp = timePerOp(func(i int) { j := i % nFlows; port.ClassifyHashed(flows[j], hashes[j]) })
	if res.CompiledNsPerOp > 0 {
		res.CompiledSpeedupX = res.LinearNsPerOp / res.CompiledNsPerOp
	}
	ticksPerSec := 1e9 / timePerOp(func(int) { port.Egress(offers, 1) })
	res.EgressTicksPerSec = ticksPerSec
	res.EgressFlowsPerSec = ticksPerSec * float64(nFlows)
	return res, nil
}

// benchMitctl measures the mitigation lifecycle: `requests` distinct
// drop mitigations spread over `members` ports, first installed through
// raw manager Apply calls (the floor: admission control + classifier
// compile only), then through the full controller path — content-derived
// IDs, IRR validation, change-queue pacing, versioned store, event
// stream. Both runs install the same rule population; the controller
// run must keep at least barMitctlMinRatio of the raw rate.
func benchMitctl(members, requests int) (*mitctlBench, error) {
	if members < 1 {
		members = 1
	}
	memberName := func(i int) string { return fmt.Sprintf("AS%d", 64512+i) }
	memberMAC := func(i int) netpkt.MAC { return netpkt.MAC{0x02, 0x44, 0, 0, byte(i >> 8), byte(i)} }
	memberNet := func(i int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
	}
	lim := hw.DefaultEdgeRouterLimits(members, hw.RTBHUnitN)
	lim.L34CriteriaTotal = 4*requests + 64
	lim.MACFiltersTotal = requests + 64
	lim.QoSPoliciesPerPort = requests/members + 64
	build := func() (*fabric.Fabric, *core.QoSManager) {
		fab := fabric.New()
		portIndex := make(map[string]int, members)
		for i := 0; i < members; i++ {
			if err := fab.AddPort(fabric.NewPort(memberName(i), memberMAC(i), 1e10)); err != nil {
				panic(err)
			}
			portIndex[memberName(i)] = i
		}
		return fab, core.NewQoSManager(fab, hw.NewEdgeRouter(lim), portIndex)
	}
	match := func(i int) fabric.Match {
		m := fabric.MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = int32(1000 + i/members)
		m.DstIP = netip.PrefixFrom(memberNet(i%members).Addr().Next(), 32)
		return m
	}

	res := &mitctlBench{Members: members, Requests: requests}

	// Floor: straight Apply calls, no lifecycle.
	_, directMgr := build()
	start := time.Now()
	for i := 0; i < requests; i++ {
		if err := directMgr.Apply(core.ConfigChange{
			Op: core.OpInstall, Member: memberName(i % members),
			RuleID: fmt.Sprintf("direct:%d", i),
			Match:  match(i), Action: fabric.ActionDrop,
		}); err != nil {
			return nil, fmt.Errorf("bench: direct install: %w", err)
		}
	}
	res.DirectInstallsPerSec = float64(requests) / time.Since(start).Seconds()

	// Full lifecycle: Request + Process batches (unthrottled queue, so
	// the measurement is controller overhead, not pacing).
	reg := irr.NewRegistry()
	asns := make(map[string]uint32, members)
	for i := 0; i < members; i++ {
		reg.Register(uint32(64512+i), memberNet(i))
		asns[memberName(i)] = uint32(64512 + i)
	}
	_, ctlMgr := build()
	ctl := mitctl.New(mitctl.Config{
		Manager:    ctlMgr,
		QueueRate:  1e12,
		QueueBurst: requests + 1,
		Validator: &mitctl.IRRValidator{Registry: reg, ASNOf: func(name string) (uint32, bool) {
			asn, ok := asns[name]
			return asn, ok
		}},
	})
	now := 0.0
	start = time.Now()
	for i := 0; i < requests; i++ {
		m := i % members
		spec := mitctl.Spec{
			Requester: memberName(m),
			Target:    netip.PrefixFrom(memberNet(m).Addr().Next(), 32),
			Match:     match(i),
			Action:    fabric.ActionDrop,
		}
		if _, err := ctl.Request(spec, now); err != nil {
			return nil, fmt.Errorf("bench: mitctl request: %w", err)
		}
		if i%64 == 63 {
			now++
			ctl.Process(now)
		}
	}
	now++
	ctl.Process(now)
	elapsed := time.Since(start).Seconds()
	if got := ctl.AppliedChanges(); got != requests {
		return nil, fmt.Errorf("bench: mitctl applied %d of %d changes (errors: %d)",
			got, requests, len(ctl.Errors()))
	}
	res.ControllerInstallsPerSec = float64(requests) / elapsed
	res.LifecycleNsPerInstall = elapsed * 1e9 / float64(requests)
	if res.ControllerInstallsPerSec > 0 {
		res.OverheadX = res.DirectInstallsPerSec / res.ControllerInstallsPerSec
	}
	return res, nil
}

// timePerOp measures fn's cost in ns/op, growing the iteration count
// until the run lasts long enough to trust.
func timePerOp(fn func(i int)) float64 {
	for n := 1024; ; n *= 4 {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		elapsed := time.Since(start)
		if elapsed >= 20*time.Millisecond || n >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
	}
}

// benchThroughput runs the multi-peer announce workload once and times
// it. serialize wraps every HandleUpdateBatch in one global mutex,
// reproducing the seed's one-big-lock pipeline on today's code.
func benchThroughput(cfg benchConfig, shards int, serialize bool) benchResult {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		RIBShards:        shards,
	})
	names := make([]string, cfg.Peers)
	for i := range names {
		names[i] = fmt.Sprintf("AS%d", 64512+i)
		if err := rs.AddPeer(routeserver.PeerConfig{
			Name:  names[i],
			ASN:   uint32(64512 + i),
			BGPID: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		}); err != nil {
			panic(err)
		}
	}
	updatesPerPeer := cfg.PrefixesPerPeer / cfg.PrefixesPerUpdate
	if updatesPerPeer == 0 {
		updatesPerPeer = 1
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Peers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			asn := uint32(64512 + id)
			var c uint32
			for n := 0; n < updatesPerPeer; n++ {
				u := &bgp.Update{Attrs: bgp.PathAttrs{
					Origin:      bgp.OriginIGP,
					ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
					NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(id)}),
					Communities: []bgp.Community{bgp.CommunityBlackhole},
				}}
				for k := 0; k < cfg.PrefixesPerUpdate; k++ {
					addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
					c++
					u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
				}
				if serialize {
					mu.Lock()
				}
				_, _, err := rs.HandleUpdateBatch(names[id], u)
				if serialize {
					mu.Unlock()
				}
				if err != nil {
					panic(err)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	updates := cfg.Peers * updatesPerPeer
	prefixes := updates * cfg.PrefixesPerUpdate
	return benchResult{
		Shards:         shards,
		Updates:        updates,
		Prefixes:       prefixes,
		Seconds:        elapsed,
		UpdatesPerSec:  float64(updates) / elapsed,
		PrefixesPerSec: float64(prefixes) / elapsed,
	}
}
