package main

// The bench subcommand measures route-server update throughput and the
// fabric data-plane classifier, and emits the numbers as JSON, so CI can
// archive a machine-readable perf trajectory (BENCH_routeserver.json)
// next to the human-readable `go test -bench` output. The JSON schema is
// documented in README.md ("Benchmark JSON schema").
//
// The control-plane half drives the same concurrent multi-peer workload
// as bench_test.go: every peer announces batches of blackhole /32s from
// its own goroutine. Two configurations run back to back — "single-lock"
// (one RIB shard plus a global mutex over the whole pipeline, the
// pre-sharding serialization discipline) and "sharded" (the live
// parallel pipeline) — so every archived report carries its own baseline.
// The data-plane half (the "fabric" section) compares the retained
// linear-scan classification baseline against the compiled classifier on
// one port carrying -fabric-rules rules.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
)

type benchConfig struct {
	Peers             int `json:"peers"`
	PrefixesPerPeer   int `json:"prefixes_per_peer"`
	PrefixesPerUpdate int `json:"prefixes_per_update"`
	Shards            int `json:"shards"`
}

type benchResult struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Updates        int     `json:"updates"`
	Prefixes       int     `json:"prefixes"`
	Seconds        float64 `json:"seconds"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	PrefixesPerSec float64 `json:"prefixes_per_sec"`
}

type benchReport struct {
	Benchmark  string        `json:"benchmark"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Config     benchConfig   `json:"config"`
	Results    []benchResult `json:"results"`
	SpeedupX   float64       `json:"sharded_speedup_x"`
	Fabric     *fabricBench  `json:"fabric,omitempty"`
}

// fabricBench is the data-plane half of the report: classification cost
// on one port under the retained linear-scan baseline versus the
// compiled classifier (hash-on-demand and pre-hashed), plus a full
// egress-tick rate with the compiled path.
type fabricBench struct {
	Rules               int     `json:"rules"`
	Flows               int     `json:"flows"`
	LinearNsPerOp       float64 `json:"linear_ns_per_classify"`
	CompiledNsPerOp     float64 `json:"compiled_ns_per_classify"`
	PrehashedNsPerOp    float64 `json:"prehashed_ns_per_classify"`
	CompiledSpeedupX    float64 `json:"compiled_speedup_x"`
	EgressTicksPerSec   float64 `json:"egress_ticks_per_sec"`
	EgressFlowsPerSec   float64 `json:"egress_flows_per_sec"`
	ClassifierBuildUsec float64 `json:"classifier_build_usec"`
}

func runBenchCommand(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	peers := fs.Int("peers", 64, "concurrent peer sessions")
	prefixes := fs.Int("prefixes", 2000, "prefixes announced per peer")
	updateSize := fs.Int("update-size", 10, "prefixes per UPDATE message")
	shards := fs.Int("shards", 0, "RIB shards for the sharded run (0 = default)")
	fabricRules := fs.Int("fabric-rules", 1024, "installed rules for the fabric classifier bench (0 = skip)")
	fabricFlows := fs.Int("fabric-flows", 512, "distinct flows offered in the fabric classifier bench")
	out := fs.String("out", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers < 1 || *prefixes < 1 || *updateSize < 1 {
		return fmt.Errorf("bench: -peers, -prefixes and -update-size must be >= 1")
	}
	cfg := benchConfig{
		Peers:             *peers,
		PrefixesPerPeer:   *prefixes,
		PrefixesPerUpdate: *updateSize,
		Shards:            *shards,
	}
	if cfg.Shards == 0 {
		cfg.Shards = rib.DefaultShards
	}

	report := benchReport{
		Benchmark:  "routeserver-throughput",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	single := benchThroughput(cfg, 1, true)
	single.Name = "single-lock"
	sharded := benchThroughput(cfg, cfg.Shards, false)
	sharded.Name = "sharded"
	report.Results = []benchResult{single, sharded}
	if single.UpdatesPerSec > 0 {
		report.SpeedupX = sharded.UpdatesPerSec / single.UpdatesPerSec
	}
	if *fabricRules > 0 {
		fb, err := benchFabric(*fabricRules, *fabricFlows)
		if err != nil {
			return err
		}
		report.Fabric = fb
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// benchFabric measures the port classifier: a blackholing-shaped rule
// set (mostly per-source-port drops plus prefix and MAC rules), a flow
// population of which a quarter matches, classified by (a) the retained
// linear-scan baseline over Port.Rules(), (b) Port.Classify hashing on
// demand, and (c) Port.ClassifyHashed with pre-hashed flows, then a
// full flow-level egress tick on the compiled path. The rule/flow
// shape intentionally mirrors benchRules/benchFlows in bench_test.go so
// the JSON numbers track the go-test benchmarks.
func benchFabric(nRules, nFlows int) (*fabricBench, error) {
	if nFlows < 1 {
		nFlows = 1
	}
	port := fabric.NewPort("victim", netpkt.MAC{0x02, 0, 0, 0, 0, 1}, 1e9)
	buildStart := time.Now()
	for i := 0; i < nRules; i++ {
		m := fabric.MatchAll()
		switch i % 8 {
		case 6:
			m.DstIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 20, byte(i >> 8), byte(i)}), 32)
		case 7:
			mac := netpkt.MAC{0x02, 0x77, 0, 0, byte(i >> 8), byte(i)}
			m.SrcMAC = &mac
		default:
			m.Proto = netpkt.ProtoUDP
			m.SrcPort = int32(1000 + i)
		}
		if err := port.InstallRule(&fabric.Rule{ID: fmt.Sprintf("r%04d", i), Match: m, Action: fabric.ActionDrop}); err != nil {
			return nil, fmt.Errorf("bench: install fabric rule: %w", err)
		}
	}
	buildUsec := time.Since(buildStart).Seconds() * 1e6 / float64(nRules)

	flows := make([]netpkt.FlowKey, nFlows)
	hashes := make([]uint64, nFlows)
	offers := make([]fabric.Offer, nFlows)
	for i := range flows {
		srcPort := uint16(40000 + i)
		if i%4 == 0 {
			srcPort = uint16(1000 + i)
		}
		flows[i] = netpkt.FlowKey{
			SrcMAC:  netpkt.MAC{0x02, 0x10, 0, 0, 0, byte(i)},
			Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{100, 10, 10, 10}),
			Proto:   netpkt.ProtoUDP,
			SrcPort: srcPort,
			DstPort: 443,
		}
		hashes[i] = flows[i].Hash()
		offers[i] = fabric.Offer{Flow: flows[i], FlowHash: hashes[i], Bytes: 1e4, Packets: 10}
	}

	rules := port.Rules()
	res := &fabricBench{Rules: nRules, Flows: nFlows, ClassifierBuildUsec: buildUsec}
	res.LinearNsPerOp = timePerOp(func(i int) {
		f := flows[i%nFlows]
		for _, r := range rules {
			if r.Match.Matches(f) {
				break
			}
		}
	})
	res.CompiledNsPerOp = timePerOp(func(i int) { port.Classify(flows[i%nFlows]) })
	res.PrehashedNsPerOp = timePerOp(func(i int) { j := i % nFlows; port.ClassifyHashed(flows[j], hashes[j]) })
	if res.CompiledNsPerOp > 0 {
		res.CompiledSpeedupX = res.LinearNsPerOp / res.CompiledNsPerOp
	}
	ticksPerSec := 1e9 / timePerOp(func(int) { port.Egress(offers, 1) })
	res.EgressTicksPerSec = ticksPerSec
	res.EgressFlowsPerSec = ticksPerSec * float64(nFlows)
	return res, nil
}

// timePerOp measures fn's cost in ns/op, growing the iteration count
// until the run lasts long enough to trust.
func timePerOp(fn func(i int)) float64 {
	for n := 1024; ; n *= 4 {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		elapsed := time.Since(start)
		if elapsed >= 20*time.Millisecond || n >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
	}
}

// benchThroughput runs the multi-peer announce workload once and times
// it. serialize wraps every HandleUpdateBatch in one global mutex,
// reproducing the seed's one-big-lock pipeline on today's code.
func benchThroughput(cfg benchConfig, shards int, serialize bool) benchResult {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		RIBShards:        shards,
	})
	names := make([]string, cfg.Peers)
	for i := range names {
		names[i] = fmt.Sprintf("AS%d", 64512+i)
		if err := rs.AddPeer(routeserver.PeerConfig{
			Name:  names[i],
			ASN:   uint32(64512 + i),
			BGPID: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		}); err != nil {
			panic(err)
		}
	}
	updatesPerPeer := cfg.PrefixesPerPeer / cfg.PrefixesPerUpdate
	if updatesPerPeer == 0 {
		updatesPerPeer = 1
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Peers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			asn := uint32(64512 + id)
			var c uint32
			for n := 0; n < updatesPerPeer; n++ {
				u := &bgp.Update{Attrs: bgp.PathAttrs{
					Origin:      bgp.OriginIGP,
					ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
					NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(id)}),
					Communities: []bgp.Community{bgp.CommunityBlackhole},
				}}
				for k := 0; k < cfg.PrefixesPerUpdate; k++ {
					addr := netip.AddrFrom4([4]byte{100, byte(id), byte(c >> 8), byte(c)})
					c++
					u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: netip.PrefixFrom(addr, 32)})
				}
				if serialize {
					mu.Lock()
				}
				_, _, err := rs.HandleUpdateBatch(names[id], u)
				if serialize {
					mu.Unlock()
				}
				if err != nil {
					panic(err)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	updates := cfg.Peers * updatesPerPeer
	prefixes := updates * cfg.PrefixesPerUpdate
	return benchResult{
		Shards:         shards,
		Updates:        updates,
		Prefixes:       prefixes,
		Seconds:        elapsed,
		UpdatesPerSec:  float64(updates) / elapsed,
		PrefixesPerSec: float64(prefixes) / elapsed,
	}
}
