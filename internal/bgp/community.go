package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// Community is an RFC 1997 BGP community: a 32-bit tag conventionally
// written "asn:value" with the high 16 bits the AS and the low 16 bits an
// AS-local value.
type Community uint32

// Well-known communities (RFC 1997 §2, RFC 7999 §5).
const (
	// CommunityBlackhole is the IANA well-known BLACKHOLE community
	// (65535:666, RFC 7999) that triggers RTBH at IXP route servers.
	CommunityBlackhole Community = 0xFFFF029A
	// CommunityNoExport prevents advertisement outside the AS/confederation.
	CommunityNoExport Community = 0xFFFFFF01
	// CommunityNoAdvertise prevents advertisement to any peer.
	CommunityNoAdvertise Community = 0xFFFFFF02
)

// MakeCommunity builds a community from its "asn:value" halves.
func MakeCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high 16 bits.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the low 16 bits.
func (c Community) Value() uint16 { return uint16(c) }

func (c Community) String() string {
	switch c {
	case CommunityBlackhole:
		return "blackhole"
	case CommunityNoExport:
		return "no-export"
	case CommunityNoAdvertise:
		return "no-advertise"
	}
	return fmt.Sprintf("%d:%d", c.ASN(), c.Value())
}

// ParseCommunity parses "asn:value" or the well-known names "blackhole",
// "no-export" and "no-advertise".
func ParseCommunity(s string) (Community, error) {
	switch s {
	case "blackhole":
		return CommunityBlackhole, nil
	case "no-export":
		return CommunityNoExport, nil
	case "no-advertise":
		return CommunityNoAdvertise, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bgp: invalid community %q", s)
	}
	asn, err := strconv.ParseUint(parts[0], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: invalid community %q: %v", s, err)
	}
	val, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: invalid community %q: %v", s, err)
	}
	return MakeCommunity(uint16(asn), uint16(val)), nil
}

// Extended community types (RFC 4360). Stellar allocates its Advanced
// Blackholing namespace within the experimental two-octet-AS-specific
// type, mirroring how the production deployment defines a distinct
// community namespace for blackholing rules (Section 4.2.1).
const (
	// ExtTypeTwoOctetAS is the transitive two-octet-AS-specific type.
	ExtTypeTwoOctetAS uint8 = 0x00
	// ExtTypeExperimental is the transitive experimental type (0x80),
	// used for the Advanced Blackholing signal.
	ExtTypeExperimental uint8 = 0x80
	// ExtSubTypeAdvBlackhole identifies Stellar's Advanced Blackholing
	// extended community within the experimental type. The 6-byte value
	// encodes (ruleset ASN, rule reference) — see package core for the
	// rule reference semantics.
	ExtSubTypeAdvBlackhole uint8 = 0x66
	// ExtSubTypeRouteTarget is the standard route-target sub-type.
	ExtSubTypeRouteTarget uint8 = 0x02
)

// ExtCommunity is an 8-byte RFC 4360 extended community.
type ExtCommunity [8]byte

// MakeExtCommunity builds an extended community from type, sub-type and a
// 6-byte value.
func MakeExtCommunity(typ, subType uint8, value [6]byte) ExtCommunity {
	var e ExtCommunity
	e[0], e[1] = typ, subType
	copy(e[2:], value[:])
	return e
}

// Type returns the high-order type byte.
func (e ExtCommunity) Type() uint8 { return e[0] }

// SubType returns the sub-type byte.
func (e ExtCommunity) SubType() uint8 { return e[1] }

// Value returns the 6-byte value field.
func (e ExtCommunity) Value() [6]byte {
	var v [6]byte
	copy(v[:], e[2:])
	return v
}

// IsTransitive reports whether the community is transitive across ASes
// (bit 0x40 of the type byte clear).
func (e ExtCommunity) IsTransitive() bool { return e[0]&0x40 == 0 }

func (e ExtCommunity) String() string {
	return fmt.Sprintf("ext:0x%02x:0x%02x:%02x%02x%02x%02x%02x%02x",
		e[0], e[1], e[2], e[3], e[4], e[5], e[6], e[7])
}
