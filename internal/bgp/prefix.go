package bgp

import (
	"fmt"
	"net/netip"
)

// PathPrefix is one NLRI element: a prefix plus the ADD-PATH path
// identifier (zero and absent on the wire unless the session negotiated
// ADD-PATH for the prefix's address family).
type PathPrefix struct {
	Prefix netip.Prefix
	PathID uint32
}

func (p PathPrefix) String() string {
	if p.PathID == 0 {
		return p.Prefix.String()
	}
	return fmt.Sprintf("%s(id=%d)", p.Prefix, p.PathID)
}

// appendNLRI encodes prefixes in RFC 4271 NLRI format, optionally with
// leading RFC 7911 path identifiers.
func appendNLRI(dst []byte, prefixes []PathPrefix, withPathID bool) ([]byte, error) {
	for _, pp := range prefixes {
		if !pp.Prefix.IsValid() {
			return nil, ErrBadPrefix
		}
		if withPathID {
			dst = append(dst,
				byte(pp.PathID>>24), byte(pp.PathID>>16), byte(pp.PathID>>8), byte(pp.PathID))
		}
		bits := pp.Prefix.Bits()
		dst = append(dst, byte(bits))
		nBytes := (bits + 7) / 8
		if pp.Prefix.Addr().Is4() {
			a := pp.Prefix.Addr().As4()
			dst = append(dst, a[:nBytes]...)
		} else {
			a := pp.Prefix.Addr().As16()
			dst = append(dst, a[:nBytes]...)
		}
	}
	return dst, nil
}

// parseNLRI decodes NLRI-formatted prefixes for the given address family.
func parseNLRI(data []byte, afi AFI, withPathID bool) ([]PathPrefix, error) {
	var out []PathPrefix
	maxBits := 32
	if afi == AFIIPv6 {
		maxBits = 128
	}
	for len(data) > 0 {
		var pathID uint32
		if withPathID {
			if len(data) < 4 {
				return nil, ErrTruncated
			}
			pathID = uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3])
			data = data[4:]
		}
		if len(data) < 1 {
			return nil, ErrTruncated
		}
		bits := int(data[0])
		data = data[1:]
		if bits > maxBits {
			return nil, ErrBadPrefix
		}
		nBytes := (bits + 7) / 8
		if len(data) < nBytes {
			return nil, ErrTruncated
		}
		var addr netip.Addr
		if afi == AFIIPv4 {
			var a [4]byte
			copy(a[:], data[:nBytes])
			addr = netip.AddrFrom4(a)
		} else {
			var a [16]byte
			copy(a[:], data[:nBytes])
			addr = netip.AddrFrom16(a)
		}
		data = data[nBytes:]
		pfx := netip.PrefixFrom(addr, bits)
		if pfx != pfx.Masked() {
			// Trailing bits beyond the mask must be zero on the wire; a
			// mismatch indicates a malformed prefix.
			return nil, ErrBadPrefix
		}
		out = append(out, PathPrefix{Prefix: pfx, PathID: pathID})
	}
	return out, nil
}

// afiOf returns the address family of a prefix.
func afiOf(p netip.Prefix) AFI {
	if p.Addr().Is4() {
		return AFIIPv4
	}
	return AFIIPv6
}
