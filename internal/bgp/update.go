package bgp

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Update is the BGP UPDATE message. Withdrawn and NLRI carry IPv4
// prefixes; IPv6 reachability travels in Attrs.MPReach / Attrs.MPUnreach.
type Update struct {
	Withdrawn []PathPrefix
	Attrs     PathAttrs
	NLRI      []PathPrefix
}

// Type implements Message.
func (*Update) Type() MessageType { return MsgUpdate }

func (u *Update) marshalBody(dst []byte, opts *Options) ([]byte, error) {
	withPathID := opts.addPath(AFIIPv4)

	withdrawn, err := appendNLRI(nil, u.Withdrawn, withPathID)
	if err != nil {
		return nil, err
	}
	if len(withdrawn) > 0xffff {
		return nil, ErrAttrTooLong
	}
	dst = append(dst, byte(len(withdrawn)>>8), byte(len(withdrawn)))
	dst = append(dst, withdrawn...)

	// An UPDATE that only withdraws routes omits path attributes.
	var attrs []byte
	if len(u.NLRI) > 0 || u.Attrs.MPReach != nil || u.Attrs.MPUnreach != nil || len(u.Attrs.ASPath) > 0 {
		attrs, err = u.Attrs.marshalAttrs(opts)
		if err != nil {
			return nil, err
		}
	}
	if len(attrs) > 0xffff {
		return nil, ErrAttrTooLong
	}
	dst = append(dst, byte(len(attrs)>>8), byte(len(attrs)))
	dst = append(dst, attrs...)

	return appendNLRI(dst, u.NLRI, withPathID)
}

func unmarshalUpdate(body []byte, opts *Options) (*Update, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	withPathID := opts.addPath(AFIIPv4)
	u := &Update{}

	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	if len(body) < wLen {
		return nil, ErrTruncated
	}
	var err error
	u.Withdrawn, err = parseNLRI(body[:wLen], AFIIPv4, withPathID)
	if err != nil {
		return nil, err
	}
	body = body[wLen:]

	if len(body) < 2 {
		return nil, ErrTruncated
	}
	aLen := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	if len(body) < aLen {
		return nil, ErrTruncated
	}
	u.Attrs, err = parseAttrs(body[:aLen], opts)
	if err != nil {
		return nil, err
	}
	body = body[aLen:]

	u.NLRI, err = parseNLRI(body, AFIIPv4, withPathID)
	if err != nil {
		return nil, err
	}
	return u, nil
}

// AllAnnounced returns every announced prefix regardless of family: the
// IPv4 NLRI plus any MP_REACH NLRI.
func (u *Update) AllAnnounced() []PathPrefix {
	out := append([]PathPrefix(nil), u.NLRI...)
	if u.Attrs.MPReach != nil {
		out = append(out, u.Attrs.MPReach.NLRI...)
	}
	return out
}

// AllWithdrawn returns every withdrawn prefix regardless of family.
func (u *Update) AllWithdrawn() []PathPrefix {
	out := append([]PathPrefix(nil), u.Withdrawn...)
	if u.Attrs.MPUnreach != nil {
		out = append(out, u.Attrs.MPUnreach.NLRI...)
	}
	return out
}

func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE")
	if w := u.AllWithdrawn(); len(w) > 0 {
		fmt.Fprintf(&b, " withdraw=%v", w)
	}
	if n := u.AllAnnounced(); len(n) > 0 {
		fmt.Fprintf(&b, " announce=%v attrs={%s}", n, u.Attrs.String())
	}
	return b.String()
}
