package bgp

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	rsID   = netip.MustParseAddr("80.81.192.1")
	nhAddr = netip.MustParseAddr("80.81.192.10")
	pfx24  = netip.MustParsePrefix("100.10.10.0/24")
	pfx32  = netip.MustParsePrefix("100.10.10.10/32")
	pfx6   = netip.MustParsePrefix("2001:db8:100::/48")
)

func roundtrip(t *testing.T, m Message, opts *Options) Message {
	t.Helper()
	wire, err := Marshal(m, opts)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, n, err := Unmarshal(wire, opts)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	return got
}

func TestKeepaliveRoundtrip(t *testing.T) {
	got := roundtrip(t, &Keepalive{}, nil)
	if got.Type() != MsgKeepalive {
		t.Fatalf("type = %v", got.Type())
	}
}

func TestOpenRoundtrip(t *testing.T) {
	o := NewOpen(64512, 90, rsID)
	got := roundtrip(t, o, nil).(*Open)
	if got.Version != 4 || got.AS != 64512 || got.HoldTime != 90 || got.BGPID != rsID {
		t.Fatalf("open mismatch: %+v", got)
	}
	if len(got.Capabilities) != 3 {
		t.Fatalf("capabilities = %d, want 3", len(got.Capabilities))
	}
}

func TestOpenFourOctetAS(t *testing.T) {
	// ASN above 16 bits must roundtrip via the capability.
	o := NewOpen(4200000001, 180, rsID)
	wire, err := Marshal(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The 2-octet field must carry AS_TRANS.
	if as2 := uint16(wire[headerLen+1])<<8 | uint16(wire[headerLen+2]); as2 != ASTrans {
		t.Fatalf("2-octet AS field = %d, want AS_TRANS", as2)
	}
	got, _, err := Unmarshal(wire, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Open).AS != 4200000001 {
		t.Fatalf("AS = %d, want 4200000001", got.(*Open).AS)
	}
}

func TestOpenAddPathCapability(t *testing.T) {
	o := NewOpen(64512, 90, rsID)
	o.Capabilities = append(o.Capabilities, CapAddPath(
		AddPathTuple{AFI: AFIIPv4, SAFI: SAFIUnicast, Mode: AddPathSendReceive},
		AddPathTuple{AFI: AFIIPv6, SAFI: SAFIUnicast, Mode: AddPathSend},
	))
	got := roundtrip(t, o, nil).(*Open)
	if !got.HasAddPath(AFIIPv4, SAFIUnicast, AddPathReceive) {
		t.Fatal("missing v4 receive")
	}
	if !got.HasAddPath(AFIIPv4, SAFIUnicast, AddPathSend) {
		t.Fatal("missing v4 send")
	}
	if got.HasAddPath(AFIIPv6, SAFIUnicast, AddPathReceive) {
		t.Fatal("v6 should be send-only")
	}
}

func TestOpenRejectsNonIPv4ID(t *testing.T) {
	o := NewOpen(64512, 90, netip.MustParseAddr("2001:db8::1"))
	if _, err := Marshal(o, nil); err == nil {
		t.Fatal("want error for IPv6 BGP ID")
	}
}

func attrsForTest() PathAttrs {
	med := uint32(50)
	lp := uint32(100)
	return PathAttrs{
		Origin:    OriginIGP,
		ASPath:    []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64512, 64513}}},
		NextHop:   nhAddr,
		MED:       &med,
		LocalPref: &lp,
		Communities: []Community{
			MakeCommunity(64512, 123),
			CommunityBlackhole,
		},
		ExtCommunities: []ExtCommunity{
			MakeExtCommunity(ExtTypeExperimental, ExtSubTypeAdvBlackhole, [6]byte{0, 2, 0, 123, 0, 1}),
		},
	}
}

func TestUpdateRoundtrip(t *testing.T) {
	u := &Update{
		Withdrawn: []PathPrefix{{Prefix: netip.MustParsePrefix("198.51.100.0/24")}},
		Attrs:     attrsForTest(),
		NLRI:      []PathPrefix{{Prefix: pfx24}, {Prefix: pfx32}},
	}
	got := roundtrip(t, u, nil).(*Update)
	if !reflect.DeepEqual(got.NLRI, u.NLRI) {
		t.Fatalf("NLRI: got %v want %v", got.NLRI, u.NLRI)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Fatalf("Withdrawn: got %v want %v", got.Withdrawn, u.Withdrawn)
	}
	a := got.Attrs
	if a.Origin != OriginIGP || a.NextHop != nhAddr {
		t.Fatalf("attrs: %+v", a)
	}
	if *a.MED != 50 || *a.LocalPref != 100 {
		t.Fatalf("med/lp: %v %v", *a.MED, *a.LocalPref)
	}
	if !a.HasCommunity(CommunityBlackhole) || !a.HasCommunity(MakeCommunity(64512, 123)) {
		t.Fatalf("communities: %v", a.Communities)
	}
	if len(a.ExtCommunities) != 1 || a.ExtCommunities[0].SubType() != ExtSubTypeAdvBlackhole {
		t.Fatalf("ext communities: %v", a.ExtCommunities)
	}
}

func TestUpdateAddPathRoundtrip(t *testing.T) {
	opts := &Options{AddPathIPv4: true}
	u := &Update{
		Attrs: attrsForTest(),
		NLRI: []PathPrefix{
			{Prefix: pfx32, PathID: 1},
			{Prefix: pfx32, PathID: 2}, // same prefix, two paths
		},
	}
	got := roundtrip(t, u, opts).(*Update)
	if len(got.NLRI) != 2 || got.NLRI[0].PathID != 1 || got.NLRI[1].PathID != 2 {
		t.Fatalf("NLRI: %v", got.NLRI)
	}
	// Without ADD-PATH decode options, the same bytes must NOT parse into
	// the same prefixes (path IDs would be consumed as prefix bytes).
	wire, _ := Marshal(u, opts)
	if plain, _, err := Unmarshal(wire, nil); err == nil {
		pu := plain.(*Update)
		if reflect.DeepEqual(pu.NLRI, got.NLRI) {
			t.Fatal("ADD-PATH wire decoded identically without the option")
		}
	}
}

func TestUpdateIPv6MPReach(t *testing.T) {
	u := &Update{
		Attrs: PathAttrs{
			Origin: OriginIGP,
			ASPath: []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64512}}},
			MPReach: &MPReach{
				AFI:     AFIIPv6,
				SAFI:    SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []PathPrefix{{Prefix: pfx6}},
			},
		},
	}
	got := roundtrip(t, u, nil).(*Update)
	mp := got.Attrs.MPReach
	if mp == nil || mp.AFI != AFIIPv6 || mp.NextHop != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("MPReach: %+v", mp)
	}
	if len(mp.NLRI) != 1 || mp.NLRI[0].Prefix != pfx6 {
		t.Fatalf("MPReach NLRI: %v", mp.NLRI)
	}
	if len(got.AllAnnounced()) != 1 {
		t.Fatalf("AllAnnounced: %v", got.AllAnnounced())
	}
}

func TestUpdateIPv6Withdraw(t *testing.T) {
	u := &Update{
		Attrs: PathAttrs{
			MPUnreach: &MPUnreach{AFI: AFIIPv6, SAFI: SAFIUnicast,
				NLRI: []PathPrefix{{Prefix: pfx6}}},
		},
	}
	got := roundtrip(t, u, nil).(*Update)
	if got.Attrs.MPUnreach == nil || len(got.Attrs.MPUnreach.NLRI) != 1 {
		t.Fatalf("MPUnreach: %+v", got.Attrs.MPUnreach)
	}
	if len(got.AllWithdrawn()) != 1 {
		t.Fatalf("AllWithdrawn: %v", got.AllWithdrawn())
	}
}

func TestWithdrawOnlyUpdateHasNoAttrs(t *testing.T) {
	u := &Update{Withdrawn: []PathPrefix{{Prefix: pfx24}}}
	wire, err := Marshal(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Unmarshal(wire, nil)
	if err != nil {
		t.Fatal(err)
	}
	gu := got.(*Update)
	if len(gu.Withdrawn) != 1 || len(gu.NLRI) != 0 || len(gu.Attrs.ASPath) != 0 {
		t.Fatalf("withdraw-only: %+v", gu)
	}
}

func TestNotificationRoundtrip(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: CeaseAdminShutdown, Data: []byte("bye")}
	got := roundtrip(t, n, nil).(*Notification)
	if got.Code != NotifCease || got.Subcode != CeaseAdminShutdown || string(got.Data) != "bye" {
		t.Fatalf("notification: %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	wire, _ := Marshal(&Keepalive{}, nil)

	bad := append([]byte(nil), wire...)
	bad[0] = 0
	if _, _, err := Unmarshal(bad, nil); err != ErrBadMarker {
		t.Fatalf("marker: %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[16], bad[17] = 0xff, 0xff
	if _, _, err := Unmarshal(bad, nil); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[18] = 99
	if _, _, err := Unmarshal(bad, nil); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}

	if _, _, err := Unmarshal(wire[:10], nil); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
}

func TestUnmarshalFuzzNoPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = Unmarshal(data, nil)
		_, _, _ = Unmarshal(data, &Options{AddPathIPv4: true, AddPathIPv6: true})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateTruncationsError(t *testing.T) {
	u := &Update{Attrs: attrsForTest(), NLRI: []PathPrefix{{Prefix: pfx24}}}
	wire, err := Marshal(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any truncation of the body must produce an error, never a panic.
	for i := headerLen; i < len(wire); i++ {
		trunc := append([]byte(nil), wire[:i]...)
		if i >= 18 {
			// Fix up the length field so the header parses.
			trunc[16], trunc[17] = byte(i>>8), byte(i)
		}
		if _, _, err := Unmarshal(trunc, nil); err == nil && i != len(wire) {
			// Some truncations may still form a valid shorter message
			// (e.g. cutting trailing NLRI at an element boundary); those
			// must reparse consistently rather than crash.
			continue
		}
	}
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		NewOpen(64512, 90, rsID),
		&Keepalive{},
		&Update{Attrs: attrsForTest(), NLRI: []PathPrefix{{Prefix: pfx32}}},
		&Notification{Code: NotifCease, Subcode: CeaseAdminReset},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf, nil)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("msg %d: type %v want %v", i, got.Type(), want.Type())
		}
	}
}

func TestCommunityStringParse(t *testing.T) {
	cases := []struct {
		c Community
		s string
	}{
		{MakeCommunity(64512, 666), "64512:666"},
		{CommunityBlackhole, "blackhole"},
		{CommunityNoExport, "no-export"},
		{CommunityNoAdvertise, "no-advertise"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.s {
			t.Errorf("String(%x) = %q, want %q", uint32(c.c), got, c.s)
		}
		parsed, err := ParseCommunity(c.s)
		if err != nil || parsed != c.c {
			t.Errorf("ParseCommunity(%q) = %v, %v", c.s, parsed, err)
		}
	}
	for _, bad := range []string{"", "1", "a:b", "70000:1", "1:70000", "1:2:3"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) should fail", bad)
		}
	}
}

func TestCommunityHalves(t *testing.T) {
	c := MakeCommunity(64512, 666)
	if c.ASN() != 64512 || c.Value() != 666 {
		t.Fatalf("halves: %d %d", c.ASN(), c.Value())
	}
	// RFC 7999 value check: 65535:666.
	if CommunityBlackhole.ASN() != 65535 || CommunityBlackhole.Value() != 666 {
		t.Fatal("BLACKHOLE community is not 65535:666")
	}
}

func TestCommunityRoundtripProperty(t *testing.T) {
	f := func(asn, val uint16) bool {
		c := MakeCommunity(asn, val)
		if c.ASN() != asn || c.Value() != val {
			return false
		}
		// Well-known communities stringify to names; skip those.
		switch c {
		case CommunityBlackhole, CommunityNoExport, CommunityNoAdvertise:
			return true
		}
		parsed, err := ParseCommunity(c.String())
		return err == nil && parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtCommunity(t *testing.T) {
	e := MakeExtCommunity(ExtTypeExperimental, ExtSubTypeAdvBlackhole, [6]byte{1, 2, 3, 4, 5, 6})
	if e.Type() != ExtTypeExperimental || e.SubType() != ExtSubTypeAdvBlackhole {
		t.Fatalf("type/subtype: %v", e)
	}
	if e.Value() != [6]byte{1, 2, 3, 4, 5, 6} {
		t.Fatalf("value: %v", e.Value())
	}
	if !e.IsTransitive() {
		t.Fatal("0x80 type should be transitive")
	}
	nt := MakeExtCommunity(0x40, 0, [6]byte{})
	if nt.IsTransitive() {
		t.Fatal("0x40 type should be non-transitive")
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}

func TestPathAttrsHelpers(t *testing.T) {
	a := attrsForTest()
	if a.OriginAS() != 64513 {
		t.Fatalf("OriginAS = %d", a.OriginAS())
	}
	if a.PathLen() != 2 {
		t.Fatalf("PathLen = %d", a.PathLen())
	}
	a.PrependAS(65000)
	if a.ASPath[0].ASNs[0] != 65000 || a.PathLen() != 3 {
		t.Fatalf("PrependAS: %+v", a.ASPath)
	}
	// AS_SET counts as one.
	a.ASPath = append(a.ASPath, ASPathSegment{Type: ASSet, ASNs: []uint32{1, 2, 3}})
	if a.PathLen() != 4 {
		t.Fatalf("PathLen with set = %d", a.PathLen())
	}
	// AddCommunity dedupes.
	n := len(a.Communities)
	a.AddCommunity(CommunityBlackhole)
	if len(a.Communities) != n {
		t.Fatal("AddCommunity duplicated")
	}
	a.AddCommunity(MakeCommunity(1, 1))
	if len(a.Communities) != n+1 {
		t.Fatal("AddCommunity did not append")
	}
}

func TestPathAttrsClone(t *testing.T) {
	a := attrsForTest()
	b := a.Clone()
	b.ASPath[0].ASNs[0] = 1
	b.Communities[0] = 0
	*b.MED = 999
	if a.ASPath[0].ASNs[0] == 1 || a.Communities[0] == 0 || *a.MED == 999 {
		t.Fatal("Clone shares storage")
	}
}

func TestPrependASEmptyPath(t *testing.T) {
	var a PathAttrs
	a.PrependAS(42)
	if a.PathLen() != 1 || a.OriginAS() != 42 {
		t.Fatalf("prepend on empty: %+v", a.ASPath)
	}
}

func TestParseNLRIRejectsHostBitsSet(t *testing.T) {
	// /24 prefix with a non-zero 4th byte beyond the mask is invalid.
	data := []byte{24, 100, 10, 10}
	if _, err := parseNLRI(data, AFIIPv4, false); err != nil {
		t.Fatalf("valid /24 rejected: %v", err)
	}
	bad := []byte{20, 100, 10, 0xff} // /20 but bits set past bit 20
	if _, err := parseNLRI(bad, AFIIPv4, false); err != ErrBadPrefix {
		t.Fatalf("want ErrBadPrefix, got %v", err)
	}
	tooLong := []byte{33, 1, 2, 3, 4, 5}
	if _, err := parseNLRI(tooLong, AFIIPv4, false); err != ErrBadPrefix {
		t.Fatalf("/33: want ErrBadPrefix, got %v", err)
	}
}

func TestNLRIRoundtripProperty(t *testing.T) {
	f := func(a, b, c, d byte, bitsRaw uint8, pathID uint32, withPath bool) bool {
		bits := int(bitsRaw) % 33
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		pfx := netip.PrefixFrom(addr, bits).Masked()
		pp := PathPrefix{Prefix: pfx, PathID: pathID}
		if !withPath {
			pp.PathID = 0
		}
		enc, err := appendNLRI(nil, []PathPrefix{pp}, withPath)
		if err != nil {
			return false
		}
		dec, err := parseNLRI(enc, AFIIPv4, withPath)
		if err != nil || len(dec) != 1 {
			return false
		}
		return dec[0] == pp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "Incomplete" {
		t.Fatal("origin strings")
	}
}

func TestUpdateString(t *testing.T) {
	u := &Update{Attrs: attrsForTest(), NLRI: []PathPrefix{{Prefix: pfx32}},
		Withdrawn: []PathPrefix{{Prefix: pfx24}}}
	s := u.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("announce")) {
		t.Fatalf("String: %q", s)
	}
}

func TestMessageTypeString(t *testing.T) {
	for _, c := range []struct {
		t MessageType
		s string
	}{{MsgOpen, "OPEN"}, {MsgUpdate, "UPDATE"}, {MsgNotification, "NOTIFICATION"}, {MsgKeepalive, "KEEPALIVE"}} {
		if c.t.String() != c.s {
			t.Errorf("%v != %v", c.t.String(), c.s)
		}
	}
}

func BenchmarkMarshalUpdate(b *testing.B) {
	u := &Update{Attrs: attrsForTest(), NLRI: []PathPrefix{{Prefix: pfx32}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(u, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalUpdate(b *testing.B) {
	u := &Update{Attrs: attrsForTest(), NLRI: []PathPrefix{{Prefix: pfx32}}}
	wire, err := Marshal(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Unmarshal(wire, nil); err != nil {
			b.Fatal(err)
		}
	}
}
