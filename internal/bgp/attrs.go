package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Origin is the ORIGIN path attribute value.
type Origin uint8

// Origin codes (RFC 4271 §5.1.1).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "Incomplete"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// AS path segment types (RFC 4271 §5.1.2).
const (
	ASSet      uint8 = 1
	ASSequence uint8 = 2
)

// ASPathSegment is one segment of the AS_PATH attribute. ASNs are always
// 4 octets on our wire (all speakers advertise RFC 6793 support).
type ASPathSegment struct {
	Type uint8 // ASSet or ASSequence
	ASNs []uint32
}

// Path attribute type codes.
const (
	attrOrigin          = 1
	attrASPath          = 2
	attrNextHop         = 3
	attrMED             = 4
	attrLocalPref       = 5
	attrAtomicAggregate = 6
	attrAggregator      = 7
	attrCommunities     = 8
	attrMPReach         = 14
	attrMPUnreach       = 15
	attrExtCommunities  = 16
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// MPReach is the MP_REACH_NLRI attribute carrying non-IPv4 (here: IPv6)
// reachability together with its next hop (RFC 4760 §3).
type MPReach struct {
	AFI     AFI
	SAFI    SAFI
	NextHop netip.Addr
	NLRI    []PathPrefix
}

// MPUnreach is the MP_UNREACH_NLRI attribute withdrawing non-IPv4 routes.
type MPUnreach struct {
	AFI  AFI
	SAFI SAFI
	NLRI []PathPrefix
}

// PathAttrs is the decoded set of path attributes of an UPDATE.
type PathAttrs struct {
	Origin          Origin
	ASPath          []ASPathSegment
	NextHop         netip.Addr // zero when absent (e.g. MP-only updates)
	MED             *uint32
	LocalPref       *uint32
	AtomicAggregate bool
	Communities     []Community
	ExtCommunities  []ExtCommunity
	MPReach         *MPReach
	MPUnreach       *MPUnreach
}

// HasCommunity reports whether c is present in the communities attribute.
func (a *PathAttrs) HasCommunity(c Community) bool {
	for _, x := range a.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// AddCommunity appends c if not already present.
func (a *PathAttrs) AddCommunity(c Community) {
	if !a.HasCommunity(c) {
		a.Communities = append(a.Communities, c)
	}
}

// OriginAS returns the rightmost ASN of the AS_PATH — the route's
// originating AS — or 0 for an empty path.
func (a *PathAttrs) OriginAS() uint32 {
	for i := len(a.ASPath) - 1; i >= 0; i-- {
		seg := a.ASPath[i]
		if seg.Type == ASSequence && len(seg.ASNs) > 0 {
			return seg.ASNs[len(seg.ASNs)-1]
		}
	}
	return 0
}

// PathLen returns the AS_PATH length for best-path comparison: each
// AS_SEQUENCE member counts 1, each AS_SET counts 1 total (RFC 4271 §9.1.2.2).
func (a *PathAttrs) PathLen() int {
	n := 0
	for _, seg := range a.ASPath {
		if seg.Type == ASSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// PrependAS prepends asn to the AS_PATH, creating or extending the
// leading AS_SEQUENCE segment.
func (a *PathAttrs) PrependAS(asn uint32) {
	if len(a.ASPath) > 0 && a.ASPath[0].Type == ASSequence {
		seg := a.ASPath[0]
		a.ASPath[0] = ASPathSegment{Type: ASSequence, ASNs: append([]uint32{asn}, seg.ASNs...)}
		return
	}
	a.ASPath = append([]ASPathSegment{{Type: ASSequence, ASNs: []uint32{asn}}}, a.ASPath...)
}

// Clone returns a deep copy of the attributes; route servers mutate
// copies so peers never share attribute storage.
func (a *PathAttrs) Clone() PathAttrs {
	out := *a
	out.ASPath = make([]ASPathSegment, len(a.ASPath))
	for i, seg := range a.ASPath {
		out.ASPath[i] = ASPathSegment{Type: seg.Type, ASNs: append([]uint32(nil), seg.ASNs...)}
	}
	out.Communities = append([]Community(nil), a.Communities...)
	out.ExtCommunities = append([]ExtCommunity(nil), a.ExtCommunities...)
	if a.MED != nil {
		v := *a.MED
		out.MED = &v
	}
	if a.LocalPref != nil {
		v := *a.LocalPref
		out.LocalPref = &v
	}
	if a.MPReach != nil {
		mp := *a.MPReach
		mp.NLRI = append([]PathPrefix(nil), a.MPReach.NLRI...)
		out.MPReach = &mp
	}
	if a.MPUnreach != nil {
		mp := *a.MPUnreach
		mp.NLRI = append([]PathPrefix(nil), a.MPUnreach.NLRI...)
		out.MPUnreach = &mp
	}
	return out
}

func (a *PathAttrs) String() string {
	var parts []string
	parts = append(parts, "origin="+a.Origin.String())
	if len(a.ASPath) > 0 {
		var b strings.Builder
		b.WriteString("as-path=")
		for i, seg := range a.ASPath {
			if i > 0 {
				b.WriteByte(' ')
			}
			if seg.Type == ASSet {
				b.WriteByte('{')
			}
			for j, as := range seg.ASNs {
				if j > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", as)
			}
			if seg.Type == ASSet {
				b.WriteByte('}')
			}
		}
		parts = append(parts, b.String())
	}
	if a.NextHop.IsValid() {
		parts = append(parts, "next-hop="+a.NextHop.String())
	}
	if len(a.Communities) > 0 {
		cs := make([]string, len(a.Communities))
		for i, c := range a.Communities {
			cs[i] = c.String()
		}
		sort.Strings(cs)
		parts = append(parts, "communities=["+strings.Join(cs, ",")+"]")
	}
	return strings.Join(parts, " ")
}

// appendAttr writes one attribute with flags, type, and (extended when
// needed) length.
func appendAttr(dst []byte, flags, typ uint8, val []byte) ([]byte, error) {
	if len(val) > 0xffff {
		return nil, ErrAttrTooLong
	}
	if len(val) > 0xff {
		flags |= flagExtLen
	}
	dst = append(dst, flags, typ)
	if flags&flagExtLen != 0 {
		dst = append(dst, byte(len(val)>>8), byte(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...), nil
}

// marshalAttrs encodes the attribute set in canonical (ascending type
// code) order.
func (a *PathAttrs) marshalAttrs(opts *Options) ([]byte, error) {
	var dst []byte
	var err error

	dst, err = appendAttr(dst, flagTransitive, attrOrigin, []byte{byte(a.Origin)})
	if err != nil {
		return nil, err
	}

	var asPath []byte
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, ErrAttrTooLong
		}
		asPath = append(asPath, seg.Type, byte(len(seg.ASNs)))
		for _, as := range seg.ASNs {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], as)
			asPath = append(asPath, b[:]...)
		}
	}
	dst, err = appendAttr(dst, flagTransitive, attrASPath, asPath)
	if err != nil {
		return nil, err
	}

	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: NEXT_HOP %v must be IPv4 (use MP_REACH for IPv6)", a.NextHop)
		}
		nh := a.NextHop.As4()
		dst, err = appendAttr(dst, flagTransitive, attrNextHop, nh[:])
		if err != nil {
			return nil, err
		}
	}
	if a.MED != nil {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], *a.MED)
		dst, err = appendAttr(dst, flagOptional, attrMED, b[:])
		if err != nil {
			return nil, err
		}
	}
	if a.LocalPref != nil {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], *a.LocalPref)
		dst, err = appendAttr(dst, flagTransitive, attrLocalPref, b[:])
		if err != nil {
			return nil, err
		}
	}
	if a.AtomicAggregate {
		dst, err = appendAttr(dst, flagTransitive, attrAtomicAggregate, nil)
		if err != nil {
			return nil, err
		}
	}
	if len(a.Communities) > 0 {
		val := make([]byte, 0, len(a.Communities)*4)
		for _, c := range a.Communities {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(c))
			val = append(val, b[:]...)
		}
		dst, err = appendAttr(dst, flagOptional|flagTransitive, attrCommunities, val)
		if err != nil {
			return nil, err
		}
	}
	if a.MPReach != nil {
		mp := a.MPReach
		val := make([]byte, 0, 64)
		val = append(val, byte(mp.AFI>>8), byte(mp.AFI), byte(mp.SAFI))
		var nh []byte
		if mp.NextHop.IsValid() {
			if mp.NextHop.Is4() {
				a4 := mp.NextHop.As4()
				nh = a4[:]
			} else {
				a16 := mp.NextHop.As16()
				nh = a16[:]
			}
		}
		val = append(val, byte(len(nh)))
		val = append(val, nh...)
		val = append(val, 0) // reserved SNPA count
		val, err = appendNLRI(val, mp.NLRI, opts.addPath(mp.AFI))
		if err != nil {
			return nil, err
		}
		dst, err = appendAttr(dst, flagOptional, attrMPReach, val)
		if err != nil {
			return nil, err
		}
	}
	if a.MPUnreach != nil {
		mp := a.MPUnreach
		val := []byte{byte(mp.AFI >> 8), byte(mp.AFI), byte(mp.SAFI)}
		val, err = appendNLRI(val, mp.NLRI, opts.addPath(mp.AFI))
		if err != nil {
			return nil, err
		}
		dst, err = appendAttr(dst, flagOptional, attrMPUnreach, val)
		if err != nil {
			return nil, err
		}
	}
	if len(a.ExtCommunities) > 0 {
		val := make([]byte, 0, len(a.ExtCommunities)*8)
		for _, e := range a.ExtCommunities {
			val = append(val, e[:]...)
		}
		dst, err = appendAttr(dst, flagOptional|flagTransitive, attrExtCommunities, val)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ParseAttrs decodes a standalone path attribute block — the encoding
// between the attribute-length field and the NLRI of an UPDATE. MRT
// TABLE_DUMP_V2 RIB entries store their attributes in exactly this
// framing, which is what the bgppipe MRT reader feeds here.
func ParseAttrs(data []byte, opts *Options) (PathAttrs, error) {
	return parseAttrs(data, opts)
}

// MarshalAttrs encodes the attribute set in the standalone framing
// ParseAttrs decodes (canonical ascending type-code order).
func (a *PathAttrs) MarshalAttrs(opts *Options) ([]byte, error) {
	return a.marshalAttrs(opts)
}

// parseAttrs decodes the path attribute block of an UPDATE.
func parseAttrs(data []byte, opts *Options) (PathAttrs, error) {
	var a PathAttrs
	for len(data) > 0 {
		if len(data) < 3 {
			return a, ErrTruncated
		}
		flags, typ := data[0], data[1]
		var length int
		if flags&flagExtLen != 0 {
			if len(data) < 4 {
				return a, ErrTruncated
			}
			length = int(binary.BigEndian.Uint16(data[2:4]))
			data = data[4:]
		} else {
			length = int(data[2])
			data = data[3:]
		}
		if len(data) < length {
			return a, ErrTruncated
		}
		val := data[:length]
		data = data[length:]

		switch typ {
		case attrOrigin:
			if length != 1 {
				return a, ErrBadAttrFlags
			}
			a.Origin = Origin(val[0])
		case attrASPath:
			for len(val) > 0 {
				if len(val) < 2 {
					return a, ErrTruncated
				}
				segType, count := val[0], int(val[1])
				val = val[2:]
				if len(val) < count*4 {
					return a, ErrTruncated
				}
				seg := ASPathSegment{Type: segType, ASNs: make([]uint32, count)}
				for i := 0; i < count; i++ {
					seg.ASNs[i] = binary.BigEndian.Uint32(val[i*4 : i*4+4])
				}
				val = val[count*4:]
				a.ASPath = append(a.ASPath, seg)
			}
		case attrNextHop:
			if length != 4 {
				return a, ErrBadAttrFlags
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		case attrMED:
			if length != 4 {
				return a, ErrBadAttrFlags
			}
			v := binary.BigEndian.Uint32(val)
			a.MED = &v
		case attrLocalPref:
			if length != 4 {
				return a, ErrBadAttrFlags
			}
			v := binary.BigEndian.Uint32(val)
			a.LocalPref = &v
		case attrAtomicAggregate:
			a.AtomicAggregate = true
		case attrCommunities:
			if length%4 != 0 {
				return a, ErrBadAttrFlags
			}
			for i := 0; i < length; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		case attrExtCommunities:
			if length%8 != 0 {
				return a, ErrBadAttrFlags
			}
			for i := 0; i < length; i += 8 {
				var e ExtCommunity
				copy(e[:], val[i:i+8])
				a.ExtCommunities = append(a.ExtCommunities, e)
			}
		case attrMPReach:
			if length < 5 {
				return a, ErrTruncated
			}
			mp := &MPReach{
				AFI:  AFI(binary.BigEndian.Uint16(val[0:2])),
				SAFI: SAFI(val[2]),
			}
			nhLen := int(val[3])
			if len(val) < 4+nhLen+1 {
				return a, ErrTruncated
			}
			switch nhLen {
			case 0:
			case 4:
				mp.NextHop = netip.AddrFrom4([4]byte(val[4 : 4+4]))
			case 16, 32: // link-local pair: keep the global address
				mp.NextHop = netip.AddrFrom16([16]byte(val[4 : 4+16]))
			default:
				return a, ErrBadAttrFlags
			}
			rest := val[4+nhLen+1:]
			nlri, err := parseNLRI(rest, mp.AFI, opts.addPath(mp.AFI))
			if err != nil {
				return a, err
			}
			mp.NLRI = nlri
			a.MPReach = mp
		case attrMPUnreach:
			if length < 3 {
				return a, ErrTruncated
			}
			mp := &MPUnreach{
				AFI:  AFI(binary.BigEndian.Uint16(val[0:2])),
				SAFI: SAFI(val[2]),
			}
			nlri, err := parseNLRI(val[3:], mp.AFI, opts.addPath(mp.AFI))
			if err != nil {
				return a, err
			}
			mp.NLRI = nlri
			a.MPUnreach = mp
		default:
			// Unknown optional attributes are skipped (and dropped; this
			// route server does not forward unrecognized attrs).
			if flags&flagOptional == 0 {
				return a, fmt.Errorf("bgp: unknown well-known attribute %d", typ)
			}
		}
	}
	return a, nil
}
