package bgp

import "fmt"

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMessageHeaderError uint8 = 1
	NotifOpenMessageError   uint8 = 2
	NotifUpdateMessageError uint8 = 3
	NotifHoldTimerExpired   uint8 = 4
	NotifFSMError           uint8 = 5
	NotifCease              uint8 = 6
)

// Cease subcodes (RFC 4486).
const (
	CeaseAdminShutdown      uint8 = 2
	CeaseAdminReset         uint8 = 4
	CeaseConnectionRejected uint8 = 5
)

// Notification is the BGP NOTIFICATION message; sending one closes the
// session.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() MessageType { return MsgNotification }

func (n *Notification) marshalBody(dst []byte, _ *Options) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func unmarshalNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	data := make([]byte, len(body)-2)
	copy(data, body[2:])
	return &Notification{Code: body[0], Subcode: body[1], Data: data}, nil
}

// Error makes Notification usable as an error value from session code.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code=%d subcode=%d", n.Code, n.Subcode)
}
