package bgp

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func fsNTPDrop() *FlowSpec {
	return &FlowSpec{Components: []FlowSpecComponent{
		DstPrefix(netip.MustParsePrefix("100.10.10.10/32")),
		Numeric(FSIPProto, Eq(17)),
		Numeric(FSSrcPort, Eq(123)),
	}}
}

func TestFlowSpecRoundtrip(t *testing.T) {
	fs := fsNTPDrop()
	wire, err := fs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := UnmarshalFlowSpec(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if !reflect.DeepEqual(got, fs) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, fs)
	}
}

func TestFlowSpecMultiMatchOps(t *testing.T) {
	// Port range 1000-2000: >=1000 AND <=2000.
	fs := &FlowSpec{Components: []FlowSpecComponent{
		Numeric(FSDstPort,
			FlowSpecMatch{GT: true, EQ: true, Value: 1000},
			FlowSpecMatch{AND: true, LT: true, EQ: true, Value: 2000},
		),
	}}
	wire, err := fs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalFlowSpec(wire)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Component(FSDstPort).Matches
	if len(m) != 2 || !m[0].GT || !m[0].EQ || m[0].Value != 1000 {
		t.Fatalf("match 0: %+v", m)
	}
	if !m[1].AND || !m[1].LT || !m[1].EQ || m[1].Value != 2000 {
		t.Fatalf("match 1: %+v", m)
	}
}

func TestFlowSpecOrderEnforced(t *testing.T) {
	fs := &FlowSpec{Components: []FlowSpecComponent{
		Numeric(FSSrcPort, Eq(123)),
		Numeric(FSIPProto, Eq(17)), // out of order
	}}
	if _, err := fs.Marshal(); err != ErrFlowSpecOrder {
		t.Fatalf("err = %v, want order error", err)
	}
	// Duplicate types are also invalid.
	fs2 := &FlowSpec{Components: []FlowSpecComponent{
		Numeric(FSIPProto, Eq(17)),
		Numeric(FSIPProto, Eq(6)),
	}}
	if _, err := fs2.Marshal(); err != ErrFlowSpecOrder {
		t.Fatalf("dup err = %v", err)
	}
}

func TestFlowSpecWideValues(t *testing.T) {
	fs := &FlowSpec{Components: []FlowSpecComponent{
		Numeric(FSPacketLen, Eq(0x1234), Eq(0x12345678), Eq(0x123456789abcdef0)),
	}}
	wire, err := fs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalFlowSpec(wire)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Component(FSPacketLen).Matches
	if m[0].Value != 0x1234 || m[1].Value != 0x12345678 || m[2].Value != 0x123456789abcdef0 {
		t.Fatalf("values: %+v", m)
	}
}

func TestFlowSpecErrors(t *testing.T) {
	if _, _, err := UnmarshalFlowSpec(nil); err != ErrFlowSpecTruncated {
		t.Fatalf("nil: %v", err)
	}
	// Empty numeric component.
	fs := &FlowSpec{Components: []FlowSpecComponent{{Type: FSPort}}}
	if _, err := fs.Marshal(); err != ErrFlowSpecBadComp {
		t.Fatalf("empty matches: %v", err)
	}
	// Prefix component with IPv6 (RFC 5575 is IPv4-only; v6 needs the
	// draft the paper notes is unstandardized).
	fs6 := &FlowSpec{Components: []FlowSpecComponent{DstPrefix(netip.MustParsePrefix("2001:db8::/32"))}}
	if _, err := fs6.Marshal(); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

func TestFlowSpecFuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = UnmarshalFlowSpec(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSpecRoundtripProperty(t *testing.T) {
	f := func(a, b, c, d byte, bits uint8, proto uint8, port uint16) bool {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, d}), int(bits)%33).Masked()
		if proto == 0 {
			proto = 17
		}
		fs := &FlowSpec{Components: []FlowSpecComponent{
			DstPrefix(pfx),
			Numeric(FSIPProto, Eq(uint64(proto))),
			Numeric(FSSrcPort, Eq(uint64(port))),
		}}
		wire, err := fs.Marshal()
		if err != nil {
			return false
		}
		got, n, err := UnmarshalFlowSpec(wire)
		if err != nil || n != len(wire) {
			return false
		}
		return reflect.DeepEqual(got, fs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSpecLongNLRI(t *testing.T) {
	// Force the 2-byte length encoding with many matches.
	comp := FlowSpecComponent{Type: FSPacketLen}
	for i := 0; i < 120; i++ {
		comp.Matches = append(comp.Matches, Eq(uint64(0x10000+i))) // 4-byte operands
	}
	fs := &FlowSpec{Components: []FlowSpecComponent{comp}}
	wire, err := fs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if wire[0]&0xf0 != 0xf0 {
		t.Fatalf("expected 2-byte length, got first byte %x (len %d)", wire[0], len(wire))
	}
	got, n, err := UnmarshalFlowSpec(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	if len(got.Component(FSPacketLen).Matches) != 120 {
		t.Fatal("matches lost")
	}
}

func TestTrafficRateCommunity(t *testing.T) {
	// Drop action: rate 0.
	drop := TrafficRate(64512, 0)
	as, rate, ok := TrafficRateValue(drop)
	if !ok || as != 64512 || rate != 0 {
		t.Fatalf("drop: %d %v %v", as, rate, ok)
	}
	// Rate-limit to 25 MB/s.
	limit := TrafficRate(64512, 25e6)
	_, rate, ok = TrafficRateValue(limit)
	if !ok || rate != 25e6 {
		t.Fatalf("limit: %v %v", rate, ok)
	}
	// Other communities are rejected.
	if _, _, ok := TrafficRateValue(MakeExtCommunity(ExtTypeTwoOctetAS, 2, [6]byte{})); ok {
		t.Fatal("route target parsed as traffic rate")
	}
}

func TestFlowSpecString(t *testing.T) {
	if fsNTPDrop().String() == "" {
		t.Fatal("empty string")
	}
	for _, ty := range []FlowSpecType{FSDstPrefix, FSSrcPrefix, FSIPProto, FSPort, FSDstPort,
		FSSrcPort, FSICMPType, FSICMPCode, FSTCPFlags, FSPacketLen, FSDSCP, FSFragment} {
		if ty.String() == "" {
			t.Fatalf("type %d string", ty)
		}
	}
}

func BenchmarkFlowSpecMarshal(b *testing.B) {
	fs := fsNTPDrop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}
