package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// AFI is an IANA address family identifier.
type AFI uint16

// SAFI is a subsequent address family identifier.
type SAFI uint8

// Address families used by the IXP.
const (
	AFIIPv4 AFI = 1
	AFIIPv6 AFI = 2

	SAFIUnicast SAFI = 1
)

// ASTrans is the 2-octet transition AS number placed in the OPEN "My
// Autonomous System" field by speakers with a 4-octet ASN (RFC 6793).
const ASTrans = 23456

// Capability codes (IANA BGP capability registry).
const (
	CapCodeMultiProtocol = 1
	CapCodeRouteRefresh  = 2
	CapCodeFourOctetAS   = 65
	CapCodeAddPath       = 69
)

// AddPath send/receive modes (RFC 7911 §4).
const (
	AddPathReceive     = 1
	AddPathSend        = 2
	AddPathSendReceive = 3
)

// Capability is one BGP capability advertisement from an OPEN message's
// optional parameters.
type Capability struct {
	Code uint8
	Data []byte
}

// CapMultiProtocol builds a multiprotocol capability (RFC 4760).
func CapMultiProtocol(afi AFI, safi SAFI) Capability {
	d := make([]byte, 4)
	binary.BigEndian.PutUint16(d[0:2], uint16(afi))
	d[3] = byte(safi)
	return Capability{Code: CapCodeMultiProtocol, Data: d}
}

// CapFourOctetAS builds the 4-octet AS number capability (RFC 6793).
func CapFourOctetAS(as uint32) Capability {
	d := make([]byte, 4)
	binary.BigEndian.PutUint32(d, as)
	return Capability{Code: CapCodeFourOctetAS, Data: d}
}

// AddPathTuple is one (AFI, SAFI, mode) element of an ADD-PATH capability.
type AddPathTuple struct {
	AFI  AFI
	SAFI SAFI
	Mode uint8 // AddPathReceive, AddPathSend, or AddPathSendReceive
}

// CapAddPath builds an ADD-PATH capability for the given tuples (RFC 7911).
func CapAddPath(tuples ...AddPathTuple) Capability {
	d := make([]byte, 0, len(tuples)*4)
	for _, t := range tuples {
		var e [4]byte
		binary.BigEndian.PutUint16(e[0:2], uint16(t.AFI))
		e[2] = byte(t.SAFI)
		e[3] = t.Mode
		d = append(d, e[:]...)
	}
	return Capability{Code: CapCodeAddPath, Data: d}
}

// AddPathTuples parses the capability's data as ADD-PATH tuples. It
// returns nil if the capability is not ADD-PATH or is malformed.
func (c Capability) AddPathTuples() []AddPathTuple {
	if c.Code != CapCodeAddPath || len(c.Data)%4 != 0 {
		return nil
	}
	tuples := make([]AddPathTuple, 0, len(c.Data)/4)
	for i := 0; i+4 <= len(c.Data); i += 4 {
		tuples = append(tuples, AddPathTuple{
			AFI:  AFI(binary.BigEndian.Uint16(c.Data[i : i+2])),
			SAFI: SAFI(c.Data[i+2]),
			Mode: c.Data[i+3],
		})
	}
	return tuples
}

// FourOctetAS returns the ASN carried in a 4-octet-AS capability, or
// (0, false) for other capabilities.
func (c Capability) FourOctetAS() (uint32, bool) {
	if c.Code != CapCodeFourOctetAS || len(c.Data) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(c.Data), true
}

// Open is the BGP OPEN message.
type Open struct {
	Version      uint8 // always 4
	AS           uint32
	HoldTime     uint16
	BGPID        netip.Addr // 4-byte router ID
	Capabilities []Capability
}

// NewOpen returns an OPEN with version 4, the 4-octet-AS capability, and
// multiprotocol capabilities for IPv4 and IPv6 unicast.
func NewOpen(as uint32, holdTime uint16, bgpID netip.Addr) *Open {
	return &Open{
		Version:  4,
		AS:       as,
		HoldTime: holdTime,
		BGPID:    bgpID,
		Capabilities: []Capability{
			CapMultiProtocol(AFIIPv4, SAFIUnicast),
			CapMultiProtocol(AFIIPv6, SAFIUnicast),
			CapFourOctetAS(as),
		},
	}
}

// Type implements Message.
func (*Open) Type() MessageType { return MsgOpen }

func (o *Open) marshalBody(dst []byte, _ *Options) ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("bgp: OPEN BGP identifier %v is not IPv4", o.BGPID)
	}
	as2 := uint16(ASTrans)
	if o.AS <= 0xffff {
		as2 = uint16(o.AS)
	}
	var fixed [9]byte
	fixed[0] = o.Version
	binary.BigEndian.PutUint16(fixed[1:3], as2)
	binary.BigEndian.PutUint16(fixed[3:5], o.HoldTime)
	id := o.BGPID.As4()
	copy(fixed[5:9], id[:])
	dst = append(dst, fixed[:]...)

	// Optional parameters: each capability wrapped in an option of type 2.
	var params []byte
	for _, c := range o.Capabilities {
		if len(c.Data) > 255 {
			return nil, ErrBadCapability
		}
		params = append(params, 2, byte(2+len(c.Data)), c.Code, byte(len(c.Data)))
		params = append(params, c.Data...)
	}
	if len(params) > 255 {
		return nil, fmt.Errorf("bgp: OPEN optional parameters too long (%d bytes)", len(params))
	}
	dst = append(dst, byte(len(params)))
	dst = append(dst, params...)
	return dst, nil
}

func unmarshalOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, ErrTruncated
	}
	o := &Open{
		Version:  body[0],
		AS:       uint32(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	optLen := int(body[9])
	opts := body[10:]
	if len(opts) != optLen {
		return nil, ErrBadLength
	}
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, ErrTruncated
		}
		pType, pLen := opts[0], int(opts[1])
		if len(opts) < 2+pLen {
			return nil, ErrTruncated
		}
		val := opts[2 : 2+pLen]
		opts = opts[2+pLen:]
		if pType != 2 { // skip non-capability optional parameters
			continue
		}
		for len(val) > 0 {
			if len(val) < 2 {
				return nil, ErrBadCapability
			}
			cCode, cLen := val[0], int(val[1])
			if len(val) < 2+cLen {
				return nil, ErrBadCapability
			}
			data := make([]byte, cLen)
			copy(data, val[2:2+cLen])
			o.Capabilities = append(o.Capabilities, Capability{Code: cCode, Data: data})
			val = val[2+cLen:]
		}
	}
	// Resolve the true ASN from the 4-octet-AS capability.
	for _, c := range o.Capabilities {
		if as, ok := c.FourOctetAS(); ok {
			o.AS = as
		}
	}
	return o, nil
}

// HasAddPath reports whether the OPEN advertises ADD-PATH with the given
// mode bit (send and/or receive) for the address family.
func (o *Open) HasAddPath(afi AFI, safi SAFI, modeBit uint8) bool {
	for _, c := range o.Capabilities {
		for _, t := range c.AddPathTuples() {
			if t.AFI == afi && t.SAFI == safi && t.Mode&modeBit != 0 {
				return true
			}
		}
	}
	return false
}
