package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"strings"
)

// This file implements the BGP flow specification NLRI of RFC 5575 —
// the signaling candidate Section 4.2.1 evaluates (and rejects) for
// Stellar. It is a full wire implementation: IXP members peering
// bilaterally can exchange Flowspec rules through this stack, and the
// comparison experiments use it to model inter-domain Flowspec
// deployments faithfully.

// FlowSpecType is an RFC 5575 §4 component type.
type FlowSpecType uint8

// Flow specification component types.
const (
	FSDstPrefix FlowSpecType = 1
	FSSrcPrefix FlowSpecType = 2
	FSIPProto   FlowSpecType = 3
	FSPort      FlowSpecType = 4
	FSDstPort   FlowSpecType = 5
	FSSrcPort   FlowSpecType = 6
	FSICMPType  FlowSpecType = 7
	FSICMPCode  FlowSpecType = 8
	FSTCPFlags  FlowSpecType = 9
	FSPacketLen FlowSpecType = 10
	FSDSCP      FlowSpecType = 11
	FSFragment  FlowSpecType = 12
)

func (t FlowSpecType) String() string {
	switch t {
	case FSDstPrefix:
		return "dst-prefix"
	case FSSrcPrefix:
		return "src-prefix"
	case FSIPProto:
		return "ip-proto"
	case FSPort:
		return "port"
	case FSDstPort:
		return "dst-port"
	case FSSrcPort:
		return "src-port"
	case FSICMPType:
		return "icmp-type"
	case FSICMPCode:
		return "icmp-code"
	case FSTCPFlags:
		return "tcp-flags"
	case FSPacketLen:
		return "packet-len"
	case FSDSCP:
		return "dscp"
	case FSFragment:
		return "fragment"
	default:
		return fmt.Sprintf("FlowSpecType(%d)", uint8(t))
	}
}

// Numeric operator bits (RFC 5575 §4, numeric operand encoding).
const (
	fsOpEnd = 0x80 // end-of-list
	fsOpAnd = 0x40 // AND with previous
	fsOpLT  = 0x04
	fsOpGT  = 0x02
	fsOpEQ  = 0x01
)

// FlowSpecMatch is one (operator, value) pair of a numeric component.
type FlowSpecMatch struct {
	// AND combines this match with the previous one (default: OR).
	AND bool
	LT  bool
	GT  bool
	EQ  bool
	// Value is the operand (ports, protocol numbers, lengths...).
	Value uint64
}

// Eq returns an equality match for v.
func Eq(v uint64) FlowSpecMatch { return FlowSpecMatch{EQ: true, Value: v} }

// FlowSpecComponent is one typed component of a flow specification.
type FlowSpecComponent struct {
	Type FlowSpecType
	// Prefix is set for FSDstPrefix / FSSrcPrefix.
	Prefix netip.Prefix
	// Matches is set for numeric component types.
	Matches []FlowSpecMatch
}

// FlowSpec is an ordered RFC 5575 flow specification.
type FlowSpec struct {
	Components []FlowSpecComponent
}

// Flowspec errors.
var (
	ErrFlowSpecOrder     = errors.New("bgp: flowspec components out of order")
	ErrFlowSpecBadComp   = errors.New("bgp: malformed flowspec component")
	ErrFlowSpecTooLong   = errors.New("bgp: flowspec NLRI too long")
	ErrFlowSpecTruncated = errors.New("bgp: truncated flowspec NLRI")
)

// DstPrefix returns a destination-prefix component.
func DstPrefix(p netip.Prefix) FlowSpecComponent {
	return FlowSpecComponent{Type: FSDstPrefix, Prefix: p.Masked()}
}

// SrcPrefix returns a source-prefix component.
func SrcPrefix(p netip.Prefix) FlowSpecComponent {
	return FlowSpecComponent{Type: FSSrcPrefix, Prefix: p.Masked()}
}

// Numeric returns a numeric component of the given type.
func Numeric(t FlowSpecType, matches ...FlowSpecMatch) FlowSpecComponent {
	return FlowSpecComponent{Type: t, Matches: matches}
}

// Marshal encodes the flow specification as wire-format NLRI including
// the leading length. Components must be in strictly ascending type
// order (RFC 5575 §4: "components ... MUST follow the order").
func (f *FlowSpec) Marshal() ([]byte, error) {
	var body []byte
	prev := FlowSpecType(0)
	for _, c := range f.Components {
		if c.Type <= prev {
			return nil, ErrFlowSpecOrder
		}
		prev = c.Type
		body = append(body, byte(c.Type))
		switch c.Type {
		case FSDstPrefix, FSSrcPrefix:
			if !c.Prefix.IsValid() || !c.Prefix.Addr().Is4() {
				return nil, fmt.Errorf("bgp: flowspec %s needs an IPv4 prefix", c.Type)
			}
			bits := c.Prefix.Bits()
			body = append(body, byte(bits))
			a := c.Prefix.Addr().As4()
			body = append(body, a[:(bits+7)/8]...)
		default:
			if len(c.Matches) == 0 {
				return nil, ErrFlowSpecBadComp
			}
			for i, m := range c.Matches {
				op := byte(0)
				if i == len(c.Matches)-1 {
					op |= fsOpEnd
				}
				if m.AND {
					op |= fsOpAnd
				}
				if m.LT {
					op |= fsOpLT
				}
				if m.GT {
					op |= fsOpGT
				}
				if m.EQ {
					op |= fsOpEQ
				}
				valLen, lenBits := fsValueLen(m.Value)
				op |= lenBits << 4
				body = append(body, op)
				switch valLen {
				case 1:
					body = append(body, byte(m.Value))
				case 2:
					var b [2]byte
					binary.BigEndian.PutUint16(b[:], uint16(m.Value))
					body = append(body, b[:]...)
				case 4:
					var b [4]byte
					binary.BigEndian.PutUint32(b[:], uint32(m.Value))
					body = append(body, b[:]...)
				default:
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], m.Value)
					body = append(body, b[:]...)
				}
			}
		}
	}
	if len(body) >= 0xf000 {
		return nil, ErrFlowSpecTooLong
	}
	// Length: 1 byte when < 240, else 2 bytes with 0xF high nibble.
	if len(body) < 240 {
		return append([]byte{byte(len(body))}, body...), nil
	}
	hdr := []byte{0xf0 | byte(len(body)>>8), byte(len(body))}
	return append(hdr, body...), nil
}

// fsValueLen picks the smallest encodable operand width and its length
// bits (00=1, 01=2, 10=4, 11=8 bytes).
func fsValueLen(v uint64) (int, byte) {
	switch {
	case v <= 0xff:
		return 1, 0
	case v <= 0xffff:
		return 2, 1
	case v <= 0xffffffff:
		return 4, 2
	default:
		return 8, 3
	}
}

// UnmarshalFlowSpec decodes one flow specification NLRI from data,
// returning the spec and the number of bytes consumed.
func UnmarshalFlowSpec(data []byte) (*FlowSpec, int, error) {
	if len(data) < 1 {
		return nil, 0, ErrFlowSpecTruncated
	}
	var length, off int
	if data[0]&0xf0 == 0xf0 {
		if len(data) < 2 {
			return nil, 0, ErrFlowSpecTruncated
		}
		length = int(data[0]&0x0f)<<8 | int(data[1])
		off = 2
	} else {
		length = int(data[0])
		off = 1
	}
	if len(data) < off+length {
		return nil, 0, ErrFlowSpecTruncated
	}
	body := data[off : off+length]
	consumed := off + length

	fs := &FlowSpec{}
	prev := FlowSpecType(0)
	for len(body) > 0 {
		t := FlowSpecType(body[0])
		if t <= prev {
			return nil, 0, ErrFlowSpecOrder
		}
		prev = t
		body = body[1:]
		switch t {
		case FSDstPrefix, FSSrcPrefix:
			if len(body) < 1 {
				return nil, 0, ErrFlowSpecTruncated
			}
			bits := int(body[0])
			if bits > 32 {
				return nil, 0, ErrFlowSpecBadComp
			}
			body = body[1:]
			nBytes := (bits + 7) / 8
			if len(body) < nBytes {
				return nil, 0, ErrFlowSpecTruncated
			}
			var a [4]byte
			copy(a[:], body[:nBytes])
			body = body[nBytes:]
			pfx := netip.PrefixFrom(netip.AddrFrom4(a), bits)
			if pfx != pfx.Masked() {
				return nil, 0, ErrFlowSpecBadComp
			}
			fs.Components = append(fs.Components, FlowSpecComponent{Type: t, Prefix: pfx})
		default:
			var matches []FlowSpecMatch
			for {
				if len(body) < 1 {
					return nil, 0, ErrFlowSpecTruncated
				}
				op := body[0]
				body = body[1:]
				valLen := 1 << ((op >> 4) & 0x3)
				if len(body) < valLen {
					return nil, 0, ErrFlowSpecTruncated
				}
				var v uint64
				for i := 0; i < valLen; i++ {
					v = v<<8 | uint64(body[i])
				}
				body = body[valLen:]
				matches = append(matches, FlowSpecMatch{
					AND:   op&fsOpAnd != 0,
					LT:    op&fsOpLT != 0,
					GT:    op&fsOpGT != 0,
					EQ:    op&fsOpEQ != 0,
					Value: v,
				})
				if op&fsOpEnd != 0 {
					break
				}
			}
			fs.Components = append(fs.Components, FlowSpecComponent{Type: t, Matches: matches})
		}
	}
	return fs, consumed, nil
}

// Component returns the component of the given type, or nil.
func (f *FlowSpec) Component(t FlowSpecType) *FlowSpecComponent {
	for i := range f.Components {
		if f.Components[i].Type == t {
			return &f.Components[i]
		}
	}
	return nil
}

func (f *FlowSpec) String() string {
	parts := make([]string, 0, len(f.Components))
	for _, c := range f.Components {
		switch c.Type {
		case FSDstPrefix, FSSrcPrefix:
			parts = append(parts, fmt.Sprintf("%s=%s", c.Type, c.Prefix))
		default:
			ms := make([]string, len(c.Matches))
			for i, m := range c.Matches {
				op := ""
				if m.LT {
					op += "<"
				}
				if m.GT {
					op += ">"
				}
				if m.EQ {
					op += "="
				}
				ms[i] = fmt.Sprintf("%s%d", op, m.Value)
			}
			parts = append(parts, fmt.Sprintf("%s%s", c.Type, strings.Join(ms, "|")))
		}
	}
	return strings.Join(parts, " ")
}

// Traffic filtering actions (RFC 5575 §7) travel as extended
// communities. ExtSubTypeTrafficRate is the rate limiter: a rate of 0
// drops matching traffic.
const ExtSubTypeTrafficRate uint8 = 0x06

// TrafficRate builds the traffic-rate extended community: informative
// 2-octet AS plus an IEEE float rate in bytes per second.
func TrafficRate(as uint16, bytesPerSec float32) ExtCommunity {
	var v [6]byte
	binary.BigEndian.PutUint16(v[0:2], as)
	binary.BigEndian.PutUint32(v[2:6], math.Float32bits(bytesPerSec))
	return MakeExtCommunity(ExtTypeExperimental, ExtSubTypeTrafficRate, v)
}

// TrafficRateValue parses a traffic-rate extended community; ok is false
// for other communities.
func TrafficRateValue(e ExtCommunity) (as uint16, bytesPerSec float32, ok bool) {
	if e.Type() != ExtTypeExperimental || e.SubType() != ExtSubTypeTrafficRate {
		return 0, 0, false
	}
	v := e.Value()
	return binary.BigEndian.Uint16(v[0:2]), math.Float32frombits(binary.BigEndian.Uint32(v[2:6])), true
}
