// Package bgp implements the BGP-4 wire format (RFC 4271) together with
// the extensions Stellar's signaling layer depends on: the communities
// attribute (RFC 1997), extended communities (RFC 4360), the well-known
// BLACKHOLE community (RFC 7999), 4-octet AS numbers (RFC 6793),
// multiprotocol NLRI for IPv6 (RFC 4760), and the ADD-PATH capability
// (RFC 7911) that the blackholing controller uses to see all paths for a
// prefix instead of the route server's single best path.
//
// The package is transport-agnostic: Marshal/Unmarshal operate on byte
// slices, and ReadMessage frames messages from any io.Reader. The session
// engine in package bgpsession drives it over net.Conn.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MessageType is the BGP message type code from the common header.
type MessageType uint8

// BGP message types (RFC 4271 §4.1).
const (
	MsgOpen         MessageType = 1
	MsgUpdate       MessageType = 2
	MsgNotification MessageType = 3
	MsgKeepalive    MessageType = 4
)

func (t MessageType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Protocol limits (RFC 4271 §4.1).
const (
	headerLen  = 19
	maxMsgLen  = 4096
	markerByte = 0xff
)

// Wire format errors.
var (
	ErrTruncated     = errors.New("bgp: truncated message")
	ErrBadMarker     = errors.New("bgp: bad marker")
	ErrBadLength     = errors.New("bgp: bad message length")
	ErrBadType       = errors.New("bgp: unknown message type")
	ErrAttrTooLong   = errors.New("bgp: attribute exceeds message capacity")
	ErrBadAttrFlags  = errors.New("bgp: malformed attribute flags")
	ErrBadPrefix     = errors.New("bgp: malformed NLRI prefix")
	ErrBadCapability = errors.New("bgp: malformed capability")
)

// Message is a decoded BGP message body.
type Message interface {
	// Type returns the message type code placed in the common header.
	Type() MessageType
	// marshalBody appends the message body (everything after the common
	// header) to dst.
	marshalBody(dst []byte, opts *Options) ([]byte, error)
}

// Options carries the per-session decode/encode state negotiated via
// capabilities: whether ADD-PATH path identifiers are present in NLRI
// fields, per address family.
type Options struct {
	// AddPathIPv4 and AddPathIPv6 enable 4-byte path identifiers on
	// the corresponding NLRI encodings (RFC 7911 §3).
	AddPathIPv4 bool
	AddPathIPv6 bool
}

func (o *Options) addPath(a AFI) bool {
	if o == nil {
		return false
	}
	switch a {
	case AFIIPv4:
		return o.AddPathIPv4
	case AFIIPv6:
		return o.AddPathIPv6
	}
	return false
}

// Marshal encodes a message with its common header. A nil opts behaves as
// the zero Options (no ADD-PATH).
func Marshal(m Message, opts *Options) ([]byte, error) {
	buf := make([]byte, headerLen, 64)
	for i := 0; i < 16; i++ {
		buf[i] = markerByte
	}
	buf[18] = byte(m.Type())
	buf, err := m.marshalBody(buf, opts)
	if err != nil {
		return nil, err
	}
	if len(buf) > maxMsgLen {
		return nil, ErrBadLength
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Unmarshal decodes a single complete message from data. It returns the
// message and the number of bytes consumed, allowing several messages to
// be unpacked from one buffer.
func Unmarshal(data []byte, opts *Options) (Message, int, error) {
	if len(data) < headerLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if data[i] != markerByte {
			return nil, 0, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(data[16:18]))
	if length < headerLen || length > maxMsgLen {
		return nil, 0, ErrBadLength
	}
	if len(data) < length {
		return nil, 0, ErrTruncated
	}
	body := data[headerLen:length]
	var (
		m   Message
		err error
	)
	switch MessageType(data[18]) {
	case MsgOpen:
		m, err = unmarshalOpen(body)
	case MsgUpdate:
		m, err = unmarshalUpdate(body, opts)
	case MsgNotification:
		m, err = unmarshalNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, 0, ErrBadLength
		}
		m = &Keepalive{}
	default:
		return nil, 0, ErrBadType
	}
	if err != nil {
		return nil, 0, err
	}
	return m, length, nil
}

// ReadMessage reads exactly one framed message from r.
func ReadMessage(r io.Reader, opts *Options) (Message, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < headerLen || length > maxMsgLen {
		return nil, ErrBadLength
	}
	buf := make([]byte, length)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, err
	}
	m, _, err := Unmarshal(buf, opts)
	return m, err
}

// WriteMessage marshals m and writes it to w.
func WriteMessage(w io.Writer, m Message, opts *Options) error {
	buf, err := Marshal(m, opts)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Keepalive is the (empty) KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MessageType { return MsgKeepalive }

func (*Keepalive) marshalBody(dst []byte, _ *Options) ([]byte, error) { return dst, nil }
