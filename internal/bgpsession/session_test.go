package bgpsession

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"stellar/internal/bgp"
)

var (
	idA = netip.MustParseAddr("10.0.0.1")
	idB = netip.MustParseAddr("10.0.0.2")
)

func TestHandshakeEstablished(t *testing.T) {
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA},
		Config{LocalAS: 64513, BGPID: idB},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v %v", sa.State(), sb.State())
	}
	if sa.PeerOpen().AS != 64513 || sb.PeerOpen().AS != 64512 {
		t.Fatalf("peer AS: %d %d", sa.PeerOpen().AS, sb.PeerOpen().AS)
	}
}

func TestUpdateDelivery(t *testing.T) {
	var mu sync.Mutex
	var got []*bgp.Update
	recvd := make(chan struct{}, 16)
	handler := func(e Event) {
		if e.Update != nil {
			mu.Lock()
			got = append(got, e.Update)
			mu.Unlock()
			recvd <- struct{}{}
		}
	}
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA},
		Config{LocalAS: 64513, BGPID: idB},
		nil, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()

	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			Communities: []bgp.Community{
				bgp.CommunityBlackhole,
			},
		},
		NLRI: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("100.10.10.10/32")}},
	}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recvd:
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || !got[0].Attrs.HasCommunity(bgp.CommunityBlackhole) {
		t.Fatalf("got %v", got)
	}
}

func TestAddPathNegotiation(t *testing.T) {
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA, AddPath: true},
		Config{LocalAS: 64512, BGPID: idB, AddPath: true}, // iBGP
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()
	if !sa.Options().AddPathIPv4 || !sb.Options().AddPathIPv4 {
		t.Fatalf("ADD-PATH not negotiated: %+v %+v", sa.Options(), sb.Options())
	}
}

func TestAddPathAsymmetric(t *testing.T) {
	// Only one side offers ADD-PATH: neither may use it.
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA, AddPath: true},
		Config{LocalAS: 64513, BGPID: idB, AddPath: false},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()
	if sa.Options().AddPathIPv4 {
		t.Fatal("ADD-PATH negotiated against a non-supporting peer")
	}
}

func TestAddPathUpdateRoundtrip(t *testing.T) {
	recvd := make(chan *bgp.Update, 1)
	handler := func(e Event) {
		if e.Update != nil {
			select {
			case recvd <- e.Update:
			default:
			}
		}
	}
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA, AddPath: true},
		Config{LocalAS: 64512, BGPID: idB, AddPath: true},
		nil, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()

	pfx := netip.MustParsePrefix("100.10.10.10/32")
	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
		},
		NLRI: []bgp.PathPrefix{{Prefix: pfx, PathID: 7}, {Prefix: pfx, PathID: 9}},
	}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvd:
		if len(got.NLRI) != 2 || got.NLRI[0].PathID != 7 || got.NLRI[1].PathID != 9 {
			t.Fatalf("NLRI: %v", got.NLRI)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no update")
	}
}

func TestExpectASMismatch(t *testing.T) {
	ca, cb := net.Pipe()
	sa := New(ca, Config{LocalAS: 64512, BGPID: idA, ExpectAS: 65000}, nil)
	sb := New(cb, Config{LocalAS: 64513, BGPID: idB}, nil)
	done := make(chan error, 2)
	go func() { done <- sa.Run() }()
	go func() { done <- sb.Run() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	<-sa.Done()
	if sa.Err() != ErrBadPeerAS {
		t.Fatalf("err = %v, want ErrBadPeerAS", sa.Err())
	}
}

func TestPassiveCannotAnnounce(t *testing.T) {
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA, Passive: true},
		Config{LocalAS: 64512, BGPID: idB},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()
	if err := sa.SendUpdate(&bgp.Update{}); err == nil {
		t.Fatal("passive session announced")
	}
}

func TestSendBeforeEstablished(t *testing.T) {
	ca, _ := net.Pipe()
	s := New(ca, Config{LocalAS: 1, BGPID: idA}, nil)
	if err := s.SendUpdate(&bgp.Update{}); err != ErrNotEstablished {
		t.Fatalf("err = %v", err)
	}
	ca.Close()
}

func TestCloseDeliversClosedEvent(t *testing.T) {
	closed := make(chan Event, 8)
	handler := func(e Event) {
		if e.Update == nil && e.State == StateClosed {
			select {
			case closed <- e:
			default:
			}
		}
	}
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA},
		Config{LocalAS: 64513, BGPID: idB},
		handler, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("no Closed event")
	}
	<-sa.Done()
	if sa.State() != StateClosed {
		t.Fatalf("state = %v", sa.State())
	}
	sb.Close()
}

func TestNotificationClosesPeer(t *testing.T) {
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA},
		Config{LocalAS: 64513, BGPID: idB},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa.Close() // sends CEASE
	select {
	case <-sb.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("peer did not close on NOTIFICATION")
	}
}

func TestKeepalivesMaintainSession(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA, HoldTime: 300 * time.Millisecond},
		Config{LocalAS: 64513, BGPID: idB, HoldTime: 300 * time.Millisecond},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	defer sb.Close()
	// Hold time is 300ms; if keepalives were not sent the session would
	// die within ~300ms. Survive 4x that.
	time.Sleep(1200 * time.Millisecond)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("session died: %v %v (%v %v)", sa.State(), sb.State(), sa.Err(), sb.Err())
	}
}

// TestHoldTimerExpiryNotifies pins RFC 4271 §6.5 behavior: when the
// peer falls silent past the hold time, the session sends a
// NOTIFICATION (Hold Timer Expired) before closing the transport.
func TestHoldTimerExpiryNotifies(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ca, cb := net.Pipe()
	s := New(ca, Config{LocalAS: 64512, BGPID: idA, HoldTime: 200 * time.Millisecond}, nil)
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run() }()

	// Hand-rolled peer: complete the OPEN/KEEPALIVE handshake, then go
	// silent — reading everything the session sends but never writing
	// another keepalive.
	if err := bgp.WriteMessage(cb, bgp.NewOpen(64513, 1, idB), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bgp.ReadMessage(cb, nil); err != nil {
		t.Fatal(err)
	}
	if err := bgp.WriteMessage(cb, &bgp.Keepalive{}, nil); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no NOTIFICATION before deadline")
		}
		_ = cb.SetReadDeadline(time.Now().Add(time.Second))
		msg, err := bgp.ReadMessage(cb, nil)
		if err != nil {
			t.Fatalf("transport closed before NOTIFICATION arrived: %v", err)
		}
		if n, ok := msg.(*bgp.Notification); ok {
			if n.Code != bgp.NotifHoldTimerExpired {
				t.Fatalf("NOTIFICATION code = %d, want hold timer expired", n.Code)
			}
			break
		}
	}
	select {
	case err := <-runErr:
		if err != ErrHoldExpired {
			t.Fatalf("Run returned %v, want ErrHoldExpired", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session did not close after hold expiry")
	}
	cb.Close()
}

// TestSendUpdatesAfterClose pins the deterministic error contract: a
// sender racing Close sees ErrClosed — never the transport's raw
// "use of closed connection" — because close() marks the state before
// closing the conn and SendUpdates maps write failures back through it.
func TestSendUpdatesAfterClose(t *testing.T) {
	sa, sb, err := Pair(
		Config{LocalAS: 64512, BGPID: idA},
		Config{LocalAS: 64513, BGPID: idB},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
		},
		NLRI: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("203.0.113.0/24")}},
	}
	sendErr := make(chan error, 1)
	go func() {
		for {
			if err := sa.SendUpdate(u); err != nil {
				sendErr <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	sa.Close()
	select {
	case err := <-sendErr:
		if err != ErrClosed {
			t.Fatalf("racing sender got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender never observed the close")
	}
	// And after Close returned, the error is ErrClosed every time.
	for i := 0; i < 3; i++ {
		if err := sa.SendUpdate(u); err != ErrClosed {
			t.Fatalf("SendUpdate after Close = %v, want ErrClosed", err)
		}
	}
}

func TestStateString(t *testing.T) {
	for _, c := range []struct {
		s State
		w string
	}{{StateIdle, "Idle"}, {StateOpenSent, "OpenSent"}, {StateOpenConfirm, "OpenConfirm"},
		{StateEstablished, "Established"}, {StateClosed, "Closed"}} {
		if c.s.String() != c.w {
			t.Errorf("%v != %v", c.s.String(), c.w)
		}
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	recvd := make(chan *bgp.Update, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s := New(conn, Config{LocalAS: 64513, BGPID: idB}, func(e Event) {
			if e.Update != nil {
				select {
				case recvd <- e.Update:
				default:
				}
			}
		})
		_ = s.Run()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := New(conn, Config{LocalAS: 64512, BGPID: idA}, nil)
	go client.Run()
	defer client.Close()

	deadline := time.Now().Add(3 * time.Second)
	for client.State() != StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("not established: %v (%v)", client.State(), client.Err())
		}
		time.Sleep(time.Millisecond)
	}
	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
		},
		NLRI: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("203.0.113.0/24")}},
	}
	if err := client.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvd:
		if len(got.NLRI) != 1 {
			t.Fatalf("NLRI: %v", got.NLRI)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no update over TCP")
	}
}
