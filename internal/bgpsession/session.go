// Package bgpsession implements a BGP speaker's session engine: the
// finite-state machine of RFC 4271 §8 reduced to the states an IXP route
// server and Stellar's blackholing controller exercise (Idle, OpenSent,
// OpenConfirm, Established), running over any net.Conn.
//
// The engine is deliberately connection-driven rather than timer-driven
// for the Connect/Active states: the caller supplies an established
// transport (a TCP connection or a net.Pipe in tests) and the session
// performs the OPEN exchange, capability negotiation (4-octet AS,
// multiprotocol, ADD-PATH), keepalives and hold-time enforcement.
package bgpsession

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"stellar/internal/bgp"
)

// State is the FSM state of a session.
type State int32

// Session states (RFC 4271 §8.2.2; Connect/Active collapsed into the
// caller-provided transport).
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config parameterizes a session endpoint.
type Config struct {
	// LocalAS is this speaker's AS number. The blackholing controller
	// runs iBGP (LocalAS == peer's AS) so it needs no AS of its own
	// (Section 4.3).
	LocalAS uint32
	// BGPID is the 4-byte router identifier.
	BGPID netip.Addr
	// HoldTime is the proposed hold time; 0 disables keepalives (useful
	// in deterministic tests). The effective hold time is the minimum of
	// both speakers' proposals.
	HoldTime time.Duration
	// AddPath requests ADD-PATH send+receive for IPv4 and IPv6 unicast.
	AddPath bool
	// Passive suppresses route announcements; the blackholing controller
	// is passive (it only collects).
	Passive bool
	// ExpectAS, when non-zero, closes the session if the peer's OPEN
	// carries a different AS.
	ExpectAS uint32
}

// Event is a session lifecycle or routing event delivered to the handler.
type Event struct {
	// Update is non-nil for received UPDATE messages.
	Update *bgp.Update
	// State is set (with Update == nil) on state transitions.
	State State
	// Err carries the terminal error on transition to StateClosed.
	Err error
}

// Handler receives session events. Calls are serialized.
//
// Deprecated: callback wiring is a façade kept for existing callers;
// new integrations should attach sessions to a bgppipe.Pipe (Speaker /
// Listen stages), where lifecycle and routing events travel one ordered
// message stream shared with replay sources and the route-server feed.
type Handler func(Event)

// Session is one BGP session over a net.Conn.
type Session struct {
	cfg     Config
	conn    net.Conn
	handler Handler

	mu        sync.Mutex
	state     State
	peerOpen  *bgp.Open
	opts      bgp.Options
	holdTime  time.Duration
	closeOnce sync.Once
	closeErr  error
	writeMu   sync.Mutex
	done      chan struct{}
}

// Errors returned by session operations.
var (
	ErrNotEstablished = errors.New("bgpsession: session not established")
	ErrClosed         = errors.New("bgpsession: session closed")
	ErrBadPeerAS      = errors.New("bgpsession: unexpected peer AS")
	ErrHoldExpired    = errors.New("bgpsession: hold timer expired")
)

// New creates a session over conn. The handler may be nil. Call Run to
// perform the OPEN exchange and start the receive loop.
func New(conn net.Conn, cfg Config, handler Handler) *Session {
	if handler == nil {
		handler = func(Event) {}
	}
	return &Session{cfg: cfg, conn: conn, handler: handler, state: StateIdle, done: make(chan struct{})}
}

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// PeerOpen returns the peer's OPEN message once the session reached
// OpenConfirm, else nil.
func (s *Session) PeerOpen() *bgp.Open {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerOpen
}

// Options returns the negotiated encode/decode options (ADD-PATH flags).
// Valid once Established.
func (s *Session) Options() bgp.Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts
}

// Done is closed when the session terminates.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the terminal error after Done is closed.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
	s.handler(Event{State: st})
}

// Run performs the OPEN/KEEPALIVE handshake and then receives messages
// until the session closes. It blocks; run it in a goroutine. The
// returned error is the reason the session ended (nil on clean Close).
func (s *Session) Run() error {
	open := bgp.NewOpen(s.cfg.LocalAS, uint16(s.cfg.HoldTime/time.Second), s.cfg.BGPID)
	if s.cfg.AddPath {
		open.Capabilities = append(open.Capabilities, bgp.CapAddPath(
			bgp.AddPathTuple{AFI: bgp.AFIIPv4, SAFI: bgp.SAFIUnicast, Mode: bgp.AddPathSendReceive},
			bgp.AddPathTuple{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast, Mode: bgp.AddPathSendReceive},
		))
	}
	// Write concurrently with reading the peer's OPEN: over fully
	// synchronous transports (net.Pipe) both speakers write first, so a
	// blocking write here would deadlock the handshake.
	openErr := make(chan error, 1)
	go func() { openErr <- s.write(open) }()
	s.setState(StateOpenSent)

	msg, err := bgp.ReadMessage(s.conn, nil)
	if err != nil {
		return s.close(err)
	}
	if err := <-openErr; err != nil {
		return s.close(err)
	}
	peerOpen, ok := msg.(*bgp.Open)
	if !ok {
		return s.close(fmt.Errorf("bgpsession: expected OPEN, got %v", msg.Type()))
	}
	if s.cfg.ExpectAS != 0 && peerOpen.AS != s.cfg.ExpectAS {
		notif := &bgp.Notification{Code: bgp.NotifOpenMessageError, Subcode: 2 /* bad peer AS */}
		_ = s.write(notif)
		return s.close(ErrBadPeerAS)
	}

	// Negotiate: ADD-PATH applies in a direction only if we offered it
	// and the peer advertised the complementary mode.
	var opts bgp.Options
	if s.cfg.AddPath {
		opts.AddPathIPv4 = peerOpen.HasAddPath(bgp.AFIIPv4, bgp.SAFIUnicast, bgp.AddPathSend|bgp.AddPathReceive)
		opts.AddPathIPv6 = peerOpen.HasAddPath(bgp.AFIIPv6, bgp.SAFIUnicast, bgp.AddPathSend|bgp.AddPathReceive)
	}
	hold := s.cfg.HoldTime
	if peerHold := time.Duration(peerOpen.HoldTime) * time.Second; peerHold < hold {
		hold = peerHold
	}
	s.mu.Lock()
	s.peerOpen = peerOpen
	s.opts = opts
	s.holdTime = hold
	s.mu.Unlock()

	kaErr := make(chan error, 1)
	go func() { kaErr <- s.write(&bgp.Keepalive{}) }()
	s.setState(StateOpenConfirm)

	// Wait for the peer's KEEPALIVE confirming our OPEN.
	msg, err = bgp.ReadMessage(s.conn, &opts)
	if err != nil {
		return s.close(err)
	}
	if err := <-kaErr; err != nil {
		return s.close(err)
	}
	switch m := msg.(type) {
	case *bgp.Keepalive:
	case *bgp.Notification:
		return s.close(m)
	default:
		return s.close(fmt.Errorf("bgpsession: expected KEEPALIVE, got %v", msg.Type()))
	}
	s.setState(StateEstablished)

	stopKeepalive := make(chan struct{})
	var ka sync.WaitGroup
	if hold > 0 {
		ka.Add(1)
		go func() {
			defer ka.Done()
			t := time.NewTicker(hold / 3)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := s.write(&bgp.Keepalive{}); err != nil {
						return
					}
				case <-stopKeepalive:
					return
				}
			}
		}()
	}
	err = s.receiveLoop(hold, &opts)
	close(stopKeepalive)
	// Close the transport before joining the keepalive goroutine: a
	// keepalive write can be blocked mid-send on a peer that stopped
	// reading (hold expiry means exactly that), and only the conn close
	// unblocks it. Waiting first would deadlock Run.
	s.close(err)
	ka.Wait()
	return err
}

func (s *Session) receiveLoop(hold time.Duration, opts *bgp.Options) error {
	for {
		if hold > 0 {
			if err := s.conn.SetReadDeadline(time.Now().Add(hold)); err != nil {
				return err
			}
		}
		msg, err := bgp.ReadMessage(s.conn, opts)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				_ = s.write(&bgp.Notification{Code: bgp.NotifHoldTimerExpired})
				return ErrHoldExpired
			}
			return err
		}
		switch m := msg.(type) {
		case *bgp.Update:
			s.handler(Event{Update: m})
		case *bgp.Keepalive:
			// refreshes the hold timer implicitly via the next deadline
		case *bgp.Notification:
			return m
		default:
			return fmt.Errorf("bgpsession: unexpected %v in Established", msg.Type())
		}
	}
}

// SendUpdate sends an UPDATE; the session must be Established and not
// configured Passive.
func (s *Session) SendUpdate(u *bgp.Update) error {
	return s.SendUpdates([]*bgp.Update{u})
}

// SendUpdates sends a batch of UPDATEs back to back under one writer-lock
// acquisition, preserving order against concurrent senders. The route
// server's batched export path uses it to flush a peer's whole update set
// without interleaving messages from other pipelines.
func (s *Session) SendUpdates(us []*bgp.Update) error {
	if s.cfg.Passive {
		return errors.New("bgpsession: passive session cannot announce")
	}
	s.mu.Lock()
	st, opts := s.state, s.opts
	s.mu.Unlock()
	if st == StateClosed {
		return ErrClosed
	}
	if st != StateEstablished {
		return ErrNotEstablished
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	for _, u := range us {
		if err := bgp.WriteMessage(s.conn, u, &opts); err != nil {
			// The session may have closed between the state check above
			// and the write: close() marks the state before closing the
			// transport, so a sender racing Close always maps the
			// transport's error back to the deterministic ErrClosed.
			if s.State() == StateClosed {
				return ErrClosed
			}
			return err
		}
	}
	return nil
}

// Close terminates the session with an administrative-shutdown
// NOTIFICATION. The write is bounded by a short deadline so Close never
// blocks on a peer that has stopped reading.
func (s *Session) Close() error {
	_ = s.conn.SetWriteDeadline(time.Now().Add(time.Second))
	_ = s.write(&bgp.Notification{Code: bgp.NotifCease, Subcode: bgp.CeaseAdminShutdown})
	s.close(nil)
	return nil
}

func (s *Session) close(err error) error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.state = StateClosed
		s.closeErr = err
		s.mu.Unlock()
		_ = s.conn.Close()
		s.handler(Event{State: StateClosed, Err: err})
		close(s.done)
	})
	return err
}

func (s *Session) write(m bgp.Message) error { return s.writeOpts(m, nil) }

func (s *Session) writeOpts(m bgp.Message, opts *bgp.Options) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return bgp.WriteMessage(s.conn, m, opts)
}

// Pair wires two sessions over an in-memory pipe and runs both, returning
// once both reach Established. It is the building block for tests and the
// in-process IXP harness.
func Pair(a, b Config, ha, hb Handler) (*Session, *Session, error) {
	ca, cb := net.Pipe()
	sa := New(ca, a, ha)
	sb := New(cb, b, hb)
	errCh := make(chan error, 2)
	go func() { errCh <- sa.Run() }()
	go func() { errCh <- sb.Run() }()
	deadline := time.After(5 * time.Second)
	for {
		if sa.State() == StateEstablished && sb.State() == StateEstablished {
			return sa, sb, nil
		}
		select {
		case err := <-errCh:
			if err != nil {
				return nil, nil, err
			}
		case <-deadline:
			return nil, nil, errors.New("bgpsession: Pair timed out")
		case <-time.After(time.Millisecond):
		}
	}
}
