package core

import (
	"errors"
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
)

var (
	victimPrefix = netip.MustParsePrefix("100.10.10.10/32")
	victimMAC    = netpkt.MustParseMAC("02:00:00:00:00:01")
)

func TestSignalEncodeDecodeDrop(t *testing.T) {
	spec := DropUDPSrcPort(123)
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := DecodeSignal(ec)
	if !ok {
		t.Fatal("decode failed")
	}
	if got != spec {
		t.Fatalf("roundtrip: got %+v want %+v", got, spec)
	}
}

func TestSignalEncodeDecodeShape(t *testing.T) {
	spec := ShapeUDPSrcPort(123, 200e6) // the paper's 200 Mbps telemetry shape
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := DecodeSignal(ec)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Action != fabric.ActionShape || got.ShapeRateBps != 200e6 {
		t.Fatalf("shape roundtrip: %+v", got)
	}
}

func TestSignalEncodeDecodeProto(t *testing.T) {
	spec := DropProto(netpkt.ProtoUDP)
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := DecodeSignal(ec)
	if !ok || got.Selector != SelProto || got.Proto != netpkt.ProtoUDP {
		t.Fatalf("proto roundtrip: %+v ok=%v", got, ok)
	}
}

func TestSignalEncodeDecodeCustom(t *testing.T) {
	spec := Custom(77)
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := DecodeSignal(ec)
	if !ok || got.Selector != SelCustom || got.CustomID != 77 {
		t.Fatalf("custom roundtrip: %+v", got)
	}
}

func TestSignalRejectsForeignCommunities(t *testing.T) {
	rt := bgp.MakeExtCommunity(bgp.ExtTypeTwoOctetAS, bgp.ExtSubTypeRouteTarget, [6]byte{1, 2, 3, 4, 5, 6})
	if _, ok := DecodeSignal(rt); ok {
		t.Fatal("route target decoded as blackholing signal")
	}
	// Unknown selector.
	bad := bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, [6]byte{99, 0, 0, 0, 0, 0})
	if _, ok := DecodeSignal(bad); ok {
		t.Fatal("unknown selector decoded")
	}
	// Shape with zero rate code.
	bad2 := bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, [6]byte{2, 17, 0, 123, 1, 0})
	if _, ok := DecodeSignal(bad2); ok {
		t.Fatal("zero shape rate decoded")
	}
	// Proto selector without proto.
	bad3 := bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, [6]byte{1, 0, 0, 0, 0, 0})
	if _, ok := DecodeSignal(bad3); ok {
		t.Fatal("proto-less SelProto decoded")
	}
}

func TestSignalEncodeErrors(t *testing.T) {
	if _, err := (RuleSpec{Selector: SelUDPSrcPort, Action: fabric.ActionShape, ShapeRateBps: 1}).Encode(); err == nil {
		t.Fatal("sub-unit shape rate encoded")
	}
	if _, err := (RuleSpec{Selector: SelUDPSrcPort, Action: fabric.ActionShape, ShapeRateBps: 1e12}).Encode(); err == nil {
		t.Fatal("oversized shape rate encoded")
	}
}

func TestSignalRoundtripProperty(t *testing.T) {
	f := func(selRaw uint8, port uint16, rateCode uint8, doShape bool) bool {
		sels := []Selector{SelUDPSrcPort, SelUDPDstPort, SelTCPSrcPort, SelTCPDstPort}
		spec := RuleSpec{Selector: sels[int(selRaw)%len(sels)], Port: port, Action: fabric.ActionDrop}
		switch spec.Selector {
		case SelTCPSrcPort, SelTCPDstPort:
			spec.Proto = netpkt.ProtoTCP
		default:
			spec.Proto = netpkt.ProtoUDP
		}
		if doShape {
			if rateCode == 0 {
				rateCode = 1
			}
			spec.Action = fabric.ActionShape
			spec.ShapeRateBps = float64(rateCode) * ShapeRateUnitBps
		}
		ec, err := spec.Encode()
		if err != nil {
			return false
		}
		got, ok := DecodeSignal(ec)
		return ok && got == spec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalMatch(t *testing.T) {
	dst := fabric.MatchAll()
	dst.DstIP = victimPrefix
	m := DropUDPSrcPort(123).Match(dst)
	if m.Proto != netpkt.ProtoUDP || m.SrcPort != 123 || m.DstPort != fabric.AnyPort {
		t.Fatalf("match: %+v", m)
	}
	if m.DstIP != victimPrefix {
		t.Fatal("dst prefix lost")
	}
	m2 := RuleSpec{Selector: SelTCPDstPort, Proto: netpkt.ProtoTCP, Port: 80, Action: fabric.ActionDrop}.Match(dst)
	if m2.DstPort != 80 || m2.SrcPort != fabric.AnyPort {
		t.Fatalf("dst-port match: %+v", m2)
	}
	m3 := DropProto(netpkt.ProtoUDP).Match(dst)
	if m3.SrcPort != fabric.AnyPort || m3.Proto != netpkt.ProtoUDP {
		t.Fatalf("proto match: %+v", m3)
	}
}

func TestSignalStrings(t *testing.T) {
	for _, s := range []RuleSpec{
		DropUDPSrcPort(123), ShapeUDPSrcPort(53, 100e6), DropProto(netpkt.ProtoUDP), Custom(5),
	} {
		if s.String() == "" {
			t.Fatalf("empty string for %+v", s)
		}
	}
}

func TestPortal(t *testing.T) {
	p := NewPortal()
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	id := p.Define("AS64512", m, fabric.ActionDrop, 0)
	if id == 0 {
		t.Fatal("zero rule ID")
	}
	r, err := p.Lookup("AS64512", id)
	if err != nil || r.Action != fabric.ActionDrop {
		t.Fatalf("Lookup: %+v %v", r, err)
	}
	// Authorization boundary: other members cannot reference the rule.
	if _, err := p.Lookup("AS64513", id); err != ErrNoSuchRule {
		t.Fatalf("cross-member lookup: %v", err)
	}
	if got := p.RulesOf("AS64512"); len(got) != 1 {
		t.Fatalf("RulesOf: %v", got)
	}
	if err := p.Delete("AS64512", id); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("AS64512", id); err != ErrNoSuchRule {
		t.Fatalf("double delete: %v", err)
	}
}

func TestChangeQueueRateLimit(t *testing.T) {
	q := NewChangeQueue(2, 1) // 2/s, burst 1
	for i := 0; i < 5; i++ {
		q.Enqueue(ConfigChange{RuleID: string(rune('a' + i))}, 0)
	}
	if q.Len() != 5 || q.MaxDepth() != 5 {
		t.Fatalf("len=%d depth=%d", q.Len(), q.MaxDepth())
	}
	// t=0: initial burst of 1.
	out := q.Drain(0)
	if len(out) != 1 {
		t.Fatalf("t=0: %d", len(out))
	}
	// Draining every 0.5 s at rate 2/s releases exactly one per call
	// (burst 1 caps the bucket between drains).
	total := 1
	var lastWait float64
	for _, now := range []float64{0.5, 1.0, 1.5, 2.0} {
		out = q.Drain(now)
		if len(out) != 1 {
			t.Fatalf("t=%v: %d", now, len(out))
		}
		total += len(out)
		lastWait = out[0].Waited
	}
	if total != 5 || q.Len() != 0 {
		t.Fatalf("total=%d left=%d", total, q.Len())
	}
	// The last change waited the full 2 seconds.
	if math.Abs(lastWait-2.0) > 1e-9 {
		t.Fatalf("last wait: %v", lastWait)
	}
}

func TestChangeQueueBurstClamp(t *testing.T) {
	q := NewChangeQueue(100, 5)
	// Long idle must not accumulate more than the burst.
	q.Drain(1000)
	for i := 0; i < 10; i++ {
		q.Enqueue(ConfigChange{}, 1000)
	}
	out := q.Drain(1000)
	if len(out) != 5 {
		t.Fatalf("burst: %d, want 5", len(out))
	}
}

func TestChangeQueueFIFO(t *testing.T) {
	q := NewChangeQueue(1000, 1000)
	for i := 0; i < 10; i++ {
		q.Enqueue(ConfigChange{RuleID: string(rune('0' + i))}, float64(i))
	}
	out := q.Drain(100)
	for i := 1; i < len(out); i++ {
		if out[i].Change.RuleID < out[i-1].Change.RuleID {
			t.Fatal("not FIFO")
		}
	}
}

// testHarness wires a fabric + router + manager + Stellar for controller
// tests.
type testHarness struct {
	fab    *fabric.Fabric
	router *hw.EdgeRouter
	mgr    *QoSManager
	st     *Stellar
}

func newHarness(t *testing.T, queue *ChangeQueue) *testHarness {
	t.Helper()
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(4, hw.RTBHUnitN))
	mgr := NewQoSManager(fab, router, map[string]int{"AS64512": 0})
	st := New(Config{Manager: mgr, Queue: queue})
	return &testHarness{fab: fab, router: router, mgr: mgr, st: st}
}

func advEvent(peer string, prefix netip.Prefix, pathID uint32, specs ...RuleSpec) routeserver.ControllerEvent {
	attrs := bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
		NextHop: netip.MustParseAddr("80.81.192.10"),
	}
	for _, s := range specs {
		ec, err := s.Encode()
		if err != nil {
			panic(err)
		}
		attrs.ExtCommunities = append(attrs.ExtCommunities, ec)
	}
	return routeserver.ControllerEvent{
		Peer: peer, PeerAS: 64512, PathID: pathID,
		Announced: []netip.Prefix{prefix},
		Attrs:     attrs,
	}
}

func TestStellarInstallsRuleFromSignal(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(123)), 0)
	if h.st.PendingChanges() != 1 {
		t.Fatalf("pending: %d", h.st.PendingChanges())
	}
	if n := h.st.Process(0.1); n != 1 {
		t.Fatalf("applied: %d (%+v)", n, h.st.Errors())
	}
	port, _ := h.fab.PortByName("AS64512")
	if port.RuleCount() != 1 {
		t.Fatalf("rules on port: %d", port.RuleCount())
	}
	// The installed rule classifies NTP-to-victim as drop.
	flow := netpkt.FlowKey{Src: netip.MustParseAddr("198.51.100.1"), Dst: victimPrefix.Addr(),
		Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}
	r := port.Classify(flow)
	if r == nil || r.Action != fabric.ActionDrop {
		t.Fatalf("classify: %+v", r)
	}
	// Benign web traffic is not matched.
	web := netpkt.FlowKey{Src: netip.MustParseAddr("198.51.100.1"), Dst: victimPrefix.Addr(),
		Proto: netpkt.ProtoTCP, SrcPort: 50000, DstPort: 443}
	if port.Classify(web) != nil {
		t.Fatal("benign traffic matched")
	}
	// TCAM accounted.
	mac, l34 := h.router.Totals()
	if mac != 0 || l34 != 3 { // proto + dst /32 + src port
		t.Fatalf("tcam: mac=%d l34=%d", mac, l34)
	}
}

func TestStellarWithdrawRemovesRule(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(123)), 0)
	h.st.Process(0)
	h.st.HandleEvent(routeserver.ControllerEvent{
		Peer: "AS64512", PeerAS: 64512, PathID: 1,
		Withdrawn: []netip.Prefix{victimPrefix},
	}, 1)
	h.st.Process(1)
	port, _ := h.fab.PortByName("AS64512")
	if port.RuleCount() != 0 {
		t.Fatalf("rules after withdraw: %d", port.RuleCount())
	}
	mac, l34 := h.router.Totals()
	if mac != 0 || l34 != 0 {
		t.Fatalf("tcam leak: mac=%d l34=%d", mac, l34)
	}
	if h.st.RIBLen() != 0 {
		t.Fatal("rib not empty")
	}
}

func TestStellarEscalationShapeToDrop(t *testing.T) {
	// The Section 5.3 sequence: shape at 200 Mbps, later escalate to a
	// drop of all UDP. The re-announcement changes the desired set.
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, ShapeUDPSrcPort(123, 200e6)), 0)
	h.st.Process(0)
	port, _ := h.fab.PortByName("AS64512")
	rules := port.Rules()
	if len(rules) != 1 || rules[0].Action != fabric.ActionShape {
		t.Fatalf("after shape: %+v", rules)
	}
	// Re-announce with drop-UDP instead.
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, DropProto(netpkt.ProtoUDP)), 200)
	h.st.Process(200)
	rules = port.Rules()
	if len(rules) != 1 || rules[0].Action != fabric.ActionDrop {
		t.Fatalf("after escalation: %+v", rules)
	}
	if rules[0].Match.SrcPort != fabric.AnyPort {
		t.Fatal("escalated rule should match all UDP")
	}
}

func TestStellarMultipleSignalsOneRoute(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1,
		DropUDPSrcPort(123), DropUDPSrcPort(53), ShapeUDPSrcPort(11211, 50e6)), 0)
	h.st.Process(0)
	port, _ := h.fab.PortByName("AS64512")
	if port.RuleCount() != 3 {
		t.Fatalf("rules: %d, want 3", port.RuleCount())
	}
}

func TestStellarIdempotentReannounce(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	ev := advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(123))
	h.st.HandleEvent(ev, 0)
	h.st.Process(0)
	applied := h.st.AppliedChanges()
	// Same announcement again: no new config changes.
	h.st.HandleEvent(ev, 1)
	h.st.Process(1)
	if h.st.AppliedChanges() != applied {
		t.Fatalf("re-announce churned config: %d -> %d", applied, h.st.AppliedChanges())
	}
	port, _ := h.fab.PortByName("AS64512")
	if port.RuleCount() != 1 {
		t.Fatalf("rules: %d", port.RuleCount())
	}
}

func TestStellarCustomPortalRule(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	tmpl := fabric.MatchAll()
	tmpl.Proto = netpkt.ProtoUDP
	tmpl.SrcPort = 389 // LDAP
	id := h.st.Portal().Define("AS64512", tmpl, fabric.ActionDrop, 0)

	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, Custom(id)), 0)
	h.st.Process(0)
	port, _ := h.fab.PortByName("AS64512")
	rules := port.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules: %d (%+v)", len(rules), h.st.Errors())
	}
	if rules[0].Match.SrcPort != 389 || rules[0].Match.DstIP != victimPrefix {
		t.Fatalf("custom rule match: %+v", rules[0].Match)
	}
}

func TestStellarCustomRuleUnknownID(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, Custom(9999)), 0)
	h.st.Process(0)
	if len(h.st.Errors()) != 1 || !errors.Is(h.st.Errors()[0].Err, ErrNoSuchRule) {
		t.Fatalf("errors: %+v", h.st.Errors())
	}
	port, _ := h.fab.PortByName("AS64512")
	if port.RuleCount() != 0 {
		t.Fatal("rule installed despite unknown ID")
	}
}

func TestStellarAdmissionControl(t *testing.T) {
	// A router with almost no TCAM: the second rule must be rejected
	// with a hardware error, and the data plane stays consistent.
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	router := hw.NewEdgeRouter(hw.Limits{Ports: 1, L34CriteriaTotal: 3, MACFiltersTotal: 10, QoSPoliciesPerPort: 10})
	mgr := NewQoSManager(fab, router, map[string]int{"AS64512": 0})
	st := New(Config{Manager: mgr, Queue: NewChangeQueue(1000, 1000)})

	st.HandleEvent(advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(123), DropUDPSrcPort(53)), 0)
	st.Process(0)
	port, _ := fab.PortByName("AS64512")
	if port.RuleCount() != 1 {
		t.Fatalf("rules: %d, want 1 (second rejected)", port.RuleCount())
	}
	errs := st.Errors()
	if len(errs) != 1 || !errors.Is(errs[0].Err, hw.ErrL34Exhausted) {
		t.Fatalf("errors: %+v", errs)
	}
}

func TestStellarRateLimitedInstallLatency(t *testing.T) {
	// With a 4.33/s queue and a burst of bursty signals, later changes
	// wait — the Figure 10(b) mechanism.
	h := newHarness(t, NewChangeQueue(4.33, 1))
	var specs []RuleSpec
	for port := 0; port < 10; port++ {
		specs = append(specs, DropUDPSrcPort(uint16(1000+port)))
	}
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, specs...), 0)
	for now := 0.0; now <= 3.0; now += 0.1 {
		h.st.Process(now)
	}
	lats := h.st.Latencies()
	if len(lats) < 5 {
		t.Fatalf("applied: %d", len(lats))
	}
	// First change nearly immediate, later ones progressively delayed.
	if lats[0] > 0.2 {
		t.Fatalf("first latency: %v", lats[0])
	}
	last := lats[len(lats)-1]
	if last < 0.5 {
		t.Fatalf("last latency: %v, want rate-limited delay", last)
	}
}

func TestQoSManagerUnknownMember(t *testing.T) {
	h := newHarness(t, nil)
	err := h.mgr.Apply(ConfigChange{Op: OpInstall, Member: "ghost", RuleID: "x", Match: fabric.MatchAll()})
	if err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := h.mgr.Apply(ConfigChange{Op: OpRemove, RuleID: "nope"}); !errors.Is(err, fabric.ErrNoSuchRule) {
		t.Fatalf("remove unknown: %v", err)
	}
}

func TestQoSManagerDuplicateInstall(t *testing.T) {
	h := newHarness(t, nil)
	c := ConfigChange{Op: OpInstall, Member: "AS64512", RuleID: "r1",
		Match: fabric.MatchAll(), Action: fabric.ActionDrop}
	if err := h.mgr.Apply(c); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Apply(c); !errors.Is(err, ErrRuleExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if h.mgr.InstalledCount() != 1 {
		t.Fatal("count")
	}
}

func TestSDNManager(t *testing.T) {
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	mgr := NewSDNManager(fab, 2)
	if mgr.Name() != "sdn" {
		t.Fatal("name")
	}
	mk := func(id string) ConfigChange {
		m := fabric.MatchAll()
		m.DstIP = victimPrefix
		return ConfigChange{Op: OpInstall, Member: "AS64512", RuleID: id, Match: m, Action: fabric.ActionDrop}
	}
	if err := mgr.Apply(mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Apply(mk("b")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Apply(mk("c")); !errors.Is(err, ErrFlowTableFull) {
		t.Fatalf("overflow: %v", err)
	}
	if err := mgr.Apply(ConfigChange{Op: OpRemove, RuleID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Apply(mk("c")); err != nil {
		t.Fatalf("after free: %v", err)
	}
	if mgr.InstalledCount() != 2 {
		t.Fatal("count")
	}
	if err := mgr.Apply(ConfigChange{Op: OpRemove, RuleID: "zz"}); !errors.Is(err, fabric.ErrNoSuchRule) {
		t.Fatalf("remove unknown: %v", err)
	}
}

func TestRuleIDDeterministic(t *testing.T) {
	a := RuleID("AS1", victimPrefix, DropUDPSrcPort(123))
	b := RuleID("AS1", victimPrefix, DropUDPSrcPort(123))
	c := RuleID("AS1", victimPrefix, DropUDPSrcPort(53))
	if a != b {
		t.Fatal("not deterministic")
	}
	if a == c {
		t.Fatal("collision")
	}
}

func BenchmarkStellarSignalToInstall(b *testing.B) {
	fab := fabric.New()
	_ = fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9))
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(4, 1024))
	mgr := NewQoSManager(fab, router, map[string]int{"AS64512": 0})
	st := New(Config{Manager: mgr, Queue: NewChangeQueue(1e9, 1<<20)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		st.HandleEvent(advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(uint16(i%60000))), now)
		st.Process(now)
		st.HandleEvent(routeserver.ControllerEvent{
			Peer: "AS64512", PeerAS: 64512, PathID: 1,
			Withdrawn: []netip.Prefix{victimPrefix},
		}, now+0.5)
		st.Process(now + 0.5)
	}
}

func TestQoSManagerSetPortIndex(t *testing.T) {
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("late", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(2, 8))
	mgr := NewQoSManager(fab, router, nil)
	c := ConfigChange{Op: OpInstall, Member: "late", RuleID: "r",
		Match: fabric.MatchAll(), Action: fabric.ActionDrop}
	if err := mgr.Apply(c); err == nil {
		t.Fatal("unregistered member accepted")
	}
	mgr.SetPortIndex("late", 0)
	if err := mgr.Apply(c); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Apply(ConfigChange{Op: OpRemove, RuleID: "r"}); err != nil {
		t.Fatal(err)
	}
}

func TestStellarTelemetry(t *testing.T) {
	h := newHarness(t, NewChangeQueue(1000, 1000))
	spec := ShapeUDPSrcPort(123, 200e6)
	h.st.HandleEvent(advEvent("AS64512", victimPrefix, 1, spec), 0)
	h.st.Process(0)

	// Push matching traffic through the port.
	port, _ := h.fab.PortByName("AS64512")
	flow := netpkt.FlowKey{Src: netip.MustParseAddr("198.51.100.1"), Dst: victimPrefix.Addr(),
		Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}
	port.Egress([]fabric.Offer{{Flow: flow, Bytes: 125e6, Packets: 1e5}}, 1)

	cs, err := h.st.Telemetry("AS64512", victimPrefix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MatchedBytes != 125e6 {
		t.Fatalf("matched: %v", cs.MatchedBytes)
	}
	if cs.ShapedResidue <= 0 || cs.DroppedBytes <= 0 {
		t.Fatalf("shape telemetry: %+v", cs)
	}
	// Unknown rule: error, not zeros.
	if _, err := h.st.Telemetry("AS64512", victimPrefix, DropUDPSrcPort(9999)); err == nil {
		t.Fatal("telemetry for uninstalled rule")
	}
}

func TestSDNManagerCounters(t *testing.T) {
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	mgr := NewSDNManager(fab, 16)
	st := New(Config{Manager: mgr, Queue: NewChangeQueue(1000, 1000)})
	spec := DropUDPSrcPort(123)
	st.HandleEvent(advEvent("AS64512", victimPrefix, 1, spec), 0)
	st.Process(0)
	if _, err := st.Telemetry("AS64512", victimPrefix, spec); err != nil {
		t.Fatalf("SDN telemetry: %v", err)
	}
	if _, err := mgr.Counters("ghost"); err == nil {
		t.Fatal("ghost rule counters")
	}
}

func TestHandleEventsBatch(t *testing.T) {
	// A batch of events (the decode of one ADD-PATH iBGP UPDATE) folds
	// into a single diff: two ADD-PATH paths' rules for the same prefix
	// install, and a withdraw in a later batch removes only its own rule.
	h := newHarness(t, NewChangeQueue(1000, 1000))
	h.st.HandleEvents([]routeserver.ControllerEvent{
		advEvent("AS64512", victimPrefix, 1, DropUDPSrcPort(123)),
		advEvent("AS64512", victimPrefix, 2, DropUDPSrcPort(53)),
	}, 0)
	if h.st.PendingChanges() != 2 {
		t.Fatalf("pending: %d", h.st.PendingChanges())
	}
	if n := h.st.Process(0.1); n != 2 {
		t.Fatalf("applied: %d", n)
	}
	if h.st.RIBLen() != 2 {
		t.Fatalf("rib len: %d", h.st.RIBLen())
	}
	wdr := routeserver.ControllerEvent{
		Peer: "AS64512", PeerAS: 64512, PathID: 1,
		Withdrawn: []netip.Prefix{victimPrefix},
	}
	h.st.HandleEvents([]routeserver.ControllerEvent{wdr}, 0.2)
	if n := h.st.Process(0.3); n != 1 {
		t.Fatalf("withdraw applied: %d", n)
	}
	if h.st.RIBLen() != 1 {
		t.Fatalf("rib len after withdraw: %d", h.st.RIBLen())
	}
	// Empty batch is a no-op.
	h.st.HandleEvents(nil, 0.4)
	if h.st.PendingChanges() != 0 {
		t.Fatal("empty batch enqueued changes")
	}
}
