package core

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
)

// TestStellarConcurrentEventsAndProcess hammers the controller with
// concurrent signal events, queue processing and telemetry reads — the
// shape of a production deployment where the BGP feed, the network
// manager and member-facing telemetry queries run in parallel. Run with
// -race to verify the locking discipline.
func TestStellarConcurrentEventsAndProcess(t *testing.T) {
	fab := fabric.New()
	const members = 8
	portIndex := make(map[string]int, members)
	for i := 0; i < members; i++ {
		name := fmt.Sprintf("AS%d", 64512+i)
		var mac netpkt.MAC
		mac[0], mac[5] = 0x02, byte(i+1)
		if err := fab.AddPort(fabric.NewPort(name, mac, 1e9)); err != nil {
			t.Fatal(err)
		}
		portIndex[name] = i
	}
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(members, 1024))
	mgr := NewQoSManager(fab, router, portIndex)
	st := New(Config{Manager: mgr, Queue: NewChangeQueue(1e9, 1<<20)})

	var writers sync.WaitGroup
	for i := 0; i < members; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			name := fmt.Sprintf("AS%d", 64512+i)
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 64, byte(i), 10}), 32)
			for round := 0; round < 50; round++ {
				now := float64(round)
				ev := advEvent(name, prefix, uint32(i+1), DropUDPSrcPort(uint16(100+round)))
				st.HandleEvent(ev, now)
				st.HandleEvent(routeserver.ControllerEvent{
					Peer: name, PeerAS: uint32(64512 + i), PathID: uint32(i + 1),
					Withdrawn: []netip.Prefix{prefix},
				}, now+0.5)
			}
		}(i)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Processor: drains the queue concurrently with the writers.
	aux.Add(1)
	go func() {
		defer aux.Done()
		now := 0.0
		for {
			select {
			case <-stop:
				return
			default:
				now += 0.1
				st.Process(now)
			}
		}
	}()
	// Reader: telemetry and stats while everything churns.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for round := 0; round < 500; round++ {
			_ = st.PendingChanges()
			_ = st.AppliedChanges()
			_ = st.RIBLen()
			_ = st.Latencies()
			_ = st.Errors()
		}
	}()

	writers.Wait()
	close(stop)
	aux.Wait()

	// Drain whatever remains and check the final state is consistent:
	// every path withdrawn, every hardware resource freed.
	st.Process(1e12)
	if st.RIBLen() != 0 {
		t.Fatalf("rib: %d", st.RIBLen())
	}
	mac, l34 := router.Totals()
	if mac != 0 || l34 != 0 {
		t.Fatalf("tcam leak: %d %d", mac, l34)
	}
	for i := 0; i < members; i++ {
		port, _ := fab.PortByName(fmt.Sprintf("AS%d", 64512+i))
		if port.RuleCount() != 0 {
			t.Fatalf("port %d rules: %d", i, port.RuleCount())
		}
	}
	if st.AppliedChanges() == 0 {
		t.Fatal("nothing applied")
	}
}
