package core

import (
	"fmt"

	"stellar/internal/bgp"
	"stellar/internal/routeserver"
)

// This file implements the wire form of the controller's southbound
// interface (Section 4.3, Figure 6): the route server streams every
// accepted path to the blackholing controller over an iBGP session with
// ADD-PATH, so the controller can hold the same prefix from different
// members simultaneously. EventToUpdate serializes a route server
// ControllerEvent into the UPDATE sent on that session; EventsFromUpdate
// recovers events on the controller side. Round-tripping is exact up to
// the attribute set the wire format carries.

// PeerNamer maps a path's (origin AS, path ID) back to the member/port
// name rules are installed on. The default convention is "AS<asn>",
// matching cmd/ixpd's port naming.
type PeerNamer func(asn uint32, pathID uint32) string

// DefaultPeerNamer implements the "AS<asn>" convention.
func DefaultPeerNamer(asn uint32, _ uint32) string { return fmt.Sprintf("AS%d", asn) }

// EventToUpdate converts a controller event to the iBGP UPDATE the route
// server sends on the controller session. IPv4 prefixes ride the classic
// NLRI/withdrawn fields; IPv6 prefixes ride MP_REACH/MP_UNREACH. The
// ADD-PATH path identifier is attached to every prefix.
func EventToUpdate(ev routeserver.ControllerEvent) *bgp.Update {
	u := &bgp.Update{Attrs: ev.Attrs.Clone()}
	// Reset any MP NLRI carried in the original attributes; we rebuild
	// them from the event's prefix lists.
	u.Attrs.MPReach = nil
	u.Attrs.MPUnreach = nil

	for _, p := range ev.Withdrawn {
		pp := bgp.PathPrefix{Prefix: p, PathID: ev.PathID}
		if p.Addr().Is4() {
			u.Withdrawn = append(u.Withdrawn, pp)
		} else {
			if u.Attrs.MPUnreach == nil {
				u.Attrs.MPUnreach = &bgp.MPUnreach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast}
			}
			u.Attrs.MPUnreach.NLRI = append(u.Attrs.MPUnreach.NLRI, pp)
		}
	}
	for _, p := range ev.Announced {
		pp := bgp.PathPrefix{Prefix: p, PathID: ev.PathID}
		if p.Addr().Is4() {
			u.NLRI = append(u.NLRI, pp)
		} else {
			if u.Attrs.MPReach == nil {
				u.Attrs.MPReach = &bgp.MPReach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
					NextHop: ev.Attrs.NextHop}
				if ev.Attrs.MPReach != nil {
					u.Attrs.MPReach.NextHop = ev.Attrs.MPReach.NextHop
				}
			}
			u.Attrs.MPReach.NLRI = append(u.Attrs.MPReach.NLRI, pp)
		}
	}
	return u
}

// EventsFromUpdate reconstructs controller events from an iBGP UPDATE
// received on the controller session. Prefixes are grouped by path ID
// (one event per distinct ID, announcements and withdrawals separate as
// they arrive in one message with shared attributes). The peer AS is
// recovered from the AS path's first hop; names via namer.
func EventsFromUpdate(u *bgp.Update, namer PeerNamer) []routeserver.ControllerEvent {
	if namer == nil {
		namer = DefaultPeerNamer
	}
	peerAS := firstAS(&u.Attrs)

	type group struct {
		announced, withdrawn []bgp.PathPrefix
	}
	groups := make(map[uint32]*group)
	get := func(id uint32) *group {
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		return g
	}
	for _, pp := range u.AllAnnounced() {
		g := get(pp.PathID)
		g.announced = append(g.announced, pp)
	}
	for _, pp := range u.AllWithdrawn() {
		g := get(pp.PathID)
		g.withdrawn = append(g.withdrawn, pp)
	}

	ids := make([]uint32, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	// Deterministic order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}

	var out []routeserver.ControllerEvent
	for _, id := range ids {
		g := groups[id]
		ev := routeserver.ControllerEvent{
			Peer:   namer(peerAS, id),
			PeerAS: peerAS,
			PathID: id,
			Attrs:  u.Attrs.Clone(),
		}
		for _, pp := range g.announced {
			ev.Announced = append(ev.Announced, pp.Prefix)
		}
		for _, pp := range g.withdrawn {
			ev.Withdrawn = append(ev.Withdrawn, pp.Prefix)
		}
		out = append(out, ev)
	}
	return out
}

func firstAS(a *bgp.PathAttrs) uint32 {
	for _, seg := range a.ASPath {
		if seg.Type == bgp.ASSequence && len(seg.ASNs) > 0 {
			return seg.ASNs[0]
		}
	}
	return 0
}
