// Package core implements Stellar, the Advanced Blackholing system of
// Sections 3 and 4: the BGP extended-community signaling codec, the
// customer portal for custom blackholing rules, the blackholing
// controller (RIB, snapshot diffing, abstract configuration changes),
// the token-bucket change queue, and the network managers that compile
// abstract changes into QoS or SDN data-plane state under hardware
// admission control.
package core

import (
	"encoding/binary"
	"fmt"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// Selector encodes which header field a predefined blackholing rule
// matches, mirroring the paper's community scheme where "IXP:2:123"
// means "UDP source port 123" (Section 5.3).
type Selector uint8

// Selectors.
const (
	// SelProto matches an entire transport protocol (port ignored).
	SelProto Selector = 1
	// SelUDPSrcPort matches UDP traffic from one source port — the
	// paper's "2" selector, the workhorse for amplification attacks.
	SelUDPSrcPort Selector = 2
	// SelUDPDstPort matches UDP traffic to one destination port.
	SelUDPDstPort Selector = 3
	// SelTCPSrcPort matches TCP traffic from one source port.
	SelTCPSrcPort Selector = 4
	// SelTCPDstPort matches TCP traffic to one destination port.
	SelTCPDstPort Selector = 5
	// SelCustom references a rule predefined in the customer portal;
	// the port field carries nothing and the payload is the rule ID.
	SelCustom Selector = 100
)

// ShapeRateUnitBps is the granularity of shaping rates in the signal
// encoding: the action byte's rate code is multiplied by 25 Mbps, giving
// a 25 Mbps .. 6.375 Gbps range in one byte.
const ShapeRateUnitBps = 25e6

// RuleSpec is one decoded Advanced Blackholing signal: what to match
// (beyond the announced destination prefix) and what to do with it.
type RuleSpec struct {
	Selector Selector
	Proto    netpkt.IPProto
	Port     uint16
	// CustomID is the portal rule ID when Selector == SelCustom.
	CustomID uint32
	Action   fabric.ActionKind
	// ShapeRateBps is the rate limit for ActionShape.
	ShapeRateBps float64
}

// DropUDPSrcPort returns the spec for the canonical amplification
// mitigation: drop UDP traffic from the given source port.
func DropUDPSrcPort(port uint16) RuleSpec {
	return RuleSpec{Selector: SelUDPSrcPort, Proto: netpkt.ProtoUDP, Port: port, Action: fabric.ActionDrop}
}

// ShapeUDPSrcPort returns the spec shaping UDP traffic from the given
// source port to rateBps — the telemetry mode of Section 5.3.
func ShapeUDPSrcPort(port uint16, rateBps float64) RuleSpec {
	return RuleSpec{Selector: SelUDPSrcPort, Proto: netpkt.ProtoUDP, Port: port,
		Action: fabric.ActionShape, ShapeRateBps: rateBps}
}

// DropProto returns the spec dropping an entire transport protocol.
func DropProto(proto netpkt.IPProto) RuleSpec {
	return RuleSpec{Selector: SelProto, Proto: proto, Action: fabric.ActionDrop}
}

// Custom returns a spec referencing a portal-defined rule.
func Custom(id uint32) RuleSpec {
	return RuleSpec{Selector: SelCustom, CustomID: id}
}

// Encode packs the spec into Stellar's Advanced Blackholing extended
// community (experimental type 0x80, sub-type 0x66). Layout of the
// 6-byte value:
//
//	byte 0: selector
//	byte 1: transport protocol (or 0)
//	byte 2-3: port (big endian), or bytes 2-5 = custom rule ID
//	byte 4: action (0 drop, 1 shape)
//	byte 5: shape rate code (rate = code * 25 Mbps)
func (s RuleSpec) Encode() (bgp.ExtCommunity, error) {
	var v [6]byte
	v[0] = byte(s.Selector)
	if s.Selector == SelCustom {
		binary.BigEndian.PutUint32(v[2:6], s.CustomID)
		return bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, v), nil
	}
	v[1] = byte(s.Proto)
	binary.BigEndian.PutUint16(v[2:4], s.Port)
	switch s.Action {
	case fabric.ActionDrop:
		v[4] = 0
	case fabric.ActionShape:
		v[4] = 1
		code := int(s.ShapeRateBps/ShapeRateUnitBps + 0.5)
		if code < 1 || code > 255 {
			return bgp.ExtCommunity{}, fmt.Errorf("core: shape rate %v out of encodable range", s.ShapeRateBps)
		}
		v[5] = byte(code)
	default:
		return bgp.ExtCommunity{}, fmt.Errorf("core: action %v not signalable", s.Action)
	}
	return bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, v), nil
}

// DecodeSignal parses an Advanced Blackholing extended community. It
// returns ok=false for other communities or malformed payloads.
func DecodeSignal(e bgp.ExtCommunity) (RuleSpec, bool) {
	if e.Type() != bgp.ExtTypeExperimental || e.SubType() != bgp.ExtSubTypeAdvBlackhole {
		return RuleSpec{}, false
	}
	v := e.Value()
	s := RuleSpec{Selector: Selector(v[0])}
	if s.Selector == SelCustom {
		s.CustomID = binary.BigEndian.Uint32(v[2:6])
		return s, true
	}
	s.Proto = netpkt.IPProto(v[1])
	s.Port = binary.BigEndian.Uint16(v[2:4])
	switch v[4] {
	case 0:
		s.Action = fabric.ActionDrop
	case 1:
		s.Action = fabric.ActionShape
		if v[5] == 0 {
			return RuleSpec{}, false
		}
		s.ShapeRateBps = float64(v[5]) * ShapeRateUnitBps
	default:
		return RuleSpec{}, false
	}
	switch s.Selector {
	case SelProto:
		if s.Proto == 0 {
			return RuleSpec{}, false
		}
	case SelUDPSrcPort, SelUDPDstPort:
		s.Proto = netpkt.ProtoUDP
	case SelTCPSrcPort, SelTCPDstPort:
		s.Proto = netpkt.ProtoTCP
	default:
		return RuleSpec{}, false
	}
	return s, true
}

// SignalsFrom extracts every Advanced Blackholing rule spec carried on a
// route's attributes, in attribute order.
func SignalsFrom(attrs *bgp.PathAttrs) []RuleSpec {
	var out []RuleSpec
	for _, e := range attrs.ExtCommunities {
		if s, ok := DecodeSignal(e); ok {
			out = append(out, s)
		}
	}
	return out
}

// Match builds the fabric classification pattern for the spec against a
// destination prefix (the prefix the victim announced).
func (s RuleSpec) Match(dst fabric.Match) fabric.Match {
	m := dst
	m.Proto = s.Proto
	switch s.Selector {
	case SelProto:
		// protocol only
	case SelUDPSrcPort, SelTCPSrcPort:
		m.SrcPort = int32(s.Port)
	case SelUDPDstPort, SelTCPDstPort:
		m.DstPort = int32(s.Port)
	}
	return m
}

func (s RuleSpec) String() string {
	if s.Selector == SelCustom {
		return fmt.Sprintf("custom#%d", s.CustomID)
	}
	dir := "src"
	if s.Selector == SelUDPDstPort || s.Selector == SelTCPDstPort {
		dir = "dst"
	}
	act := "drop"
	if s.Action == fabric.ActionShape {
		act = fmt.Sprintf("shape@%.0fMbps", s.ShapeRateBps/1e6)
	}
	if s.Selector == SelProto {
		return fmt.Sprintf("%s %s", act, s.Proto)
	}
	return fmt.Sprintf("%s %s %s-port %d", act, s.Proto, dir, s.Port)
}
