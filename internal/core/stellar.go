package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/fabric"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
)

// Stellar is the blackholing controller plus management layer of
// Figure 7: it consumes the route server's southbound feed (an iBGP +
// ADD-PATH session in the production system, the in-process subscriber
// here and a real BGP session in cmd/ixpd), maintains a RIB of
// blackholing routes, derives abstract configuration changes from RIB
// snapshot diffs, rate-limits them through the token-bucket change
// queue, and applies them via a NetworkManager.
//
// Deprecated: Stellar predates the unified mitigation control plane.
// New code should use mitctl.Controller (lifecycle-managed mitigations
// with TTL, ownership and per-mitigation telemetry) fed by
// mitctl.NewCommunityChannel for the BGP signaling leg; ixp.Build wires
// that stack. Stellar is retained as the reference implementation of
// the original RIB-diffing controller and for its tests.
type Stellar struct {
	portal *Portal
	queue  *ChangeQueue
	mgr    NetworkManager

	mu   sync.Mutex
	rib  *rib.Table
	prev rib.Snapshot
	// desired tracks, per RIB path, the rules its signals requested —
	// needed to withdraw exactly those rules when the path goes away or
	// its attributes change.
	desired map[rib.PathKey][]ConfigChange
	// applyErrs accumulates admission-control and compilation failures.
	applyErrs []ApplyError
	// latencies records signal-to-configuration delays (Figure 10b).
	latencies []float64
	applied   int
}

// ApplyError records one failed configuration change.
type ApplyError struct {
	Change ConfigChange
	Err    error
}

// Config assembles a Stellar instance.
type Config struct {
	// Portal resolves SelCustom rule references; optional.
	Portal *Portal
	// Queue is the controller-to-manager change queue. Defaults to the
	// production rate of 4.33 changes/s with a burst of 20.
	Queue *ChangeQueue
	// Manager is the data-plane backend (QoSManager or SDNManager).
	Manager NetworkManager
}

// New creates a Stellar controller.
func New(cfg Config) *Stellar {
	if cfg.Queue == nil {
		cfg.Queue = NewChangeQueue(4.33, 20)
	}
	if cfg.Portal == nil {
		cfg.Portal = NewPortal()
	}
	return &Stellar{
		portal:  cfg.Portal,
		queue:   cfg.Queue,
		mgr:     cfg.Manager,
		rib:     rib.New(),
		prev:    rib.Snapshot{},
		desired: make(map[rib.PathKey][]ConfigChange),
	}
}

// Portal returns the customer portal.
func (s *Stellar) Portal() *Portal { return s.portal }

// Queue returns the change queue (exposed for experiments).
func (s *Stellar) Queue() *ChangeQueue { return s.queue }

// RuleID derives the deterministic data-plane rule identifier for a
// member's blackholing rule on a prefix.
func RuleID(member string, prefix netip.Prefix, spec RuleSpec) string {
	ec, err := spec.Encode()
	if err != nil {
		return fmt.Sprintf("bh:%s:%s:invalid", member, prefix)
	}
	v := ec.Value()
	return fmt.Sprintf("bh:%s:%s:%02x%02x%02x%02x%02x%02x", member, prefix,
		v[0], v[1], v[2], v[3], v[4], v[5])
}

// HandleEvent is the controller's BGP processor: it folds one route
// server event into the RIB, snapshots, diffs against the previous
// snapshot, and enqueues the resulting configuration changes at the
// given time (seconds).
func (s *Stellar) HandleEvent(ev routeserver.ControllerEvent, now float64) {
	s.HandleEvents([]routeserver.ControllerEvent{ev}, now)
}

// HandleEvents folds a batch of route server events into the RIB and
// derives configuration changes from a single snapshot diff for the whole
// batch. It pairs with EventsFromUpdate on the wire feed: one iBGP UPDATE
// from the route server carries prefixes for several ADD-PATH identifiers
// and decodes to several events, and diffing once per message instead of
// once per event keeps the controller's hot path off the O(table)
// snapshot cost.
func (s *Stellar) HandleEvents(evs []routeserver.ControllerEvent, now float64) {
	if len(evs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	for _, ev := range evs {
		for _, prefix := range ev.Withdrawn {
			key := rib.PathKey{Prefix: prefix, Peer: ev.Peer, PathID: ev.PathID}
			if !s.rib.Remove(key) && ev.PathID != 0 {
				// Withdrawals on the wire feed carry no attributes, so the
				// peer label derived from them may not match the installed
				// path's; the ADD-PATH identifier alone names the path.
				if p := s.rib.FindByPathID(prefix, ev.PathID); p != nil {
					s.rib.Remove(p.Key)
				}
			}
		}
		for _, prefix := range ev.Announced {
			s.rib.Add(rib.PathKey{Prefix: prefix, Peer: ev.Peer, PathID: ev.PathID}, ev.PeerAS, ev.Attrs)
		}
	}

	next := s.rib.Snapshot()
	diff := rib.DiffSnapshots(s.prev, next)
	s.prev = next
	if diff.Empty() {
		return
	}

	for _, p := range diff.Removed {
		s.enqueueRuleDiffLocked(p.Key, nil, now)
	}
	for _, p := range diff.Added {
		s.enqueueRuleDiffLocked(p.Key, s.rulesForPathLocked(p), now)
	}
	for _, p := range diff.Changed {
		s.enqueueRuleDiffLocked(p.Key, s.rulesForPathLocked(p), now)
	}
}

// rulesForPathLocked derives the desired rule set for one RIB path from
// its Advanced Blackholing signals.
func (s *Stellar) rulesForPathLocked(p *rib.Path) []ConfigChange {
	member := p.Key.Peer
	dstOnly := fabric.MatchAll()
	dstOnly.DstIP = p.Key.Prefix

	var out []ConfigChange
	for _, spec := range SignalsFrom(&p.Attrs) {
		var change ConfigChange
		if spec.Selector == SelCustom {
			custom, err := s.portal.Lookup(member, spec.CustomID)
			if err != nil {
				s.applyErrs = append(s.applyErrs, ApplyError{
					Change: ConfigChange{Op: OpInstall, Member: member, RuleID: RuleID(member, p.Key.Prefix, spec)},
					Err:    err,
				})
				continue
			}
			m := custom.MatchTemplate
			m.DstIP = p.Key.Prefix
			change = ConfigChange{
				Op: OpInstall, Member: member,
				RuleID:       RuleID(member, p.Key.Prefix, spec),
				Match:        m,
				Action:       custom.Action,
				ShapeRateBps: custom.ShapeRateBps,
			}
		} else {
			change = ConfigChange{
				Op: OpInstall, Member: member,
				RuleID:       RuleID(member, p.Key.Prefix, spec),
				Match:        spec.Match(dstOnly),
				Action:       spec.Action,
				ShapeRateBps: spec.ShapeRateBps,
			}
		}
		out = append(out, change)
	}
	return out
}

// enqueueRuleDiffLocked reconciles the previously desired rules of a
// path with the new desired set: removals for rules no longer wanted,
// installs for new ones. Unchanged rules generate no churn.
func (s *Stellar) enqueueRuleDiffLocked(key rib.PathKey, want []ConfigChange, now float64) {
	have := s.desired[key]
	haveByID := make(map[string]ConfigChange, len(have))
	for _, c := range have {
		haveByID[c.RuleID] = c
	}
	wantByID := make(map[string]ConfigChange, len(want))
	for _, c := range want {
		wantByID[c.RuleID] = c
	}

	// Stable ordering for determinism.
	ids := make([]string, 0, len(haveByID)+len(wantByID))
	for id := range haveByID {
		ids = append(ids, id)
	}
	for id := range wantByID {
		if _, ok := haveByID[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	for _, id := range ids {
		h, hasOld := haveByID[id]
		w, hasNew := wantByID[id]
		switch {
		case hasOld && !hasNew:
			s.queue.Enqueue(ConfigChange{Op: OpRemove, Member: h.Member, RuleID: id}, now)
		case !hasOld && hasNew:
			s.queue.Enqueue(w, now)
		case hasOld && hasNew && (h.Action != w.Action || h.ShapeRateBps != w.ShapeRateBps || h.Match != w.Match):
			// Replace: remove then install.
			s.queue.Enqueue(ConfigChange{Op: OpRemove, Member: h.Member, RuleID: id}, now)
			s.queue.Enqueue(w, now)
		}
	}

	if len(want) == 0 {
		delete(s.desired, key)
	} else {
		s.desired[key] = want
	}
}

// Process drains the change queue up to the given time and applies the
// released changes through the network manager. It returns the number of
// changes applied.
func (s *Stellar) Process(now float64) int {
	s.mu.Lock()
	released := s.queue.Drain(now)
	s.mu.Unlock()

	n := 0
	for _, dq := range released {
		err := s.mgr.Apply(dq.Change)
		s.mu.Lock()
		if err != nil {
			s.applyErrs = append(s.applyErrs, ApplyError{Change: dq.Change, Err: err})
		} else {
			s.latencies = append(s.latencies, dq.Waited)
			s.applied++
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// PendingChanges returns the queue depth.
func (s *Stellar) PendingChanges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// AppliedChanges returns the count of successfully applied changes.
func (s *Stellar) AppliedChanges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Errors returns the accumulated apply errors.
func (s *Stellar) Errors() []ApplyError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ApplyError(nil), s.applyErrs...)
}

// Latencies returns the signal-to-configuration delays of applied
// changes, in seconds.
func (s *Stellar) Latencies() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.latencies...)
}

// RIBLen returns the number of paths the controller currently tracks.
func (s *Stellar) RIBLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rib.Len()
}
