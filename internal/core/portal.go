package core

import (
	"errors"
	"sync"

	"stellar/internal/fabric"
)

// CustomRule is a member-defined blackholing rule registered through the
// IXP's customer self-service portal (Section 4.3): an arbitrary L2-L4
// match template plus action, referenced from BGP by its ID via the
// SelCustom signal.
type CustomRule struct {
	ID     uint32
	Member string
	// MatchTemplate is the rule's match with the destination prefix left
	// open; the controller fills in the announced prefix.
	MatchTemplate fabric.Match
	Action        fabric.ActionKind
	ShapeRateBps  float64
}

// Portal is the customer-facing rule registry. The IXP also preloads a
// shared set of predefined rules for common attack patterns; those are
// expressible directly in the signal encoding (DropUDPSrcPort etc.) and
// need no portal entry.
type Portal struct {
	mu     sync.RWMutex
	rules  map[string]map[uint32]CustomRule
	nextID uint32
}

// NewPortal returns an empty portal.
func NewPortal() *Portal {
	return &Portal{rules: make(map[string]map[uint32]CustomRule)}
}

// ErrNoSuchRule is returned when a referenced custom rule is not
// registered for the member.
var ErrNoSuchRule = errors.New("core: no such portal rule")

// Define registers a custom rule for member and returns its ID.
func (p *Portal) Define(member string, match fabric.Match, action fabric.ActionKind, shapeRateBps float64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	r := CustomRule{
		ID:            p.nextID,
		Member:        member,
		MatchTemplate: match,
		Action:        action,
		ShapeRateBps:  shapeRateBps,
	}
	m := p.rules[member]
	if m == nil {
		m = make(map[uint32]CustomRule)
		p.rules[member] = m
	}
	m[r.ID] = r
	return r.ID
}

// Lookup resolves a rule ID for member. Members can only reference their
// own rules — the portal is the authorization boundary.
func (p *Portal) Lookup(member string, id uint32) (CustomRule, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if r, ok := p.rules[member][id]; ok {
		return r, nil
	}
	return CustomRule{}, ErrNoSuchRule
}

// Delete removes a rule.
func (p *Portal) Delete(member string, id uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.rules[member][id]; !ok {
		return ErrNoSuchRule
	}
	delete(p.rules[member], id)
	return nil
}

// RulesOf lists a member's rules.
func (p *Portal) RulesOf(member string) []CustomRule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]CustomRule, 0, len(p.rules[member]))
	for _, r := range p.rules[member] {
		out = append(out, r)
	}
	return out
}
