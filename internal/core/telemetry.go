package core

import (
	"fmt"
	"net/netip"

	"stellar/internal/fabric"
)

// Telemetry is the member-facing feedback channel Section 3.1 demands:
// victims query the counters of their installed blackholing rules to see
// whether the attack is ongoing, how much was discarded, and how much
// sampled traffic passed a shaping queue — instead of probing by
// removing the blackhole and risking immediate re-congestion.

// CounterSource is implemented by network managers that can expose
// per-rule telemetry counters.
type CounterSource interface {
	// Counters returns the live counters of an installed rule.
	Counters(ruleID string) (*fabric.RuleCounters, error)
}

// Counters implements CounterSource for the QoS backend.
func (m *QoSManager) Counters(ruleID string) (*fabric.RuleCounters, error) {
	m.mu.Lock()
	fp, ok := m.installed[ruleID]
	m.mu.Unlock()
	if !ok {
		return nil, fabric.ErrNoSuchRule
	}
	port, err := m.fabric.PortByName(fp.member)
	if err != nil {
		return nil, err
	}
	rule, err := port.Rule(ruleID)
	if err != nil {
		return nil, err
	}
	return rule.Counters(), nil
}

// Counters implements CounterSource for the SDN backend.
func (m *SDNManager) Counters(ruleID string) (*fabric.RuleCounters, error) {
	m.mu.Lock()
	memberName, ok := m.installed[ruleID]
	m.mu.Unlock()
	if !ok {
		return nil, fabric.ErrNoSuchRule
	}
	port, err := m.fabric.PortByName(memberName)
	if err != nil {
		return nil, err
	}
	rule, err := port.Rule(ruleID)
	if err != nil {
		return nil, err
	}
	return rule.Counters(), nil
}

// Telemetry returns a snapshot of the counters for the rule a member's
// signal installed on (member, prefix, spec). It fails when the rule is
// not (or not yet — the change queue may still hold it) installed, or
// when the manager backend exposes no counters.
func (s *Stellar) Telemetry(member string, prefix netip.Prefix, spec RuleSpec) (fabric.CounterSnapshot, error) {
	src, ok := s.mgr.(CounterSource)
	if !ok {
		return fabric.CounterSnapshot{}, fmt.Errorf("core: manager %q exposes no telemetry", s.mgr.Name())
	}
	counters, err := src.Counters(RuleID(member, prefix, spec))
	if err != nil {
		return fabric.CounterSnapshot{}, err
	}
	return counters.Snapshot(), nil
}
