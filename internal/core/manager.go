package core

import (
	"errors"
	"fmt"
	"sync"

	"stellar/internal/fabric"
	"stellar/internal/hw"
)

// NetworkManager compiles abstract configuration changes into data-plane
// state (Section 4.4). Two implementations exist, matching the paper's
// realized options: vendor QoS policies (QoSManager) and an SDN
// flow-table backend (SDNManager).
type NetworkManager interface {
	// Apply performs one configuration change, respecting the hardware
	// information base; it returns an error when admission control
	// rejects the change.
	Apply(ConfigChange) error
	// Name labels the backend.
	Name() string
}

// ErrRuleExists is returned when installing an already-installed rule ID.
var ErrRuleExists = errors.New("core: rule already installed")

// QoSManager realizes blackholing rules as member-port QoS policies on
// the emulated edge router (Section 4.5): each install consumes TCAM
// criteria and a QoS policy slot, each removal releases them. The
// hardware information base (hw.EdgeRouter limits) performs admission
// control so the IXP platform can never be driven into resource
// exhaustion by blackholing requests (Section 4.1.2).
type QoSManager struct {
	fabric *fabric.Fabric
	router *hw.EdgeRouter

	mu        sync.Mutex
	portIndex map[string]int // member -> hw port index
	installed map[string]ruleFootprint
}

type ruleFootprint struct {
	member  string
	macCrit int
	l34Crit int
	portIdx int
}

// NewQoSManager builds a manager over the fabric and edge router. The
// portIndex maps member names to hardware port indices.
func NewQoSManager(f *fabric.Fabric, router *hw.EdgeRouter, portIndex map[string]int) *QoSManager {
	idx := make(map[string]int, len(portIndex))
	for k, v := range portIndex {
		idx[k] = v
	}
	return &QoSManager{fabric: f, router: router, portIndex: idx, installed: make(map[string]ruleFootprint)}
}

// Name implements NetworkManager.
func (m *QoSManager) Name() string { return "qos" }

// SetPortIndex registers (or re-homes) a member's hardware port index.
// Deployments that learn members at runtime (cmd/ixpd) call this as
// sessions establish.
func (m *QoSManager) SetPortIndex(member string, idx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.portIndex[member] = idx
}

// Apply implements NetworkManager.
func (m *QoSManager) Apply(c ConfigChange) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch c.Op {
	case OpInstall:
		if _, ok := m.installed[c.RuleID]; ok {
			return ErrRuleExists
		}
		port, err := m.fabric.PortByName(c.Member)
		if err != nil {
			return err
		}
		idx, ok := m.portIndex[c.Member]
		if !ok {
			return fmt.Errorf("core: member %s has no hardware port", c.Member)
		}
		mac, l34 := c.Match.CriteriaCount()
		if err := m.router.Allocate(idx, mac, l34); err != nil {
			return err // F1/F2/slots: admission control rejection
		}
		rule := &fabric.Rule{
			ID:           c.RuleID,
			Match:        c.Match,
			Action:       c.Action,
			ShapeRateBps: c.ShapeRateBps,
		}
		if err := port.InstallRule(rule); err != nil {
			_ = m.router.Release(idx, mac, l34)
			return err
		}
		m.installed[c.RuleID] = ruleFootprint{member: c.Member, macCrit: mac, l34Crit: l34, portIdx: idx}
		return nil
	case OpRemove:
		fp, ok := m.installed[c.RuleID]
		if !ok {
			return fabric.ErrNoSuchRule
		}
		port, err := m.fabric.PortByName(fp.member)
		if err != nil {
			return err
		}
		if err := port.RemoveRule(c.RuleID); err != nil {
			return err
		}
		if err := m.router.Release(fp.portIdx, fp.macCrit, fp.l34Crit); err != nil {
			return err
		}
		delete(m.installed, c.RuleID)
		return nil
	default:
		return fmt.Errorf("core: unknown op %v", c.Op)
	}
}

// InstalledCount returns the number of rules currently installed.
func (m *QoSManager) InstalledCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.installed)
}

// SDNManager realizes blackholing rules as flow-table entries on an
// OpenFlow-style switch (the SDX option of Section 4.2.2, demonstrated
// on the ENDEAVOUR platform in the paper's companion demo). The fabric
// data path is shared; the difference from QoSManager is the resource
// model: a single flow-table size budget instead of TCAM criteria
// accounting.
type SDNManager struct {
	fabric *fabric.Fabric
	// FlowTableSize bounds the number of flow entries (typical hardware
	// OpenFlow tables hold a few thousand TCAM entries).
	FlowTableSize int

	mu        sync.Mutex
	installed map[string]string // ruleID -> member
}

// ErrFlowTableFull is SDN admission-control rejection.
var ErrFlowTableFull = errors.New("core: flow table full")

// NewSDNManager builds an SDN backend with the given table size.
func NewSDNManager(f *fabric.Fabric, tableSize int) *SDNManager {
	return &SDNManager{fabric: f, FlowTableSize: tableSize, installed: make(map[string]string)}
}

// Name implements NetworkManager.
func (m *SDNManager) Name() string { return "sdn" }

// Apply implements NetworkManager.
func (m *SDNManager) Apply(c ConfigChange) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch c.Op {
	case OpInstall:
		if _, ok := m.installed[c.RuleID]; ok {
			return ErrRuleExists
		}
		if len(m.installed) >= m.FlowTableSize {
			return ErrFlowTableFull
		}
		port, err := m.fabric.PortByName(c.Member)
		if err != nil {
			return err
		}
		rule := &fabric.Rule{
			ID:           c.RuleID,
			Match:        c.Match,
			Action:       c.Action,
			ShapeRateBps: c.ShapeRateBps,
		}
		if err := port.InstallRule(rule); err != nil {
			return err
		}
		m.installed[c.RuleID] = c.Member
		return nil
	case OpRemove:
		memberName, ok := m.installed[c.RuleID]
		if !ok {
			return fabric.ErrNoSuchRule
		}
		port, err := m.fabric.PortByName(memberName)
		if err != nil {
			return err
		}
		if err := port.RemoveRule(c.RuleID); err != nil {
			return err
		}
		delete(m.installed, c.RuleID)
		return nil
	default:
		return fmt.Errorf("core: unknown op %v", c.Op)
	}
}

// InstalledCount returns the number of installed flow entries.
func (m *SDNManager) InstalledCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.installed)
}
