package core

import (
	"fmt"

	"stellar/internal/fabric"
)

// ChangeOp is the kind of an abstract configuration change.
type ChangeOp int

// Operations.
const (
	OpInstall ChangeOp = iota
	OpRemove
)

func (o ChangeOp) String() string {
	if o == OpInstall {
		return "install"
	}
	return "remove"
}

// ConfigChange is one abstract, hardware-independent configuration
// change produced by the blackholing controller from RIB diffs
// (Section 4.4). The network manager compiles it into hardware-specific
// state.
type ConfigChange struct {
	Op ChangeOp
	// Member is the victim member whose egress port the rule applies to.
	Member string
	// RuleID is the stable identifier of the data-plane rule.
	RuleID string
	// Match and Action describe the rule for OpInstall.
	Match        fabric.Match
	Action       fabric.ActionKind
	ShapeRateBps float64
}

func (c ConfigChange) String() string {
	return fmt.Sprintf("%s %s on %s", c.Op, c.RuleID, c.Member)
}

// DequeuedChange pairs a change with the time it spent in the queue —
// the "time from blackholing signal to configuration" of Figure 10(b).
type DequeuedChange struct {
	Change ConfigChange
	// Waited is the queueing delay in seconds.
	Waited float64
}

// ChangeQueue is the token-bucket software queue between the blackholing
// controller and the network manager (Figure 7). It limits the
// configuration change rate to what the switch control plane sustains
// (Figure 10a: ~4.33 updates/s at the 15% CPU cap) while allowing a
// configurable maximum burst size (MBS).
//
// The queue is driven by an explicit clock so simulations replay traces
// in virtual time; times are float64 seconds.
type ChangeQueue struct {
	ratePerSec float64
	burst      float64

	tokens float64
	last   float64
	queue  []queuedChange
	// depth high-water mark, for capacity planning.
	maxDepth int
}

type queuedChange struct {
	change     ConfigChange
	enqueuedAt float64
}

// NewChangeQueue builds a queue with the given sustainable rate and
// maximum burst size (in changes). The bucket starts full.
func NewChangeQueue(ratePerSec float64, maxBurst int) *ChangeQueue {
	if maxBurst < 1 {
		maxBurst = 1
	}
	return &ChangeQueue{
		ratePerSec: ratePerSec,
		burst:      float64(maxBurst),
		tokens:     float64(maxBurst),
	}
}

// Rate returns the configured dequeue rate.
func (q *ChangeQueue) Rate() float64 { return q.ratePerSec }

// Enqueue adds a change at the given time.
func (q *ChangeQueue) Enqueue(c ConfigChange, now float64) {
	q.queue = append(q.queue, queuedChange{change: c, enqueuedAt: now})
	if len(q.queue) > q.maxDepth {
		q.maxDepth = len(q.queue)
	}
}

// Len returns the number of queued changes.
func (q *ChangeQueue) Len() int { return len(q.queue) }

// MaxDepth returns the high-water mark of the queue depth.
func (q *ChangeQueue) MaxDepth() int { return q.maxDepth }

// Drain refills the token bucket up to now and dequeues every change a
// token is available for, FIFO. Draining at time t after enqueueing at
// t0 yields Waited == t - t0 for changes the bucket admits immediately.
func (q *ChangeQueue) Drain(now float64) []DequeuedChange {
	if now > q.last {
		q.tokens += (now - q.last) * q.ratePerSec
		if q.tokens > q.burst {
			q.tokens = q.burst
		}
		q.last = now
	}
	var out []DequeuedChange
	for len(q.queue) > 0 && q.tokens >= 1 {
		qc := q.queue[0]
		q.queue = q.queue[1:]
		q.tokens--
		out = append(out, DequeuedChange{Change: qc.change, Waited: now - qc.enqueuedAt})
	}
	return out
}
