// Package rib implements the Routing Information Bases used by the route
// server and Stellar's blackholing controller: per-peer Adj-RIB-In tables
// keyed by (prefix, peer, path-id) so that ADD-PATH sessions can hold
// multiple paths per prefix, BGP best-path selection, and snapshot
// diffing. Snapshot diffs are how the controller turns a BGP message
// stream into a set of abstract configuration changes (Section 4.4).
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/bgp"
)

// PathKey uniquely identifies a path within a table.
type PathKey struct {
	Prefix netip.Prefix
	Peer   string // peer identifier (route server uses the member's BGP ID or name)
	PathID uint32 // ADD-PATH identifier; 0 on non-ADD-PATH sessions
}

func (k PathKey) String() string {
	return fmt.Sprintf("%s via %s id=%d", k.Prefix, k.Peer, k.PathID)
}

// Path is one routing table entry.
type Path struct {
	Key    PathKey
	PeerAS uint32
	Attrs  bgp.PathAttrs
	// Seq is a table-assigned monotonic sequence number; it orders
	// arrivals for deterministic tie-breaking and lets diffs detect
	// re-announcements with changed attributes.
	Seq uint64
}

// Table is a concurrency-safe RIB.
type Table struct {
	mu     sync.RWMutex
	routes map[netip.Prefix]map[PathKey]*Path
	seq    uint64
}

// New returns an empty table.
func New() *Table {
	return &Table{routes: make(map[netip.Prefix]map[PathKey]*Path)}
}

// Add installs or replaces the path identified by key. It returns the
// stored (copied) path.
func (t *Table) Add(key PathKey, peerAS uint32, attrs bgp.PathAttrs) *Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	p := &Path{Key: key, PeerAS: peerAS, Attrs: attrs.Clone(), Seq: t.seq}
	m := t.routes[key.Prefix]
	if m == nil {
		m = make(map[PathKey]*Path)
		t.routes[key.Prefix] = m
	}
	m[key] = p
	return p
}

// Remove deletes the path identified by key; it reports whether a path
// was present.
func (t *Table) Remove(key PathKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.routes[key.Prefix]
	if m == nil {
		return false
	}
	if _, ok := m[key]; !ok {
		return false
	}
	delete(m, key)
	if len(m) == 0 {
		delete(t.routes, key.Prefix)
	}
	return true
}

// RemovePeer withdraws every path learned from peer (session teardown,
// RFC 4271 §8: implicit withdraw of the whole Adj-RIB-In). It returns the
// removed paths.
func (t *Table) RemovePeer(peer string) []*Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*Path
	for prefix, m := range t.routes {
		for key, p := range m {
			if key.Peer == peer {
				removed = append(removed, p)
				delete(m, key)
			}
		}
		if len(m) == 0 {
			delete(t.routes, prefix)
		}
	}
	sortPaths(removed)
	return removed
}

// FindByPathID returns the path for (prefix, pathID) regardless of the
// peer label, or nil. BGP withdrawals on ADD-PATH sessions identify the
// path by its identifier alone (RFC 7911 §3); attribute-less withdraw
// messages cannot name the peer.
func (t *Table) FindByPathID(prefix netip.Prefix, pathID uint32) *Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for key, p := range t.routes[prefix] {
		if key.PathID == pathID {
			return p
		}
	}
	return nil
}

// Lookup returns every path for prefix, ordered best-first.
func (t *Table) Lookup(prefix netip.Prefix) []*Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := t.routes[prefix]
	out := make([]*Path, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// Best returns the best path for prefix, or nil if none exists.
func (t *Table) Best(prefix netip.Prefix) *Path {
	paths := t.Lookup(prefix)
	if len(paths) == 0 {
		return nil
	}
	return paths[0]
}

// Prefixes returns every prefix with at least one path, sorted.
func (t *Table) Prefixes() []netip.Prefix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]netip.Prefix, 0, len(t.routes))
	for p := range t.routes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	return out
}

// Len returns the total number of paths.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, m := range t.routes {
		n += len(m)
	}
	return n
}

// MoreSpecifics returns all paths whose prefix is covered by (and at
// least as specific as) covering, best-first within each prefix. The
// blackholing controller uses it to find /32 blackholing routes inside a
// member's registered aggregate.
func (t *Table) MoreSpecifics(covering netip.Prefix) []*Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Path
	for prefix, m := range t.routes {
		if covering.Bits() <= prefix.Bits() && covering.Contains(prefix.Addr()) {
			for _, p := range m {
				out = append(out, p)
			}
		}
	}
	sortPaths(out)
	return out
}

// Snapshot returns a point-in-time copy of the table keyed by PathKey.
type Snapshot map[PathKey]*Path

// Snapshot captures the current table contents. Paths are shared
// (immutable by convention once stored); the map is a copy.
func (t *Table) Snapshot() Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := make(Snapshot, len(t.routes)*2)
	for _, m := range t.routes {
		for key, p := range m {
			s[key] = p
		}
	}
	return s
}

// Diff is the difference between two snapshots.
type Diff struct {
	Added   []*Path // present in new only
	Removed []*Path // present in old only
	Changed []*Path // present in both with different Seq (re-announced)
}

// Empty reports whether the diff contains no changes.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// DiffSnapshots computes new minus old. Results are sorted for
// determinism.
func DiffSnapshots(old, new Snapshot) Diff {
	var d Diff
	for key, np := range new {
		op, ok := old[key]
		switch {
		case !ok:
			d.Added = append(d.Added, np)
		case op.Seq != np.Seq:
			d.Changed = append(d.Changed, np)
		}
	}
	for key, op := range old {
		if _, ok := new[key]; !ok {
			d.Removed = append(d.Removed, op)
		}
	}
	sortPaths(d.Added)
	sortPaths(d.Removed)
	sortPaths(d.Changed)
	return d
}

func sortPaths(ps []*Path) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i].Key, ps[j].Key
		if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
			return c < 0
		}
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.PathID < b.PathID
	})
}

// better implements BGP decision process ordering (RFC 4271 §9.1.2.2,
// the subset meaningful at a route server): higher LOCAL_PREF, shorter
// AS_PATH, lower ORIGIN, lower MED (only between paths from the same
// neighbor AS), then oldest (lowest Seq), then lowest peer string as the
// final deterministic tie-break.
func better(a, b *Path) bool {
	lpA, lpB := uint32(100), uint32(100)
	if a.Attrs.LocalPref != nil {
		lpA = *a.Attrs.LocalPref
	}
	if b.Attrs.LocalPref != nil {
		lpB = *b.Attrs.LocalPref
	}
	if lpA != lpB {
		return lpA > lpB
	}
	if la, lb := a.Attrs.PathLen(), b.Attrs.PathLen(); la != lb {
		return la < lb
	}
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	if a.PeerAS == b.PeerAS {
		var medA, medB uint32
		if a.Attrs.MED != nil {
			medA = *a.Attrs.MED
		}
		if b.Attrs.MED != nil {
			medB = *b.Attrs.MED
		}
		if medA != medB {
			return medA < medB
		}
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Key.Peer != b.Key.Peer {
		return a.Key.Peer < b.Key.Peer
	}
	return a.Key.PathID < b.Key.PathID
}
