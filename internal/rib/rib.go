// Package rib implements the Routing Information Bases used by the route
// server and Stellar's blackholing controller: per-peer Adj-RIB-In tables
// keyed by (prefix, peer, path-id) so that ADD-PATH sessions can hold
// multiple paths per prefix, BGP best-path selection, and snapshot
// diffing. Snapshot diffs are how the controller turns a BGP message
// stream into a set of abstract configuration changes (Section 4.4).
//
// The table is sharded by prefix hash: every prefix lives in exactly one
// shard, each shard owns its routes map and cached best paths behind its
// own lock, and a single atomic counter issues globally monotonic
// sequence numbers. Mutations on different shards proceed in parallel;
// mutations on the same prefix serialize on its shard, which is what lets
// AddWithBest / RemoveWithBest report an atomically consistent best-path
// transition to the route server's export pipeline.
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"stellar/internal/bgp"
)

// PathKey uniquely identifies a path within a table.
type PathKey struct {
	Prefix netip.Prefix
	Peer   string // peer identifier (route server uses the member's BGP ID or name)
	PathID uint32 // ADD-PATH identifier; 0 on non-ADD-PATH sessions
}

func (k PathKey) String() string {
	return fmt.Sprintf("%s via %s id=%d", k.Prefix, k.Peer, k.PathID)
}

// Path is one routing table entry.
type Path struct {
	Key    PathKey
	PeerAS uint32
	Attrs  bgp.PathAttrs
	// Seq is a table-assigned monotonic sequence number; it orders
	// arrivals for deterministic tie-breaking and lets diffs detect
	// re-announcements with changed attributes.
	Seq uint64
}

// DefaultShards is the shard count used by New. It trades map sizing
// against lock contention for a route server with hundreds of concurrent
// peer sessions.
const DefaultShards = 32

// prefixEntry holds every path for one prefix plus the cached best path,
// maintained incrementally so Best is O(1) and a mutation recomputes at
// most one prefix's ordering.
type prefixEntry struct {
	paths map[PathKey]*Path
	best  *Path
}

type shard struct {
	mu     sync.RWMutex
	routes map[netip.Prefix]*prefixEntry
}

// Table is a concurrency-safe, prefix-sharded RIB.
type Table struct {
	shards []shard
	mask   uint32
	seq    atomic.Uint64
}

// New returns an empty table with DefaultShards shards.
func New() *Table { return NewSharded(DefaultShards) }

// NewSharded returns an empty table with n shards (rounded up to a power
// of two; n <= 1 yields the single-lock layout, the pre-sharding
// baseline).
func NewSharded(n int) *Table {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range t.shards {
		t.shards[i].routes = make(map[netip.Prefix]*prefixEntry)
	}
	return t
}

// ShardCount returns the number of shards.
func (t *Table) ShardCount() int { return len(t.shards) }

func (t *Table) shardFor(p netip.Prefix) *shard {
	a := p.Addr().As16()
	h := uint32(2166136261) // FNV-1a
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(p.Bits())) * 16777619
	return &t.shards[h&t.mask]
}

// BestChange describes how one mutation moved a prefix's best path. Old
// and New are pointers into the table's immutable path set; Old == New
// (including both nil) means the best path did not change.
type BestChange struct {
	Prefix netip.Prefix
	Old    *Path
	New    *Path
}

// Changed reports whether the mutation altered the best path.
func (c BestChange) Changed() bool { return c.Old != c.New }

// Add installs or replaces the path identified by key. It returns the
// stored (copied) path.
func (t *Table) Add(key PathKey, peerAS uint32, attrs bgp.PathAttrs) *Path {
	p, _ := t.AddWithBest(key, peerAS, attrs)
	return p
}

// AddWithBest installs or replaces the path identified by key and
// reports, atomically with the mutation, how the prefix's best path
// changed.
func (t *Table) AddWithBest(key PathKey, peerAS uint32, attrs bgp.PathAttrs) (*Path, BestChange) {
	sh := t.shardFor(key.Prefix)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p := &Path{Key: key, PeerAS: peerAS, Attrs: attrs.Clone(), Seq: t.seq.Add(1)}
	e := sh.routes[key.Prefix]
	if e == nil {
		e = &prefixEntry{paths: make(map[PathKey]*Path)}
		sh.routes[key.Prefix] = e
	}
	old := e.best
	e.paths[key] = p
	switch {
	case old == nil:
		e.best = p
	case old.Key == key:
		// Replaced the best path: its attributes may have worsened.
		e.recomputeBest()
	case better(p, old):
		e.best = p
	}
	return p, BestChange{Prefix: key.Prefix, Old: old, New: e.best}
}

// Remove deletes the path identified by key; it reports whether a path
// was present.
func (t *Table) Remove(key PathKey) bool {
	ok, _ := t.RemoveWithBest(key)
	return ok
}

// RemoveWithBest deletes the path identified by key and reports, when a
// path was present, how the prefix's best path changed.
func (t *Table) RemoveWithBest(key PathKey) (bool, BestChange) {
	sh := t.shardFor(key.Prefix)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.routes[key.Prefix]
	if e == nil {
		return false, BestChange{Prefix: key.Prefix}
	}
	if _, ok := e.paths[key]; !ok {
		return false, BestChange{Prefix: key.Prefix, Old: e.best, New: e.best}
	}
	old := e.best
	delete(e.paths, key)
	if len(e.paths) == 0 {
		delete(sh.routes, key.Prefix)
		return true, BestChange{Prefix: key.Prefix, Old: old}
	}
	if old != nil && old.Key == key {
		e.recomputeBest()
	}
	return true, BestChange{Prefix: key.Prefix, Old: old, New: e.best}
}

func (e *prefixEntry) recomputeBest() {
	var best *Path
	for _, p := range e.paths {
		if best == nil || better(p, best) {
			best = p
		}
	}
	e.best = best
}

// RemovePeer withdraws every path learned from peer (session teardown,
// RFC 4271 §8: implicit withdraw of the whole Adj-RIB-In). It returns the
// removed paths.
func (t *Table) RemovePeer(peer string) []*Path {
	removed, _ := t.RemovePeerWithBest(peer)
	return removed
}

// RemovePeerWithBest withdraws every path learned from peer and
// additionally returns the best-path transition of every affected prefix,
// sorted for determinism.
func (t *Table) RemovePeerWithBest(peer string) ([]*Path, []BestChange) {
	var removed []*Path
	var changes []BestChange
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for prefix, e := range sh.routes {
			old := e.best
			touched := false
			for key, p := range e.paths {
				if key.Peer == peer {
					removed = append(removed, p)
					delete(e.paths, key)
					touched = true
				}
			}
			if !touched {
				continue
			}
			if len(e.paths) == 0 {
				delete(sh.routes, prefix)
				changes = append(changes, BestChange{Prefix: prefix, Old: old})
				continue
			}
			if old != nil && old.Key.Peer == peer {
				e.recomputeBest()
			}
			changes = append(changes, BestChange{Prefix: prefix, Old: old, New: e.best})
		}
		sh.mu.Unlock()
	}
	sortPaths(removed)
	sort.Slice(changes, func(i, j int) bool { return prefixLess(changes[i].Prefix, changes[j].Prefix) })
	return removed, changes
}

// FindByPathID returns the path for (prefix, pathID) regardless of the
// peer label, or nil. BGP withdrawals on ADD-PATH sessions identify the
// path by its identifier alone (RFC 7911 §3); attribute-less withdraw
// messages cannot name the peer.
func (t *Table) FindByPathID(prefix netip.Prefix, pathID uint32) *Path {
	sh := t.shardFor(prefix)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.routes[prefix]
	if e == nil {
		return nil
	}
	for key, p := range e.paths {
		if key.PathID == pathID {
			return p
		}
	}
	return nil
}

// Lookup returns every path for prefix, ordered best-first.
func (t *Table) Lookup(prefix netip.Prefix) []*Path {
	sh := t.shardFor(prefix)
	sh.mu.RLock()
	e := sh.routes[prefix]
	out := make([]*Path, 0, 4)
	if e != nil {
		for _, p := range e.paths {
			out = append(out, p)
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// Best returns the best path for prefix, or nil if none exists. It is an
// O(1) read of the shard's incrementally maintained cache.
func (t *Table) Best(prefix netip.Prefix) *Path {
	sh := t.shardFor(prefix)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e := sh.routes[prefix]; e != nil {
		return e.best
	}
	return nil
}

// Prefixes returns every prefix with at least one path, sorted.
func (t *Table) Prefixes() []netip.Prefix {
	var out []netip.Prefix
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for p := range sh.routes {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return prefixLess(out[i], out[j]) })
	return out
}

// Len returns the total number of paths.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, e := range sh.routes {
			n += len(e.paths)
		}
		sh.mu.RUnlock()
	}
	return n
}

// MoreSpecifics returns all paths whose prefix is covered by (and at
// least as specific as) covering, best-first within each prefix. The
// blackholing controller uses it to find /32 blackholing routes inside a
// member's registered aggregate.
func (t *Table) MoreSpecifics(covering netip.Prefix) []*Path {
	var out []*Path
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for prefix, e := range sh.routes {
			if covering.Bits() <= prefix.Bits() && covering.Contains(prefix.Addr()) {
				for _, p := range e.paths {
					out = append(out, p)
				}
			}
		}
		sh.mu.RUnlock()
	}
	sortPaths(out)
	return out
}

// Snapshot returns a point-in-time copy of the table keyed by PathKey.
type Snapshot map[PathKey]*Path

// Snapshot captures the current table contents. Paths are shared
// (immutable by convention once stored); the map is a copy. Shards are
// snapshotted one at a time, so concurrent mutations on other shards may
// or may not be included — each prefix is internally consistent.
func (t *Table) Snapshot() Snapshot {
	s := make(Snapshot, 64)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, e := range sh.routes {
			for key, p := range e.paths {
				s[key] = p
			}
		}
		sh.mu.RUnlock()
	}
	return s
}

// Diff is the difference between two snapshots.
type Diff struct {
	Added   []*Path // present in new only
	Removed []*Path // present in old only
	Changed []*Path // present in both with different Seq (re-announced)
}

// Empty reports whether the diff contains no changes.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// DiffSnapshots computes new minus old. Results are sorted for
// determinism.
func DiffSnapshots(old, new Snapshot) Diff {
	var d Diff
	for key, np := range new {
		op, ok := old[key]
		switch {
		case !ok:
			d.Added = append(d.Added, np)
		case op.Seq != np.Seq:
			d.Changed = append(d.Changed, np)
		}
	}
	for key, op := range old {
		if _, ok := new[key]; !ok {
			d.Removed = append(d.Removed, op)
		}
	}
	sortPaths(d.Added)
	sortPaths(d.Removed)
	sortPaths(d.Changed)
	return d
}

func prefixLess(a, b netip.Prefix) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Bits() < b.Bits()
}

func sortPaths(ps []*Path) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i].Key, ps[j].Key
		if a.Prefix != b.Prefix {
			return prefixLess(a.Prefix, b.Prefix)
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.PathID < b.PathID
	})
}

// better implements BGP decision process ordering (RFC 4271 §9.1.2.2,
// the subset meaningful at a route server): higher LOCAL_PREF, shorter
// AS_PATH, lower ORIGIN, lower MED (only between paths from the same
// neighbor AS), then oldest (lowest Seq), then lowest peer string as the
// final deterministic tie-break.
func better(a, b *Path) bool {
	lpA, lpB := uint32(100), uint32(100)
	if a.Attrs.LocalPref != nil {
		lpA = *a.Attrs.LocalPref
	}
	if b.Attrs.LocalPref != nil {
		lpB = *b.Attrs.LocalPref
	}
	if lpA != lpB {
		return lpA > lpB
	}
	if la, lb := a.Attrs.PathLen(), b.Attrs.PathLen(); la != lb {
		return la < lb
	}
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	if a.PeerAS == b.PeerAS {
		var medA, medB uint32
		if a.Attrs.MED != nil {
			medA = *a.Attrs.MED
		}
		if b.Attrs.MED != nil {
			medB = *b.Attrs.MED
		}
		if medA != medB {
			return medA < medB
		}
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Key.Peer != b.Key.Peer {
		return a.Key.Peer < b.Key.Peer
	}
	return a.Key.PathID < b.Key.PathID
}
