package rib

import (
	"net/netip"
	"sync"
	"testing"
	"testing/quick"

	"stellar/internal/bgp"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func attrs(asns ...uint32) bgp.PathAttrs {
	return bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
}

func TestAddLookupRemove(t *testing.T) {
	tbl := New()
	k := PathKey{Prefix: pfx("100.10.10.0/24"), Peer: "as64512"}
	tbl.Add(k, 64512, attrs(64512))
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got := tbl.Lookup(k.Prefix)
	if len(got) != 1 || got[0].Key != k || got[0].PeerAS != 64512 {
		t.Fatalf("Lookup: %+v", got)
	}
	if !tbl.Remove(k) {
		t.Fatal("Remove returned false")
	}
	if tbl.Remove(k) {
		t.Fatal("double Remove returned true")
	}
	if tbl.Len() != 0 || len(tbl.Prefixes()) != 0 {
		t.Fatal("table not empty after remove")
	}
}

func TestAddReplacesSamePath(t *testing.T) {
	tbl := New()
	k := PathKey{Prefix: pfx("100.10.10.0/24"), Peer: "a"}
	p1 := tbl.Add(k, 1, attrs(1))
	p2 := tbl.Add(k, 1, attrs(1, 2))
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace)", tbl.Len())
	}
	if p2.Seq <= p1.Seq {
		t.Fatal("Seq did not advance")
	}
	if tbl.Best(k.Prefix).Attrs.PathLen() != 2 {
		t.Fatal("replacement not visible")
	}
}

func TestAddPathMultiplePathsSamePrefix(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.10/32")
	tbl.Add(PathKey{Prefix: prefix, Peer: "rs", PathID: 1}, 64512, attrs(64512))
	tbl.Add(PathKey{Prefix: prefix, Peer: "rs", PathID: 2}, 64513, attrs(64513))
	if got := tbl.Lookup(prefix); len(got) != 2 {
		t.Fatalf("want 2 paths, got %d", len(got))
	}
}

func TestBestPathLocalPref(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	low, high := uint32(50), uint32(200)
	aLow := attrs(1, 2)
	aLow.LocalPref = &low
	aHigh := attrs(1, 2, 3, 4) // longer path but higher pref
	aHigh.LocalPref = &high
	tbl.Add(PathKey{Prefix: prefix, Peer: "a"}, 1, aLow)
	tbl.Add(PathKey{Prefix: prefix, Peer: "b"}, 2, aHigh)
	if best := tbl.Best(prefix); best.Key.Peer != "b" {
		t.Fatalf("best = %s, want b (higher local pref)", best.Key.Peer)
	}
}

func TestBestPathShorterASPath(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	tbl.Add(PathKey{Prefix: prefix, Peer: "long"}, 1, attrs(1, 2, 3))
	tbl.Add(PathKey{Prefix: prefix, Peer: "short"}, 2, attrs(9))
	if best := tbl.Best(prefix); best.Key.Peer != "short" {
		t.Fatalf("best = %s, want short", best.Key.Peer)
	}
}

func TestBestPathOrigin(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	aEGP := attrs(1)
	aEGP.Origin = bgp.OriginEGP
	aIGP := attrs(2)
	aIGP.Origin = bgp.OriginIGP
	tbl.Add(PathKey{Prefix: prefix, Peer: "egp"}, 1, aEGP)
	tbl.Add(PathKey{Prefix: prefix, Peer: "igp"}, 2, aIGP)
	if best := tbl.Best(prefix); best.Key.Peer != "igp" {
		t.Fatalf("best = %s, want igp", best.Key.Peer)
	}
}

func TestBestPathMEDSameNeighbor(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	med10, med5 := uint32(10), uint32(5)
	a1 := attrs(7)
	a1.MED = &med10
	a2 := attrs(7)
	a2.MED = &med5
	tbl.Add(PathKey{Prefix: prefix, Peer: "x"}, 7, a1)
	tbl.Add(PathKey{Prefix: prefix, Peer: "y"}, 7, a2)
	if best := tbl.Best(prefix); best.Key.Peer != "y" {
		t.Fatalf("best = %s, want y (lower MED)", best.Key.Peer)
	}
}

func TestBestPathMEDIgnoredAcrossNeighbors(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	medHigh := uint32(1000)
	a1 := attrs(7)
	a1.MED = &medHigh
	a2 := attrs(8)
	tbl.Add(PathKey{Prefix: prefix, Peer: "x"}, 7, a1) // earlier
	tbl.Add(PathKey{Prefix: prefix, Peer: "y"}, 8, a2)
	// Different neighbor AS: MED not compared; oldest (x) wins.
	if best := tbl.Best(prefix); best.Key.Peer != "x" {
		t.Fatalf("best = %s, want x (oldest)", best.Key.Peer)
	}
}

func TestBestNil(t *testing.T) {
	if New().Best(pfx("1.0.0.0/8")) != nil {
		t.Fatal("Best on empty table")
	}
}

func TestRemovePeer(t *testing.T) {
	tbl := New()
	tbl.Add(PathKey{Prefix: pfx("1.0.0.0/8"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("2.0.0.0/8"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("2.0.0.0/8"), Peer: "b"}, 2, attrs(2))
	removed := tbl.RemovePeer("a")
	if len(removed) != 2 {
		t.Fatalf("removed %d, want 2", len(removed))
	}
	if tbl.Len() != 1 || tbl.Best(pfx("2.0.0.0/8")).Key.Peer != "b" {
		t.Fatalf("table after RemovePeer: len=%d", tbl.Len())
	}
}

func TestMoreSpecifics(t *testing.T) {
	tbl := New()
	tbl.Add(PathKey{Prefix: pfx("100.10.10.0/24"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("100.10.10.10/32"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("100.10.11.0/24"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("203.0.113.0/24"), Peer: "a"}, 1, attrs(1))

	got := tbl.MoreSpecifics(pfx("100.10.10.0/24"))
	if len(got) != 2 {
		t.Fatalf("MoreSpecifics: %d, want 2", len(got))
	}
	got = tbl.MoreSpecifics(pfx("100.10.0.0/16"))
	if len(got) != 3 {
		t.Fatalf("MoreSpecifics /16: %d, want 3", len(got))
	}
	got = tbl.MoreSpecifics(pfx("0.0.0.0/0"))
	if len(got) != 4 {
		t.Fatalf("MoreSpecifics default: %d, want 4", len(got))
	}
}

func TestPrefixesSorted(t *testing.T) {
	tbl := New()
	tbl.Add(PathKey{Prefix: pfx("9.0.0.0/8"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("1.0.0.0/8"), Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: pfx("1.0.0.0/16"), Peer: "a"}, 1, attrs(1))
	ps := tbl.Prefixes()
	if len(ps) != 3 || ps[0] != pfx("1.0.0.0/8") || ps[1] != pfx("1.0.0.0/16") || ps[2] != pfx("9.0.0.0/8") {
		t.Fatalf("Prefixes: %v", ps)
	}
}

func TestSnapshotDiff(t *testing.T) {
	tbl := New()
	kA := PathKey{Prefix: pfx("1.0.0.0/8"), Peer: "a"}
	kB := PathKey{Prefix: pfx("2.0.0.0/8"), Peer: "b"}
	kC := PathKey{Prefix: pfx("3.0.0.0/8"), Peer: "c"}

	tbl.Add(kA, 1, attrs(1))
	tbl.Add(kB, 2, attrs(2))
	s1 := tbl.Snapshot()

	tbl.Remove(kB)              // removed
	tbl.Add(kC, 3, attrs(3))    // added
	tbl.Add(kA, 1, attrs(1, 9)) // changed (re-announce)
	s2 := tbl.Snapshot()

	d := DiffSnapshots(s1, s2)
	if len(d.Added) != 1 || d.Added[0].Key != kC {
		t.Fatalf("Added: %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0].Key != kB {
		t.Fatalf("Removed: %v", d.Removed)
	}
	if len(d.Changed) != 1 || d.Changed[0].Key != kA {
		t.Fatalf("Changed: %v", d.Changed)
	}
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
	if !DiffSnapshots(s2, s2).Empty() {
		t.Fatal("self-diff should be empty")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tbl := New()
	k := PathKey{Prefix: pfx("1.0.0.0/8"), Peer: "a"}
	tbl.Add(k, 1, attrs(1))
	s := tbl.Snapshot()
	tbl.Remove(k)
	if _, ok := s[k]; !ok {
		t.Fatal("snapshot affected by later mutation")
	}
}

func TestAttrsIsolation(t *testing.T) {
	tbl := New()
	k := PathKey{Prefix: pfx("1.0.0.0/8"), Peer: "a"}
	a := attrs(1, 2)
	tbl.Add(k, 1, a)
	a.ASPath[0].ASNs[0] = 999 // mutate caller's copy
	if tbl.Best(k.Prefix).Attrs.ASPath[0].ASNs[0] == 999 {
		t.Fatal("table shares attr storage with caller")
	}
}

func TestDiffProperty(t *testing.T) {
	// Property: applying a random series of adds/removes, the diff of
	// (before, after) has |Added| = |after-only keys| and |Removed| =
	// |before-only keys|.
	f := func(ops []uint16) bool {
		tbl := New()
		prefixes := []netip.Prefix{pfx("1.0.0.0/8"), pfx("2.0.0.0/8"), pfx("3.0.0.0/8"), pfx("4.0.0.0/8")}
		peers := []string{"a", "b", "c"}
		apply := func(op uint16) {
			key := PathKey{
				Prefix: prefixes[int(op)%len(prefixes)],
				Peer:   peers[int(op>>2)%len(peers)],
			}
			if op&0x8000 != 0 {
				tbl.Remove(key)
			} else {
				tbl.Add(key, uint32(op), attrs(uint32(op)))
			}
		}
		half := len(ops) / 2
		for _, op := range ops[:half] {
			apply(op)
		}
		before := tbl.Snapshot()
		for _, op := range ops[half:] {
			apply(op)
		}
		after := tbl.Snapshot()
		d := DiffSnapshots(before, after)
		addedWant, removedWant := 0, 0
		for k := range after {
			if _, ok := before[k]; !ok {
				addedWant++
			}
		}
		for k := range before {
			if _, ok := after[k]; !ok {
				removedWant++
			}
		}
		return len(d.Added) == addedWant && len(d.Removed) == removedWant
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	tbl := New()
	a := attrs(64512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i >> 16), byte(i >> 8), byte(i), 0}), 24)
		tbl.Add(PathKey{Prefix: p, Peer: "a"}, 64512, a)
	}
}

func BenchmarkSnapshotDiff(b *testing.B) {
	tbl := New()
	a := attrs(64512)
	for i := 0; i < 1000; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		tbl.Add(PathKey{Prefix: p, Peer: "a"}, 64512, a)
	}
	s1 := tbl.Snapshot()
	tbl.Add(PathKey{Prefix: pfx("200.0.0.0/8"), Peer: "b"}, 1, a)
	s2 := tbl.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffSnapshots(s1, s2)
	}
}

func TestFindByPathID(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.10/32")
	tbl.Add(PathKey{Prefix: prefix, Peer: "a", PathID: 7}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: prefix, Peer: "b", PathID: 9}, 2, attrs(2))
	if p := tbl.FindByPathID(prefix, 7); p == nil || p.Key.Peer != "a" {
		t.Fatalf("FindByPathID(7): %+v", p)
	}
	if p := tbl.FindByPathID(prefix, 9); p == nil || p.Key.Peer != "b" {
		t.Fatalf("FindByPathID(9): %+v", p)
	}
	if p := tbl.FindByPathID(prefix, 99); p != nil {
		t.Fatalf("FindByPathID(99): %+v", p)
	}
	if p := tbl.FindByPathID(pfx("9.9.9.9/32"), 7); p != nil {
		t.Fatalf("unknown prefix: %+v", p)
	}
}

func TestNewShardedRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {32, 32}, {33, 64},
	} {
		if got := NewSharded(c.in).ShardCount(); got != c.want {
			t.Fatalf("NewSharded(%d).ShardCount() = %d, want %d", c.in, got, c.want)
		}
	}
	if New().ShardCount() != DefaultShards {
		t.Fatalf("New().ShardCount() = %d", New().ShardCount())
	}
}

func TestAddWithBestTransitions(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	kA := PathKey{Prefix: prefix, Peer: "a"}
	kB := PathKey{Prefix: prefix, Peer: "b"}

	pA, tr := tbl.AddWithBest(kA, 1, attrs(1, 2, 3))
	if tr.Old != nil || tr.New != pA || !tr.Changed() {
		t.Fatalf("first add transition: %+v", tr)
	}
	// Worse path: best unchanged.
	_, tr = tbl.AddWithBest(kB, 2, attrs(9, 8, 7, 6))
	if tr.Changed() || tr.New != pA {
		t.Fatalf("worse add transition: %+v", tr)
	}
	// Better path: best moves.
	pB, tr := tbl.AddWithBest(kB, 2, attrs(9))
	if tr.Old != pA || tr.New != pB {
		t.Fatalf("better add transition: %+v", tr)
	}
	// Replacing the best with a worse path: best falls back to A.
	_, tr = tbl.AddWithBest(kB, 2, attrs(9, 8, 7, 6))
	if tr.Old != pB || tr.New.Key != kA {
		t.Fatalf("demote transition: %+v", tr)
	}
	// Re-announce of the best with equal merit still reports a change
	// (new Seq, new object) — the export path uses this to re-export
	// refreshed attributes.
	pA2, tr := tbl.AddWithBest(kA, 1, attrs(1, 2, 3))
	if !tr.Changed() || tr.New != pA2 {
		t.Fatalf("refresh transition: %+v", tr)
	}
}

func TestRemoveWithBestTransitions(t *testing.T) {
	tbl := New()
	prefix := pfx("100.10.10.0/24")
	kA := PathKey{Prefix: prefix, Peer: "a"}
	kB := PathKey{Prefix: prefix, Peer: "b"}
	pA, _ := tbl.AddWithBest(kA, 1, attrs(1))
	pB, _ := tbl.AddWithBest(kB, 2, attrs(2, 3))

	// Removing the non-best path: no transition.
	ok, tr := tbl.RemoveWithBest(kB)
	if !ok || tr.Changed() || tr.New != pA {
		t.Fatalf("non-best remove: ok=%v tr=%+v", ok, tr)
	}
	tbl.AddWithBest(kB, 2, attrs(2, 3))
	// Removing the best: next best promoted.
	ok, tr = tbl.RemoveWithBest(kA)
	if !ok || tr.Old != pA || tr.New == nil || tr.New.Key != kB {
		t.Fatalf("best remove: ok=%v tr=%+v", ok, tr)
	}
	_ = pB
	// Removing the last path: best vanishes.
	ok, tr = tbl.RemoveWithBest(tr.New.Key)
	if !ok || tr.New != nil {
		t.Fatalf("last remove: ok=%v tr=%+v", ok, tr)
	}
	// Removing from an empty prefix.
	ok, tr = tbl.RemoveWithBest(kA)
	if ok || tr.Changed() {
		t.Fatalf("empty remove: ok=%v tr=%+v", ok, tr)
	}
}

func TestRemovePeerWithBest(t *testing.T) {
	tbl := New()
	p1, p2 := pfx("1.0.0.0/8"), pfx("2.0.0.0/8")
	tbl.Add(PathKey{Prefix: p1, Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: p2, Peer: "a"}, 1, attrs(1))
	tbl.Add(PathKey{Prefix: p2, Peer: "b"}, 2, attrs(2, 3))
	removed, changes := tbl.RemovePeerWithBest("a")
	if len(removed) != 2 || len(changes) != 2 {
		t.Fatalf("removed=%d changes=%d", len(removed), len(changes))
	}
	// Sorted by prefix: 1/8 vanishes, 2/8 falls back to b.
	if changes[0].Prefix != p1 || changes[0].New != nil {
		t.Fatalf("changes[0]: %+v", changes[0])
	}
	if changes[1].Prefix != p2 || changes[1].New == nil || changes[1].New.Key.Peer != "b" {
		t.Fatalf("changes[1]: %+v", changes[1])
	}
}

// TestConcurrentStress hammers every table operation from parallel
// goroutines across many prefixes (and therefore shards); run with
// -race, it is the sharding's data-race canary. It then verifies the
// surviving table agrees with a sequential replay.
func TestConcurrentStress(t *testing.T) {
	tbl := New()
	const workers = 8
	const opsPerWorker = 2000
	prefixes := make([]netip.Prefix, 64)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 24)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := string(rune('a' + w%4))
			for i := 0; i < opsPerWorker; i++ {
				p := prefixes[(i*7+w)%len(prefixes)]
				key := PathKey{Prefix: p, Peer: peer, PathID: uint32(w%4 + 1)}
				switch i % 5 {
				case 0, 1:
					tbl.AddWithBest(key, uint32(64512+w), attrs(uint32(64512+w)))
				case 2:
					tbl.RemoveWithBest(key)
				case 3:
					tbl.Best(p)
					tbl.Lookup(p)
				case 4:
					if i%50 == 0 {
						tbl.Snapshot()
						tbl.Len()
					}
					tbl.FindByPathID(p, uint32(w%4+1))
				}
			}
		}(w)
	}
	wg.Wait()

	// Post-condition: every prefix's cached best equals a fresh linear
	// recomputation over its surviving paths.
	for _, p := range prefixes {
		paths := tbl.Lookup(p)
		best := tbl.Best(p)
		if len(paths) == 0 {
			if best != nil {
				t.Fatalf("%s: stale best %v", p, best.Key)
			}
			continue
		}
		if best == nil || best.Key != paths[0].Key {
			t.Fatalf("%s: cached best %v != recomputed %v", p, best, paths[0].Key)
		}
	}
}

// TestConcurrentRemovePeer interleaves peer teardowns with adds: the
// cross-shard sweep must stay consistent with per-shard mutations.
func TestConcurrentRemovePeer(t *testing.T) {
	tbl := New()
	prefixes := make([]netip.Prefix, 32)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 24)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				for _, p := range prefixes {
					tbl.Add(PathKey{Prefix: p, Peer: peer}, uint32(w), attrs(uint32(w+1)))
				}
				tbl.RemovePeerWithBest(peer)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range prefixes {
		paths := tbl.Lookup(p)
		best := tbl.Best(p)
		if len(paths) == 0 && best != nil {
			t.Fatalf("%s: stale best after RemovePeer", p)
		}
		if len(paths) > 0 && (best == nil || best.Key != paths[0].Key) {
			t.Fatalf("%s: best cache inconsistent", p)
		}
	}
}
