package irr

import (
	"fmt"
	"net/netip"
	"sync"
)

// Registry is an IRR database mapping origin ASes to the prefixes they
// registered (route/route6 objects). Registration covers all more-specific
// prefixes: registering 100.10.10.0/24 authorizes announcing
// 100.10.10.10/32, which is what lets members send /32 blackholing
// announcements for prefixes they own (Section 2.2, footnote 3).
type Registry struct {
	mu     sync.RWMutex
	routes map[uint32][]netip.Prefix
}

// NewRegistry returns an empty IRR database.
func NewRegistry() *Registry {
	return &Registry{routes: make(map[uint32][]netip.Prefix)}
}

// Register records that asn may originate prefix (and any more-specific
// prefix of it).
func (r *Registry) Register(asn uint32, prefix netip.Prefix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[asn] = append(r.routes[asn], prefix.Masked())
}

// Authorized reports whether asn registered prefix or a covering
// less-specific.
func (r *Registry) Authorized(asn uint32, prefix netip.Prefix) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, reg := range r.routes[asn] {
		if reg.Bits() <= prefix.Bits() && reg.Contains(prefix.Addr()) {
			return true
		}
	}
	return false
}

// Prefixes returns the prefixes registered for asn (a copy).
func (r *Registry) Prefixes(asn uint32) []netip.Prefix {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]netip.Prefix(nil), r.routes[asn]...)
}

// ROA is an RPKI Route Origin Authorization: asn may originate prefix up
// to MaxLength specificity.
type ROA struct {
	Prefix    netip.Prefix
	ASN       uint32
	MaxLength int
}

// Validity is the RPKI origin-validation outcome (RFC 6811).
type Validity int

// Validation states.
const (
	// NotFound: no ROA covers the prefix.
	NotFound Validity = iota
	// Valid: a covering ROA authorizes the origin at this length.
	Valid
	// Invalid: a covering ROA exists but the origin or length mismatches.
	Invalid
)

func (v Validity) String() string {
	switch v {
	case NotFound:
		return "not-found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("Validity(%d)", int(v))
	}
}

// RPKI is a set of ROAs with RFC 6811 origin validation.
type RPKI struct {
	mu   sync.RWMutex
	roas []ROA
}

// NewRPKI returns an empty ROA set.
func NewRPKI() *RPKI { return &RPKI{} }

// AddROA installs a ROA. A MaxLength of 0 defaults to the prefix length
// (exact-length authorization).
func (r *RPKI) AddROA(roa ROA) {
	if roa.MaxLength == 0 {
		roa.MaxLength = roa.Prefix.Bits()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roas = append(r.roas, roa)
}

// Validate returns the RFC 6811 validity of (prefix, originAS).
func (r *RPKI) Validate(prefix netip.Prefix, originAS uint32) Validity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	covered := false
	for _, roa := range r.roas {
		if roa.Prefix.Bits() <= prefix.Bits() && roa.Prefix.Contains(prefix.Addr()) {
			covered = true
			if roa.ASN == originAS && prefix.Bits() <= roa.MaxLength {
				return Valid
			}
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// Bogons is a list of prefixes that must never appear in the DFZ
// (RFC 1918, documentation ranges, etc.). An announcement inside a bogon
// range is rejected.
type Bogons struct {
	mu       sync.RWMutex
	prefixes []netip.Prefix
}

// DefaultBogons returns the standard IPv4/IPv6 bogon list. The
// documentation ranges used by tests and examples (192.0.2.0/24 etc.)
// are deliberately NOT included so simulations can use them as public
// space; production deployments would add them.
func DefaultBogons() *Bogons {
	b := &Bogons{}
	for _, s := range []string{
		"0.0.0.0/8", "10.0.0.0/8", "127.0.0.0/8", "169.254.0.0/16",
		"172.16.0.0/12", "192.168.0.0/16", "224.0.0.0/4", "240.0.0.0/4",
		"::/128", "::1/128", "fc00::/7", "fe80::/10", "ff00::/8",
	} {
		b.prefixes = append(b.prefixes, netip.MustParsePrefix(s))
	}
	return b
}

// Add appends a bogon prefix.
func (b *Bogons) Add(p netip.Prefix) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prefixes = append(b.prefixes, p.Masked())
}

// Contains reports whether p falls inside any bogon range.
func (b *Bogons) Contains(p netip.Prefix) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, bogon := range b.prefixes {
		if bogon.Bits() <= p.Bits() && bogon.Contains(p.Addr()) {
			return true
		}
	}
	return false
}

// Policy bundles the three hygiene databases into the single import check
// the route server applies (Figure 6: "IXP Policy / Route Filtering").
type Policy struct {
	IRR    *Registry
	RPKI   *RPKI
	Bogons *Bogons
}

// NewPolicy returns a policy with empty IRR/RPKI and default bogons.
func NewPolicy() *Policy {
	return &Policy{IRR: NewRegistry(), RPKI: NewRPKI(), Bogons: DefaultBogons()}
}

// Verdict describes an import-policy decision.
type Verdict struct {
	Accept bool
	Reason string
}

// Check evaluates an announcement of prefix with the given origin AS.
// The rules mirror Section 4.3: reject bogons, reject IRR-unauthorized
// prefixes, reject RPKI-invalid announcements (not-found passes).
func (p *Policy) Check(prefix netip.Prefix, originAS uint32) Verdict {
	if p.Bogons != nil && p.Bogons.Contains(prefix) {
		return Verdict{Accept: false, Reason: "bogon prefix"}
	}
	if p.IRR != nil && !p.IRR.Authorized(originAS, prefix) {
		return Verdict{Accept: false, Reason: fmt.Sprintf("prefix not registered in IRR for AS%d", originAS)}
	}
	if p.RPKI != nil && p.RPKI.Validate(prefix, originAS) == Invalid {
		return Verdict{Accept: false, Reason: "RPKI invalid"}
	}
	return Verdict{Accept: true, Reason: "ok"}
}
