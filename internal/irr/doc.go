// Package irr implements the routing-hygiene databases an IXP route
// server consults on import (Section 4.3, Figure 6): an Internet Routing
// Registry (IRR) of registered (origin AS, prefix) pairs, an RPKI
// validator over Route Origin Authorizations (ROAs), and a bogon prefix
// list. The route server's import policy rejects announcements that
// conflict with any of them.
package irr
