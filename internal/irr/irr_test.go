package irr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestRegistryAuthorization(t *testing.T) {
	r := NewRegistry()
	r.Register(64512, pfx("100.10.10.0/24"))

	cases := []struct {
		asn  uint32
		p    string
		want bool
	}{
		{64512, "100.10.10.0/24", true},
		{64512, "100.10.10.10/32", true}, // more specific: authorized
		{64512, "100.10.0.0/16", false},  // less specific: not
		{64512, "203.0.113.0/24", false},
		{64513, "100.10.10.0/24", false}, // wrong AS
	}
	for _, c := range cases {
		if got := r.Authorized(c.asn, pfx(c.p)); got != c.want {
			t.Errorf("Authorized(%d, %s) = %v, want %v", c.asn, c.p, got, c.want)
		}
	}
}

func TestRegistryPrefixesCopy(t *testing.T) {
	r := NewRegistry()
	r.Register(1, pfx("10.0.0.0/8"))
	ps := r.Prefixes(1)
	if len(ps) != 1 {
		t.Fatalf("Prefixes: %v", ps)
	}
	ps[0] = pfx("0.0.0.0/0")
	if !r.Authorized(1, pfx("10.1.0.0/16")) {
		t.Fatal("mutating returned slice affected registry")
	}
	if got := r.Prefixes(99); len(got) != 0 {
		t.Fatalf("unknown ASN prefixes: %v", got)
	}
}

func TestRPKIValidation(t *testing.T) {
	r := NewRPKI()
	r.AddROA(ROA{Prefix: pfx("100.10.0.0/16"), ASN: 64512, MaxLength: 24})

	cases := []struct {
		p    string
		asn  uint32
		want Validity
	}{
		{"100.10.10.0/24", 64512, Valid},
		{"100.10.0.0/16", 64512, Valid},
		{"100.10.10.10/32", 64512, Invalid}, // beyond max length
		{"100.10.10.0/24", 64513, Invalid},  // wrong origin
		{"203.0.113.0/24", 64512, NotFound},
	}
	for _, c := range cases {
		if got := r.Validate(pfx(c.p), c.asn); got != c.want {
			t.Errorf("Validate(%s, %d) = %v, want %v", c.p, c.asn, got, c.want)
		}
	}
}

func TestRPKIMaxLengthDefault(t *testing.T) {
	r := NewRPKI()
	r.AddROA(ROA{Prefix: pfx("198.51.100.0/24"), ASN: 1})
	if got := r.Validate(pfx("198.51.100.0/24"), 1); got != Valid {
		t.Fatalf("exact length: %v", got)
	}
	if got := r.Validate(pfx("198.51.100.128/25"), 1); got != Invalid {
		t.Fatalf("more specific without maxlen: %v", got)
	}
}

func TestRPKITwoROAs(t *testing.T) {
	// A Valid from any ROA wins even if another covering ROA mismatches.
	r := NewRPKI()
	r.AddROA(ROA{Prefix: pfx("100.0.0.0/8"), ASN: 1, MaxLength: 8})
	r.AddROA(ROA{Prefix: pfx("100.10.0.0/16"), ASN: 2, MaxLength: 24})
	if got := r.Validate(pfx("100.10.10.0/24"), 2); got != Valid {
		t.Fatalf("want Valid, got %v", got)
	}
}

func TestBogons(t *testing.T) {
	b := DefaultBogons()
	for _, s := range []string{"10.1.2.0/24", "192.168.1.0/24", "127.0.0.1/32", "fe80::/64"} {
		if !b.Contains(pfx(s)) {
			t.Errorf("%s should be bogon", s)
		}
	}
	for _, s := range []string{"100.10.10.0/24", "8.8.8.0/24", "2001:db8::/48", "192.0.2.0/24"} {
		if b.Contains(pfx(s)) {
			t.Errorf("%s should not be bogon", s)
		}
	}
	b.Add(pfx("203.0.113.0/24"))
	if !b.Contains(pfx("203.0.113.5/32")) {
		t.Fatal("added bogon not matched for more specific")
	}
}

func TestPolicyCheck(t *testing.T) {
	p := NewPolicy()
	p.IRR.Register(64512, pfx("100.10.10.0/24"))
	p.RPKI.AddROA(ROA{Prefix: pfx("100.10.10.0/24"), ASN: 64512, MaxLength: 32})

	if v := p.Check(pfx("100.10.10.10/32"), 64512); !v.Accept {
		t.Fatalf("legit /32 rejected: %s", v.Reason)
	}
	if v := p.Check(pfx("10.0.0.0/8"), 64512); v.Accept {
		t.Fatal("bogon accepted")
	}
	if v := p.Check(pfx("198.51.100.0/24"), 64512); v.Accept {
		t.Fatal("unregistered prefix accepted")
	}
	// Hijack: 64513 announces 64512's prefix. IRR rejects first.
	if v := p.Check(pfx("100.10.10.0/24"), 64513); v.Accept {
		t.Fatal("hijack accepted")
	}
}

func TestPolicyRPKIInvalidRejected(t *testing.T) {
	p := NewPolicy()
	// Registered in IRR but RPKI says a different origin.
	p.IRR.Register(64513, pfx("100.10.10.0/24"))
	p.RPKI.AddROA(ROA{Prefix: pfx("100.10.10.0/24"), ASN: 64512, MaxLength: 24})
	if v := p.Check(pfx("100.10.10.0/24"), 64513); v.Accept {
		t.Fatal("RPKI-invalid accepted")
	}
}

func TestPolicyNotFoundPasses(t *testing.T) {
	p := NewPolicy()
	p.IRR.Register(64512, pfx("100.10.10.0/24"))
	// No ROA at all: not-found must pass (RFC 7115 operational practice).
	if v := p.Check(pfx("100.10.10.0/24"), 64512); !v.Accept {
		t.Fatalf("not-found rejected: %s", v.Reason)
	}
}

func TestAuthorizedMoreSpecificProperty(t *testing.T) {
	// If a /16 is registered, every /24 inside it is authorized and every
	// /24 outside is not.
	r := NewRegistry()
	r.Register(7, pfx("100.10.0.0/16"))
	f := func(b3 uint8, outside bool) bool {
		var p netip.Prefix
		if outside {
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte{101, 10, b3, 0}), 24)
		} else {
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, b3, 0}), 24)
		}
		return r.Authorized(7, p) == !outside
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidityString(t *testing.T) {
	if NotFound.String() != "not-found" || Valid.String() != "valid" || Invalid.String() != "invalid" {
		t.Fatal("validity strings")
	}
}
