package federation

import (
	"sort"
	"sync"

	"stellar/internal/mitctl"
)

// SpecGossip is the inter-IXP signaling plane: a store-and-forward link
// that relays mitctl.Spec requests admitted at one exchange to every
// other exchange after a fixed propagation delay in ticks. It leans on
// two properties the mitigation control plane already guarantees:
// content-derived IDs make a relayed re-request idempotent (a spec the
// target already installed is refreshed, never forked), and each
// exchange's own admission and IRR validation still judges the relayed
// request locally — the link transports intent, not authority.
type SpecGossip struct {
	delay int

	mu      sync.Mutex
	seq     []int // per-origin capture sequence, for deterministic ordering
	pending []*gossipMsg
	signals []*signal
}

// gossipMsg is one in-flight relay.
type gossipMsg struct {
	spec        mitctl.Spec
	origin      int
	originTick  int
	deliverTick int
	seq         int
	sig         *signal
}

// signal tracks one captured spec across the federation for the report.
type signal struct {
	id         string
	origin     int
	originTick int
	seq        int
	// deliveries is appended under the tick barrier (single-threaded
	// rounds) and read after the run — no lock needed.
	deliveries []delivery
}

type delivery struct {
	ex  int
	err error
}

func newSpecGossip(exchanges, delayTicks int) *SpecGossip {
	return &SpecGossip{delay: delayTicks, seq: make([]int, exchanges)}
}

// DelayTicks returns the configured propagation delay.
func (g *SpecGossip) DelayTicks() int { return g.delay }

// PendingCount returns how many relays are still in flight.
func (g *SpecGossip) PendingCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// enqueue captures a spec admitted at origin during tick originTick.
func (g *SpecGossip) enqueue(origin, originTick int, spec mitctl.Spec) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := &signal{id: spec.ID, origin: origin, originTick: originTick, seq: g.seq[origin]}
	g.seq[origin]++
	g.signals = append(g.signals, s)
	g.pending = append(g.pending, &gossipMsg{
		spec:        spec,
		origin:      origin,
		originTick:  originTick,
		deliverTick: originTick + g.delay,
		seq:         s.seq,
		sig:         s,
	})
}

// due pops every relay whose delivery tick has arrived, in
// deterministic (deliverTick, origin, capture-sequence) order. The
// per-origin sequence is deterministic because each exchange's spine is
// single-threaded; ordering across origins by index removes the only
// nondeterminism left (which spine reached the gossip mutex first).
func (g *SpecGossip) due(tick int) []*gossipMsg {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*gossipMsg
	rest := g.pending[:0]
	for _, m := range g.pending {
		if m.deliverTick <= tick {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	g.pending = rest
	sort.Slice(out, func(i, j int) bool {
		if out[i].deliverTick != out[j].deliverTick {
			return out[i].deliverTick < out[j].deliverTick
		}
		if out[i].origin != out[j].origin {
			return out[i].origin < out[j].origin
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// snapshot returns the captured signals in deterministic
// (originTick, origin, sequence) order.
func (g *SpecGossip) snapshot() []*signal {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := append([]*signal(nil), g.signals...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].originTick != out[j].originTick {
			return out[i].originTick < out[j].originTick
		}
		if out[i].origin != out[j].origin {
			return out[i].origin < out[j].origin
		}
		return out[i].seq < out[j].seq
	})
	return out
}
