// Package federation composes several ixp.IXP exchanges into one
// multi-IXP deployment: the operational reality the paper's Section 6
// points at when it argues advanced blackholing only pays off once
// mitigation is coordinated across the exchanges an attack enters
// through.
//
// A Federation instantiates N exchanges — shared victims, per-exchange
// member topology, cross-IXP peers whose announcements appear at
// several exchanges — and drives them on one synchronized tick clock.
// Each exchange keeps its own engine pipeline: traffic generation and
// control on a spine goroutine, monitoring and reporting folded behind
// the engine's bounded free/work mailbox, so the fold side of any
// exchange can later move behind a socket without touching the
// composition. All pipelines draw from one shared fabric.Pool, so
// aggregate parallelism stays bounded by a single worker budget rather
// than N of them.
//
// The inter-IXP signaling plane is a SpecGossip link: mitctl.Spec
// requests admitted at one exchange are relayed to every other exchange
// after a configurable propagation delay in ticks. Content-derived
// mitigation IDs make remote re-requests idempotent, and each exchange
// still applies its own admission and IRR validation to relayed
// requests. Run returns a consolidated Report: per-exchange and
// aggregate offered/delivered/nulled series plus, for every gossiped
// spec, where and how fast it was installed.
package federation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/mitctl"
)

// Exchange is one member exchange of a federation: a fully wired IXP,
// the traffic driver that loads it, and any timed control-plane events
// local to it.
type Exchange struct {
	// Name identifies the exchange in gossip provenance and the
	// consolidated report. Empty falls back to the IXP's configured
	// name, then to "ixp<index>".
	Name string
	// IXP is the exchange itself. It must have the mitigation control
	// plane enabled (ixp.Config.EnableStellar) — the gossip link
	// subscribes to its controller.
	IXP *ixp.IXP
	// Driver generates the exchange's per-victim traffic.
	Driver engine.Driver
	// Events are timed control-plane actions on this exchange's spine.
	Events []engine.Event
}

// Config assembles a Federation.
type Config struct {
	Exchanges []Exchange
	// Ticks and Dt define the shared clock (Dt defaults to 1s).
	Ticks int
	Dt    float64
	// GossipDelayTicks is the inter-IXP propagation delay: a spec
	// admitted at tick T is re-requested at every other exchange at
	// tick T+delay. 0 relays within the same tick.
	GossipDelayTicks int
	// Workers sizes the shared fabric pool all exchange pipelines draw
	// from (0: GOMAXPROCS).
	Workers int
	// Depth is each engine's spine/fold mailbox depth (0: engine
	// default).
	Depth int
	// PeerMinBps is the run-wide active-peer threshold (0: engine
	// default).
	PeerMinBps float64
}

// installKey identifies one (mitigation, exchange) install.
type installKey struct {
	id string
	ex int
}

// Federation is a set of exchanges wired to one clock and one gossip
// link. Build one with New, run it once with Run.
type Federation struct {
	cfg     Config
	names   []string
	gossip  *SpecGossip
	barrier *tickBarrier

	mu          sync.Mutex
	lastControl []int              // per exchange: latest control tick entered
	suppress    []int              // per exchange: >0 while a gossip delivery is being applied
	installs    map[installKey]int // first install tick per (id, exchange)

	ran atomic.Bool
}

// New validates the composition and wires the federation. The
// exchanges' controllers are not subscribed until Run.
func New(cfg Config) (*Federation, error) {
	if len(cfg.Exchanges) == 0 {
		return nil, fmt.Errorf("federation: no exchanges")
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("federation: ticks must be positive")
	}
	if cfg.Dt == 0 {
		cfg.Dt = 1
	}
	if cfg.GossipDelayTicks < 0 {
		return nil, fmt.Errorf("federation: negative gossip delay")
	}
	names := make([]string, len(cfg.Exchanges))
	seen := make(map[string]bool, len(cfg.Exchanges))
	for i, ex := range cfg.Exchanges {
		if ex.IXP == nil {
			return nil, fmt.Errorf("federation: exchange %d has no IXP", i)
		}
		if ex.IXP.Mitigations == nil {
			return nil, fmt.Errorf("federation: exchange %d has no mitigation controller (EnableStellar)", i)
		}
		if ex.Driver == nil {
			return nil, fmt.Errorf("federation: exchange %d has no driver", i)
		}
		name := ex.Name
		if name == "" {
			name = ex.IXP.Name()
		}
		if name == "" {
			name = fmt.Sprintf("ixp%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("federation: duplicate exchange name %q", name)
		}
		seen[name] = true
		names[i] = name
	}
	f := &Federation{
		cfg:         cfg,
		names:       names,
		gossip:      newSpecGossip(len(cfg.Exchanges), cfg.GossipDelayTicks),
		lastControl: make([]int, len(cfg.Exchanges)),
		suppress:    make([]int, len(cfg.Exchanges)),
		installs:    make(map[installKey]int),
	}
	for i := range f.lastControl {
		f.lastControl[i] = -1
	}
	return f, nil
}

// Names returns the exchange names in composition order.
func (f *Federation) Names() []string { return append([]string(nil), f.names...) }

// Run drives every exchange's engine for the configured ticks and
// returns the consolidated report. It is single-use, like the engines
// it builds. On an exchange error the surviving exchanges finish their
// run and the partial report is returned alongside the error.
func (f *Federation) Run() (*Report, error) {
	if !f.ran.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("federation: Run is single-use; build a new Federation")
	}
	pool := fabric.NewPool(f.cfg.Workers)
	defer pool.Close()
	n := len(f.cfg.Exchanges)
	for i := range f.cfg.Exchanges {
		i := i
		f.cfg.Exchanges[i].IXP.Mitigations.Subscribe(func(ev mitctl.Event) { f.onEvent(i, ev) })
	}
	f.barrier = newTickBarrier(n, f.deliverDue)

	series := make([][]engine.VictimSeries, n)
	errs := make([]error, n)
	flows := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer f.barrier.leave()
			ex := f.cfg.Exchanges[i]
			eng := engine.New(engine.Config{
				Driver:       &countingDriver{inner: ex.Driver, flows: &flows[i]},
				Control:      &syncedControl{fed: f, ex: i, inner: ex.IXP},
				DataPlane:    ex.IXP,
				Events:       ex.Events,
				Ticks:        f.cfg.Ticks,
				Dt:           f.cfg.Dt,
				PeerMinBps:   f.cfg.PeerMinBps,
				MemberFilter: ex.IXP.MemberFilter(),
				Depth:        f.cfg.Depth,
				Pool:         pool,
			})
			series[i], errs[i] = eng.Run()
		}(i)
	}
	wg.Wait()

	var err error
	for i, e := range errs {
		if e != nil {
			err = fmt.Errorf("federation: exchange %s: %w", f.names[i], e)
			break
		}
	}
	return f.buildReport(series, flows), err
}

// noteControl records that exchange ex entered ControlTick(tick) — the
// anchor the gossip link derives origin and install ticks from.
func (f *Federation) noteControl(ex, tick int) {
	f.mu.Lock()
	f.lastControl[ex] = tick
	f.mu.Unlock()
}

// onEvent is the per-exchange controller subscription. Admissions and
// refreshes of locally signaled specs enter the gossip link; installs
// are stamped with the exchange's current control tick so the report
// can measure propagation.
func (f *Federation) onEvent(ex int, ev mitctl.Event) {
	switch ev.Type {
	case mitctl.EventValidated, mitctl.EventRefreshed:
		if ev.Mitigation.Origin != "" {
			// Relayed from another exchange — never re-gossiped, or two
			// exchanges would refresh each other's TTL forever.
			return
		}
		f.mu.Lock()
		suppressed := f.suppress[ex] > 0
		originTick := f.lastControl[ex] + 1
		f.mu.Unlock()
		if suppressed {
			// A relayed request refreshing a spec this exchange also
			// signaled locally: the stored spec has no Origin, but the
			// trigger was remote, so it must not re-enter the link.
			return
		}
		f.gossip.enqueue(ex, originTick, ev.Mitigation.Spec)
	case mitctl.EventInstalled:
		f.mu.Lock()
		k := installKey{ev.Mitigation.ID, ex}
		if _, ok := f.installs[k]; !ok {
			f.installs[k] = f.lastControl[ex]
		}
		f.mu.Unlock()
	}
}

// deliverDue runs under the tick barrier when every exchange has
// arrived at round tick: it re-requests each due gossiped spec at every
// exchange other than its origin. Each target applies its own
// admission and IRR validation; rejections are recorded per exchange in
// the signal's report entry.
func (f *Federation) deliverDue(tick int) {
	for _, g := range f.gossip.due(tick) {
		for j := range f.cfg.Exchanges {
			if j == g.origin {
				continue
			}
			spec := g.spec
			spec.Origin = f.names[g.origin]
			f.mu.Lock()
			f.suppress[j]++
			f.mu.Unlock()
			_, err := f.cfg.Exchanges[j].IXP.RequestMitigation(spec)
			f.mu.Lock()
			f.suppress[j]--
			f.mu.Unlock()
			g.sig.deliveries = append(g.sig.deliveries, delivery{ex: j, err: err})
		}
	}
}

// syncedControl wraps an exchange's control plane with the federation
// barrier: no exchange advances its clock past tick T until every
// exchange has finished T's events, which is also when due gossip is
// injected.
type syncedControl struct {
	fed   *Federation
	ex    int
	inner engine.Control
}

func (c *syncedControl) ControlTick(tick int, dt float64) float64 {
	c.fed.noteControl(c.ex, tick)
	c.fed.barrier.await(tick)
	return c.inner.ControlTick(tick, dt)
}

// countingDriver wraps an exchange's driver to count offered flows —
// the federation-wide workload metric the bench reports. It forwards
// the optional Eventful/SerialGenerator facets so wrapping never
// changes engine behaviour.
type countingDriver struct {
	inner engine.Driver
	flows *int64
}

func (d *countingDriver) Victims() []engine.VictimSpec { return d.inner.Victims() }

func (d *countingDriver) AppendOffers(v int, dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	base := len(dst)
	out := d.inner.AppendOffers(v, dst, tick, dt)
	atomic.AddInt64(d.flows, int64(len(out)-base))
	return out
}

func (d *countingDriver) Events() []engine.Event {
	if ev, ok := d.inner.(engine.Eventful); ok {
		return ev.Events()
	}
	return nil
}

func (d *countingDriver) SerialGen() bool {
	if sg, ok := d.inner.(engine.SerialGenerator); ok {
		return sg.SerialGen()
	}
	return false
}
