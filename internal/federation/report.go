package federation

import (
	"fmt"
	"strings"

	"stellar/internal/engine"
)

// Report is the consolidated result of a federation run: every
// exchange's per-victim series, the federation-wide aggregate series,
// and one entry per gossiped mitigation spec measuring how the signal
// propagated. It marshals cleanly to JSON (unlike engine.VictimSeries,
// it carries no monitor handles).
type Report struct {
	Exchanges []ExchangeReport  `json:"exchanges"`
	Aggregate []AggregateSample `json:"aggregate"`
	Signals   []SignalReport    `json:"signals,omitempty"`
	// Ticks, Dt and GossipDelayTicks echo the run configuration.
	Ticks            int     `json:"ticks"`
	Dt               float64 `json:"dt_sec"`
	GossipDelayTicks int     `json:"gossip_delay_ticks"`
	// OfferedFlows is the total flow count generated across all
	// exchanges over the whole run.
	OfferedFlows int64 `json:"offered_flows"`
}

// ExchangeReport is one exchange's slice of the run.
type ExchangeReport struct {
	Name         string         `json:"name"`
	Victims      []VictimReport `json:"victims"`
	OfferedFlows int64          `json:"offered_flows"`
}

// VictimReport is one victim port's tick series at one exchange.
type VictimReport struct {
	Port    string          `json:"port"`
	Samples []engine.Sample `json:"samples"`
}

// AggregateSample sums one tick across every exchange and victim.
type AggregateSample struct {
	Tick           int     `json:"tick"`
	Time           float64 `json:"time_sec"`
	OfferedBps     float64 `json:"offered_bps"`
	DeliveredBps   float64 `json:"delivered_bps"`
	NulledBps      float64 `json:"nulled_bps"`
	RuleDroppedBps float64 `json:"rule_dropped_bps"`
	ActivePeers    int     `json:"active_peers"`
}

// SignalReport traces one gossiped mitigation spec: where it
// originated, where it was installed, and how long each install lagged
// the origin tick.
type SignalReport struct {
	ID         string `json:"id"`
	Origin     string `json:"origin"`
	OriginTick int    `json:"origin_tick"`
	// Installs lists every exchange the spec became active at, origin
	// included. PropagationTicks is install tick minus origin tick; it
	// can be negative when a later signal restates a spec an exchange
	// already installed.
	Installs []SignalInstall `json:"installs"`
	// Rejections lists exchanges whose local admission or IRR
	// validation refused the relayed request.
	Rejections []SignalRejection `json:"rejections,omitempty"`
	// MaxPropagationTicks is the slowest install's lag (-1 if the spec
	// was installed nowhere).
	MaxPropagationTicks int `json:"max_propagation_ticks"`
	// Complete reports whether every exchange installed the spec.
	Complete bool `json:"complete"`
}

// SignalInstall is one exchange's install of a gossiped spec.
type SignalInstall struct {
	Exchange         string `json:"exchange"`
	Tick             int    `json:"tick"`
	PropagationTicks int    `json:"propagation_ticks"`
}

// SignalRejection is one exchange's refusal of a relayed spec.
type SignalRejection struct {
	Exchange string `json:"exchange"`
	Error    string `json:"error"`
}

// buildReport consolidates the engines' series, the flow counters, the
// gossip signal log and the install ticks. Called after every engine
// goroutine has finished — no locks needed.
func (f *Federation) buildReport(series [][]engine.VictimSeries, flows []int64) *Report {
	n := len(f.cfg.Exchanges)
	rep := &Report{
		Ticks:            f.cfg.Ticks,
		Dt:               f.cfg.Dt,
		GossipDelayTicks: f.gossip.DelayTicks(),
	}
	maxLen := 0
	for i := 0; i < n; i++ {
		er := ExchangeReport{Name: f.names[i], OfferedFlows: flows[i]}
		for _, vs := range series[i] {
			er.Victims = append(er.Victims, VictimReport{Port: vs.Port, Samples: vs.Samples})
			if len(vs.Samples) > maxLen {
				maxLen = len(vs.Samples)
			}
		}
		rep.OfferedFlows += flows[i]
		rep.Exchanges = append(rep.Exchanges, er)
	}
	for t := 0; t < maxLen; t++ {
		agg := AggregateSample{Tick: t, Time: float64(t) * f.cfg.Dt}
		for i := range rep.Exchanges {
			for _, v := range rep.Exchanges[i].Victims {
				if t >= len(v.Samples) {
					continue
				}
				s := v.Samples[t]
				agg.OfferedBps += s.OfferedBps
				agg.DeliveredBps += s.DeliveredBps
				agg.NulledBps += s.NulledBps
				agg.RuleDroppedBps += s.RuleDroppedBps
				agg.ActivePeers += s.ActivePeers
			}
		}
		rep.Aggregate = append(rep.Aggregate, agg)
	}
	for _, s := range f.gossip.snapshot() {
		sr := SignalReport{
			ID:                  s.id,
			Origin:              f.names[s.origin],
			OriginTick:          s.originTick,
			MaxPropagationTicks: -1,
		}
		record := func(ex int) {
			if tick, ok := f.installs[installKey{s.id, ex}]; ok {
				p := tick - s.originTick
				sr.Installs = append(sr.Installs, SignalInstall{
					Exchange: f.names[ex], Tick: tick, PropagationTicks: p,
				})
				if p > sr.MaxPropagationTicks {
					sr.MaxPropagationTicks = p
				}
			}
		}
		record(s.origin)
		for _, d := range s.deliveries {
			if d.err != nil {
				sr.Rejections = append(sr.Rejections, SignalRejection{
					Exchange: f.names[d.ex], Error: d.err.Error(),
				})
				continue
			}
			record(d.ex)
		}
		sr.Complete = len(sr.Installs) == n
		rep.Signals = append(rep.Signals, sr)
	}
	return rep
}

// MaxPropagationTicks returns the slowest install lag across every
// complete signal (-1 when nothing propagated).
func (r *Report) MaxPropagationTicks() int {
	max := -1
	for _, s := range r.Signals {
		if s.MaxPropagationTicks > max {
			max = s.MaxPropagationTicks
		}
	}
	return max
}

// Format renders the human-readable run summary.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "federation: %d exchanges, %d ticks (dt %gs), gossip delay %d ticks, %d offered flows\n",
		len(r.Exchanges), r.Ticks, r.Dt, r.GossipDelayTicks, r.OfferedFlows)
	var peakOffered, peakNulled float64
	for _, a := range r.Aggregate {
		if a.OfferedBps > peakOffered {
			peakOffered = a.OfferedBps
		}
		if a.NulledBps+a.RuleDroppedBps > peakNulled {
			peakNulled = a.NulledBps + a.RuleDroppedBps
		}
	}
	fmt.Fprintf(&b, "  aggregate peak offered %.3g bps, peak nulled+dropped %.3g bps\n", peakOffered, peakNulled)
	for _, ex := range r.Exchanges {
		fmt.Fprintf(&b, "  %s: %d victims, %d offered flows\n", ex.Name, len(ex.Victims), ex.OfferedFlows)
	}
	for _, s := range r.Signals {
		status := fmt.Sprintf("installed at %d/%d exchanges", len(s.Installs), len(r.Exchanges))
		if s.Complete {
			status += fmt.Sprintf(", max propagation %d ticks", s.MaxPropagationTicks)
		}
		for _, rej := range s.Rejections {
			status += fmt.Sprintf(", rejected at %s (%s)", rej.Exchange, rej.Error)
		}
		fmt.Fprintf(&b, "  signal %s: origin %s tick %d, %s\n", s.ID, s.Origin, s.OriginTick, status)
	}
	return b.String()
}
