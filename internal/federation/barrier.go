package federation

import "sync"

// tickBarrier synchronizes the member exchanges' spine pipelines on one
// logical clock: every exchange must arrive at round T before any
// exchange's control plane advances past T. The last arriver of a round
// runs the federation's round callback (gossip delivery) while every
// other spine is parked, which gives the inter-IXP signaling plane a
// deterministic, race-free point "between ticks" to inject relayed
// requests.
type tickBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	round   int
	onRound func(tick int)
}

func newTickBarrier(parties int, onRound func(tick int)) *tickBarrier {
	b := &tickBarrier{parties: parties, onRound: onRound}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every live party has arrived at round tick, then
// releases them together. The engines drive strictly increasing ticks,
// so a party can only ever be waiting for the current round to open
// (tick > round) or for the current round to complete.
func (b *tickBarrier) await(tick int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for tick > b.round {
		b.cond.Wait()
	}
	b.arrived++
	if b.arrived == b.parties {
		b.completeRoundLocked()
		return
	}
	for tick == b.round {
		b.cond.Wait()
	}
}

// leave permanently removes a party — an exchange whose engine exited,
// normally or on error. If it was the last straggler of the current
// round, the round completes so the surviving exchanges don't deadlock.
func (b *tickBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.arrived == b.parties {
		b.completeRoundLocked()
	}
}

func (b *tickBarrier) completeRoundLocked() {
	if b.onRound != nil {
		b.onRound(b.round)
	}
	b.arrived = 0
	b.round++
	b.cond.Broadcast()
}
