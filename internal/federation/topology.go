package federation

import (
	"fmt"
	"net/netip"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// TopologyConfig describes the synthetic multi-IXP deployment
// BuildSynthetic fabricates: a set of victims present at every
// exchange, a pool of cross-IXP peers whose announcements appear at
// every exchange, and per-exchange local peers. Zero values select the
// documented defaults.
type TopologyConfig struct {
	// Exchanges is the number of IXPs (default 2).
	Exchanges int
	// Victims is the number of shared victim members, each present —
	// and attacked — at every exchange (default 2).
	Victims int
	// SharedPeers is the number of cross-IXP peer members that join and
	// announce at every exchange (default 8).
	SharedPeers int
	// LocalPeers is the number of peers private to each exchange
	// (default 24).
	LocalPeers int
	// HonoringFraction is the fraction of members honoring RTBH
	// (default 0.3, the paper's observation).
	HonoringFraction float64
	// PortCapacityBps is the peer port capacity (default 10 Gbps);
	// VictimPortBps is the victims' (default 1 Gbps — the paper's
	// monitored member port).
	PortCapacityBps float64
	VictimPortBps   float64
	// Seed drives every deterministic choice (default 7).
	Seed uint64
	// Ticks and Dt define the shared clock (defaults 120 ticks of 1s).
	Ticks int
	Dt    float64
	// AttackRateBps is the NTP attack load per victim per exchange
	// (default 1 Gbps); WebRateBps the benign baseline (default 200
	// Mbps).
	AttackRateBps float64
	WebRateBps    float64
	// AttackStartTick is when the attack ramps up (default 10).
	AttackStartTick int
	// MitigateTick is when each victim requests a drop of the attack
	// vector at exchange 0 — the signal the gossip link then carries to
	// every other exchange. Negative disables mitigation; 0 selects the
	// default (30).
	MitigateTick int
	// MitigationTTL is the requested lifetime in seconds (0: no
	// expiry).
	MitigationTTL float64
	// GossipDelayTicks is the propagation delay (0 selects the default
	// of 1 tick).
	GossipDelayTicks int
	// Workers and Depth tune the shared pool and the per-exchange
	// mailboxes (0: defaults).
	Workers int
	Depth   int
	// QueueRate and QueueBurst configure each exchange's change queue
	// (0: the ixp defaults).
	QueueRate  float64
	QueueBurst int
}

func (tc TopologyConfig) withDefaults() TopologyConfig {
	if tc.Exchanges <= 0 {
		tc.Exchanges = 2
	}
	if tc.Victims <= 0 {
		tc.Victims = 2
	}
	if tc.SharedPeers == 0 {
		tc.SharedPeers = 8
	}
	if tc.LocalPeers == 0 {
		tc.LocalPeers = 24
	}
	if tc.HonoringFraction == 0 {
		tc.HonoringFraction = 0.3
	}
	if tc.PortCapacityBps == 0 {
		tc.PortCapacityBps = 1e10
	}
	if tc.VictimPortBps == 0 {
		tc.VictimPortBps = 1e9
	}
	if tc.Seed == 0 {
		tc.Seed = 7
	}
	if tc.Ticks == 0 {
		tc.Ticks = 120
	}
	if tc.Dt == 0 {
		tc.Dt = 1
	}
	if tc.AttackRateBps == 0 {
		tc.AttackRateBps = 1e9
	}
	if tc.WebRateBps == 0 {
		tc.WebRateBps = 2e8
	}
	if tc.AttackStartTick == 0 {
		tc.AttackStartTick = 10
	}
	if tc.MitigateTick == 0 {
		tc.MitigateTick = 30
	}
	if tc.GossipDelayTicks == 0 {
		tc.GossipDelayTicks = 1
	}
	return tc
}

// blackholeNextHop is the RTBH next hop every synthetic exchange uses
// (the paper's IXP announces 80.81.193.66).
var blackholeNextHop = netip.MustParseAddr("80.81.193.66")

// BuildSynthetic fabricates a ready-to-run federation from one global
// member population: victims and cross-IXP peers are the same member
// objects at every exchange (globally unique identities, so each
// exchange's IRR accepts their announcements), local peers are sliced
// per exchange. Each exchange carries an NTP attack plus a web baseline
// against every victim, and — unless disabled — exchange 0 requests a
// drop of the attack vector for every victim at MitigateTick, which the
// gossip link then propagates federation-wide.
func BuildSynthetic(tc TopologyConfig) (*Federation, error) {
	tc = tc.withDefaults()
	pop := makePopulation(tc)
	exchanges := make([]Exchange, tc.Exchanges)
	for e := range exchanges {
		ex, err := buildExchange(tc, e, pop)
		if err != nil {
			return nil, err
		}
		exchanges[e] = ex
	}
	return New(Config{
		Exchanges:        exchanges,
		Ticks:            tc.Ticks,
		Dt:               tc.Dt,
		GossipDelayTicks: tc.GossipDelayTicks,
		Workers:          tc.Workers,
		Depth:            tc.Depth,
	})
}

// makePopulation fabricates the global member population: victims
// first, then the cross-IXP peers, then every exchange's local peers.
func makePopulation(tc TopologyConfig) []*member.Member {
	pop := member.MakePopulation(member.PopulationConfig{
		N:                tc.Victims + tc.SharedPeers + tc.Exchanges*tc.LocalPeers,
		HonoringFraction: tc.HonoringFraction,
		PortCapacityBps:  tc.PortCapacityBps,
		Seed:             tc.Seed,
	})
	for v := 0; v < tc.Victims; v++ {
		pop[v].PortCapacityBps = tc.VictimPortBps
	}
	return pop
}

// buildExchange wires exchange e of the synthetic topology. Factored
// out of BuildSynthetic so the single-exchange parity test can build
// the identical exchange for a bare engine run.
func buildExchange(tc TopologyConfig, e int, pop []*member.Member) (Exchange, error) {
	victims := pop[:tc.Victims]
	shared := pop[tc.Victims : tc.Victims+tc.SharedPeers]
	lo := tc.Victims + tc.SharedPeers + e*tc.LocalPeers
	locals := pop[lo : lo+tc.LocalPeers]

	members := make([]*member.Member, 0, tc.Victims+tc.SharedPeers+tc.LocalPeers)
	members = append(members, victims...)
	members = append(members, shared...)
	members = append(members, locals...)

	x, err := ixp.Build(ixp.Config{
		Name:             fmt.Sprintf("ixp%d", e),
		ASN:              uint32(64496 + e),
		BlackholeNextHop: blackholeNextHop,
		Members:          members,
		EnableStellar:    true,
		QueueRate:        tc.QueueRate,
		QueueBurst:       tc.QueueBurst,
	})
	if err != nil {
		return Exchange{}, fmt.Errorf("federation: build exchange %d: %w", e, err)
	}
	// Cross-IXP announcements: victims and shared peers announce their
	// prefix at every exchange they are present at.
	for _, m := range members[:tc.Victims+tc.SharedPeers] {
		if err := x.Announce(m.Name, m.Prefixes[0], nil, nil); err != nil {
			return Exchange{}, fmt.Errorf("federation: exchange %d announce %s: %w", e, m.Name, err)
		}
	}

	peers := ixp.PeersOf(members[tc.Victims:])
	specs := make([]engine.VictimSpec, tc.Victims)
	srcs := make([][]engine.Source, tc.Victims)
	var events []engine.Event
	for v, vm := range victims {
		rng := stats.NewRand(tc.Seed + uint64(e)*100003 + uint64(v)*101 + 1)
		target := vm.Prefixes[0].Addr().Next()
		attack := traffic.NewAttack(traffic.VectorNTP, target, peers,
			tc.AttackRateBps, tc.AttackStartTick, tc.Ticks, rng)
		web := traffic.NewWebService(target, peers[:(len(peers)+3)/4], tc.WebRateBps, rng)
		specs[v] = engine.VictimSpec{Port: vm.Name}
		srcs[v] = []engine.Source{attack, web}
		if e == 0 && tc.MitigateTick >= 0 {
			spec := dropSpec(vm, target, tc.MitigationTTL)
			events = append(events, engine.Event{
				Tick: tc.MitigateTick,
				Name: "mitigate " + vm.Name,
				Do: func() error {
					_, err := x.RequestMitigation(spec)
					return err
				},
			})
		}
	}
	return Exchange{
		Name:   x.Name(),
		IXP:    x,
		Driver: engine.NewSourcesDriver(specs, srcs),
		Events: events,
	}, nil
}

// dropSpec is the victim's mitigation request: drop the NTP attack
// vector (UDP source port 123) toward its attacked /32.
func dropSpec(vm *member.Member, target netip.Addr, ttl float64) mitctl.Spec {
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = int32(traffic.VectorNTP.SrcPort)
	return mitctl.Spec{
		Requester: vm.Name,
		Target:    netip.PrefixFrom(target, 32),
		Match:     m,
		Action:    fabric.ActionDrop,
		TTL:       ttl,
	}
}
