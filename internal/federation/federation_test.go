package federation

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stellar/internal/engine"
)

// TestSignalPropagation is the acceptance bar of the subsystem: a
// 10-exchange federation with shared victims completes with a single
// consolidated report, and a mitigation spec originating at exchange 0
// is installed at all 10 exchanges within the configured gossip delay.
func TestSignalPropagation(t *testing.T) {
	const (
		exchanges = 10
		victims   = 2
		mitigate  = 12
		delay     = 3
	)
	fed, err := BuildSynthetic(TopologyConfig{
		Exchanges:        exchanges,
		Victims:          victims,
		SharedPeers:      4,
		LocalPeers:       8,
		Ticks:            40,
		MitigateTick:     mitigate,
		GossipDelayTicks: delay,
		Seed:             21,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exchanges) != exchanges {
		t.Fatalf("got %d exchange reports, want %d", len(rep.Exchanges), exchanges)
	}
	if len(rep.Signals) != victims {
		t.Fatalf("got %d signals, want %d (one per victim; more means the link re-gossiped a relay)",
			len(rep.Signals), victims)
	}
	for _, s := range rep.Signals {
		if s.Origin != "ixp0" || s.OriginTick != mitigate {
			t.Fatalf("signal %s: origin %s tick %d, want ixp0 tick %d", s.ID, s.Origin, s.OriginTick, mitigate)
		}
		if !s.Complete || len(s.Installs) != exchanges {
			t.Fatalf("signal %s: installed at %d/%d exchanges (rejections: %v)",
				s.ID, len(s.Installs), exchanges, s.Rejections)
		}
		for _, in := range s.Installs {
			want := delay
			if in.Exchange == s.Origin {
				want = 0
			}
			if in.PropagationTicks != want {
				t.Fatalf("signal %s at %s: propagation %d ticks, want %d",
					s.ID, in.Exchange, in.PropagationTicks, want)
			}
		}
	}
	if got := rep.MaxPropagationTicks(); got != delay {
		t.Fatalf("MaxPropagationTicks = %d, want %d", got, delay)
	}
	// The drop takes effect at every exchange, not just the origin.
	for _, ex := range rep.Exchanges {
		s := ex.Victims[0].Samples[mitigate+delay+2]
		if s.RuleDroppedBps <= 0 {
			t.Fatalf("%s: no rule drops after federated install (sample %+v)", ex.Name, s)
		}
	}
	// Looking-glass provenance: a remote exchange shows the federated
	// install as relayed, the origin as local.
	if g := fed.cfg.Exchanges[9].IXP.RS.GlassMitigations(); !strings.Contains(g, "origin via ixp0") {
		t.Fatalf("exchange 9 looking glass lacks gossip provenance:\n%s", g)
	}
	if g := fed.cfg.Exchanges[0].IXP.RS.GlassMitigations(); !strings.Contains(g, "origin local") {
		t.Fatalf("exchange 0 looking glass lacks local provenance:\n%s", g)
	}
}

// TestDeterminism runs the same seeded federation twice and requires
// byte-identical consolidated reports — the property the chaos CI job
// leans on, and the reason gossip delivery is ordered by
// (deliverTick, origin, sequence) instead of mutex arrival order.
func TestDeterminism(t *testing.T) {
	run := func() []byte {
		fed, err := BuildSynthetic(TopologyConfig{
			Exchanges:        4,
			Victims:          2,
			SharedPeers:      4,
			LocalPeers:       10,
			Ticks:            50,
			GossipDelayTicks: 2,
			Seed:             33,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fed.Run()
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
}

// TestSingleExchangeParity pins a one-exchange federation to a bare
// engine run over the identical exchange: the barrier, the counting
// driver wrapper, the shared pool and the (targetless) gossip link must
// not perturb a single sample byte.
func TestSingleExchangeParity(t *testing.T) {
	tc := TopologyConfig{
		Exchanges:   1,
		Victims:     2,
		SharedPeers: 4,
		LocalPeers:  12,
		Ticks:       60,
		Seed:        9,
	}.withDefaults()

	fed, err := BuildSynthetic(tc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Run()
	if err != nil {
		t.Fatal(err)
	}

	ex, err := buildExchange(tc, 0, makePopulation(tc))
	if err != nil {
		t.Fatal(err)
	}
	series, err := engine.New(engine.Config{
		Driver:       ex.Driver,
		Control:      ex.IXP,
		DataPlane:    ex.IXP,
		Events:       ex.Events,
		Ticks:        tc.Ticks,
		Dt:           tc.Dt,
		MemberFilter: ex.IXP.MemberFilter(),
	}).Run()
	if err != nil {
		t.Fatal(err)
	}

	got := rep.Exchanges[0]
	if len(got.Victims) != len(series) {
		t.Fatalf("federation has %d victims, bare engine %d", len(got.Victims), len(series))
	}
	for i, vs := range series {
		if got.Victims[i].Port != vs.Port {
			t.Fatalf("victim %d: port %q vs %q", i, got.Victims[i].Port, vs.Port)
		}
		a, err := json.Marshal(got.Victims[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(vs.Samples)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("victim %s series diverged:\nfederation: %s\nbare:       %s", vs.Port, a, b)
		}
	}
	// The local mitigation still installed and was reported, with no
	// gossip targets to relay to.
	if len(rep.Signals) != tc.Victims {
		t.Fatalf("got %d signals, want %d", len(rep.Signals), tc.Victims)
	}
	for _, s := range rep.Signals {
		if !s.Complete || len(s.Installs) != 1 || len(s.Rejections) != 0 {
			t.Fatalf("signal %s: %+v", s.ID, s)
		}
	}
}

// TestRunSingleUse pins the engine-style single-use contract.
func TestRunSingleUse(t *testing.T) {
	fed, err := BuildSynthetic(TopologyConfig{
		Exchanges: 2, Victims: 1, SharedPeers: 2, LocalPeers: 4, Ticks: 5, MitigateTick: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Run(); err == nil {
		t.Fatal("second Run succeeded, want single-use error")
	}
}

// TestConfigValidation covers New's rejection paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Ticks: 10}); err == nil {
		t.Fatal("empty federation accepted")
	}
	fed, err := BuildSynthetic(TopologyConfig{
		Exchanges: 1, Victims: 1, SharedPeers: 2, LocalPeers: 4, Ticks: 5, MitigateTick: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := fed.cfg.Exchanges[0]
	if _, err := New(Config{Exchanges: []Exchange{ex}}); err == nil {
		t.Fatal("zero ticks accepted")
	}
	if _, err := New(Config{Exchanges: []Exchange{ex, ex}, Ticks: 5}); err == nil {
		t.Fatal("duplicate exchange names accepted")
	}
	if _, err := New(Config{Exchanges: []Exchange{ex}, Ticks: 5, GossipDelayTicks: -1}); err == nil {
		t.Fatal("negative gossip delay accepted")
	}
	if _, err := New(Config{Exchanges: []Exchange{{Name: "a", IXP: ex.IXP}}, Ticks: 5}); err == nil {
		t.Fatal("driverless exchange accepted")
	}
}
