// Package hw models the IXP edge-router hardware that Stellar's filtering
// layer runs on: TCAM filter budgets and the control-plane CPU cost of
// configuration updates.
//
// The paper's scaling evaluation (Section 5.1) measures two exhaustion
// dimensions on a production edge router with >350 member ports:
//
//   - F1: the total number of L3-L4 filter criteria for QoS policies is
//     exceeded (a system-wide TCAM budget), and
//   - F2: the maximum number of MAC filters is exceeded.
//
// Both are modeled as system-wide budgets expressed in units of N, the
// 95th percentile of concurrently active RTBH rules per port observed in
// production. The budget constants are calibrated so the feasibility
// grids of Figure 9(a-c) reproduce: all-OK at 20% adoption, F1 beyond
// 3N L3-L4 criteria and F2 at 10N MAC filters for 60% adoption, and the
// paper's tighter region at 100% adoption.
//
// The control-plane model captures Figure 10(a): CPU usage grows linearly
// with the rule-update rate, and the router enforces a hard 15% CPU cap
// for configuration tasks, which yields a median sustainable rate of
// ~4.33 updates/second.
//
// The counting side of this model is what the fabric's compiled
// classifier consumes indirectly: core.QoSManager charges each installed
// rule's Match.CriteriaCount against these budgets before the rule ever
// reaches a port.
package hw
