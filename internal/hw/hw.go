package hw

import (
	"errors"
	"fmt"
	"sync"

	"stellar/internal/stats"
)

// Filter-resource exhaustion errors, matching the paper's F1/F2 labels.
var (
	// ErrL34Exhausted (F1): total L3-L4 filter criteria exceeded.
	ErrL34Exhausted = errors.New("hw: F1: L3-L4 filter criteria exhausted")
	// ErrMACExhausted (F2): MAC filter budget exceeded.
	ErrMACExhausted = errors.New("hw: F2: MAC filter budget exhausted")
	// ErrQoSPoliciesExhausted: per-port QoS policy slots exceeded.
	ErrQoSPoliciesExhausted = errors.New("hw: QoS policy slots exhausted on port")
	// ErrUnknownPort is returned for out-of-range port indices.
	ErrUnknownPort = errors.New("hw: unknown port")
)

// Limits describes an edge router's hardware resource budgets — the
// "hardware information base" the network manager consults before
// compiling configuration changes (Section 4.4).
type Limits struct {
	// Ports is the number of member ports on the router.
	Ports int
	// L34CriteriaTotal is the system-wide TCAM budget for L3-L4 filter
	// criteria across all QoS policies.
	L34CriteriaTotal int
	// MACFiltersTotal is the system-wide budget for MAC filter criteria.
	MACFiltersTotal int
	// QoSPoliciesPerPort bounds the number of distinct QoS policies
	// (blackholing rules) attachable to one member port.
	QoSPoliciesPerPort int

	// CPULimitPct is the hard control-plane CPU share available to
	// configuration tasks (the paper's real-time OS enforces 15%).
	CPULimitPct float64
	// CPUBaselinePct is the configuration subsystem's idle CPU usage.
	CPUBaselinePct float64
	// CPUPerUpdatePct is the CPU percentage consumed per (rule update/s).
	CPUPerUpdatePct float64
}

// RTBHUnitN is the reference unit for filter budgets: the 95th percentile
// of concurrently active RTBH rules on any port by any member (the paper's
// N). The simulator uses 8 as a realistic production value; all budget
// math scales linearly in N.
const RTBHUnitN = 8

// DefaultEdgeRouterLimits returns the calibrated production edge-router
// profile with the given number of member ports, expressed in units of n
// (use RTBHUnitN for the paper's N).
func DefaultEdgeRouterLimits(ports, n int) Limits {
	return Limits{
		Ports: ports,
		// Calibration (see package comment): with 350 ports the paper's
		// feasibility grid requires 630N < L34 budget < 700N and
		// 1680N <= MAC budget < 2100N.
		L34CriteriaTotal:   650 * n,
		MACFiltersTotal:    1800 * n,
		QoSPoliciesPerPort: 16 * n,
		CPULimitPct:        15.0,
		CPUBaselinePct:     2.0,
		CPUPerUpdatePct:    3.0, // (15-2)/3 = 4.33 updates/s at the cap
	}
}

// PortAlloc is the per-port filter allocation state.
type PortAlloc struct {
	MACFilters  int
	L34Criteria int
	QoSPolicies int
}

// EdgeRouter tracks TCAM allocations against Limits. All methods are
// safe for concurrent use.
type EdgeRouter struct {
	limits Limits

	mu          sync.Mutex
	ports       []PortAlloc
	totalMAC    int
	totalL34    int
	reservedMAC int
	reservedL34 int
}

// NewEdgeRouter returns a router with no allocations.
func NewEdgeRouter(limits Limits) *EdgeRouter {
	return &EdgeRouter{limits: limits, ports: make([]PortAlloc, limits.Ports)}
}

// Limits returns the router's budgets.
func (r *EdgeRouter) Limits() Limits { return r.limits }

// Allocate reserves TCAM resources for one blackholing rule on port:
// macFilters MAC criteria and l34 L3-L4 criteria, consuming one QoS
// policy slot. It fails atomically — checking F1 before F2, matching the
// paper's reporting precedence — without partial reservation.
func (r *EdgeRouter) Allocate(port, macFilters, l34 int) error {
	if macFilters < 0 || l34 < 0 {
		return fmt.Errorf("hw: negative allocation (%d MAC, %d L3-L4)", macFilters, l34)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if port < 0 || port >= len(r.ports) {
		return ErrUnknownPort
	}
	if r.totalL34+l34 > r.limits.L34CriteriaTotal-r.reservedL34 {
		return ErrL34Exhausted
	}
	if r.totalMAC+macFilters > r.limits.MACFiltersTotal-r.reservedMAC {
		return ErrMACExhausted
	}
	if r.ports[port].QoSPolicies+1 > r.limits.QoSPoliciesPerPort {
		return ErrQoSPoliciesExhausted
	}
	r.ports[port].MACFilters += macFilters
	r.ports[port].L34Criteria += l34
	r.ports[port].QoSPolicies++
	r.totalMAC += macFilters
	r.totalL34 += l34
	return nil
}

// Release returns previously allocated resources for one rule on port.
func (r *EdgeRouter) Release(port, macFilters, l34 int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if port < 0 || port >= len(r.ports) {
		return ErrUnknownPort
	}
	p := &r.ports[port]
	if p.MACFilters < macFilters || p.L34Criteria < l34 || p.QoSPolicies < 1 {
		return fmt.Errorf("hw: release exceeds allocation on port %d", port)
	}
	p.MACFilters -= macFilters
	p.L34Criteria -= l34
	p.QoSPolicies--
	r.totalMAC -= macFilters
	r.totalL34 -= l34
	return nil
}

// Port returns the allocation state of one port.
func (r *EdgeRouter) Port(port int) (PortAlloc, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if port < 0 || port >= len(r.ports) {
		return PortAlloc{}, ErrUnknownPort
	}
	return r.ports[port], nil
}

// Totals returns the system-wide MAC and L3-L4 criteria in use.
func (r *EdgeRouter) Totals() (mac, l34 int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalMAC, r.totalL34
}

// Headroom returns the remaining system-wide budgets, net of any
// reservation set with SetReserved.
func (r *EdgeRouter) Headroom() (mac, l34 int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mac = r.limits.MACFiltersTotal - r.reservedMAC - r.totalMAC
	l34 = r.limits.L34CriteriaTotal - r.reservedL34 - r.totalL34
	return mac, l34
}

// SetReserved withholds mac MAC-filter and l34 L3-L4 criteria from the
// system-wide budgets, shrinking what Allocate and Headroom see. It models
// TCAM pressure from outside the blackholing subsystem (other QoS features,
// a fault injector squeezing the budget); existing allocations are never
// revoked, so totals may transiently exceed the shrunken budget until
// rules are released. Negative values clamp to zero.
func (r *EdgeRouter) SetReserved(mac, l34 int) {
	if mac < 0 {
		mac = 0
	}
	if l34 < 0 {
		l34 = 0
	}
	r.mu.Lock()
	r.reservedMAC, r.reservedL34 = mac, l34
	r.mu.Unlock()
}

// Reserved returns the budget reservation set with SetReserved.
func (r *EdgeRouter) Reserved() (mac, l34 int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reservedMAC, r.reservedL34
}

// Snapshot is a consistent point-in-time view of the router's allocation
// state: per-port allocations plus system-wide totals and headroom, all
// read under one lock acquisition so the degradation ladder and the
// looking glass never see torn state.
type Snapshot struct {
	Ports       []PortAlloc
	TotalMAC    int
	TotalL34    int
	HeadroomMAC int
	HeadroomL34 int
	ReservedMAC int
	ReservedL34 int
	Limits      Limits
}

// Snapshot returns the full allocation state in one call.
func (r *EdgeRouter) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	ports := make([]PortAlloc, len(r.ports))
	copy(ports, r.ports)
	return Snapshot{
		Ports:       ports,
		TotalMAC:    r.totalMAC,
		TotalL34:    r.totalL34,
		HeadroomMAC: r.limits.MACFiltersTotal - r.reservedMAC - r.totalMAC,
		HeadroomL34: r.limits.L34CriteriaTotal - r.reservedL34 - r.totalL34,
		ReservedMAC: r.reservedMAC,
		ReservedL34: r.reservedL34,
		Limits:      r.limits,
	}
}

// CPUModel is the control-plane CPU cost model of Figure 10(a): linear
// in the configuration update rate with multiplicative measurement noise.
type CPUModel struct {
	BaselinePct  float64
	PerUpdatePct float64
	LimitPct     float64
	// NoiseStd is the standard deviation of additive measurement noise
	// in CPU percentage points; zero for a deterministic model.
	NoiseStd float64
}

// NewCPUModel builds the model from router limits with the given noise.
func NewCPUModel(l Limits, noiseStd float64) CPUModel {
	return CPUModel{
		BaselinePct:  l.CPUBaselinePct,
		PerUpdatePct: l.CPUPerUpdatePct,
		LimitPct:     l.CPULimitPct,
		NoiseStd:     noiseStd,
	}
}

// Usage returns the expected CPU percentage at the given update rate
// (updates per second), without noise.
func (m CPUModel) Usage(ratePerSec float64) float64 {
	return m.BaselinePct + m.PerUpdatePct*ratePerSec
}

// Sample returns a noisy CPU measurement at the given rate, clamped to
// [0, 100].
func (m CPUModel) Sample(ratePerSec float64, rng *stats.Rand) float64 {
	u := m.Usage(ratePerSec)
	if m.NoiseStd > 0 && rng != nil {
		u += rng.NormFloat64() * m.NoiseStd
	}
	if u < 0 {
		u = 0
	}
	if u > 100 {
		u = 100
	}
	return u
}

// MaxUpdateRate returns the largest sustainable update rate under the
// CPU cap — the paper's 4.33 updates/s for the production profile.
func (m CPUModel) MaxUpdateRate() float64 {
	if m.PerUpdatePct <= 0 {
		return 0
	}
	r := (m.LimitPct - m.BaselinePct) / m.PerUpdatePct
	if r < 0 {
		return 0
	}
	return r
}
