package hw

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"stellar/internal/stats"
)

func TestAllocateRelease(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 2, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 4})
	if err := r.Allocate(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	mac, l34 := r.Totals()
	if mac != 3 || l34 != 2 {
		t.Fatalf("totals: %d %d", mac, l34)
	}
	p, err := r.Port(0)
	if err != nil || p.MACFilters != 3 || p.L34Criteria != 2 || p.QoSPolicies != 1 {
		t.Fatalf("port: %+v %v", p, err)
	}
	if err := r.Release(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	mac, l34 = r.Totals()
	if mac != 0 || l34 != 0 {
		t.Fatalf("totals after release: %d %d", mac, l34)
	}
}

func TestAllocateF1Precedence(t *testing.T) {
	// When both budgets would be exceeded, F1 (L3-L4) is reported, as in
	// Figure 9's grid rendering.
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 1, MACFiltersTotal: 1, QoSPoliciesPerPort: 10})
	if err := r.Allocate(0, 5, 5); err != ErrL34Exhausted {
		t.Fatalf("err = %v, want F1", err)
	}
}

func TestAllocateF2(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 100, MACFiltersTotal: 2, QoSPoliciesPerPort: 10})
	if err := r.Allocate(0, 3, 1); err != ErrMACExhausted {
		t.Fatalf("err = %v, want F2", err)
	}
}

func TestAllocateQoSSlots(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 100, MACFiltersTotal: 100, QoSPoliciesPerPort: 2})
	if err := r.Allocate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Allocate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Allocate(0, 1, 1); err != ErrQoSPoliciesExhausted {
		t.Fatalf("err = %v, want QoS slots exhausted", err)
	}
}

func TestAllocateAtomicOnFailure(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 10, MACFiltersTotal: 5, QoSPoliciesPerPort: 10})
	_ = r.Allocate(0, 5, 5)
	if err := r.Allocate(0, 1, 1); err != ErrMACExhausted {
		t.Fatalf("err = %v", err)
	}
	mac, l34 := r.Totals()
	if mac != 5 || l34 != 5 {
		t.Fatalf("failed allocation mutated state: %d %d", mac, l34)
	}
}

func TestAllocateErrors(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 10})
	if err := r.Allocate(5, 1, 1); err != ErrUnknownPort {
		t.Fatalf("port: %v", err)
	}
	if err := r.Allocate(0, -1, 0); err == nil {
		t.Fatal("negative allocation accepted")
	}
	if err := r.Release(0, 1, 1); err == nil {
		t.Fatal("over-release accepted")
	}
	if err := r.Release(9, 0, 0); err != ErrUnknownPort {
		t.Fatalf("release port: %v", err)
	}
	if _, err := r.Port(9); err != ErrUnknownPort {
		t.Fatalf("Port: %v", err)
	}
}

func TestHeadroom(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 10, MACFiltersTotal: 20, QoSPoliciesPerPort: 10})
	_ = r.Allocate(0, 4, 3)
	mac, l34 := r.Headroom()
	if mac != 16 || l34 != 7 {
		t.Fatalf("headroom: %d %d", mac, l34)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: sum of per-port allocations always equals totals, and
	// totals never exceed budgets.
	f := func(ops []uint8) bool {
		lim := Limits{Ports: 4, L34CriteriaTotal: 50, MACFiltersTotal: 80, QoSPoliciesPerPort: 10}
		r := NewEdgeRouter(lim)
		type alloc struct{ port, mac, l34 int }
		var live []alloc
		for _, op := range ops {
			port := int(op) % 4
			mac := int(op>>2) % 5
			l34 := int(op>>4) % 4
			if op&0x80 != 0 && len(live) > 0 {
				a := live[len(live)-1]
				live = live[:len(live)-1]
				if r.Release(a.port, a.mac, a.l34) != nil {
					return false
				}
			} else if r.Allocate(port, mac, l34) == nil {
				live = append(live, alloc{port, mac, l34})
			}
		}
		var sumMAC, sumL34 int
		for p := 0; p < 4; p++ {
			pa, _ := r.Port(p)
			sumMAC += pa.MACFilters
			sumL34 += pa.L34Criteria
		}
		mac, l34 := r.Totals()
		return mac == sumMAC && l34 == sumL34 &&
			mac <= lim.MACFiltersTotal && l34 <= lim.L34CriteriaTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLimitsFeasibilityGrid(t *testing.T) {
	// The calibrated budgets must reproduce Figure 9's regions. Using
	// the analytic totals: active ports = adoption * 350, each with
	// m MAC filters and x L3-L4 criteria.
	lim := DefaultEdgeRouterLimits(350, 1) // N = 1 unit for exact grid math
	check := func(adoption float64, macPerPort, l34PerPort int) string {
		active := int(adoption * 350)
		if active*l34PerPort > lim.L34CriteriaTotal {
			return "F1"
		}
		if active*macPerPort > lim.MACFiltersTotal {
			return "F2"
		}
		return "OK"
	}
	// Figure 9(a): 20% adoption, everything OK.
	for _, mac := range []int{0, 2, 4, 6, 8, 10} {
		for _, l34 := range []int{0, 1, 2, 3, 4} {
			if got := check(0.20, mac, l34); got != "OK" {
				t.Errorf("20%% (%dN MAC, %dN L3-L4) = %s, want OK", mac, l34, got)
			}
		}
	}
	// Figure 9(b): 60% — F1 on the 4N column, F2 on the 10N row elsewhere.
	for _, mac := range []int{0, 2, 4, 6, 8, 10} {
		if got := check(0.60, mac, 4); got != "F1" {
			t.Errorf("60%% (%dN, 4N) = %s, want F1", mac, got)
		}
	}
	for _, l34 := range []int{0, 1, 2, 3} {
		if got := check(0.60, 10, l34); got != "F2" {
			t.Errorf("60%% (10N, %dN) = %s, want F2", l34, got)
		}
		if got := check(0.60, 8, l34); got != "OK" {
			t.Errorf("60%% (8N, %dN) = %s, want OK", l34, got)
		}
	}
	// Figure 9(c): 100% — F1 for L3-L4 >= 2N; F2 for MAC >= 6N at low L3-L4.
	for _, l34 := range []int{2, 3, 4} {
		for _, mac := range []int{0, 2, 4, 6, 8, 10} {
			if got := check(1.0, mac, l34); got != "F1" {
				t.Errorf("100%% (%dN, %dN) = %s, want F1", mac, l34, got)
			}
		}
	}
	for _, l34 := range []int{0, 1} {
		for _, mac := range []int{6, 8, 10} {
			if got := check(1.0, mac, l34); got != "F2" {
				t.Errorf("100%% (%dN, %dN) = %s, want F2", mac, l34, got)
			}
		}
		for _, mac := range []int{0, 2, 4} {
			if got := check(1.0, mac, l34); got != "OK" {
				t.Errorf("100%% (%dN, %dN) = %s, want OK", mac, l34, got)
			}
		}
	}
}

func TestCPUModelMaxRate(t *testing.T) {
	m := NewCPUModel(DefaultEdgeRouterLimits(350, RTBHUnitN), 0)
	got := m.MaxUpdateRate()
	if math.Abs(got-4.333) > 0.01 {
		t.Fatalf("MaxUpdateRate = %v, want ~4.33 (paper median)", got)
	}
	if u := m.Usage(got); math.Abs(u-15.0) > 1e-9 {
		t.Fatalf("Usage at max rate = %v, want 15%%", u)
	}
}

func TestCPUModelLinearity(t *testing.T) {
	m := CPUModel{BaselinePct: 2, PerUpdatePct: 3}
	if m.Usage(0) != 2 || m.Usage(1) != 5 || m.Usage(4) != 14 {
		t.Fatalf("usage: %v %v %v", m.Usage(0), m.Usage(1), m.Usage(4))
	}
}

func TestCPUModelSampleClamped(t *testing.T) {
	m := CPUModel{BaselinePct: 99, PerUpdatePct: 10, NoiseStd: 50}
	rng := stats.NewRand(1)
	for i := 0; i < 1000; i++ {
		v := m.Sample(1, rng)
		if v < 0 || v > 100 {
			t.Fatalf("sample out of range: %v", v)
		}
	}
}

func TestCPUModelDegenerate(t *testing.T) {
	if (CPUModel{PerUpdatePct: 0}).MaxUpdateRate() != 0 {
		t.Fatal("zero slope")
	}
	if (CPUModel{BaselinePct: 20, PerUpdatePct: 1, LimitPct: 15}).MaxUpdateRate() != 0 {
		t.Fatal("baseline above limit")
	}
}

func TestCPUModelNoiseRecovery(t *testing.T) {
	// Fitting noisy samples must recover the true slope within tolerance
	// — this is exactly the Figure 10(a) analysis.
	lim := DefaultEdgeRouterLimits(350, RTBHUnitN)
	m := NewCPUModel(lim, 0.5)
	rng := stats.NewRand(42)
	var xs, ys []float64
	for rate := 1; rate <= 5; rate++ {
		for i := 0; i < 50; i++ {
			xs = append(xs, float64(rate))
			ys = append(ys, m.Sample(float64(rate), rng))
		}
	}
	fit, err := statsLinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-lim.CPUPerUpdatePct) > 0.2 {
		t.Fatalf("recovered slope %v, want ~%v", fit.Slope, lim.CPUPerUpdatePct)
	}
}

// statsLinearFit avoids an import cycle false alarm in reviews; it simply
// forwards to the stats package.
func statsLinearFit(xs, ys []float64) (stats.Linear, error) { return stats.LinearFit(xs, ys) }

func BenchmarkAllocateRelease(b *testing.B) {
	r := NewEdgeRouter(DefaultEdgeRouterLimits(350, RTBHUnitN))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		port := i % 350
		if err := r.Allocate(port, 1, 2); err != nil {
			b.Fatal(err)
		}
		if err := r.Release(port, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSnapshotInvariant(t *testing.T) {
	// Invariant: an arbitrary sequence of successful Allocate calls followed
	// by their matching Releases restores the Snapshot exactly.
	r := NewEdgeRouter(Limits{Ports: 4, L34CriteriaTotal: 100, MACFiltersTotal: 100, QoSPoliciesPerPort: 8})
	before := r.Snapshot()

	rng := stats.NewRand(42)
	type alloc struct{ port, mac, l34 int }
	var held []alloc
	for i := 0; i < 200; i++ {
		a := alloc{port: rng.Intn(4), mac: rng.Intn(3), l34: rng.Intn(4)}
		if err := r.Allocate(a.port, a.mac, a.l34); err == nil {
			held = append(held, a)
		}
		// Interleave some releases so the walk isn't monotone.
		if len(held) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(held))
			h := held[j]
			if err := r.Release(h.port, h.mac, h.l34); err != nil {
				t.Fatalf("release %+v: %v", h, err)
			}
			held = append(held[:j], held[j+1:]...)
		}
	}
	mid := r.Snapshot()
	wantMAC, wantL34 := 0, 0
	perPort := make([]PortAlloc, 4)
	for _, h := range held {
		perPort[h.port].MACFilters += h.mac
		perPort[h.port].L34Criteria += h.l34
		perPort[h.port].QoSPolicies++
		wantMAC += h.mac
		wantL34 += h.l34
	}
	if mid.TotalMAC != wantMAC || mid.TotalL34 != wantL34 {
		t.Fatalf("mid totals %d/%d, want %d/%d", mid.TotalMAC, mid.TotalL34, wantMAC, wantL34)
	}
	for p := range perPort {
		if mid.Ports[p] != perPort[p] {
			t.Fatalf("mid port %d = %+v, want %+v", p, mid.Ports[p], perPort[p])
		}
	}
	if mid.HeadroomMAC != 100-wantMAC || mid.HeadroomL34 != 100-wantL34 {
		t.Fatalf("mid headroom %d/%d", mid.HeadroomMAC, mid.HeadroomL34)
	}

	for _, h := range held {
		if err := r.Release(h.port, h.mac, h.l34); err != nil {
			t.Fatalf("release %+v: %v", h, err)
		}
	}
	after := r.Snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot not restored:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 2, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 4})
	s := r.Snapshot()
	s.Ports[0].MACFilters = 99
	if p, _ := r.Port(0); p.MACFilters != 0 {
		t.Fatal("Snapshot shares port slice with router")
	}
}

func TestSetReservedSqueeze(t *testing.T) {
	r := NewEdgeRouter(Limits{Ports: 1, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 8})
	if err := r.Allocate(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	// Squeeze: only 1 L3-L4 criterion left effective.
	r.SetReserved(0, 6)
	if mac, l34 := r.Headroom(); mac != 8 || l34 != 1 {
		t.Fatalf("headroom under squeeze: %d/%d", mac, l34)
	}
	if err := r.Allocate(0, 0, 2); err != ErrL34Exhausted {
		t.Fatalf("want F1 under squeeze, got %v", err)
	}
	if err := r.Allocate(0, 0, 1); err != nil {
		t.Fatalf("within squeezed budget: %v", err)
	}
	// Existing allocations survive the squeeze and release normally.
	r.SetReserved(0, 10)
	if mac, l34 := r.Headroom(); mac != 8 || l34 != -4 {
		t.Fatalf("oversubscribed headroom: %d/%d", mac, l34)
	}
	if err := r.Release(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	r.SetReserved(-5, -5) // clamps to zero
	if mac, l34 := r.Reserved(); mac != 0 || l34 != 0 {
		t.Fatalf("reserved after clamp: %d/%d", mac, l34)
	}
	s := r.Snapshot()
	if s.ReservedL34 != 0 || s.HeadroomL34 != 9 {
		t.Fatalf("snapshot after release: %+v", s)
	}
}
