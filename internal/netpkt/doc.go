// Package netpkt implements the packet model used by the emulated IXP
// switching fabric: a small, allocation-conscious layered decoder and
// serializer for Ethernet, ARP, IPv4, IPv6, UDP and TCP, in the spirit of
// gopacket's DecodingLayerParser but restricted to the protocols the
// Stellar evaluation needs.
//
// The fabric classifies traffic on L2-L4 header fields only (Section 4.5
// of the paper), so packets decode headers eagerly and treat everything
// past the transport header as opaque payload.
//
// FlowKey is the aggregation key shared by the fabric's compiled
// classifier, the traffic generators and the flow monitor; FlowKey.Hash
// is the stable 64-bit digest traffic generators precompute so per-tick
// hot loops never re-hash a flow.
package netpkt
