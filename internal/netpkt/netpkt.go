package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Ethernet payload types used by the simulator.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86DD
)

func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeIPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// IPProto identifies the transport protocol of an IP packet.
type IPProto uint8

// Transport protocols the QoS classifier can match on.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// ParseMAC parses the colon-separated hexadecimal form "aa:bb:cc:dd:ee:ff".
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("netpkt: invalid MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexVal(s[i*3])
		lo, ok2 := hexVal(s[i*3+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("netpkt: invalid MAC %q", s)
		}
		if i < 5 && s[i*3+2] != ':' {
			return m, fmt.Errorf("netpkt: invalid MAC %q", s)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error; intended for constants
// in tests and examples.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func (m MAC) String() string {
	const hexDigit = "0123456789abcdef"
	buf := make([]byte, 0, 17)
	for i, b := range m {
		if i > 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hexDigit[b>>4], hexDigit[b&0xF])
	}
	return string(buf)
}

// IsBroadcast reports whether m is the Ethernet broadcast address.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Decode errors.
var (
	ErrTruncated   = errors.New("netpkt: truncated packet")
	ErrBadVersion  = errors.New("netpkt: bad IP version")
	ErrBadChecksum = errors.New("netpkt: bad IPv4 header checksum")
	ErrBadHeader   = errors.New("netpkt: malformed header")
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

const ethernetHeaderLen = 14

// IPv4 is a decoded IPv4 header. Options are preserved verbatim.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
	// TotalLen is the total length field (header + payload) observed on
	// decode or computed on serialize.
	TotalLen uint16
}

// IPv6 is a decoded IPv6 fixed header. Extension headers are not modeled;
// NextHeader is matched directly as the transport protocol, which matches
// the capability of the TCAM filters the paper uses.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   IPProto
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
	PayloadLen   uint16
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// TCP is a decoded TCP header (options preserved verbatim).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16
	Options []byte
}

// ARP is a (narrow) decoded ARP packet for IPv4 over Ethernet.
type ARP struct {
	Op       uint16 // 1 request, 2 reply
	SenderHW MAC
	SenderIP netip.Addr
	TargetHW MAC
	TargetIP netip.Addr
}

// Packet is a fully decoded L2-L4 packet. Exactly one of IPv4/IPv6/ARP is
// non-nil for valid traffic; for IP packets at most one of UDP/TCP is
// non-nil. Payload covers everything after the last decoded header.
type Packet struct {
	Eth     Ethernet
	ARP     *ARP
	IPv4    *IPv4
	IPv6    *IPv6
	UDP     *UDP
	TCP     *TCP
	Payload []byte

	// WireLen is the total frame length in bytes. On decode it is the
	// input length; synthetic flow-level packets may set it directly
	// without materializing Payload.
	WireLen int
}

// SrcIP returns the network-layer source address, or the zero Addr for
// non-IP packets.
func (p *Packet) SrcIP() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Src
	case p.IPv6 != nil:
		return p.IPv6.Src
	}
	return netip.Addr{}
}

// DstIP returns the network-layer destination address, or the zero Addr
// for non-IP packets.
func (p *Packet) DstIP() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Dst
	case p.IPv6 != nil:
		return p.IPv6.Dst
	}
	return netip.Addr{}
}

// Proto returns the transport protocol, or 0 for non-IP packets.
func (p *Packet) Proto() IPProto {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Protocol
	case p.IPv6 != nil:
		return p.IPv6.NextHeader
	}
	return 0
}

// SrcPort returns the transport source port, or 0 when no transport
// header was decoded.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.SrcPort
	case p.TCP != nil:
		return p.TCP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 when no transport
// header was decoded.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.DstPort
	case p.TCP != nil:
		return p.TCP.DstPort
	}
	return 0
}

// FlowKey is a hashable 5-tuple plus the source MAC; the fabric and the
// flow monitor aggregate on it.
type FlowKey struct {
	SrcMAC  MAC
	Src     netip.Addr
	Dst     netip.Addr
	Proto   IPProto
	SrcPort uint16
	DstPort uint16
}

// Flow returns the packet's FlowKey.
func (p *Packet) Flow() FlowKey {
	return FlowKey{
		SrcMAC:  p.Eth.Src,
		Src:     p.SrcIP(),
		Dst:     p.DstIP(),
		Proto:   p.Proto(),
		SrcPort: p.SrcPort(),
		DstPort: p.DstPort(),
	}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Hash returns a 64-bit FNV-1a digest of the flow key. It never returns
// 0, so callers can use the zero value as a "not yet computed" sentinel
// (fabric.Offer.FlowHash does). Traffic generators compute it once per
// flow and carry it alongside the key so per-tick hot loops do no
// re-hashing.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range k.SrcMAC {
		h = (h ^ uint64(b)) * prime
	}
	h = hashAddr(h, k.Src)
	h = hashAddr(h, k.Dst)
	h = (h ^ uint64(k.Proto)) * prime
	h = (h ^ (uint64(k.SrcPort) | uint64(k.DstPort)<<16)) * prime
	if h == 0 {
		return 1
	}
	return h
}

func hashAddr(h uint64, a netip.Addr) uint64 {
	const prime = 1099511628211
	if !a.IsValid() {
		return (h ^ 0xff) * prime
	}
	b := a.As16()
	for i := 0; i < 16; i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(b[i:])) * prime
	}
	if a.Is4() {
		h = (h ^ 4) * prime
	}
	return h
}

// Decode parses an Ethernet frame into a Packet. The returned packet's
// Payload aliases data; callers that retain the packet must not mutate
// the input buffer.
func Decode(data []byte) (*Packet, error) {
	if len(data) < ethernetHeaderLen {
		return nil, ErrTruncated
	}
	p := &Packet{WireLen: len(data)}
	copy(p.Eth.Dst[:], data[0:6])
	copy(p.Eth.Src[:], data[6:12])
	p.Eth.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	rest := data[ethernetHeaderLen:]
	switch p.Eth.Type {
	case EtherTypeIPv4:
		return p, p.decodeIPv4(rest)
	case EtherTypeIPv6:
		return p, p.decodeIPv6(rest)
	case EtherTypeARP:
		return p, p.decodeARP(rest)
	default:
		p.Payload = rest
		return p, nil
	}
}

func (p *Packet) decodeIPv4(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return ErrBadHeader
	}
	if ipChecksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip := &IPv4{
		TOS:      data[1],
		TotalLen: binary.BigEndian.Uint16(data[2:4]),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Flags:    data[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(data[6:8]) & 0x1fff,
		TTL:      data[8],
		Protocol: IPProto(data[9]),
	}
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if ihl > 20 {
		ip.Options = data[20:ihl]
	}
	p.IPv4 = ip
	return p.decodeTransport(ip.Protocol, data[ihl:])
}

func (p *Packet) decodeIPv6(data []byte) error {
	if len(data) < 40 {
		return ErrTruncated
	}
	if data[0]>>4 != 6 {
		return ErrBadVersion
	}
	ip := &IPv6{
		TrafficClass: data[0]<<4 | data[1]>>4,
		FlowLabel:    binary.BigEndian.Uint32(data[0:4]) & 0xfffff,
		PayloadLen:   binary.BigEndian.Uint16(data[4:6]),
		NextHeader:   IPProto(data[6]),
		HopLimit:     data[7],
	}
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	p.IPv6 = ip
	return p.decodeTransport(ip.NextHeader, data[40:])
}

func (p *Packet) decodeTransport(proto IPProto, data []byte) error {
	switch proto {
	case ProtoUDP:
		if len(data) < 8 {
			return ErrTruncated
		}
		p.UDP = &UDP{
			SrcPort:  binary.BigEndian.Uint16(data[0:2]),
			DstPort:  binary.BigEndian.Uint16(data[2:4]),
			Length:   binary.BigEndian.Uint16(data[4:6]),
			Checksum: binary.BigEndian.Uint16(data[6:8]),
		}
		p.Payload = data[8:]
	case ProtoTCP:
		if len(data) < 20 {
			return ErrTruncated
		}
		off := int(data[12]>>4) * 4
		if off < 20 || len(data) < off {
			return ErrBadHeader
		}
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(data[0:2]),
			DstPort: binary.BigEndian.Uint16(data[2:4]),
			Seq:     binary.BigEndian.Uint32(data[4:8]),
			Ack:     binary.BigEndian.Uint32(data[8:12]),
			Flags:   TCPFlags(data[13]),
			Window:  binary.BigEndian.Uint16(data[14:16]),
		}
		if off > 20 {
			p.TCP.Options = data[20:off]
		}
		p.Payload = data[off:]
	default:
		p.Payload = data
	}
	return nil
}

func (p *Packet) decodeARP(data []byte) error {
	if len(data) < 28 {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || // Ethernet
		binary.BigEndian.Uint16(data[2:4]) != uint16(EtherTypeIPv4) ||
		data[4] != 6 || data[5] != 4 {
		return ErrBadHeader
	}
	a := &ARP{Op: binary.BigEndian.Uint16(data[6:8])}
	copy(a.SenderHW[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetHW[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	p.ARP = a
	p.Payload = data[28:]
	return nil
}

// Serialize produces the wire representation of the packet, computing
// IPv4 checksums and length fields. Packets constructed for flow-level
// simulation (with only WireLen set) cannot be serialized faithfully;
// Serialize emits the declared headers plus Payload.
func (p *Packet) Serialize() ([]byte, error) {
	var transport []byte
	switch {
	case p.UDP != nil:
		transport = make([]byte, 8+len(p.Payload))
		binary.BigEndian.PutUint16(transport[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(transport[2:4], p.UDP.DstPort)
		ulen := p.UDP.Length
		if ulen == 0 {
			ulen = uint16(8 + len(p.Payload))
		}
		binary.BigEndian.PutUint16(transport[4:6], ulen)
		binary.BigEndian.PutUint16(transport[6:8], p.UDP.Checksum)
		copy(transport[8:], p.Payload)
	case p.TCP != nil:
		optLen := len(p.TCP.Options)
		if optLen%4 != 0 {
			return nil, fmt.Errorf("netpkt: TCP options length %d not a multiple of 4", optLen)
		}
		hl := 20 + optLen
		transport = make([]byte, hl+len(p.Payload))
		binary.BigEndian.PutUint16(transport[0:2], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(transport[2:4], p.TCP.DstPort)
		binary.BigEndian.PutUint32(transport[4:8], p.TCP.Seq)
		binary.BigEndian.PutUint32(transport[8:12], p.TCP.Ack)
		transport[12] = byte(hl/4) << 4
		transport[13] = byte(p.TCP.Flags)
		binary.BigEndian.PutUint16(transport[14:16], p.TCP.Window)
		copy(transport[20:], p.TCP.Options)
		copy(transport[hl:], p.Payload)
	default:
		transport = p.Payload
	}

	var network []byte
	switch {
	case p.IPv4 != nil:
		ip := p.IPv4
		if len(ip.Options)%4 != 0 {
			return nil, fmt.Errorf("netpkt: IPv4 options length %d not a multiple of 4", len(ip.Options))
		}
		ihl := 20 + len(ip.Options)
		network = make([]byte, ihl+len(transport))
		network[0] = 4<<4 | byte(ihl/4)
		network[1] = ip.TOS
		binary.BigEndian.PutUint16(network[2:4], uint16(ihl+len(transport)))
		binary.BigEndian.PutUint16(network[4:6], ip.ID)
		binary.BigEndian.PutUint16(network[6:8], uint16(ip.Flags)<<13|ip.FragOff)
		network[8] = ip.TTL
		network[9] = byte(ip.Protocol)
		src := ip.Src.As4()
		dst := ip.Dst.As4()
		copy(network[12:16], src[:])
		copy(network[16:20], dst[:])
		copy(network[20:ihl], ip.Options)
		csum := ipChecksum(network[:ihl])
		binary.BigEndian.PutUint16(network[10:12], csum)
		copy(network[ihl:], transport)
	case p.IPv6 != nil:
		ip := p.IPv6
		network = make([]byte, 40+len(transport))
		binary.BigEndian.PutUint32(network[0:4],
			6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
		binary.BigEndian.PutUint16(network[4:6], uint16(len(transport)))
		network[6] = byte(ip.NextHeader)
		network[7] = ip.HopLimit
		src := ip.Src.As16()
		dst := ip.Dst.As16()
		copy(network[8:24], src[:])
		copy(network[24:40], dst[:])
		copy(network[40:], transport)
	case p.ARP != nil:
		a := p.ARP
		network = make([]byte, 28)
		binary.BigEndian.PutUint16(network[0:2], 1)
		binary.BigEndian.PutUint16(network[2:4], uint16(EtherTypeIPv4))
		network[4], network[5] = 6, 4
		binary.BigEndian.PutUint16(network[6:8], a.Op)
		copy(network[8:14], a.SenderHW[:])
		sip := a.SenderIP.As4()
		copy(network[14:18], sip[:])
		copy(network[18:24], a.TargetHW[:])
		tip := a.TargetIP.As4()
		copy(network[24:28], tip[:])
	default:
		network = transport
	}

	frame := make([]byte, ethernetHeaderLen+len(network))
	copy(frame[0:6], p.Eth.Dst[:])
	copy(frame[6:12], p.Eth.Src[:])
	binary.BigEndian.PutUint16(frame[12:14], uint16(p.Eth.Type))
	copy(frame[ethernetHeaderLen:], network)
	return frame, nil
}

// ipChecksum computes the Internet checksum over b. For a header with the
// checksum field already filled, the result is 0 when the checksum is
// valid; for a header with the field zeroed, it is the value to store.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
