package netpkt

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	macA = MustParseMAC("02:00:00:00:00:0a")
	macB = MustParseMAC("02:00:00:00:00:0b")
	ip1  = netip.MustParseAddr("100.10.10.10")
	ip2  = netip.MustParseAddr("203.0.113.7")
	ip6a = netip.MustParseAddr("2001:db8::1")
	ip6b = netip.MustParseAddr("2001:db8::2")
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "aa:bb:cc:dd:ee:ff" {
		t.Fatalf("roundtrip: %s", m)
	}
	for _, bad := range []string{"", "aa:bb:cc:dd:ee", "aa-bb-cc-dd-ee-ff", "zz:bb:cc:dd:ee:ff", "aa:bb:cc:dd:ee:f"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) should fail", bad)
		}
	}
}

func TestBroadcast(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not broadcast")
	}
	if macA.IsBroadcast() {
		t.Fatal("unicast claimed broadcast")
	}
}

func TestUDPIPv4Roundtrip(t *testing.T) {
	pkt := NewBuilder(macA, macB).
		IPv4(ip1, ip2).
		UDP(123, 4500).
		Payload([]byte("ntp-monlist-response")).
		Build()
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Eth.Src != macA || got.Eth.Dst != macB {
		t.Fatalf("eth mismatch: %+v", got.Eth)
	}
	if got.IPv4 == nil || got.IPv4.Src != ip1 || got.IPv4.Dst != ip2 {
		t.Fatalf("ip mismatch: %+v", got.IPv4)
	}
	if got.UDP == nil || got.UDP.SrcPort != 123 || got.UDP.DstPort != 4500 {
		t.Fatalf("udp mismatch: %+v", got.UDP)
	}
	if string(got.Payload) != "ntp-monlist-response" {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
	if got.WireLen != len(wire) {
		t.Fatalf("WireLen = %d, want %d", got.WireLen, len(wire))
	}
}

func TestTCPIPv4Roundtrip(t *testing.T) {
	pkt := NewBuilder(macB, macA).
		IPv4(ip2, ip1).
		TCP(443, 50123, FlagSYN|FlagACK).
		Payload([]byte{1, 2, 3}).
		Build()
	pkt.TCP.Seq, pkt.TCP.Ack = 1000, 2000
	pkt.TCP.Options = []byte{2, 4, 5, 0xb4} // MSS option padded to 4
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	tc := got.TCP
	if tc == nil || tc.SrcPort != 443 || tc.DstPort != 50123 {
		t.Fatalf("tcp ports: %+v", tc)
	}
	if tc.Flags != FlagSYN|FlagACK {
		t.Fatalf("flags = %v", tc.Flags)
	}
	if tc.Seq != 1000 || tc.Ack != 2000 {
		t.Fatalf("seq/ack: %+v", tc)
	}
	if !bytes.Equal(tc.Options, []byte{2, 4, 5, 0xb4}) {
		t.Fatalf("options: %v", tc.Options)
	}
	if !bytes.Equal(got.Payload, []byte{1, 2, 3}) {
		t.Fatalf("payload: %v", got.Payload)
	}
}

func TestUDPIPv6Roundtrip(t *testing.T) {
	pkt := NewBuilder(macA, macB).
		IPv6(ip6a, ip6b).
		UDP(53, 3333).
		Payload([]byte("dnssec-any-response")).
		Build()
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IPv6 == nil || got.IPv6.Src != ip6a || got.IPv6.Dst != ip6b {
		t.Fatalf("ipv6 mismatch: %+v", got.IPv6)
	}
	if got.UDP == nil || got.UDP.SrcPort != 53 {
		t.Fatalf("udp mismatch: %+v", got.UDP)
	}
	if got.Proto() != ProtoUDP {
		t.Fatalf("Proto = %v", got.Proto())
	}
}

func TestARPRoundtrip(t *testing.T) {
	pkt := &Packet{
		Eth: Ethernet{Src: macA, Dst: Broadcast, Type: EtherTypeARP},
		ARP: &ARP{Op: 1, SenderHW: macA, SenderIP: ip1, TargetIP: ip2},
	}
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ARP == nil || got.ARP.Op != 1 || got.ARP.SenderIP != ip1 || got.ARP.TargetIP != ip2 {
		t.Fatalf("arp mismatch: %+v", got.ARP)
	}
}

func TestDecodeTruncated(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(1, 2).Build()
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix shorter than the full header chain must error, not panic.
	for i := 0; i < len(wire); i++ {
		if _, err := Decode(wire[:i]); err == nil && i < 14+20+8 {
			t.Fatalf("Decode of %d-byte prefix should fail", i)
		}
	}
}

func TestDecodeBadChecksum(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(1, 2).Build()
	wire, _ := pkt.Serialize()
	wire[14+10] ^= 0xff // corrupt IPv4 checksum
	if _, err := Decode(wire); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(1, 2).Build()
	wire, _ := pkt.Serialize()
	wire[14] = 5<<4 | 5 // version 5
	if _, err := Decode(wire); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestFlowKey(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(11211, 80).Build()
	k := pkt.Flow()
	want := FlowKey{SrcMAC: macA, Src: ip1, Dst: ip2, Proto: ProtoUDP, SrcPort: 11211, DstPort: 80}
	if k != want {
		t.Fatalf("FlowKey = %+v, want %+v", k, want)
	}
	// FlowKey must be usable as a map key.
	m := map[FlowKey]int{k: 1}
	if m[want] != 1 {
		t.Fatal("map lookup failed")
	}
}

func TestAccessorsNonIP(t *testing.T) {
	p := &Packet{}
	if p.SrcIP().IsValid() || p.DstIP().IsValid() {
		t.Fatal("zero packet has IPs")
	}
	if p.Proto() != 0 || p.SrcPort() != 0 || p.DstPort() != 0 {
		t.Fatal("zero packet has transport info")
	}
}

func TestPayloadLenSynthetic(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(123, 9).PayloadLen(1458).Build()
	// 14 eth + 20 ip + 8 udp + 1458 = 1500
	if pkt.WireLen != 1500 {
		t.Fatalf("WireLen = %d, want 1500", pkt.WireLen)
	}
}

func TestRoundtripPropertyUDP(t *testing.T) {
	f := func(srcPort, dstPort uint16, tos, ttl uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(srcPort, dstPort).Payload(payload).Build()
		pkt.IPv4.TOS = tos
		if ttl == 0 {
			ttl = 1
		}
		pkt.IPv4.TTL = ttl
		wire, err := pkt.Serialize()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.UDP.SrcPort == srcPort &&
			got.UDP.DstPort == dstPort &&
			got.IPv4.TOS == tos &&
			got.IPv4.TTL == ttl &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtripPropertyTCPFlags(t *testing.T) {
	f := func(flags uint8, seq, ack uint32, window uint16) bool {
		pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).TCP(80, 443, TCPFlags(flags)).Build()
		pkt.TCP.Seq, pkt.TCP.Ack, pkt.TCP.Window = seq, ack, window
		wire, err := pkt.Serialize()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.TCP.Flags == TCPFlags(flags) &&
			got.TCP.Seq == seq && got.TCP.Ack == ack && got.TCP.Window == window
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzNoPanics(t *testing.T) {
	// Decode must never panic on arbitrary bytes.
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeErrors(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).TCP(1, 2, 0).Build()
	pkt.TCP.Options = []byte{1, 2, 3} // not multiple of 4
	if _, err := pkt.Serialize(); err == nil {
		t.Fatal("want error for bad TCP options length")
	}
	pkt2 := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(1, 2).Build()
	pkt2.IPv4.Options = []byte{1}
	if _, err := pkt2.Serialize(); err == nil {
		t.Fatal("want error for bad IPv4 options length")
	}
}

func TestEtherTypeStrings(t *testing.T) {
	if EtherTypeIPv4.String() != "IPv4" || EtherTypeIPv6.String() != "IPv6" || EtherTypeARP.String() != "ARP" {
		t.Fatal("EtherType strings")
	}
	if EtherType(0x1234).String() == "" {
		t.Fatal("unknown EtherType string empty")
	}
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" || ProtoICMP.String() != "ICMP" {
		t.Fatal("IPProto strings")
	}
}

func BenchmarkDecodeUDP(b *testing.B) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(123, 9999).Payload(make([]byte, 468)).Build()
	wire, err := pkt.Serialize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeUDP(b *testing.B) {
	pkt := NewBuilder(macA, macB).IPv4(ip1, ip2).UDP(123, 9999).Payload(make([]byte, 468)).Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pkt.Serialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTCPIPv6Roundtrip(t *testing.T) {
	pkt := NewBuilder(macA, macB).
		IPv6(ip6a, ip6b).
		TCP(443, 51000, FlagPSH|FlagACK).
		Payload([]byte("h2 frame")).
		Build()
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IPv6 == nil || got.IPv6.NextHeader != ProtoTCP {
		t.Fatalf("ipv6: %+v", got.IPv6)
	}
	if got.TCP == nil || got.TCP.Flags != FlagPSH|FlagACK {
		t.Fatalf("tcp: %+v", got.TCP)
	}
	if got.Flow().Dst != ip6b || got.Flow().DstPort != 51000 {
		t.Fatalf("flow: %+v", got.Flow())
	}
}

func TestIPv6FlowLabelTrafficClass(t *testing.T) {
	pkt := NewBuilder(macA, macB).IPv6(ip6a, ip6b).UDP(1, 2).Build()
	pkt.IPv6.TrafficClass = 0xb8
	pkt.IPv6.FlowLabel = 0xabcde
	wire, err := pkt.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IPv6.TrafficClass != 0xb8 || got.IPv6.FlowLabel != 0xabcde {
		t.Fatalf("tc/flow: %x %x", got.IPv6.TrafficClass, got.IPv6.FlowLabel)
	}
}

func TestFlowKeyHash(t *testing.T) {
	base := FlowKey{SrcMAC: macA, Src: ip1, Dst: ip2, Proto: ProtoUDP, SrcPort: 123, DstPort: 443}
	h := base.Hash()
	if h == 0 {
		t.Fatal("Hash returned the 0 sentinel")
	}
	if base.Hash() != h {
		t.Fatal("Hash not deterministic")
	}
	// Every field must perturb the digest.
	mutants := []FlowKey{base, base, base, base, base, base, {}}
	mutants[0].SrcMAC = macB
	mutants[1].Src = ip6a
	mutants[2].Dst = ip1
	mutants[3].Proto = ProtoTCP
	mutants[4].SrcPort = 124
	mutants[5].DstPort = 80
	seen := map[uint64]bool{h: true}
	for i, m := range mutants {
		mh := m.Hash()
		if mh == 0 {
			t.Fatalf("mutant %d hashed to 0", i)
		}
		if seen[mh] {
			t.Fatalf("mutant %d collided: %#x", i, mh)
		}
		seen[mh] = true
	}
	// v4 and its 4-in-6 form are distinct flows (netip treats them as
	// different addresses), so their hashes must differ too.
	in6 := base
	in6.Src = netip.AddrFrom16(ip1.As16())
	if in6.Hash() == h {
		t.Fatal("v4 and 4-in-6 source hashed identically")
	}
}

func TestFlowKeyHashSpread(t *testing.T) {
	// Sequential port-only variation must not collapse buckets: all
	// hashes distinct over a realistic flow population.
	seen := make(map[uint64]bool)
	for i := 0; i < 4096; i++ {
		k := FlowKey{SrcMAC: macA, Src: ip1, Dst: ip2, Proto: ProtoUDP,
			SrcPort: uint16(i), DstPort: 443}
		h := k.Hash()
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
