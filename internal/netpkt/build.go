package netpkt

import "net/netip"

// Builder constructs synthetic packets for the traffic generators and
// tests. Methods return the builder for chaining; Build returns the
// completed packet.
type Builder struct {
	p Packet
}

// NewBuilder returns a Builder with an Ethernet header between the given
// hardware addresses.
func NewBuilder(src, dst MAC) *Builder {
	b := &Builder{}
	b.p.Eth.Src = src
	b.p.Eth.Dst = dst
	return b
}

// IPv4 sets the network layer to IPv4 with the given endpoints.
func (b *Builder) IPv4(src, dst netip.Addr) *Builder {
	b.p.Eth.Type = EtherTypeIPv4
	b.p.IPv4 = &IPv4{TTL: 64, Src: src, Dst: dst}
	return b
}

// IPv6 sets the network layer to IPv6 with the given endpoints.
func (b *Builder) IPv6(src, dst netip.Addr) *Builder {
	b.p.Eth.Type = EtherTypeIPv6
	b.p.IPv6 = &IPv6{HopLimit: 64, Src: src, Dst: dst}
	return b
}

// UDP sets the transport layer to UDP with the given ports.
func (b *Builder) UDP(srcPort, dstPort uint16) *Builder {
	b.p.UDP = &UDP{SrcPort: srcPort, DstPort: dstPort}
	b.setProto(ProtoUDP)
	return b
}

// TCP sets the transport layer to TCP with the given ports and flags.
func (b *Builder) TCP(srcPort, dstPort uint16, flags TCPFlags) *Builder {
	b.p.TCP = &TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535}
	b.setProto(ProtoTCP)
	return b
}

func (b *Builder) setProto(proto IPProto) {
	if b.p.IPv4 != nil {
		b.p.IPv4.Protocol = proto
	}
	if b.p.IPv6 != nil {
		b.p.IPv6.NextHeader = proto
	}
}

// Payload sets the application payload bytes.
func (b *Builder) Payload(data []byte) *Builder {
	b.p.Payload = data
	return b
}

// PayloadLen sets a synthetic payload length without materializing bytes;
// the flow-level simulator uses WireLen for byte accounting.
func (b *Builder) PayloadLen(n int) *Builder {
	b.p.WireLen = b.headerLen() + n
	return b
}

// Build finalizes and returns the packet. WireLen is computed from the
// declared headers and payload when not set explicitly.
func (b *Builder) Build() *Packet {
	p := b.p // copy; the builder can be reused
	if p.WireLen == 0 {
		p.WireLen = b.headerLen() + len(p.Payload)
	}
	return &p
}

func (b *Builder) headerLen() int {
	n := ethernetHeaderLen
	switch {
	case b.p.IPv4 != nil:
		n += 20 + len(b.p.IPv4.Options)
	case b.p.IPv6 != nil:
		n += 40
	case b.p.ARP != nil:
		n += 28
	}
	switch {
	case b.p.UDP != nil:
		n += 8
	case b.p.TCP != nil:
		n += 20 + len(b.p.TCP.Options)
	}
	return n
}
