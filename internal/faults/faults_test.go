package faults

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
	"stellar/internal/core"
	"stellar/internal/hw"
)

// TestPlanValidateRejections covers the plan validator's rejection paths.
func TestPlanValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
	}{
		{"unknown kind", Fault{Kind: "gremlins", From: 0, To: 1}},
		{"empty window", Fault{Kind: KindQueueStall, From: 3, To: 3}},
		{"negative from", Fault{Kind: KindQueueStall, From: -1, To: 3}},
		{"prob out of range", Fault{Kind: KindInstallFail, From: 0, To: 1, Prob: 2}},
		{"bad error class", Fault{Kind: KindInstallFail, From: 0, To: 1, Error: "f9"}},
		{"negative max failures", Fault{Kind: KindInstallFail, From: 0, To: 1, MaxFailures: -1}},
		{"squeeze reserving nothing", Fault{Kind: KindTCAMSqueeze, From: 0, To: 1}},
		{"squeeze negative", Fault{Kind: KindTCAMSqueeze, From: 0, To: 1, ReserveMAC: -2}},
		{"flap without peer", Fault{Kind: KindSessionFlap, From: 0, To: 1}},
		{"delay without depth", Fault{Kind: KindWireDelay, From: 0, To: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Faults: []Fault{tc.f}}
			if err := p.Validate(); err == nil {
				t.Fatalf("validator accepted %+v", tc.f)
			}
		})
	}
	ok := Plan{Faults: []Fault{
		{Kind: KindInstallFail, From: 0, To: 5, Error: ErrorF1, MaxFailures: 2},
		{Kind: KindTCAMSqueeze, From: 1, To: 3, ReserveL34: 10},
		{Kind: KindSessionFlap, From: 2, To: 4, Peer: "AS64512"},
		{Kind: KindWireDelay, From: 0, To: 9, DelayMsgs: 2},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestOnTickWindowEdges drives overlapping squeeze and stall windows plus
// a flap, asserting the hooks see accumulated edges in tick order.
func TestOnTickWindowEdges(t *testing.T) {
	var calls []string
	inj, err := NewInjector(Plan{Faults: []Fault{
		{Kind: KindTCAMSqueeze, From: 1, To: 4, ReserveMAC: 5, ReserveL34: 10},
		{Kind: KindTCAMSqueeze, From: 2, To: 3, ReserveL34: 7},
		{Kind: KindQueueStall, From: 1, To: 3},
		{Kind: KindSessionFlap, From: 2, To: 4, Peer: "AS64512"},
	}}, Hooks{
		SetReserved: func(mac, l34 int) { calls = append(calls, fmt.Sprintf("reserve %d/%d", mac, l34)) },
		SetStalled:  func(s bool) { calls = append(calls, fmt.Sprintf("stalled %v", s)) },
		PeerDown:    func(p string) error { calls = append(calls, "down "+p); return nil },
		PeerUp:      func(p string) error { calls = append(calls, "up "+p); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick <= 5; tick++ {
		if err := inj.OnTick(tick); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}
	want := []string{
		"reserve 5/10", "stalled true", // tick 1
		"reserve 5/17", "down AS64512", // tick 2: second squeeze stacks
		"reserve 5/10", "stalled false", // tick 3: inner squeeze releases
		"reserve 0/0", "up AS64512", // tick 4
	}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("hook calls:\n got %v\nwant %v", calls, want)
	}
	log := inj.Injections()
	if len(log) != len(want) {
		t.Fatalf("injection log has %d entries, want %d: %+v", len(log), len(want), log)
	}
}

// TestOnTickFlapHookError propagates a failing flap hook as the tick's
// error so the engine aborts loudly instead of running a half-flapped run.
func TestOnTickFlapHookError(t *testing.T) {
	boom := errors.New("boom")
	inj, err := NewInjector(Plan{Faults: []Fault{
		{Kind: KindSessionFlap, From: 1, To: 2, Peer: "AS64512"},
	}}, Hooks{PeerDown: func(string) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.OnTick(1); !errors.Is(err, boom) {
		t.Fatalf("OnTick = %v, want %v", err, boom)
	}
}

func installChange(id string) core.ConfigChange {
	return core.ConfigChange{Op: core.OpInstall, RuleID: id}
}

// TestInstallHookWindowBudgetAndClasses pins the install-failure
// semantics: only installs inside the window fail, MaxFailures bounds a
// transient fault, removals are always exempt, and the error class maps
// to the hardware error the controller buckets on.
func TestInstallHookWindowBudgetAndClasses(t *testing.T) {
	inj, err := NewInjector(Plan{Faults: []Fault{
		{Kind: KindInstallFail, From: 2, To: 5, Error: ErrorF1, MaxFailures: 2},
	}}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	inj.SetTick(1)
	if err := inj.InstallHook(installChange("r"), 1, 0); err != nil {
		t.Fatalf("outside window: %v", err)
	}
	inj.SetTick(2)
	if err := inj.InstallHook(installChange("r"), 1, 0); !errors.Is(err, hw.ErrL34Exhausted) {
		t.Fatalf("first failure = %v, want F1", err)
	}
	if err := inj.InstallHook(core.ConfigChange{Op: core.OpRemove, RuleID: "r"}, 1, 0); err != nil {
		t.Fatalf("removal must be exempt: %v", err)
	}
	if err := inj.InstallHook(installChange("r"), 2, 0); !errors.Is(err, hw.ErrL34Exhausted) {
		t.Fatalf("second failure = %v, want F1", err)
	}
	if err := inj.InstallHook(installChange("r"), 3, 0); err != nil {
		t.Fatalf("budget spent, install must pass: %v", err)
	}

	// Error-class mapping.
	for class, want := range map[string]error{
		ErrorF1: hw.ErrL34Exhausted, ErrorF2: hw.ErrMACExhausted,
		ErrorQoS: hw.ErrQoSPoliciesExhausted, ErrorTransient: ErrInjected,
	} {
		inj2, err := NewInjector(Plan{Faults: []Fault{
			{Kind: KindInstallFail, From: 0, To: 1, Error: class},
		}}, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if got := inj2.InstallHook(installChange("r"), 1, 0); !errors.Is(got, want) {
			t.Fatalf("class %q: got %v, want %v", class, got, want)
		}
	}
}

// sliceSource yields a fixed record list.
type sliceSource struct {
	recs []bgppipe.Record
	i    int
}

func (s *sliceSource) Next() (bgppipe.Record, error) {
	if s.i >= len(s.recs) {
		return bgppipe.Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

func recordsNamed(names ...string) []bgppipe.Record {
	out := make([]bgppipe.Record, len(names))
	for i, n := range names {
		out[i] = bgppipe.Record{Peer: n, Msg: &bgp.Keepalive{}}
	}
	return out
}

func drainPeers(t *testing.T, src bgppipe.RecordSource) []string {
	t.Helper()
	var out []string
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec.Peer)
	}
}

// TestFilterSourceDropDupDelay covers the replay filter: drop removes a
// record, duplicate re-emits it, delay holds it back DelayMsgs records
// and flushes the tail in order at EOF.
func TestFilterSourceDropDupDelay(t *testing.T) {
	mk := func(faults ...Fault) *Injector {
		inj, err := NewInjector(Plan{Faults: faults}, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	cases := []struct {
		name  string
		fault Fault
		want  []string
	}{
		{"drop", Fault{Kind: KindWireDrop, From: 1, To: 3}, []string{"a", "d"}},
		{"duplicate", Fault{Kind: KindWireDuplicate, From: 1, To: 2}, []string{"a", "b", "b", "c", "d"}},
		{"delay", Fault{Kind: KindWireDelay, From: 0, To: 4, DelayMsgs: 2}, []string{"a", "b", "c", "d"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := mk(tc.fault)
			src := inj.FilterSource(&sliceSource{recs: recordsNamed("a", "b", "c", "d")})
			if got := drainPeers(t, src); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
	// Delay actually reorders when new records keep arriving.
	inj := mk(Fault{Kind: KindWireDelay, From: 0, To: 1, DelayMsgs: 1})
	src := inj.FilterSource(&sliceSource{recs: recordsNamed("a", "b", "c")})
	// "a" held; "b" passes; after "b", a is still held (depth 1 exceeded
	// only when a second record is held) — flushed at EOF.
	if got := drainPeers(t, src); !reflect.DeepEqual(got, []string{"b", "c", "a"}) {
		t.Fatalf("reorder got %v", got)
	}
}

// TestWireStageOnLivePipe runs the wire faults over a real pipe line:
// dropped messages vanish from downstream handlers, duplicates arrive
// marked Reinjected and are not re-faulted.
func TestWireStageOnLivePipe(t *testing.T) {
	inj, err := NewInjector(Plan{Faults: []Fault{
		{Kind: KindWireDrop, From: 1, To: 2},
		{Kind: KindWireDuplicate, From: 2, To: 3},
	}}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	p := bgppipe.New(bgppipe.Options{Buffer: 8})
	if err := p.Attach(inj.WireStage(bgppipe.DirRX)); err != nil {
		t.Fatal(err)
	}
	var seen []string
	p.OnMsg(bgppipe.DirRX, func(m *bgppipe.Msg) bool {
		tag := m.Peer
		if m.Reinjected {
			tag += "+dup"
		}
		seen = append(seen, tag)
		return true
	})
	if err := p.Attach(&kicker{peers: []string{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// msg 0 "a" passes; msg 1 "b" dropped; msg 2 "c" duplicated.
	want := []string{"a", "c", "c+dup"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("seen %v, want %v", seen, want)
	}
	if n := len(inj.Injections()); n != 2 {
		t.Fatalf("injection log has %d entries, want 2", n)
	}
}

// kicker pushes one keepalive per peer onto RX, then finishes.
type kicker struct {
	peers []string
	pipe  *bgppipe.Pipe
}

func (k *kicker) Name() string                 { return "kicker" }
func (k *kicker) Attach(p *bgppipe.Pipe) error { k.pipe = p; return nil }
func (k *kicker) Stop() error                  { return nil }
func (k *kicker) Run() error {
	for _, peer := range k.peers {
		if err := k.pipe.Send(bgppipe.DirRX, &bgppipe.Msg{Peer: peer, BGP: &bgp.Keepalive{}}); err != nil {
			return err
		}
	}
	return nil
}

// TestInjectionLogDeterministic pins the reproducibility contract: two
// injectors over the same plan, driven identically, log identically —
// including probabilistic draws.
func TestInjectionLogDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Faults: []Fault{
		{Kind: KindInstallFail, From: 0, To: 50, Prob: 0.5},
		{Kind: KindTCAMSqueeze, From: 5, To: 20, ReserveL34: 3},
	}}
	drive := func() []Injection {
		inj, err := NewInjector(plan, Hooks{SetReserved: func(int, int) {}})
		if err != nil {
			t.Fatal(err)
		}
		for tick := 0; tick < 30; tick++ {
			inj.SetTick(tick)
			if err := inj.OnTick(tick); err != nil {
				t.Fatal(err)
			}
			_ = inj.InstallHook(installChange(fmt.Sprintf("r%d", tick)), 1, float64(tick))
		}
		return inj.Injections()
	}
	a, b := drive(), drive()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan, different logs:\n%+v\n%+v", a, b)
	}
	// The probabilistic fault must actually have both fired and skipped.
	fails := 0
	for _, in := range a {
		if in.Kind == KindInstallFail {
			fails++
		}
	}
	if fails == 0 || fails == 30 {
		t.Fatalf("prob 0.5 fault fired %d/30 times — draw stream suspect", fails)
	}
}
