// Package faults is the deterministic fault-injection engine for the
// mitigation control plane: a seeded, JSON-serializable Plan of
// tick-windowed faults — hardware install failures, TCAM budget
// squeezes, change-queue stalls, BGP session flaps, and wire-level
// message loss/duplication/reordering — compiled into an Injector that
// hooks the codebase's existing seams:
//
//   - mitctl.Config.InstallHook (per-attempt install failures),
//   - hw.EdgeRouter.SetReserved (TCAM squeeze) and
//     mitctl.Controller.SetQueueStalled (queue stall) via tick windows,
//   - a bgppipe.Stage wrapping a live wire line, and a
//     bgppipe.RecordSource filter for capture replay (wire faults),
//   - an engine stage decorator (WrapControl) firing the tick windows
//     on the spine before each control tick.
//
// Every injected fault is recorded in an ordered log, so a run's report
// can say exactly what was done to it — and two runs with the same plan
// and seed inject byte-identically.
package faults

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"stellar/internal/bgppipe"
	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/hw"
	"stellar/internal/stats"
)

// Fault kinds.
const (
	// KindInstallFail fails hardware rule installs through the
	// controller's InstallHook. Prob is the per-attempt failure
	// probability (0 means 1.0); MaxFailures bounds the injected
	// failures (0: every attempt in the window fails — a persistent
	// fault; N>0: the first N attempts fail, then installs succeed — a
	// transient fault retries recover from). Error selects the failure
	// class ("f1", "f2", "qos", or "" for a generic transient error).
	// Removals are exempt, so injected failures never orphan hardware
	// state. Window bounds are engine ticks.
	KindInstallFail = "install_fail"
	// KindTCAMSqueeze reserves ReserveMAC/ReserveL34 hardware budget for
	// the window — the headroom collapse that forces the controller's
	// degradation ladder. Window bounds are engine ticks.
	KindTCAMSqueeze = "tcam_squeeze"
	// KindQueueStall freezes the controller's change queue for the
	// window: queued changes accumulate and drain when the stall lifts.
	// Window bounds are engine ticks.
	KindQueueStall = "queue_stall"
	// KindSessionFlap takes the named peer's session down at the window
	// start and back up at the end (Hooks.PeerDown / Hooks.PeerUp).
	// Window bounds are engine ticks.
	KindSessionFlap = "session_flap"
	// KindWireDrop drops wire messages with probability Prob. Window
	// bounds are per-direction message indices, not ticks.
	KindWireDrop = "wire_drop"
	// KindWireDuplicate re-delivers wire messages with probability Prob
	// (the duplicate runs the full handler chain after the original,
	// marked Reinjected). Window bounds are message indices.
	KindWireDuplicate = "wire_duplicate"
	// KindWireDelay holds messages back and releases them DelayMsgs
	// messages later — bounded reordering. Window bounds are message
	// indices.
	KindWireDelay = "wire_delay"
)

// Error classes for KindInstallFail.
const (
	ErrorF1        = "f1"  // hw.ErrL34Exhausted
	ErrorF2        = "f2"  // hw.ErrMACExhausted
	ErrorQoS       = "qos" // hw.ErrQoSPoliciesExhausted
	ErrorTransient = ""    // ErrInjected
)

// ErrInjected is the generic transient failure KindInstallFail injects
// when no hardware error class is named.
var ErrInjected = errors.New("faults: injected transient install failure")

// Fault is one scheduled fault. From/To bound its active window
// half-open [From, To) — in engine ticks for control-plane faults, in
// per-direction message indices for wire faults.
type Fault struct {
	Kind string `json:"kind"`
	From int    `json:"from"`
	To   int    `json:"to"`

	// Prob is the per-attempt / per-message injection probability for
	// install_fail, wire_drop and wire_duplicate (0 means 1.0).
	Prob float64 `json:"prob,omitempty"`

	// Error is the install_fail failure class (f1, f2, qos, "").
	Error string `json:"error,omitempty"`
	// MaxFailures bounds install_fail injections (0: unbounded).
	MaxFailures int `json:"max_failures,omitempty"`

	// ReserveMAC / ReserveL34 are the tcam_squeeze budget reservations.
	ReserveMAC int `json:"reserve_mac,omitempty"`
	ReserveL34 int `json:"reserve_l34,omitempty"`

	// Peer names the session_flap target.
	Peer string `json:"peer,omitempty"`

	// DelayMsgs is the wire_delay hold-back depth.
	DelayMsgs int `json:"delay_msgs,omitempty"`
}

// Plan is a seeded fault schedule. The zero plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Each fault draws from
	// its own seed-derived stream, so concurrent injection points never
	// perturb each other's outcomes.
	Seed   uint64  `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

var validKinds = map[string]bool{
	KindInstallFail: true, KindTCAMSqueeze: true, KindQueueStall: true,
	KindSessionFlap: true, KindWireDrop: true, KindWireDuplicate: true,
	KindWireDelay: true,
}

var validErrors = map[string]bool{
	ErrorF1: true, ErrorF2: true, ErrorQoS: true, ErrorTransient: true,
	"transient": true,
}

// Validate checks the plan's internal consistency.
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("faults: fault %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
		}
		if !validKinds[f.Kind] {
			return fmt.Errorf("faults: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.From < 0 || f.To <= f.From {
			return fail("window [%d,%d) is empty", f.From, f.To)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return fail("prob %v outside [0,1]", f.Prob)
		}
		switch f.Kind {
		case KindInstallFail:
			if !validErrors[f.Error] {
				return fail("unknown error class %q", f.Error)
			}
			if f.MaxFailures < 0 {
				return fail("negative max_failures")
			}
		case KindTCAMSqueeze:
			if f.ReserveMAC < 0 || f.ReserveL34 < 0 {
				return fail("negative reservation")
			}
			if f.ReserveMAC == 0 && f.ReserveL34 == 0 {
				return fail("reserves nothing")
			}
		case KindSessionFlap:
			if f.Peer == "" {
				return fail("no peer")
			}
		case KindWireDelay:
			if f.DelayMsgs <= 0 {
				return fail("delay_msgs must be positive")
			}
		}
	}
	return nil
}

// Hooks are the control-plane levers the injector pulls for tick-window
// faults. Unset hooks make the corresponding fault kinds no-ops (still
// logged as skipped via OnTick's error).
type Hooks struct {
	// SetReserved applies the accumulated TCAM reservation
	// (hw.EdgeRouter.SetReserved).
	SetReserved func(mac, l34 int)
	// SetStalled freezes/unfreezes the change queue
	// (mitctl.Controller.SetQueueStalled).
	SetStalled func(stalled bool)
	// PeerDown / PeerUp flap a session: down at window start, up (with
	// the peer's announcements restored) at window end.
	PeerDown func(peer string) error
	PeerUp   func(peer string) error
}

// Injection is one recorded fault activation.
type Injection struct {
	Seq int `json:"seq"`
	// At is the engine tick (control-plane faults) or the message index
	// (wire faults) the injection fired at.
	At     int    `json:"at"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Injector executes a plan. Build with NewInjector; wire its hooks into
// the run (InstallHook, WrapControl, WireStage, FilterSource) and read
// the injection log afterwards.
type Injector struct {
	plan  Plan
	hooks Hooks

	mu         sync.Mutex
	log        []Injection
	rngs       []*stats.Rand // one per fault: interleaving-independent draws
	failures   []int         // install_fail budget spent
	curTick    int           // spine's last announced tick (SetTick)
	resMAC     int           // accumulated squeeze reservation
	resL34     int
	stallDepth int
}

// NewInjector compiles a validated plan.
func NewInjector(plan Plan, hooks Hooks) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		plan:     plan,
		hooks:    hooks,
		rngs:     make([]*stats.Rand, len(plan.Faults)),
		failures: make([]int, len(plan.Faults)),
	}
	for i := range plan.Faults {
		inj.rngs[i] = stats.NewRand(plan.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	return inj, nil
}

// record appends to the injection log. Callers hold inj.mu.
func (inj *Injector) record(at int, kind, detail string) {
	inj.log = append(inj.log, Injection{Seq: len(inj.log), At: at, Kind: kind, Detail: detail})
}

// Injections returns a copy of the ordered injection log.
func (inj *Injector) Injections() []Injection {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Injection(nil), inj.log...)
}

// OnTick fires the tick-windowed faults' edges: squeezes and stalls
// engage at From and release at To, flaps go down at From and up at To.
// Drive it once per tick on the control spine (WrapControl does).
func (inj *Injector) OnTick(tick int) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		start, end := tick == f.From, tick == f.To
		if !start && !end {
			continue
		}
		switch f.Kind {
		case KindTCAMSqueeze:
			if start {
				inj.resMAC += f.ReserveMAC
				inj.resL34 += f.ReserveL34
				inj.record(tick, f.Kind, fmt.Sprintf("reserve mac+%d l34+%d", f.ReserveMAC, f.ReserveL34))
			} else {
				inj.resMAC -= f.ReserveMAC
				inj.resL34 -= f.ReserveL34
				inj.record(tick, f.Kind, fmt.Sprintf("release mac-%d l34-%d", f.ReserveMAC, f.ReserveL34))
			}
			if inj.hooks.SetReserved != nil {
				inj.hooks.SetReserved(inj.resMAC, inj.resL34)
			}
		case KindQueueStall:
			if start {
				inj.stallDepth++
				inj.record(tick, f.Kind, "stall")
			} else {
				inj.stallDepth--
				inj.record(tick, f.Kind, "release")
			}
			if inj.hooks.SetStalled != nil {
				inj.hooks.SetStalled(inj.stallDepth > 0)
			}
		case KindSessionFlap:
			if start {
				inj.record(tick, f.Kind, "down "+f.Peer)
				if inj.hooks.PeerDown != nil {
					if err := inj.hooks.PeerDown(f.Peer); err != nil {
						return fmt.Errorf("faults: flap down %s: %w", f.Peer, err)
					}
				}
			} else {
				inj.record(tick, f.Kind, "up "+f.Peer)
				if inj.hooks.PeerUp != nil {
					if err := inj.hooks.PeerUp(f.Peer); err != nil {
						return fmt.Errorf("faults: flap up %s: %w", f.Peer, err)
					}
				}
			}
		}
	}
	return nil
}

// errorFor maps an install_fail class to its injected error.
func errorFor(class string) error {
	switch class {
	case ErrorF1:
		return hw.ErrL34Exhausted
	case ErrorF2:
		return hw.ErrMACExhausted
	case ErrorQoS:
		return hw.ErrQoSPoliciesExhausted
	}
	return ErrInjected
}

// InstallHook is the mitctl.Config.InstallHook implementation: it fails
// install attempts per the plan's active install_fail windows,
// evaluated against the tick the spine last announced (WrapControl — or
// SetTick when driven manually).
func (inj *Injector) InstallHook(change core.ConfigChange, attempt int, now float64) error {
	if change.Op != core.OpInstall {
		return nil // removals always succeed: injected faults never orphan rules
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	tick := inj.curTick
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		if f.Kind != KindInstallFail || tick < f.From || tick >= f.To {
			continue
		}
		if f.MaxFailures > 0 && inj.failures[i] >= f.MaxFailures {
			continue
		}
		if p := f.Prob; p > 0 && p < 1 && inj.rngs[i].Float64() >= p {
			continue
		}
		inj.failures[i]++
		err := errorFor(f.Error)
		inj.record(tick, f.Kind, fmt.Sprintf("%s attempt %d: %v", change.RuleID, attempt, err))
		return err
	}
	return nil
}

// SetTick announces the current engine tick to the injector — the clock
// install_fail windows are evaluated against. WrapControl calls it on
// the spine; manual harnesses (unit tests, serial loops) call it
// directly before Process.
func (inj *Injector) SetTick(tick int) {
	inj.mu.Lock()
	inj.curTick = tick
	inj.mu.Unlock()
}

// WrapControl returns an engine.Config.StageWrap decorator that drives
// the injector from the run's spine: before each control tick it
// announces the tick (SetTick) and fires the tick windows (OnTick), so
// every window edge lands strictly before the control plane processes
// the tick — deterministically ordered with the run's events.
func (inj *Injector) WrapControl() func(engine.Stage) engine.Stage {
	return func(s engine.Stage) engine.Stage {
		if s.Name() != "control" {
			return s
		}
		return &controlWrap{Stage: s, inj: inj}
	}
}

type controlWrap struct {
	engine.Stage
	inj *Injector
}

func (w *controlWrap) Run(ctx *engine.Ctx, in, out *engine.Batch) error {
	w.inj.SetTick(ctx.Tick)
	if err := w.inj.OnTick(ctx.Tick); err != nil {
		return err
	}
	return w.Stage.Run(ctx, in, out)
}

// WireStage returns a bgppipe stage injecting the plan's wire faults on
// one direction's line. Attach it before the consumers whose view
// should see the faulty wire (handlers run in attach order). Reinjected
// messages — including this stage's own duplicates and delayed
// releases — pass through unfaulted.
func (inj *Injector) WireStage(dir bgppipe.Dir) bgppipe.Stage {
	return &wireStage{inj: inj, dir: dir}
}

type wireStage struct {
	inj  *Injector
	dir  bgppipe.Dir
	pipe *bgppipe.Pipe
	// count and held are touched only on the line's drain goroutine.
	count int
	held  []*bgppipe.Msg
}

func (w *wireStage) Name() string {
	if w.dir == bgppipe.DirTX {
		return "faults:wire:tx"
	}
	return "faults:wire:rx"
}

func (w *wireStage) Attach(p *bgppipe.Pipe) error {
	w.pipe = p
	p.OnMsg(w.dir, w.handle)
	return nil
}

func (w *wireStage) Run() error  { return nil }
func (w *wireStage) Stop() error { return nil }

// handle applies drop/duplicate/delay to one message. Returning false
// stops the chain — the message vanishes from every later handler, i.e.
// it was lost on the wire.
func (w *wireStage) handle(m *bgppipe.Msg) bool {
	if m.Reinjected {
		return true
	}
	idx := w.count
	w.count++
	inj := w.inj
	inj.mu.Lock()
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		if idx < f.From || idx >= f.To {
			continue
		}
		switch f.Kind {
		case KindWireDrop:
			if p := f.Prob; p > 0 && p < 1 && inj.rngs[i].Float64() >= p {
				continue
			}
			inj.record(idx, f.Kind, fmt.Sprintf("drop %s msg %d", m.Peer, idx))
			inj.mu.Unlock()
			return false
		case KindWireDuplicate:
			if p := f.Prob; p > 0 && p < 1 && inj.rngs[i].Float64() >= p {
				continue
			}
			inj.record(idx, f.Kind, fmt.Sprintf("dup %s msg %d", m.Peer, idx))
			dup := *m
			w.pipe.Reinject(w.dir, &dup)
		case KindWireDelay:
			inj.record(idx, f.Kind, fmt.Sprintf("hold %s msg %d", m.Peer, idx))
			held := *m
			w.held = append(w.held, &held)
			if len(w.held) > f.DelayMsgs {
				release := w.held[0]
				w.held = w.held[1:]
				w.pipe.Reinject(w.dir, release)
			}
			inj.mu.Unlock()
			return false
		}
	}
	inj.mu.Unlock()
	return true
}

// FilterSource wraps a replay record source with the plan's wire
// faults: records are dropped, duplicated or delayed by record index —
// replay with deterministic loss. Held records flush in order at EOF.
func (inj *Injector) FilterSource(src bgppipe.RecordSource) bgppipe.RecordSource {
	return &filteredSource{inj: inj, src: src}
}

type filteredSource struct {
	inj     *Injector
	src     bgppipe.RecordSource
	idx     int
	pending []bgppipe.Record // duplicates and released delays, FIFO
	held    []bgppipe.Record
	eof     bool
}

func (s *filteredSource) Next() (bgppipe.Record, error) {
	for {
		if len(s.pending) > 0 {
			rec := s.pending[0]
			s.pending = s.pending[1:]
			return rec, nil
		}
		if s.eof {
			if len(s.held) > 0 {
				rec := s.held[0]
				s.held = s.held[1:]
				return rec, nil
			}
			return bgppipe.Record{}, io.EOF
		}
		rec, err := s.src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				s.eof = true
				continue // flush held records, then EOF
			}
			return bgppipe.Record{}, err
		}
		idx := s.idx
		s.idx++
		if keep := s.apply(idx, rec); keep {
			return rec, nil
		}
	}
}

// apply runs the wire faults over one record; false means dropped or
// held.
func (s *filteredSource) apply(idx int, rec bgppipe.Record) bool {
	inj := s.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		if idx < f.From || idx >= f.To {
			continue
		}
		switch f.Kind {
		case KindWireDrop:
			if p := f.Prob; p > 0 && p < 1 && inj.rngs[i].Float64() >= p {
				continue
			}
			inj.record(idx, f.Kind, fmt.Sprintf("drop %s record %d", rec.Peer, idx))
			return false
		case KindWireDuplicate:
			if p := f.Prob; p > 0 && p < 1 && inj.rngs[i].Float64() >= p {
				continue
			}
			inj.record(idx, f.Kind, fmt.Sprintf("dup %s record %d", rec.Peer, idx))
			s.pending = append(s.pending, rec)
		case KindWireDelay:
			inj.record(idx, f.Kind, fmt.Sprintf("hold %s record %d", rec.Peer, idx))
			s.held = append(s.held, rec)
			if len(s.held) > f.DelayMsgs {
				s.pending = append(s.pending, s.held[0])
				s.held = s.held[1:]
			}
			return false
		}
	}
	return true
}
