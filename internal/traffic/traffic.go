// Package traffic generates the workloads of the paper's measurement and
// controlled experiments: UDP amplification attacks (NTP, DNS, LDAP,
// memcached, chargen and spoofed port-0 floods), booter-style attacks
// fanned out over many IXP peers, and benign web-service traffic. All
// generators are flow-level (they emit fabric.Offer aggregates per tick)
// and deterministic given a seed.
package traffic

import (
	"fmt"
	"net/netip"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
)

// Vector describes one amplification-attack vector: the abused protocol,
// its UDP source port signature, and typical characteristics from the
// amplification literature the paper cites (Rossow, NDSS 2014; US-CERT
// TA14-017A).
type Vector struct {
	Name         string
	SrcPort      uint16
	AmpFactor    float64 // bandwidth amplification factor
	ResponseSize int     // typical reflected datagram size in bytes
}

// The amplification vectors observed dominating blackholed traffic in
// Figure 3(a): ports 0 (fragments/spoofed), 123 (NTP), 389 (CLDAP),
// 11211 (memcached), 53 (DNS), 19 (chargen).
var (
	VectorPortZero  = Vector{Name: "port-0", SrcPort: 0, AmpFactor: 1, ResponseSize: 1480}
	VectorNTP       = Vector{Name: "ntp", SrcPort: 123, AmpFactor: 556.9, ResponseSize: 468}
	VectorLDAP      = Vector{Name: "ldap", SrcPort: 389, AmpFactor: 56, ResponseSize: 1400}
	VectorMemcached = Vector{Name: "memcached", SrcPort: 11211, AmpFactor: 51000, ResponseSize: 1400}
	VectorDNS       = Vector{Name: "dns", SrcPort: 53, AmpFactor: 28.7, ResponseSize: 1378}
	VectorChargen   = Vector{Name: "chargen", SrcPort: 19, AmpFactor: 358.8, ResponseSize: 1020}
)

// Vectors lists the known amplification vectors in Figure 3(a)'s order.
func Vectors() []Vector {
	return []Vector{VectorPortZero, VectorNTP, VectorLDAP, VectorMemcached, VectorDNS, VectorChargen}
}

// vectorsByName indexes the known vectors for O(1) lookup.
var vectorsByName = func() map[string]Vector {
	vs := Vectors()
	m := make(map[string]Vector, len(vs))
	for _, v := range vs {
		m[v.Name] = v
	}
	return m
}()

// VectorByName returns the named vector.
func VectorByName(name string) (Vector, error) {
	if v, ok := vectorsByName[name]; ok {
		return v, nil
	}
	return Vector{}, fmt.Errorf("traffic: unknown vector %q", name)
}

// Peer identifies one traffic source on the peering LAN: an IXP member
// forwarding traffic toward the victim.
type Peer struct {
	Name string
	MAC  netpkt.MAC
	// SrcIP is a representative source address behind the peer (the
	// reflector pool address for attack traffic).
	SrcIP netip.Addr
}

// Attack is a reflection/amplification attack against one target IP,
// arriving via a set of IXP peers — the shape of the booter-service
// attacks in Sections 2.4 and 5.3.
type Attack struct {
	Vector Vector
	// Target is the victim service address (the /32 under attack).
	Target netip.Addr
	// Peers carries the attack; traffic is split across them with a
	// heavy-tailed (Pareto) weight so a few peers dominate, as observed
	// in the paper's booter experiments.
	Peers []Peer
	// RateBps is the aggregate attack rate at peak.
	RateBps float64
	// StartTick and EndTick bound the attack (inclusive start,
	// exclusive end) in simulation ticks.
	StartTick, EndTick int
	// RampTicks linearly ramps the attack to full rate (booters ramp up
	// within a few seconds).
	RampTicks int

	weights []float64
	// flows and hashes cache the per-peer flow keys and their
	// netpkt.FlowKey.Hash values so each tick's Offers emits pre-hashed
	// offers with zero per-tick re-hashing (the fabric's egress hot loop
	// classifies them from its flow memo). Offers revalidates each
	// cached key against the current Target/Vector/Peers fields with a
	// cheap struct compare, so post-construction mutation stays correct.
	flows  []netpkt.FlowKey
	hashes []uint64
}

// NewAttack builds an attack with deterministic per-peer weights drawn
// from rng.
func NewAttack(v Vector, target netip.Addr, peers []Peer, rateBps float64, start, end int, rng *stats.Rand) *Attack {
	a := &Attack{Vector: v, Target: target, Peers: peers, RateBps: rateBps,
		StartTick: start, EndTick: end, RampTicks: 5}
	a.weights = make([]float64, len(peers))
	var sum float64
	for i := range peers {
		w := rng.Pareto(1.0, 1.8)
		a.weights[i] = w
		sum += w
	}
	for i := range a.weights {
		a.weights[i] /= sum
	}
	a.precomputeFlows()
	return a
}

// precomputeFlows fills the per-peer flow keys and hashes.
func (a *Attack) precomputeFlows() {
	a.flows = make([]netpkt.FlowKey, len(a.Peers))
	a.hashes = make([]uint64, len(a.Peers))
	for i := range a.Peers {
		a.flows[i] = a.flowKey(i)
		a.hashes[i] = a.flows[i].Hash()
	}
}

// flowKey builds peer i's flow key from the current attack fields.
func (a *Attack) flowKey(i int) netpkt.FlowKey {
	return netpkt.FlowKey{
		SrcMAC:  a.Peers[i].MAC,
		Src:     a.Peers[i].SrcIP,
		Dst:     a.Target,
		Proto:   netpkt.ProtoUDP,
		SrcPort: a.Vector.SrcPort,
		DstPort: 443, // reflected toward the service port under attack
	}
}

// ActiveAt reports whether the attack emits traffic at tick.
func (a *Attack) ActiveAt(tick int) bool {
	return tick >= a.StartTick && tick < a.EndTick
}

// rateAt returns the attack rate at tick including ramp-up.
func (a *Attack) rateAt(tick int) float64 {
	if !a.ActiveAt(tick) {
		return 0
	}
	if a.RampTicks > 0 && tick-a.StartTick < a.RampTicks {
		return a.RateBps * float64(tick-a.StartTick+1) / float64(a.RampTicks)
	}
	return a.RateBps
}

// Offers emits the attack's flow-level offers for one tick of dtSeconds.
func (a *Attack) Offers(tick int, dtSeconds float64) []fabric.Offer {
	return a.AppendOffers(nil, tick, dtSeconds)
}

// AppendOffers appends the tick's offers to dst and returns it —
// the buffer-reusing form the scenario engine drives (ixp.OfferAppender).
func (a *Attack) AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer {
	rate := a.rateAt(tick)
	if rate == 0 {
		return dst
	}
	totalBytes := rate * dtSeconds / 8
	pktSize := float64(a.Vector.ResponseSize)
	if len(a.flows) != len(a.Peers) {
		a.precomputeFlows() // peers changed after construction
	}
	offers := dst
	for i := range a.Peers {
		b := totalBytes * a.weights[i]
		if b <= 0 {
			continue
		}
		// Revalidate the cached key (field compare, no hashing): Target,
		// Vector or a peer may have been mutated after construction. The
		// comparison checks the mutable fields in place rather than
		// building a throwaway key.
		if f := &a.flows[i]; f.SrcMAC != a.Peers[i].MAC || f.Src != a.Peers[i].SrcIP ||
			f.Dst != a.Target || f.SrcPort != a.Vector.SrcPort ||
			f.Proto != netpkt.ProtoUDP || f.DstPort != 443 {
			*f = a.flowKey(i)
			a.hashes[i] = f.Hash()
		}
		offers = append(offers, fabric.Offer{
			Flow:     a.flows[i],
			FlowHash: a.hashes[i],
			Bytes:    b,
			Packets:  b / pktSize,
		})
	}
	return offers
}

// PortMix is one (destination port, share) element of a service profile.
type PortMix struct {
	Port  uint16
	Share float64
}

// WebService generates the benign traffic of the victim service in
// Figure 2(c): HTTPS-dominated TCP traffic across a handful of ports.
// Flow keys and their hashes are cached so the per-tick path emits
// pre-hashed offers; cached keys are revalidated against the current
// fields each tick, so Target/Peers/Mix may be customized at any time.
type WebService struct {
	Target  netip.Addr
	Peers   []Peer
	RateBps float64
	// Mix is the destination-port mix; defaults to Figure 2(c)'s
	// pre-attack profile.
	Mix []PortMix

	weights []float64
	// flows/hashes are the precomputed (peer, mix) flow keys, flattened
	// peer-major, mirroring Attack's pre-hashed offers.
	flows  []netpkt.FlowKey
	hashes []uint64
}

// DefaultWebMix is the pre-attack port mix of the service in Figure 2(c):
// mostly HTTPS with HTTP, alternative HTTP and RTMP components.
func DefaultWebMix() []PortMix {
	return []PortMix{
		{Port: 443, Share: 0.55},
		{Port: 80, Share: 0.20},
		{Port: 8080, Share: 0.12},
		{Port: 1935, Share: 0.08},
		{Port: 22, Share: 0.05}, // "others"
	}
}

// NewWebService builds a benign web workload spread across peers.
func NewWebService(target netip.Addr, peers []Peer, rateBps float64, rng *stats.Rand) *WebService {
	w := &WebService{Target: target, Peers: peers, RateBps: rateBps, Mix: DefaultWebMix()}
	w.weights = make([]float64, len(peers))
	var sum float64
	for i := range peers {
		v := 0.5 + rng.Float64()
		w.weights[i] = v
		sum += v
	}
	for i := range w.weights {
		w.weights[i] /= sum
	}
	return w
}

// flowKey builds the flow of peer i's traffic to mix element j from the
// current service fields.
func (w *WebService) flowKey(i, j int) netpkt.FlowKey {
	return netpkt.FlowKey{
		SrcMAC:  w.Peers[i].MAC,
		Src:     w.Peers[i].SrcIP,
		Dst:     w.Target,
		Proto:   netpkt.ProtoTCP,
		SrcPort: 40000 + w.Mix[j].Port, // stable per-port client flow
		DstPort: w.Mix[j].Port,
	}
}

// Offers emits the service's offers for one tick.
func (w *WebService) Offers(tick int, dtSeconds float64) []fabric.Offer {
	return w.AppendOffers(nil, tick, dtSeconds)
}

// AppendOffers appends the tick's offers to dst and returns it —
// the buffer-reusing form the scenario engine drives (ixp.OfferAppender).
func (w *WebService) AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer {
	totalBytes := w.RateBps * dtSeconds / 8
	if n := len(w.Peers) * len(w.Mix); len(w.flows) != n {
		w.flows = make([]netpkt.FlowKey, n)
		w.hashes = make([]uint64, n)
	}
	offers := dst
	for i := range w.Peers {
		peerBytes := totalBytes * w.weights[i]
		for j, m := range w.Mix {
			b := peerBytes * m.Share
			if b <= 0 {
				continue
			}
			k := i*len(w.Mix) + j
			// Revalidate the cached key (field compare, no hashing).
			if f := &w.flows[k]; f.SrcMAC != w.Peers[i].MAC || f.Src != w.Peers[i].SrcIP ||
				f.Dst != w.Target || f.DstPort != m.Port ||
				f.Proto != netpkt.ProtoTCP || f.SrcPort != 40000+m.Port {
				*f = w.flowKey(i, j)
				w.hashes[k] = f.Hash()
			}
			offers = append(offers, fabric.Offer{
				Flow:     w.flows[k],
				FlowHash: w.hashes[k],
				Bytes:    b,
				Packets:  b / 900,
			})
		}
	}
	return offers
}

// MakePeers fabricates n peers with deterministic MACs and source
// addresses in 198.51.100.0/24 and 203.0.113.0/24.
func MakePeers(n int) []Peer {
	peers := make([]Peer, n)
	for i := range peers {
		var mac netpkt.MAC
		mac[0] = 0x02
		mac[1] = 0x10
		mac[2] = byte(i >> 24)
		mac[3] = byte(i >> 16)
		mac[4] = byte(i >> 8)
		mac[5] = byte(i)
		peers[i] = Peer{
			Name:  fmt.Sprintf("peer%03d", i),
			MAC:   mac,
			SrcIP: netip.AddrFrom4([4]byte{198, 51, byte(100 + i/256), byte(i % 256)}),
		}
	}
	return peers
}
