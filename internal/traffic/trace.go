package traffic

import (
	"net/netip"
	"slices"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
)

// The paper's two-week IPFIX study (Section 2.3) is not redistributable,
// so the trace generator below synthesizes blackholing-event samples
// calibrated to the published aggregates: the UDP source-port shares of
// Figure 3(a), the protocol mix (UDP 99.94% of blackholed bytes vs TCP
// 86.81% of other traffic), and the announcement-policy shares of
// Figure 3(b). The analysis pipeline (Welch's t-test, confidence
// intervals, policy classification) runs unchanged on these samples.

// PortShareProfile maps UDP source ports to their mean byte share of a
// traffic class; the residual mass is attributed to "other" ports.
type PortShareProfile struct {
	Shares map[uint16]float64
	// RelStd is the relative standard deviation of per-event shares
	// around the mean (events differ in attack composition).
	RelStd float64
}

// RTBHPortProfile is the mean port composition of blackholed traffic in
// Figure 3(a): ports 0, 123 (NTP), 389 (LDAP), 11211 (memcached),
// 53 (DNS) and 19 (chargen) dominate.
func RTBHPortProfile() PortShareProfile {
	return PortShareProfile{
		Shares: map[uint16]float64{
			0:     0.27,
			123:   0.22,
			389:   0.15,
			11211: 0.11,
			53:    0.08,
			19:    0.045,
		},
		RelStd: 0.35,
	}
}

// OtherPortProfile is the port composition of non-blackholed traffic:
// the amplification ports are a vanishing fraction.
func OtherPortProfile() PortShareProfile {
	return PortShareProfile{
		Shares: map[uint16]float64{
			0:     0.004,
			123:   0.003,
			389:   0.001,
			11211: 0.002,
			53:    0.012,
			19:    0.0005,
		},
		RelStd: 0.30,
	}
}

// ProtoMix is the (UDP, TCP, other) byte-share mix of a traffic class.
type ProtoMix struct {
	UDP, TCP, Other float64
}

// RTBHProtoMix returns Section 2.3's blackholed-traffic protocol mix.
func RTBHProtoMix() ProtoMix { return ProtoMix{UDP: 0.9994, TCP: 0.0003, Other: 0.0003} }

// OtherProtoMix returns the non-blackholed mix.
func OtherProtoMix() ProtoMix { return ProtoMix{UDP: 0.1289, TCP: 0.8681, Other: 0.0030} }

// EventSample is the port decomposition of one blackholing event (or one
// equal-duration sample of background traffic).
type EventSample struct {
	// PortShare maps each profiled UDP source port to its byte share in
	// this event; Other carries the rest.
	PortShare map[uint16]float64
	Other     float64
}

// SampleEvent draws one event from the profile: mean shares perturbed by
// lognormal-ish multiplicative noise and renormalized, preserving the
// profile's expected ordering while giving realistic event-to-event
// variance for the significance test. Ports are perturbed in ascending
// order so a seeded rng yields the same event on every run (map
// iteration order must not leak into the draw sequence).
func SampleEvent(p PortShareProfile, rng *stats.Rand) EventSample {
	shares := make(map[uint16]float64, len(p.Shares))
	var sum float64
	ports := sortedPorts(p.Shares)
	for _, port := range ports {
		noise := 1 + rng.NormFloat64()*p.RelStd
		if noise < 0.05 {
			noise = 0.05
		}
		v := p.Shares[port] * noise
		shares[port] = v
		sum += v
	}
	// Residual ("others") mass, also noisy. Subtract in sorted order
	// too: float summation order is part of determinism.
	meanOther := 1.0
	for _, port := range ports {
		meanOther -= p.Shares[port]
	}
	if meanOther < 0 {
		meanOther = 0
	}
	other := meanOther * (1 + rng.NormFloat64()*p.RelStd)
	if other < 0.01 {
		other = 0.01
	}
	total := sum + other
	for port := range shares {
		shares[port] /= total
	}
	return EventSample{PortShare: shares, Other: other / total}
}

// sortedPorts returns the profile's ports ascending.
func sortedPorts(shares map[uint16]float64) []uint16 {
	ports := make([]uint16, 0, len(shares))
	for port := range shares {
		ports = append(ports, port)
	}
	slices.Sort(ports)
	return ports
}

// SampleEvents draws n independent events.
func SampleEvents(p PortShareProfile, n int, rng *stats.Rand) []EventSample {
	out := make([]EventSample, n)
	for i := range out {
		out[i] = SampleEvent(p, rng)
	}
	return out
}

// AnnouncementPolicy classifies the export policy of one RTBH
// announcement at the route server, mirroring Figure 3(b)'s x-axis: how
// many route-server peers the prefix owner asked to blackhole.
type AnnouncementPolicy struct {
	// Label is the paper's category ("All", "All-1", ..., or an AS count
	// for announcements targeted at specific peers).
	Label string
	// Share is the fraction of blackholing announcements using this
	// policy.
	Share float64
}

// PolicyShares returns Figure 3(b)'s published distribution: 93.97% of
// announcements ask all peers to blackhole; small minorities carve out
// exceptions or target specific ASes.
func PolicyShares() []AnnouncementPolicy {
	return []AnnouncementPolicy{
		{Label: "All-18", Share: 0.0003},
		{Label: "All-5", Share: 0.0049},
		{Label: "All-4", Share: 0.0013},
		{Label: "All-1", Share: 0.0528},
		{Label: "All", Share: 0.9397},
		{Label: "20", Share: 0.0006},
		{Label: "21", Share: 0.0003},
	}
}

// SamplePolicies draws n announcement policies from the published
// distribution.
func SamplePolicies(n int, rng *stats.Rand) []AnnouncementPolicy {
	dist := PolicyShares()
	weights := make([]float64, len(dist))
	for i, d := range dist {
		weights[i] = d.Share
	}
	out := make([]AnnouncementPolicy, n)
	for i := range out {
		out[i] = dist[rng.WeightedChoice(weights)]
	}
	return out
}

// Trace is the pcap-less trace-replay generator: since the paper's
// two-week IPFIX capture is not redistributable, it replays a per-tick
// rate series whose UDP source-port composition follows sampled
// blackholing events (SampleEvent) — one sampled composition per
// segment of SegmentTicks ticks, so the replay exhibits the published
// event-to-event variance instead of a frozen mix. It implements the
// engine's Source/OfferAppender contract, which makes a recorded trace
// a drop-in replacement for a synthetic Attack in any driver.
//
// Construct with NewTrace: the sampled segments and the per-(peer,port)
// flow table are precomputed there. A Trace assembled by struct literal
// has no segments and emits nothing.
type Trace struct {
	// Target is the replayed victim address.
	Target netip.Addr
	// Peers carries the replayed traffic, weighted heavy-tailed like an
	// Attack's reflector population.
	Peers []Peer
	// RatesBps is the per-tick aggregate rate; ticks past the end reuse
	// the last value, an empty series emits nothing.
	RatesBps []float64
	// SegmentTicks is the dwell time of one sampled event composition
	// (<=1: a single composition covers the whole replay).
	SegmentTicks int

	segments []EventSample
	ports    []uint16 // profiled ports, deterministic order
	weights  []float64
	flows    []netpkt.FlowKey // (peer, port) flattened peer-major
	hashes   []uint64
}

// otherSrcPort carries the residual ("others") mass of a sampled event
// composition: a high ephemeral UDP source port outside every profiled
// amplification vector.
const otherSrcPort = 40123

// NewTrace builds a replay of len(ratesBps) ticks from the profile,
// sampling one event composition per segment with rng.
func NewTrace(p PortShareProfile, target netip.Addr, peers []Peer, ratesBps []float64, segmentTicks int, rng *stats.Rand) *Trace {
	t := &Trace{Target: target, Peers: peers, RatesBps: ratesBps, SegmentTicks: segmentTicks}
	if t.SegmentTicks < 1 {
		t.SegmentTicks = len(ratesBps)
		if t.SegmentTicks < 1 {
			t.SegmentTicks = 1
		}
	}
	nSeg := (len(ratesBps) + t.SegmentTicks - 1) / t.SegmentTicks
	if nSeg < 1 {
		nSeg = 1
	}
	t.segments = SampleEvents(p, nSeg, rng)

	// Profiled ports in deterministic (ascending) order, plus the
	// residual bucket last.
	t.ports = append(sortedPorts(p.Shares), otherSrcPort)

	t.weights = make([]float64, len(peers))
	var sum float64
	for i := range peers {
		w := rng.Pareto(1.0, 1.8)
		t.weights[i] = w
		sum += w
	}
	for i := range t.weights {
		t.weights[i] /= sum
	}

	t.flows = make([]netpkt.FlowKey, len(peers)*len(t.ports))
	t.hashes = make([]uint64, len(t.flows))
	for i := range peers {
		for j, port := range t.ports {
			k := i*len(t.ports) + j
			t.flows[k] = netpkt.FlowKey{
				SrcMAC:  peers[i].MAC,
				Src:     peers[i].SrcIP,
				Dst:     target,
				Proto:   netpkt.ProtoUDP,
				SrcPort: port,
				DstPort: 443,
			}
			t.hashes[k] = t.flows[k].Hash()
		}
	}
	return t
}

// rateAt returns the replayed aggregate rate at tick.
func (t *Trace) rateAt(tick int) float64 {
	if len(t.RatesBps) == 0 || tick < 0 {
		return 0
	}
	if tick >= len(t.RatesBps) {
		tick = len(t.RatesBps) - 1
	}
	return t.RatesBps[tick]
}

// segmentAt returns the sampled composition covering tick.
func (t *Trace) segmentAt(tick int) EventSample {
	i := 0
	if t.SegmentTicks > 0 {
		i = tick / t.SegmentTicks
	}
	if i < 0 {
		i = 0
	}
	if i >= len(t.segments) {
		i = len(t.segments) - 1
	}
	return t.segments[i]
}

// portShare returns the byte share of one profiled port (or the
// residual bucket) in the composition.
func (s EventSample) portShare(port uint16) float64 {
	if port == otherSrcPort {
		return s.Other
	}
	return s.PortShare[port]
}

// Offers emits the replay's flow-level offers for one tick.
func (t *Trace) Offers(tick int, dtSeconds float64) []fabric.Offer {
	return t.AppendOffers(nil, tick, dtSeconds)
}

// AppendOffers appends the tick's offers to dst and returns it — the
// buffer-reusing form the engine's traffic stage drives.
func (t *Trace) AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer {
	rate := t.rateAt(tick)
	if rate <= 0 || len(t.segments) == 0 || len(t.weights) != len(t.Peers) {
		return dst // zero rate, or a Trace not built by NewTrace
	}
	seg := t.segmentAt(tick)
	totalBytes := rate * dtSeconds / 8
	for i := range t.Peers {
		peerBytes := totalBytes * t.weights[i]
		if peerBytes <= 0 {
			continue
		}
		for j, port := range t.ports {
			b := peerBytes * seg.portShare(port)
			if b <= 0 {
				continue
			}
			k := i*len(t.ports) + j
			dst = append(dst, fabric.Offer{
				Flow:     t.flows[k],
				FlowHash: t.hashes[k],
				Bytes:    b,
				Packets:  b / 1200,
			})
		}
	}
	return dst
}
