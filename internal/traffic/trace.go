package traffic

import (
	"stellar/internal/stats"
)

// The paper's two-week IPFIX study (Section 2.3) is not redistributable,
// so the trace generator below synthesizes blackholing-event samples
// calibrated to the published aggregates: the UDP source-port shares of
// Figure 3(a), the protocol mix (UDP 99.94% of blackholed bytes vs TCP
// 86.81% of other traffic), and the announcement-policy shares of
// Figure 3(b). The analysis pipeline (Welch's t-test, confidence
// intervals, policy classification) runs unchanged on these samples.

// PortShareProfile maps UDP source ports to their mean byte share of a
// traffic class; the residual mass is attributed to "other" ports.
type PortShareProfile struct {
	Shares map[uint16]float64
	// RelStd is the relative standard deviation of per-event shares
	// around the mean (events differ in attack composition).
	RelStd float64
}

// RTBHPortProfile is the mean port composition of blackholed traffic in
// Figure 3(a): ports 0, 123 (NTP), 389 (LDAP), 11211 (memcached),
// 53 (DNS) and 19 (chargen) dominate.
func RTBHPortProfile() PortShareProfile {
	return PortShareProfile{
		Shares: map[uint16]float64{
			0:     0.27,
			123:   0.22,
			389:   0.15,
			11211: 0.11,
			53:    0.08,
			19:    0.045,
		},
		RelStd: 0.35,
	}
}

// OtherPortProfile is the port composition of non-blackholed traffic:
// the amplification ports are a vanishing fraction.
func OtherPortProfile() PortShareProfile {
	return PortShareProfile{
		Shares: map[uint16]float64{
			0:     0.004,
			123:   0.003,
			389:   0.001,
			11211: 0.002,
			53:    0.012,
			19:    0.0005,
		},
		RelStd: 0.30,
	}
}

// ProtoMix is the (UDP, TCP, other) byte-share mix of a traffic class.
type ProtoMix struct {
	UDP, TCP, Other float64
}

// RTBHProtoMix returns Section 2.3's blackholed-traffic protocol mix.
func RTBHProtoMix() ProtoMix { return ProtoMix{UDP: 0.9994, TCP: 0.0003, Other: 0.0003} }

// OtherProtoMix returns the non-blackholed mix.
func OtherProtoMix() ProtoMix { return ProtoMix{UDP: 0.1289, TCP: 0.8681, Other: 0.0030} }

// EventSample is the port decomposition of one blackholing event (or one
// equal-duration sample of background traffic).
type EventSample struct {
	// PortShare maps each profiled UDP source port to its byte share in
	// this event; Other carries the rest.
	PortShare map[uint16]float64
	Other     float64
}

// SampleEvent draws one event from the profile: mean shares perturbed by
// lognormal-ish multiplicative noise and renormalized, preserving the
// profile's expected ordering while giving realistic event-to-event
// variance for the significance test.
func SampleEvent(p PortShareProfile, rng *stats.Rand) EventSample {
	shares := make(map[uint16]float64, len(p.Shares))
	var sum float64
	for port, mean := range p.Shares {
		noise := 1 + rng.NormFloat64()*p.RelStd
		if noise < 0.05 {
			noise = 0.05
		}
		v := mean * noise
		shares[port] = v
		sum += v
	}
	// Residual ("others") mass, also noisy.
	meanOther := 1.0
	for _, m := range p.Shares {
		meanOther -= m
	}
	if meanOther < 0 {
		meanOther = 0
	}
	other := meanOther * (1 + rng.NormFloat64()*p.RelStd)
	if other < 0.01 {
		other = 0.01
	}
	total := sum + other
	for port := range shares {
		shares[port] /= total
	}
	return EventSample{PortShare: shares, Other: other / total}
}

// SampleEvents draws n independent events.
func SampleEvents(p PortShareProfile, n int, rng *stats.Rand) []EventSample {
	out := make([]EventSample, n)
	for i := range out {
		out[i] = SampleEvent(p, rng)
	}
	return out
}

// AnnouncementPolicy classifies the export policy of one RTBH
// announcement at the route server, mirroring Figure 3(b)'s x-axis: how
// many route-server peers the prefix owner asked to blackhole.
type AnnouncementPolicy struct {
	// Label is the paper's category ("All", "All-1", ..., or an AS count
	// for announcements targeted at specific peers).
	Label string
	// Share is the fraction of blackholing announcements using this
	// policy.
	Share float64
}

// PolicyShares returns Figure 3(b)'s published distribution: 93.97% of
// announcements ask all peers to blackhole; small minorities carve out
// exceptions or target specific ASes.
func PolicyShares() []AnnouncementPolicy {
	return []AnnouncementPolicy{
		{Label: "All-18", Share: 0.0003},
		{Label: "All-5", Share: 0.0049},
		{Label: "All-4", Share: 0.0013},
		{Label: "All-1", Share: 0.0528},
		{Label: "All", Share: 0.9397},
		{Label: "20", Share: 0.0006},
		{Label: "21", Share: 0.0003},
	}
}

// SamplePolicies draws n announcement policies from the published
// distribution.
func SamplePolicies(n int, rng *stats.Rand) []AnnouncementPolicy {
	dist := PolicyShares()
	weights := make([]float64, len(dist))
	for i, d := range dist {
		weights[i] = d.Share
	}
	out := make([]AnnouncementPolicy, n)
	for i := range out {
		out[i] = dist[rng.WeightedChoice(weights)]
	}
	return out
}
