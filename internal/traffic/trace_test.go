package traffic

import (
	"fmt"
	"math"
	"net/netip"
	"testing"

	"stellar/internal/fabric"
	"stellar/internal/stats"
)

func testTracePeers(n int) []Peer {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{
			Name:  fmt.Sprintf("AS%d", 64512+i),
			MAC:   mustMAC(i),
			SrcIP: netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
		}
	}
	return peers
}

func mustMAC(i int) (m [6]byte) {
	m[0] = 0x02
	m[5] = byte(i + 1)
	return
}

// TestTraceRateReplay: per-tick offered bytes follow the rate series
// exactly, ticks past the end hold the last rate, and an empty series
// emits nothing.
func TestTraceRateReplay(t *testing.T) {
	rates := []float64{8e6, 16e6, 0, 4e6}
	tr := NewTrace(RTBHPortProfile(), netip.MustParseAddr("100.64.0.1"),
		testTracePeers(6), rates, 2, stats.NewRand(7))
	sum := func(tick int) float64 {
		var total float64
		for _, o := range tr.Offers(tick, 1) {
			total += o.Bytes
		}
		return total
	}
	for tick, rate := range rates {
		want := rate / 8
		if got := sum(tick); math.Abs(got-want) > 1e-6*math.Max(want, 1) {
			t.Fatalf("tick %d: %v bytes, want %v", tick, got, want)
		}
	}
	// Past the end: the last rate repeats.
	if got, want := sum(9), rates[len(rates)-1]/8; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("tail tick: %v bytes, want %v", got, want)
	}
	// dt scales volume linearly.
	var dt2 float64
	for _, o := range tr.Offers(0, 2) {
		dt2 += o.Bytes
	}
	if want := 2 * rates[0] / 8; math.Abs(dt2-want) > 1e-6*want {
		t.Fatalf("dt=2: %v bytes, want %v", dt2, want)
	}

	empty := NewTrace(RTBHPortProfile(), netip.MustParseAddr("100.64.0.1"),
		testTracePeers(2), nil, 1, stats.NewRand(7))
	if got := empty.Offers(0, 1); len(got) != 0 {
		t.Fatalf("empty trace emitted %d offers", len(got))
	}
}

// TestTraceSegmentsResample: each SegmentTicks window replays one
// sampled event composition — the port mix is constant inside a segment
// and (with the profile's variance) differs across segments.
func TestTraceSegmentsResample(t *testing.T) {
	rates := make([]float64, 40)
	for i := range rates {
		rates[i] = 1e9
	}
	tr := NewTrace(RTBHPortProfile(), netip.MustParseAddr("100.64.0.1"),
		testTracePeers(4), rates, 10, stats.NewRand(3))

	portMix := func(tick int) string {
		mix := make(map[uint16]float64)
		var total float64
		for _, o := range tr.Offers(tick, 1) {
			mix[o.Flow.SrcPort] += o.Bytes
			total += o.Bytes
		}
		out := ""
		for _, port := range []uint16{0, 19, 53, 123, 389, 11211} {
			out += fmt.Sprintf("%d:%.6f ", port, mix[port]/total)
		}
		return out
	}
	if a, b := portMix(0), portMix(9); a != b {
		t.Fatalf("mix changed inside a segment:\n%s\n%s", a, b)
	}
	if a, b := portMix(0), portMix(10); a == b {
		t.Fatal("mix identical across segments (no event-to-event variance)")
	}
	// NTP is a profiled heavy hitter: its share must be material.
	var ntp, total float64
	for _, o := range tr.Offers(0, 1) {
		if o.Flow.SrcPort == 123 {
			ntp += o.Bytes
		}
		total += o.Bytes
	}
	if share := ntp / total; share < 0.02 {
		t.Fatalf("NTP share %.4f implausibly small", share)
	}
}

// TestTraceDeterministicAndReusable: identical seeds replay identically,
// AppendOffers reuses the caller's buffer, and every offer carries a
// pre-computed flow hash.
func TestTraceDeterministicAndReusable(t *testing.T) {
	build := func() *Trace {
		return NewTrace(RTBHPortProfile(), netip.MustParseAddr("100.64.0.1"),
			testTracePeers(5), []float64{5e8, 7e8}, 1, stats.NewRand(11))
	}
	a, b := build(), build()
	for tick := 0; tick < 2; tick++ {
		if fmt.Sprint(a.Offers(tick, 1)) != fmt.Sprint(b.Offers(tick, 1)) {
			t.Fatalf("tick %d: same-seed traces diverged", tick)
		}
	}

	buf := make([]fabric.Offer, 0, 256)
	out1 := a.AppendOffers(buf, 0, 1)
	out2 := a.AppendOffers(out1[:0], 0, 1)
	if &out1[0] != &out2[0] {
		t.Fatal("AppendOffers abandoned the caller's buffer")
	}
	for _, o := range out2 {
		if o.FlowHash != o.Flow.Hash() {
			t.Fatal("offer carries a stale flow hash")
		}
		if o.Flow.Dst != netip.MustParseAddr("100.64.0.1") {
			t.Fatalf("offer targets %v", o.Flow.Dst)
		}
	}
}
