package traffic

import (
	"math"
	"net/netip"
	"testing"

	"stellar/internal/netpkt"
	"stellar/internal/stats"
)

var victim = netip.MustParseAddr("100.10.10.10")

func TestVectors(t *testing.T) {
	vs := Vectors()
	if len(vs) != 6 {
		t.Fatalf("vectors: %d", len(vs))
	}
	// Figure 3(a)'s port set.
	wantPorts := map[uint16]bool{0: true, 123: true, 389: true, 11211: true, 53: true, 19: true}
	for _, v := range vs {
		if !wantPorts[v.SrcPort] {
			t.Errorf("unexpected vector port %d", v.SrcPort)
		}
	}
	if v, err := VectorByName("ntp"); err != nil || v.SrcPort != 123 {
		t.Fatalf("VectorByName: %+v %v", v, err)
	}
	if _, err := VectorByName("smurf"); err == nil {
		t.Fatal("unknown vector accepted")
	}
}

// TestVectorByNameIndex pins the map-backed lookup: every known vector
// resolves to itself and unknown names name the offender in the error.
func TestVectorByNameIndex(t *testing.T) {
	for _, want := range Vectors() {
		got, err := VectorByName(want.Name)
		if err != nil {
			t.Fatalf("VectorByName(%q): %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("VectorByName(%q) = %+v, want %+v", want.Name, got, want)
		}
	}
	_, err := VectorByName("no-such-vector")
	if err == nil {
		t.Fatal("unknown vector accepted")
	}
	if got := err.Error(); got != `traffic: unknown vector "no-such-vector"` {
		t.Fatalf("error text: %q", got)
	}
}

// TestAppendOffersReusesBuffer pins the scenario engine's zero-per-tick
// allocation contract: appending into a warmed buffer emits offers
// identical to Offers without growing the slice.
func TestAppendOffersReusesBuffer(t *testing.T) {
	rng := stats.NewRand(5)
	peers := MakePeers(16)
	attack := NewAttack(VectorNTP, victim, peers, 1e9, 0, 100, rng)
	attack.RampTicks = 0
	web := NewWebService(victim, peers[:4], 1e8, rng)

	// Warm the buffer to capacity once.
	buf := attack.AppendOffers(nil, 1, 1)
	buf = web.AppendOffers(buf, 1, 1)
	capWarm := cap(buf)

	for tick := 2; tick < 6; tick++ {
		buf = attack.AppendOffers(buf[:0], tick, 1)
		buf = web.AppendOffers(buf, tick, 1)
		if cap(buf) != capWarm {
			t.Fatalf("tick %d: buffer regrew (%d -> %d)", tick, capWarm, cap(buf))
		}
		want := append(attack.Offers(tick, 1), web.Offers(tick, 1)...)
		if len(buf) != len(want) {
			t.Fatalf("tick %d: %d offers, want %d", tick, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("tick %d offer %d: %+v != %+v", tick, i, buf[i], want[i])
			}
		}
	}
}

func TestMakePeers(t *testing.T) {
	peers := MakePeers(650)
	if len(peers) != 650 {
		t.Fatal("count")
	}
	seen := make(map[netpkt.MAC]bool)
	for _, p := range peers {
		if seen[p.MAC] {
			t.Fatalf("duplicate MAC %s", p.MAC)
		}
		seen[p.MAC] = true
		if !p.SrcIP.IsValid() {
			t.Fatal("invalid src IP")
		}
	}
}

func TestAttackRateAndRamp(t *testing.T) {
	rng := stats.NewRand(1)
	peers := MakePeers(40)
	a := NewAttack(VectorNTP, victim, peers, 1e9, 100, 700, rng)

	if a.ActiveAt(99) || !a.ActiveAt(100) || !a.ActiveAt(699) || a.ActiveAt(700) {
		t.Fatal("ActiveAt boundaries")
	}
	if len(a.Offers(50, 1)) != 0 {
		t.Fatal("offers before start")
	}
	// During ramp the rate grows; at steady state it matches RateBps.
	sum := func(tick int) float64 {
		var s float64
		for _, o := range a.Offers(tick, 1) {
			s += o.Bytes
		}
		return s * 8
	}
	early := sum(100)
	steady := sum(200)
	if early >= steady {
		t.Fatalf("ramp: early %v >= steady %v", early, steady)
	}
	if math.Abs(steady-1e9) > 1e9*0.001 {
		t.Fatalf("steady rate %v, want 1e9", steady)
	}
}

func TestAttackOffersShape(t *testing.T) {
	rng := stats.NewRand(2)
	peers := MakePeers(40)
	a := NewAttack(VectorNTP, victim, peers, 1e9, 0, 100, rng)
	offers := a.Offers(50, 1)
	if len(offers) == 0 || len(offers) > 40 {
		t.Fatalf("offer count: %d", len(offers))
	}
	macs := make(map[netpkt.MAC]bool)
	for _, o := range offers {
		if o.Flow.Proto != netpkt.ProtoUDP || o.Flow.SrcPort != 123 {
			t.Fatalf("flow signature: %+v", o.Flow)
		}
		if o.Flow.Dst != victim {
			t.Fatal("wrong target")
		}
		if o.Packets <= 0 || o.Bytes <= 0 {
			t.Fatal("non-positive offer")
		}
		macs[o.Flow.SrcMAC] = true
	}
	// Attack traffic arrives via many distinct peers (40 in Fig 3c).
	if len(macs) < 30 {
		t.Fatalf("peer diversity: %d", len(macs))
	}
}

func TestAttackDeterminism(t *testing.T) {
	peers := MakePeers(10)
	a1 := NewAttack(VectorDNS, victim, peers, 1e8, 0, 10, stats.NewRand(7))
	a2 := NewAttack(VectorDNS, victim, peers, 1e8, 0, 10, stats.NewRand(7))
	o1, o2 := a1.Offers(5, 1), a2.Offers(5, 1)
	if len(o1) != len(o2) {
		t.Fatal("length mismatch")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("offer %d differs", i)
		}
	}
}

func TestWebServiceOffers(t *testing.T) {
	rng := stats.NewRand(3)
	peers := MakePeers(5)
	w := NewWebService(victim, peers, 8e8, rng)
	offers := w.Offers(0, 1)
	var total float64
	ports := make(map[uint16]float64)
	for _, o := range offers {
		if o.Flow.Proto != netpkt.ProtoTCP {
			t.Fatalf("benign proto: %v", o.Flow.Proto)
		}
		total += o.Bytes
		ports[o.Flow.DstPort] += o.Bytes
	}
	if math.Abs(total*8-8e8) > 8e8*0.001 {
		t.Fatalf("total rate %v, want 8e8", total*8)
	}
	// HTTPS dominates (Fig 2c pre-attack).
	if ports[443] <= ports[80] || ports[443] <= ports[8080] {
		t.Fatalf("port mix: %v", ports)
	}
}

func TestSampleEventNormalized(t *testing.T) {
	rng := stats.NewRand(4)
	for i := 0; i < 100; i++ {
		ev := SampleEvent(RTBHPortProfile(), rng)
		var sum float64
		for _, s := range ev.PortShare {
			if s < 0 {
				t.Fatal("negative share")
			}
			sum += s
		}
		sum += ev.Other
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v", sum)
		}
	}
}

func TestProfilesMatchPaperAggregates(t *testing.T) {
	rng := stats.NewRand(5)
	events := SampleEvents(RTBHPortProfile(), 500, rng)
	mean := make(map[uint16]float64)
	for _, ev := range events {
		for p, s := range ev.PortShare {
			mean[p] += s / float64(len(events))
		}
	}
	// Port 0 highest, then 123, and all six ports materially present —
	// the ordering of Figure 3(a).
	if !(mean[0] > mean[123] && mean[123] > mean[389] && mean[389] > mean[11211]) {
		t.Fatalf("ordering violated: %v", mean)
	}
	for _, port := range []uint16{0, 123, 389, 11211, 53, 19} {
		if mean[port] < 0.01 {
			t.Fatalf("port %d share too small: %v", port, mean[port])
		}
	}
	// Non-blackholed traffic: the same ports are negligible.
	other := SampleEvents(OtherPortProfile(), 500, rng)
	meanOther := make(map[uint16]float64)
	for _, ev := range other {
		for p, s := range ev.PortShare {
			meanOther[p] += s / float64(len(other))
		}
	}
	for _, port := range []uint16{0, 123, 389, 11211, 19} {
		if meanOther[port] > 0.05 {
			t.Fatalf("other-traffic port %d share too large: %v", port, meanOther[port])
		}
	}
}

func TestProtoMixes(t *testing.T) {
	r := RTBHProtoMix()
	if math.Abs(r.UDP+r.TCP+r.Other-1) > 1e-9 {
		t.Fatal("RTBH mix does not sum to 1")
	}
	if r.UDP < 0.99 {
		t.Fatalf("RTBH UDP share: %v", r.UDP)
	}
	o := OtherProtoMix()
	if math.Abs(o.UDP+o.TCP+o.Other-1) > 1e-9 {
		t.Fatal("other mix does not sum to 1")
	}
	if o.TCP < 0.8 {
		t.Fatalf("other TCP share: %v", o.TCP)
	}
}

func TestPolicySharesSumToOne(t *testing.T) {
	var sum float64
	for _, p := range PolicyShares() {
		sum += p.Share
	}
	if math.Abs(sum-0.9999) > 0.001 {
		t.Fatalf("policy shares sum: %v", sum)
	}
}

func TestSamplePoliciesDistribution(t *testing.T) {
	rng := stats.NewRand(6)
	samples := SamplePolicies(20000, rng)
	counts := make(map[string]int)
	for _, s := range samples {
		counts[s.Label]++
	}
	allFrac := float64(counts["All"]) / 20000
	if allFrac < 0.92 || allFrac > 0.96 {
		t.Fatalf("All share = %v, want ~0.94", allFrac)
	}
	if counts["All-1"] == 0 {
		t.Fatal("All-1 never sampled")
	}
}

func BenchmarkAttackOffers(b *testing.B) {
	rng := stats.NewRand(1)
	a := NewAttack(VectorNTP, victim, MakePeers(60), 1e9, 0, 1<<30, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Offers(100, 1)
	}
}

func TestOffersPreHashedAndMutationSafe(t *testing.T) {
	rng := stats.NewRand(5)
	peers := MakePeers(4)
	a := NewAttack(VectorNTP, victim, peers, 1e9, 0, 100, rng)
	for _, o := range a.Offers(10, 1) {
		if o.FlowHash != o.Flow.Hash() {
			t.Fatalf("attack offer hash mismatch for %v", o.Flow)
		}
		if o.Flow.Dst != victim || o.Flow.SrcPort != VectorNTP.SrcPort {
			t.Fatalf("attack flow: %v", o.Flow)
		}
	}
	// Post-construction mutation must invalidate the cached keys.
	other := netip.MustParseAddr("203.0.113.99")
	a.Target = other
	a.Vector = VectorDNS
	for _, o := range a.Offers(11, 1) {
		if o.Flow.Dst != other || o.Flow.SrcPort != VectorDNS.SrcPort {
			t.Fatalf("mutated attack still emits stale flow: %v", o.Flow)
		}
		if o.FlowHash != o.Flow.Hash() {
			t.Fatalf("mutated attack hash mismatch for %v", o.Flow)
		}
	}

	w := NewWebService(victim, peers, 4e8, rng)
	for _, o := range w.Offers(0, 1) {
		if o.FlowHash != o.Flow.Hash() {
			t.Fatalf("web offer hash mismatch for %v", o.Flow)
		}
	}
	w.Target = other
	w.Mix = []PortMix{{Port: 8443, Share: 1}}
	for _, o := range w.Offers(1, 1) {
		if o.Flow.Dst != other || o.Flow.DstPort != 8443 {
			t.Fatalf("mutated web service still emits stale flow: %v", o.Flow)
		}
		if o.FlowHash != o.Flow.Hash() {
			t.Fatalf("mutated web hash mismatch for %v", o.Flow)
		}
	}
}
