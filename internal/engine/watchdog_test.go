package engine

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// wrapStage decorates an inner stage with test hooks, standing in for
// Config.StageWrap users like the fault injector.
type wrapStage struct {
	Stage
	onPrepare func(name string, tick int)
	onRun     func(name string, tick int)
}

func (w *wrapStage) Prepare(tick int) {
	if w.onPrepare != nil {
		w.onPrepare(w.Stage.Name(), tick)
	}
	w.Stage.Prepare(tick)
}

func (w *wrapStage) Run(ctx *Ctx, in, out *Batch) error {
	if w.onRun != nil {
		w.onRun(w.Stage.Name(), ctx.Tick)
	}
	return w.Stage.Run(ctx, in, out)
}

// TestStageWrapAppliesToEveryStage pins the decoration seam: StageWrap
// sees all five pipeline stages and its Run hook observes every tick.
func TestStageWrapAppliesToEveryStage(t *testing.T) {
	const ticks = 4
	var mu sync.Mutex
	wrapped := map[string]bool{}
	runs := map[string]int{}
	cfg := testConfig(1, ticks, 2)
	cfg.StageWrap = func(s Stage) Stage {
		mu.Lock()
		wrapped[s.Name()] = true
		mu.Unlock()
		return &wrapStage{Stage: s, onRun: func(name string, tick int) {
			mu.Lock()
			runs[name]++
			mu.Unlock()
		}}
	}
	if _, err := New(cfg).Run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"traffic", "control", "fabric", "monitor", "report"} {
		if !wrapped[name] {
			t.Errorf("stage %q never offered to StageWrap (saw %v)", name, wrapped)
		}
		if runs[name] != ticks {
			t.Errorf("stage %q ran %d times, want %d", name, runs[name], ticks)
		}
	}
}

// TestWatchdogIsolatesRunPanic: a stage panicking mid-run surfaces as
// that tick's error, with the series truncated to the folded ticks —
// the run dies loudly but the process does not.
func TestWatchdogIsolatesRunPanic(t *testing.T) {
	cfg := testConfig(1, 10, 2)
	cfg.StageWrap = func(s Stage) Stage {
		if s.Name() != "control" {
			return s
		}
		return &wrapStage{Stage: s, onRun: func(_ string, tick int) {
			if tick == 5 {
				panic("deliberate control panic")
			}
		}}
	}
	series, err := New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") ||
		!strings.Contains(err.Error(), "deliberate control panic") {
		t.Fatalf("err = %v, want isolated panic", err)
	}
	if len(series[0].Samples) >= 10 {
		t.Fatalf("series not truncated: %d samples", len(series[0].Samples))
	}
}

// TestWatchdogIsolatesPreparePanic: Prepare returns nothing, so a panic
// there is carried to the stage's next Run and surfaces as its error.
func TestWatchdogIsolatesPreparePanic(t *testing.T) {
	cfg := testConfig(1, 10, 2)
	cfg.StageWrap = func(s Stage) Stage {
		if s.Name() != "traffic" {
			return s
		}
		return &wrapStage{Stage: s, onPrepare: func(_ string, tick int) {
			if tick == 3 {
				panic("deliberate prepare panic")
			}
		}}
	}
	_, err := New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "panicked in Prepare") {
		t.Fatalf("err = %v, want Prepare panic surfaced", err)
	}
}

// TestWatchdogDetectsStalledStage: a stage that stops making progress
// past StageTimeout turns into a tick error naming the stage, instead
// of hanging the run forever.
func TestWatchdogDetectsStalledStage(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine finish
	cfg := testConfig(1, 10, 2)
	cfg.StageTimeout = 50 * time.Millisecond
	cfg.StageWrap = func(s Stage) Stage {
		if s.Name() != "fabric" {
			return s
		}
		return &wrapStage{Stage: s, onRun: func(_ string, tick int) {
			if tick == 2 {
				<-release
			}
		}}
	}
	done := make(chan error, 1)
	go func() {
		_, err := New(cfg).Run()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "stalled") ||
			!strings.Contains(err.Error(), "fabric") {
			t.Fatalf("err = %v, want fabric stall", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired; run hung")
	}
}

// TestWatchdogNoTimeoutNoGoroutines: with StageTimeout unset the guard
// must run stages inline — a full run may not leave watchdog goroutines
// behind, and with a timeout set the per-tick goroutines must drain
// when stages are healthy.
func TestWatchdogNoTimeoutNoGoroutines(t *testing.T) {
	for _, timeout := range []time.Duration{0, 5 * time.Second} {
		before := runtime.NumGoroutine()
		cfg := testConfig(2, 20, 2)
		cfg.StageTimeout = timeout
		if _, err := New(cfg).Run(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Fatalf("timeout %v: %d goroutines before run, %d after", timeout, before, after)
		}
	}
}
