package engine

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
)

// replayDump builds a four-record MRT capture with timestamps 0s, 1s,
// 2s and 10s after the epoch record.
func replayDump(t testing.TB) []byte {
	t.Helper()
	base := time.Unix(1700000000, 0)
	peerIP := netip.MustParseAddr("80.81.192.10")
	localIP := netip.MustParseAddr("80.81.192.1")
	var dump []byte
	var err error
	for i, offset := range []time.Duration{0, time.Second, 2 * time.Second, 10 * time.Second} {
		u := &bgp.Update{
			Attrs: bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65001}}},
				NextHop: peerIP,
			},
			NLRI: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix(
				[]string{"203.0.113.0/24", "198.51.100.0/24", "192.0.2.0/24", "100.64.0.0/24"}[i])}},
		}
		dump, err = bgppipe.AppendMRTMessage(dump, base.Add(offset), 65001, 6695, peerIP, localIP, u, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	return dump
}

// TestReplayDriverSchedule pins the capture-time-to-tick mapping: with
// Speed 2 and 1s ticks, capture seconds 0,1,2,10 land on ticks
// Start+0, Start+0, Start+1, Start+5 — the last clamped to MaxTick —
// grouped into one event per distinct tick, applied in stream order.
func TestReplayDriverSchedule(t *testing.T) {
	var applied []string
	d, err := NewMRTDriver(nil, bytes.NewReader(replayDump(t)), ReplayConfig{
		StartTick:   5,
		TickSeconds: 1,
		Speed:       2,
		MaxTick:     8,
		Apply: func(rec bgppipe.Record) error {
			applied = append(applied, rec.Msg.(*bgp.Update).NLRI[0].Prefix.String())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", d.Records())
	}
	if first, last := d.TickSpan(); first != 5 || last != 8 {
		t.Fatalf("TickSpan() = (%d, %d), want (5, 8)", first, last)
	}

	evs := d.Events()
	wantTicks := []int{5, 6, 8}
	wantNames := []string{"replay[2]", "replay[1]", "replay[1]"}
	if len(evs) != len(wantTicks) {
		t.Fatalf("events: %d, want %d", len(evs), len(wantTicks))
	}
	for i, ev := range evs {
		if ev.Tick != wantTicks[i] || ev.Name != wantNames[i] {
			t.Fatalf("event %d = {Tick: %d, Name: %q}, want {%d, %q}",
				i, ev.Tick, ev.Name, wantTicks[i], wantNames[i])
		}
		if err := ev.Do(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	want := []string{"203.0.113.0/24", "198.51.100.0/24", "192.0.2.0/24", "100.64.0.0/24"}
	if len(applied) != len(want) {
		t.Fatalf("applied %d records, want %d", len(applied), len(want))
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("apply order diverged at %d: %q, want %q", i, applied[i], want[i])
		}
	}

	// A baseless replay driver has no data-plane workload of its own.
	if v := d.Victims(); v != nil {
		t.Fatalf("Victims() = %v, want nil", v)
	}
	if out := d.AppendOffers(0, nil, 0, 1); out != nil {
		t.Fatalf("AppendOffers grew: %v", out)
	}
	if d.SerialGen() {
		t.Fatal("SerialGen() = true with nil base")
	}
}

// TestReplayDriverEmpty pins the degenerate cases: an empty capture
// schedules nothing, and a missing Apply is a construction error.
func TestReplayDriverEmpty(t *testing.T) {
	d, err := NewMRTDriver(nil, bytes.NewReader(nil), ReplayConfig{
		TickSeconds: 1,
		Apply:       func(bgppipe.Record) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Records() != 0 || len(d.Events()) != 0 {
		t.Fatalf("empty capture scheduled %d records, %d events", d.Records(), len(d.Events()))
	}
	if first, last := d.TickSpan(); first != -1 || last != -1 {
		t.Fatalf("TickSpan() = (%d, %d), want (-1, -1)", first, last)
	}

	if _, err := NewMRTDriver(nil, bytes.NewReader(nil), ReplayConfig{TickSeconds: 1}); err == nil {
		t.Fatal("nil Apply accepted")
	}
	if _, err := NewMRTDriver(nil, bytes.NewReader(nil), ReplayConfig{
		Apply: func(bgppipe.Record) error { return nil },
	}); err == nil {
		t.Fatal("zero TickSeconds accepted")
	}
}

// TestRISDriver runs the RIS-live path end to end: a JSON capture line
// scheduled and applied.
func TestRISDriver(t *testing.T) {
	const line = `{"type":"ris_message","data":{"timestamp":1700000000,"peer":"80.81.192.10","peer_asn":"65001","type":"UPDATE","path":[65001],"origin":"igp","announcements":[{"next_hop":"80.81.192.10","prefixes":["203.0.113.0/24"]}]}}`
	var applied int
	d, err := NewRISDriver(nil, strings.NewReader(line), ReplayConfig{
		TickSeconds: 1,
		Apply:       func(bgppipe.Record) error { applied++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Records() != 1 {
		t.Fatalf("Records() = %d, want 1", d.Records())
	}
	for _, ev := range d.Events() {
		if err := ev.Do(); err != nil {
			t.Fatal(err)
		}
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
}
