package engine

import (
	"errors"
	"fmt"
	"io"
	"time"

	"stellar/internal/bgppipe"
	"stellar/internal/fabric"
)

// ReplayConfig parameterizes a control-plane replay driver: how a
// capture's timestamps map onto the engine tick clock, and what to do
// with each replayed record.
type ReplayConfig struct {
	// StartTick is the engine tick the capture's first record lands on.
	StartTick int
	// TickSeconds is the engine tick length (must match the run's
	// Config). Required.
	TickSeconds float64
	// Speed compresses capture time: Speed capture-seconds play per
	// simulated second (default 1; 3600 replays an hour of routing
	// churn inside one simulated minute... per 3600/60).
	Speed float64
	// MaxTick clamps the schedule like traffic.Trace clamps its rate
	// series: records mapping past MaxTick land on MaxTick instead of
	// being dropped, so a capture longer than the run still applies in
	// full. 0 leaves the schedule unclamped.
	MaxTick int
	// Apply consumes one record on the control spine at its scheduled
	// tick (typically bgppipe.FeedRouteServer). Required.
	Apply func(rec bgppipe.Record) error
}

// ReplayDriver drives a run from a captured BGP stream: the base
// driver keeps supplying the data-plane workload (victims and their
// per-tick offers), while the capture's records are resampled onto the
// tick clock and applied as control-plane events — real routing churn
// and synthetic attack traffic on one engine timeline.
//
// Built by NewMRTDriver / NewRISDriver / NewReplayDriver; the whole
// stream is scheduled up front (the engine reads a driver's events
// once), so construction consumes the source.
type ReplayDriver struct {
	base   Driver
	events []Event

	records             int
	firstTick, lastTick int
}

// NewReplayDriver schedules every record of src onto the tick clock.
// base supplies the victims and data-plane offers (engine.Run requires
// at least one victim); the capture's records become the driver's
// events.
func NewReplayDriver(base Driver, src bgppipe.RecordSource, cfg ReplayConfig) (*ReplayDriver, error) {
	if cfg.Apply == nil {
		return nil, errors.New("engine: ReplayConfig.Apply is nil")
	}
	if cfg.TickSeconds <= 0 {
		return nil, errors.New("engine: ReplayConfig.TickSeconds must be positive")
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	d := &ReplayDriver{base: base, firstTick: -1}

	// Records grouped per tick: one event applies the tick's whole
	// batch, keeping the event list proportional to distinct ticks.
	var (
		t0        time.Time
		batch     []bgppipe.Record
		batchTick int
	)
	apply := cfg.Apply
	flush := func() {
		if len(batch) == 0 {
			return
		}
		recs := batch
		tick := batchTick
		d.events = append(d.events, Event{
			Tick: tick,
			Name: fmt.Sprintf("replay[%d]", len(recs)),
			Do: func() error {
				for _, rec := range recs {
					if err := apply(rec); err != nil {
						return err
					}
				}
				return nil
			},
		})
		batch = nil
	}
	for {
		rec, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if d.records == 0 {
			t0 = rec.Time
		}
		d.records++
		tick := cfg.StartTick
		if elapsed := rec.Time.Sub(t0).Seconds(); elapsed > 0 {
			tick += int(elapsed / (speed * cfg.TickSeconds))
		}
		if tick < cfg.StartTick {
			tick = cfg.StartTick // out-of-order or pre-epoch timestamps
		}
		if cfg.MaxTick > 0 && tick > cfg.MaxTick {
			tick = cfg.MaxTick
		}
		if d.firstTick < 0 {
			d.firstTick = tick
		}
		if tick != batchTick {
			flush()
			batchTick = tick
		}
		d.lastTick = tick
		batch = append(batch, rec)
	}
	flush()
	return d, nil
}

// NewMRTDriver replays an MRT dump (RFC 6396) on top of base's
// data-plane workload.
func NewMRTDriver(base Driver, r io.Reader, cfg ReplayConfig) (*ReplayDriver, error) {
	return NewReplayDriver(base, bgppipe.NewMRTScanner(r), cfg)
}

// NewRISDriver replays a RIS-live JSON capture on top of base's
// data-plane workload.
func NewRISDriver(base Driver, r io.Reader, cfg ReplayConfig) (*ReplayDriver, error) {
	return NewReplayDriver(base, bgppipe.NewRISScanner(r), cfg)
}

// Records reports how many capture records were scheduled.
func (d *ReplayDriver) Records() int { return d.records }

// TickSpan reports the first and last tick carrying replayed records
// (-1, -1 for an empty capture).
func (d *ReplayDriver) TickSpan() (first, last int) {
	if d.records == 0 {
		return -1, -1
	}
	return d.firstTick, d.lastTick
}

// Victims implements Driver.
func (d *ReplayDriver) Victims() []VictimSpec {
	if d.base == nil {
		return nil
	}
	return d.base.Victims()
}

// AppendOffers implements Driver.
func (d *ReplayDriver) AppendOffers(v int, dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	if d.base == nil {
		return dst
	}
	return d.base.AppendOffers(v, dst, tick, dt)
}

// SerialGen implements SerialGenerator, deferring to the base driver.
func (d *ReplayDriver) SerialGen() bool {
	if s, ok := d.base.(SerialGenerator); ok {
		return s.SerialGen()
	}
	return false
}

// Events implements Eventful: the base driver's own events followed by
// the replay schedule (the engine orders by tick, stably).
func (d *ReplayDriver) Events() []Event {
	var evs []Event
	if e, ok := d.base.(Eventful); ok {
		evs = append(evs, e.Events()...)
	}
	return append(evs, d.events...)
}
