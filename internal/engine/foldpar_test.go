package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
)

// foldRecorder decorates a stage to log every Fold(tick) — the probe
// for the abort contract. As a StageWrap decoration it hides
// ParallelFold, so runs under it take the serial fold path; the
// parallel path is pinned by the sample-based tests below.
type foldRecorder struct {
	Stage
	mu    *sync.Mutex
	folds *[]string
	fail  func(tick int) error // optional Run failure injection
}

func (r *foldRecorder) Fold(tick int) {
	r.mu.Lock()
	*r.folds = append(*r.folds, fmt.Sprintf("%s:%d", r.Stage.Name(), tick))
	r.mu.Unlock()
	r.Stage.Fold(tick)
}

func (r *foldRecorder) Run(ctx *Ctx, in, out *Batch) error {
	if r.fail != nil {
		if err := r.fail(ctx.Tick); err != nil {
			return err
		}
	}
	return r.Stage.Run(ctx, in, out)
}

// TestEngineNoFoldPastErrorTick is the regression for the abort
// contract at every depth: once a run fails at tick E — on the spine or
// on the fold side — no stage Fold ever runs for a tick >= E, while
// backlog ticks below E still fold (the partial-samples contract).
func TestEngineNoFoldPastErrorTick(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		check := func(t *testing.T, folds []string, errTick int) {
			t.Helper()
			for _, f := range folds {
				var tick int
				name := f[:strings.IndexByte(f, ':')]
				fmt.Sscanf(f[strings.IndexByte(f, ':')+1:], "%d", &tick)
				if (name == "monitor" || name == "report") && tick >= errTick {
					t.Fatalf("depth %d: fold-side Fold(%d) ran at or past error tick %d\nfolds: %v", depth, tick, errTick, folds)
				}
			}
		}
		wrap := func(cfg *Config) (*sync.Mutex, *[]string) {
			mu := &sync.Mutex{}
			folds := &[]string{}
			cfg.StageWrap = func(s Stage) Stage {
				return &foldRecorder{Stage: s, mu: mu, folds: folds}
			}
			return mu, folds
		}

		t.Run(fmt.Sprintf("spine-stage-error/depth=%d", depth), func(t *testing.T) {
			cfg := testConfig(2, 12, depth)
			plane := newFakePlane()
			plane.failAtTick = 6
			cfg.DataPlane = plane
			_, folds := wrap(&cfg)
			series, err := New(cfg).Run()
			if err == nil || !strings.Contains(err.Error(), "fabric stage at tick 6") {
				t.Fatalf("err = %v", err)
			}
			check(t, *folds, 6)
			if len(series[0].Samples) != 6 {
				t.Fatalf("%d samples, want 6", len(series[0].Samples))
			}
		})

		t.Run(fmt.Sprintf("event-error/depth=%d", depth), func(t *testing.T) {
			cfg := testConfig(2, 12, depth)
			cfg.Events = []Event{{Tick: 4, Name: "boom", Do: func() error {
				return fmt.Errorf("deliberate")
			}}}
			_, folds := wrap(&cfg)
			series, err := New(cfg).Run()
			if err == nil || !strings.Contains(err.Error(), "boom") {
				t.Fatalf("err = %v", err)
			}
			check(t, *folds, 4)
			if len(series[0].Samples) != 4 {
				t.Fatalf("%d samples, want 4", len(series[0].Samples))
			}
		})

		t.Run(fmt.Sprintf("fold-stage-error/depth=%d", depth), func(t *testing.T) {
			cfg := testConfig(2, 12, depth)
			mu := &sync.Mutex{}
			folds := &[]string{}
			cfg.StageWrap = func(s Stage) Stage {
				r := &foldRecorder{Stage: s, mu: mu, folds: folds}
				if s.Name() == "monitor" {
					r.fail = func(tick int) error {
						if tick == 5 {
							return fmt.Errorf("deliberate fold failure")
						}
						return nil
					}
				}
				return r
			}
			series, err := New(cfg).Run()
			if err == nil || !strings.Contains(err.Error(), "monitor stage at tick 5") {
				t.Fatalf("err = %v", err)
			}
			check(t, *folds, 5)
			if len(series[0].Samples) != 5 {
				t.Fatalf("%d samples, want 5", len(series[0].Samples))
			}
		})
	}
}

// TestEngineParallelFoldErrors drives the parallel fold path (multiple
// workers, several victims, Depth > 1) into each failure mode and pins
// the same contract through the observable output: the series holds
// exactly the ticks below the error tick, in order.
func TestEngineParallelFoldErrors(t *testing.T) {
	for _, depth := range []int{2, 4, 8} {
		depth := depth
		checkSeries(t, fmt.Sprintf("spine-stage-error/depth=%d", depth), func(t *testing.T) ([]VictimSeries, error) {
			cfg := testConfig(3, 12, depth)
			cfg.Workers = 4
			plane := newFakePlane()
			plane.failAtTick = 6
			cfg.DataPlane = plane
			return New(cfg).Run()
		}, "fabric stage at tick 6", 6)

		checkSeries(t, fmt.Sprintf("event-error/depth=%d", depth), func(t *testing.T) ([]VictimSeries, error) {
			cfg := testConfig(3, 12, depth)
			cfg.Workers = 4
			cfg.Events = []Event{{Tick: 4, Name: "boom", Do: func() error {
				return fmt.Errorf("deliberate")
			}}}
			return New(cfg).Run()
		}, "boom", 4)

		checkSeries(t, fmt.Sprintf("fold-panic/depth=%d", depth), func(t *testing.T) ([]VictimSeries, error) {
			// MemberFilter runs inside the per-victim fold units on the
			// pool; a panic there must surface as a monitor-stage tick
			// error, not kill the process. The panicking call count puts
			// the error around tick 4 (3 victims x 1 peer per tick); the
			// exact tick is read back from the error message.
			cfg := testConfig(3, 12, depth)
			cfg.Workers = 4
			var calls atomic.Int64
			cfg.MemberFilter = func(netpkt.MAC) bool {
				if calls.Add(1) > 3*4 {
					panic("deliberate fold panic")
				}
				return true
			}
			return New(cfg).Run()
		}, "monitor stage at tick", -1)
	}
}

// checkSeries runs the case and asserts the series is exactly the ticks
// below the error tick. errTick < 0 parses the tick from the error
// message ("at tick %d") instead of pinning it.
func checkSeries(t *testing.T, name string, run func(*testing.T) ([]VictimSeries, error), wantErr string, errTick int) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		series, err := run(t)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("err = %v", err)
		}
		if errTick < 0 {
			i := strings.Index(err.Error(), "at tick ")
			if i < 0 {
				t.Fatalf("error has no tick: %v", err)
			}
			fmt.Sscanf(err.Error()[i+len("at tick "):], "%d", &errTick)
		}
		for v := range series {
			if len(series[v].Samples) > errTick {
				t.Fatalf("victim %d: %d samples past error tick %d (err %v)", v, len(series[v].Samples), errTick, err)
			}
			for i, s := range series[v].Samples {
				if s.Tick != i {
					t.Fatalf("victim %d sample %d has tick %d", v, i, s.Tick)
				}
			}
		}
	})
}

// TestEngineSharedMonitorRejected: one collector under two victims
// would see two merge-horizon writers once per-victim folds overlap, so
// the engine rejects the configuration up front.
func TestEngineSharedMonitorRejected(t *testing.T) {
	cfg := testConfig(2, 4, 2)
	specs := cfg.Driver.Victims()
	shared := flowmon.NewCollector()
	specs[0].Monitor = shared
	specs[1].Monitor = shared
	cfg.Driver = NewSourcesDriver(specs, [][]Source{{newFlowSource(0)}, {newFlowSource(1)}})
	if _, err := New(cfg).Run(); err == nil || !strings.Contains(err.Error(), "shares its monitor") {
		t.Fatalf("shared monitor accepted: %v", err)
	}
}

// TestEngineStageProfile: Config.Profile attaches one shared profile to
// every series, with every stage accounted and the tick counter run to
// completion — on the parallel fold path the monitor stage counts one
// run per victim per tick.
func TestEngineStageProfile(t *testing.T) {
	const victims, ticks = 3, 20
	cfg := testConfig(victims, ticks, 4)
	cfg.Workers = 4
	cfg.Profile = true
	series, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	prof := series[0].Profile
	if prof == nil {
		t.Fatal("Profile not attached")
	}
	for v := range series {
		if series[v].Profile != prof {
			t.Fatalf("victim %d has a different profile pointer", v)
		}
	}
	if prof.Ticks != ticks {
		t.Fatalf("Ticks = %d, want %d", prof.Ticks, ticks)
	}
	want := []string{"control", "traffic", "fabric", "monitor", "report"}
	if len(prof.Stages) != len(want) {
		t.Fatalf("%d stage slots, want %d", len(prof.Stages), len(want))
	}
	for i, st := range prof.Stages {
		if st.Name != want[i] {
			t.Fatalf("stage %d is %q, want %q", i, st.Name, want[i])
		}
		if st.Runs == 0 {
			t.Fatalf("stage %q counted no runs", st.Name)
		}
	}
	if got := prof.Stages[profSlotMonitor].Runs; got != victims*ticks {
		t.Fatalf("monitor runs = %d, want %d per-victim units", got, victims*ticks)
	}
	if got := prof.Stages[profSlotControl].Runs; got != ticks {
		t.Fatalf("control runs = %d, want %d", got, ticks)
	}

	// Profiling off: no profile allocated, series carry nil.
	cfg2 := testConfig(1, 2, 1)
	series2, err := New(cfg2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if series2[0].Profile != nil {
		t.Fatal("Profile attached without Config.Profile")
	}
}

// TestEngineDeepDepthEquivalence extends the depth sweep through the
// parallel fold path: with a multi-worker pool, depths 2/4/8 must
// reproduce the fully serial depth-1 output byte for byte.
func TestEngineDeepDepthEquivalence(t *testing.T) {
	const victims, ticks = 4, 50
	run := func(depth, workers int) []VictimSeries {
		t.Helper()
		cfg := testConfig(victims, ticks, depth)
		cfg.Workers = workers
		series, err := New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	want := run(1, 1)
	for _, depth := range []int{2, 4, 8} {
		got := run(depth, 4)
		for v := range want {
			if len(got[v].Samples) != len(want[v].Samples) {
				t.Fatalf("depth %d victim %d: %d samples, want %d",
					depth, v, len(got[v].Samples), len(want[v].Samples))
			}
			for i := range want[v].Samples {
				if got[v].Samples[i] != want[v].Samples[i] {
					t.Fatalf("depth %d victim %d tick %d: %+v != %+v",
						depth, v, i, got[v].Samples[i], want[v].Samples[i])
				}
			}
			gb, gv := got[v].Monitor.Series()
			wb, wv := want[v].Monitor.Series()
			if fmt.Sprint(gb, gv) != fmt.Sprint(wb, wv) {
				t.Fatalf("depth %d victim %d: monitor series diverged", depth, v)
			}
		}
	}
}
