package engine

import (
	"fmt"
	"time"
)

// guardStage is the engine's stage watchdog: it isolates a panicking
// stage into a tick error (instead of crashing the run) and, when a
// timeout is set, detects a stalled stage — a Run that stops making
// progress hangs the whole pipeline, so the watchdog turns it into a
// tick error the engine aborts on. A timed-out stage's goroutine is
// abandoned (there is no way to cancel arbitrary stage code); the run
// is over at that point, so nothing reuses its batch.
type guardStage struct {
	inner   Stage
	timeout time.Duration
	// pending carries a panic from Prepare/Fold (which return nothing)
	// to the next Run, where it surfaces as the tick's error.
	pending error
}

// guard wraps every stage with the watchdog. wrap (Config.StageWrap)
// applies first, so user decorations run inside the guard.
func guard(stages []Stage, wrap func(Stage) Stage, timeout time.Duration) []Stage {
	out := make([]Stage, len(stages))
	for i, s := range stages {
		if wrap != nil {
			s = wrap(s)
		}
		out[i] = &guardStage{inner: s, timeout: timeout}
	}
	return out
}

func (g *guardStage) Name() string { return g.inner.Name() }

func (g *guardStage) Prepare(tick int) {
	defer g.recoverInto("Prepare", tick)
	g.inner.Prepare(tick)
}

func (g *guardStage) Fold(tick int) {
	defer g.recoverInto("Fold", tick)
	g.inner.Fold(tick)
}

func (g *guardStage) recoverInto(phase string, tick int) {
	if r := recover(); r != nil && g.pending == nil {
		g.pending = fmt.Errorf("%s panicked in %s at tick %d: %v", g.inner.Name(), phase, tick, r)
	}
}

func (g *guardStage) Run(ctx *Ctx, in, out *Batch) error {
	if err := g.pending; err != nil {
		g.pending = nil
		return err
	}
	if g.timeout <= 0 {
		return g.run(ctx, in, out)
	}
	done := make(chan error, 1)
	go func() {
		done <- g.run(ctx, in, out)
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("%s stalled: no progress within %v (goroutine abandoned)", g.inner.Name(), g.timeout)
	}
}

// run executes the inner stage with panic isolation.
func (g *guardStage) run(ctx *Ctx, in, out *Batch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s panicked: %v", g.inner.Name(), r)
		}
	}()
	return g.inner.Run(ctx, in, out)
}

// parallelFold reports whether the guarded stage (after any StageWrap
// decoration) still decomposes per victim. A wrapper that hides the
// interface demotes the engine to the serial fold path — fault
// injectors see exactly the stage graph they decorated.
func (g *guardStage) parallelFold() (ParallelFold, bool) {
	pf, ok := g.inner.(ParallelFold)
	return pf, ok
}

// runVictim executes one per-victim fold unit with panic isolation; it
// runs on a pool worker, so a panicking unit must surface as a tick
// error instead of killing the process.
func (g *guardStage) runVictim(pf ParallelFold, ctx *Ctx, b *Batch, victim int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s panicked on victim %d: %v", g.inner.Name(), victim, r)
		}
	}()
	return pf.RunVictim(ctx, b, victim)
}
