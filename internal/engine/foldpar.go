package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stellar/internal/fabric"
)

// This file is the engine's parallel fold side: the scheduler that fans
// the monitor stage's per-victim units (ParallelFold.RunVictim) across
// the shared fabric.Pool while keeping everything the determinism
// contract needs ordered.
//
// Shape: each victim owns a FIFO lane. The dispatcher takes batches off
// the spine's work queue in tick order and appends each batch to every
// lane; an idle lane is kicked onto the pool with Pool.Submit, and the
// submitted unit drains the lane's backlog before retiring. Lanes give
// exactly the ordering the collectors require — victim v's tick T folds
// before its tick T+1 (monotonic merge horizons) — while distinct
// victims fold concurrently, across ticks as well as within one. The
// completer consumes ticks in spine order, waits for each tick's lanes,
// then appends the report and retires the batch: report append and
// Fold stay tick-ordered on one goroutine, so the fold side's output is
// byte-identical to the serial path at any Depth.
//
// No goroutine-per-lane: lanes run as pool submissions, so a federation
// of engines sharing one pool still fans all fold work inside the one
// worker budget.

// foldTick tracks one batch crossing the parallel fold side: pending
// counts the victims not yet folded; done closes when the last lane
// finishes the tick.
type foldTick struct {
	b       *Batch
	pending atomic.Int32
	done    chan struct{}
}

// foldLane is one victim's FIFO backlog. head/q form a queue whose
// storage is reclaimed whenever the lane drains (backlog is bounded by
// Depth, so q never grows past it).
type foldLane struct {
	q    []*foldTick
	head int
	busy bool
}

// foldScheduler wires the dispatcher, the lanes, and the completer for
// one run.
type foldScheduler struct {
	eng     *Engine
	pool    *fabric.Pool
	monitor *guardStage  // guarded monitor stage
	pf      ParallelFold // its per-victim decomposition
	report  Stage        // guarded report stage
	folds   []Stage      // fold stages in order, for Fold(tick)
	prof    *StageProfile

	mu      sync.Mutex
	lanes   []foldLane
	laneFns []func(worker int) // prebuilt Submit closures, one per lane

	// inflight carries ticks from dispatcher to completer in spine
	// order. Capacity = Depth: at most Depth batches circulate, so the
	// send never blocks.
	inflight chan *foldTick
}

func newFoldScheduler(e *Engine, pool *fabric.Pool, monitor *guardStage, pf ParallelFold, report Stage, folds []Stage, prof *StageProfile, nVictims, depth int) *foldScheduler {
	s := &foldScheduler{
		eng:      e,
		pool:     pool,
		monitor:  monitor,
		pf:       pf,
		report:   report,
		folds:    folds,
		prof:     prof,
		lanes:    make([]foldLane, nVictims),
		laneFns:  make([]func(int), nVictims),
		inflight: make(chan *foldTick, depth),
	}
	for v := range s.laneFns {
		v := v
		s.laneFns[v] = func(int) { s.runLane(v) }
	}
	return s
}

// dispatch fans each spine batch across the victim lanes. It runs on
// its own goroutine and closes inflight when the spine closes work.
func (s *foldScheduler) dispatch(work <-chan *Batch) {
	defer close(s.inflight)
	kick := make([]int, 0, len(s.lanes))
	for b := range work {
		ft := &foldTick{b: b, done: make(chan struct{})}
		ft.pending.Store(int32(len(s.lanes)))
		s.inflight <- ft
		kick = kick[:0]
		s.mu.Lock()
		for v := range s.lanes {
			ln := &s.lanes[v]
			ln.q = append(ln.q, ft)
			if !ln.busy {
				ln.busy = true
				kick = append(kick, v)
			}
		}
		s.mu.Unlock()
		// Submits happen outside the lane lock: a full pool briefly
		// blocks the send, and lane workers need the lock to retire.
		for _, v := range kick {
			s.pool.Submit(s.laneFns[v])
		}
	}
}

// runLane executes on a pool worker: it drains victim v's backlog and
// retires. A tick at or past the run's first error is skipped but still
// counted down, so the completer never waits on a dead tick.
func (s *foldScheduler) runLane(v int) {
	for {
		s.mu.Lock()
		ln := &s.lanes[v]
		if ln.head == len(ln.q) {
			ln.q = ln.q[:0]
			ln.head = 0
			ln.busy = false
			s.mu.Unlock()
			return
		}
		ft := ln.q[ln.head]
		ln.head++
		s.mu.Unlock()
		tick := ft.b.ctx.Tick
		if !s.eng.errBefore(tick) {
			t0 := s.prof.now()
			err := s.monitor.runVictim(s.pf, &ft.b.ctx, ft.b, v)
			s.prof.addNs(profSlotMonitor, s.prof.since(t0))
			if err != nil {
				s.eng.setErr(tick, fmt.Errorf("engine: %s stage at tick %d: %w", s.monitor.Name(), tick, err))
			}
		}
		if ft.pending.Add(-1) == 0 {
			close(ft.done)
		}
	}
}

// complete consumes ticks in spine order: wait for the tick's lanes,
// append the report, run the Folds, recycle the batch. It runs on its
// own goroutine and is the only writer of report state — tick order on
// the way out is what keeps the series byte-identical to a serial run.
func (s *foldScheduler) complete(free chan<- *Batch) {
	for ft := range s.inflight {
		t0 := s.prof.now()
		<-ft.done
		s.prof.addFoldWait(s.prof.since(t0))
		b := ft.b
		tick := b.ctx.Tick
		if !s.eng.errBefore(tick) {
			rt := s.prof.now()
			err := s.report.Run(&b.ctx, b, b)
			s.prof.addNs(profSlotReport, s.prof.since(rt))
			if err != nil {
				s.eng.setErr(tick, fmt.Errorf("engine: %s stage at tick %d: %w", s.report.Name(), tick, err))
			}
		}
		if !s.eng.errBefore(tick) {
			for _, st := range s.folds {
				st.Fold(tick)
			}
		}
		free <- b
	}
}
