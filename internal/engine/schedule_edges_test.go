package engine

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
)

// TestPulseDriverPeriodEdges pins the degenerate pulse periods: zero
// and one-tick on/off windows, where an off-by-one in the modulo
// arithmetic would silently turn a pulse train solid or dark.
func TestPulseDriverPeriodEdges(t *testing.T) {
	cases := []struct {
		name     string
		on, off  int
		start    int
		active   []int
		inactive []int
	}{
		{"one-on one-off alternates every tick", 1, 1, 0,
			[]int{0, 2, 4, 100}, []int{1, 3, 5, 101}},
		{"one-tick period with offset start", 1, 1, 7,
			[]int{7, 9, 11}, []int{0, 6, 8, 10}},
		{"zero on-window never fires", 0, 5, 0,
			nil, []int{0, 1, 4, 5, 99}},
		{"zero off-window is solid once started", 3, 0, 2,
			[]int{2, 3, 4, 5, 999}, []int{0, 1}},
		{"zero period never fires", 0, 0, 0,
			nil, []int{0, 1, 2}},
		{"one-on large-off single-tick spikes", 1, 9, 10,
			[]int{10, 20, 30}, []int{9, 11, 19, 29}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := NewPulseDriver("v", &countSource{id: 1, n: 1}, c.on, c.off, c.start)
			for _, tick := range c.active {
				if got := len(d.AppendOffers(0, nil, tick, 1)); got != 1 {
					t.Errorf("tick %d: %d offers, want 1 (active)", tick, got)
				}
			}
			for _, tick := range c.inactive {
				if got := len(d.AppendOffers(0, nil, tick, 1)); got != 0 {
					t.Errorf("tick %d: %d offers, want 0 (inactive)", tick, got)
				}
			}
		})
	}
}

// TestCarpetDriverRotationWrap pins the prefix-rotation wrap: after the
// last victim the carpet must return to victim 0 on the exact tick, for
// one-tick and multi-tick dwells, arbitrarily deep into the window.
func TestCarpetDriverRotationWrap(t *testing.T) {
	specs := []VictimSpec{{Port: "a"}, {Port: "b"}, {Port: "c"}}
	attacks := []Source{&countSource{id: 1, n: 1}, &countSource{id: 2, n: 1}, &countSource{id: 3, n: 1}}
	cases := []struct {
		name       string
		rotate     int
		start, end int
		tick, want int
	}{
		{"first wrap tick", 2, 0, 0, 6, 0},
		{"last tick before wrap", 2, 0, 0, 5, 2},
		{"one-tick dwell wraps every len ticks", 1, 0, 0, 3, 0},
		{"one-tick dwell mid-cycle", 1, 0, 0, 5, 2},
		{"deep into the window", 3, 0, 0, 904, 1},
		{"wrap with offset start", 2, 10, 0, 16, 0},
		{"offset start, pre-window", 2, 10, 0, 9, -1},
		{"end tick is exclusive", 1, 0, 12, 12, -1},
		{"last in-window tick", 1, 0, 12, 11, 2},
		{"rotate clamps to one", 0, 0, 0, 4, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := NewCarpetDriver(specs, attacks, c.rotate)
			d.StartTick = c.start
			d.EndTick = c.end
			if got := d.CurrentVictim(c.tick); got != c.want {
				t.Fatalf("CurrentVictim(%d) = %d, want %d", c.tick, got, c.want)
			}
			// The offer path must agree with the arithmetic: exactly the
			// current victim receives its attack source's offer.
			for v := range specs {
				want := 0
				if v == c.want {
					want = 1
				}
				if got := len(d.AppendOffers(v, nil, c.tick, 1)); got != want {
					t.Errorf("victim %d tick %d: %d offers, want %d", v, c.tick, got, want)
				}
			}
		})
	}
}

// replayTimes builds a one-prefix-per-record MRT capture with the given
// offsets from a fixed base time.
func replayTimes(t testing.TB, offsets []time.Duration) []byte {
	t.Helper()
	base := time.Unix(1700000000, 0)
	peerIP := netip.MustParseAddr("80.81.192.10")
	localIP := netip.MustParseAddr("80.81.192.1")
	var dump []byte
	var err error
	for _, off := range offsets {
		u := &bgp.Update{
			Attrs: bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65001}}},
				NextHop: peerIP,
			},
			NLRI: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("203.0.113.0/24")}},
		}
		dump, err = bgppipe.AppendMRTMessage(dump, base.Add(off), 65001, 6695, peerIP, localIP, u, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	return dump
}

// TestReplayDriverClampAndSpeedEdges pins the capture-time resampling
// at its boundaries: MaxTick clamps without dropping records, Speed
// scales the elapsed-time divisor exactly at tick boundaries, and
// non-positive Speed falls back to 1.
func TestReplayDriverClampAndSpeedEdges(t *testing.T) {
	sec := func(ds ...float64) []time.Duration {
		out := make([]time.Duration, len(ds))
		for i, d := range ds {
			out[i] = time.Duration(d * float64(time.Second))
		}
		return out
	}
	cases := []struct {
		name      string
		offsets   []time.Duration
		cfg       ReplayConfig
		wantTicks []int // scheduled tick per record, in stream order
	}{
		{"max tick clamps tail records", sec(0, 5, 50, 500),
			ReplayConfig{TickSeconds: 1, MaxTick: 10},
			[]int{0, 5, 10, 10}},
		{"zero max tick leaves schedule unclamped", sec(0, 500),
			ReplayConfig{TickSeconds: 1},
			[]int{0, 500}},
		{"clamp composes with start tick", sec(0, 100),
			ReplayConfig{TickSeconds: 1, StartTick: 4, MaxTick: 7},
			[]int{4, 7}},
		{"speed 2 halves the tick span", sec(0, 1, 2, 10),
			ReplayConfig{TickSeconds: 1, Speed: 2},
			[]int{0, 0, 1, 5}},
		{"exact boundary lands on the later tick", sec(0, 4),
			ReplayConfig{TickSeconds: 2, Speed: 2},
			[]int{0, 1}},
		{"just under the boundary stays on the earlier tick", sec(0, 3.999),
			ReplayConfig{TickSeconds: 2, Speed: 2},
			[]int{0, 0}},
		{"slow-motion speed stretches the capture", sec(0, 1, 2),
			ReplayConfig{TickSeconds: 1, Speed: 0.5},
			[]int{0, 2, 4}},
		{"non-positive speed falls back to real time", sec(0, 3),
			ReplayConfig{TickSeconds: 1, Speed: -1},
			[]int{0, 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg
			cfg.Apply = func(bgppipe.Record) error { return nil }
			d, err := NewMRTDriver(nil, bytes.NewReader(replayTimes(t, c.offsets)), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d.Records() != len(c.offsets) {
				t.Fatalf("Records() = %d, want %d (clamping must not drop)", d.Records(), len(c.offsets))
			}
			var got []int
			for _, ev := range d.Events() {
				n := 0
				for i := len("replay["); i < len(ev.Name)-1; i++ {
					n = n*10 + int(ev.Name[i]-'0')
				}
				for j := 0; j < n; j++ {
					got = append(got, ev.Tick)
				}
			}
			if len(got) != len(c.wantTicks) {
				t.Fatalf("scheduled %v, want %v", got, c.wantTicks)
			}
			for i := range got {
				if got[i] != c.wantTicks[i] {
					t.Fatalf("record %d scheduled on tick %d, want %d (all: %v)", i, got[i], c.wantTicks[i], got)
				}
			}
			first, last := d.TickSpan()
			if first != c.wantTicks[0] || last != c.wantTicks[len(c.wantTicks)-1] {
				t.Fatalf("TickSpan() = (%d, %d), want (%d, %d)",
					first, last, c.wantTicks[0], c.wantTicks[len(c.wantTicks)-1])
			}
		})
	}
}
