package engine

import (
	"stellar/internal/fabric"
	"stellar/internal/traffic"
)

// SourcesDriver is the synthetic-attack driver: per-victim Source lists,
// the workload shape of ixp.Scenario and the figure experiments. When
// one Source instance feeds several victims the driver generates
// serially (sources keep per-instance caches), otherwise victims fan
// across the worker pool.
type SourcesDriver struct {
	specs   []VictimSpec
	sources [][]Source
	events  []Event
	shared  bool
}

// NewSourcesDriver builds the driver; sources[i] feeds specs[i].
// Missing trailing source lists are treated as empty (a victim that
// only receives cross-traffic).
func NewSourcesDriver(specs []VictimSpec, sources [][]Source) *SourcesDriver {
	d := &SourcesDriver{specs: specs, sources: sources}
	seen := make(map[Source]bool)
	for _, list := range sources {
		for _, src := range list {
			if seen[src] {
				d.shared = true
			}
			seen[src] = true
		}
	}
	return d
}

// AddEvents appends timed control-plane actions to the driver's
// timeline and returns the driver.
func (d *SourcesDriver) AddEvents(evs ...Event) *SourcesDriver {
	d.events = append(d.events, evs...)
	return d
}

// Victims implements Driver.
func (d *SourcesDriver) Victims() []VictimSpec { return d.specs }

// Events implements Eventful.
func (d *SourcesDriver) Events() []Event { return d.events }

// SerialGen implements SerialGenerator: true when a Source instance is
// shared across victims.
func (d *SourcesDriver) SerialGen() bool { return d.shared }

// AppendOffers implements Driver.
func (d *SourcesDriver) AppendOffers(v int, dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	if v >= len(d.sources) {
		return dst
	}
	for _, src := range d.sources[v] {
		if ap, ok := src.(OfferAppender); ok {
			dst = ap.AppendOffers(dst, tick, dt)
		} else {
			dst = append(dst, src.Offers(tick, dt)...)
		}
	}
	return dst
}

// NewTraceDriver is the pcap-less trace-replay driver: it replays a
// traffic.Trace (per-tick rates with sampled blackholing-event port
// compositions) against one victim port.
func NewTraceDriver(port string, tr *traffic.Trace) *SourcesDriver {
	return NewSourcesDriver([]VictimSpec{{Port: port}}, [][]Source{{tr}})
}

// Pulsed gates a source into an on/off pulse train — the burst-pause
// pattern of modern booter attacks that defeats reactive thresholds.
// The source emits during the first OnTicks of every (OnTicks+OffTicks)
// period, counted from StartTick.
type Pulsed struct {
	Src       Source
	OnTicks   int
	OffTicks  int
	StartTick int
}

// ActiveAt reports whether the pulse train is in an on-window at tick.
func (p *Pulsed) ActiveAt(tick int) bool {
	if tick < p.StartTick || p.OnTicks <= 0 {
		return false
	}
	period := p.OnTicks + p.OffTicks
	if period <= 0 {
		return true
	}
	return (tick-p.StartTick)%period < p.OnTicks
}

// Offers implements Source.
func (p *Pulsed) Offers(tick int, dtSeconds float64) []fabric.Offer {
	return p.AppendOffers(nil, tick, dtSeconds)
}

// AppendOffers implements OfferAppender.
func (p *Pulsed) AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer {
	if !p.ActiveAt(tick) {
		return dst
	}
	if ap, ok := p.Src.(OfferAppender); ok {
		return ap.AppendOffers(dst, tick, dtSeconds)
	}
	return append(dst, p.Src.Offers(tick, dtSeconds)...)
}

// NewPulseDriver builds the pulsing-attack driver: src gated into an
// on/off train against one victim port, plus optional always-on
// background sources (benign traffic).
func NewPulseDriver(port string, src Source, onTicks, offTicks, startTick int, background ...Source) *SourcesDriver {
	sources := append([]Source{&Pulsed{Src: src, OnTicks: onTicks, OffTicks: offTicks, StartTick: startTick}}, background...)
	return NewSourcesDriver([]VictimSpec{{Port: port}}, [][]Source{sources})
}

// CarpetDriver is the carpet-bombing driver: the attack rotates across
// the victims' prefixes every RotateTicks while per-victim background
// sources stay on — the evasion pattern that defeats single-/32 RTBH
// because no one destination ever carries the full volume long enough.
type CarpetDriver struct {
	specs []VictimSpec
	// Attacks[v] is victim v's attack workload, emitted only while the
	// rotation points at v.
	Attacks []Source
	// Background[v] (optional) stays on every tick.
	Background [][]Source
	// RotateTicks is the dwell time per victim (<=0: 1).
	RotateTicks int
	// StartTick/EndTick bound the whole carpet (end 0: never).
	StartTick, EndTick int
}

// NewCarpetDriver builds a carpet-bombing run over the victims;
// attacks[v] targets specs[v].
func NewCarpetDriver(specs []VictimSpec, attacks []Source, rotateTicks int) *CarpetDriver {
	return &CarpetDriver{specs: specs, Attacks: attacks, RotateTicks: rotateTicks}
}

// Victims implements Driver.
func (d *CarpetDriver) Victims() []VictimSpec { return d.specs }

// CurrentVictim returns the rotation's victim index at tick, or -1
// outside the attack window.
func (d *CarpetDriver) CurrentVictim(tick int) int {
	if tick < d.StartTick || (d.EndTick > 0 && tick >= d.EndTick) || len(d.specs) == 0 {
		return -1
	}
	rot := d.RotateTicks
	if rot <= 0 {
		rot = 1
	}
	return ((tick - d.StartTick) / rot) % len(d.specs)
}

// AppendOffers implements Driver.
func (d *CarpetDriver) AppendOffers(v int, dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	if v < len(d.Background) {
		for _, src := range d.Background[v] {
			if ap, ok := src.(OfferAppender); ok {
				dst = ap.AppendOffers(dst, tick, dt)
			} else {
				dst = append(dst, src.Offers(tick, dt)...)
			}
		}
	}
	if d.CurrentVictim(tick) == v && v < len(d.Attacks) && d.Attacks[v] != nil {
		if ap, ok := d.Attacks[v].(OfferAppender); ok {
			dst = ap.AppendOffers(dst, tick, dt)
		} else {
			dst = append(dst, d.Attacks[v].Offers(tick, dt)...)
		}
	}
	return dst
}
