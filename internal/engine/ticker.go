package engine

// Ticker drives the control stage of a live deployment in real time —
// the cmd/ixpd mode, where there is no synthetic traffic to egress but
// the mitigation lifecycle still needs a clock: TTLs expire and the
// paced change queue drains only when someone advances simulation time.
// Each Tick advances one engine control tick of Dt seconds; the caller
// (a time.Ticker goroutine) supplies the real-time cadence.
type Ticker struct {
	Control Control
	// Dt is the simulated seconds per tick (default 1).
	Dt   float64
	tick int
}

// Tick advances the control stage by one tick of Dt seconds and
// returns the post-advance simulation time.
func (t *Ticker) Tick() float64 {
	dt := t.Dt
	if dt == 0 {
		dt = 1
	}
	return t.TickDt(dt)
}

// TickDt advances the control stage by one tick of dt seconds. A live
// deployment mixes cadences — full-Dt ticks from a wall-clock loop plus
// near-zero-dt ticks per southbound BGP event so signals apply promptly
// without fast-forwarding TTL expiry or change-queue pacing, both of
// which are defined in wall-clock seconds.
func (t *Ticker) TickDt(dt float64) float64 {
	now := t.Control.ControlTick(t.tick, dt)
	t.tick++
	return now
}

// Ticks returns how many control ticks have run.
func (t *Ticker) Ticks() int { return t.tick }
