package engine

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// fakePlane is a deterministic data plane: every offered byte is
// delivered, and each port's flows stream into the sink exactly once.
type fakePlane struct {
	failAtTick int // tick whose EgressTick errors (-1: never)
	tick       atomic.Int64
}

func newFakePlane() *fakePlane { return &fakePlane{failAtTick: -1} }

func (p *fakePlane) EgressTick(r fabric.Runner, offers fabric.TickOffers, dt float64, sink fabric.TickSink) (map[string]PortReport, error) {
	tick := int(p.tick.Add(1)) - 1
	if tick == p.failAtTick {
		return nil, fmt.Errorf("fake egress failure")
	}
	reports := make(map[string]PortReport, len(offers))
	for port, os := range offers {
		var sum float64
		var visit fabric.FlowVisitor
		if sink != nil {
			visit = sink(0, port)
		}
		for _, o := range os {
			sum += o.Bytes
			if visit != nil {
				visit(o.Flow, o.FlowHash, o.Bytes)
			}
		}
		reports[port] = PortReport{
			OfferedBytes: sum,
			Result:       fabric.TickResult{DeliveredBytes: sum},
		}
	}
	return reports, nil
}

// fakeControl records the spine's strict tick order.
type fakeControl struct {
	mu    sync.Mutex
	ticks []int
}

func (c *fakeControl) ControlTick(tick int, dt float64) float64 {
	c.mu.Lock()
	c.ticks = append(c.ticks, tick)
	c.mu.Unlock()
	return float64(tick+1) * dt
}

func (c *fakeControl) seen() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.ticks...)
}

// flowSource emits one deterministic flow per tick whose byte count
// encodes (seed, tick), so any reordering or loss shows up in the
// series.
type flowSource struct {
	seed int
	mac  netpkt.MAC
}

func newFlowSource(seed int) *flowSource {
	return &flowSource{seed: seed, mac: netpkt.MAC{0x02, 0x99, 0, 0, 0, byte(seed)}}
}

func (s *flowSource) Offers(tick int, dt float64) []fabric.Offer {
	return s.AppendOffers(nil, tick, dt)
}

func (s *flowSource) AppendOffers(dst []fabric.Offer, tick int, dt float64) []fabric.Offer {
	flow := netpkt.FlowKey{
		SrcMAC:  s.mac,
		Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(s.seed)}),
		Dst:     netip.AddrFrom4([4]byte{100, 64, 0, byte(s.seed)}),
		Proto:   netpkt.ProtoUDP,
		SrcPort: 123,
		DstPort: 443,
	}
	return append(dst, fabric.Offer{
		Flow:     flow,
		FlowHash: flow.Hash(),
		Bytes:    float64(1e6 + s.seed*1000 + tick),
		Packets:  10,
	})
}

func testConfig(victims, ticks, depth int) Config {
	specs := make([]VictimSpec, victims)
	sources := make([][]Source, victims)
	for v := range specs {
		specs[v] = VictimSpec{Port: fmt.Sprintf("port%d", v)}
		sources[v] = []Source{newFlowSource(v)}
	}
	return Config{
		Driver:    NewSourcesDriver(specs, sources),
		Control:   &fakeControl{},
		DataPlane: newFakePlane(),
		Ticks:     ticks,
		Dt:        1,
		Depth:     depth,
	}
}

// TestEngineDepthEquivalence pins the pipelined run (depth 2 and 4) to
// the fully serial one (depth 1): identical samples and identical
// monitor contents, tick for tick.
func TestEngineDepthEquivalence(t *testing.T) {
	const victims, ticks = 3, 40
	run := func(depth int) []VictimSeries {
		t.Helper()
		series, err := New(testConfig(victims, ticks, depth)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	want := run(1)
	for _, depth := range []int{2, 4} {
		got := run(depth)
		for v := range want {
			if len(got[v].Samples) != len(want[v].Samples) {
				t.Fatalf("depth %d victim %d: %d samples, want %d",
					depth, v, len(got[v].Samples), len(want[v].Samples))
			}
			for i := range want[v].Samples {
				if got[v].Samples[i] != want[v].Samples[i] {
					t.Fatalf("depth %d victim %d tick %d: %+v != %+v",
						depth, v, i, got[v].Samples[i], want[v].Samples[i])
				}
			}
			gb, gv := got[v].Monitor.Series()
			wb, wv := want[v].Monitor.Series()
			if fmt.Sprint(gb, gv) != fmt.Sprint(wb, wv) {
				t.Fatalf("depth %d victim %d: monitor series diverged", depth, v)
			}
		}
	}
}

// TestEngineSpineOrder pins the spine's serialization contract: events
// of tick T run after tick T-1's control advance and before tick T's,
// in merged (Config.Events, driver events) insertion order per tick.
func TestEngineSpineOrder(t *testing.T) {
	var log []string // spine-only, no lock needed
	ctl := &spyControl{hook: func(tick int) { log = append(log, fmt.Sprintf("control%d", tick)) }}
	mark := func(tick int, name string) Event {
		return Event{Tick: tick, Name: name, Do: func() error {
			log = append(log, name)
			return nil
		}}
	}
	cfg := testConfig(1, 4, 2)
	cfg.Control = ctl
	cfg.Events = []Event{mark(2, "cfg-b"), mark(1, "cfg-a")}
	cfg.Driver.(*SourcesDriver).AddEvents(mark(2, "drv"))
	if _, err := New(cfg).Run(); err != nil {
		t.Fatal(err)
	}
	want := "control0 cfg-a control1 cfg-b drv control2 control3"
	if got := strings.Join(log, " "); got != want {
		t.Fatalf("spine order:\n got %s\nwant %s", got, want)
	}
}

type spyControl struct {
	hook func(tick int)
	tick int
}

func (c *spyControl) ControlTick(tick int, dt float64) float64 {
	c.hook(tick)
	c.tick = tick
	return float64(tick+1) * dt
}

// TestEnginePartialSamplesOnEventError pins the abort contract: a
// failing event surfaces alongside the samples of every tick fully
// folded before it.
func TestEnginePartialSamplesOnEventError(t *testing.T) {
	cfg := testConfig(2, 10, 2)
	cfg.Events = []Event{{Tick: 4, Name: "boom", Do: func() error {
		return fmt.Errorf("deliberate")
	}}}
	series, err := New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	for v := range series {
		if len(series[v].Samples) != 4 {
			t.Fatalf("victim %d: %d partial samples, want 4", v, len(series[v].Samples))
		}
	}
}

// TestEnginePartialSamplesOnStageError: a data-plane failure mid-run
// truncates the series to the fully folded ticks and names the stage.
func TestEnginePartialSamplesOnStageError(t *testing.T) {
	cfg := testConfig(1, 10, 2)
	plane := newFakePlane()
	plane.failAtTick = 6
	cfg.DataPlane = plane
	series, err := New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "fabric stage") {
		t.Fatalf("err = %v", err)
	}
	if len(series[0].Samples) != 6 {
		t.Fatalf("%d partial samples, want 6", len(series[0].Samples))
	}
	for i, s := range series[0].Samples {
		if s.Tick != i {
			t.Fatalf("sample %d has tick %d", i, s.Tick)
		}
	}
}

// TestEngineValidation covers the config error paths.
func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{}).Run(); err == nil {
		t.Fatal("no data plane accepted")
	}
	if _, err := New(Config{DataPlane: newFakePlane()}).Run(); err == nil {
		t.Fatal("no driver accepted")
	}
	empty := Config{DataPlane: newFakePlane(),
		Driver: NewSourcesDriver(nil, nil), Ticks: 1}
	if _, err := New(empty).Run(); err == nil {
		t.Fatal("driver with no victims accepted")
	}
	dup := testConfig(1, 1, 1)
	dup.Driver = NewSourcesDriver(
		[]VictimSpec{{Port: "p"}, {Port: "p"}},
		[][]Source{{newFlowSource(0)}, {newFlowSource(1)}})
	if _, err := New(dup).Run(); err == nil {
		t.Fatal("duplicate victim port accepted")
	}
}

// TestEnginePipelinesAndBackpressures proves the two scheduling claims:
// with Depth=2 the spine starts tick N+1 while tick N is still folding
// (pipelining), and it cannot start tick N+2 until tick N folded
// (backpressure). The fold side is gated through MemberFilter, which
// the monitor stage calls while deriving each tick's peer count.
func TestEnginePipelinesAndBackpressures(t *testing.T) {
	const ticks = 5
	gate := make(chan struct{})
	started := make(chan int, ticks)
	var once sync.Once
	cfg := testConfig(1, ticks, 2)
	ctl := &spyControl{hook: func(tick int) { started <- tick }}
	cfg.Control = ctl
	cfg.MemberFilter = func(netpkt.MAC) bool {
		once.Do(func() { <-gate }) // block the fold of tick 0 only
		return true
	}

	done := make(chan error, 1)
	var series []VictimSeries
	go func() {
		var err error
		series, err = New(cfg).Run()
		done <- err
	}()

	expectStart := func(want int) {
		t.Helper()
		select {
		case got := <-started:
			if got != want {
				t.Fatalf("spine started tick %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("spine never started tick %d", want)
		}
	}
	// Pipelining: ticks 0 and 1 start although tick 0 never folded.
	expectStart(0)
	expectStart(1)
	// Backpressure: tick 2 must not start while tick 0's fold is gated.
	select {
	case got := <-started:
		t.Fatalf("spine started tick %d past the depth-2 window", got)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	for want := 2; want < ticks; want++ {
		expectStart(want)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(series[0].Samples) != ticks {
		t.Fatalf("%d samples, want %d", len(series[0].Samples), ticks)
	}
}

// TestEngineMonitorsReadableAfterRun: the merge horizon is lifted when
// the run ends, so accessors see every bin, including on the monitor a
// caller supplied.
func TestEngineMonitorsReadableAfterRun(t *testing.T) {
	cfg := testConfig(2, 8, 2)
	series, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := range series {
		bins := series[v].Monitor.Bins()
		if len(bins) != 8 {
			t.Fatalf("victim %d: %d bins, want 8", v, len(bins))
		}
		if tops := series[v].Monitor.TopSrcPorts(1); len(tops) == 0 || tops[0].Port != 123 {
			t.Fatalf("victim %d: top ports %+v", v, tops)
		}
	}
}

// TestTicker drives the real-time control façade.
func TestTicker(t *testing.T) {
	ctl := &fakeControl{}
	tk := &Ticker{Control: ctl}
	if now := tk.Tick(); now != 1 {
		t.Fatalf("first tick advanced to %v, want 1", now)
	}
	tk.Dt = 0.5
	if now := tk.Tick(); now != 1.0 { // tick index 1, dt 0.5 => (1+1)*0.5
		t.Fatalf("second tick advanced to %v, want 1.0", now)
	}
	if tk.Ticks() != 2 {
		t.Fatalf("Ticks() = %d", tk.Ticks())
	}
	if got := ctl.seen(); fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("control saw %v", got)
	}
}
