package engine

import (
	"testing"

	"stellar/internal/fabric"
)

// byteSource emits one offer of a fixed size per tick.
type byteSource struct {
	bytes float64
}

func (s *byteSource) Offers(tick int, dt float64) []fabric.Offer {
	return []fabric.Offer{{Bytes: s.bytes * dt}}
}

// countSource emits n offers per tick, tagged with its id.
type countSource struct {
	id, n int
}

func (s *countSource) Offers(tick int, dt float64) []fabric.Offer {
	out := make([]fabric.Offer, s.n)
	for i := range out {
		out[i] = fabric.Offer{Bytes: float64(s.id*1000 + tick)}
	}
	return out
}

// TestSourcesDriverSharedDetection: one Source instance feeding two
// victims forces serial generation; disjoint sources do not.
func TestSourcesDriverSharedDetection(t *testing.T) {
	shared := &countSource{id: 1, n: 1}
	d := NewSourcesDriver(
		[]VictimSpec{{Port: "a"}, {Port: "b"}},
		[][]Source{{shared}, {shared}})
	if !d.SerialGen() {
		t.Fatal("shared source not detected")
	}
	d2 := NewSourcesDriver(
		[]VictimSpec{{Port: "a"}, {Port: "b"}},
		[][]Source{{&countSource{id: 1, n: 1}}, {&countSource{id: 2, n: 1}}})
	if d2.SerialGen() {
		t.Fatal("disjoint sources flagged as shared")
	}
	// A victim past the source lists simply receives nothing.
	d3 := NewSourcesDriver([]VictimSpec{{Port: "a"}, {Port: "b"}},
		[][]Source{{&countSource{id: 1, n: 3}}})
	if got := d3.AppendOffers(1, nil, 0, 1); len(got) != 0 {
		t.Fatalf("victim without sources got %d offers", len(got))
	}
	if got := d3.AppendOffers(0, nil, 0, 1); len(got) != 3 {
		t.Fatalf("victim 0 got %d offers, want 3", len(got))
	}
}

// TestPulsedWindows pins the on/off train arithmetic.
func TestPulsedWindows(t *testing.T) {
	p := &Pulsed{Src: &countSource{id: 1, n: 2}, OnTicks: 3, OffTicks: 2, StartTick: 10}
	cases := []struct {
		tick int
		on   bool
	}{
		{0, false}, {9, false}, // before the train
		{10, true}, {11, true}, {12, true}, // first on-window
		{13, false}, {14, false}, // first off-window
		{15, true}, {17, true}, {18, false}, // second period
	}
	for _, c := range cases {
		if got := p.ActiveAt(c.tick); got != c.on {
			t.Fatalf("tick %d: active=%v, want %v", c.tick, got, c.on)
		}
		want := 0
		if c.on {
			want = 2
		}
		if got := len(p.Offers(c.tick, 1)); got != want {
			t.Fatalf("tick %d: %d offers, want %d", c.tick, got, want)
		}
	}
	// Zero off-ticks means always on once started.
	solid := &Pulsed{Src: &countSource{id: 1, n: 1}, OnTicks: 5, OffTicks: 0, StartTick: 0}
	for _, tick := range []int{0, 4, 5, 99} {
		if !solid.ActiveAt(tick) {
			t.Fatalf("offless train inactive at %d", tick)
		}
	}
	// OnTicks <= 0 never fires.
	if (&Pulsed{Src: &countSource{}, OnTicks: 0}).ActiveAt(3) {
		t.Fatal("zero on-window fired")
	}
}

// TestPulseDriver: the gated attack plus always-on background.
func TestPulseDriver(t *testing.T) {
	d := NewPulseDriver("v", &countSource{id: 7, n: 4}, 2, 2, 4, &countSource{id: 1, n: 1})
	if got := d.Victims(); len(got) != 1 || got[0].Port != "v" {
		t.Fatalf("victims: %+v", got)
	}
	// Off-window: background only.
	if got := len(d.AppendOffers(0, nil, 0, 1)); got != 1 {
		t.Fatalf("off-window offers: %d, want 1", got)
	}
	// On-window: attack + background.
	if got := len(d.AppendOffers(0, nil, 5, 1)); got != 5 {
		t.Fatalf("on-window offers: %d, want 5", got)
	}
}

// TestCarpetDriverRotation pins the rotating-victim arithmetic and the
// per-victim background behavior.
func TestCarpetDriverRotation(t *testing.T) {
	specs := []VictimSpec{{Port: "a"}, {Port: "b"}, {Port: "c"}}
	attacks := []Source{&countSource{id: 1, n: 2}, &countSource{id: 2, n: 2}, &countSource{id: 3, n: 2}}
	d := NewCarpetDriver(specs, attacks, 2)
	d.StartTick = 4
	d.EndTick = 16
	d.Background = [][]Source{{&countSource{id: 9, n: 1}}}

	cases := []struct {
		tick, victim int
	}{
		{0, -1}, {3, -1}, // before the carpet
		{4, 0}, {5, 0}, {6, 1}, {7, 1}, {8, 2}, {9, 2},
		{10, 0},                     // wrapped around
		{15, 2}, {16, -1}, {99, -1}, // after the carpet
	}
	for _, c := range cases {
		if got := d.CurrentVictim(c.tick); got != c.victim {
			t.Fatalf("tick %d: victim %d, want %d", c.tick, got, c.victim)
		}
	}
	// Victim 0: background every tick, attack only while pointed at.
	if got := len(d.AppendOffers(0, nil, 6, 1)); got != 1 {
		t.Fatalf("victim 0 off-rotation: %d offers, want 1 (background)", got)
	}
	if got := len(d.AppendOffers(0, nil, 4, 1)); got != 3 {
		t.Fatalf("victim 0 on-rotation: %d offers, want 3", got)
	}
	// Victim 1 has no background list.
	if got := len(d.AppendOffers(1, nil, 4, 1)); got != 0 {
		t.Fatalf("victim 1 off-rotation: %d offers, want 0", got)
	}
	if got := len(d.AppendOffers(1, nil, 6, 1)); got != 2 {
		t.Fatalf("victim 1 on-rotation: %d offers, want 2", got)
	}
	// RotateTicks <= 0 clamps to 1.
	fast := NewCarpetDriver(specs, attacks, 0)
	if got := fast.CurrentVictim(1); got != 1 {
		t.Fatalf("rotate-0 tick 1: victim %d, want 1", got)
	}
}

// TestCarpetDriverThroughEngine runs a carpet over three victims and
// checks the delivered series shows the rotation: each victim's peak
// ticks are exactly its rotation dwells.
func TestCarpetDriverThroughEngine(t *testing.T) {
	specs := []VictimSpec{{Port: "a"}, {Port: "b"}, {Port: "c"}}
	attacks := []Source{newFlowSource(0), newFlowSource(1), newFlowSource(2)}
	d := NewCarpetDriver(specs, attacks, 3)
	cfg := Config{
		Driver:    d,
		DataPlane: newFakePlane(),
		Ticks:     9,
		Dt:        1,
	}
	series, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := range series {
		for i, s := range series[v].Samples {
			want := d.CurrentVictim(i) == v
			got := s.DeliveredBps > 0
			if got != want {
				t.Fatalf("victim %d tick %d: delivered=%v, want %v", v, i, got, want)
			}
		}
	}
}
