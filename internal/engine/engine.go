// Package engine is the simulation's stage-graph runtime: the one tick
// loop every driver — synthetic attacks, trace replay, pulsing and
// carpet-bombing workloads, the figure experiments, the benches —
// executes through. Each simulation layer implements the Stage
// interface (Prepare / Run / Fold) and the engine wires five of them
// into a pipeline:
//
//	driver events ─► control ─► traffic ─► fabric ─► monitor ─► report
//	   (spine, strictly tick-ordered)          (fold side, overlapped)
//
// The engine double-buffers ticks: batches of reused offer/flow buffers
// circulate through bounded channels between the spine and the fold
// side, so tick N's monitoring and reporting stages overlap tick N+1's
// traffic generation and egress while the bounded free list provides
// backpressure (the spine cannot run more than Depth ticks ahead).
// Victims and member ports fan across one shared worker pool
// (fabric.Pool), bounding the whole pipeline by a single worker budget.
//
// Determinism: the spine serializes everything that mutates shared
// simulation state — events, the clock/change-queue tick, egress — in
// exactly the serial loop's order, so control-plane effects land with
// the paper's one-tick delay (an action signaled at the start of tick T
// is processed when the clock advances to (T+1)*Dt and takes effect in
// tick T's egress at the earliest, queue pacing permitting). The fold
// side only reads monitor bins the spine has finished writing, so its
// overlap with the next tick changes no observable number: engine runs
// are byte-identical to the serial ixp.Tick loop (pinned by tests).
package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
)

// Config assembles a run.
type Config struct {
	// Driver supplies the victims and their per-tick offers.
	Driver Driver
	// Control is the control-plane tick hook (nil: no control plane).
	Control Control
	// DataPlane egresses each tick's offers. Required.
	DataPlane DataPlane
	// Events are timed control-plane actions, applied on the spine at
	// the start of their tick. Same-tick events apply in list order;
	// events of an Eventful driver follow them.
	Events []Event
	// Ticks is the run length.
	Ticks int
	// Dt is the tick length in seconds (default 1).
	Dt float64
	// PeerMinBps is the delivered-rate threshold for counting a peer as
	// active (default 1 kbps).
	PeerMinBps float64
	// MemberFilter restricts active-peer counting to accepted source
	// MACs (nil: count every source).
	MemberFilter func(netpkt.MAC) bool
	// Workers sizes the shared worker pool (0: GOMAXPROCS).
	Workers int
	// Pool, when non-nil, is an externally owned worker pool the run
	// draws from instead of creating its own; Workers is then ignored
	// and the caller keeps ownership (the engine never closes it). This
	// is how a federation of engines shares one worker budget: N
	// exchange pipelines submit to the same fabric.Pool, so aggregate
	// parallelism stays bounded by one worker count instead of N of
	// them.
	Pool *fabric.Pool
	// Depth is the number of in-flight ticks (0: 2 — double-buffered;
	// 1: fully serial, the determinism-debugging fallback). Depth > 1
	// also bounds the fold side's in-flight batches: per-victim monitor
	// folds fan across the worker pool and overlap across ticks, so
	// Depth is a throughput knob, not just spine/fold overlap.
	Depth int
	// Profile, when set, accumulates a StageProfile over the run —
	// per-stage cumulative ns plus spine-wait/fold-wait counters — and
	// attaches it to every VictimSeries. Off (the default) costs
	// nothing on the tick path.
	Profile bool
	// StageWrap, when non-nil, decorates every stage before wiring —
	// the fault-injection / instrumentation seam (e.g.
	// faults.Injector.WrapControl). The decoration runs inside the
	// engine's watchdog, so a wrapper's panics are isolated too.
	StageWrap func(Stage) Stage
	// StageTimeout arms the stage watchdog: a single stage Run
	// exceeding it (wall clock) aborts the run with a stall error
	// instead of hanging the pipeline. 0 disables stall detection
	// (panic isolation is always on).
	StageTimeout time.Duration
}

// Engine executes a configured run. Engines are single-use: build with
// New, call Run once.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	fail *runFail
}

// runFail records the run's first failure and the tick it struck: the
// fold side never runs or folds a tick at or past it, at any Depth,
// while backlog ticks below it still fold (the partial-samples
// contract). "First" means earliest tick — concurrent per-victim folds
// can race errors out of order.
type runFail struct {
	tick int
	err  error
}

// Profile slot indices, in pipeline order (see StageProfile.Stages).
const (
	profSlotControl = iota
	profSlotTraffic
	profSlotFabric
	profSlotMonitor
	profSlotReport
)

// New returns an engine for the configuration.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// timedEvent tags an event with its insertion order so same-tick events
// apply deterministically even across merged lists.
type timedEvent struct {
	Event
	seq int
}

// Run executes the run and returns one series per victim, in driver
// Victims order. On an error — a failing event or stage — it returns
// the series of every tick fully folded before the failure (partial
// samples), alongside the error.
func (e *Engine) Run() ([]VictimSeries, error) {
	cfg := e.cfg
	if cfg.DataPlane == nil {
		return nil, fmt.Errorf("engine: no data plane configured")
	}
	if cfg.Driver == nil {
		return nil, fmt.Errorf("engine: no driver configured")
	}
	if cfg.Dt == 0 {
		cfg.Dt = 1
	}
	if cfg.PeerMinBps == 0 {
		cfg.PeerMinBps = 1e3
	}
	specs := append([]VictimSpec(nil), cfg.Driver.Victims()...)
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: driver has no victims")
	}
	seen := make(map[string]bool, len(specs))
	seenMon := make(map[*flowmon.Collector]bool, len(specs))
	monitors := make([]*flowmon.Collector, len(specs))
	for i := range specs {
		if seen[specs[i].Port] {
			return nil, fmt.Errorf("engine: duplicate victim port %s", specs[i].Port)
		}
		seen[specs[i].Port] = true
		if specs[i].Monitor == nil {
			specs[i].Monitor = flowmon.NewCollector()
		} else if seenMon[specs[i].Monitor] {
			// One collector under two victims would see two merge-horizon
			// writers once per-victim folds overlap — horizons must stay
			// monotonic per collector, so sharing is rejected outright.
			return nil, fmt.Errorf("engine: victim port %s shares its monitor with another victim", specs[i].Port)
		}
		seenMon[specs[i].Monitor] = true
		if specs[i].PeerMinBps == 0 {
			specs[i].PeerMinBps = cfg.PeerMinBps
		}
		monitors[i] = specs[i].Monitor
	}

	// Merge the configured and driver event lists into one
	// deterministically ordered timeline: (tick, insertion) order.
	events := make([]timedEvent, 0, len(cfg.Events))
	for _, ev := range cfg.Events {
		events = append(events, timedEvent{Event: ev, seq: len(events)})
	}
	if ed, ok := cfg.Driver.(Eventful); ok {
		for _, ev := range ed.Events() {
			events = append(events, timedEvent{Event: ev, seq: len(events)})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tick != events[j].Tick {
			return events[i].Tick < events[j].Tick
		}
		return events[i].seq < events[j].seq
	})

	keep := cfg.MemberFilter
	if keep == nil {
		keep = func(netpkt.MAC) bool { return true }
	}

	// The stage graph. Spine stages run strictly tick-ordered on the
	// caller's goroutine; fold stages run on the fold goroutine,
	// overlapping the next tick's spine.
	ports := make([]string, len(specs))
	for i := range specs {
		ports[i] = specs[i].Port
	}
	serialGen := false
	if sg, ok := cfg.Driver.(SerialGenerator); ok {
		serialGen = sg.SerialGen()
	}
	traffic := &trafficStage{driver: cfg.Driver, ports: ports, serial: serialGen}
	control := &controlStage{ctl: cfg.Control}
	egress := newFabricStage(cfg.DataPlane, specs, monitors)
	monitor := &monitorStage{specs: specs, monitors: monitors, keep: keep}
	report := &reportStage{series: make([]VictimSeries, len(specs))}
	for i := range specs {
		report.series[i] = VictimSeries{
			Port:    specs[i].Port,
			Samples: make([]Sample, 0, cfg.Ticks),
			Monitor: monitors[i],
		}
	}
	spineStages := guard([]Stage{control, traffic, egress}, cfg.StageWrap, cfg.StageTimeout)
	foldStages := guard([]Stage{monitor, report}, cfg.StageWrap, cfg.StageTimeout)

	var prof *StageProfile
	if cfg.Profile {
		prof = &StageProfile{Stages: make([]StageTiming, 0, len(spineStages)+len(foldStages))}
		for _, st := range spineStages {
			prof.Stages = append(prof.Stages, StageTiming{Name: st.Name()})
		}
		for _, st := range foldStages {
			prof.Stages = append(prof.Stages, StageTiming{Name: st.Name()})
		}
	}
	for i := range report.series {
		report.series[i].Profile = prof
	}

	pool := cfg.Pool
	if pool == nil {
		pool = fabric.NewPool(cfg.Workers)
		defer pool.Close()
	}

	depth := cfg.Depth
	if depth <= 0 {
		depth = 2
	}
	free := make(chan *Batch, depth)
	for i := 0; i < depth; i++ {
		b := &Batch{
			Offers:  make(fabric.TickOffers, len(specs)),
			bufs:    make([][]fabric.Offer, len(specs)),
			samples: make([]Sample, len(specs)),
		}
		free <- b
	}
	work := make(chan *Batch, depth)

	// Fold side. When the (possibly StageWrap-decorated) monitor stage
	// still decomposes per victim, Depth > 1 runs the parallel fold: a
	// dispatcher fans per-victim units across the pool's lanes and a
	// completer retires ticks in spine order (see foldpar.go). Otherwise
	// — Depth 1, a single pool worker, a single victim, a decoration
	// hiding ParallelFold, or an armed stage watchdog (stall detection
	// needs one fold thread to time) — the serial fold goroutine runs
	// monitor + report one tick at a time. Both paths produce
	// byte-identical series.
	var foldWG sync.WaitGroup
	gm := foldStages[0].(*guardStage)
	pf, pfOK := gm.parallelFold()
	if depth > 1 && len(specs) > 1 && pool.Workers() > 1 && cfg.StageTimeout == 0 && pfOK {
		sched := newFoldScheduler(e, pool, gm, pf, foldStages[1], foldStages, prof, len(specs), depth)
		foldWG.Add(2)
		go func() {
			defer foldWG.Done()
			sched.dispatch(work)
		}()
		go func() {
			defer foldWG.Done()
			sched.complete(free)
		}()
	} else {
		foldWG.Add(1)
		go func() {
			defer foldWG.Done()
			for {
				t0 := prof.now()
				b, ok := <-work
				if !ok {
					return
				}
				prof.addFoldWait(prof.since(t0))
				tick := b.ctx.Tick
				if !e.errBefore(tick) {
					for si, st := range foldStages {
						rt := prof.now()
						err := st.Run(&b.ctx, b, b)
						prof.addNs(profSlotMonitor+si, prof.since(rt))
						if err != nil {
							e.setErr(tick, fmt.Errorf("engine: %s stage at tick %d: %w", st.Name(), tick, err))
							break
						}
					}
				}
				if !e.errBefore(tick) {
					for _, st := range foldStages {
						st.Fold(tick)
					}
				}
				free <- b
			}
		}()
	}

	// drain stops the fold side and truncates every series to the ticks
	// that fully folded, preserving the serial loop's partial-samples
	// contract. With the pipeline quiesced it also lifts the monitors'
	// merge horizons, so post-run accessor reads (TopSrcPorts over the
	// whole series, partial reads after an abort) see every bin.
	drain := func() []VictimSeries {
		close(work)
		foldWG.Wait()
		for _, m := range monitors {
			m.SetMergeHorizon(int(^uint(0) >> 1))
		}
		series := report.series
		for i := range series {
			if len(series[i].Samples) > report.folded {
				series[i].Samples = series[i].Samples[:report.folded]
			}
		}
		return series
	}

	ei := 0
	for tick := 0; tick < cfg.Ticks; tick++ {
		t0 := prof.now()
		b := <-free // backpressure: at most depth ticks in flight
		prof.addSpineWait(prof.since(t0))
		if err := e.firstErr(); err != nil {
			return drain(), err
		}
		if prof != nil {
			prof.Ticks++
		}
		// Events fire on the spine, after the previous tick's egress and
		// before this tick's clock advance — the serial loop's order.
		for ei < len(events) && events[ei].Tick == tick {
			if err := events[ei].Do(); err != nil {
				err = fmt.Errorf("engine: event %q at tick %d: %w", events[ei].Name, tick, err)
				e.setErr(tick, err)
				return drain(), err
			}
			ei++
		}
		b.ctx = Ctx{Tick: tick, Dt: cfg.Dt, Pool: pool}
		for _, st := range spineStages {
			st.Prepare(tick)
		}
		for si, st := range spineStages {
			rt := prof.now()
			err := st.Run(&b.ctx, b, b)
			prof.addNs(profSlotControl+si, prof.since(rt))
			if err != nil {
				err = fmt.Errorf("engine: %s stage at tick %d: %w", st.Name(), tick, err)
				e.setErr(tick, err)
				return drain(), err
			}
		}
		for _, st := range spineStages {
			st.Fold(tick)
		}
		work <- b
	}
	series := drain()
	return series, e.firstErr()
}

// setErr records a failure at tick; the earliest tick wins, so the
// reported error and the fold cutoff agree no matter how concurrent
// folds race their failures in.
func (e *Engine) setErr(tick int, err error) {
	e.mu.Lock()
	if e.fail == nil || tick < e.fail.tick {
		e.fail = &runFail{tick: tick, err: err}
	}
	e.mu.Unlock()
}

// firstErr returns the recorded failure, if any.
func (e *Engine) firstErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fail == nil {
		return nil
	}
	return e.fail.err
}

// errBefore reports whether a failure struck at or before tick — the
// fold side's gate: such a tick is neither run nor folded, while ticks
// below the failure still fold (partial samples).
func (e *Engine) errBefore(tick int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fail != nil && e.fail.tick <= tick
}
