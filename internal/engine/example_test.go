package engine

import "fmt"

// ExampleNew runs a minimal pipeline: a pulsing 80 Mbit/s source
// against one victim on a pass-through data plane. The pulse train is
// visible tick by tick in the returned series.
func ExampleNew() {
	src := &Pulsed{Src: &byteSource{bytes: 1e7}, OnTicks: 2, OffTicks: 2}
	series, err := New(Config{
		Driver:    NewSourcesDriver([]VictimSpec{{Port: "victim"}}, [][]Source{{src}}),
		DataPlane: newFakePlane(),
		Ticks:     6,
		Dt:        1,
	}).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, s := range series[0].Samples {
		fmt.Printf("t=%d delivered %.0f Mbps\n", s.Tick, s.DeliveredBps/1e6)
	}
	// Output:
	// t=0 delivered 80 Mbps
	// t=1 delivered 80 Mbps
	// t=2 delivered 0 Mbps
	// t=3 delivered 0 Mbps
	// t=4 delivered 80 Mbps
	// t=5 delivered 80 Mbps
}
