package engine

import (
	"sync/atomic"
	"time"

	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
)

// Ctx is the per-tick execution context handed to every stage: the tick
// index, the simulation time after the control stage advanced the
// clock, the tick length, and the shared worker pool stages fan work
// across (traffic generation across victims, egress across member
// ports). One Ctx lives inside each in-flight Batch, so two pipelined
// ticks never share one.
type Ctx struct {
	Tick int
	// Now is the post-advance simulation time of the tick; the control
	// stage sets it, downstream stages read it.
	Now float64
	Dt  float64
	// Pool is the run's shared worker pool. It accepts concurrent Run
	// submissions, so overlapping stages draw from one worker budget.
	Pool fabric.Runner
}

// Batch is the typed unit flowing through the stage graph: one tick's
// offers on the way down (traffic -> fabric) and its per-port reports
// and samples on the way back up (fabric -> monitor -> report). Batches
// are recycled through a bounded free list, so the offer buffers and
// sample scratch are reused across ticks — the steady-state tick
// allocates no fresh slices.
type Batch struct {
	ctx Ctx
	// Offers maps victim port -> the tick's offers; the slices alias
	// bufs, which AppendOffers-style sources refill in place.
	Offers fabric.TickOffers
	bufs   [][]fabric.Offer
	// Reports is the data plane's account of the tick, keyed by port.
	Reports map[string]PortReport
	// samples is the per-victim sample scratch the monitor stage fills
	// and the report stage folds into the run's series.
	samples []Sample
}

// Tick returns the batch's tick index.
func (b *Batch) Tick() int { return b.ctx.Tick }

// Stage is one layer of the simulation pipeline. The engine wires five
// of them — traffic generation, control plane, fabric egress, flow
// monitoring, reporting — into a stage graph and threads each tick's
// Batch through it.
//
// Prepare(tick) runs on the spine strictly before the tick's Run and
// after the previous tick's Run of every spine stage — per-tick setup
// (e.g. the fabric stage binds its monitoring sink to the tick) without
// synchronization. Run(ctx, in, out) does the tick's work: in carries
// the upstream payload, out receives the stage's product. The runtime
// currently threads one double-buffered batch through the whole graph,
// so in == out; stages must still respect the read/write split so the
// graph can be split across more buffers later. Fold(tick) runs after
// the tick's downstream consumption completed — the place to retire
// per-tick state (the report stage counts folded ticks here, which is
// what truncates the series when a run aborts mid-pipeline).
type Stage interface {
	Name() string
	Prepare(tick int)
	Run(ctx *Ctx, in, out *Batch) error
	Fold(tick int)
}

// ParallelFold is an optional fold-stage refinement: a stage whose Run
// decomposes into independent per-victim units the engine may execute
// concurrently on the worker pool. RunVictim(ctx, b, v) must be
// equivalent to the victim-v slice of Run(ctx, b, b), touch only
// victim-v state (its collector, its sample slot), and tolerate
// concurrent RunVictim calls for other victims of the same or other
// in-flight ticks. The engine guarantees per-victim tick order: victim
// v's tick T completes before its tick T+1 starts. monitorStage
// implements it; a Config.StageWrap decoration that does not forward
// the interface demotes the fold side to the serial path.
type ParallelFold interface {
	RunVictim(ctx *Ctx, b *Batch, victim int) error
}

// PortReport summarizes one simulation tick at one destination port.
// (ixp.TickReport aliases this type.)
type PortReport struct {
	// OfferedBytes is the pre-mitigation attack+benign volume.
	OfferedBytes float64
	// NulledBytes died at the IXP null interface (RTBH honoring).
	NulledBytes float64
	// Result is the egress engine's account of the remainder.
	Result fabric.TickResult
}

// DeliveredBps converts the report to a rate.
func (r PortReport) DeliveredBps(dt float64) float64 { return r.Result.DeliveredBytes * 8 / dt }

// Sample is one tick of a victim port's time series — the measurements
// plotted in Figures 3(c) and 10(c). (ixp.Sample aliases this type.)
type Sample struct {
	Tick                 int
	Time                 float64
	OfferedBps           float64
	DeliveredBps         float64
	NulledBps            float64 // RTBH null-routed at the IXP
	RuleDroppedBps       float64 // Stellar drop queue
	ShaperDroppedBps     float64 // Stellar shaping queue excess
	CongestionDroppedBps float64 // victim port overload
	ActivePeers          int
}

// VictimSeries is one victim's result: its per-tick samples and the
// monitor that collected its delivered flows. (ixp.VictimSeries aliases
// this type.)
type VictimSeries struct {
	Port    string
	Samples []Sample
	Monitor *flowmon.Collector
	// Profile is the run's pipeline profile when Config.Profile was set
	// (nil otherwise). All victims of a run share one profile — the
	// counters are per run, not per victim.
	Profile *StageProfile
}

// StageProfile is the engine's cheap pipeline profile: per-stage
// cumulative wall time plus the two wait counters that localize the
// bottleneck. SpineWaitNs is time the spine spent blocked on the free
// list — it grows when the fold side cannot keep up, and Depth trades
// it for memory. FoldWaitNs is time the fold side spent waiting for
// work or for in-flight per-victim units — it grows when the spine is
// the slow side. Counters are atomically accumulated; read them after
// Run returns.
type StageProfile struct {
	// Stages holds cumulative Run time per stage in pipeline order:
	// control, traffic, fabric, monitor, report.
	Stages []StageTiming `json:"stages"`
	// SpineWaitNs is cumulative spine time blocked on the free list.
	SpineWaitNs int64 `json:"spine_wait_ns"`
	// FoldWaitNs is cumulative fold-side time blocked waiting for work
	// or for per-victim fold units to complete.
	FoldWaitNs int64 `json:"fold_wait_ns"`
	// Ticks is the number of ticks the spine issued.
	Ticks int `json:"ticks"`
}

// StageTiming is one stage's cumulative profile entry.
type StageTiming struct {
	Name string `json:"name"`
	// Ns is cumulative wall time inside the stage's Run (for the
	// monitor stage under the parallel fold, the sum across per-victim
	// units — it can exceed elapsed time).
	Ns int64 `json:"ns"`
	// Runs counts Run invocations (per-victim units each count once).
	Runs int64 `json:"runs"`
}

// addNs accumulates d into stage slot i.
func (p *StageProfile) addNs(i int, d time.Duration) {
	if p == nil {
		return
	}
	atomic.AddInt64(&p.Stages[i].Ns, int64(d))
	atomic.AddInt64(&p.Stages[i].Runs, 1)
}

// addSpineWait accumulates spine time blocked on the free list.
func (p *StageProfile) addSpineWait(d time.Duration) {
	if p == nil {
		return
	}
	atomic.AddInt64(&p.SpineWaitNs, int64(d))
}

// addFoldWait accumulates fold-side blocked time.
func (p *StageProfile) addFoldWait(d time.Duration) {
	if p == nil {
		return
	}
	atomic.AddInt64(&p.FoldWaitNs, int64(d))
}

// since returns the elapsed time since t0 when profiling, else 0 — the
// zero-cost-when-off guard around every timestamp pair.
func (p *StageProfile) since(t0 time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t0)
}

// now returns a timestamp when profiling is on (zero Time otherwise).
func (p *StageProfile) now() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// Control is the control-plane hook the engine's control stage drives:
// advance the simulation clock by dt and apply everything that became
// due — drain the mitigation change queue (mitctl.Controller.Process),
// expire TTLs. It returns the post-advance simulation time. ixp.IXP
// implements it; a nil Control skips the stage (pure data-plane runs).
type Control interface {
	ControlTick(tick int, dt float64) float64
}

// DataPlane egresses one tick of offers: null-route filtering plus the
// fabric's per-port egress pass (fabric.TickStreamOn), fanning ports
// across the supplied runner and streaming delivered flows into the
// sink. ixp.IXP implements it.
type DataPlane interface {
	EgressTick(r fabric.Runner, offers fabric.TickOffers, dt float64, sink fabric.TickSink) (map[string]PortReport, error)
}

// Source produces flow-level offers per tick (attacks, benign services,
// trace replay). traffic.Attack, traffic.WebService and traffic.Trace
// implement it. (ixp.Source aliases this interface.)
type Source interface {
	Offers(tick int, dtSeconds float64) []fabric.Offer
}

// OfferAppender is an optional Source refinement: sources that can
// append their per-tick offers into a caller-owned buffer. The traffic
// stage reuses one buffer per victim across ticks, so appending sources
// cost no per-tick slice allocation in steady state. (ixp.OfferAppender
// aliases this interface.)
type OfferAppender interface {
	AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer
}

// Event runs a control-plane action at the beginning of a tick —
// announcing a blackhole, escalating a rule, withdrawing a route. Do
// closures execute on the control spine, strictly ordered between the
// previous tick's egress and this tick's clock advance, exactly as in
// the serial loop; they must not touch the victims' monitors (the
// previous tick's monitoring stage may still be folding).
type Event struct {
	Tick int
	Name string
	Do   func() error
}

// VictimSpec names one monitored victim port of a run.
type VictimSpec struct {
	// Port names the victim's fabric port.
	Port string
	// Monitor receives every flow delivered at the port, streamed from
	// the egress workers into per-worker shards (bin = tick). The
	// engine creates one when nil.
	Monitor *flowmon.Collector
	// PeerMinBps overrides the run-wide active-peer threshold for this
	// victim (0 inherits Config.PeerMinBps).
	PeerMinBps float64
}

// Driver is a pluggable workload: it names the victim ports it targets
// and fills each tick's offers. AppendOffers may be called concurrently
// for distinct victims (the traffic stage fans victims across the
// worker pool) unless the driver also implements SerialGenerator.
//
// Shipped drivers: SourcesDriver (synthetic attack, the ixp.Scenario
// workload), NewTraceDriver (pcap-less trace replay over
// traffic.Trace), NewPulseDriver (on/off pulsing attack), and
// CarpetDriver (carpet bombing across rotating victim prefixes).
type Driver interface {
	Victims() []VictimSpec
	// AppendOffers appends victim v's offers for the tick to dst and
	// returns the grown slice.
	AppendOffers(v int, dst []fabric.Offer, tick int, dt float64) []fabric.Offer
}

// SerialGenerator marks drivers whose AppendOffers must not run
// concurrently across victims — e.g. SourcesDriver when one Source
// instance feeds several victims.
type SerialGenerator interface {
	SerialGen() bool
}

// Eventful drivers carry their own timed control-plane actions; the
// engine merges them (in order) after Config.Events of the same tick.
type Eventful interface {
	Events() []Event
}

// trafficStage generates each victim's offers, fanning victims across
// the worker pool (traffic.Attack/WebService/trace replay).
type trafficStage struct {
	driver Driver
	ports  []string
	serial bool
}

func (s *trafficStage) Name() string     { return "traffic" }
func (s *trafficStage) Prepare(tick int) {}
func (s *trafficStage) Fold(tick int)    {}
func (s *trafficStage) Run(ctx *Ctx, in, out *Batch) error {
	gen := func(_, i int) {
		out.bufs[i] = s.driver.AppendOffers(i, out.bufs[i][:0], ctx.Tick, ctx.Dt)
	}
	if s.serial {
		for i := range s.ports {
			gen(0, i)
		}
	} else {
		ctx.Pool.Run(len(s.ports), gen)
	}
	for i, port := range s.ports {
		out.Offers[port] = out.bufs[i]
	}
	return nil
}

// controlStage advances the clock and applies the control plane's due
// work (mitctl.Controller.Process; route-server batches arrive via the
// tick's events on the same spine).
type controlStage struct {
	ctl Control
}

func (s *controlStage) Name() string     { return "control" }
func (s *controlStage) Prepare(tick int) {}
func (s *controlStage) Fold(tick int)    {}
func (s *controlStage) Run(ctx *Ctx, in, out *Batch) error {
	if s.ctl != nil {
		ctx.Now = s.ctl.ControlTick(ctx.Tick, ctx.Dt)
	} else {
		ctx.Now = float64(ctx.Tick+1) * ctx.Dt
	}
	return nil
}

// fabricStage egresses the tick's offers (fabric.TickStreamOn via the
// DataPlane), streaming delivered flows into the victims' monitor
// shards.
type fabricStage struct {
	dp DataPlane
	// curTick backs the per-worker monitoring visitors: workers read it
	// only while the spine is blocked inside EgressTick, and only the
	// spine (Prepare) writes it, so it is race-free across the tick
	// barrier even while the previous tick's fold still runs.
	curTick     *int
	victimIndex map[string]int
	cache       [][]fabric.FlowVisitor
	monitors    []*flowmon.Collector
}

func newFabricStage(dp DataPlane, specs []VictimSpec, monitors []*flowmon.Collector) *fabricStage {
	s := &fabricStage{
		dp:          dp,
		curTick:     new(int),
		victimIndex: make(map[string]int, len(specs)),
		cache:       make([][]fabric.FlowVisitor, len(specs)),
		monitors:    monitors,
	}
	for i, spec := range specs {
		s.victimIndex[spec.Port] = i
		s.cache[i] = make([]fabric.FlowVisitor, monitors[i].Shards())
	}
	return s
}

func (s *fabricStage) Name() string     { return "fabric" }
func (s *fabricStage) Prepare(tick int) { *s.curTick = tick }
func (s *fabricStage) Fold(tick int)    {}

// sink supplies the per-(worker, port) visitors of the streaming tick;
// a (victim, worker) visitor is built once and reused every tick.
func (s *fabricStage) sink(worker int, port string) fabric.FlowVisitor {
	vi, ok := s.victimIndex[port]
	if !ok {
		return nil
	}
	row := s.cache[vi]
	slot := worker % len(row) // Shard wraps the same way
	if row[slot] == nil {
		sh := s.monitors[vi].Shard(worker)
		tick := s.curTick
		row[slot] = func(flow netpkt.FlowKey, _ uint64, bytes float64) {
			sh.ObserveFlow(*tick, flow, bytes)
		}
	}
	return row[slot]
}

func (s *fabricStage) Run(ctx *Ctx, in, out *Batch) error {
	reports, err := s.dp.EgressTick(ctx.Pool, in.Offers, ctx.Dt, s.sink)
	if err != nil {
		return err
	}
	out.Reports = reports
	return nil
}

// monitorStage folds the tick's monitoring view: it merges the flowmon
// shards (implicitly, through the collector accessors) and derives each
// victim's per-tick sample, including the active-peer count. It runs on
// the fold side of the pipeline, overlapping the next tick's traffic
// and egress: before reading it moves each collector's merge horizon to
// the tick being folded, so accessor merges drain only bins the spine
// finished writing — an in-flight bin is never split into partial
// flushes, which keeps every bin's float sums bit-identical to a serial
// run.
type monitorStage struct {
	specs    []VictimSpec
	monitors []*flowmon.Collector
	keep     func(netpkt.MAC) bool
}

func (s *monitorStage) Name() string     { return "monitor" }
func (s *monitorStage) Prepare(tick int) {}
func (s *monitorStage) Fold(tick int)    {}
func (s *monitorStage) Run(ctx *Ctx, in, out *Batch) error {
	for i := range s.specs {
		if err := s.RunVictim(ctx, in, i); err != nil {
			return err
		}
	}
	return nil
}

// RunVictim folds one victim's slice of the tick: move its collector's
// merge horizon to the tick being folded, then derive its sample. Each
// victim owns its collector and its sample slot, so distinct victims —
// of this tick or of other in-flight ticks — fold concurrently without
// synchronization; the engine keeps each victim's ticks in order, which
// keeps its horizon monotonic.
func (s *monitorStage) RunVictim(ctx *Ctx, b *Batch, i int) error {
	dt := ctx.Dt
	s.monitors[i].SetMergeHorizon(ctx.Tick)
	rep := b.Reports[s.specs[i].Port]
	b.samples[i] = Sample{
		Tick:                 ctx.Tick,
		Time:                 float64(ctx.Tick) * dt,
		OfferedBps:           rep.OfferedBytes * 8 / dt,
		DeliveredBps:         rep.Result.DeliveredBytes * 8 / dt,
		NulledBps:            rep.NulledBytes * 8 / dt,
		RuleDroppedBps:       rep.Result.RuleDroppedBytes * 8 / dt,
		ShaperDroppedBps:     rep.Result.ShaperDroppedBytes * 8 / dt,
		CongestionDroppedBps: rep.Result.CongestionDroppedBytes * 8 / dt,
		ActivePeers:          s.monitors[i].PeerCountFunc(ctx.Tick, s.specs[i].PeerMinBps*dt/8, s.keep),
	}
	return nil
}

// reportStage appends the tick's samples to the run's series. Its Fold
// marks the tick fully retired — the counter that bounds the series
// when a run aborts with ticks still in flight.
type reportStage struct {
	series []VictimSeries
	folded int
}

func (s *reportStage) Name() string     { return "report" }
func (s *reportStage) Prepare(tick int) {}
func (s *reportStage) Fold(tick int)    { s.folded++ }
func (s *reportStage) Run(ctx *Ctx, in, out *Batch) error {
	for i := range s.series {
		s.series[i].Samples = append(s.series[i].Samples, in.samples[i])
	}
	return nil
}
