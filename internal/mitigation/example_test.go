package mitigation_test

import (
	"fmt"
	"net/netip"

	"stellar/internal/bgp"
	"stellar/internal/mitigation"
)

// ExampleFlowSpecToMatch compiles a hardware-expressible RFC 5575 flow
// specification into a fabric match (which InstallRule then compiles
// into the port's classifier), and shows a non-expressible spec — a
// port range — being refused to the slow path.
func ExampleFlowSpecToMatch() {
	simple := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.DstPrefix(netip.MustParsePrefix("100.10.10.10/32")),
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(17)),  // UDP
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123)), // NTP
	}}
	if m, ok := mitigation.FlowSpecToMatch(simple); ok {
		fmt.Println("hardware path:", m)
	}

	ranged := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSSrcPort, bgp.FlowSpecMatch{GT: true, Value: 1023}),
	}}
	if _, ok := mitigation.FlowSpecToMatch(ranged); !ok {
		fmt.Println("port range: needs slow-path processing")
	}
	// Output:
	// hardware path: proto=UDP,dst=100.10.10.10/32,src-port=123
	// port range: needs slow-path processing
}
