package mitigation

import (
	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// FlowSpecToMatch compiles an RFC 5575 flow specification into the
// fabric's single-pattern match, when it is expressible: equality-only
// operators, one value per component, and the component types a TCAM
// filter supports (dst/src prefix, protocol, src/dst port). This mirrors
// what a router would push into hardware for simple Flowspec rules; the
// general case (ranges, bitmasks, fragments) returns ok=false, which the
// comparison experiments treat as "needs slow-path processing" — one of
// the resource-sharing costs Section 4.2.1 holds against Flowspec.
//
// The returned Match is exactly what fabric.Port.InstallRule feeds the
// port's compiled classifier: a pinned port lands the rule in an
// exact-match table, a prefix component in a prefix trie, so accepted
// Flowspec rules ride the same lock-free fast path as native Stellar
// rules.
func FlowSpecToMatch(fs *bgp.FlowSpec) (fabric.Match, bool) {
	m := fabric.MatchAll()
	for _, c := range fs.Components {
		switch c.Type {
		case bgp.FSDstPrefix:
			m.DstIP = c.Prefix
		case bgp.FSSrcPrefix:
			m.SrcIP = c.Prefix
		case bgp.FSIPProto:
			v, ok := singleEq(c.Matches)
			if !ok || v > 255 {
				return fabric.Match{}, false
			}
			m.Proto = netpkt.IPProto(v)
		case bgp.FSSrcPort:
			v, ok := singleEq(c.Matches)
			if !ok || v > 65535 {
				return fabric.Match{}, false
			}
			m.SrcPort = int32(v)
		case bgp.FSDstPort:
			v, ok := singleEq(c.Matches)
			if !ok || v > 65535 {
				return fabric.Match{}, false
			}
			m.DstPort = int32(v)
		default:
			return fabric.Match{}, false
		}
	}
	return m, true
}

func singleEq(ms []bgp.FlowSpecMatch) (uint64, bool) {
	if len(ms) != 1 {
		return 0, false
	}
	m := ms[0]
	if !m.EQ || m.LT || m.GT {
		return 0, false
	}
	return m.Value, true
}

// FlowSpecAction derives the filtering action from a route's extended
// communities per RFC 5575 §7: a traffic-rate of 0 drops, a positive
// rate shapes. ok is false when no traffic-filtering action is present.
func FlowSpecAction(attrs *bgp.PathAttrs) (action fabric.ActionKind, rateBps float64, ok bool) {
	for _, e := range attrs.ExtCommunities {
		if _, bytesPerSec, isRate := bgp.TrafficRateValue(e); isRate {
			if bytesPerSec == 0 {
				return fabric.ActionDrop, 0, true
			}
			return fabric.ActionShape, float64(bytesPerSec) * 8, true
		}
	}
	return fabric.ActionForward, 0, false
}
