package mitigation

import (
	"errors"
	"fmt"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// Errors from compiling flow specifications into fabric matches. They
// name the reason a spec cannot be expressed as exact-match TCAM
// patterns — the "needs slow-path processing" cases Section 4.2.1 holds
// against Flowspec as a signaling channel.
var (
	// ErrFlowSpecNonEquality: a numeric operand uses a range (<, >) or
	// negated operator; exact-match hardware cannot express it.
	ErrFlowSpecNonEquality = errors.New("mitigation: flowspec operand is not an equality match")
	// ErrFlowSpecComponent: the component type (TCP flags, fragments,
	// packet length, DSCP...) has no fabric match field.
	ErrFlowSpecComponent = errors.New("mitigation: flowspec component not expressible as a fabric match")
	// ErrFlowSpecValue: an operand value is out of range for its field.
	ErrFlowSpecValue = errors.New("mitigation: flowspec operand value out of range")
	// ErrFlowSpecTooWide: the value-set cross product exceeds
	// MaxFlowSpecMatches patterns.
	ErrFlowSpecTooWide = errors.New("mitigation: flowspec value sets expand to too many patterns")
)

// MaxFlowSpecMatches bounds the cross-product expansion of
// FlowSpecToMatches: a spec whose value sets multiply out to more
// exact-match patterns than this is refused (it would exhaust TCAM
// criteria anyway — hardware admission control territory).
const MaxFlowSpecMatches = 64

// FlowSpecToMatches compiles an RFC 5575 flow specification into the
// fabric's exact-match patterns. Equality value sets are supported: a
// component listing several equality operands (RFC 5575's OR semantics,
// e.g. src-port =123 =11211) expands to one Match per value, and
// multiple multi-value components expand to their cross product (capped
// at MaxFlowSpecMatches). The supported component types are the ones a
// TCAM filter holds: dst/src prefix, IP protocol, src/dst port.
//
// Ranges (<, >), unsupported component types and out-of-range values
// return one of the documented Err* errors — the caller decides whether
// that means slow-path processing (the comparison experiments) or a
// rejected mitigation request (mitctl's FlowSpec channel).
//
// Each returned Match is exactly what fabric.Port.InstallRule feeds the
// port's compiled classifier: a pinned port lands the rule in an
// exact-match table, a prefix component in a prefix trie, so accepted
// Flowspec rules ride the same lock-free fast path as native Stellar
// rules.
func FlowSpecToMatches(fs *bgp.FlowSpec) ([]fabric.Match, error) {
	matches := []fabric.Match{fabric.MatchAll()}
	expand := func(vals []uint64, set func(*fabric.Match, uint64)) error {
		if len(matches)*len(vals) > MaxFlowSpecMatches {
			return fmt.Errorf("%w: %d patterns (max %d)",
				ErrFlowSpecTooWide, len(matches)*len(vals), MaxFlowSpecMatches)
		}
		out := make([]fabric.Match, 0, len(matches)*len(vals))
		for _, m := range matches {
			for _, v := range vals {
				mm := m
				set(&mm, v)
				out = append(out, mm)
			}
		}
		matches = out
		return nil
	}
	for _, c := range fs.Components {
		switch c.Type {
		case bgp.FSDstPrefix:
			for i := range matches {
				matches[i].DstIP = c.Prefix
			}
		case bgp.FSSrcPrefix:
			for i := range matches {
				matches[i].SrcIP = c.Prefix
			}
		case bgp.FSIPProto:
			vals, err := equalityValues(c, 255)
			if err != nil {
				return nil, err
			}
			if err := expand(vals, func(m *fabric.Match, v uint64) { m.Proto = netpkt.IPProto(v) }); err != nil {
				return nil, err
			}
		case bgp.FSSrcPort:
			vals, err := equalityValues(c, 65535)
			if err != nil {
				return nil, err
			}
			if err := expand(vals, func(m *fabric.Match, v uint64) { m.SrcPort = int32(v) }); err != nil {
				return nil, err
			}
		case bgp.FSDstPort:
			vals, err := equalityValues(c, 65535)
			if err != nil {
				return nil, err
			}
			if err := expand(vals, func(m *fabric.Match, v uint64) { m.DstPort = int32(v) }); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %s", ErrFlowSpecComponent, c.Type)
		}
	}
	return matches, nil
}

// equalityValues extracts a component's operand values, requiring every
// operand to be a pure equality match within [0, max].
func equalityValues(c bgp.FlowSpecComponent, max uint64) ([]uint64, error) {
	vals := make([]uint64, 0, len(c.Matches))
	for _, m := range c.Matches {
		if !m.EQ || m.LT || m.GT {
			return nil, fmt.Errorf("%w: %s", ErrFlowSpecNonEquality, c.Type)
		}
		if m.Value > max {
			return nil, fmt.Errorf("%w: %s = %d", ErrFlowSpecValue, c.Type, m.Value)
		}
		vals = append(vals, m.Value)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("%w: %s has no operands", ErrFlowSpecValue, c.Type)
	}
	return vals, nil
}

// FlowSpecToMatch compiles a flow specification into a single fabric
// match. It is the single-pattern restriction of FlowSpecToMatches:
// ok is false when the spec does not compile (see the documented Err*
// reasons) or when value sets expand to more than one pattern — the
// cases a single-pattern TCAM slot cannot hold, which the comparison
// experiments treat as "needs slow-path processing". Callers that can
// install several rules per spec should use FlowSpecToMatches.
func FlowSpecToMatch(fs *bgp.FlowSpec) (fabric.Match, bool) {
	ms, err := FlowSpecToMatches(fs)
	if err != nil || len(ms) != 1 {
		return fabric.Match{}, false
	}
	return ms[0], true
}

// FlowSpecAction derives the filtering action from a route's extended
// communities per RFC 5575 §7: a traffic-rate of 0 drops, a positive
// rate shapes. ok is false when no traffic-filtering action is present.
func FlowSpecAction(attrs *bgp.PathAttrs) (action fabric.ActionKind, rateBps float64, ok bool) {
	for _, e := range attrs.ExtCommunities {
		if _, bytesPerSec, isRate := bgp.TrafficRateValue(e); isRate {
			if bytesPerSec == 0 {
				return fabric.ActionDrop, 0, true
			}
			return fabric.ActionShape, float64(bytesPerSec) * 8, true
		}
	}
	return fabric.ActionForward, 0, false
}
