package mitigation

import (
	"errors"
	"net/netip"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

func TestFlowSpecToMatchesValueSets(t *testing.T) {
	// src-port {123, 11211} × proto {UDP}: the OR semantics of RFC 5575
	// numeric operands expand to one exact-match pattern per value.
	fs := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.DstPrefix(netip.MustParsePrefix("100.10.10.10/32")),
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(uint64(netpkt.ProtoUDP))),
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123), bgp.Eq(11211)),
	}}
	ms, err := FlowSpecToMatches(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches: %d", len(ms))
	}
	ports := map[int32]bool{}
	for _, m := range ms {
		if m.Proto != netpkt.ProtoUDP || m.DstIP.String() != "100.10.10.10/32" {
			t.Fatalf("match: %v", m)
		}
		ports[m.SrcPort] = true
	}
	if !ports[123] || !ports[11211] {
		t.Fatalf("ports: %v", ports)
	}

	// Cross product: 2 protos × 2 dst ports = 4 patterns.
	cross := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(6), bgp.Eq(17)),
		bgp.Numeric(bgp.FSDstPort, bgp.Eq(80), bgp.Eq(443)),
	}}
	ms, err = FlowSpecToMatches(cross)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("cross product: %d", len(ms))
	}

	// The multi-value set matches each value, nothing else.
	flow := netpkt.FlowKey{
		Src: netip.MustParseAddr("198.51.100.1"), Dst: netip.MustParseAddr("100.10.10.10"),
		Proto: netpkt.ProtoUDP, SrcPort: 11211, DstPort: 443,
	}
	matched := false
	for _, m := range mustFlowSpecMatches(t, fs) {
		if m.Matches(flow) {
			matched = true
		}
	}
	if !matched {
		t.Fatal("11211 flow not matched by expanded set")
	}
}

func mustFlowSpecMatches(t *testing.T, fs *bgp.FlowSpec) []fabric.Match {
	t.Helper()
	ms, err := FlowSpecToMatches(fs)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestFlowSpecToMatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		fs   *bgp.FlowSpec
		want error
	}{
		{"range", &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
			bgp.Numeric(bgp.FSSrcPort, bgp.FlowSpecMatch{GT: true, Value: 1023}),
		}}, ErrFlowSpecNonEquality},
		{"unsupported-type", &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
			bgp.Numeric(bgp.FSFragment, bgp.Eq(1)),
		}}, ErrFlowSpecComponent},
		{"value-overflow", &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
			bgp.Numeric(bgp.FSIPProto, bgp.Eq(300)),
		}}, ErrFlowSpecValue},
		{"empty-operands", &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
			{Type: bgp.FSSrcPort},
		}}, ErrFlowSpecValue},
	}
	for _, c := range cases {
		if _, err := FlowSpecToMatches(c.fs); !errors.Is(err, c.want) {
			t.Fatalf("%s: err %v, want %v", c.name, err, c.want)
		}
	}

	// Expansion cap: 9 × 8 = 72 > MaxFlowSpecMatches.
	var protos, ports []bgp.FlowSpecMatch
	for i := 0; i < 9; i++ {
		protos = append(protos, bgp.Eq(uint64(1+i)))
	}
	for i := 0; i < 8; i++ {
		ports = append(ports, bgp.Eq(uint64(1000+i)))
	}
	wide := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSIPProto, protos...),
		bgp.Numeric(bgp.FSSrcPort, ports...),
	}}
	if _, err := FlowSpecToMatches(wide); !errors.Is(err, ErrFlowSpecTooWide) {
		t.Fatalf("wide: %v", err)
	}
}

func TestFlowSpecToMatchSinglePatternOnly(t *testing.T) {
	// The single-pattern wrapper keeps its historical contract: ok only
	// when the spec compiles to exactly one pattern.
	multi := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123), bgp.Eq(11211)),
	}}
	if _, ok := FlowSpecToMatch(multi); ok {
		t.Fatal("multi-value accepted by single-pattern compiler")
	}
	single := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123)),
	}}
	if m, ok := FlowSpecToMatch(single); !ok || m.SrcPort != 123 {
		t.Fatalf("single: %v %v", m, ok)
	}
}
