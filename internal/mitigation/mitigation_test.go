package mitigation

import (
	"math"
	"net/netip"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if len(tbl) != 10 {
		t.Fatalf("rows: %d", len(tbl))
	}
	// Spot checks straight from the published table.
	checks := []struct {
		p    Property
		tech Technique
		want Rating
	}{
		{Granularity, RTBH, Disadvantage},
		{Granularity, AdvancedBlackholing, Advantage},
		{SignalingComplexity, TSS, Disadvantage},
		{SignalingComplexity, AdvancedBlackholing, Advantage},
		{Cooperation, TSS, Neutral},
		{Cooperation, Flowspec, Disadvantage},
		{ResourceSharing, Flowspec, Disadvantage},
		{Telemetry, Flowspec, Neutral},
		{Telemetry, ACL, Disadvantage},
		{Scalability, TSS, Disadvantage},
		{Scalability, ACL, Neutral},
		{Resources, RTBH, Advantage},
		{Performance, TSS, Disadvantage},
		{ReactionTime, RTBH, Advantage},
		{Costs, ACL, Neutral},
		{Costs, AdvancedBlackholing, Advantage},
	}
	for _, c := range checks {
		if got := tbl[c.p][c.tech]; got != c.want {
			t.Errorf("Table1[%v][%v] = %v, want %v", c.p, c.tech, got, c.want)
		}
	}
}

func TestAdvancedBlackholingSweepsTable1(t *testing.T) {
	counts := AdvantageCount()
	if counts[AdvancedBlackholing] != 10 {
		t.Fatalf("AdvBH advantages: %d, want 10", counts[AdvancedBlackholing])
	}
	for _, tech := range []Technique{TSS, ACL, RTBH, Flowspec} {
		if counts[tech] >= counts[AdvancedBlackholing] {
			t.Errorf("%v has %d advantages, must be < AdvBH", tech, counts[tech])
		}
	}
}

func TestStrings(t *testing.T) {
	for _, tech := range []Technique{TSS, ACL, RTBH, Flowspec, AdvancedBlackholing} {
		if tech.String() == "" {
			t.Fatal("technique string")
		}
	}
	if Advantage.String() != "+" || Neutral.String() != "o" || Disadvantage.String() != "-" {
		t.Fatal("rating strings")
	}
	if Granularity.String() != "Granularity" || Costs.String() != "Costs" {
		t.Fatal("property strings")
	}
}

func ntpFlow() netpkt.FlowKey {
	return netpkt.FlowKey{
		Src: netip.MustParseAddr("198.51.100.1"), Dst: netip.MustParseAddr("100.10.10.10"),
		Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
	}
}

func webFlow() netpkt.FlowKey {
	return netpkt.FlowKey{
		Src: netip.MustParseAddr("203.0.113.9"), Dst: netip.MustParseAddr("100.10.10.10"),
		Proto: netpkt.ProtoTCP, SrcPort: 50000, DstPort: 443,
	}
}

func ntpMatch() fabric.Match {
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	return m
}

func TestACLFiltersAfterPort(t *testing.T) {
	acl := &ACLFilter{Rules: []fabric.Match{ntpMatch()}}
	delivered := map[netpkt.FlowKey]float64{
		ntpFlow(): 1000,
		webFlow(): 500,
	}
	kept, discarded := acl.FilterAfterPort(delivered)
	if kept != 500 || discarded != 1000 {
		t.Fatalf("kept=%v discarded=%v", kept, discarded)
	}
}

func TestScrubberCleansTraffic(t *testing.T) {
	s := &Scrubber{CapacityBps: 1e12, DetectionRate: 0.99, FalsePositiveRate: 0.01, CostPerGB: 2}
	r := s.Scrub(1e9, 1e8, 1)
	if math.Abs(r.LeakedAttackBytes-1e9*0.01) > 1 {
		t.Fatalf("leak: %v", r.LeakedAttackBytes)
	}
	if math.Abs(r.CleanBenignBytes-1e8*0.99) > 1 {
		t.Fatalf("clean: %v", r.CleanBenignBytes)
	}
	wantCost := (1e9 + 1e8) / 1e9 * 2
	if math.Abs(r.Cost-wantCost) > 1e-9 || math.Abs(s.TotalCost-wantCost) > 1e-9 {
		t.Fatalf("cost: %v total %v", r.Cost, s.TotalCost)
	}
}

func TestScrubberOverload(t *testing.T) {
	// A Tbps-scale attack exceeds the scrubbing capacity: traffic beyond
	// the ingest limit is lost regardless of class.
	s := &Scrubber{CapacityBps: 8e9, DetectionRate: 1, FalsePositiveRate: 0}
	attack := 2e9 * 1.0 // bytes over 1s = 16 Gbps > 8 Gbps capacity
	benign := 1e8
	r := s.Scrub(attack, benign, 1)
	if r.CleanBenignBytes >= benign {
		t.Fatalf("benign survived overload untouched: %v", r.CleanBenignBytes)
	}
	admitted := 8e9 / 8.0
	frac := admitted / (attack + benign)
	if math.Abs(r.CleanBenignBytes-benign*frac) > 1 {
		t.Fatalf("benign: %v want %v", r.CleanBenignBytes, benign*frac)
	}
}

func TestScrubberConservation(t *testing.T) {
	s := &Scrubber{CapacityBps: 1e10, DetectionRate: 0.9, FalsePositiveRate: 0.05}
	attack, benign := 3e8, 2e8
	r := s.Scrub(attack, benign, 1)
	total := r.CleanBenignBytes + r.LeakedAttackBytes + r.DroppedBytes
	if math.Abs(total-(attack+benign)) > 1 {
		t.Fatalf("conservation: %v vs %v", total, attack+benign)
	}
}

func TestFlowspecPeer(t *testing.T) {
	accepting := &FlowspecPeer{Accepts: true, Rules: []fabric.Match{ntpMatch()}}
	refusing := &FlowspecPeer{Accepts: false, Rules: []fabric.Match{ntpMatch()}}
	if !accepting.FiltersFlow(ntpFlow()) {
		t.Fatal("accepting peer did not filter")
	}
	if accepting.FiltersFlow(webFlow()) {
		t.Fatal("accepting peer filtered benign flow")
	}
	if refusing.FiltersFlow(ntpFlow()) {
		t.Fatal("refusing peer filtered")
	}
}

func TestFlowSpecToMatch(t *testing.T) {
	fs := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.DstPrefix(netip.MustParsePrefix("100.10.10.10/32")),
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(17)),
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123)),
	}}
	m, ok := FlowSpecToMatch(fs)
	if !ok {
		t.Fatal("simple flowspec not compilable")
	}
	if m.Proto != netpkt.ProtoUDP || m.SrcPort != 123 || m.DstPort != fabric.AnyPort {
		t.Fatalf("match: %+v", m)
	}
	if !m.Matches(ntpFlow()) {
		t.Fatal("compiled match misses the NTP flow")
	}
	if m.Matches(webFlow()) {
		t.Fatal("compiled match hits benign flow")
	}
}

func TestFlowSpecToMatchRejectsComplex(t *testing.T) {
	// Port ranges need slow-path processing: not expressible as one
	// TCAM pattern.
	rangeSpec := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSDstPort,
			bgp.FlowSpecMatch{GT: true, EQ: true, Value: 1000},
			bgp.FlowSpecMatch{AND: true, LT: true, EQ: true, Value: 2000}),
	}}
	if _, ok := FlowSpecToMatch(rangeSpec); ok {
		t.Fatal("range compiled to a single match")
	}
	fragSpec := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSFragment, bgp.Eq(1)),
	}}
	if _, ok := FlowSpecToMatch(fragSpec); ok {
		t.Fatal("fragment component compiled")
	}
	ltSpec := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSSrcPort, bgp.FlowSpecMatch{LT: true, Value: 1024}),
	}}
	if _, ok := FlowSpecToMatch(ltSpec); ok {
		t.Fatal("less-than compiled")
	}
}

func TestFlowSpecAction(t *testing.T) {
	drop := &bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(64512, 0)}}
	if a, _, ok := FlowSpecAction(drop); !ok || a != fabric.ActionDrop {
		t.Fatalf("drop: %v %v", a, ok)
	}
	shape := &bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(64512, 25e6)}}
	a, rate, ok := FlowSpecAction(shape)
	if !ok || a != fabric.ActionShape || rate != 200e6 {
		t.Fatalf("shape: %v %v %v", a, rate, ok)
	}
	none := &bgp.PathAttrs{}
	if _, _, ok := FlowSpecAction(none); ok {
		t.Fatal("action without communities")
	}
}
