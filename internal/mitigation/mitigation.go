// Package mitigation models the DDoS-mitigation techniques the paper
// compares Advanced Blackholing against (Table 1 and Section 1.1):
// traffic scrubbing services (TSS), router ACL filters, remotely
// triggered blackholing (RTBH) and BGP Flowspec. Each baseline has both
// a qualitative property profile (regenerating Table 1) and a
// behavioural model the IXP harness uses for head-to-head experiments
// (Figure 3c vs Figure 10c).
package mitigation

import (
	"fmt"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// Technique identifies a mitigation approach.
type Technique int

// Techniques in Table 1's column order.
const (
	TSS Technique = iota
	ACL
	RTBH
	Flowspec
	AdvancedBlackholing
)

func (t Technique) String() string {
	switch t {
	case TSS:
		return "TSS"
	case ACL:
		return "ACL filters"
	case RTBH:
		return "RTBH"
	case Flowspec:
		return "Flowspec"
	case AdvancedBlackholing:
		return "Advanced Blackholing"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Rating is a Table 1 cell.
type Rating int

// Ratings: ✓ advantage, ✗ disadvantage, • neutral.
const (
	Disadvantage Rating = iota
	Neutral
	Advantage
)

func (r Rating) String() string {
	switch r {
	case Advantage:
		return "+"
	case Neutral:
		return "o"
	default:
		return "-"
	}
}

// Property is one Table 1 row.
type Property int

// Properties in Table 1's row order.
const (
	Granularity Property = iota
	SignalingComplexity
	Cooperation
	ResourceSharing
	Telemetry
	Scalability
	Resources
	Performance
	ReactionTime
	Costs
)

// PropertyNames lists the row labels in order.
var PropertyNames = []string{
	"Granularity", "Signaling complexity", "Cooperation", "Resource sharing",
	"Telemetry", "Scalability", "Resources", "Performance", "Reaction time", "Costs",
}

func (p Property) String() string {
	if int(p) < len(PropertyNames) {
		return PropertyNames[p]
	}
	return fmt.Sprintf("Property(%d)", int(p))
}

// Table1 returns the paper's qualitative comparison matrix, exactly as
// published: rows Table 1, columns TSS/ACL/RTBH/Flowspec/AdvancedBH.
func Table1() map[Property]map[Technique]Rating {
	row := func(tss, acl, rtbh, fs, abh Rating) map[Technique]Rating {
		return map[Technique]Rating{TSS: tss, ACL: acl, RTBH: rtbh, Flowspec: fs, AdvancedBlackholing: abh}
	}
	return map[Property]map[Technique]Rating{
		Granularity:         row(Advantage, Advantage, Disadvantage, Advantage, Advantage),
		SignalingComplexity: row(Disadvantage, Disadvantage, Disadvantage, Disadvantage, Advantage),
		Cooperation:         row(Neutral, Neutral, Disadvantage, Disadvantage, Advantage),
		ResourceSharing:     row(Advantage, Advantage, Advantage, Disadvantage, Advantage),
		Telemetry:           row(Advantage, Disadvantage, Disadvantage, Neutral, Advantage),
		Scalability:         row(Disadvantage, Neutral, Advantage, Advantage, Advantage),
		Resources:           row(Disadvantage, Disadvantage, Advantage, Disadvantage, Advantage),
		Performance:         row(Disadvantage, Advantage, Advantage, Advantage, Advantage),
		ReactionTime:        row(Disadvantage, Disadvantage, Advantage, Advantage, Advantage),
		Costs:               row(Disadvantage, Neutral, Advantage, Advantage, Advantage),
	}
}

// AdvantageCount returns the number of Advantage cells per technique —
// Advanced Blackholing sweeps all ten rows in the paper.
func AdvantageCount() map[Technique]int {
	counts := make(map[Technique]int)
	for _, row := range Table1() {
		for tech, r := range row {
			if r == Advantage {
				counts[tech]++
			}
		}
	}
	return counts
}

// ---------------------------------------------------------------------
// Behavioural models.

// ACLFilter models policy-based filtering at the victim's own border
// router (Section 1.1): it matches the same L2-L4 patterns as Advanced
// Blackholing but acts *behind* the member's IXP port, so the port (and
// its capacity) still carries the attack — the key structural weakness
// the paper identifies ("the bandwidth to a neighbor AS can still be
// exhausted").
type ACLFilter struct {
	Rules []fabric.Match
}

// FilterAfterPort splits delivered traffic into kept and discarded
// according to the ACL. Input is the per-flow delivered bytes at the
// member port (post congestion); the discard happens downstream.
func (a *ACLFilter) FilterAfterPort(delivered map[netpkt.FlowKey]float64) (kept, discarded float64) {
	for flow, bytes := range delivered {
		matched := false
		for _, m := range a.Rules {
			if m.Matches(flow) {
				matched = true
				break
			}
		}
		if matched {
			discarded += bytes
		} else {
			kept += bytes
		}
	}
	return kept, discarded
}

// Scrubber models a traffic scrubbing service (TSS): traffic is
// redirected to the scrubbing center (adding path stretch), cleaned with
// an imperfect true/false-positive profile, and billed per byte.
type Scrubber struct {
	// CapacityBps is the scrubbing center's ingest capacity; traffic
	// beyond it is dropped indiscriminately (the Tbps-attack failure
	// mode of Section 1.1).
	CapacityBps float64
	// DetectionRate is the fraction of attack bytes correctly removed.
	DetectionRate float64
	// FalsePositiveRate is the fraction of benign bytes wrongly removed.
	FalsePositiveRate float64
	// CostPerGB is the per-gigabyte scrubbing fee.
	CostPerGB float64
	// AddedLatencyMs is the path-stretch penalty for redirected traffic.
	AddedLatencyMs float64

	// TotalCost accumulates fees across Scrub calls.
	TotalCost float64
}

// ScrubResult is the outcome of scrubbing one tick of traffic.
type ScrubResult struct {
	CleanBenignBytes  float64 // benign traffic surviving the scrub
	LeakedAttackBytes float64 // attack bytes the scrubber missed
	DroppedBytes      float64 // removed bytes (attack + false positives + overload)
	Cost              float64
}

// Scrub processes one tick of (attackBytes, benignBytes) over dtSeconds.
func (s *Scrubber) Scrub(attackBytes, benignBytes, dtSeconds float64) ScrubResult {
	var r ScrubResult
	total := attackBytes + benignBytes
	capBytes := s.CapacityBps * dtSeconds / 8
	admitFrac := 1.0
	if s.CapacityBps > 0 && total > capBytes && total > 0 {
		admitFrac = capBytes / total
		r.DroppedBytes += total - capBytes
	}
	attack := attackBytes * admitFrac
	benign := benignBytes * admitFrac

	caught := attack * s.DetectionRate
	fp := benign * s.FalsePositiveRate
	r.DroppedBytes += caught + fp
	r.LeakedAttackBytes = attack - caught
	r.CleanBenignBytes = benign - fp
	r.Cost = total / 1e9 * s.CostPerGB
	s.TotalCost += r.Cost
	return r
}

// FlowspecPeer models inter-domain Flowspec (Section 1.1): the victim
// propagates fine-grained filter rules to its peers, but each peer
// chooses whether to accept them (trust, resource sharing). An accepting
// peer filters at its own edge; a refusing peer changes nothing.
type FlowspecPeer struct {
	Accepts bool
	Rules   []fabric.Match
}

// FiltersFlow reports whether the peer's installed Flowspec rules drop
// the flow at its edge (before the traffic enters the IXP).
func (p *FlowspecPeer) FiltersFlow(f netpkt.FlowKey) bool {
	if !p.Accepts {
		return false
	}
	for _, m := range p.Rules {
		if m.Matches(f) {
			return true
		}
	}
	return false
}
