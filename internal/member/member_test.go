package member

import (
	"math"
	"testing"

	"stellar/internal/netpkt"
)

func TestHonorsRTBH(t *testing.T) {
	cases := []struct {
		accepts, acts, want bool
	}{
		{true, true, true},
		{true, false, false},
		{false, true, false},
		{false, false, false},
	}
	for _, c := range cases {
		m := &Member{AcceptsMoreSpecifics: c.accepts, ActsOnBlackhole: c.acts}
		if got := m.HonorsRTBH(); got != c.want {
			t.Errorf("accepts=%v acts=%v -> %v, want %v", c.accepts, c.acts, got, c.want)
		}
	}
}

func TestMakePopulationIdentities(t *testing.T) {
	members := MakePopulation(PopulationConfig{N: 650, HonoringFraction: 0.3, PortCapacityBps: 1e10, Seed: 1})
	if len(members) != 650 {
		t.Fatalf("N: %d", len(members))
	}
	macs := make(map[netpkt.MAC]bool)
	asns := make(map[uint32]bool)
	for _, m := range members {
		if macs[m.MAC] {
			t.Fatalf("duplicate MAC %s", m.MAC)
		}
		macs[m.MAC] = true
		if asns[m.ASN] {
			t.Fatalf("duplicate ASN %d", m.ASN)
		}
		asns[m.ASN] = true
		if len(m.Prefixes) != 1 || !m.Prefixes[0].IsValid() {
			t.Fatalf("prefixes: %v", m.Prefixes)
		}
		if m.PortCapacityBps != 1e10 {
			t.Fatal("capacity")
		}
		if !m.BGPID.Is4() {
			t.Fatal("BGP ID")
		}
	}
}

func TestMakePopulationHonoringFraction(t *testing.T) {
	for _, frac := range []float64{0.0, 0.3, 0.7, 1.0} {
		members := MakePopulation(PopulationConfig{N: 400, HonoringFraction: frac, Seed: 7})
		got := float64(HonoringCount(members)) / 400
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("fraction %v: got %v", frac, got)
		}
	}
}

func TestMakePopulationDeterministic(t *testing.T) {
	a := MakePopulation(PopulationConfig{N: 100, HonoringFraction: 0.3, Seed: 42})
	b := MakePopulation(PopulationConfig{N: 100, HonoringFraction: 0.3, Seed: 42})
	for i := range a {
		if a[i].HonorsRTBH() != b[i].HonorsRTBH() || a[i].MAC != b[i].MAC {
			t.Fatalf("member %d differs across same-seed runs", i)
		}
	}
	c := MakePopulation(PopulationConfig{N: 100, HonoringFraction: 0.3, Seed: 43})
	diff := 0
	for i := range a {
		if a[i].HonorsRTBH() != c[i].HonorsRTBH() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical honoring assignment")
	}
}

func TestPeer(t *testing.T) {
	m := MakePopulation(PopulationConfig{N: 1, Seed: 1})[0]
	name, mac := m.Peer()
	if name != m.Name || mac != m.MAC {
		t.Fatal("Peer accessor")
	}
}

func TestMakePopulationUniquePrefixes(t *testing.T) {
	members := MakePopulation(PopulationConfig{N: 1000, Seed: 3})
	seen := make(map[string]bool)
	for _, m := range members {
		p := m.Prefixes[0].String()
		if seen[p] {
			t.Fatalf("duplicate prefix %s", p)
		}
		seen[p] = true
	}
}
