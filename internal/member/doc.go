// Package member models IXP member ASes: their identity on the peering
// LAN (ASN, router MAC, BGP ID), their port capacity, the prefixes they
// originate, and — crucially for Section 2.4 — their behaviour toward
// RTBH signals. The paper finds that almost 70% of members do not act on
// blackholing announcements, either because they reject more-specific
// prefixes (/32s) by default or because they do not participate in RTBH;
// that honoring ratio is an explicit parameter here.
package member
