package member

import (
	"fmt"
	"net/netip"

	"stellar/internal/netpkt"
	"stellar/internal/stats"
)

// Member is one IXP member AS.
type Member struct {
	Name  string
	ASN   uint32
	MAC   netpkt.MAC
	BGPID netip.Addr
	// PortCapacityBps is the member's IXP port speed.
	PortCapacityBps float64
	// Prefixes the member originates (registered in the IRR).
	Prefixes []netip.Prefix

	// AcceptsMoreSpecifics: the member's import filters accept prefixes
	// longer than /24 (required to even see a /32 RTBH announcement).
	AcceptsMoreSpecifics bool
	// ActsOnBlackhole: the member installs a null route for routes
	// carrying the BLACKHOLE community.
	ActsOnBlackhole bool
}

// HonorsRTBH reports whether the member would stop sending traffic to a
// blackholed /32: it must both accept the more-specific announcement and
// act on the community.
func (m *Member) HonorsRTBH() bool {
	return m.AcceptsMoreSpecifics && m.ActsOnBlackhole
}

// Peer returns the member's traffic-source identity.
func (m *Member) Peer() (name string, mac netpkt.MAC) { return m.Name, m.MAC }

// PopulationConfig parameterizes a synthetic member population.
type PopulationConfig struct {
	// N is the number of members (the paper's L-IXP has >800; the
	// controlled experiment peers with >650).
	N int
	// HonoringFraction is the fraction of members that honor RTBH
	// signals (~0.3 at the paper's IXP: almost 70% do not).
	HonoringFraction float64
	// PortCapacityBps per member; the experimental AS uses 10 Gbps.
	PortCapacityBps float64
	// Seed drives the deterministic assignment of behaviours.
	Seed uint64
}

// MakePopulation fabricates a member population with deterministic
// identities: ASNs 64512+i, MACs 02:20:..., BGP IDs 10.0.x.y, one /24
// per member out of 100.64.0.0/10 (carrier space used as synthetic
// public space).
func MakePopulation(cfg PopulationConfig) []*Member {
	rng := stats.NewRand(cfg.Seed)
	members := make([]*Member, cfg.N)
	perm := rng.Perm(cfg.N)
	honoring := int(float64(cfg.N)*cfg.HonoringFraction + 0.5)
	honors := make([]bool, cfg.N)
	for i := 0; i < honoring && i < cfg.N; i++ {
		honors[perm[i]] = true
	}
	for i := range members {
		var mac netpkt.MAC
		mac[0], mac[1] = 0x02, 0x20
		mac[2] = byte(i >> 24)
		mac[3] = byte(i >> 16)
		mac[4] = byte(i >> 8)
		mac[5] = byte(i)
		// One unique /24 per member out of 100.64.0.0/10 (up to 16384
		// members before the space wraps).
		prefix := netip.PrefixFrom(
			netip.AddrFrom4([4]byte{100, byte(64 + i/256), byte(i % 256), 0}), 24)
		members[i] = &Member{
			Name:                 fmt.Sprintf("AS%d", 64512+i),
			ASN:                  uint32(64512 + i),
			MAC:                  mac,
			BGPID:                netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			PortCapacityBps:      cfg.PortCapacityBps,
			Prefixes:             []netip.Prefix{prefix},
			AcceptsMoreSpecifics: honors[i],
			ActsOnBlackhole:      honors[i],
		}
	}
	return members
}

// HonoringCount returns how many members honor RTBH.
func HonoringCount(members []*Member) int {
	n := 0
	for _, m := range members {
		if m.HonorsRTBH() {
			n++
		}
	}
	return n
}
