package routeserver

import (
	"strings"
	"testing"
)

// TestGlassErrors is the table-driven coverage of the looking-glass
// install-error summary: the no-source fast path, per-class counter
// rendering, and the last-error line appearing only when present.
func TestGlassErrors(t *testing.T) {
	cases := []struct {
		name    string
		source  ErrorSource
		want    []string
		notWant []string
	}{
		{
			name:    "unset source fast path",
			source:  nil,
			want:    []string{"errors: no controller attached"},
			notWant: []string{"install errors"},
		},
		{
			name:    "zero counters, no last error",
			source:  func() ErrorSummary { return ErrorSummary{} },
			want:    []string{"install errors: f1 0 f2 0 qos 0 queue-deadline 0 other 0"},
			notWant: []string{"last:"},
		},
		{
			name: "every class rendered",
			source: func() ErrorSummary {
				return ErrorSummary{F1: 3, F2: 1, QoS: 2, QueueDeadline: 4, Other: 5}
			},
			want:    []string{"install errors: f1 3 f2 1 qos 2 queue-deadline 4 other 5"},
			notWant: []string{"last:"},
		},
		{
			name: "last error line when present",
			source: func() ErrorSummary {
				return ErrorSummary{F1: 1, LastError: "install mit:A:1: hw: L3/4 criteria exhausted"}
			},
			want: []string{
				"install errors: f1 1 f2 0",
				"last: install mit:A:1: hw: L3/4 criteria exhausted",
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := newRS(t, peerCfg(0))
			if tc.source != nil {
				rs.SetErrorSource(tc.source)
			}
			got := rs.GlassErrors()
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Fatalf("missing %q in:\n%s", w, got)
				}
			}
			for _, nw := range tc.notWant {
				if strings.Contains(got, nw) {
					t.Fatalf("unexpected %q in:\n%s", nw, got)
				}
			}
		})
	}

	// The source is re-read on every query — counters move between calls.
	rs := newRS(t, peerCfg(0))
	n := 0
	rs.SetErrorSource(func() ErrorSummary { n++; return ErrorSummary{F1: n} })
	if got := rs.GlassErrors(); !strings.Contains(got, "f1 1 ") {
		t.Fatalf("first query:\n%s", got)
	}
	if got := rs.GlassErrors(); !strings.Contains(got, "f1 2 ") {
		t.Fatalf("second query not re-read:\n%s", got)
	}
}
