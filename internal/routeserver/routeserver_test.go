package routeserver

import (
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/irr"
	"stellar/internal/rib"
)

const ixpASN = 6695 // DE-CIX-like IXP ASN

var blackholeNH = netip.MustParseAddr("80.81.193.66")

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func newRS(t *testing.T, peers ...PeerConfig) *RouteServer {
	t.Helper()
	policy := irr.NewPolicy()
	rs := New(Config{ASN: ixpASN, BlackholeNextHop: blackholeNH, Policy: policy})
	for _, p := range peers {
		if err := rs.AddPeer(p); err != nil {
			t.Fatal(err)
		}
		// Register each member's /24 in the IRR.
		policy.IRR.Register(p.ASN, netip.PrefixFrom(
			netip.AddrFrom4([4]byte{100, 10, byte(p.ASN % 256), 0}), 24))
	}
	return rs
}

func peerCfg(i int) PeerConfig {
	return PeerConfig{
		Name:  string(rune('A' + i)),
		ASN:   uint32(64512 + i),
		BGPID: netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
	}
}

func announce(asn uint32, prefix netip.Prefix, communities ...bgp.Community) *bgp.Update {
	return &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{asn}}},
			NextHop:     netip.AddrFrom4([4]byte{80, 81, 192, byte(asn % 200)}),
			Communities: communities,
		},
		NLRI: []bgp.PathPrefix{{Prefix: prefix}},
	}
}

func TestAddPeerDuplicate(t *testing.T) {
	rs := newRS(t, peerCfg(0))
	if err := rs.AddPeer(peerCfg(0)); err != ErrDuplicatePeer {
		t.Fatalf("err = %v", err)
	}
	if got := rs.Peers(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Peers: %v", got)
	}
}

func TestUnknownPeer(t *testing.T) {
	rs := newRS(t, peerCfg(0))
	if _, _, err := rs.HandleUpdate("Z", &bgp.Update{}); err != ErrUnknownPeer {
		t.Fatalf("err = %v", err)
	}
	if _, err := rs.HandleWithdrawAll("Z"); err != ErrUnknownPeer {
		t.Fatalf("withdraw err = %v", err)
	}
}

func TestAnnouncePropagation(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	exports, rejs, err := rs.HandleUpdate("A", announce(64512, prefix))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 0 {
		t.Fatalf("rejections: %+v", rejs)
	}
	// Exported to B and C, not back to A.
	if len(exports) != 2 {
		t.Fatalf("exports: %d, want 2", len(exports))
	}
	seen := map[string]bool{}
	for _, e := range exports {
		seen[e.Peer] = true
		if len(e.Update.NLRI) != 1 || e.Update.NLRI[0].Prefix != prefix {
			t.Fatalf("export NLRI: %+v", e.Update.NLRI)
		}
		// Next hop unchanged for plain routes (route server transparency).
		if e.Update.Attrs.NextHop == blackholeNH {
			t.Fatal("plain route got blackhole next hop")
		}
	}
	if !seen["B"] || !seen["C"] || seen["A"] {
		t.Fatalf("targets: %v", seen)
	}
	if rs.Table().Len() != 1 {
		t.Fatalf("table len: %d", rs.Table().Len())
	}
}

func TestImportRejectsUnregistered(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	_, rejs, err := rs.HandleUpdate("A", announce(64512, pfx("8.8.8.0/24")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 {
		t.Fatalf("rejections: %+v", rejs)
	}
	if rs.Table().Len() != 0 {
		t.Fatal("rejected route stored")
	}
	if len(rs.Rejections()) != 1 {
		t.Fatal("rejection log")
	}
}

func TestImportRejectsHijack(t *testing.T) {
	// Peer B announces A's registered prefix: IRR check must reject.
	rs := newRS(t, peerCfg(0), peerCfg(1))
	prefixA := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	_, rejs, err := rs.HandleUpdate("B", announce(64513, prefixA))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 {
		t.Fatalf("hijack accepted: %+v", rejs)
	}
}

func TestImportRejectsWrongFirstAS(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	u := announce(64512, prefix)
	// Peer B sends an update whose AS path starts with A's ASN.
	_, rejs, err := rs.HandleUpdate("B", u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 {
		t.Fatal("path spoof accepted")
	}
}

func TestMoreSpecificRequiresBlackholeCommunity(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	host := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 10}), 32)

	// Without the community: rejected.
	_, rejs, err := rs.HandleUpdate("A", announce(64512, host))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 {
		t.Fatal("/32 without blackhole community accepted")
	}

	// With BLACKHOLE: accepted, next hop rewritten on export.
	exports, rejs, err := rs.HandleUpdate("A", announce(64512, host, bgp.CommunityBlackhole))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 0 {
		t.Fatalf("blackhole /32 rejected: %+v", rejs)
	}
	if len(exports) != 1 {
		t.Fatalf("exports: %d", len(exports))
	}
	got := exports[0].Update
	if got.Attrs.NextHop != blackholeNH {
		t.Fatalf("next hop = %v, want blackhole %v", got.Attrs.NextHop, blackholeNH)
	}
	if !got.Attrs.HasCommunity(bgp.CommunityNoExport) {
		t.Fatal("blackhole export missing no-export")
	}
}

func TestIXPSpecificBlackholeCommunity(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	host := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 10}), 32)
	// IXP_ASN:666 variant.
	_, rejs, err := rs.HandleUpdate("A", announce(64512, host, bgp.MakeCommunity(ixpASN, 666)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 0 {
		t.Fatalf("IXP:666 rejected: %+v", rejs)
	}
}

func TestExportPolicyBlockAll(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	// (0, IXP_ASN): announce to no one.
	exports, _, err := rs.HandleUpdate("A", announce(64512, prefix, bgp.MakeCommunity(0, ixpASN)))
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 0 {
		t.Fatalf("block-all exported to %d peers", len(exports))
	}
}

func TestExportPolicyAllMinusOne(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	// (0, 64513): exclude peer B — the "All-1" policy of Figure 3(b).
	exports, _, err := rs.HandleUpdate("A", announce(64512, prefix, bgp.MakeCommunity(0, 64513)))
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 1 || exports[0].Peer != "C" {
		t.Fatalf("All-1 exports: %+v", exports)
	}
}

func TestExportPolicyWhitelist(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	// (IXP, 64514): announce only to peer C.
	exports, _, err := rs.HandleUpdate("A", announce(64512, prefix, bgp.MakeCommunity(ixpASN, 64514)))
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 1 || exports[0].Peer != "C" {
		t.Fatalf("whitelist exports: %+v", exports)
	}
}

func TestWithdrawPropagation(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	if _, _, err := rs.HandleUpdate("A", announce(64512, prefix)); err != nil {
		t.Fatal(err)
	}
	exports, _, err := rs.HandleUpdate("A", &bgp.Update{
		Withdrawn: []bgp.PathPrefix{{Prefix: prefix}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 1 || exports[0].Peer != "B" || len(exports[0].Update.Withdrawn) != 1 {
		t.Fatalf("withdraw exports: %+v", exports)
	}
	if rs.Table().Len() != 0 {
		t.Fatal("withdrawn route still in table")
	}
	// Withdrawing an unknown prefix is a no-op.
	exports, _, err = rs.HandleUpdate("A", &bgp.Update{
		Withdrawn: []bgp.PathPrefix{{Prefix: pfx("9.9.9.0/24")}},
	})
	if err != nil || len(exports) != 0 {
		t.Fatalf("unknown withdraw: %v %v", exports, err)
	}
}

func TestHandleWithdrawAll(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	if _, _, err := rs.HandleUpdate("A", announce(64512, prefix)); err != nil {
		t.Fatal(err)
	}
	exports, err := rs.HandleWithdrawAll("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 1 || len(exports[0].Updates) != 1 || len(exports[0].Updates[0].Withdrawn) != 1 {
		t.Fatalf("session-loss exports: %+v", exports)
	}
	if rs.Table().Len() != 0 {
		t.Fatal("table not cleared")
	}
}

func TestControllerFeedBypassesBestPath(t *testing.T) {
	// Two members announce the same /32 with different blackholing
	// intent; the controller must see both paths (the ADD-PATH
	// rationale of Section 4.3).
	rs := newRS(t, peerCfg(0), peerCfg(1))
	// Shared prefix registered for both (delegation).
	shared := pfx("100.99.0.0/24")
	rs.cfg.Policy.IRR.Register(64512, shared)
	rs.cfg.Policy.IRR.Register(64513, shared)
	host := pfx("100.99.0.7/32")

	var events []ControllerEvent
	rs.Subscribe(func(ev ControllerEvent) { events = append(events, ev) })

	if _, _, err := rs.HandleUpdate("A", announce(64512, host, bgp.CommunityBlackhole)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.HandleUpdate("B", announce(64513, host, bgp.CommunityBlackhole)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("controller events: %d, want 2", len(events))
	}
	if events[0].PathID == events[1].PathID {
		t.Fatal("path IDs must differ per peer")
	}
	if rs.Table().Len() != 2 {
		t.Fatalf("table holds %d paths, want 2 (ADD-PATH)", rs.Table().Len())
	}
	// Best-path export would have hidden one of them.
	if len(rs.Table().Lookup(host)) != 2 {
		t.Fatal("lookup lost a path")
	}
}

func TestControllerFeedWithdraw(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	var events []ControllerEvent
	rs.Subscribe(func(ev ControllerEvent) { events = append(events, ev) })
	if _, _, err := rs.HandleUpdate("A", announce(64512, prefix)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.HandleUpdate("A", &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: prefix}}}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || len(events[1].Withdrawn) != 1 {
		t.Fatalf("events: %+v", events)
	}
}

func TestRejectedAnnouncementNotFedToController(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	var events int
	rs.Subscribe(func(ControllerEvent) { events++ })
	if _, _, err := rs.HandleUpdate("A", announce(64512, pfx("8.8.8.0/24"))); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatal("rejected announcement reached controller")
	}
}

func TestBestPathChangeReexports(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	shared := pfx("100.99.0.0/24")
	rs.cfg.Policy.IRR.Register(64512, shared)
	rs.cfg.Policy.IRR.Register(64513, shared)

	// A announces with a long path; B then announces shorter.
	uA := announce(64512, shared)
	uA.Attrs.ASPath = []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512, 65000, 65001}}}
	if _, _, err := rs.HandleUpdate("A", uA); err != nil {
		t.Fatal(err)
	}
	exports, _, err := rs.HandleUpdate("B", announce(64513, shared))
	if err != nil {
		t.Fatal(err)
	}
	// B's shorter path becomes best: exported to A and C.
	if len(exports) != 2 {
		t.Fatalf("re-export count: %d", len(exports))
	}
	// A re-announcing the same (non-best) path triggers no export churn.
	exports, _, err = rs.HandleUpdate("A", uA)
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) != 0 {
		t.Fatalf("non-best re-announce exported: %+v", exports)
	}
}

func TestIsBlackhole(t *testing.T) {
	rs := newRS(t, peerCfg(0))
	a := bgp.PathAttrs{Communities: []bgp.Community{bgp.CommunityBlackhole}}
	if !rs.IsBlackhole(&a) {
		t.Fatal("RFC 7999 community not recognized")
	}
	b := bgp.PathAttrs{Communities: []bgp.Community{bgp.MakeCommunity(ixpASN, 666)}}
	if !rs.IsBlackhole(&b) {
		t.Fatal("IXP:666 not recognized")
	}
	c := bgp.PathAttrs{Communities: []bgp.Community{bgp.MakeCommunity(1, 2)}}
	if rs.IsBlackhole(&c) {
		t.Fatal("random community recognized as blackhole")
	}
}

func TestHasAdvancedBlackholeSignal(t *testing.T) {
	a := bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{
		bgp.MakeExtCommunity(bgp.ExtTypeExperimental, bgp.ExtSubTypeAdvBlackhole, [6]byte{}),
	}}
	if !HasAdvancedBlackholeSignal(&a) {
		t.Fatal("signal not detected")
	}
	b := bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{
		bgp.MakeExtCommunity(bgp.ExtTypeTwoOctetAS, bgp.ExtSubTypeRouteTarget, [6]byte{}),
	}}
	if HasAdvancedBlackholeSignal(&b) {
		t.Fatal("route target misdetected")
	}
}

func TestLookingGlass(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	shared := pfx("100.99.0.0/24")
	rs.cfg.Policy.IRR.Register(64512, shared)
	rs.cfg.Policy.IRR.Register(64513, shared)
	host := pfx("100.99.0.7/32")
	if _, _, err := rs.HandleUpdate("A", announce(64512, host, bgp.CommunityBlackhole)); err != nil {
		t.Fatal(err)
	}
	uB := announce(64513, host, bgp.CommunityBlackhole)
	uB.Attrs.ASPath = []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64513, 64513}}} // prepended: longer path, registered origin
	if _, _, err := rs.HandleUpdate("B", uB); err != nil {
		t.Fatal(err)
	}

	entries := rs.Glass(host)
	if len(entries) != 2 {
		t.Fatalf("entries: %d", len(entries))
	}
	// Best first: A's shorter path.
	if !entries[0].Best || entries[0].Peer != "A" || entries[1].Best {
		t.Fatalf("best ordering: %+v", entries)
	}
	for _, e := range entries {
		if !e.Blackhole {
			t.Fatalf("blackhole flag missing: %+v", e)
		}
	}
	dump := rs.GlassDump(host)
	if !strings.Contains(dump, "[blackhole]") || !strings.Contains(dump, "*") {
		t.Fatalf("dump:\n%s", dump)
	}
	// Whole-table summary for the zero prefix.
	summary := rs.GlassDump(netip.Prefix{})
	if !strings.Contains(summary, "route server AS6695") || !strings.Contains(summary, "100.99.0.7/32") {
		t.Fatalf("summary:\n%s", summary)
	}
	// Unknown prefix.
	if got := rs.GlassDump(pfx("9.9.9.0/24")); !strings.Contains(got, "no paths") {
		t.Fatalf("unknown: %s", got)
	}
}

func TestLookingGlassMitigations(t *testing.T) {
	rs := newRS(t, peerCfg(0))
	// No controller wired yet.
	if got := rs.GlassMitigations(); !strings.Contains(got, "no controller") {
		t.Fatalf("unwired glass: %s", got)
	}
	rows := []MitigationRow{
		{ID: "mit:B:2", Owner: "B", State: "active", TTLRemaining: -1, DroppedBytes: 5e6},
		{ID: "mit:A:1", Owner: "A", State: "active", TTLRemaining: 42, DroppedBytes: 1e9, ShapedBytes: 2e6},
	}
	rs.SetMitigationSource(func() []MitigationRow { return rows })
	got := rs.GlassMitigations()
	if !strings.Contains(got, "mitigations: 2 active") {
		t.Fatalf("header: %s", got)
	}
	// Sorted by ID; TTL and byte columns rendered.
	iA, iB := strings.Index(got, "mit:A:1"), strings.Index(got, "mit:B:2")
	if iA < 0 || iB < 0 || iA > iB {
		t.Fatalf("ordering: %s", got)
	}
	if !strings.Contains(got, "ttl 42s") || !strings.Contains(got, "ttl -") {
		t.Fatalf("ttl rendering: %s", got)
	}
	if !strings.Contains(got, "dropped 1000000000 B") || !strings.Contains(got, "shaped 2000000 B") {
		t.Fatalf("bytes rendering: %s", got)
	}
}

func TestBatchedExportCoalescing(t *testing.T) {
	// One inbound UPDATE announcing three blackhole /32s must reach each
	// target as ONE batched UPDATE carrying all three NLRI, not three
	// messages.
	rs := newRS(t, peerCfg(0), peerCfg(1), peerCfg(2))
	base := netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0})
	u := announce(64512, netip.PrefixFrom(base.Next(), 32), bgp.CommunityBlackhole)
	u.NLRI = nil
	var want []netip.Prefix
	addr := base
	for i := 0; i < 3; i++ {
		addr = addr.Next()
		p := netip.PrefixFrom(addr, 32)
		want = append(want, p)
		u.NLRI = append(u.NLRI, bgp.PathPrefix{Prefix: p})
	}
	batches, rejs, err := rs.HandleUpdateBatch("A", u)
	if err != nil || len(rejs) != 0 {
		t.Fatalf("err=%v rejs=%+v", err, rejs)
	}
	if len(batches) != 2 {
		t.Fatalf("batches: %d, want 2 (B and C)", len(batches))
	}
	for _, b := range batches {
		if b.Peer != "B" && b.Peer != "C" {
			t.Fatalf("unexpected target %s", b.Peer)
		}
		if len(b.Updates) != 1 {
			t.Fatalf("%s got %d updates, want 1 coalesced", b.Peer, len(b.Updates))
		}
		got := b.Updates[0]
		if len(got.NLRI) != 3 {
			t.Fatalf("%s update carries %d NLRI, want 3", b.Peer, len(got.NLRI))
		}
		for i, pp := range got.NLRI {
			if pp.Prefix != want[i] {
				t.Fatalf("NLRI[%d] = %s, want %s", i, pp.Prefix, want[i])
			}
		}
		if got.Attrs.NextHop != blackholeNH {
			t.Fatal("coalesced blackhole export missing next-hop rewrite")
		}
	}

	// Withdrawing two of the three in one message coalesces the same way.
	w := &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: want[0]}, {Prefix: want[1]}}}
	batches, _, err = rs.HandleUpdateBatch("A", w)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("withdraw batches: %d", len(batches))
	}
	for _, b := range batches {
		if len(b.Updates) != 1 || len(b.Updates[0].Withdrawn) != 2 {
			t.Fatalf("%s withdraw batch: %+v", b.Peer, b.Updates)
		}
	}
}

func TestBatchedWithdrawalsPrecedeAnnouncements(t *testing.T) {
	rs := newRS(t, peerCfg(0), peerCfg(1))
	p24 := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 0}), 24)
	host := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(64512 % 256), 9}), 32)
	if _, _, err := rs.HandleUpdate("A", announce(64512, p24)); err != nil {
		t.Fatal(err)
	}
	// One message: withdraw the /24, announce a blackhole /32.
	u := announce(64512, host, bgp.CommunityBlackhole)
	u.Withdrawn = []bgp.PathPrefix{{Prefix: p24}}
	batches, _, err := rs.HandleUpdateBatch("A", u)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || batches[0].Peer != "B" || len(batches[0].Updates) != 2 {
		t.Fatalf("batches: %+v", batches)
	}
	if len(batches[0].Updates[0].Withdrawn) != 1 {
		t.Fatal("withdrawal must come first in the batch")
	}
	if len(batches[0].Updates[1].NLRI) != 1 {
		t.Fatal("announcement must follow the withdrawal")
	}
}

func TestRIBShardsConfig(t *testing.T) {
	rs := New(Config{ASN: ixpASN, RIBShards: 1})
	if rs.Table().ShardCount() != 1 {
		t.Fatalf("RIBShards=1: got %d shards", rs.Table().ShardCount())
	}
	rs = New(Config{ASN: ixpASN})
	if rs.Table().ShardCount() != rib.DefaultShards {
		t.Fatalf("default shards: got %d", rs.Table().ShardCount())
	}
}

// TestHandleUpdateConcurrent drives the parallel update pipeline from
// many peer goroutines at once (run with -race): concurrent announce,
// re-announce, withdraw, and best-path queries must leave the RIB
// consistent.
func TestHandleUpdateConcurrent(t *testing.T) {
	const peers = 8
	const prefixesPerPeer = 50
	rs := New(Config{ASN: ixpASN, BlackholeNextHop: blackholeNH}) // no policy: import is lock-free
	var events atomic.Int64
	rs.Subscribe(func(ev ControllerEvent) {
		events.Add(int64(len(ev.Announced) + len(ev.Withdrawn)))
	})
	for i := 0; i < peers; i++ {
		if err := rs.AddPeer(peerCfg(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := peerCfg(i)
			for j := 0; j < prefixesPerPeer; j++ {
				p := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 20, byte(i), byte(j)}), 32)
				u := announce(cfg.ASN, p, bgp.CommunityBlackhole)
				if _, _, err := rs.HandleUpdateBatch(cfg.Name, u); err != nil {
					t.Error(err)
					return
				}
				if j%2 == 0 { // re-announce half of them
					if _, _, err := rs.HandleUpdateBatch(cfg.Name, u); err != nil {
						t.Error(err)
						return
					}
				}
				rs.Table().Best(p)
			}
		}(i)
	}
	wg.Wait()
	if got := rs.Table().Len(); got != peers*prefixesPerPeer {
		t.Fatalf("table len = %d, want %d", got, peers*prefixesPerPeer)
	}

	// Concurrent session teardown of every peer empties the table.
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rs.HandleWithdrawAll(peerCfg(i).Name); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := rs.Table().Len(); got != 0 {
		t.Fatalf("table len after teardown = %d, want 0", got)
	}
	if events.Load() == 0 {
		t.Fatal("controller feed saw no events")
	}
}

// TestConcurrentSharedPrefix has every peer fight over the same prefixes:
// per-shard serialization must keep the cached best path coherent.
func TestConcurrentSharedPrefix(t *testing.T) {
	const peers = 6
	rs := New(Config{ASN: ixpASN, BlackholeNextHop: blackholeNH})
	for i := 0; i < peers; i++ {
		if err := rs.AddPeer(peerCfg(i)); err != nil {
			t.Fatal(err)
		}
	}
	shared := make([]netip.Prefix, 8)
	for i := range shared {
		shared[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 30, 0, byte(i)}), 32)
	}
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := peerCfg(i)
			for round := 0; round < 100; round++ {
				for _, p := range shared {
					u := announce(cfg.ASN, p, bgp.CommunityBlackhole)
					if _, _, err := rs.HandleUpdateBatch(cfg.Name, u); err != nil {
						t.Error(err)
						return
					}
				}
				w := &bgp.Update{}
				for _, p := range shared {
					w.Withdrawn = append(w.Withdrawn, bgp.PathPrefix{Prefix: p})
				}
				if _, _, err := rs.HandleUpdateBatch(cfg.Name, w); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, p := range shared {
		paths := rs.Table().Lookup(p)
		best := rs.Table().Best(p)
		if len(paths) == 0 && best != nil {
			t.Fatalf("%s: stale cached best", p)
		}
		if len(paths) > 0 && (best == nil || best.Key != paths[0].Key) {
			t.Fatalf("%s: cached best %v != %v", p, best, paths[0].Key)
		}
	}
}
