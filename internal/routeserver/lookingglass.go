package routeserver

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// LookingGlass is the member-facing debugging interface the paper notes
// route-server users rely on (Section 4.3): textual queries over the
// route server's RIB, showing every path for a prefix with its
// attributes and blackholing status.

// GlassEntry is one looking-glass result row.
type GlassEntry struct {
	Prefix    netip.Prefix
	Peer      string
	PeerAS    uint32
	Best      bool
	Blackhole bool
	AdvBH     bool
	NextHop   netip.Addr
	ASPath    string
	Comms     []string
}

// Glass queries every path for prefix, best first.
func (rs *RouteServer) Glass(prefix netip.Prefix) []GlassEntry {
	paths := rs.table.Lookup(prefix)
	out := make([]GlassEntry, 0, len(paths))
	for i, p := range paths {
		e := GlassEntry{
			Prefix:    p.Key.Prefix,
			Peer:      p.Key.Peer,
			PeerAS:    p.PeerAS,
			Best:      i == 0,
			Blackhole: rs.IsBlackhole(&p.Attrs),
			AdvBH:     HasAdvancedBlackholeSignal(&p.Attrs),
			NextHop:   p.Attrs.NextHop,
		}
		var hops []string
		for _, seg := range p.Attrs.ASPath {
			for _, as := range seg.ASNs {
				hops = append(hops, fmt.Sprintf("%d", as))
			}
		}
		e.ASPath = strings.Join(hops, " ")
		for _, c := range p.Attrs.Communities {
			e.Comms = append(e.Comms, c.String())
		}
		sort.Strings(e.Comms)
		out = append(out, e)
	}
	return out
}

// MitigationRow is one active mitigation in the looking-glass view:
// the lifecycle facts a member debugging its own blackholing request
// wants to see. Rows come from the mitigation controller's snapshot via
// the source installed with SetMitigationSource — the route server only
// renders them, keeping the dependency pointing control-plane-down.
type MitigationRow struct {
	ID    string
	Owner string
	State string
	// Origin is the exchange the request was relayed from ("" for a
	// locally signaled mitigation) — federation provenance, so a member
	// can tell its own requests from federated installs.
	Origin string
	// TTLRemaining is seconds until expiry; negative means no TTL.
	TTLRemaining float64
	// DroppedBytes / ShapedBytes are the mitigation's cumulative
	// data-plane effect (its rules' telemetry counters).
	DroppedBytes float64
	ShapedBytes  float64
}

// MitigationSource supplies the current mitigation rows.
type MitigationSource func() []MitigationRow

// SetMitigationSource installs the mitigation-controller snapshot the
// looking glass lists. Safe to call concurrently with queries.
func (rs *RouteServer) SetMitigationSource(src MitigationSource) {
	rs.mitSrc.Store(&src)
}

// GlassMitigations renders the active-mitigation listing: ID, owner,
// TTL remaining and bytes dropped/shaped, sorted by ID.
func (rs *RouteServer) GlassMitigations() string { return rs.GlassMitigationsFor("") }

// GlassMitigationsFor is GlassMitigations restricted to one owner — the
// view a member debugging its own blackholing requests asks the looking
// glass for. An empty owner lists everything.
func (rs *RouteServer) GlassMitigationsFor(owner string) string {
	var b strings.Builder
	srcp := rs.mitSrc.Load()
	if srcp == nil {
		b.WriteString("mitigations: no controller attached\n")
		return b.String()
	}
	// Filter into a copy: the source may hand out a retained slice.
	all := (*srcp)()
	rows := make([]MitigationRow, 0, len(all))
	for _, r := range all {
		if owner == "" || r.Owner == owner {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	fmt.Fprintf(&b, "mitigations: %d active\n", len(rows))
	for _, r := range rows {
		ttl := "-"
		if r.TTLRemaining >= 0 {
			ttl = fmt.Sprintf("%.0fs", r.TTLRemaining)
		}
		origin := "local"
		if r.Origin != "" {
			origin = "via " + r.Origin
		}
		fmt.Fprintf(&b, "  %s owner %s state %s origin %s ttl %s dropped %.0f B shaped %.0f B\n",
			r.ID, r.Owner, r.State, origin, ttl, r.DroppedBytes, r.ShapedBytes)
	}
	return b.String()
}

// ErrorSummary is the mitigation controller's failure telemetry as the
// looking glass shows it: per-class install failure counters (the
// paper's F1/F2 hardware exhaustion classes, QoS policy exhaustion,
// change-queue deadline expiries) and the most recent apply error.
type ErrorSummary struct {
	F1            int
	F2            int
	QoS           int
	QueueDeadline int
	Other         int
	// LastError describes the most recent failed change ("" if none).
	LastError string
}

// ErrorSource supplies the current error summary.
type ErrorSource func() ErrorSummary

// SetErrorSource installs the controller error telemetry the looking
// glass renders alongside the mitigation listing. Safe to call
// concurrently with queries.
func (rs *RouteServer) SetErrorSource(src ErrorSource) {
	rs.errSrc.Store(&src)
}

// GlassErrors renders the controller's install-failure summary — the
// first stop when a member asks why its blackholing request is not
// taking effect.
func (rs *RouteServer) GlassErrors() string {
	var b strings.Builder
	srcp := rs.errSrc.Load()
	if srcp == nil {
		b.WriteString("errors: no controller attached\n")
		return b.String()
	}
	s := (*srcp)()
	fmt.Fprintf(&b, "install errors: f1 %d f2 %d qos %d queue-deadline %d other %d\n",
		s.F1, s.F2, s.QoS, s.QueueDeadline, s.Other)
	if s.LastError != "" {
		fmt.Fprintf(&b, "  last: %s\n", s.LastError)
	}
	return b.String()
}

// GlassDump renders the looking-glass view of a prefix (or, for an
// invalid prefix, the whole table summary).
func (rs *RouteServer) GlassDump(prefix netip.Prefix) string {
	var b strings.Builder
	if !prefix.IsValid() {
		prefixes := rs.table.Prefixes()
		fmt.Fprintf(&b, "route server AS%d: %d prefixes, %d paths, %d peers\n",
			rs.cfg.ASN, len(prefixes), rs.table.Len(), len(rs.Peers()))
		for _, p := range prefixes {
			fmt.Fprintf(&b, "  %s (%d paths)\n", p, len(rs.table.Lookup(p)))
		}
		return b.String()
	}
	entries := rs.Glass(prefix)
	if len(entries) == 0 {
		fmt.Fprintf(&b, "%s: no paths\n", prefix)
		return b.String()
	}
	for _, e := range entries {
		marker := " "
		if e.Best {
			marker = "*"
		}
		flags := ""
		if e.Blackhole {
			flags += " [blackhole]"
		}
		if e.AdvBH {
			flags += " [advanced-blackholing]"
		}
		fmt.Fprintf(&b, "%s %s via %s (AS%d) next-hop %s as-path [%s] communities %v%s\n",
			marker, e.Prefix, e.Peer, e.PeerAS, e.NextHop, e.ASPath, e.Comms, flags)
	}
	return b.String()
}
