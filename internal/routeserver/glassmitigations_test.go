package routeserver

import (
	"strings"
	"testing"
)

// TestGlassMitigationRows is the table-driven coverage of the
// looking-glass mitigation listing: TTL-remaining formatting, owner
// filtering, and the fast path when no controller source is attached.
func TestGlassMitigationRows(t *testing.T) {
	rows := []MitigationRow{
		{ID: "mit:A:1", Owner: "A", State: "active", TTLRemaining: 42.4, DroppedBytes: 1e9},
		{ID: "mit:A:2", Owner: "A", State: "installing", TTLRemaining: 0.4, ShapedBytes: 2e6},
		{ID: "mit:B:1", Owner: "B", State: "active", Origin: "ixp7", TTLRemaining: -1, DroppedBytes: 5e6},
	}

	cases := []struct {
		name       string
		source     MitigationSource
		owner      string
		useAllView bool // exercise GlassMitigations() instead of ...For
		want       []string
		notWant    []string
	}{
		{
			name:       "unset source fast path",
			source:     nil,
			useAllView: true,
			want:       []string{"no controller attached"},
			notWant:    []string{"active\n"},
		},
		{
			name:   "unset source fast path with owner",
			source: nil,
			owner:  "A",
			want:   []string{"no controller attached"},
		},
		{
			name:       "empty source",
			source:     func() []MitigationRow { return nil },
			useAllView: true,
			want:       []string{"mitigations: 0 active"},
		},
		{
			name:       "all owners, sorted, ttl columns",
			source:     func() []MitigationRow { return rows },
			useAllView: true,
			want: []string{
				"mitigations: 3 active",
				"mit:A:1 owner A state active origin local ttl 42s dropped 1000000000 B shaped 0 B",
				"mit:A:2 owner A state installing origin local ttl 0s dropped 0 B shaped 2000000 B",
				"mit:B:1 owner B state active origin via ixp7 ttl - dropped 5000000 B shaped 0 B",
			},
		},
		{
			name:   "owner filter keeps only A",
			source: func() []MitigationRow { return rows },
			owner:  "A",
			want:   []string{"mitigations: 2 active", "mit:A:1", "mit:A:2"},
			notWant: []string{
				"mit:B:1",
			},
		},
		{
			name:    "owner filter with no matches",
			source:  func() []MitigationRow { return rows },
			owner:   "C",
			want:    []string{"mitigations: 0 active"},
			notWant: []string{"mit:"},
		},
		{
			name:       "empty owner lists everything",
			source:     func() []MitigationRow { return rows },
			owner:      "",
			want:       []string{"mitigations: 3 active"},
			useAllView: false,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := newRS(t, peerCfg(0))
			if tc.source != nil {
				rs.SetMitigationSource(tc.source)
			}
			var got string
			if tc.useAllView {
				got = rs.GlassMitigations()
			} else {
				got = rs.GlassMitigationsFor(tc.owner)
			}
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Fatalf("missing %q in:\n%s", w, got)
				}
			}
			for _, nw := range tc.notWant {
				if strings.Contains(got, nw) {
					t.Fatalf("unexpected %q in:\n%s", nw, got)
				}
			}
		})
	}

	// Ordering inside the rendered listing is by ID even when the source
	// hands rows out of order.
	rs := newRS(t, peerCfg(0))
	rs.SetMitigationSource(func() []MitigationRow {
		return []MitigationRow{rows[2], rows[1], rows[0]}
	})
	got := rs.GlassMitigations()
	iA1 := strings.Index(got, "mit:A:1")
	iA2 := strings.Index(got, "mit:A:2")
	iB1 := strings.Index(got, "mit:B:1")
	if iA1 < 0 || iA2 < 0 || iB1 < 0 || !(iA1 < iA2 && iA2 < iB1) {
		t.Fatalf("ID ordering violated:\n%s", got)
	}
}
