// Package routeserver implements the IXP's multilateral-peering route
// server (Section 4.3, Figure 6): eBGP sessions with every member,
// routing-hygiene import filtering against IRR/RPKI/bogon databases, the
// RTBH next-hop rewrite for announcements carrying the BLACKHOLE
// community, export control via IXP policy communities, and the
// southbound feed to Stellar's blackholing controller, which sees every
// accepted path (the ADD-PATH bypass of best-path selection).
//
// The package exposes an in-process message-level API (HandleUpdateBatch
// / HandleWithdrawAll); cmd/ixpd wires it to real TCP BGP sessions via
// package bgpsession.
//
// The update path is a parallel pipeline: HandleUpdateBatch may be called
// concurrently from any number of peer sessions. Import-policy checks run
// lock-free against the immutable peer registry, RIB maintenance and
// best-path recomputation take only the prefix's shard lock inside
// rib.Table, and exports are batched per target peer — one UPDATE carries
// every coalescible prefix instead of one message per (peer, prefix)
// pair.
//
// Ordering contract: mutations on one prefix serialize at its RIB shard,
// so every export batch reflects a consistent best-path transition. The
// pipeline does not sequence delivery across concurrent inbound updates,
// though — if two sessions race on the same prefix, a receiver may see
// the two exports in either order and transiently hold the older best
// path until the prefix next changes (BGP's usual eventual consistency;
// the caller may serialize delivery per prefix if it needs more).
package routeserver

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"stellar/internal/bgp"
	"stellar/internal/irr"
	"stellar/internal/rib"
)

// PeerConfig describes one member's route server session.
type PeerConfig struct {
	Name  string
	ASN   uint32
	BGPID netip.Addr
}

// Rejection reports one prefix refused by the import policy.
type Rejection struct {
	Peer   string
	Prefix netip.Prefix
	Reason string
}

// PeerUpdate is a single UPDATE the route server exports to one member.
// It is the flattened form of PeerUpdates, kept for callers that forward
// messages one at a time.
type PeerUpdate struct {
	Peer   string
	Update *bgp.Update
}

// PeerUpdates is the batched export set for one member: every UPDATE the
// route server owes the peer as a result of one inbound message,
// withdrawals first. Prefixes sharing attributes ride a single UPDATE.
type PeerUpdates struct {
	Peer    string
	Updates []*bgp.Update
}

// ControllerEvent is the southbound feed to the blackholing controller:
// one accepted path change, with the route server's ADD-PATH identifier
// already assigned so the controller can hold the same prefix from
// different members simultaneously.
type ControllerEvent struct {
	Peer      string
	PeerAS    uint32
	PathID    uint32
	Announced []netip.Prefix
	Withdrawn []netip.Prefix
	Attrs     bgp.PathAttrs
}

// Subscriber consumes controller events.
type Subscriber func(ControllerEvent)

// Config parameterizes the route server.
type Config struct {
	// ASN is the IXP's AS number (used in policy communities).
	ASN uint32
	// BlackholeNextHop is the IXP's null-route next hop installed on
	// RTBH announcements before re-export.
	BlackholeNextHop netip.Addr
	// Policy is the routing-hygiene import policy.
	Policy *irr.Policy
	// MaxPlainPrefixLen is the longest IPv4 prefix accepted without a
	// blackholing community (/24 per common IXP practice); blackholing
	// announcements may be as specific as /32.
	MaxPlainPrefixLen int
	// MaxPlainPrefixLen6 is the IPv6 equivalent (/48, blackholing /128).
	MaxPlainPrefixLen6 int
	// RIBShards is the number of prefix-hash shards in the RIB. 0 uses
	// rib.DefaultShards; 1 degenerates to the single-lock layout (the
	// pre-sharding baseline, kept for benchmarking).
	RIBShards int
}

// registry is the immutable peer/subscriber view the update pipeline
// reads lock-free. AddPeer and Subscribe publish a fresh copy.
type registry struct {
	peers map[string]*peerState
	order []string // peer names in join order (stable path IDs)
	subs  []Subscriber
}

// RouteServer is the IXP route server.
type RouteServer struct {
	cfg Config

	reg     atomic.Pointer[registry]
	writeMu sync.Mutex // serializes registry writers

	table *rib.Table

	// mitSrc feeds the looking glass's mitigation listing (set by the
	// deployment wiring, e.g. ixp.Build).
	mitSrc atomic.Pointer[MitigationSource]
	// errSrc feeds the looking glass's controller error summary.
	errSrc atomic.Pointer[ErrorSource]

	rejMu    sync.Mutex
	rejected []Rejection
}

type peerState struct {
	cfg    PeerConfig
	pathID uint32
}

// Errors.
var (
	ErrUnknownPeer   = errors.New("routeserver: unknown peer")
	ErrDuplicatePeer = errors.New("routeserver: duplicate peer")
)

// New creates a route server.
func New(cfg Config) *RouteServer {
	if cfg.MaxPlainPrefixLen == 0 {
		cfg.MaxPlainPrefixLen = 24
	}
	if cfg.MaxPlainPrefixLen6 == 0 {
		cfg.MaxPlainPrefixLen6 = 48
	}
	shards := cfg.RIBShards
	if shards == 0 {
		shards = rib.DefaultShards
	}
	rs := &RouteServer{
		cfg:   cfg,
		table: rib.NewSharded(shards),
	}
	rs.reg.Store(&registry{peers: make(map[string]*peerState)})
	return rs
}

// AddPeer registers a member session. Path IDs on the controller feed are
// assigned in join order and never reused.
func (rs *RouteServer) AddPeer(cfg PeerConfig) error {
	rs.writeMu.Lock()
	defer rs.writeMu.Unlock()
	old := rs.reg.Load()
	if _, ok := old.peers[cfg.Name]; ok {
		return ErrDuplicatePeer
	}
	next := &registry{
		peers: make(map[string]*peerState, len(old.peers)+1),
		order: append(append([]string(nil), old.order...), cfg.Name),
		subs:  old.subs,
	}
	for name, ps := range old.peers {
		next.peers[name] = ps
	}
	next.peers[cfg.Name] = &peerState{cfg: cfg, pathID: uint32(len(next.order))}
	rs.reg.Store(next)
	return nil
}

// Peers returns the registered peer names, in join order.
func (rs *RouteServer) Peers() []string {
	return append([]string(nil), rs.reg.Load().order...)
}

// Table exposes the route server's RIB (all accepted paths from all
// peers).
func (rs *RouteServer) Table() *rib.Table { return rs.table }

// Subscribe attaches a controller feed subscriber; every accepted path
// change is delivered, bypassing best-path selection.
func (rs *RouteServer) Subscribe(s Subscriber) {
	rs.writeMu.Lock()
	defer rs.writeMu.Unlock()
	old := rs.reg.Load()
	next := &registry{
		peers: old.peers,
		order: old.order,
		subs:  append(append([]Subscriber(nil), old.subs...), s),
	}
	rs.reg.Store(next)
}

// Rejections returns the accumulated import-policy rejections.
func (rs *RouteServer) Rejections() []Rejection {
	rs.rejMu.Lock()
	defer rs.rejMu.Unlock()
	return append([]Rejection(nil), rs.rejected...)
}

// IsBlackhole reports whether attrs request blackholing: the RFC 7999
// BLACKHOLE community or the IXP-specific variant (IXP_ASN:666).
func (rs *RouteServer) IsBlackhole(attrs *bgp.PathAttrs) bool {
	return attrs.HasCommunity(bgp.CommunityBlackhole) ||
		attrs.HasCommunity(bgp.MakeCommunity(uint16(rs.cfg.ASN), 666))
}

// HandleUpdate processes one UPDATE from a member and flattens the
// batched exports into one PeerUpdate per (peer, message) pair. New
// callers should prefer HandleUpdateBatch.
func (rs *RouteServer) HandleUpdate(peer string, u *bgp.Update) ([]PeerUpdate, []Rejection, error) {
	batches, rejections, err := rs.HandleUpdateBatch(peer, u)
	if err != nil {
		return nil, rejections, err
	}
	return flatten(batches), rejections, nil
}

func flatten(batches []PeerUpdates) []PeerUpdate {
	var out []PeerUpdate
	for _, b := range batches {
		for _, u := range b.Updates {
			out = append(out, PeerUpdate{Peer: b.Peer, Update: u})
		}
	}
	return out
}

// HandleUpdateBatch processes one UPDATE from a member: import policy,
// RIB maintenance, best-path recomputation, export generation and the
// controller feed. The returned batches — sorted by peer name, one entry
// per target member — are what the route server sends to the other
// members. It is safe for concurrent use from any number of peer
// sessions.
func (rs *RouteServer) HandleUpdateBatch(peer string, u *bgp.Update) ([]PeerUpdates, []Rejection, error) {
	reg := rs.reg.Load()
	ps, ok := reg.peers[peer]
	if !ok {
		return nil, nil, ErrUnknownPeer
	}

	eb := newExportBuilder(rs, reg)
	var rejections []Rejection
	var acceptedAnn, acceptedWdr []netip.Prefix

	// Withdrawals first (RFC 4271: withdrawn routes precede NLRI).
	for _, pp := range u.AllWithdrawn() {
		key := rib.PathKey{Prefix: pp.Prefix, Peer: peer, PathID: ps.pathID}
		removed, tr := rs.table.RemoveWithBest(key)
		if !removed {
			continue // not in table: ignore
		}
		acceptedWdr = append(acceptedWdr, pp.Prefix)
		eb.bestChanged(tr, nil)
	}

	originAS := u.Attrs.OriginAS()
	if originAS == 0 {
		originAS = ps.cfg.ASN
	}
	for _, pp := range u.AllAnnounced() {
		if reason, ok := rs.importCheck(ps, pp.Prefix, originAS, &u.Attrs); !ok {
			rejections = append(rejections, Rejection{Peer: peer, Prefix: pp.Prefix, Reason: reason})
			continue
		}
		key := rib.PathKey{Prefix: pp.Prefix, Peer: peer, PathID: ps.pathID}
		added, tr := rs.table.AddWithBest(key, ps.cfg.ASN, u.Attrs)
		acceptedAnn = append(acceptedAnn, pp.Prefix)
		eb.bestChanged(tr, added)
	}

	if len(rejections) > 0 {
		rs.rejMu.Lock()
		rs.rejected = append(rs.rejected, rejections...)
		rs.rejMu.Unlock()
	}

	if len(acceptedAnn) > 0 || len(acceptedWdr) > 0 {
		ev := ControllerEvent{
			Peer:      peer,
			PeerAS:    ps.cfg.ASN,
			PathID:    ps.pathID,
			Announced: acceptedAnn,
			Withdrawn: acceptedWdr,
			Attrs:     u.Attrs.Clone(),
		}
		for _, s := range reg.subs {
			s(ev)
		}
	}
	return eb.finish(), rejections, nil
}

// HandleWithdrawAll processes a session teardown: every path from the
// peer is withdrawn (BGP implicit withdraw on session loss).
func (rs *RouteServer) HandleWithdrawAll(peer string) ([]PeerUpdates, error) {
	reg := rs.reg.Load()
	ps, ok := reg.peers[peer]
	if !ok {
		return nil, ErrUnknownPeer
	}
	removed, changes := rs.table.RemovePeerWithBest(peer)
	eb := newExportBuilder(rs, reg)
	var withdrawn []netip.Prefix
	for _, p := range removed {
		withdrawn = append(withdrawn, p.Key.Prefix)
	}
	for _, tr := range changes {
		eb.bestChanged(tr, nil)
	}

	if len(withdrawn) > 0 {
		ev := ControllerEvent{Peer: peer, PeerAS: ps.cfg.ASN, PathID: ps.pathID, Withdrawn: withdrawn}
		for _, s := range reg.subs {
			s(ev)
		}
	}
	return eb.finish(), nil
}

// importCheck applies the import policy of Figure 6. It reads only the
// immutable peer state and the (internally synchronized) hygiene
// databases, so it runs without any route-server lock.
func (rs *RouteServer) importCheck(ps *peerState, prefix netip.Prefix, originAS uint32, attrs *bgp.PathAttrs) (string, bool) {
	maxPlain := rs.cfg.MaxPlainPrefixLen
	maxHost := 32
	if prefix.Addr().Is6() {
		maxPlain = rs.cfg.MaxPlainPrefixLen6
		maxHost = 128
	}
	if prefix.Bits() > maxPlain {
		// More specific than allowed: only blackholing announcements may
		// pass, up to host routes.
		if !rs.IsBlackhole(attrs) && !HasAdvancedBlackholeSignal(attrs) {
			return fmt.Sprintf("prefix more specific than /%d without blackhole community", maxPlain), false
		}
		if prefix.Bits() > maxHost {
			return "invalid prefix length", false
		}
	}
	if rs.cfg.Policy != nil {
		if v := rs.cfg.Policy.Check(prefix, originAS); !v.Accept {
			return v.Reason, false
		}
	}
	// The announcing peer must be on the path origin or an authorized
	// reseller; at an IXP the first AS must be the peer's.
	if len(attrs.ASPath) > 0 {
		first := attrs.ASPath[0]
		if first.Type == bgp.ASSequence && len(first.ASNs) > 0 && first.ASNs[0] != ps.cfg.ASN {
			return fmt.Sprintf("AS path does not start with peer AS %d", ps.cfg.ASN), false
		}
	}
	return "", true
}

// exportBuilder accumulates the per-peer export batches produced while
// processing one inbound message. Three coalescing streams keep the fan-
// out compact: withdrawals merge into one UPDATE per excluded peer, and
// announcements whose new best path is the path just added merge into one
// shared UPDATE per address family (they all carry the inbound message's
// attributes, so their targets are identical too). Best-path changes that
// promote a different pre-existing path get individual UPDATEs.
type exportBuilder struct {
	rs  *RouteServer
	reg *registry

	batches map[string]*PeerUpdates

	// Coalesced withdrawals, keyed by the peer excluded from the fan-out
	// (the announcer of the vanished best path; "" when unknown).
	wdr map[string]*bgp.Update

	// Coalesced announcements of the just-added path, per family. The
	// shared update is appended to each target's batch once, on first use.
	ann4, ann6 *bgp.Update
}

func newExportBuilder(rs *RouteServer, reg *registry) *exportBuilder {
	return &exportBuilder{
		rs: rs, reg: reg,
		batches: make(map[string]*PeerUpdates),
		wdr:     make(map[string]*bgp.Update),
	}
}

// bestChanged folds one best-path transition into the export set. added
// is the path installed by the current message, or nil for withdrawals.
func (eb *exportBuilder) bestChanged(tr rib.BestChange, added *rib.Path) {
	if !tr.Changed() {
		return // best path unchanged: nothing to export
	}
	switch {
	case tr.New == nil:
		eb.coalesceWithdraw(tr)
	case tr.New == added:
		eb.coalesceAnnounce(tr.Prefix, added)
	default:
		// A pre-existing path was promoted (the old best worsened or went
		// away): export it on its own.
		u := eb.rs.buildExportUpdate(tr.Prefix, tr.New)
		for _, name := range eb.rs.exportTargets(eb.reg, tr.New) {
			eb.append(name, u)
		}
	}
}

// coalesceWithdraw merges the prefix into the withdraw UPDATE shared by
// every target except the vanished best path's announcer.
func (eb *exportBuilder) coalesceWithdraw(tr rib.BestChange) {
	excluded := ""
	if tr.Old != nil {
		excluded = tr.Old.Key.Peer
	}
	u, ok := eb.wdr[excluded]
	if !ok {
		u = &bgp.Update{}
		eb.wdr[excluded] = u
		for _, name := range eb.reg.order {
			if name == excluded {
				continue
			}
			eb.append(name, u)
		}
	}
	if tr.Prefix.Addr().Is4() {
		u.Withdrawn = append(u.Withdrawn, bgp.PathPrefix{Prefix: tr.Prefix})
	} else {
		if u.Attrs.MPUnreach == nil {
			u.Attrs.MPUnreach = &bgp.MPUnreach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast}
		}
		u.Attrs.MPUnreach.NLRI = append(u.Attrs.MPUnreach.NLRI, bgp.PathPrefix{Prefix: tr.Prefix})
	}
}

// coalesceAnnounce merges the prefix into the shared announce UPDATE for
// its family, creating it (and fanning it out) on first use.
func (eb *exportBuilder) coalesceAnnounce(prefix netip.Prefix, best *rib.Path) {
	if prefix.Addr().Is4() {
		if eb.ann4 == nil {
			eb.ann4 = eb.rs.buildExportUpdate(prefix, best)
			for _, name := range eb.rs.exportTargets(eb.reg, best) {
				eb.append(name, eb.ann4)
			}
			return
		}
		eb.ann4.NLRI = append(eb.ann4.NLRI, bgp.PathPrefix{Prefix: prefix})
		return
	}
	if eb.ann6 == nil {
		eb.ann6 = eb.rs.buildExportUpdate(prefix, best)
		for _, name := range eb.rs.exportTargets(eb.reg, best) {
			eb.append(name, eb.ann6)
		}
		return
	}
	eb.ann6.Attrs.MPReach.NLRI = append(eb.ann6.Attrs.MPReach.NLRI, bgp.PathPrefix{Prefix: prefix})
}

func (eb *exportBuilder) append(peer string, u *bgp.Update) {
	b, ok := eb.batches[peer]
	if !ok {
		b = &PeerUpdates{Peer: peer}
		eb.batches[peer] = b
	}
	b.Updates = append(b.Updates, u)
}

// finish returns the accumulated batches sorted by peer name.
func (eb *exportBuilder) finish() []PeerUpdates {
	if len(eb.batches) == 0 {
		return nil
	}
	out := make([]PeerUpdates, 0, len(eb.batches))
	for _, b := range eb.batches {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// ExportsTo renders the full-table announcement owed to one peer: for
// every prefix whose best path exports to that peer under the IXP policy
// communities, one UPDATE identical to what the incremental pipeline
// would have sent. It is the resynchronization primitive a reconnecting
// session replays after PeerUp (bgppipe's RSFeed.Resync): the peer's RIB
// converges to the route server's view without replaying history.
// Prefixes are emitted in sorted order, so the resync stream is
// deterministic for a given table state.
func (rs *RouteServer) ExportsTo(peer string) ([]*bgp.Update, error) {
	reg := rs.reg.Load()
	if _, ok := reg.peers[peer]; !ok {
		return nil, ErrUnknownPeer
	}
	var out []*bgp.Update
	for _, prefix := range rs.table.Prefixes() {
		best := rs.table.Best(prefix)
		if best == nil {
			continue
		}
		for _, name := range rs.exportTargets(reg, best) {
			if name == peer {
				out = append(out, rs.buildExportUpdate(prefix, best))
				break
			}
		}
	}
	return out, nil
}

// buildExportUpdate renders the UPDATE announcing best for prefix.
func (rs *RouteServer) buildExportUpdate(prefix netip.Prefix, best *rib.Path) *bgp.Update {
	attrs := best.Attrs.Clone()
	// RTBH: the route server sets the next hop to the IXP's blackholing
	// IP so that accepting members forward the traffic to the null
	// interface (Section 2.2, Figure 2b).
	if rs.IsBlackhole(&attrs) && rs.cfg.BlackholeNextHop.IsValid() {
		if prefix.Addr().Is4() {
			attrs.NextHop = rs.cfg.BlackholeNextHop
		} else if attrs.MPReach != nil {
			attrs.MPReach.NextHop = rs.cfg.BlackholeNextHop
		}
		attrs.AddCommunity(bgp.CommunityNoExport)
	}
	u := &bgp.Update{Attrs: attrs}
	if prefix.Addr().Is4() {
		u.NLRI = []bgp.PathPrefix{{Prefix: prefix}}
		u.Attrs.MPReach = nil
	} else {
		var nh netip.Addr
		if attrs.MPReach != nil {
			nh = attrs.MPReach.NextHop
		}
		u.Attrs.MPReach = &bgp.MPReach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NextHop: nh,
			NLRI:    []bgp.PathPrefix{{Prefix: prefix}},
		}
		u.NLRI = nil
	}
	return u
}

// exportTargets evaluates the IXP policy communities on the path:
//
//	(0, IXP_ASN)     announce to no one
//	(0, peer_ASN)    do not announce to peer
//	(IXP_ASN, peer_ASN) announce to peer (whitelist mode once present)
//
// Without policy communities the path is exported to every peer except
// its announcer — Figure 3(b)'s dominant "All" case.
func (rs *RouteServer) exportTargets(reg *registry, best *rib.Path) []string {
	ixp := uint16(rs.cfg.ASN)
	blockAll := false
	var blocked, allowed map[uint16]bool
	whitelist := false
	for _, c := range best.Attrs.Communities {
		switch {
		case c.ASN() == 0 && c.Value() == ixp:
			blockAll = true
		case c.ASN() == 0:
			if blocked == nil {
				blocked = make(map[uint16]bool)
			}
			blocked[c.Value()] = true
		case c.ASN() == ixp && c.Value() != 666:
			if allowed == nil {
				allowed = make(map[uint16]bool)
			}
			allowed[c.Value()] = true
			whitelist = true
		}
	}
	var out []string
	for _, name := range reg.order {
		ps := reg.peers[name]
		if name == best.Key.Peer {
			continue
		}
		asn16 := uint16(ps.cfg.ASN)
		switch {
		case whitelist:
			if allowed[asn16] {
				out = append(out, name)
			}
		case blockAll:
			// no export
		case blocked[asn16]:
			// explicitly excluded ("All-k" policies)
		default:
			out = append(out, name)
		}
	}
	return out
}

// HasAdvancedBlackholeSignal reports whether attrs carry Stellar's
// Advanced Blackholing extended community (package core defines the
// payload semantics; the route server only needs to recognize it for the
// more-specific import exception).
func HasAdvancedBlackholeSignal(attrs *bgp.PathAttrs) bool {
	for _, e := range attrs.ExtCommunities {
		if e.Type() == bgp.ExtTypeExperimental && e.SubType() == bgp.ExtSubTypeAdvBlackhole {
			return true
		}
	}
	return false
}
