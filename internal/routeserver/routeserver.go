// Package routeserver implements the IXP's multilateral-peering route
// server (Section 4.3, Figure 6): eBGP sessions with every member,
// routing-hygiene import filtering against IRR/RPKI/bogon databases, the
// RTBH next-hop rewrite for announcements carrying the BLACKHOLE
// community, export control via IXP policy communities, and the
// southbound feed to Stellar's blackholing controller, which sees every
// accepted path (the ADD-PATH bypass of best-path selection).
//
// The package exposes an in-process message-level API (HandleUpdate /
// HandleWithdrawAll); cmd/ixpd wires it to real TCP BGP sessions via
// package bgpsession.
package routeserver

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/irr"
	"stellar/internal/rib"
)

// PeerConfig describes one member's route server session.
type PeerConfig struct {
	Name  string
	ASN   uint32
	BGPID netip.Addr
}

// Rejection reports one prefix refused by the import policy.
type Rejection struct {
	Peer   string
	Prefix netip.Prefix
	Reason string
}

// PeerUpdate is an UPDATE the route server exports to one member.
type PeerUpdate struct {
	Peer   string
	Update *bgp.Update
}

// ControllerEvent is the southbound feed to the blackholing controller:
// one accepted path change, with the route server's ADD-PATH identifier
// already assigned so the controller can hold the same prefix from
// different members simultaneously.
type ControllerEvent struct {
	Peer      string
	PeerAS    uint32
	PathID    uint32
	Announced []netip.Prefix
	Withdrawn []netip.Prefix
	Attrs     bgp.PathAttrs
}

// Subscriber consumes controller events.
type Subscriber func(ControllerEvent)

// Config parameterizes the route server.
type Config struct {
	// ASN is the IXP's AS number (used in policy communities).
	ASN uint32
	// BlackholeNextHop is the IXP's null-route next hop installed on
	// RTBH announcements before re-export.
	BlackholeNextHop netip.Addr
	// Policy is the routing-hygiene import policy.
	Policy *irr.Policy
	// MaxPlainPrefixLen is the longest IPv4 prefix accepted without a
	// blackholing community (/24 per common IXP practice); blackholing
	// announcements may be as specific as /32.
	MaxPlainPrefixLen int
	// MaxPlainPrefixLen6 is the IPv6 equivalent (/48, blackholing /128).
	MaxPlainPrefixLen6 int
}

// RouteServer is the IXP route server.
type RouteServer struct {
	cfg Config

	mu       sync.Mutex
	peers    map[string]*peerState
	order    []string // peer names in join order (stable path IDs)
	table    *rib.Table
	subs     []Subscriber
	rejected []Rejection
}

type peerState struct {
	cfg    PeerConfig
	pathID uint32
}

// Errors.
var (
	ErrUnknownPeer   = errors.New("routeserver: unknown peer")
	ErrDuplicatePeer = errors.New("routeserver: duplicate peer")
)

// New creates a route server.
func New(cfg Config) *RouteServer {
	if cfg.MaxPlainPrefixLen == 0 {
		cfg.MaxPlainPrefixLen = 24
	}
	if cfg.MaxPlainPrefixLen6 == 0 {
		cfg.MaxPlainPrefixLen6 = 48
	}
	return &RouteServer{
		cfg:   cfg,
		peers: make(map[string]*peerState),
		table: rib.New(),
	}
}

// AddPeer registers a member session. Path IDs on the controller feed are
// assigned in join order and never reused.
func (rs *RouteServer) AddPeer(cfg PeerConfig) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.peers[cfg.Name]; ok {
		return ErrDuplicatePeer
	}
	rs.peers[cfg.Name] = &peerState{cfg: cfg, pathID: uint32(len(rs.order) + 1)}
	rs.order = append(rs.order, cfg.Name)
	return nil
}

// Peers returns the registered peer names, in join order.
func (rs *RouteServer) Peers() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.order...)
}

// Table exposes the route server's RIB (all accepted paths from all
// peers).
func (rs *RouteServer) Table() *rib.Table { return rs.table }

// Subscribe attaches a controller feed subscriber; every accepted path
// change is delivered, bypassing best-path selection.
func (rs *RouteServer) Subscribe(s Subscriber) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.subs = append(rs.subs, s)
}

// Rejections returns the accumulated import-policy rejections.
func (rs *RouteServer) Rejections() []Rejection {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]Rejection(nil), rs.rejected...)
}

// IsBlackhole reports whether attrs request blackholing: the RFC 7999
// BLACKHOLE community or the IXP-specific variant (IXP_ASN:666).
func (rs *RouteServer) IsBlackhole(attrs *bgp.PathAttrs) bool {
	return attrs.HasCommunity(bgp.CommunityBlackhole) ||
		attrs.HasCommunity(bgp.MakeCommunity(uint16(rs.cfg.ASN), 666))
}

// HandleUpdate processes one UPDATE from a member: import policy, RIB
// maintenance, best-path recomputation, export generation and the
// controller feed. The returned PeerUpdates are what the route server
// sends to the other members.
func (rs *RouteServer) HandleUpdate(peer string, u *bgp.Update) ([]PeerUpdate, []Rejection, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ps, ok := rs.peers[peer]
	if !ok {
		return nil, nil, ErrUnknownPeer
	}

	var exports []PeerUpdate
	var rejections []Rejection
	var acceptedAnn, acceptedWdr []netip.Prefix

	// Withdrawals first (RFC 4271: withdrawn routes precede NLRI).
	for _, pp := range u.AllWithdrawn() {
		key := rib.PathKey{Prefix: pp.Prefix, Peer: peer, PathID: ps.pathID}
		oldBest := rs.table.Best(pp.Prefix)
		if !rs.table.Remove(key) {
			continue // not in table: ignore
		}
		acceptedWdr = append(acceptedWdr, pp.Prefix)
		exports = append(exports, rs.exportAfterChangeLocked(pp.Prefix, oldBest)...)
	}

	originAS := u.Attrs.OriginAS()
	if originAS == 0 {
		originAS = ps.cfg.ASN
	}
	for _, pp := range u.AllAnnounced() {
		if reason, ok := rs.importCheckLocked(ps, pp.Prefix, originAS, &u.Attrs); !ok {
			rejections = append(rejections, Rejection{Peer: peer, Prefix: pp.Prefix, Reason: reason})
			continue
		}
		key := rib.PathKey{Prefix: pp.Prefix, Peer: peer, PathID: ps.pathID}
		oldBest := rs.table.Best(pp.Prefix)
		rs.table.Add(key, ps.cfg.ASN, u.Attrs)
		acceptedAnn = append(acceptedAnn, pp.Prefix)
		exports = append(exports, rs.exportAfterChangeLocked(pp.Prefix, oldBest)...)
	}

	rs.rejected = append(rs.rejected, rejections...)

	if len(acceptedAnn) > 0 || len(acceptedWdr) > 0 {
		ev := ControllerEvent{
			Peer:      peer,
			PeerAS:    ps.cfg.ASN,
			PathID:    ps.pathID,
			Announced: acceptedAnn,
			Withdrawn: acceptedWdr,
			Attrs:     u.Attrs.Clone(),
		}
		for _, s := range rs.subs {
			s(ev)
		}
	}
	return exports, rejections, nil
}

// HandleWithdrawAll processes a session teardown: every path from the
// peer is withdrawn (BGP implicit withdraw on session loss).
func (rs *RouteServer) HandleWithdrawAll(peer string) ([]PeerUpdate, error) {
	rs.mu.Lock()
	ps, ok := rs.peers[peer]
	if !ok {
		rs.mu.Unlock()
		return nil, ErrUnknownPeer
	}
	removed := rs.table.RemovePeer(peer)
	var exports []PeerUpdate
	var withdrawn []netip.Prefix
	for _, p := range removed {
		withdrawn = append(withdrawn, p.Key.Prefix)
		exports = append(exports, rs.exportAfterChangeLocked(p.Key.Prefix, p)...)
	}
	subs := append([]Subscriber(nil), rs.subs...)
	ev := ControllerEvent{Peer: peer, PeerAS: ps.cfg.ASN, PathID: ps.pathID, Withdrawn: withdrawn}
	rs.mu.Unlock()

	if len(withdrawn) > 0 {
		for _, s := range subs {
			s(ev)
		}
	}
	return exports, nil
}

// importCheckLocked applies the import policy of Figure 6.
func (rs *RouteServer) importCheckLocked(ps *peerState, prefix netip.Prefix, originAS uint32, attrs *bgp.PathAttrs) (string, bool) {
	maxPlain := rs.cfg.MaxPlainPrefixLen
	maxHost := 32
	if prefix.Addr().Is6() {
		maxPlain = rs.cfg.MaxPlainPrefixLen6
		maxHost = 128
	}
	if prefix.Bits() > maxPlain {
		// More specific than allowed: only blackholing announcements may
		// pass, up to host routes.
		if !rs.IsBlackhole(attrs) && !HasAdvancedBlackholeSignal(attrs) {
			return fmt.Sprintf("prefix more specific than /%d without blackhole community", maxPlain), false
		}
		if prefix.Bits() > maxHost {
			return "invalid prefix length", false
		}
	}
	if rs.cfg.Policy != nil {
		if v := rs.cfg.Policy.Check(prefix, originAS); !v.Accept {
			return v.Reason, false
		}
	}
	// The announcing peer must be on the path origin or an authorized
	// reseller; at an IXP the first AS must be the peer's.
	if len(attrs.ASPath) > 0 {
		first := attrs.ASPath[0]
		if first.Type == bgp.ASSequence && len(first.ASNs) > 0 && first.ASNs[0] != ps.cfg.ASN {
			return fmt.Sprintf("AS path does not start with peer AS %d", ps.cfg.ASN), false
		}
	}
	return "", true
}

// exportAfterChangeLocked recomputes the best path for prefix and emits
// the resulting per-peer updates: a new announcement when a best path
// exists, a withdrawal otherwise.
func (rs *RouteServer) exportAfterChangeLocked(prefix netip.Prefix, oldBest *rib.Path) []PeerUpdate {
	best := rs.table.Best(prefix)
	if best == nil {
		// Withdraw from everyone except (harmlessly) the announcer.
		var out []PeerUpdate
		for _, name := range rs.order {
			if oldBest != nil && name == oldBest.Key.Peer {
				continue
			}
			out = append(out, PeerUpdate{Peer: name, Update: withdrawUpdate(prefix)})
		}
		return out
	}
	if oldBest != nil && oldBest.Key == best.Key && oldBest.Seq == best.Seq {
		return nil // best path unchanged: nothing to export
	}
	return rs.exportBestLocked(prefix, best)
}

func (rs *RouteServer) exportBestLocked(prefix netip.Prefix, best *rib.Path) []PeerUpdate {
	targets := rs.exportTargetsLocked(best)
	if len(targets) == 0 {
		return nil
	}
	attrs := best.Attrs.Clone()
	// RTBH: the route server sets the next hop to the IXP's blackholing
	// IP so that accepting members forward the traffic to the null
	// interface (Section 2.2, Figure 2b).
	if rs.IsBlackhole(&attrs) && rs.cfg.BlackholeNextHop.IsValid() {
		if prefix.Addr().Is4() {
			attrs.NextHop = rs.cfg.BlackholeNextHop
		} else if attrs.MPReach != nil {
			attrs.MPReach.NextHop = rs.cfg.BlackholeNextHop
		}
		attrs.AddCommunity(bgp.CommunityNoExport)
	}
	u := &bgp.Update{Attrs: attrs}
	if prefix.Addr().Is4() {
		u.NLRI = []bgp.PathPrefix{{Prefix: prefix}}
		u.Attrs.MPReach = nil
	} else {
		var nh netip.Addr
		if attrs.MPReach != nil {
			nh = attrs.MPReach.NextHop
		}
		u.Attrs.MPReach = &bgp.MPReach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NextHop: nh,
			NLRI:    []bgp.PathPrefix{{Prefix: prefix}},
		}
		u.NLRI = nil
	}
	out := make([]PeerUpdate, 0, len(targets))
	for _, name := range targets {
		out = append(out, PeerUpdate{Peer: name, Update: u})
	}
	return out
}

// exportTargetsLocked evaluates the IXP policy communities on the path:
//
//	(0, IXP_ASN)     announce to no one
//	(0, peer_ASN)    do not announce to peer
//	(IXP_ASN, peer_ASN) announce to peer (whitelist mode once present)
//
// Without policy communities the path is exported to every peer except
// its announcer — Figure 3(b)'s dominant "All" case.
func (rs *RouteServer) exportTargetsLocked(best *rib.Path) []string {
	ixp := uint16(rs.cfg.ASN)
	blockAll := false
	blocked := make(map[uint16]bool)
	allowed := make(map[uint16]bool)
	whitelist := false
	for _, c := range best.Attrs.Communities {
		switch {
		case c.ASN() == 0 && c.Value() == ixp:
			blockAll = true
		case c.ASN() == 0:
			blocked[c.Value()] = true
		case c.ASN() == ixp && c.Value() != 666:
			allowed[c.Value()] = true
			whitelist = true
		}
	}
	var out []string
	for _, name := range rs.order {
		ps := rs.peers[name]
		if name == best.Key.Peer {
			continue
		}
		asn16 := uint16(ps.cfg.ASN)
		switch {
		case whitelist:
			if allowed[asn16] {
				out = append(out, name)
			}
		case blockAll:
			// no export
		case blocked[asn16]:
			// explicitly excluded ("All-k" policies)
		default:
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func withdrawUpdate(prefix netip.Prefix) *bgp.Update {
	if prefix.Addr().Is4() {
		return &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: prefix}}}
	}
	return &bgp.Update{Attrs: bgp.PathAttrs{
		MPUnreach: &bgp.MPUnreach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NLRI: []bgp.PathPrefix{{Prefix: prefix}}},
	}}
}

// HasAdvancedBlackholeSignal reports whether attrs carry Stellar's
// Advanced Blackholing extended community (package core defines the
// payload semantics; the route server only needs to recognize it for the
// more-specific import exception).
func HasAdvancedBlackholeSignal(attrs *bgp.PathAttrs) bool {
	for _, e := range attrs.ExtCommunities {
		if e.Type() == bgp.ExtTypeExperimental && e.SubType() == bgp.ExtSubTypeAdvBlackhole {
			return true
		}
	}
	return false
}
