package flowmon

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"stellar/internal/netpkt"
)

// randRecords draws a mixed workload: UDP/TCP/ICMP over v4 and v6,
// ports from a small pool (so keys collide and accumulate), several
// source MACs, bins in a window wider than the shard ring (forcing
// ring rotation), and occasional zero-byte records (which must still
// materialize their counter entries, as the map baseline does).
func randRecords(rng *rand.Rand, n, bins int) []Record {
	protos := []netpkt.IPProto{netpkt.ProtoUDP, netpkt.ProtoTCP, netpkt.ProtoICMP}
	ports := []uint16{0, 19, 53, 80, 123, 389, 443, 11211, 40000, 65535}
	recs := make([]Record, n)
	for i := range recs {
		var src, dst netip.Addr
		if rng.Intn(2) == 0 {
			src = netip.AddrFrom4([4]byte{198, 51, 100, byte(rng.Intn(8))})
			dst = netip.AddrFrom4([4]byte{100, 10, 10, byte(rng.Intn(4))})
		} else {
			src = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(rng.Intn(8))})
			dst = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 1, 15: byte(rng.Intn(4))})
		}
		bytes := float64(rng.Intn(1500)) * 100
		if rng.Intn(20) == 0 {
			bytes = 0
		}
		recs[i] = Record{
			Bin: rng.Intn(bins),
			Key: netpkt.FlowKey{
				SrcMAC:  netpkt.MAC{0x02, 0x10, 0, 0, 0, byte(rng.Intn(16))},
				Src:     src,
				Dst:     dst,
				Proto:   protos[rng.Intn(len(protos))],
				SrcPort: ports[rng.Intn(len(ports))],
				DstPort: ports[rng.Intn(len(ports))],
			},
			Bytes:   bytes,
			Packets: bytes / 500,
		}
	}
	return recs
}

// compareCollectors checks every accessor of the sharded collector
// against the map baseline. tol is the relative tolerance for float
// comparisons (0 demands exact equality; shard merges re-associate
// float additions, so multi-flush paths need a tiny tolerance).
func compareCollectors(t *testing.T, want *MapCollector, got *Collector, tol float64) {
	t.Helper()
	near := func(a, b float64) bool {
		if a == b {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return scale > 0 && math.Abs(a-b) <= tol*scale
	}
	wantBins, gotBins := want.Bins(), got.Bins()
	if fmt.Sprint(wantBins) != fmt.Sprint(gotBins) {
		t.Fatalf("Bins: got %v, want %v", gotBins, wantBins)
	}
	_, wantSeries := want.Series()
	_, gotSeries := got.Series()
	for i := range wantSeries {
		if !near(wantSeries[i], gotSeries[i]) {
			t.Fatalf("Series[%d]: got %v, want %v", i, gotSeries[i], wantSeries[i])
		}
	}
	for _, bin := range append(wantBins, -1, 1<<20) { // plus absent bins
		if !near(want.TotalBytes(bin), got.TotalBytes(bin)) {
			t.Fatalf("TotalBytes(%d): got %v, want %v", bin, got.TotalBytes(bin), want.TotalBytes(bin))
		}
		comparePortMap(t, fmt.Sprintf("DstPortShares(%d)", bin), want.DstPortShares(bin), got.DstPortShares(bin), near)
		comparePortMap(t, fmt.Sprintf("SrcPortShares(%d)", bin), want.SrcPortShares(bin), got.SrcPortShares(bin), near)
		wantP, gotP := want.ProtoShares(bin), got.ProtoShares(bin)
		if len(wantP) != len(gotP) {
			t.Fatalf("ProtoShares(%d): got %v, want %v", bin, gotP, wantP)
		}
		for k, v := range wantP {
			if !near(v, gotP[k]) {
				t.Fatalf("ProtoShares(%d)[%v]: got %v, want %v", bin, k, gotP[k], v)
			}
		}
		for _, min := range []float64{0, 100, 1e5} {
			if w, g := want.PeerCount(bin, min), got.PeerCount(bin, min); w != g {
				t.Fatalf("PeerCount(%d, %v): got %d, want %d", bin, min, g, w)
			}
		}
	}
	for _, k := range []int{1, 3, 100} {
		wantTop, gotTop := want.TopSrcPorts(k), got.TopSrcPorts(k)
		if len(wantTop) != len(gotTop) {
			t.Fatalf("TopSrcPorts(%d): got %+v, want %+v", k, gotTop, wantTop)
		}
		for i := range wantTop {
			if wantTop[i].Port != gotTop[i].Port ||
				!near(wantTop[i].Bytes, gotTop[i].Bytes) || !near(wantTop[i].Share, gotTop[i].Share) {
				t.Fatalf("TopSrcPorts(%d)[%d]: got %+v, want %+v", k, i, gotTop[i], wantTop[i])
			}
		}
	}
}

func comparePortMap(t *testing.T, what string, want, got map[uint16]float64, near func(a, b float64) bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d entries, want %d (%v vs %v)", what, len(got), len(want), got, want)
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok || !near(v, g) {
			t.Fatalf("%s[%d]: got %v (present=%v), want %v", what, k, g, ok, v)
		}
	}
}

// TestCollectorEquivalenceSerial pins the sharded collector to the map
// baseline over a single observation stream — including SampleEvery > 1,
// where the 1-in-N counter subsequence must match record for record.
func TestCollectorEquivalenceSerial(t *testing.T) {
	for _, se := range []int{1, 3, 7} {
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(100*se + trial)))
			recs := randRecords(rng, 3000, 24) // 24 bins >> ring size: rotation exercised
			oldC := NewMapCollector()
			oldC.SampleEvery = se
			newC := NewCollectorShards(4)
			newC.SampleEvery = se
			for _, r := range recs {
				oldC.Observe(r)
				newC.Observe(r)
			}
			// Serial streams share association order except across ring
			// flushes; a tiny relative tolerance absorbs the float
			// re-association.
			compareCollectors(t, oldC, newC, 1e-12)
		}
	}
}

// TestCollectorEquivalenceSingleBinExact: with every record in one bin
// the shard flushes exactly once, so the sharded collector's sums are
// bit-identical to the baseline's.
func TestCollectorEquivalenceSingleBinExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := randRecords(rng, 2000, 1)
	oldC := NewMapCollector()
	newC := NewCollector()
	for _, r := range recs {
		oldC.Observe(r)
		newC.Observe(r)
	}
	compareCollectors(t, oldC, newC, 0)
}

// TestCollectorEquivalenceBatchedShards spreads batches across shards
// (the concurrent ingestion layout) and checks the merged aggregates
// still match the baseline.
func TestCollectorEquivalenceBatchedShards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randRecords(rng, 4000, 16)
	oldC := NewMapCollector()
	oldC.ObserveBatch(recs)
	newC := NewCollectorShards(4)
	for i := 0; i < len(recs); i += 97 {
		end := i + 97
		if end > len(recs) {
			end = len(recs)
		}
		newC.ObserveBatch(recs[i:end])
	}
	compareCollectors(t, oldC, newC, 1e-9)
}

// TestShardObserveFlowMatchesObserve pins the fabric-facing ObserveFlow
// entry point to Record-based observation.
func TestShardObserveFlowMatchesObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randRecords(rng, 500, 4)
	a := NewCollectorShards(2)
	b := NewCollectorShards(2)
	for _, r := range recs {
		a.Shard(1).Observe(r)
		b.Shard(1).ObserveFlow(r.Bin, r.Key, r.Bytes)
	}
	ab, av := a.Series()
	bb, bv := b.Series()
	if fmt.Sprint(ab) != fmt.Sprint(bb) || fmt.Sprint(av) != fmt.Sprint(bv) {
		t.Fatalf("ObserveFlow diverged: %v/%v vs %v/%v", ab, av, bb, bv)
	}
}

// TestObserveSteadyStateZeroAllocs pins the acceptance bar: after
// warmup, the observe hot path allocates nothing per record.
func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	c := NewCollectorShards(2)
	sh := c.Shard(0)
	rng := rand.New(rand.NewSource(3))
	warm := randRecords(rng, 4096, 2)
	sh.ObserveBatch(warm) // grow tables and touched-lists once
	i := 0
	if allocs := testing.AllocsPerRun(5000, func() {
		r := &warm[i%len(warm)]
		sh.ObserveFlow(r.Bin, r.Key, r.Bytes)
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state ObserveFlow allocates %v per record", allocs)
	}
}
