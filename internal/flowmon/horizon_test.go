package flowmon

import (
	"net/netip"
	"testing"

	"stellar/internal/netpkt"
)

func horizonKey(i int) netpkt.FlowKey {
	return netpkt.FlowKey{
		SrcMAC:  netpkt.MAC{0x02, 0, 0, 0, 0, byte(i)},
		Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{100, 64, 0, 1}),
		Proto:   netpkt.ProtoUDP,
		SrcPort: uint16(1000 + i),
		DstPort: 443,
	}
}

// TestMergeHorizonBoundsAccessorMerges: bins above the horizon stay in
// flight — accessors neither see them nor split their accumulation —
// until the horizon advances past them.
func TestMergeHorizonBoundsAccessorMerges(t *testing.T) {
	c := NewCollectorShards(2)
	for bin := 0; bin < 3; bin++ {
		c.Shard(bin%2).ObserveFlow(bin, horizonKey(bin), float64(100*(bin+1)))
	}

	c.SetMergeHorizon(1)
	if got := c.Bins(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("bins at horizon 1: %v, want [0 1]", got)
	}
	if got := c.TotalBytes(2); got != 0 {
		t.Fatalf("bin 2 visible above the horizon: %v bytes", got)
	}
	// The in-flight bin keeps accumulating while below-horizon reads
	// proceed; the horizon guarantees its eventual flush is one piece.
	c.Shard(0).ObserveFlow(2, horizonKey(7), 50)

	c.SetMergeHorizon(2)
	if got := c.TotalBytes(2); got != 350 {
		t.Fatalf("bin 2 after horizon advance: %v bytes, want 350", got)
	}
	if got := c.PeerCount(2, 0); got != 2 {
		t.Fatalf("bin 2 peers: %d, want 2", got)
	}
}

// TestMergeHorizonDefaultUnbounded: without SetMergeHorizon the
// collector behaves exactly as before — every accessor read drains all
// in-flight bins.
func TestMergeHorizonDefaultUnbounded(t *testing.T) {
	c := NewCollector()
	c.Shard(0).ObserveFlow(41, horizonKey(1), 10)
	if got := c.TotalBytes(41); got != 10 {
		t.Fatalf("unbounded horizon hid bin 41: %v", got)
	}
}

// TestMergeHorizonRingRotationUnaffected: the observe path still
// flushes a slot whose bin the writer moved past, even above the
// horizon, so a long-running writer never wedges on a stale slot.
func TestMergeHorizonRingRotationUnaffected(t *testing.T) {
	c := NewCollectorShards(1)
	c.SetMergeHorizon(-1) // nothing mergeable by accessors
	sh := c.Shard(0)
	// Bins 0..4 on one shard: bin 4 reuses bin 0's ring slot, forcing a
	// rotation flush of bin 0 into the store despite the horizon.
	for bin := 0; bin < 5; bin++ {
		sh.ObserveFlow(bin, horizonKey(bin), 100)
	}
	c.mu.Lock()
	flushedBin0 := c.st.bins[0] != nil && c.st.bins[0].total == 100
	c.mu.Unlock()
	if !flushedBin0 {
		t.Fatal("ring rotation no longer flushes past-horizon bins")
	}
}
