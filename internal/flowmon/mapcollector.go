package flowmon

import "stellar/internal/netpkt"

// MapCollector is the retained baseline implementation: four map
// operations per record into the per-bin store, no sharding, not safe
// for concurrent use. It is kept (rather than deleted) so the
// randomized equivalence test can pin the sharded Collector to its
// exact accessor semantics and so the benchmarks measure the pipeline
// against the design it replaced.
type MapCollector struct {
	st store
	// SampleEvery subsamples records (IPFIX samples 1-in-N packets in
	// production); 1 observes everything.
	SampleEvery int
	counter     int
}

// NewMapCollector returns an empty baseline collector observing every
// record.
func NewMapCollector() *MapCollector {
	return &MapCollector{st: newStore(), SampleEvery: 1}
}

// Observe adds one record.
func (c *MapCollector) Observe(r Record) {
	c.counter++
	if c.SampleEvery > 1 && c.counter%c.SampleEvery != 0 {
		return
	}
	c.st.observe(&r)
}

// ObserveBatch adds a batch of records.
func (c *MapCollector) ObserveBatch(recs []Record) {
	for i := range recs {
		c.Observe(recs[i])
	}
}

// Bins returns the observed bin indices, sorted.
func (c *MapCollector) Bins() []int { return c.st.binsSorted() }

// TotalBytes returns the bytes observed in bin.
func (c *MapCollector) TotalBytes(bin int) float64 { return c.st.totalBytes(bin) }

// DstPortShares returns each destination port's share of the bin's bytes.
func (c *MapCollector) DstPortShares(bin int) map[uint16]float64 { return c.st.dstPortShares(bin) }

// SrcPortShares returns each UDP source port's share of the bin's bytes.
func (c *MapCollector) SrcPortShares(bin int) map[uint16]float64 { return c.st.srcPortShares(bin) }

// SrcPortBytes returns the bin's UDP bytes from one source port.
func (c *MapCollector) SrcPortBytes(bin int, port uint16) float64 {
	return c.st.srcPortBytes(bin, port)
}

// ProtoShares returns the protocol byte shares of the bin.
func (c *MapCollector) ProtoShares(bin int) map[netpkt.IPProto]float64 { return c.st.protoShares(bin) }

// PeerCount returns the number of distinct source members whose bytes
// in the bin exceed minBytes.
func (c *MapCollector) PeerCount(bin int, minBytes float64) int { return c.st.peerCount(bin, minBytes) }

// PeerCountFunc is PeerCount restricted to the source MACs keep accepts.
func (c *MapCollector) PeerCountFunc(bin int, minBytes float64, keep func(netpkt.MAC) bool) int {
	return c.st.peerCountFunc(bin, minBytes, keep)
}

// TopSrcPorts returns the k highest-volume UDP source ports across all
// bins plus the 65535 "others" sentinel.
func (c *MapCollector) TopSrcPorts(k int) []PortRank { return c.st.topSrcPorts(k) }

// Series returns the per-bin total bytes as (bins, values) slices.
func (c *MapCollector) Series() (bins []int, bytes []float64) { return c.st.series() }
