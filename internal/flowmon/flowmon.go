// Package flowmon is the IXP's flow-monitoring pipeline: an IPFIX-style
// collector that aggregates per-tick flow observations into time-binned
// counters, from which the evaluation derives per-port traffic shares
// (Figure 2c), UDP source-port histograms across blackholing events
// (Figure 3a), protocol mixes (Section 2.3) and peer counts (Figures 3c
// and 10c).
//
// Two implementations share one accessor surface:
//
//   - Collector is the production pipeline: per-worker Shard
//     accumulators built on compact open-addressed counter tables and a
//     bounded ring of in-flight time bins, merged into the long-term
//     per-bin store when a bin rotates out or an accessor reads. The
//     steady-state observe path performs no allocation per record and
//     takes no lock per record (one lock per batch), so the fabric's
//     parallel egress workers stream delivered flows straight into
//     their own shards.
//   - MapCollector is the retained map-per-record baseline (the
//     pre-sharding design); a randomized equivalence test pins the two
//     to identical accessor results, and the benchmarks measure the
//     production pipeline against it.
package flowmon

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"stellar/internal/netpkt"
)

// Record is one flow observation: key, byte and packet counts within a
// time bin.
type Record struct {
	Bin     int
	Key     netpkt.FlowKey
	Bytes   float64
	Packets float64
}

// binAgg accumulates per-bin counters.
type binAgg struct {
	bySrcPort map[uint16]float64 // UDP source port -> bytes
	byDstPort map[uint16]float64 // any-proto destination port -> bytes
	byProto   map[netpkt.IPProto]float64
	peers     map[netpkt.MAC]float64 // source member -> bytes
	total     float64
}

func newBinAgg() *binAgg {
	return &binAgg{
		bySrcPort: make(map[uint16]float64),
		byDstPort: make(map[uint16]float64),
		byProto:   make(map[netpkt.IPProto]float64),
		peers:     make(map[netpkt.MAC]float64),
	}
}

// store is the merged per-bin aggregate state; both collector
// implementations compute every accessor from it, so their results are
// identical by construction.
type store struct {
	bins map[int]*binAgg
}

func newStore() store { return store{bins: make(map[int]*binAgg)} }

func (st *store) agg(bin int) *binAgg {
	b := st.bins[bin]
	if b == nil {
		b = newBinAgg()
		st.bins[bin] = b
	}
	return b
}

// observe folds one record into the store — the map-per-record baseline
// path, and the per-record shape the sharded pipeline must reproduce.
func (st *store) observe(r *Record) {
	b := st.agg(r.Bin)
	b.total += r.Bytes
	b.byProto[r.Key.Proto] += r.Bytes
	b.byDstPort[r.Key.DstPort] += r.Bytes
	if r.Key.Proto == netpkt.ProtoUDP {
		b.bySrcPort[r.Key.SrcPort] += r.Bytes
	}
	b.peers[r.Key.SrcMAC] += r.Bytes
}

func (st *store) binsSorted() []int {
	out := make([]int, 0, len(st.bins))
	for b := range st.bins {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func (st *store) totalBytes(bin int) float64 {
	if b := st.bins[bin]; b != nil {
		return b.total
	}
	return 0
}

func (st *store) dstPortShares(bin int) map[uint16]float64 {
	b := st.bins[bin]
	out := make(map[uint16]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for port, bytes := range b.byDstPort {
		out[port] = bytes / b.total
	}
	return out
}

func (st *store) srcPortShares(bin int) map[uint16]float64 {
	b := st.bins[bin]
	out := make(map[uint16]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for port, bytes := range b.bySrcPort {
		out[port] = bytes / b.total
	}
	return out
}

func (st *store) srcPortBytes(bin int, port uint16) float64 {
	if b := st.bins[bin]; b != nil {
		return b.bySrcPort[port]
	}
	return 0
}

func (st *store) protoShares(bin int) map[netpkt.IPProto]float64 {
	b := st.bins[bin]
	out := make(map[netpkt.IPProto]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for proto, bytes := range b.byProto {
		out[proto] = bytes / b.total
	}
	return out
}

func (st *store) peerCount(bin int, minBytes float64) int {
	b := st.bins[bin]
	if b == nil {
		return 0
	}
	n := 0
	for _, bytes := range b.peers {
		if bytes > minBytes {
			n++
		}
	}
	return n
}

func (st *store) peerCountFunc(bin int, minBytes float64, keep func(netpkt.MAC) bool) int {
	b := st.bins[bin]
	if b == nil {
		return 0
	}
	n := 0
	for mac, bytes := range b.peers {
		if bytes > minBytes && keep(mac) {
			n++
		}
	}
	return n
}

// PortRank is one entry of a top-ports report.
type PortRank struct {
	Port  uint16
	Bytes float64
	Share float64
}

func (st *store) topSrcPorts(k int) []PortRank {
	agg := make(map[uint16]float64)
	var total float64
	// Sum bins in ascending order: float accumulation order is part of
	// the determinism contract (two identically fed collectors must
	// rank identically down to the last ulp).
	for _, bin := range st.binsSorted() {
		b := st.bins[bin]
		for port, bytes := range b.bySrcPort {
			agg[port] += bytes
		}
		total += b.total
	}
	ranks := make([]PortRank, 0, len(agg))
	for port, bytes := range agg {
		ranks = append(ranks, PortRank{Port: port, Bytes: bytes})
	}
	// Ports are unique keys, so (bytes desc, port asc) is a total order:
	// one stable sort yields the same ranking on every call regardless
	// of map iteration order.
	sort.SliceStable(ranks, func(i, j int) bool {
		if ranks[i].Bytes != ranks[j].Bytes {
			return ranks[i].Bytes > ranks[j].Bytes
		}
		return ranks[i].Port < ranks[j].Port
	})
	if k < len(ranks) {
		ranks = ranks[:k]
	}
	var top float64
	for i := range ranks {
		if total > 0 {
			ranks[i].Share = ranks[i].Bytes / total
		}
		top += ranks[i].Bytes
	}
	if rest := total - top; rest > 1e-9 {
		share := 0.0
		if total > 0 {
			share = rest / total
		}
		ranks = append(ranks, PortRank{Port: 65535, Bytes: rest, Share: share})
	}
	return ranks
}

func (st *store) series() (bins []int, bytes []float64) {
	bins = st.binsSorted()
	bytes = make([]float64, len(bins))
	for i, b := range bins {
		bytes[i] = st.bins[b].total
	}
	return bins, bytes
}

// Collector aggregates records on per-worker shards and merges them
// into a long-term per-bin store when bins rotate out of the shard
// rings or when an accessor reads. It is safe for concurrent use:
// any number of goroutines may call Observe/ObserveBatch (or write to
// distinct Shards) while others read the accessors.
type Collector struct {
	// SampleEvery subsamples records (IPFIX samples 1-in-N packets in
	// production); 1 observes everything. Each shard keeps its own
	// 1-in-N counter, so with a single observation stream the sampled
	// subsequence matches MapCollector exactly. Set it before the first
	// observation; it must not be changed while observers run.
	SampleEvery int

	shards []*Shard
	rr     atomic.Uint32 // round-robin batch placement

	// horizon bounds accessor-triggered merges: shard bins above it stay
	// in flight (see SetMergeHorizon). Defaults to unbounded.
	horizon atomic.Int64

	mu sync.Mutex // guards st; always acquired after a shard lock
	st store
}

// NewCollector returns an empty collector observing every record, with
// one shard per GOMAXPROCS worker.
func NewCollector() *Collector { return NewCollectorShards(runtime.GOMAXPROCS(0)) }

// NewCollectorShards returns an empty collector with n shards (n < 1 is
// treated as 1).
func NewCollectorShards(n int) *Collector {
	if n < 1 {
		n = 1
	}
	c := &Collector{SampleEvery: 1, st: newStore()}
	c.horizon.Store(int64(^uint64(0) >> 1)) // unbounded
	c.shards = make([]*Shard, n)
	for i := range c.shards {
		c.shards[i] = &Shard{c: c}
	}
	return c
}

// Shards returns the number of shards.
func (c *Collector) Shards() int { return len(c.shards) }

// Shard returns worker i's accumulator; i wraps modulo the shard count,
// so any worker index is valid.
func (c *Collector) Shard(i int) *Shard {
	if i < 0 {
		i = -i
	}
	return c.shards[i%len(c.shards)]
}

// Observe adds one record. Serial callers get MapCollector-identical
// sampling semantics (all records flow through shard 0's counter).
func (c *Collector) Observe(r Record) { c.shards[0].Observe(r) }

// ObserveBatch adds a batch of records on one shard (chosen round-robin
// across calls), taking one lock per batch rather than per record. It
// is safe to call from any number of goroutines.
func (c *Collector) ObserveBatch(recs []Record) {
	c.shards[int(c.rr.Add(1)-1)%len(c.shards)].ObserveBatch(recs)
}

// SetMergeHorizon bounds accessor-triggered merges to bins <= bin:
// shard bins above the horizon stay in flight instead of being drained
// mid-accumulation. Readers that overlap writers — the simulation
// engine's fold side reads tick T's bins while the next tick's egress
// still streams into bin T+1 — set the horizon to the tick they read,
// which keeps every bin's counters the sum of one uninterrupted shard
// accumulation (bit-identical to a serial run) instead of a sum of
// partial flushes, whose float addition order would differ. Ring
// rotation on the observe path is unaffected: it only flushes bins the
// writer has moved past. The horizon may only move forward while
// observers run; reset it to a large value (or leave it unset) for the
// read-after-write usage every other caller has.
func (c *Collector) SetMergeHorizon(bin int) { c.horizon.Store(int64(bin)) }

// merge drains every shard's in-flight bins at or below the merge
// horizon into the long-term store. Lock order is always shard.mu
// before c.mu — the same order the shards' own ring-rotation flush
// uses.
func (c *Collector) merge() {
	horizon := c.horizon.Load()
	for _, s := range c.shards {
		s.mu.Lock()
		for i := range s.slots {
			if s.slots[i].used && int64(s.slots[i].bin) <= horizon {
				c.flushSlot(&s.slots[i])
			}
		}
		s.mu.Unlock()
	}
}

// flushSlot folds one shard bin into the long-term store and resets it.
// Callers hold the owning shard's lock.
func (c *Collector) flushSlot(b *shardBin) {
	c.mu.Lock()
	c.st.addFrom(b)
	c.mu.Unlock()
	b.reset()
}

// Bins returns the observed bin indices, sorted.
func (c *Collector) Bins() []int {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.binsSorted()
}

// TotalBytes returns the bytes observed in bin.
func (c *Collector) TotalBytes(bin int) float64 {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.totalBytes(bin)
}

// DstPortShares returns each destination port's share of the bin's
// bytes — the Figure 2(c) view ("traffic share IXP member [%]").
func (c *Collector) DstPortShares(bin int) map[uint16]float64 {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.dstPortShares(bin)
}

// SrcPortShares returns each UDP source port's share of the bin's bytes
// — the Figure 3(a) view.
func (c *Collector) SrcPortShares(bin int) map[uint16]float64 {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.srcPortShares(bin)
}

// SrcPortBytes returns the bin's UDP bytes from one source port — the
// per-class accounting of the Section 5.2 lab validation (drop vs shape
// queue classes are keyed by UDP source port).
func (c *Collector) SrcPortBytes(bin int, port uint16) float64 {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.srcPortBytes(bin, port)
}

// ProtoShares returns the protocol byte shares of the bin.
func (c *Collector) ProtoShares(bin int) map[netpkt.IPProto]float64 {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.protoShares(bin)
}

// PeerCount returns the number of distinct source members whose bytes in
// the bin exceed minBytes — the "#peers" series of Figures 3(c)/10(c).
func (c *Collector) PeerCount(bin int, minBytes float64) int {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.peerCount(bin, minBytes)
}

// PeerCountFunc is PeerCount restricted to the source MACs keep accepts
// — e.g. the scenario engine counts only MACs registered to IXP members,
// matching the pre-streaming ActivePeers semantics. keep must not call
// back into the collector.
func (c *Collector) PeerCountFunc(bin int, minBytes float64, keep func(netpkt.MAC) bool) int {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.peerCountFunc(bin, minBytes, keep)
}

// TopSrcPorts returns the k highest-volume UDP source ports across all
// bins, plus the residual share under the sentinel port 65535 when
// "others" is non-zero. The ranking is deterministic regardless of map
// iteration order: equal-volume ports tie-break toward the lower port.
func (c *Collector) TopSrcPorts(k int) []PortRank {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.topSrcPorts(k)
}

// Series returns the per-bin total bytes as (bins, values) aligned
// slices — the traffic time series of Figures 3(c) and 10(c).
func (c *Collector) Series() (bins []int, bytes []float64) {
	c.merge()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.series()
}
