// Package flowmon is the IXP's flow-monitoring pipeline: an IPFIX-style
// collector that aggregates per-tick flow observations into time-binned
// counters, from which the evaluation derives per-port traffic shares
// (Figure 2c), UDP source-port histograms across blackholing events
// (Figure 3a), protocol mixes (Section 2.3) and peer counts (Figures 3c
// and 10c).
package flowmon

import (
	"sort"

	"stellar/internal/netpkt"
)

// Record is one flow observation: key, byte and packet counts within a
// time bin.
type Record struct {
	Bin     int
	Key     netpkt.FlowKey
	Bytes   float64
	Packets float64
}

// binAgg accumulates per-bin counters.
type binAgg struct {
	bySrcPort map[uint16]float64 // UDP source port -> bytes
	byDstPort map[uint16]float64 // any-proto destination port -> bytes
	byProto   map[netpkt.IPProto]float64
	peers     map[netpkt.MAC]float64 // source member -> bytes
	total     float64
}

// Collector aggregates records. It is not safe for concurrent use; the
// simulation loop owns it.
type Collector struct {
	bins map[int]*binAgg
	// SampleEvery subsamples records (IPFIX samples 1-in-N packets in
	// production); 1 observes everything.
	SampleEvery int
	counter     int
}

// NewCollector returns an empty collector observing every record.
func NewCollector() *Collector {
	return &Collector{bins: make(map[int]*binAgg), SampleEvery: 1}
}

// Observe adds one record.
func (c *Collector) Observe(r Record) {
	c.counter++
	if c.SampleEvery > 1 && c.counter%c.SampleEvery != 0 {
		return
	}
	b := c.bins[r.Bin]
	if b == nil {
		b = &binAgg{
			bySrcPort: make(map[uint16]float64),
			byDstPort: make(map[uint16]float64),
			byProto:   make(map[netpkt.IPProto]float64),
			peers:     make(map[netpkt.MAC]float64),
		}
		c.bins[r.Bin] = b
	}
	b.total += r.Bytes
	b.byProto[r.Key.Proto] += r.Bytes
	b.byDstPort[r.Key.DstPort] += r.Bytes
	if r.Key.Proto == netpkt.ProtoUDP {
		b.bySrcPort[r.Key.SrcPort] += r.Bytes
	}
	b.peers[r.Key.SrcMAC] += r.Bytes
}

// Bins returns the observed bin indices, sorted.
func (c *Collector) Bins() []int {
	out := make([]int, 0, len(c.bins))
	for b := range c.bins {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// TotalBytes returns the bytes observed in bin.
func (c *Collector) TotalBytes(bin int) float64 {
	if b := c.bins[bin]; b != nil {
		return b.total
	}
	return 0
}

// DstPortShares returns each destination port's share of the bin's
// bytes — the Figure 2(c) view ("traffic share IXP member [%]").
func (c *Collector) DstPortShares(bin int) map[uint16]float64 {
	b := c.bins[bin]
	out := make(map[uint16]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for port, bytes := range b.byDstPort {
		out[port] = bytes / b.total
	}
	return out
}

// SrcPortShares returns each UDP source port's share of the bin's bytes
// — the Figure 3(a) view.
func (c *Collector) SrcPortShares(bin int) map[uint16]float64 {
	b := c.bins[bin]
	out := make(map[uint16]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for port, bytes := range b.bySrcPort {
		out[port] = bytes / b.total
	}
	return out
}

// ProtoShares returns the protocol byte shares of the bin.
func (c *Collector) ProtoShares(bin int) map[netpkt.IPProto]float64 {
	b := c.bins[bin]
	out := make(map[netpkt.IPProto]float64)
	if b == nil || b.total == 0 {
		return out
	}
	for proto, bytes := range b.byProto {
		out[proto] = bytes / b.total
	}
	return out
}

// PeerCount returns the number of distinct source members whose bytes in
// the bin exceed minBytes — the "#peers" series of Figures 3(c)/10(c).
func (c *Collector) PeerCount(bin int, minBytes float64) int {
	b := c.bins[bin]
	if b == nil {
		return 0
	}
	n := 0
	for _, bytes := range b.peers {
		if bytes > minBytes {
			n++
		}
	}
	return n
}

// PortRank is one entry of a top-ports report.
type PortRank struct {
	Port  uint16
	Bytes float64
	Share float64
}

// TopSrcPorts returns the k highest-volume UDP source ports across all
// bins, plus the residual share under the sentinel port 65535 when
// "others" is non-zero. The ranking is deterministic regardless of map
// iteration order: equal-volume ports tie-break toward the lower port.
func (c *Collector) TopSrcPorts(k int) []PortRank {
	agg := make(map[uint16]float64)
	var total float64
	for _, b := range c.bins {
		for port, bytes := range b.bySrcPort {
			agg[port] += bytes
		}
		total += b.total
	}
	ranks := make([]PortRank, 0, len(agg))
	for port, bytes := range agg {
		ranks = append(ranks, PortRank{Port: port, Bytes: bytes})
	}
	// Ports are unique keys, so (bytes desc, port asc) is a total order:
	// one stable sort yields the same ranking on every call regardless
	// of map iteration order.
	sort.SliceStable(ranks, func(i, j int) bool {
		if ranks[i].Bytes != ranks[j].Bytes {
			return ranks[i].Bytes > ranks[j].Bytes
		}
		return ranks[i].Port < ranks[j].Port
	})
	if k < len(ranks) {
		ranks = ranks[:k]
	}
	var top float64
	for i := range ranks {
		if total > 0 {
			ranks[i].Share = ranks[i].Bytes / total
		}
		top += ranks[i].Bytes
	}
	if rest := total - top; rest > 1e-9 {
		share := 0.0
		if total > 0 {
			share = rest / total
		}
		ranks = append(ranks, PortRank{Port: 65535, Bytes: rest, Share: share})
	}
	return ranks
}

// Series returns the per-bin total bytes as (bins, values) aligned
// slices — the traffic time series of Figures 3(c) and 10(c).
func (c *Collector) Series() (bins []int, bytes []float64) {
	bins = c.Bins()
	bytes = make([]float64, len(bins))
	for i, b := range bins {
		bytes[i] = c.bins[b].total
	}
	return bins, bytes
}
