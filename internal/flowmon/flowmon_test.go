package flowmon

import (
	"math"
	"net/netip"
	"testing"

	"stellar/internal/netpkt"
)

var (
	macA = netpkt.MustParseMAC("02:00:00:00:00:0a")
	macB = netpkt.MustParseMAC("02:00:00:00:00:0b")
	ip1  = netip.MustParseAddr("198.51.100.1")
	dst  = netip.MustParseAddr("100.10.10.10")
)

func rec(bin int, mac netpkt.MAC, proto netpkt.IPProto, srcPort, dstPort uint16, bytes float64) Record {
	return Record{
		Bin: bin,
		Key: netpkt.FlowKey{SrcMAC: mac, Src: ip1, Dst: dst, Proto: proto,
			SrcPort: srcPort, DstPort: dstPort},
		Bytes:   bytes,
		Packets: bytes / 500,
	}
}

func TestSharesAndTotals(t *testing.T) {
	c := NewCollector()
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 123, 443, 600))
	c.Observe(rec(0, macB, netpkt.ProtoTCP, 50000, 443, 400))

	if got := c.TotalBytes(0); got != 1000 {
		t.Fatalf("TotalBytes: %v", got)
	}
	ps := c.SrcPortShares(0)
	if math.Abs(ps[123]-0.6) > 1e-12 {
		t.Fatalf("udp src 123 share: %v", ps[123])
	}
	if _, ok := ps[50000]; ok {
		t.Fatal("TCP flow leaked into UDP src-port shares")
	}
	dp := c.DstPortShares(0)
	if math.Abs(dp[443]-1.0) > 1e-12 {
		t.Fatalf("dst 443 share: %v", dp[443])
	}
	pr := c.ProtoShares(0)
	if math.Abs(pr[netpkt.ProtoUDP]-0.6) > 1e-12 || math.Abs(pr[netpkt.ProtoTCP]-0.4) > 1e-12 {
		t.Fatalf("proto shares: %v", pr)
	}
}

func TestEmptyBin(t *testing.T) {
	c := NewCollector()
	if c.TotalBytes(9) != 0 || len(c.SrcPortShares(9)) != 0 ||
		len(c.DstPortShares(9)) != 0 || len(c.ProtoShares(9)) != 0 || c.PeerCount(9, 0) != 0 {
		t.Fatal("empty bin not empty")
	}
}

func TestPeerCount(t *testing.T) {
	c := NewCollector()
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 123, 443, 1000))
	c.Observe(rec(0, macB, netpkt.ProtoUDP, 123, 443, 5))
	if got := c.PeerCount(0, 0); got != 2 {
		t.Fatalf("PeerCount(0): %d", got)
	}
	// Threshold excludes the 5-byte peer.
	if got := c.PeerCount(0, 10); got != 1 {
		t.Fatalf("PeerCount(10): %d", got)
	}
}

func TestBinsAndSeries(t *testing.T) {
	c := NewCollector()
	c.Observe(rec(3, macA, netpkt.ProtoUDP, 1, 1, 30))
	c.Observe(rec(1, macA, netpkt.ProtoUDP, 1, 1, 10))
	c.Observe(rec(1, macB, netpkt.ProtoUDP, 1, 1, 5))
	bins := c.Bins()
	if len(bins) != 2 || bins[0] != 1 || bins[1] != 3 {
		t.Fatalf("Bins: %v", bins)
	}
	b, v := c.Series()
	if len(b) != 2 || v[0] != 15 || v[1] != 30 {
		t.Fatalf("Series: %v %v", b, v)
	}
}

func TestTopSrcPorts(t *testing.T) {
	c := NewCollector()
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 0, 1, 500))
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 123, 1, 300))
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 53, 1, 100))
	c.Observe(rec(1, macA, netpkt.ProtoTCP, 443, 1, 100)) // TCP: not a UDP src port

	top := c.TopSrcPorts(2)
	// 2 ports + "others" sentinel (port 53 UDP bytes + implicit gap from
	// TCP bytes counted in totals).
	if len(top) != 3 {
		t.Fatalf("TopSrcPorts: %+v", top)
	}
	if top[0].Port != 0 || top[1].Port != 123 {
		t.Fatalf("order: %+v", top)
	}
	if top[0].Share <= top[1].Share {
		t.Fatal("shares not ordered")
	}
	if top[2].Port != 65535 {
		t.Fatalf("others sentinel: %+v", top[2])
	}
	var sum float64
	for _, r := range top {
		sum += r.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum: %v", sum)
	}
}

func TestTopSrcPortsTieBreak(t *testing.T) {
	c := NewCollector()
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 200, 1, 100))
	c.Observe(rec(0, macA, netpkt.ProtoUDP, 100, 1, 100))
	top := c.TopSrcPorts(2)
	if top[0].Port != 100 || top[1].Port != 200 {
		t.Fatalf("tie break: %+v", top)
	}
}

func TestTopSrcPortsManyWayTieIsDeterministic(t *testing.T) {
	// A wide tie exercises the stable sort across map iteration orders:
	// every port carries identical volume, so the ranking must come out
	// in ascending port order on every call.
	c := NewCollector()
	ports := []uint16{11211, 19, 389, 0, 123, 53, 7, 161}
	for _, p := range ports {
		c.Observe(rec(0, macA, netpkt.ProtoUDP, p, 1, 100))
	}
	want := []uint16{0, 7, 19, 53, 123, 161, 389, 11211}
	for trial := 0; trial < 20; trial++ {
		top := c.TopSrcPorts(len(ports))
		if len(top) != len(want) {
			t.Fatalf("trial %d: %+v", trial, top)
		}
		for i, p := range want {
			if top[i].Port != p {
				t.Fatalf("trial %d: rank %d = port %d, want %d (%+v)", trial, i, top[i].Port, p, top)
			}
		}
	}
}

func TestSampling(t *testing.T) {
	c := NewCollector()
	c.SampleEvery = 10
	for i := 0; i < 100; i++ {
		c.Observe(rec(0, macA, netpkt.ProtoUDP, 123, 443, 10))
	}
	// Exactly 1 in 10 observed.
	if got := c.TotalBytes(0); got != 100 {
		t.Fatalf("sampled bytes: %v", got)
	}
}

func TestAccumulationAcrossObserve(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Observe(rec(0, macA, netpkt.ProtoUDP, 123, 443, 100))
	}
	if got := c.TotalBytes(0); got != 500 {
		t.Fatalf("accumulated: %v", got)
	}
	if got := c.SrcPortShares(0)[123]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("share: %v", got)
	}
}

// BenchmarkObserve measures the steady-state observe path: the bin
// advances once per simulated tick (1000 records), as it does in the
// scenario pipeline. The sharded collector must report 0 allocs/op.
func BenchmarkObserve(b *testing.B) {
	c := NewCollector()
	sh := c.Shard(0)
	r := rec(0, macA, netpkt.ProtoUDP, 123, 443, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.ObserveFlow(i/1000, r.Key, r.Bytes)
	}
}

// BenchmarkObserveMapBaseline is the same workload on the retained
// map-per-record baseline.
func BenchmarkObserveMapBaseline(b *testing.B) {
	c := NewMapCollector()
	r := rec(0, macA, netpkt.ProtoUDP, 123, 443, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Bin = i / 1000
		c.Observe(r)
	}
}

// BenchmarkObserveBatch measures batched ingestion of a mixed-flow tick
// (one lock per batch, many distinct keys).
func BenchmarkObserveBatch(b *testing.B) {
	c := NewCollector()
	recs := make([]Record, 256)
	for i := range recs {
		mac := macA
		mac[5] = byte(i)
		recs[i] = rec(0, mac, netpkt.ProtoUDP, uint16(1000+i%32), 443, 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j].Bin = i / 4
		}
		c.ObserveBatch(recs)
	}
}
