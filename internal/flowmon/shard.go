package flowmon

import (
	"sync"

	"stellar/internal/netpkt"
)

// ringBins is the number of in-flight time bins a shard holds before a
// newly observed bin rotates an older one into the long-term store. The
// simulation observes one bin per tick, so a small ring keeps the hot
// path inside the shard.
const ringBins = 4

// Shard is one worker's accumulator: a ring of in-flight bins backed by
// compact open-addressed counter tables. The steady-state observe path
// performs no allocation per record (tables and touched-lists grow
// geometrically and are reused after every flush); a batch takes the
// shard lock once.
type Shard struct {
	c       *Collector
	mu      sync.Mutex
	counter int
	slots   [ringBins]shardBin
}

// shardBin accumulates one time bin inside a shard.
type shardBin struct {
	used  bool
	bin   int
	total float64

	srcPort counterTable // UDP source port -> bytes
	dstPort counterTable // any-proto destination port -> bytes
	peers   counterTable // packed source MAC -> bytes

	// Protocols are a dense 256-entry array plus a touched-list, so a
	// zero-byte observation still materializes its entry (matching the
	// baseline's map semantics) without scanning all 256 slots on flush.
	proto        [256]float64
	protoSeen    [256]bool
	protoTouched []netpkt.IPProto
}

// Observe adds one record.
func (s *Shard) Observe(r Record) {
	s.mu.Lock()
	s.observe(r.Bin, &r.Key, r.Bytes)
	s.mu.Unlock()
}

// ObserveBatch adds a batch of records under one lock acquisition.
func (s *Shard) ObserveBatch(recs []Record) {
	s.mu.Lock()
	for i := range recs {
		s.observe(recs[i].Bin, &recs[i].Key, recs[i].Bytes)
	}
	s.mu.Unlock()
}

// ObserveFlow adds one delivered-flow observation without building a
// Record — the signature the fabric's egress stream drives.
func (s *Shard) ObserveFlow(bin int, key netpkt.FlowKey, bytes float64) {
	s.mu.Lock()
	s.observe(bin, &key, bytes)
	s.mu.Unlock()
}

// observe is the hot path; callers hold s.mu.
func (s *Shard) observe(bin int, key *netpkt.FlowKey, bytes float64) {
	s.counter++
	if se := s.c.SampleEvery; se > 1 && s.counter%se != 0 {
		return
	}
	b := &s.slots[uint(bin)%ringBins]
	if !b.used {
		b.used = true
		b.bin = bin
	} else if b.bin != bin {
		s.c.flushSlot(b) // ring rotation: lock order shard.mu -> c.mu
		b.used = true
		b.bin = bin
	}
	b.total += bytes
	if !b.protoSeen[key.Proto] {
		b.protoSeen[key.Proto] = true
		b.protoTouched = append(b.protoTouched, key.Proto)
	}
	b.proto[key.Proto] += bytes
	b.dstPort.add(uint64(key.DstPort), bytes)
	if key.Proto == netpkt.ProtoUDP {
		b.srcPort.add(uint64(key.SrcPort), bytes)
	}
	b.peers.add(macKey(key.SrcMAC), bytes)
}

// reset clears the bin's counters while keeping every table's capacity,
// so the next bin in this slot observes without allocating.
func (b *shardBin) reset() {
	b.used = false
	b.total = 0
	b.srcPort.reset()
	b.dstPort.reset()
	b.peers.reset()
	for _, p := range b.protoTouched {
		b.proto[p] = 0
		b.protoSeen[p] = false
	}
	b.protoTouched = b.protoTouched[:0]
}

// addFrom folds a shard bin into the long-term store. Map work happens
// here — once per distinct key per flush, not once per record. A bin's
// first flush sizes the aggregate maps to the shard's key counts, so
// the common one-flush-per-bin case builds each map exactly once.
func (st *store) addFrom(b *shardBin) {
	agg := st.bins[b.bin]
	if agg == nil {
		agg = &binAgg{
			bySrcPort: make(map[uint16]float64, b.srcPort.n),
			byDstPort: make(map[uint16]float64, b.dstPort.n),
			byProto:   make(map[netpkt.IPProto]float64, len(b.protoTouched)),
			peers:     make(map[netpkt.MAC]float64, b.peers.n),
		}
		st.bins[b.bin] = agg
	}
	agg.total += b.total
	for _, p := range b.protoTouched {
		agg.byProto[p] += b.proto[p]
	}
	for i := range b.dstPort.entries {
		if e := &b.dstPort.entries[i]; e.used {
			agg.byDstPort[uint16(e.key)] += e.val
		}
	}
	for i := range b.srcPort.entries {
		if e := &b.srcPort.entries[i]; e.used {
			agg.bySrcPort[uint16(e.key)] += e.val
		}
	}
	for i := range b.peers.entries {
		if e := &b.peers.entries[i]; e.used {
			agg.peers[unpackMAC(e.key)] += e.val
		}
	}
}

// counterTable is a compact open-addressed uint64 -> float64
// accumulator with linear probing. It grows geometrically (an
// allocation only when the load factor crosses 3/4) and is cleared in
// place on reset, so steady-state adds never allocate.
type counterTable struct {
	entries []counterEntry
	n       int
}

type counterEntry struct {
	used bool
	key  uint64
	val  float64
}

const minTableCap = 16

func (t *counterTable) add(key uint64, delta float64) {
	if t.n*4 >= len(t.entries)*3 {
		t.grow()
	}
	mask := uint64(len(t.entries) - 1)
	i := mixU64(key) & mask
	for {
		e := &t.entries[i]
		if !e.used {
			e.used = true
			e.key = key
			e.val = delta
			t.n++
			return
		}
		if e.key == key {
			e.val += delta
			return
		}
		i = (i + 1) & mask
	}
}

func (t *counterTable) grow() {
	newCap := minTableCap
	if len(t.entries) > 0 {
		newCap = len(t.entries) * 2
	}
	old := t.entries
	t.entries = make([]counterEntry, newCap)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.add(old[i].key, old[i].val)
		}
	}
}

func (t *counterTable) reset() {
	clear(t.entries)
	t.n = 0
}

// mixU64 is the splitmix64 finalizer: a cheap avalanche so sequential
// port numbers and structured MAC keys spread across the table.
func mixU64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// macKey packs a MAC into its 48-bit integer form (lossless).
func macKey(m netpkt.MAC) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

func unpackMAC(k uint64) netpkt.MAC {
	return netpkt.MAC{byte(k >> 40), byte(k >> 32), byte(k >> 24),
		byte(k >> 16), byte(k >> 8), byte(k)}
}
