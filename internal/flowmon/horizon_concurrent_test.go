package flowmon

import (
	"math/rand"
	"sync"
	"testing"

	"stellar/internal/fabric"
)

// TestMergeHorizonUnderConcurrentPoolObservers reproduces the engine's
// parallel fold interaction on the collector alone: pool workers
// ObserveBatch one tick's records concurrently (round-robin over the
// shards) while a fold goroutine, lagging a couple of ticks behind the
// writers, advances the merge horizon and reads the accessors — the
// merge path and the observe path overlap the whole run. Under -race
// this pins the locking; the final comparison against the MapCollector
// baseline pins the aggregates. Byte sums here are integral, so the
// nondeterministic batch placement cannot smear the totals past the
// tolerance.
func TestMergeHorizonUnderConcurrentPoolObservers(t *testing.T) {
	const (
		ticks   = 30
		perTick = 400
		lag     = 2 // fold trails the writers by this many ticks
		chunk   = 50
	)
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(40 + trial)))
		byTick := make([][]Record, ticks)
		base := NewMapCollector()
		for tk := range byTick {
			recs := randRecords(rng, perTick, 1)
			for i := range recs {
				recs[i].Bin = tk
			}
			byTick[tk] = recs
			base.ObserveBatch(recs)
		}

		c := NewCollectorShards(4)
		pool := fabric.NewPool(4)
		folded := make(chan int, ticks)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the fold side: horizon advance + accessor reads
			defer wg.Done()
			for tk := range folded {
				c.SetMergeHorizon(tk)
				_ = c.TotalBytes(tk)
				_ = c.PeerCount(tk, 0)
				_ = c.SrcPortShares(tk)
				_ = c.Bins()
			}
		}()
		for tk := 0; tk < ticks; tk++ {
			recs := byTick[tk]
			n := (len(recs) + chunk - 1) / chunk
			pool.Run(n, func(_, i int) {
				lo, hi := i*chunk, (i+1)*chunk
				if hi > len(recs) {
					hi = len(recs)
				}
				c.ObserveBatch(recs[lo:hi])
			})
			// The tick's writers are done; hand the lagged tick to the
			// fold goroutine, which merges it while the next tick's
			// writers are already observing — the engine overlap.
			if tk >= lag {
				folded <- tk - lag
			}
		}
		close(folded)
		wg.Wait()
		pool.Close()

		c.SetMergeHorizon(int(^uint(0) >> 1))
		compareCollectors(t, base, c, 1e-9)
	}
}
