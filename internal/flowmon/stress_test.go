package flowmon

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentObserveAndRead hammers the collector from GOMAXPROCS
// writer goroutines (ObserveBatch round-robins them over the shards)
// while readers sweep every accessor, then checks the totals balance.
// CI runs it under -race.
func TestConcurrentObserveAndRead(t *testing.T) {
	const (
		batches      = 64
		perBatch     = 200
		bins         = 12
		readerSweeps = 50
	)
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	c := NewCollector()

	var wantTotal float64
	batchesByWriter := make([][][]Record, writers)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for b := 0; b < batches; b++ {
			recs := randRecords(rng, perBatch, bins)
			for i := range recs {
				wantTotal += recs[i].Bytes
			}
			batchesByWriter[w] = append(batchesByWriter[w], recs)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, recs := range batchesByWriter[w] {
				c.ObserveBatch(recs)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < readerSweeps; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for bin := 0; bin < bins; bin++ {
					c.TotalBytes(bin)
					c.DstPortShares(bin)
					c.SrcPortShares(bin)
					c.ProtoShares(bin)
					c.PeerCount(bin, 100)
				}
				c.Bins()
				c.Series()
				c.TopSrcPorts(5)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var got float64
	_, series := c.Series()
	for _, v := range series {
		got += v
	}
	if diff := wantTotal - got; diff > wantTotal*1e-9 || diff < -wantTotal*1e-9 {
		t.Fatalf("total bytes: got %v, want %v", got, wantTotal)
	}
}

// TestConcurrentShardWriters drives distinct shards directly (the
// fabric worker layout: one shard per worker, no round-robin) with
// concurrent merging reads.
func TestConcurrentShardWriters(t *testing.T) {
	c := NewCollectorShards(4)
	var wg sync.WaitGroup
	var wantTotal float64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			recs := randRecords(rng, 5000, 8)
			var sum float64
			sh := c.Shard(w)
			for i := range recs {
				sh.ObserveFlow(recs[i].Bin, recs[i].Key, recs[i].Bytes)
				sum += recs[i].Bytes
			}
			mu.Lock()
			wantTotal += sum
			mu.Unlock()
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.TopSrcPorts(3)
				c.PeerCount(0, 0)
			}
		}
	}()
	wg.Wait()
	close(done)

	var got float64
	_, series := c.Series()
	for _, v := range series {
		got += v
	}
	if diff := wantTotal - got; diff > wantTotal*1e-9 || diff < -wantTotal*1e-9 {
		t.Fatalf("total bytes: got %v, want %v", got, wantTotal)
	}
}
