package conformance

import "testing"

// TestFlashCrowdIsNotAnAttack pins the discrimination property of the
// flash-crowd profile pair: the benign surge run must NOT satisfy the
// attack twin's mitigation expectations. If it ever does, the pair has
// degenerated into measuring "a lot of traffic arrived" instead of "the
// mitigation bit on attack traffic specifically".
func TestFlashCrowdIsNotAnAttack(t *testing.T) {
	benign, err := Load("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	attack, err := Load("flash-crowd-attack")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(benign)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Pass {
		t.Fatalf("benign flash-crowd run failed its own profile:\n%+v", res.Report.Checks)
	}

	// The twin profiles must stay comparable: same clock, same
	// mitigation event, so the attack expectations are meaningful over
	// the benign series.
	if attack.Run.Ticks != benign.Run.Ticks {
		t.Fatalf("profile pair diverged: %d vs %d ticks", benign.Run.Ticks, attack.Run.Ticks)
	}
	if len(attack.Events) != len(benign.Events) || attack.Events[0].Tick != benign.Events[0].Tick {
		t.Fatalf("profile pair diverged: events %+v vs %+v", benign.Events, attack.Events)
	}

	failed := 0
	for i, e := range attack.Expect {
		c := evalExpectation(i, e, res.Series[e.Victim].Samples)
		if !c.Pass {
			failed++
			t.Logf("attack expectation correctly rejected the crowd: %s (measured %g)", c.Name, c.Measured)
		}
	}
	if failed == 0 {
		t.Fatal("the benign flash crowd satisfied every attack expectation — the pair no longer discriminates")
	}
}
