package conformance

import (
	"fmt"
	"strings"

	"stellar/internal/engine"
	"stellar/internal/faults"
	"stellar/internal/mitctl"
)

// Check is one evaluated expectation: the declared bounds and the
// measured value, so a failure prints measured-vs-expected directly.
type Check struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Victim   int      `json:"victim"`
	Pass     bool     `json:"pass"`
	Measured float64  `json:"measured"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`
	// Detail says what was measured (window, thresholds) in words.
	Detail string `json:"detail"`
}

// String renders the check as "measured vs expected".
func (c Check) String() string {
	verdict := "PASS"
	if !c.Pass {
		verdict = "FAIL"
	}
	bounds := ""
	switch {
	case c.Min != nil && c.Max != nil:
		bounds = fmt.Sprintf(" want [%g, %g]", *c.Min, *c.Max)
	case c.Min != nil:
		bounds = fmt.Sprintf(" want >= %g", *c.Min)
	case c.Max != nil:
		bounds = fmt.Sprintf(" want <= %g", *c.Max)
	}
	return fmt.Sprintf("%s %s: measured %g%s (%s)", verdict, c.Name, c.Measured, bounds, c.Detail)
}

// ProfileReport is one profile's evaluated outcome.
type ProfileReport struct {
	Profile     string   `json:"profile"`
	Description string   `json:"description,omitempty"`
	Channel     string   `json:"channel"`
	Ticks       int      `json:"ticks"`
	Victims     []string `json:"victims"`
	Pass        bool     `json:"pass"`
	Checks      []Check  `json:"checks"`
	// Injections is the run's ordered fault-injection log (profiles with
	// a faults section), so the report says exactly what was done to the
	// run — and two same-seed runs produce byte-identical reports.
	Injections []faults.Injection `json:"injections,omitempty"`
}

// Report aggregates a matrix run.
type Report struct {
	Profiles []ProfileReport `json:"profiles"`
	Total    int             `json:"total"`
	Passed   int             `json:"passed"`
	Failed   int             `json:"failed"`
	Pass     bool            `json:"pass"`
}

func (r *Report) add(pr ProfileReport) {
	r.Profiles = append(r.Profiles, pr)
	r.Total++
	if pr.Pass {
		r.Passed++
	} else {
		r.Failed++
	}
}

// Format renders the matrix outcome as a text table with per-check
// details for failing profiles.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance matrix: %d profiles, %d passed, %d failed\n", r.Total, r.Passed, r.Failed)
	for _, pr := range r.Profiles {
		verdict := "PASS"
		if !pr.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-4s %-28s [%s] %d checks\n", verdict, pr.Profile, pr.Channel, len(pr.Checks))
		if pr.Pass {
			continue
		}
		for _, c := range pr.Checks {
			if !c.Pass {
				fmt.Fprintf(&b, "       %s\n", c)
			}
		}
	}
	return b.String()
}

// evaluate scores every expectation against the run's series and the
// runner's observed controller transitions.
func evaluate(p *Profile, series []engine.VictimSeries, r *runner) ProfileReport {
	rep := ProfileReport{
		Profile:     p.Name,
		Description: p.Description,
		Channel:     channelName(p),
		Ticks:       p.Run.Ticks,
		Pass:        true,
	}
	for _, s := range series {
		rep.Victims = append(rep.Victims, s.Port)
	}
	if r.inj != nil {
		rep.Injections = r.inj.Injections()
	}
	for i, e := range p.Expect {
		var c Check
		if e.Kind == "degraded" || e.Kind == "upgraded" {
			c = evalLadder(i, e, r)
		} else {
			c = evalExpectation(i, e, series[e.Victim].Samples)
		}
		if !c.Pass {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

// evalLadder measures a degradation-ladder expectation: ticks from the
// signal until the controller reports the victim's mitigation degraded
// (coarse fallback installed) or upgraded (fine rules restored).
func evalLadder(i int, e Expectation, r *runner) Check {
	c := Check{Name: e.Name, Kind: e.Kind, Victim: e.Victim}
	if c.Name == "" {
		c.Name = fmt.Sprintf("expect[%d] %s", i, e.Kind)
	}
	want := mitctl.EventDegraded
	if e.Kind == "upgraded" {
		want = mitctl.EventUpgraded
	}
	c.Measured = -1
	target := r.hosts[e.Victim]
	for _, ev := range r.mitEvents {
		if ev.typ == want && ev.target == target && ev.tick >= e.SignalTick {
			c.Measured = float64(ev.tick - e.SignalTick)
			break
		}
	}
	c.Pass = c.Measured >= 0 && c.Measured <= float64(e.MaxTicks)
	c.Detail = fmt.Sprintf("ticks from %d until the controller reports %s, max %d",
		e.SignalTick, e.Kind, e.MaxTicks)
	return c
}

// evalExpectation measures one expectation over a victim's samples.
func evalExpectation(i int, e Expectation, samples []engine.Sample) Check {
	c := Check{Name: e.Name, Kind: e.Kind, Victim: e.Victim, Min: e.Min, Max: e.Max}
	if c.Name == "" {
		c.Name = fmt.Sprintf("expect[%d] %s", i, e.Kind)
	}
	switch e.Kind {
	case "reaction", "recovery":
		// Reaction: ticks until delivered falls to the threshold after
		// the signal. Recovery: ticks until it climbs back (TTL expiry,
		// withdrawal). Measured -1 means the threshold was never met.
		c.Measured = -1
		crossed := func(d float64) bool {
			if e.Kind == "reaction" {
				return d <= e.ThresholdBps
			}
			return d >= e.ThresholdBps
		}
		for _, s := range samples {
			if s.Tick >= e.SignalTick && crossed(s.DeliveredBps) {
				c.Measured = float64(s.Tick - e.SignalTick)
				break
			}
		}
		c.Pass = c.Measured >= 0 && c.Measured <= float64(e.MaxTicks)
		dir := "<="
		if e.Kind == "recovery" {
			dir = ">="
		}
		c.Detail = fmt.Sprintf("ticks from %d until delivered %s %g bps, max %d",
			e.SignalTick, dir, e.ThresholdBps, e.MaxTicks)
		return c
	}

	var offered, delivered, nulled, peers float64
	n := 0
	for _, s := range samples {
		if s.Tick < e.From || s.Tick >= e.To {
			continue
		}
		offered += s.OfferedBps
		delivered += s.DeliveredBps
		nulled += s.NulledBps
		peers += float64(s.ActivePeers)
		n++
	}
	switch e.Kind {
	case "drop_ratio":
		if offered > 0 {
			c.Measured = (offered - delivered) / offered
		}
	case "delivery_ratio":
		c.Measured = 1
		if offered > 0 {
			c.Measured = delivered / offered
		}
	case "delivered_bps":
		if n > 0 {
			c.Measured = delivered / float64(n)
		}
	case "offered_bps":
		if n > 0 {
			c.Measured = offered / float64(n)
		}
	case "nulled_bps":
		if n > 0 {
			c.Measured = nulled / float64(n)
		}
	case "active_peers":
		if n > 0 {
			c.Measured = peers / float64(n)
		}
	}
	c.Pass = n > 0 &&
		(e.Min == nil || c.Measured >= *e.Min) &&
		(e.Max == nil || c.Measured <= *e.Max)
	c.Detail = fmt.Sprintf("mean over ticks [%d, %d), %d samples", e.From, e.To, n)
	return c
}
