package conformance

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgppipe"
	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/faults"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// The runner's fixed exchange identity, matching the controlled
// experiments (Sections 2.4, 5.3).
const (
	runnerASN              = 6695
	defaultPortCapacityBps = 1e10
)

var blackholeNextHop = netip.MustParseAddr("80.81.193.66")

// Result is one executed profile: the evaluated report plus the raw
// engine output, so tests can assert beyond the declared expectations
// (e.g. cross-channel series equality).
type Result struct {
	Report ProfileReport
	Series []engine.VictimSeries
	IXP    *ixp.IXP
}

// announcement is one BGP announcement the run made, remembered so a
// session flap's recovery (faults.KindSessionFlap) can replay the
// peer's announcements in their original order.
type announcement struct {
	member string
	prefix netip.Prefix
	comms  []bgp.Community
	specs  []core.RuleSpec
}

// mitEvent is one degradation-ladder transition observed on the
// controller's event stream, mapped back onto the engine tick clock.
type mitEvent struct {
	tick   int
	typ    mitctl.EventType
	target netip.Prefix
}

// runner holds one profile's compiled wiring.
type runner struct {
	p       *Profile
	x       *ixp.IXP
	members []*member.Member
	// targets[i] / hosts[i] are victim i's attacked address and its /32
	// host route.
	targets []netip.Addr
	hosts   []netip.Prefix
	rng     *stats.Rand
	// portalIDs[eventIndex] is the pre-defined portal rule for a
	// portal-channel mitigate event.
	portalIDs map[int]uint32

	// inj executes the profile's fault plan (nil: no faults section).
	inj *faults.Injector
	// announced is the replayable announcement state for flap recovery.
	// Only BGP-channel state is tracked; MRT-replayed records are
	// deliberately not restored (a real capture does not re-send).
	announced []announcement
	// mitEvents collects degraded/upgraded transitions. Appended on the
	// control spine only (controller callbacks), read after the run.
	mitEvents []mitEvent
}

// Run compiles the profile into an engine run over a fully wired IXP,
// executes it, and evaluates the expectations.
func Run(p *Profile) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	capacity := p.Topology.PortCapacityBps
	if capacity == 0 {
		capacity = defaultPortCapacityBps
	}
	members := member.MakePopulation(member.PopulationConfig{
		N:                p.Topology.Members,
		HonoringFraction: p.Topology.HonoringFraction,
		PortCapacityBps:  capacity,
		Seed:             p.Topology.Seed,
	})
	r := &runner{
		p: p, members: members,
		rng:       stats.NewRand(p.Topology.Seed + 1),
		portalIDs: make(map[int]uint32),
	}
	x, err := ixp.Build(ixp.Config{
		ASN:              runnerASN,
		BlackholeNextHop: blackholeNextHop,
		Members:          members,
		EnableStellar:    p.stellarOn(),
		QueueRate:        p.Topology.QueueRate,
		QueueBurst:       p.Topology.QueueBurst,
		MitigationTTL:    p.Topology.MitigationTTLSec,
		TuneController:   r.tuneController,
	})
	if err != nil {
		return nil, err
	}
	r.x = x
	dt := p.Run.DtSec
	if dt == 0 {
		dt = 1
	}
	if x.Mitigations != nil {
		x.Mitigations.Subscribe(func(ev mitctl.Event) {
			if ev.Type != mitctl.EventDegraded && ev.Type != mitctl.EventUpgraded {
				return
			}
			// The controller processes tick T at clock (T+1)*dt, so the
			// transition's tick is one before the clock reading.
			tick := int(ev.Time/dt+0.5) - 1
			r.mitEvents = append(r.mitEvents, mitEvent{tick: tick, typ: ev.Type, target: ev.Mitigation.Target})
		})
	}
	if p.Faults != nil {
		if err := r.buildInjector(); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", p.Name, err)
		}
	}
	for _, v := range p.Victims {
		m := members[v.Member]
		target := m.Prefixes[0].Addr().Next()
		r.targets = append(r.targets, target)
		r.hosts = append(r.hosts, netip.PrefixFrom(target, 32))
		// The victim announces its covering prefix up front — the IRR
		// registration every later mitigation validates against.
		if err := r.announce(m.Name, m.Prefixes[0], nil, nil); err != nil {
			return nil, fmt.Errorf("conformance: %s: announce %s: %w", p.Name, m.Prefixes[0], err)
		}
	}

	driver, err := r.buildDriver()
	if err != nil {
		return nil, err
	}
	events, err := r.compileEvents()
	if err != nil {
		return nil, err
	}

	ecfg := engine.Config{
		Driver:       driver,
		Control:      x,
		DataPlane:    x,
		Events:       events,
		Ticks:        p.Run.Ticks,
		Dt:           dt,
		PeerMinBps:   p.Run.PeerMinBps,
		MemberFilter: x.MemberFilter(),
	}
	if r.inj != nil {
		ecfg.StageWrap = r.inj.WrapControl()
	}
	series, err := engine.New(ecfg).Run()
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", p.Name, err)
	}
	return &Result{Report: evaluate(p, series, r), Series: series, IXP: x}, nil
}

// tuneController compiles the profile's robustness knobs into the
// mitigation controller configuration (ixp.Config.TuneController).
func (r *runner) tuneController(mc *mitctl.Config) {
	t := r.p.Topology
	if rt := t.Retry; rt != nil {
		mc.Retry = mitctl.RetryPolicy{
			MaxAttempts: rt.MaxAttempts,
			BaseDelay:   rt.BaseDelaySec,
			MaxDelay:    rt.MaxDelaySec,
			Jitter:      rt.Jitter,
		}
	}
	mc.InstallDeadline = t.InstallDeadlineSec
	if d := t.Degrade; d != nil {
		mc.Degrade = mitctl.DegradePolicy{
			Enabled:         true,
			MarginMAC:       d.MarginMAC,
			MarginL34:       d.MarginL34,
			UpgradeCooldown: d.UpgradeCooldownSec,
		}
	}
	mc.Seed = t.Seed + 3
	if r.p.Faults != nil {
		// Late-bound: the injector is built after ixp.Build (its squeeze
		// compilation reads the router's hardware limits), so the hook
		// resolves r.inj at call time. Installs before that are unfaulted.
		mc.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
			if r.inj == nil {
				return nil
			}
			return r.inj.InstallHook(ch, attempt, now)
		}
	}
}

// buildInjector compiles the profile's faults section into a
// faults.Injector wired to the IXP's levers.
func (r *runner) buildInjector() error {
	p := r.p
	seed := p.Faults.Seed
	if seed == 0 {
		seed = p.Topology.Seed + 2
	}
	plan := faults.Plan{Seed: seed}
	lim := r.x.Router.Snapshot().Limits
	for _, fs := range p.Faults.Injections {
		f := faults.Fault{
			Kind: fs.Kind, From: fs.From, To: fs.To, Prob: fs.Prob,
			Error: fs.Error, MaxFailures: fs.MaxFailures,
			ReserveMAC: fs.ReserveMAC, ReserveL34: fs.ReserveL34,
			DelayMsgs: fs.DelayMsgs,
		}
		if fs.Kind == faults.KindSessionFlap {
			f.Peer = r.members[fs.Member].Name
		}
		// Leave* expresses the squeeze relative to the budget: reserve
		// everything but that headroom.
		if fs.LeaveMAC != nil {
			f.ReserveMAC = max(0, lim.MACFiltersTotal-*fs.LeaveMAC)
		}
		if fs.LeaveL34 != nil {
			f.ReserveL34 = max(0, lim.L34CriteriaTotal-*fs.LeaveL34)
		}
		plan.Faults = append(plan.Faults, f)
	}
	hooks := faults.Hooks{
		SetReserved: r.x.Router.SetReserved,
		PeerDown:    r.x.PeerDown,
		PeerUp:      r.restorePeer,
	}
	if r.x.Mitigations != nil {
		hooks.SetStalled = r.x.Mitigations.SetQueueStalled
	}
	inj, err := faults.NewInjector(plan, hooks)
	if err != nil {
		return err
	}
	r.inj = inj
	return nil
}

// announce makes (or refreshes) a BGP announcement and remembers it, so
// a session flap's recovery can replay the peer's state.
func (r *runner) announce(member string, prefix netip.Prefix, comms []bgp.Community, specs []core.RuleSpec) error {
	if err := r.x.Announce(member, prefix, comms, specs); err != nil {
		return err
	}
	for i := range r.announced {
		a := &r.announced[i]
		if a.member == member && a.prefix == prefix {
			a.comms, a.specs = comms, specs
			return nil
		}
	}
	r.announced = append(r.announced, announcement{member: member, prefix: prefix, comms: comms, specs: specs})
	return nil
}

// withdraw retracts a BGP announcement and forgets it.
func (r *runner) withdraw(member string, prefix netip.Prefix) error {
	if err := r.x.Withdraw(member, prefix); err != nil {
		return err
	}
	for i := range r.announced {
		if r.announced[i].member == member && r.announced[i].prefix == prefix {
			r.announced = append(r.announced[:i], r.announced[i+1:]...)
			break
		}
	}
	return nil
}

// restorePeer is the injector's PeerUp hook: the flapped session comes
// back and the peer re-announces everything it had, in original order —
// BGP session recovery as the route server sees it.
func (r *runner) restorePeer(peer string) error {
	for _, a := range r.announced {
		if a.member != peer {
			continue
		}
		if err := r.x.Announce(a.member, a.prefix, a.comms, a.specs); err != nil {
			return err
		}
	}
	return nil
}

// buildDriver compiles the victims' source compositions into an engine
// driver: a SourcesDriver for plain schedules, a CarpetDriver when the
// profile rotates a carpet attack, and a replay wrapper when an MRT
// schedule drives the control plane.
func (r *runner) buildDriver() (engine.Driver, error) {
	p := r.p
	var base engine.Driver
	if p.Carpet != nil {
		specs := make([]engine.VictimSpec, len(p.Victims))
		attacks := make([]engine.Source, len(p.Victims))
		background := make([][]engine.Source, len(p.Victims))
		for i, v := range p.Victims {
			specs[i] = engine.VictimSpec{Port: r.members[v.Member].Name, PeerMinBps: v.PeerMinBps}
			if v.CarpetAttack != nil {
				src, err := r.buildSource(i, v.CarpetAttack)
				if err != nil {
					return nil, err
				}
				attacks[i] = src
			}
			for _, s := range v.Background {
				s := s
				src, err := r.buildSource(i, &s)
				if err != nil {
					return nil, err
				}
				background[i] = append(background[i], src)
			}
		}
		d := engine.NewCarpetDriver(specs, attacks, p.Carpet.RotateTicks)
		d.Background = background
		d.StartTick = p.Carpet.StartTick
		d.EndTick = p.Carpet.EndTick
		base = d
	} else {
		specs := make([]engine.VictimSpec, len(p.Victims))
		sources := make([][]engine.Source, len(p.Victims))
		for i, v := range p.Victims {
			specs[i] = engine.VictimSpec{Port: r.members[v.Member].Name, PeerMinBps: v.PeerMinBps}
			for _, s := range v.Sources {
				s := s
				src, err := r.buildSource(i, &s)
				if err != nil {
					return nil, err
				}
				sources[i] = append(sources[i], src)
			}
		}
		base = engine.NewSourcesDriver(specs, sources)
	}
	if p.Replay == nil {
		return base, nil
	}
	dump, err := r.buildMRT()
	if err != nil {
		return nil, err
	}
	dt := p.Run.DtSec
	if dt == 0 {
		dt = 1
	}
	var src bgppipe.RecordSource = bgppipe.NewMRTScanner(bytes.NewReader(dump))
	if r.inj != nil {
		// Replay with deterministic loss: the injector's wire faults
		// drop/duplicate/delay records by index before scheduling.
		src = r.inj.FilterSource(src)
	}
	return engine.NewReplayDriver(base, src, engine.ReplayConfig{
		StartTick:   p.Replay.StartTick,
		TickSeconds: dt,
		Speed:       p.Replay.Speed,
		MaxTick:     p.Replay.MaxTick,
		Apply:       r.applyReplay,
	})
}

// buildSource compiles one source spec for victim v. Sources draw from
// the runner's single rng in declaration order, so a profile's workload
// is deterministic.
func (r *runner) buildSource(v int, s *SourceSpec) (engine.Source, error) {
	target := r.targets[v]
	switch s.Kind {
	case "attack":
		vec, err := traffic.VectorByName(s.Vector)
		if err != nil {
			return nil, err
		}
		a := traffic.NewAttack(vec, target, r.peersOf(s.Peers), s.RateBps, s.StartTick, s.EndTick, r.rng)
		if s.RampTicks != nil {
			a.RampTicks = *s.RampTicks
		}
		return a, nil
	case "web":
		return traffic.NewWebService(target, r.peersOf(s.Peers), s.RateBps, r.rng), nil
	case "pulse":
		inner, err := r.buildSource(v, s.Src)
		if err != nil {
			return nil, err
		}
		return &engine.Pulsed{Src: inner, OnTicks: s.OnTicks, OffTicks: s.OffTicks, StartTick: s.StartTick}, nil
	case "trace":
		// The profile lists one rate per segment; traffic.NewTrace wants a
		// per-tick series, so expand each segment rate across its ticks.
		seg := s.SegmentTicks
		if seg < 1 {
			seg = 1
		}
		rates := make([]float64, 0, len(s.RatesBps)*seg)
		for _, rate := range s.RatesBps {
			for k := 0; k < seg; k++ {
				rates = append(rates, rate)
			}
		}
		return traffic.NewTrace(traffic.RTBHPortProfile(), target, r.peersOf(s.Peers), rates, seg, r.rng), nil
	}
	return nil, fmt.Errorf("conformance: unknown source kind %q", s.Kind)
}

func (r *runner) peersOf(pr PeerRange) []traffic.Peer {
	return ixp.PeersOf(r.members[pr.From : pr.From+pr.Count])
}

// compileEvents turns the profile's timeline into engine events,
// dispatching mitigate/withdraw through the channel under test.
func (r *runner) compileEvents() ([]engine.Event, error) {
	p := r.p
	var out []engine.Event
	for i, ev := range p.Events {
		ev := ev
		var do func() error
		var name string
		switch ev.Action {
		case "mitigate":
			fn, err := r.mitigateFunc(i, ev)
			if err != nil {
				return nil, err
			}
			do = fn
			name = fmt.Sprintf("mitigate[%s] victim %d", channelName(p), ev.Victim)
		case "withdraw":
			fn, err := r.withdrawFunc(i, ev)
			if err != nil {
				return nil, err
			}
			do = fn
			name = fmt.Sprintf("withdraw[%s] victim %d", channelName(p), ev.Victim)
		case "rtbh":
			m, host := r.victimOf(ev), r.hosts[ev.Victim]
			do = func() error {
				return r.announce(m.Name, host, []bgp.Community{bgp.CommunityBlackhole}, nil)
			}
			name = fmt.Sprintf("rtbh victim %d", ev.Victim)
		case "rtbh_withdraw":
			m, host := r.victimOf(ev), r.hosts[ev.Victim]
			do = func() error { return r.withdraw(m.Name, host) }
			name = fmt.Sprintf("rtbh withdraw victim %d", ev.Victim)
		case "announce_prefix":
			m := r.members[ev.Member]
			do = func() error { return r.announce(m.Name, m.Prefixes[0], nil, nil) }
			name = fmt.Sprintf("announce %s", m.Name)
		case "withdraw_prefix":
			m := r.members[ev.Member]
			do = func() error { return r.withdraw(m.Name, m.Prefixes[0]) }
			name = fmt.Sprintf("withdraw %s", m.Name)
		default:
			return nil, fmt.Errorf("conformance: unknown action %q", ev.Action)
		}
		out = append(out, engine.Event{Tick: ev.Tick, Name: name, Do: do})
	}
	return out, nil
}

func (r *runner) victimOf(ev EventSpec) *member.Member {
	return r.members[r.p.Victims[ev.Victim].Member]
}

// channelName resolves the profile's channel with its default.
func channelName(p *Profile) string {
	if p.Channel == "" {
		return "api"
	}
	return p.Channel
}

// specFor builds the channel-independent mitigation spec an event
// declares — the identity the API channel requests directly and the
// withdraw path derives IDs from.
func (r *runner) specFor(ev EventSpec) mitctl.Spec {
	m := r.victimOf(ev)
	spec := mitctl.Spec{
		Requester: m.Name,
		Target:    r.hosts[ev.Victim],
		Match:     matchFor(ev.Match),
		TTL:       ev.TTLSec,
	}
	if ev.Effect == "shape" {
		spec.Action = fabric.ActionShape
		spec.ShapeRateBps = ev.RateBps
	} else {
		spec.Action = fabric.ActionDrop
	}
	if ev.Scope == "per-peer" {
		spec.Scope = mitctl.ScopePerPeer
		for _, pm := range r.members[ev.Peers.From : ev.Peers.From+ev.Peers.Count] {
			spec.Peers = append(spec.Peers, pm.Name)
		}
	}
	return spec
}

// matchFor compiles the declarative match into a fabric pattern.
func matchFor(ms MatchSpec) fabric.Match {
	m := fabric.MatchAll()
	switch ms.Proto {
	case "udp":
		m.Proto = netpkt.ProtoUDP
	case "tcp":
		m.Proto = netpkt.ProtoTCP
	}
	if ms.SrcPort != nil {
		m.SrcPort = int32(*ms.SrcPort)
	}
	if ms.DstPort != nil {
		m.DstPort = int32(*ms.DstPort)
	}
	return m
}

// ruleSpecFor compiles the event into the Advanced Blackholing
// extended-community signal (the "IXP:2:123" scheme). Validation
// already established expressibility.
func ruleSpecFor(ev EventSpec) core.RuleSpec {
	rs := core.RuleSpec{Action: fabric.ActionDrop}
	if ev.Effect == "shape" {
		rs.Action = fabric.ActionShape
		rs.ShapeRateBps = ev.RateBps
	}
	udp := ev.Match.Proto == "udp"
	if udp {
		rs.Proto = netpkt.ProtoUDP
	} else {
		rs.Proto = netpkt.ProtoTCP
	}
	switch {
	case ev.Match.SrcPort != nil:
		rs.Port = uint16(*ev.Match.SrcPort)
		if udp {
			rs.Selector = core.SelUDPSrcPort
		} else {
			rs.Selector = core.SelTCPSrcPort
		}
	case ev.Match.DstPort != nil:
		rs.Port = uint16(*ev.Match.DstPort)
		if udp {
			rs.Selector = core.SelUDPDstPort
		} else {
			rs.Selector = core.SelTCPDstPort
		}
	default:
		rs.Selector = core.SelProto
	}
	return rs
}

// flowSpecFor compiles the event into an RFC 5575 flow specification
// plus its traffic-rate action attribute (rate 0 = drop). Components
// are emitted in type order as the wire format requires.
func (r *runner) flowSpecFor(ev EventSpec) (*bgp.FlowSpec, *bgp.PathAttrs) {
	comps := []bgp.FlowSpecComponent{bgp.DstPrefix(r.hosts[ev.Victim])}
	switch ev.Match.Proto {
	case "udp":
		comps = append(comps, bgp.Numeric(bgp.FSIPProto, bgp.Eq(uint64(netpkt.ProtoUDP))))
	case "tcp":
		comps = append(comps, bgp.Numeric(bgp.FSIPProto, bgp.Eq(uint64(netpkt.ProtoTCP))))
	}
	if ev.Match.DstPort != nil {
		comps = append(comps, bgp.Numeric(bgp.FSDstPort, bgp.Eq(uint64(*ev.Match.DstPort))))
	}
	if ev.Match.SrcPort != nil {
		comps = append(comps, bgp.Numeric(bgp.FSSrcPort, bgp.Eq(uint64(*ev.Match.SrcPort))))
	}
	var bytesPerSec float32
	if ev.Effect == "shape" {
		bytesPerSec = float32(ev.RateBps / 8)
	}
	attrs := &bgp.PathAttrs{
		ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(runnerASN, bytesPerSec)},
	}
	return &bgp.FlowSpec{Components: comps}, attrs
}

// mitigateFunc dispatches a mitigate event onto the profile's channel.
// Every path lands on the same controller with the same content-derived
// identity — the cross-channel equivalence the matrix pins.
func (r *runner) mitigateFunc(idx int, ev EventSpec) (func() error, error) {
	m := r.victimOf(ev)
	host := r.hosts[ev.Victim]
	switch channelName(r.p) {
	case "api":
		spec := r.specFor(ev)
		return func() error {
			_, err := r.x.RequestMitigation(spec)
			return err
		}, nil
	case "community":
		rs := ruleSpecFor(ev)
		return func() error {
			return r.announce(m.Name, host, nil, []core.RuleSpec{rs})
		}, nil
	case "flowspec":
		fs, attrs := r.flowSpecFor(ev)
		specs, err := mitctl.SpecsFromFlowSpec(m.Name, fs, attrs, ev.TTLSec)
		if err != nil {
			return nil, fmt.Errorf("conformance: event %d: %w", idx, err)
		}
		return func() error {
			for _, spec := range specs {
				if _, err := r.x.Mitigations.Request(spec, r.x.Clock()); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "portal":
		// The rule is predefined in the customer portal (out of band,
		// before the run); the event references it by ID.
		spec := r.specFor(ev)
		id := r.x.Mitigations.Portal().Define(m.Name, spec.Match, spec.Action, spec.ShapeRateBps)
		r.portalIDs[idx] = id
		return func() error {
			_, err := r.x.Mitigations.RequestFromPortal(m.Name, id, host, ev.TTLSec, r.x.Clock())
			return err
		}, nil
	}
	return nil, fmt.Errorf("conformance: channel %q cannot mitigate", r.p.Channel)
}

// withdrawFunc retracts the mitigation an identical mitigate event
// installed, resolving the content-derived ID per channel.
func (r *runner) withdrawFunc(idx int, ev EventSpec) (func() error, error) {
	m := r.victimOf(ev)
	host := r.hosts[ev.Victim]
	switch channelName(r.p) {
	case "api", "portal":
		// Portal specs normalize to the same identity as API specs for
		// the same match/action (SpecFromPortalRule clears the
		// template's DstIP and the target wins).
		spec := r.specFor(ev)
		id := mitctl.DeriveID(spec)
		return func() error { return r.x.WithdrawMitigation(id, m.Name) }, nil
	case "community":
		// Withdrawing the signaling announcement is the community
		// channel's retraction: the RIB diff withdraws its specs.
		return func() error { return r.withdraw(m.Name, host) }, nil
	case "flowspec":
		fs, attrs := r.flowSpecFor(ev)
		specs, err := mitctl.SpecsFromFlowSpec(m.Name, fs, attrs, ev.TTLSec)
		if err != nil {
			return nil, fmt.Errorf("conformance: event %d: %w", idx, err)
		}
		return func() error {
			for _, spec := range specs {
				if err := r.x.WithdrawMitigation(mitctl.DeriveID(spec), m.Name); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("conformance: channel %q cannot withdraw", r.p.Channel)
}

// buildMRT synthesizes the profile's replay schedule as a wire-format
// MRT dump (BGP4MP message records), which NewMRTDriver then resamples
// onto the tick clock — the control plane driven from capture bytes,
// not from in-process calls.
func (r *runner) buildMRT() ([]byte, error) {
	base := time.Unix(1700000000, 0).UTC()
	localIP := netip.MustParseAddr("80.81.192.1")
	var dst []byte
	for i, rec := range r.p.Replay.Records {
		m := r.members[rec.Member]
		prefix := m.Prefixes[0]
		if rec.TargetOf != nil {
			prefix = r.hosts[*rec.TargetOf]
		}
		u := &bgp.Update{}
		if rec.Withdraw {
			u.Withdrawn = []bgp.PathPrefix{{Prefix: prefix}}
		} else {
			u.NLRI = []bgp.PathPrefix{{Prefix: prefix}}
			u.Attrs = bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{m.ASN}}},
				NextHop: m.BGPID,
			}
			if rec.Blackhole {
				u.Attrs.Communities = []bgp.Community{bgp.CommunityBlackhole}
			}
		}
		t := base.Add(time.Duration(rec.AtSec * float64(time.Second)))
		var err error
		dst, err = bgppipe.AppendMRTMessage(dst, t, m.ASN, runnerASN, m.BGPID, localIP, u, nil)
		if err != nil {
			return nil, fmt.Errorf("conformance: replay record %d: %w", i, err)
		}
	}
	return dst, nil
}

// applyReplay consumes one replayed capture record on the control
// spine. The MRT scanner names peers "AS<asn>", which is exactly the
// population's member naming, so the record maps straight back onto its
// member; records from unknown peers are ignored (a real capture
// carries sessions the exchange does not model).
func (r *runner) applyReplay(rec bgppipe.Record) error {
	u, ok := rec.Msg.(*bgp.Update)
	if !ok {
		return nil
	}
	if _, err := r.x.Member(rec.Peer); err != nil {
		return nil
	}
	return r.x.HandleWireUpdate(rec.Peer, u)
}

// RunAll executes every embedded profile and aggregates the reports.
func RunAll() (Report, error) {
	profiles, err := Profiles()
	if err != nil {
		return Report{}, err
	}
	return RunProfiles(profiles)
}

// RunProfiles executes the given profiles in order.
func RunProfiles(profiles []*Profile) (Report, error) {
	var rep Report
	for _, p := range profiles {
		res, err := Run(p)
		if err != nil {
			return Report{}, err
		}
		rep.add(res.Report)
	}
	rep.Pass = rep.Failed == 0
	return rep, nil
}
