// Package conformance turns mitigation scenarios into data: a Profile
// declares a topology (member population, victims, port capacities), a
// driver schedule (synthetic, pulse, carpet-bombing, trace and
// MRT-replay compositions with event timelines), the mitigation channel
// under test (API, BGP communities, FlowSpec, portal, plain RTBH) and a
// set of declarative expectations — victim drop ratio, collateral
// damage bounds on non-target prefixes, mitigation reaction time in
// ticks, TTL expiry/refresh behavior, active-peer floors. The Runner
// compiles a profile into an engine run over a fully wired ixp.IXP and
// evaluates the expectations into a structured Report.
//
// Profiles live as JSON files under profiles/ (embedded); the whole set
// executes as a matrix both under `go test` (TestMatrix, parallel,
// -race-clean) and outside it (`stellar-lab conformance`), making the
// paper's claim — fine-grained blackholing mitigates attacks with
// bounded collateral damage — a regression net instead of a handful of
// hand-rolled experiment loops.
package conformance

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"stellar/internal/core"
	"stellar/internal/faults"
	"stellar/internal/traffic"
)

//go:embed profiles/*.json
var profilesFS embed.FS

// Profile is one declarative conformance scenario.
type Profile struct {
	// Name identifies the profile in reports and test names.
	Name string `json:"name"`
	// Description says what claim the profile checks.
	Description string `json:"description,omitempty"`
	// Channel is the mitigation signaling path under test: "api"
	// (direct controller request), "community" (Advanced Blackholing
	// extended communities over BGP), "flowspec" (RFC 5575 NLRI),
	// "portal" (customer-portal rule reference) or "rtbh" (plain
	// BLACKHOLE-community null-routing, no Stellar control plane).
	// Defaults to "api".
	Channel string `json:"channel,omitempty"`

	Topology Topology `json:"topology"`
	Run      RunSpec  `json:"run"`

	// Victims are the monitored victim ports, each a member of the
	// population with its own traffic source composition.
	Victims []VictimProfile `json:"victims"`

	// Carpet switches the driver to carpet bombing: each victim's
	// "carpet_attack" source rotates across the victims while
	// "background" sources stay on.
	Carpet *CarpetSpec `json:"carpet,omitempty"`

	// Replay schedules a synthesized MRT capture onto the control
	// spine: each record is a BGP announcement/withdrawal a member
	// makes at a capture timestamp, resampled onto the tick clock —
	// the control plane driven from wire-format history.
	Replay *ReplaySpec `json:"replay,omitempty"`

	// Events is the mitigation/control timeline, applied at the start
	// of their tick in list order.
	Events []EventSpec `json:"events,omitempty"`

	// Faults is the deterministic fault-injection schedule the run
	// executes (internal/faults): install failures, TCAM squeezes,
	// queue stalls, session flaps, replay wire loss. The injections are
	// recorded in the profile's report.
	Faults *FaultsSpec `json:"faults,omitempty"`

	// Expect is the declarative outcome contract the run must satisfy.
	Expect []Expectation `json:"expect"`
}

// Topology sizes the exchange.
type Topology struct {
	// Members is the population size.
	Members int `json:"members"`
	// HonoringFraction of members act on RTBH signals (~0.3 in the
	// paper).
	HonoringFraction float64 `json:"honoring_fraction"`
	// PortCapacityBps per member port (default 10 Gbps).
	PortCapacityBps float64 `json:"port_capacity_bps,omitempty"`
	// Seed drives population behaviour and traffic weights.
	Seed uint64 `json:"seed"`
	// Stellar enables the mitigation control plane (default true;
	// forced off for channel "rtbh").
	Stellar *bool `json:"stellar,omitempty"`
	// MitigationTTLSec is the controller's default TTL for requests
	// that carry none (0: never expire).
	MitigationTTLSec float64 `json:"mitigation_ttl_sec,omitempty"`
	// QueueRate / QueueBurst configure the change-queue pacing
	// (defaults: 4.33/s, burst 20).
	QueueRate  float64 `json:"queue_rate,omitempty"`
	QueueBurst int     `json:"queue_burst,omitempty"`
	// Retry enables change-queue retry with backoff (nil: failures are
	// terminal on the first attempt).
	Retry *RetrySpec `json:"retry,omitempty"`
	// InstallDeadlineSec bounds the time from a change's first enqueue
	// to a successful install (0: no deadline).
	InstallDeadlineSec float64 `json:"install_deadline_sec,omitempty"`
	// Degrade enables the controller's fine→coarse→fine degradation
	// ladder.
	Degrade *DegradeSpec `json:"degrade,omitempty"`
}

// RetrySpec is the controller's retry/backoff policy.
type RetrySpec struct {
	MaxAttempts  int     `json:"max_attempts"`
	BaseDelaySec float64 `json:"base_delay_sec,omitempty"`
	MaxDelaySec  float64 `json:"max_delay_sec,omitempty"`
	Jitter       float64 `json:"jitter,omitempty"`
}

// DegradeSpec enables the degradation ladder with its headroom margins.
type DegradeSpec struct {
	MarginMAC          int     `json:"margin_mac,omitempty"`
	MarginL34          int     `json:"margin_l34,omitempty"`
	UpgradeCooldownSec float64 `json:"upgrade_cooldown_sec,omitempty"`
}

// FaultsSpec is the profile's fault-injection schedule.
type FaultsSpec struct {
	// Seed drives the injector's probabilistic decisions (0: derived
	// from topology.seed).
	Seed       uint64      `json:"seed,omitempty"`
	Injections []FaultSpec `json:"injections"`
}

// FaultSpec is one scheduled fault (see internal/faults for the kind
// semantics). From/To bound the window in ticks for control-plane
// faults and in replay record indices for wire faults.
type FaultSpec struct {
	Kind string `json:"kind"`
	From int    `json:"from"`
	To   int    `json:"to"`

	Prob        float64 `json:"prob,omitempty"`
	Error       string  `json:"error,omitempty"`
	MaxFailures int     `json:"max_failures,omitempty"`

	ReserveMAC int `json:"reserve_mac,omitempty"`
	ReserveL34 int `json:"reserve_l34,omitempty"`
	// LeaveMAC / LeaveL34 express a squeeze relative to the hardware
	// budget: reserve everything except this headroom. When set they
	// override ReserveMAC/ReserveL34.
	LeaveMAC *int `json:"leave_mac,omitempty"`
	LeaveL34 *int `json:"leave_l34,omitempty"`

	// Member indexes the population for session_flap.
	Member    int `json:"member,omitempty"`
	DelayMsgs int `json:"delay_msgs,omitempty"`
}

// RunSpec is the engine run shape.
type RunSpec struct {
	Ticks int `json:"ticks"`
	// DtSec is the tick length (default 1).
	DtSec float64 `json:"dt_sec,omitempty"`
	// PeerMinBps is the active-peer threshold (default 1 kbps).
	PeerMinBps float64 `json:"peer_min_bps,omitempty"`
}

// PeerRange selects the member slice [From, From+Count) as traffic
// peers.
type PeerRange struct {
	From  int `json:"from"`
	Count int `json:"count"`
}

// SourceSpec declares one traffic source.
type SourceSpec struct {
	// Kind is "attack" (amplification attack), "web" (benign web
	// service), "pulse" (an on/off-gated inner source) or "trace"
	// (rate-series replay with sampled port compositions).
	Kind string `json:"kind"`
	// Vector names the amplification vector for "attack" (ntp, dns,
	// ldap, memcached, chargen, port-0).
	Vector string `json:"vector,omitempty"`
	// RateBps is the aggregate rate ("attack" peak / "web" constant).
	RateBps float64 `json:"rate_bps,omitempty"`
	// StartTick / EndTick bound an attack; for "pulse" StartTick is
	// the train origin.
	StartTick int `json:"start_tick,omitempty"`
	EndTick   int `json:"end_tick,omitempty"`
	// RampTicks overrides the attack ramp (nil: the generator's
	// default of 5; 0 starts at full rate).
	RampTicks *int `json:"ramp_ticks,omitempty"`
	// Peers carry the source's traffic.
	Peers PeerRange `json:"peers"`

	// OnTicks / OffTicks shape a "pulse" train around Src.
	OnTicks  int         `json:"on_ticks,omitempty"`
	OffTicks int         `json:"off_ticks,omitempty"`
	Src      *SourceSpec `json:"src,omitempty"`

	// RatesBps / SegmentTicks parameterize a "trace" replay.
	RatesBps     []float64 `json:"rates_bps,omitempty"`
	SegmentTicks int       `json:"segment_ticks,omitempty"`
}

// VictimProfile is one monitored victim.
type VictimProfile struct {
	// Member indexes the population; the victim's target address is
	// the first host of the member's first prefix.
	Member int `json:"member"`
	// Sources feed the victim each tick (driver mode "sources").
	Sources []SourceSpec `json:"sources,omitempty"`
	// CarpetAttack is this victim's rotating attack workload under a
	// Carpet profile; Background stays on every tick.
	CarpetAttack *SourceSpec  `json:"carpet_attack,omitempty"`
	Background   []SourceSpec `json:"background,omitempty"`
	// PeerMinBps overrides the run-wide active-peer threshold.
	PeerMinBps float64 `json:"peer_min_bps,omitempty"`
}

// CarpetSpec rotates the victims' carpet attacks.
type CarpetSpec struct {
	RotateTicks int `json:"rotate_ticks"`
	StartTick   int `json:"start_tick,omitempty"`
	// EndTick bounds the whole carpet (0: never ends).
	EndTick int `json:"end_tick,omitempty"`
}

// ReplaySpec synthesizes an MRT capture from declarative records and
// replays it onto the control spine through engine.NewMRTDriver.
type ReplaySpec struct {
	StartTick int `json:"start_tick,omitempty"`
	// Speed compresses capture time (capture seconds per simulated
	// second, default 1).
	Speed float64 `json:"speed,omitempty"`
	// MaxTick clamps records mapping past it (0: unclamped).
	MaxTick int            `json:"max_tick,omitempty"`
	Records []ReplayRecord `json:"records"`
}

// ReplayRecord is one captured BGP event: a member announcing (or
// withdrawing) a prefix AtSec seconds into the capture.
type ReplayRecord struct {
	AtSec  float64 `json:"at_sec"`
	Member int     `json:"member"`
	// TargetOf, when set, makes the prefix the /32 host route of that
	// victim's target address; otherwise the member's own first
	// prefix is announced.
	TargetOf *int `json:"target_of,omitempty"`
	// Blackhole attaches the BLACKHOLE community (RFC 7999).
	Blackhole bool `json:"blackhole,omitempty"`
	Withdraw  bool `json:"withdraw,omitempty"`
}

// MatchSpec is the declarative L3/L4 classification of a mitigation.
type MatchSpec struct {
	// Proto is "udp", "tcp" or empty (any).
	Proto   string `json:"proto,omitempty"`
	SrcPort *int   `json:"src_port,omitempty"`
	DstPort *int   `json:"dst_port,omitempty"`
}

// EventSpec is one timed control-plane action.
type EventSpec struct {
	Tick int `json:"tick"`
	// Action is "mitigate" (signal a mitigation on the profile's
	// channel), "withdraw" (retract the identical mitigation),
	// "rtbh" / "rtbh_withdraw" (BLACKHOLE /32 announce/withdraw), or
	// "announce_prefix" / "withdraw_prefix" (member churn: the
	// indexed member announces or withdraws its own first prefix).
	Action string `json:"action"`
	// Victim indexes Victims for mitigate/withdraw/rtbh actions.
	Victim int `json:"victim,omitempty"`
	// Member indexes the population for the churn actions.
	Member int `json:"member,omitempty"`

	Match MatchSpec `json:"match,omitempty"`
	// Effect is "drop" or "shape" (with RateBps).
	Effect  string  `json:"effect,omitempty"`
	RateBps float64 `json:"rate_bps,omitempty"`
	TTLSec  float64 `json:"ttl_sec,omitempty"`
	// Scope is "" / "all-peers" or "per-peer" (with Peers naming the
	// covered members).
	Scope string    `json:"scope,omitempty"`
	Peers PeerRange `json:"peers,omitempty"`
}

// Expectation is one declarative outcome check over a victim's series.
//
// Kinds:
//
//	drop_ratio      (offered-delivered)/offered over [From,To), in [Min,Max]
//	delivery_ratio  delivered/offered over [From,To), in [Min,Max] — the
//	                collateral-damage bound for non-target prefixes
//	delivered_bps   mean delivered rate over [From,To), in [Min,Max]
//	offered_bps     mean offered rate over [From,To), in [Min,Max]
//	nulled_bps      mean RTBH-nulled rate over [From,To), in [Min,Max]
//	active_peers    mean active-peer count over [From,To), in [Min,Max]
//	reaction        ticks from SignalTick until delivered <= ThresholdBps,
//	                at most MaxTicks — the mitigation reaction time
//	recovery        ticks from SignalTick until delivered >= ThresholdBps,
//	                at most MaxTicks — TTL expiry / withdrawal behavior
//	degraded        ticks from SignalTick until the controller degrades the
//	                victim's mitigation to its coarse fallback, at most
//	                MaxTicks — the degradation-ladder reaction
//	upgraded        ticks from SignalTick until the controller upgrades the
//	                victim's mitigation back to fine-grained, at most
//	                MaxTicks — recovery once headroom returns
type Expectation struct {
	Name   string `json:"name,omitempty"`
	Kind   string `json:"kind"`
	Victim int    `json:"victim,omitempty"`

	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Min / Max bound the measured value (nil: unbounded).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`

	SignalTick   int     `json:"signal_tick,omitempty"`
	ThresholdBps float64 `json:"threshold_bps,omitempty"`
	MaxTicks     int     `json:"max_ticks,omitempty"`
}

// Channel and scope names profiles may use.
const (
	ChannelAPI       = "api"
	ChannelCommunity = "community"
	ChannelFlowSpec  = "flowspec"
	ChannelPortal    = "portal"
	ChannelRTBH      = "rtbh"

	ScopeAllPeers = "all-peers"
	ScopePerPeer  = "per-peer"
)

// Channels and actions the decoder accepts.
var (
	validChannels = map[string]bool{"": true, ChannelAPI: true, ChannelCommunity: true,
		ChannelFlowSpec: true, ChannelPortal: true, ChannelRTBH: true}
	validActions = map[string]bool{"mitigate": true, "withdraw": true,
		"rtbh": true, "rtbh_withdraw": true,
		"announce_prefix": true, "withdraw_prefix": true}
	validKinds = map[string]bool{"drop_ratio": true, "delivery_ratio": true,
		"delivered_bps": true, "offered_bps": true, "nulled_bps": true,
		"active_peers": true, "reaction": true, "recovery": true,
		"degraded": true, "upgraded": true}
	validFaultKinds = map[string]bool{faults.KindInstallFail: true,
		faults.KindTCAMSqueeze: true, faults.KindQueueStall: true,
		faults.KindSessionFlap: true, faults.KindWireDrop: true,
		faults.KindWireDuplicate: true, faults.KindWireDelay: true}
	validSourceKinds = map[string]bool{"attack": true, "web": true,
		"pulse": true, "trace": true}
)

// Decode parses one profile from JSON, rejecting unknown fields so a
// typo in a profile file fails loudly instead of silently relaxing the
// scenario. The decoded profile is validated.
func Decode(data []byte) (*Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("conformance: decode: %w", err)
	}
	// Exactly one JSON document per file.
	if dec.More() {
		return nil, fmt.Errorf("conformance: trailing data after profile document")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// stellarOn reports whether the profile runs the mitigation control
// plane.
func (p *Profile) stellarOn() bool {
	if p.Channel == "rtbh" {
		return p.Topology.Stellar != nil && *p.Topology.Stellar
	}
	return p.Topology.Stellar == nil || *p.Topology.Stellar
}

// Validate checks the profile's internal consistency: index ranges,
// known enums, channel expressibility, window sanity.
func (p *Profile) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("conformance: profile %q: %s", p.Name, fmt.Sprintf(format, args...))
	}
	if p.Name == "" {
		return fmt.Errorf("conformance: profile has no name")
	}
	if !validChannels[p.Channel] {
		return fail("unknown channel %q", p.Channel)
	}
	if p.Topology.Members <= 0 {
		return fail("topology.members must be positive")
	}
	if p.Topology.HonoringFraction < 0 || p.Topology.HonoringFraction > 1 {
		return fail("honoring_fraction %v outside [0,1]", p.Topology.HonoringFraction)
	}
	if r := p.Topology.Retry; r != nil {
		if r.MaxAttempts < 1 {
			return fail("retry.max_attempts must be at least 1")
		}
		if r.BaseDelaySec < 0 || r.MaxDelaySec < 0 || r.Jitter < 0 {
			return fail("retry has negative delay/jitter")
		}
	}
	if p.Topology.InstallDeadlineSec < 0 {
		return fail("install_deadline_sec negative")
	}
	if d := p.Topology.Degrade; d != nil {
		if d.MarginMAC < 0 || d.MarginL34 < 0 || d.UpgradeCooldownSec < 0 {
			return fail("degrade has negative margins/cooldown")
		}
	}
	if p.Run.Ticks <= 0 {
		return fail("run.ticks must be positive")
	}
	if p.Run.DtSec < 0 || p.Run.PeerMinBps < 0 {
		return fail("run has negative dt/peer_min_bps")
	}
	if len(p.Victims) == 0 {
		return fail("no victims")
	}
	seen := make(map[int]bool, len(p.Victims))
	for i, v := range p.Victims {
		if v.Member < 0 || v.Member >= p.Topology.Members {
			return fail("victim %d: member %d outside population [0,%d)", i, v.Member, p.Topology.Members)
		}
		if seen[v.Member] {
			return fail("victim %d: member %d already a victim", i, v.Member)
		}
		seen[v.Member] = true
		srcs := v.Sources
		if p.Carpet != nil {
			if len(v.Sources) > 0 {
				return fail("victim %d: sources and carpet mode are exclusive (use carpet_attack/background)", i)
			}
			srcs = append([]SourceSpec{}, v.Background...)
			if v.CarpetAttack != nil {
				srcs = append(srcs, *v.CarpetAttack)
			}
		} else if v.CarpetAttack != nil || len(v.Background) > 0 {
			return fail("victim %d: carpet_attack/background need a carpet section", i)
		}
		for j, s := range srcs {
			if err := p.validateSource(&s); err != nil {
				return fail("victim %d source %d: %v", i, j, err)
			}
		}
	}
	if p.Carpet != nil && p.Carpet.RotateTicks < 0 {
		return fail("carpet.rotate_ticks negative")
	}
	if p.Replay != nil {
		if len(p.Replay.Records) == 0 {
			return fail("replay has no records")
		}
		for i, r := range p.Replay.Records {
			if r.Member < 0 || r.Member >= p.Topology.Members {
				return fail("replay record %d: member %d outside population", i, r.Member)
			}
			if r.TargetOf != nil && (*r.TargetOf < 0 || *r.TargetOf >= len(p.Victims)) {
				return fail("replay record %d: target_of %d outside victims", i, *r.TargetOf)
			}
			if r.AtSec < 0 {
				return fail("replay record %d: negative at_sec", i)
			}
		}
	}
	for i, ev := range p.Events {
		if !validActions[ev.Action] {
			return fail("event %d: unknown action %q", i, ev.Action)
		}
		if ev.Tick < 0 || ev.Tick >= p.Run.Ticks {
			return fail("event %d: tick %d outside run [0,%d)", i, ev.Tick, p.Run.Ticks)
		}
		switch ev.Action {
		case "mitigate", "withdraw", "rtbh", "rtbh_withdraw":
			if ev.Victim < 0 || ev.Victim >= len(p.Victims) {
				return fail("event %d: victim %d outside victims", i, ev.Victim)
			}
		case "announce_prefix", "withdraw_prefix":
			if ev.Member < 0 || ev.Member >= p.Topology.Members {
				return fail("event %d: member %d outside population", i, ev.Member)
			}
		}
		if ev.Action == "mitigate" || ev.Action == "withdraw" {
			if !p.stellarOn() {
				return fail("event %d: %s needs the Stellar control plane", i, ev.Action)
			}
			switch ev.Match.Proto {
			case "", "udp", "tcp":
			default:
				return fail("event %d: unknown proto %q", i, ev.Match.Proto)
			}
			switch ev.Effect {
			case "drop":
			case "shape":
				if ev.RateBps <= 0 {
					return fail("event %d: shape needs a positive rate_bps", i)
				}
			default:
				return fail("event %d: effect %q is not drop/shape", i, ev.Effect)
			}
			switch ev.Scope {
			case "", "all-peers":
			case "per-peer":
				if ev.Peers.Count <= 0 {
					return fail("event %d: per-peer scope lists no peers", i)
				}
				if err := p.validatePeers(ev.Peers); err != nil {
					return fail("event %d: %v", i, err)
				}
			default:
				return fail("event %d: unknown scope %q", i, ev.Scope)
			}
			if err := p.validateChannelMatch(ev); err != nil {
				return fail("event %d: %v", i, err)
			}
		}
	}
	if p.Faults != nil {
		if len(p.Faults.Injections) == 0 {
			return fail("faults section has no injections")
		}
		for i, f := range p.Faults.Injections {
			if !validFaultKinds[f.Kind] {
				return fail("fault %d: unknown kind %q", i, f.Kind)
			}
			if f.From < 0 || f.To <= f.From {
				return fail("fault %d: window [%d,%d) is empty", i, f.From, f.To)
			}
			if f.Prob < 0 || f.Prob > 1 {
				return fail("fault %d: prob %v outside [0,1]", i, f.Prob)
			}
			switch f.Kind {
			case faults.KindInstallFail, faults.KindTCAMSqueeze, faults.KindQueueStall:
				if !p.stellarOn() {
					return fail("fault %d: %s needs the Stellar control plane", i, f.Kind)
				}
				if f.From >= p.Run.Ticks {
					return fail("fault %d: window starts past the run", i)
				}
				if f.Kind == faults.KindTCAMSqueeze &&
					f.ReserveMAC == 0 && f.ReserveL34 == 0 && f.LeaveMAC == nil && f.LeaveL34 == nil {
					return fail("fault %d: tcam_squeeze reserves nothing", i)
				}
			case faults.KindSessionFlap:
				if f.Member < 0 || f.Member >= p.Topology.Members {
					return fail("fault %d: member %d outside population", i, f.Member)
				}
				if f.From >= p.Run.Ticks {
					return fail("fault %d: window starts past the run", i)
				}
			case faults.KindWireDrop, faults.KindWireDuplicate, faults.KindWireDelay:
				if p.Replay == nil {
					return fail("fault %d: wire faults need a replay section", i)
				}
				if f.Kind == faults.KindWireDelay && f.DelayMsgs <= 0 {
					return fail("fault %d: wire_delay needs positive delay_msgs", i)
				}
			}
		}
	}
	if len(p.Expect) == 0 {
		return fail("no expectations")
	}
	for i, e := range p.Expect {
		if !validKinds[e.Kind] {
			return fail("expect %d: unknown kind %q", i, e.Kind)
		}
		if e.Victim < 0 || e.Victim >= len(p.Victims) {
			return fail("expect %d: victim %d outside victims", i, e.Victim)
		}
		if (e.Kind == "degraded" || e.Kind == "upgraded") && !p.stellarOn() {
			return fail("expect %d: %s needs the Stellar control plane", i, e.Kind)
		}
		switch e.Kind {
		case "reaction", "recovery", "degraded", "upgraded":
			if e.SignalTick < 0 || e.SignalTick >= p.Run.Ticks {
				return fail("expect %d: signal_tick %d outside run", i, e.SignalTick)
			}
			if e.MaxTicks <= 0 {
				return fail("expect %d: %s needs max_ticks", i, e.Kind)
			}
		default:
			if e.From < 0 || e.To > p.Run.Ticks || e.From >= e.To {
				return fail("expect %d: window [%d,%d) outside run [0,%d]", i, e.From, e.To, p.Run.Ticks)
			}
			if e.Min == nil && e.Max == nil {
				return fail("expect %d: no min/max bound", i)
			}
			if e.Min != nil && e.Max != nil && *e.Min > *e.Max {
				return fail("expect %d: min %v > max %v", i, *e.Min, *e.Max)
			}
		}
	}
	return nil
}

// validateSource checks one source spec (recursively for pulse).
func (p *Profile) validateSource(s *SourceSpec) error {
	if !validSourceKinds[s.Kind] {
		return fmt.Errorf("unknown source kind %q", s.Kind)
	}
	switch s.Kind {
	case "attack":
		if _, err := traffic.VectorByName(s.Vector); err != nil {
			return err
		}
		if s.RateBps <= 0 {
			return fmt.Errorf("attack needs a positive rate_bps")
		}
		if s.EndTick <= s.StartTick {
			return fmt.Errorf("attack window [%d,%d) is empty", s.StartTick, s.EndTick)
		}
		return p.validatePeers(s.Peers)
	case "web":
		if s.RateBps <= 0 {
			return fmt.Errorf("web needs a positive rate_bps")
		}
		return p.validatePeers(s.Peers)
	case "pulse":
		if s.Src == nil {
			return fmt.Errorf("pulse has no inner src")
		}
		if s.OnTicks <= 0 {
			return fmt.Errorf("pulse needs positive on_ticks")
		}
		if s.OffTicks < 0 {
			return fmt.Errorf("pulse off_ticks negative")
		}
		return p.validateSource(s.Src)
	case "trace":
		if len(s.RatesBps) == 0 {
			return fmt.Errorf("trace has no rates_bps series")
		}
		return p.validatePeers(s.Peers)
	}
	return nil
}

func (p *Profile) validatePeers(r PeerRange) error {
	if r.From < 0 || r.Count <= 0 || r.From+r.Count > p.Topology.Members {
		return fmt.Errorf("peer range [%d,%d) outside population [0,%d)", r.From, r.From+r.Count, p.Topology.Members)
	}
	return nil
}

// validateChannelMatch rejects mitigations the profile's channel cannot
// express, so a profile fails decode instead of silently testing a
// different request than declared.
func (p *Profile) validateChannelMatch(ev EventSpec) error {
	switch p.Channel {
	case "community":
		// The extended-community encoding (core.RuleSpec) expresses
		// proto-wide and single-port selectors; richer matches need
		// the portal (SelCustom) or another channel.
		if ev.Scope == "per-peer" {
			return fmt.Errorf("community channel cannot scope per-peer")
		}
		if ev.Match.Proto == "" {
			return fmt.Errorf("community channel needs an explicit proto")
		}
		if ev.Match.SrcPort != nil && ev.Match.DstPort != nil {
			return fmt.Errorf("community channel matches one port, not both")
		}
		if ev.TTLSec != 0 {
			return fmt.Errorf("community channel carries no TTL (the controller default governs)")
		}
		if ev.Effect == "shape" {
			code := int(ev.RateBps/core.ShapeRateUnitBps + 0.5)
			if code < 1 || code > 255 {
				return fmt.Errorf("shape rate %v outside the community encoding range", ev.RateBps)
			}
		}
	case "flowspec":
		if ev.Scope == "per-peer" {
			return fmt.Errorf("flowspec channel cannot scope per-peer")
		}
	case "rtbh":
		return fmt.Errorf("rtbh channel has no mitigate action (use action rtbh)")
	}
	return nil
}

// Profiles decodes every embedded profile, sorted by name.
func Profiles() ([]*Profile, error) {
	entries, err := fs.ReadDir(profilesFS, "profiles")
	if err != nil {
		return nil, err
	}
	out := make([]*Profile, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(profilesFS, "profiles/"+e.Name())
		if err != nil {
			return nil, err
		}
		p, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Load returns one embedded profile by name.
func Load(name string) (*Profile, error) {
	all, err := Profiles()
	if err != nil {
		return nil, err
	}
	for _, p := range all {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("conformance: no profile %q", name)
}

// RawProfiles returns the embedded profile files (name -> bytes) — the
// fuzz seed corpus and the CLI's -list source.
func RawProfiles() (map[string][]byte, error) {
	entries, err := fs.ReadDir(profilesFS, "profiles")
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(profilesFS, "profiles/"+e.Name())
		if err != nil {
			return nil, err
		}
		out[e.Name()] = data
	}
	return out, nil
}
