package conformance

import "testing"

// FuzzProfileDecode hammers the profile decoder with mutated JSON. The
// shipped profiles seed the corpus so mutations start from realistic
// documents. The decoder must never panic, and anything it accepts must
// re-validate cleanly (Decode validates, so acceptance implies validity —
// the invariant checked here is that a decoded profile stays internally
// consistent when validated again).
func FuzzProfileDecode(f *testing.F) {
	raw, err := RawProfiles()
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, data := range raw {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`not json`))
	// Faults-section edge shapes: mutations start from near-valid chaos
	// documents, not only from the shipped (valid) fault profiles.
	f.Add([]byte(`{"name":"f","faults":{"seed":1,"injections":[]}}`))
	f.Add([]byte(`{"name":"f","faults":{"injections":[{"kind":"tcam_squeeze","from":0,"to":1,"leave_l34":0}]}}`))
	f.Add([]byte(`{"name":"f","faults":{"injections":[{"kind":"wire_delay","from":0,"to":1,"delay_msgs":-1}]}}`))
	f.Add([]byte(`{"name":"f","faults":{"injections":[{"kind":"session_flap","from":0,"to":1,"member":99,"prob":1.5}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if p.Name == "" {
			t.Fatalf("decoder accepted a profile without a name")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted a profile Validate rejects: %v", err)
		}
	})
}
