package conformance

import (
	"encoding/json"
	"testing"
)

// TestFaultProfilesDeterministic pins the acceptance contract of the fault
// engine: running a fault profile twice with the same seed must produce
// byte-identical reports — including the ordered injection log — so a chaos
// run is a reproducible artifact, not a flake source.
func TestFaultProfilesDeterministic(t *testing.T) {
	for _, name := range []string{"tcam-squeeze-degrade", "flap-mid-mitigation", "queue-stall-recovery", "replay-with-loss"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := Load(name)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			run := func() []byte {
				res, err := Run(p)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				data, err := json.Marshal(res.Report)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				return data
			}
			a, b := run(), run()
			if string(a) != string(b) {
				t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
			}
		})
	}
}

// TestFaultProfileRecordsInjections ensures a fault profile's report says
// what was done to the run: the injection log is present and ordered.
func TestFaultProfileRecordsInjections(t *testing.T) {
	p, err := Load("tcam-squeeze-degrade")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Report.Injections) < 2 {
		t.Fatalf("want at least squeeze reserve+release in the log, got %+v", res.Report.Injections)
	}
	for i, in := range res.Report.Injections {
		if in.Seq != i {
			t.Fatalf("injection log out of order at %d: %+v", i, in)
		}
	}
}

// TestValidateCatchesBadFaults covers the faults-section rejection paths.
func TestValidateCatchesBadFaults(t *testing.T) {
	base := func() *Profile {
		p, err := Load("tcam-squeeze-degrade")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		return p
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"unknown kind", func(p *Profile) { p.Faults.Injections[0].Kind = "gremlins" }},
		{"empty window", func(p *Profile) { p.Faults.Injections[0].To = p.Faults.Injections[0].From }},
		{"prob out of range", func(p *Profile) { p.Faults.Injections[0].Prob = 1.5 }},
		{"empty injections", func(p *Profile) { p.Faults.Injections = nil }},
		{"squeeze reserving nothing", func(p *Profile) {
			p.Faults.Injections[0] = FaultSpec{Kind: "tcam_squeeze", From: 1, To: 2}
		}},
		{"flap member out of range", func(p *Profile) {
			p.Faults.Injections[0] = FaultSpec{Kind: "session_flap", From: 1, To: 2, Member: p.Topology.Members}
		}},
		{"wire fault without replay", func(p *Profile) {
			p.Faults.Injections[0] = FaultSpec{Kind: "wire_drop", From: 0, To: 1}
		}},
		{"delay without depth", func(p *Profile) {
			p.Replay = &ReplaySpec{Records: []ReplayRecord{{Member: 0}}}
			p.Faults.Injections[0] = FaultSpec{Kind: "wire_delay", From: 0, To: 1}
		}},
		{"window past run", func(p *Profile) { p.Faults.Injections[0].From = p.Run.Ticks }},
		{"control fault without stellar", func(p *Profile) {
			off := false
			p.Topology.Stellar = &off
		}},
		{"degraded without stellar", func(p *Profile) {
			off := false
			p.Topology.Stellar = &off
			p.Faults = nil
			p.Events = nil
			p.Expect = []Expectation{{Kind: "degraded", SignalTick: 1, MaxTicks: 2}}
		}},
		{"retry zero attempts", func(p *Profile) { p.Topology.Retry = &RetrySpec{MaxAttempts: 0} }},
		{"negative degrade margin", func(p *Profile) { p.Topology.Degrade.MarginL34 = -1 }},
		{"negative install deadline", func(p *Profile) { p.Topology.InstallDeadlineSec = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("validator accepted %s", tc.name)
			}
		})
	}
}
