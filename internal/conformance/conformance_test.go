package conformance

import (
	"encoding/json"
	"math"
	"testing"
)

// TestMatrix runs every embedded profile and asserts all of its declarative
// expectations hold. Each profile is an independent subtest so the matrix
// parallelizes and a failure prints the measured-vs-expected table for that
// scenario only.
func TestMatrix(t *testing.T) {
	profiles, err := Profiles()
	if err != nil {
		t.Fatalf("load profiles: %v", err)
	}
	if len(profiles) < 12 {
		t.Fatalf("conformance matrix has %d profiles, want >= 12", len(profiles))
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, c := range res.Report.Checks {
				if c.Pass {
					t.Logf("%s", c)
				} else {
					t.Errorf("%s", c)
				}
			}
		})
	}
}

// TestChannelEquivalence pins the cross-channel contract: the equiv-community
// and equiv-flowspec profiles are byte-identical scenarios apart from the
// mitigation channel, and both channels normalize to the same mitctl.Spec, so
// the resulting victim series must match sample for sample.
func TestChannelEquivalence(t *testing.T) {
	com, err := Load("equiv-community")
	if err != nil {
		t.Fatalf("load equiv-community: %v", err)
	}
	fs, err := Load("equiv-flowspec")
	if err != nil {
		t.Fatalf("load equiv-flowspec: %v", err)
	}
	rc, err := Run(com)
	if err != nil {
		t.Fatalf("run equiv-community: %v", err)
	}
	rf, err := Run(fs)
	if err != nil {
		t.Fatalf("run equiv-flowspec: %v", err)
	}
	if len(rc.Series) != 1 || len(rf.Series) != 1 {
		t.Fatalf("want 1 victim series each, got %d and %d", len(rc.Series), len(rf.Series))
	}
	cs, fss := rc.Series[0].Samples, rf.Series[0].Samples
	if len(cs) != len(fss) {
		t.Fatalf("sample count mismatch: community %d, flowspec %d", len(cs), len(fss))
	}
	for i := range cs {
		a, b := cs[i], fss[i]
		if a.OfferedBps != b.OfferedBps || a.DeliveredBps != b.DeliveredBps ||
			a.RuleDroppedBps != b.RuleDroppedBps || a.ActivePeers != b.ActivePeers {
			t.Fatalf("tick %d diverges: community %+v, flowspec %+v", a.Tick, a, b)
		}
	}
}

// TestDecodeRejectsUnknownFields ensures profile files can't silently carry
// typo'd keys: the decoder must fail on anything outside the schema.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"name":"x","channel":"api","topology":{"members":4},"run":{"ticks":1},"victims":[{"member":0,"sources":[{"kind":"web","rate_bps":1,"peers":{"from":1,"count":1}}]}],"expectt":[]}`))
	if err == nil {
		t.Fatal("decoder accepted an unknown field")
	}
}

// TestValidateCatchesBadProfiles covers the validator's main rejection paths
// table-style so schema drift keeps the error surface intact.
func TestValidateCatchesBadProfiles(t *testing.T) {
	base := func() *Profile {
		p, err := Load("api-drop")
		if err != nil {
			t.Fatalf("load api-drop: %v", err)
		}
		return p
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"bad channel", func(p *Profile) { p.Channel = "smoke-signal" }},
		{"victim out of range", func(p *Profile) { p.Victims[0].Member = p.Topology.Members }},
		{"zero ticks", func(p *Profile) { p.Run.Ticks = 0 }},
		{"event past end", func(p *Profile) { p.Events[0].Tick = p.Run.Ticks }},
		{"bad proto", func(p *Profile) { p.Events[0].Match.Proto = "icmp" }},
		{"shape without rate", func(p *Profile) { p.Events[0].Effect = "shape"; p.Events[0].RateBps = 0 }},
		{"per-peer without peers", func(p *Profile) { p.Events[0].Scope = ScopePerPeer; p.Events[0].Peers = PeerRange{} }},
		{"expectation bad kind", func(p *Profile) { p.Expect[0].Kind = "vibes" }},
		{"expectation empty window", func(p *Profile) {
			p.Expect[0] = Expectation{Name: "w", Kind: "offered_bps", From: 10, To: 10, Min: f(0)}
		}},
		{"rtbh with mitigate event", func(p *Profile) { p.Channel = ChannelRTBH }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("validator accepted %s", tc.name)
			}
		})
	}
}

func f(v float64) *float64 { return &v }

// TestReportJSONRoundTrip keeps the CLI artifact stable: a report must encode
// to JSON and decode back without losing pass/fail state or measured values.
func TestReportJSONRoundTrip(t *testing.T) {
	p, err := Load("trace-replay")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	rep.add(res.Report)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Total != rep.Total || back.Passed != rep.Passed || back.Pass != rep.Pass {
		t.Fatalf("round trip changed counts: %+v vs %+v", back, rep)
	}
	for i, pr := range back.Profiles {
		for j, c := range pr.Checks {
			want := rep.Profiles[i].Checks[j].Measured
			if math.Abs(c.Measured-want) > math.Abs(want)*1e-12 {
				t.Fatalf("measured value drifted through JSON: %v vs %v", c.Measured, want)
			}
		}
	}
}
