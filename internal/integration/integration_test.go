// Package integration wires the substrates together across real process
// boundaries: BGP sessions over net.Pipe and TCP, the route server's
// controller feed serialized as iBGP+ADD-PATH UPDATEs, and the full
// member-to-data-plane mitigation path.
package integration

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/mitigation"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
)

const ixpASN = 6695

var (
	bhNextHop = netip.MustParseAddr("80.81.193.66")
	victimIP  = netip.MustParseAddr("100.10.10.10")
	victimPfx = netip.MustParsePrefix("100.10.10.0/24")
	hostPfx   = netip.MustParsePrefix("100.10.10.10/32")
	victimMAC = netpkt.MustParseMAC("02:00:00:00:00:01")
)

// wireStellar runs the controller end of the iBGP+ADD-PATH session:
// each received UPDATE is decoded into controller events and fed to
// Stellar, exactly as the production deployment consumes the route
// server's southbound stream.
type wireStellar struct {
	st   *core.Stellar
	mu   sync.Mutex
	now  float64
	seen chan struct{}
}

func (w *wireStellar) handle(e bgpsession.Event) {
	if e.Update == nil {
		return
	}
	w.mu.Lock()
	w.now += 1
	now := w.now
	w.mu.Unlock()
	w.st.HandleEvents(core.EventsFromUpdate(e.Update, nil), now)
	w.st.Process(now)
	select {
	case w.seen <- struct{}{}:
	default:
	}
}

// TestWireControllerFeed runs the full southbound path over a real BGP
// session: route server event -> EventToUpdate -> wire (ADD-PATH) ->
// EventsFromUpdate -> Stellar -> QoS rule on the victim's port.
func TestWireControllerFeed(t *testing.T) {
	// Data plane + Stellar on the controller side.
	fab := fabric.New()
	if err := fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9)); err != nil {
		t.Fatal(err)
	}
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(4, hw.RTBHUnitN))
	mgr := core.NewQoSManager(fab, router, map[string]int{"AS64512": 0})
	st := core.New(core.Config{Manager: mgr, Queue: core.NewChangeQueue(1000, 1000)})
	ws := &wireStellar{st: st, seen: make(chan struct{}, 16)}

	// iBGP + ADD-PATH session pair: route server side (rsSess) and
	// controller side (passive, collects only).
	rsSess, ctrlSess, err := bgpsession.Pair(
		bgpsession.Config{LocalAS: ixpASN, BGPID: netip.MustParseAddr("10.0.0.1"), AddPath: true},
		bgpsession.Config{LocalAS: ixpASN, BGPID: netip.MustParseAddr("10.0.0.2"), AddPath: true, Passive: true},
		nil, ws.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer rsSess.Close()
	defer ctrlSess.Close()
	if !rsSess.Options().AddPathIPv4 {
		t.Fatal("ADD-PATH not negotiated on the controller session")
	}

	// Route server with the victim registered.
	policy := irr.NewPolicy()
	policy.IRR.Register(64512, victimPfx)
	rs := routeserver.New(routeserver.Config{ASN: ixpASN, BlackholeNextHop: bhNextHop, Policy: policy})
	if err := rs.AddPeer(routeserver.PeerConfig{Name: "AS64512", ASN: 64512,
		BGPID: netip.MustParseAddr("10.0.0.12")}); err != nil {
		t.Fatal(err)
	}
	rs.Subscribe(func(ev routeserver.ControllerEvent) {
		if err := rsSess.SendUpdate(core.EventToUpdate(ev)); err != nil {
			t.Errorf("send controller update: %v", err)
		}
	})

	// The victim announces its /32 with an Advanced Blackholing signal.
	spec := core.DropUDPSrcPort(123)
	ec, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:         bgp.OriginIGP,
			ASPath:         []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop:        netip.MustParseAddr("80.81.192.12"),
			ExtCommunities: []bgp.ExtCommunity{ec},
		},
		NLRI: []bgp.PathPrefix{{Prefix: hostPfx}},
	}
	if _, _, err := rs.HandleUpdate("AS64512", u); err != nil {
		t.Fatal(err)
	}

	select {
	case <-ws.seen:
	case <-time.After(3 * time.Second):
		t.Fatal("controller never received the feed update")
	}

	port, _ := fab.PortByName("AS64512")
	deadline := time.Now().Add(2 * time.Second)
	for port.RuleCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if port.RuleCount() != 1 {
		t.Fatalf("rules installed: %d (errors: %v)", port.RuleCount(), st.Errors())
	}
	rule := port.Rules()[0]
	if rule.Action != fabric.ActionDrop || rule.Match.SrcPort != 123 {
		t.Fatalf("installed rule: %+v", rule)
	}

	// Withdraw over the same wire: the rule must disappear.
	w := &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: hostPfx}}}
	if _, _, err := rs.HandleUpdate("AS64512", w); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ws.seen:
	case <-time.After(3 * time.Second):
		t.Fatal("withdraw never arrived")
	}
	deadline = time.Now().Add(2 * time.Second)
	for port.RuleCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if port.RuleCount() != 0 {
		t.Fatalf("rule not removed: %d", port.RuleCount())
	}
}

// TestWireFeedRoundtripMultiPath checks that two members' paths for the
// same prefix survive the wire feed as distinct events (the ADD-PATH
// guarantee) over real message framing.
func TestWireFeedRoundtripMultiPath(t *testing.T) {
	attrs := bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
		NextHop: netip.MustParseAddr("80.81.192.12"),
	}
	ev1 := routeserver.ControllerEvent{
		Peer: "AS64512", PeerAS: 64512, PathID: 1,
		Announced: []netip.Prefix{hostPfx}, Attrs: attrs,
	}
	u := core.EventToUpdate(ev1)
	// Marshal through the actual ADD-PATH wire encoding.
	opts := &bgp.Options{AddPathIPv4: true}
	wire, err := bgp.Marshal(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := bgp.Unmarshal(wire, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := core.EventsFromUpdate(msg.(*bgp.Update), nil)
	if len(events) != 1 {
		t.Fatalf("events: %d", len(events))
	}
	got := events[0]
	if got.PathID != 1 || got.PeerAS != 64512 || got.Peer != "AS64512" {
		t.Fatalf("event: %+v", got)
	}
	if len(got.Announced) != 1 || got.Announced[0] != hostPfx {
		t.Fatalf("announced: %v", got.Announced)
	}
}

// TestWireFeedIPv6 checks the MP-BGP path of the controller feed.
func TestWireFeedIPv6(t *testing.T) {
	p6 := netip.MustParsePrefix("2001:db8:100::/48")
	attrs := bgp.PathAttrs{
		Origin: bgp.OriginIGP,
		ASPath: []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
		MPReach: &bgp.MPReach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NextHop: netip.MustParseAddr("2001:db8::1")},
	}
	ev := routeserver.ControllerEvent{
		Peer: "AS64512", PeerAS: 64512, PathID: 3,
		Announced: []netip.Prefix{p6}, Attrs: attrs,
	}
	u := core.EventToUpdate(ev)
	opts := &bgp.Options{AddPathIPv4: true, AddPathIPv6: true}
	wire, err := bgp.Marshal(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := bgp.Unmarshal(wire, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := core.EventsFromUpdate(msg.(*bgp.Update), nil)
	if len(events) != 1 || len(events[0].Announced) != 1 || events[0].Announced[0] != p6 {
		t.Fatalf("v6 events: %+v", events)
	}
	if events[0].PathID != 3 {
		t.Fatalf("path ID: %d", events[0].PathID)
	}
}

// TestMemberSessionOverTCP runs a member's whole RTBH interaction over a
// real TCP BGP session against an in-process route server frontend: the
// member announces a blackholed /32, a second member receives the
// export with the next hop rewritten to the IXP's null interface.
func TestMemberSessionOverTCP(t *testing.T) {
	policy := irr.NewPolicy()
	policy.IRR.Register(64512, victimPfx)
	rs := routeserver.New(routeserver.Config{ASN: ixpASN, BlackholeNextHop: bhNextHop, Policy: policy})

	var (
		mu    sync.Mutex
		peers = make(map[string]*bgpsession.Session)
	)
	distribute := func(exports []routeserver.PeerUpdate) {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range exports {
			if s, ok := peers[e.Peer]; ok {
				if err := s.SendUpdate(e.Update); err != nil {
					t.Errorf("export: %v", err)
				}
			}
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				var sess *bgpsession.Session
				var name string
				var once sync.Once
				sess = bgpsession.New(conn, bgpsession.Config{
					LocalAS: ixpASN, BGPID: netip.MustParseAddr("10.0.0.1"),
				}, func(e bgpsession.Event) {
					switch {
					case e.State == bgpsession.StateEstablished:
						once.Do(func() {
							open := sess.PeerOpen()
							name = core.DefaultPeerNamer(open.AS, 0)
							_ = rs.AddPeer(routeserver.PeerConfig{Name: name, ASN: open.AS, BGPID: open.BGPID})
							mu.Lock()
							peers[name] = sess
							mu.Unlock()
						})
					case e.Update != nil:
						exports, _, err := rs.HandleUpdate(name, e.Update)
						if err == nil {
							distribute(exports)
						}
					}
				})
				_ = sess.Run()
			}(conn)
		}
	}()

	dial := func(asn uint32, id string, handler bgpsession.Handler) *bgpsession.Session {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s := bgpsession.New(conn, bgpsession.Config{
			LocalAS: asn, BGPID: netip.MustParseAddr(id),
		}, handler)
		go s.Run()
		deadline := time.Now().Add(3 * time.Second)
		for s.State() != bgpsession.StateEstablished {
			if time.Now().After(deadline) {
				t.Fatalf("session AS%d not established: %v", asn, s.Err())
			}
			time.Sleep(time.Millisecond)
		}
		return s
	}

	received := make(chan *bgp.Update, 4)
	observer := dial(64513, "10.0.0.13", func(e bgpsession.Event) {
		if e.Update != nil {
			received <- e.Update
		}
	})
	defer observer.Close()

	victim := dial(64512, "10.0.0.12", nil)
	defer victim.Close()

	// Give the server a moment to register both peers.
	time.Sleep(50 * time.Millisecond)

	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop:     netip.MustParseAddr("80.81.192.12"),
			Communities: []bgp.Community{bgp.CommunityBlackhole},
		},
		NLRI: []bgp.PathPrefix{{Prefix: hostPfx}},
	}
	if err := victim.SendUpdate(u); err != nil {
		t.Fatal(err)
	}

	select {
	case got := <-received:
		if len(got.NLRI) != 1 || got.NLRI[0].Prefix != hostPfx {
			t.Fatalf("export NLRI: %v", got.NLRI)
		}
		if got.Attrs.NextHop != bhNextHop {
			t.Fatalf("next hop: %v, want blackhole %v", got.Attrs.NextHop, bhNextHop)
		}
		if !got.Attrs.HasCommunity(bgp.CommunityNoExport) {
			t.Fatal("no-export missing on RTBH export")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("blackhole export never arrived at the observer")
	}
	_ = victimIP // document the attacked address for symmetry
}

// TestPacketLevelWireToFabric drives real wire bytes through the whole
// data path: packets are serialized to Ethernet frames, decoded by the
// fabric's packet path, switched by destination MAC, and classified by
// an installed blackholing rule.
func TestPacketLevelWireToFabric(t *testing.T) {
	fab := fabric.New()
	port := fabric.NewPort("AS64512", victimMAC, 1e9)
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	m.DstIP = hostPfx
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: m, Action: fabric.ActionDrop}); err != nil {
		t.Fatal(err)
	}
	if err := fab.AddPort(port); err != nil {
		t.Fatal(err)
	}

	srcMAC := netpkt.MustParseMAC("02:00:00:00:00:02")
	mk := func(build func(*netpkt.Builder) *netpkt.Builder) *netpkt.Packet {
		wire, err := build(netpkt.NewBuilder(srcMAC, victimMAC)).Build().Serialize()
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := netpkt.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}

	ntp := mk(func(b *netpkt.Builder) *netpkt.Builder {
		return b.IPv4(netip.MustParseAddr("198.51.100.1"), victimIP).
			UDP(123, 443).Payload(make([]byte, 468))
	})
	if d, err := fab.SwitchPacket(ntp); err != nil || d != fabric.DroppedByRule {
		t.Fatalf("ntp: %v %v", d, err)
	}
	web := mk(func(b *netpkt.Builder) *netpkt.Builder {
		return b.IPv4(netip.MustParseAddr("203.0.113.9"), victimIP).
			TCP(50123, 443, netpkt.FlagACK).Payload(make([]byte, 900))
	})
	if d, err := fab.SwitchPacket(web); err != nil || d != fabric.Delivered {
		t.Fatalf("web: %v %v", d, err)
	}
	// Telemetry counted the dropped frame with its true wire length.
	r, _ := port.Rule("drop-ntp")
	cs := r.Counters().Snapshot()
	if cs.MatchedPackets != 1 || cs.DroppedBytes != int64(ntp.WireLen) {
		t.Fatalf("counters: %+v (wire len %d)", cs, ntp.WireLen)
	}
}

// TestFlowspecBilateralSession exchanges an RFC 5575 rule between two
// members over a real BGP session (the bilateral-peering use the paper
// grants Flowspec), compiles it to a TCAM match, and installs it.
func TestFlowspecBilateralSession(t *testing.T) {
	fs := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.DstPrefix(hostPfx),
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(17)),
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(11211)),
	}}
	nlri, err := fs.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Flowspec rules travel as opaque payloads here (a full SAFI-133
	// route server is out of scope); the rule and its action community
	// are carried over the established session via a dedicated message
	// exchange modeled as an UPDATE with the traffic-rate community.
	got := make(chan *bgp.Update, 1)
	a, b, err := bgpsession.Pair(
		bgpsession.Config{LocalAS: 64512, BGPID: netip.MustParseAddr("10.0.0.1")},
		bgpsession.Config{LocalAS: 64513, BGPID: netip.MustParseAddr("10.0.0.2")},
		nil, func(e bgpsession.Event) {
			if e.Update != nil {
				select {
				case got <- e.Update:
				default:
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:         bgp.OriginIGP,
			ASPath:         []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop:        netip.MustParseAddr("192.0.2.1"),
			ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(64512, 0)}, // drop
		},
		NLRI: []bgp.PathPrefix{{Prefix: hostPfx}},
	}
	if err := a.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case ru := <-got:
		// Receiver compiles the (out-of-band delivered) spec plus the
		// in-band action into a data-plane rule.
		match, ok := mitigation.FlowSpecToMatch(fs)
		if !ok {
			t.Fatal("spec not compilable")
		}
		action, rate, ok := mitigation.FlowSpecAction(&ru.Attrs)
		if !ok || action != fabric.ActionDrop || rate != 0 {
			t.Fatalf("action: %v %v %v", action, rate, ok)
		}
		port := fabric.NewPort("AS64513", netpkt.MustParseMAC("02:00:00:00:00:03"), 1e9)
		if err := port.InstallRule(&fabric.Rule{ID: "fs", Match: match, Action: action}); err != nil {
			t.Fatal(err)
		}
		memcached := netpkt.FlowKey{
			Src: netip.MustParseAddr("198.51.100.1"), Dst: victimIP,
			Proto: netpkt.ProtoUDP, SrcPort: 11211, DstPort: 443,
		}
		if r := port.Classify(memcached); r == nil || r.Action != fabric.ActionDrop {
			t.Fatalf("classify: %+v", r)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("flowspec action never arrived")
	}
	_ = nlri // wire bytes validated by the bgp package's own tests
}
