package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Fig2cConfig parameterizes the collateral-damage measurement.
type Fig2cConfig struct {
	Seed uint64
	// Bins is the number of time bins (the paper plots ~1 h in 5-min
	// bins around the 2018-04-29 memcached attack).
	Bins int
	// AttackStartBin is when the memcached amplification begins
	// (20:21 CET in the paper).
	AttackStartBin int
	// WebRateBps is the service's benign traffic level.
	WebRateBps float64
	// AttackRateBps is the amplification peak (40 Gbps in the paper).
	AttackRateBps float64
}

// DefaultFig2cConfig mirrors the paper's episode.
func DefaultFig2cConfig() Fig2cConfig {
	return Fig2cConfig{Seed: 42, Bins: 60, AttackStartBin: 21, WebRateBps: 2e9, AttackRateBps: 40e9}
}

// Fig2cResult is the per-bin port-share decomposition of traffic toward
// the IXP member under attack.
type Fig2cResult struct {
	Cfg Fig2cConfig
	// Labels are the plot series (ports), ordered as in the figure.
	Labels []string
	// Shares[bin][label] is the byte share of that series in the bin.
	Shares []map[string]float64
}

// Fig2c reproduces Figure 2(c): the traffic mix toward one member before
// and during a memcached amplification attack, showing how the attack
// port (UDP source 11211) displaces the web service's traffic share —
// the collateral-damage setting RTBH cannot express.
//
// The bin-by-bin mix runs through the flow-monitoring pipeline: every
// offer streams into a flowmon.Collector as an IPFIX-style record, and
// the figure's labels derive from the collector's per-bin share
// accessors. The attack is pure UDP source-port 11211 toward TCP 443's
// destination port, so the web service's 443 share is the destination-
// port-443 share minus the attack's UDP share; the remaining mix ports
// (80, 8080, 1935) carry only TCP and read off directly.
func Fig2c(cfg Fig2cConfig) Fig2cResult {
	rng := stats.NewRand(cfg.Seed)
	target := netip.MustParseAddr("100.10.10.10")
	peers := traffic.MakePeers(40)

	web := traffic.NewWebService(target, peers[:8], cfg.WebRateBps, rng)
	attack := traffic.NewAttack(traffic.VectorMemcached, target, peers, cfg.AttackRateBps,
		cfg.AttackStartBin, cfg.Bins, rng)
	attack.RampTicks = 2

	mon := flowmon.NewCollector()
	var offers []fabric.Offer
	var recs []flowmon.Record
	for bin := 0; bin < cfg.Bins; bin++ {
		offers = web.AppendOffers(offers[:0], bin, 300) // 5-minute bins
		offers = attack.AppendOffers(offers, bin, 300)
		recs = recs[:0]
		for _, o := range offers {
			recs = append(recs, flowmon.Record{Bin: bin, Key: o.Flow, Bytes: o.Bytes, Packets: o.Packets})
		}
		mon.ObserveBatch(recs)
	}

	res := Fig2cResult{Cfg: cfg, Labels: []string{"11211", "others", "8080", "1935", "443", "80"}}
	for bin := 0; bin < cfg.Bins; bin++ {
		shares := make(map[string]float64)
		if mon.TotalBytes(bin) > 0 {
			dst := mon.DstPortShares(bin)
			attackShare := mon.SrcPortShares(bin)[11211]
			shares["11211"] = attackShare
			named := attackShare
			for _, port := range []uint16{80, 8080, 1935} {
				shares[fmt.Sprintf("%d", port)] = dst[port]
				named += dst[port]
			}
			tcp443 := dst[443] - attackShare
			if tcp443 < 0 {
				tcp443 = 0
			}
			shares["443"] = tcp443
			named += tcp443
			if rest := 1 - named; rest > 0 {
				shares["others"] = rest
			}
		}
		res.Shares = append(res.Shares, shares)
	}
	return res
}

// ShareBefore returns the mean share of a label before the attack.
func (r Fig2cResult) ShareBefore(label string) float64 {
	return r.meanShare(label, 0, r.Cfg.AttackStartBin)
}

// ShareDuring returns the mean share of a label during the attack
// (excluding the ramp bins).
func (r Fig2cResult) ShareDuring(label string) float64 {
	return r.meanShare(label, r.Cfg.AttackStartBin+3, r.Cfg.Bins)
}

func (r Fig2cResult) meanShare(label string, from, to int) float64 {
	var sum float64
	n := 0
	for bin := from; bin < to && bin < len(r.Shares); bin++ {
		sum += r.Shares[bin][label]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Format renders the series as the paper's stacked-share table.
func (r Fig2cResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2(c): traffic share toward IXP member under memcached attack [%]\n")
	header := append([]string{"bin"}, r.Labels...)
	var rows [][]string
	for bin, shares := range r.Shares {
		if bin%5 != 0 {
			continue // sample every 5 bins for readability
		}
		row := []string{fmt.Sprintf("%d", bin)}
		for _, label := range r.Labels {
			row = append(row, fmt.Sprintf("%5.1f", shares[label]*100))
		}
		rows = append(rows, row)
	}
	b.WriteString(FormatTable(header, rows))
	fmt.Fprintf(&b, "\npre-attack:  443 share %.1f%%, 11211 share %.1f%%\n",
		r.ShareBefore("443")*100, r.ShareBefore("11211")*100)
	fmt.Fprintf(&b, "during:      443 share %.1f%%, 11211 share %.1f%%\n",
		r.ShareDuring("443")*100, r.ShareDuring("11211")*100)
	return b.String()
}
