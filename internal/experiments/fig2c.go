package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Fig2cConfig parameterizes the collateral-damage measurement.
type Fig2cConfig struct {
	Seed uint64
	// Bins is the number of time bins (the paper plots ~1 h in 5-min
	// bins around the 2018-04-29 memcached attack).
	Bins int
	// AttackStartBin is when the memcached amplification begins
	// (20:21 CET in the paper).
	AttackStartBin int
	// WebRateBps is the service's benign traffic level.
	WebRateBps float64
	// AttackRateBps is the amplification peak (40 Gbps in the paper).
	AttackRateBps float64
}

// DefaultFig2cConfig mirrors the paper's episode.
func DefaultFig2cConfig() Fig2cConfig {
	return Fig2cConfig{Seed: 42, Bins: 60, AttackStartBin: 21, WebRateBps: 2e9, AttackRateBps: 40e9}
}

// Fig2cResult is the per-bin port-share decomposition of traffic toward
// the IXP member under attack.
type Fig2cResult struct {
	Cfg Fig2cConfig
	// Labels are the plot series (ports), ordered as in the figure.
	Labels []string
	// Shares[bin][label] is the byte share of that series in the bin.
	Shares []map[string]float64
}

// Fig2c reproduces Figure 2(c): the traffic mix toward one member before
// and during a memcached amplification attack, showing how the attack
// port (UDP source 11211) displaces the web service's traffic share —
// the collateral-damage setting RTBH cannot express.
func Fig2c(cfg Fig2cConfig) Fig2cResult {
	rng := stats.NewRand(cfg.Seed)
	target := netip.MustParseAddr("100.10.10.10")
	peers := traffic.MakePeers(40)

	web := traffic.NewWebService(target, peers[:8], cfg.WebRateBps, rng)
	attack := traffic.NewAttack(traffic.VectorMemcached, target, peers, cfg.AttackRateBps,
		cfg.AttackStartBin, cfg.Bins, rng)
	attack.RampTicks = 2

	res := Fig2cResult{Cfg: cfg, Labels: []string{"11211", "others", "8080", "1935", "443", "80"}}
	for bin := 0; bin < cfg.Bins; bin++ {
		byLabel := make(map[string]float64)
		var total float64
		observe := func(flow netpkt.FlowKey, bytes float64) {
			label := "others"
			if flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 11211 {
				label = "11211"
			} else if flow.Proto == netpkt.ProtoTCP {
				switch flow.DstPort {
				case 443, 80, 8080, 1935:
					label = fmt.Sprintf("%d", flow.DstPort)
				}
			}
			byLabel[label] += bytes
			total += bytes
		}
		for _, o := range web.Offers(bin, 300) { // 5-minute bins
			observe(o.Flow, o.Bytes)
		}
		for _, o := range attack.Offers(bin, 300) {
			observe(o.Flow, o.Bytes)
		}
		shares := make(map[string]float64, len(byLabel))
		if total > 0 {
			for label, b := range byLabel {
				shares[label] = b / total
			}
		}
		res.Shares = append(res.Shares, shares)
	}
	return res
}

// ShareBefore returns the mean share of a label before the attack.
func (r Fig2cResult) ShareBefore(label string) float64 {
	return r.meanShare(label, 0, r.Cfg.AttackStartBin)
}

// ShareDuring returns the mean share of a label during the attack
// (excluding the ramp bins).
func (r Fig2cResult) ShareDuring(label string) float64 {
	return r.meanShare(label, r.Cfg.AttackStartBin+3, r.Cfg.Bins)
}

func (r Fig2cResult) meanShare(label string, from, to int) float64 {
	var sum float64
	n := 0
	for bin := from; bin < to && bin < len(r.Shares); bin++ {
		sum += r.Shares[bin][label]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Format renders the series as the paper's stacked-share table.
func (r Fig2cResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2(c): traffic share toward IXP member under memcached attack [%]\n")
	header := append([]string{"bin"}, r.Labels...)
	var rows [][]string
	for bin, shares := range r.Shares {
		if bin%5 != 0 {
			continue // sample every 5 bins for readability
		}
		row := []string{fmt.Sprintf("%d", bin)}
		for _, label := range r.Labels {
			row = append(row, fmt.Sprintf("%5.1f", shares[label]*100))
		}
		rows = append(rows, row)
	}
	b.WriteString(FormatTable(header, rows))
	fmt.Fprintf(&b, "\npre-attack:  443 share %.1f%%, 11211 share %.1f%%\n",
		r.ShareBefore("443")*100, r.ShareBefore("11211")*100)
	fmt.Fprintf(&b, "during:      443 share %.1f%%, 11211 share %.1f%%\n",
		r.ShareDuring("443")*100, r.ShareDuring("11211")*100)
	return b.String()
}
