package experiments

import (
	"testing"

	"stellar/internal/mitigation"
)

func TestCompareMitigationsShape(t *testing.T) {
	r := CompareMitigations(DefaultCompareConfig())
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	advbh := r.Row(mitigation.AdvancedBlackholing)
	rtbh := r.Row(mitigation.RTBH)
	acl := r.Row(mitigation.ACL)
	fs := r.Row(mitigation.Flowspec)
	tss := r.Row(mitigation.TSS)

	// Advanced Blackholing: full benign delivery, no residual attack,
	// no congestion, no recurring cost.
	if advbh.BenignDeliveredFrac < 0.99 {
		t.Fatalf("AdvBH benign: %v", advbh.BenignDeliveredFrac)
	}
	if advbh.AttackResidualFrac > 0.01 || advbh.PortCongested || advbh.CostPerHour != 0 {
		t.Fatalf("AdvBH row: %+v", advbh)
	}

	// RTBH: collateral damage — honoring peers' benign traffic dies;
	// the non-honoring attack share remains and keeps congesting.
	if rtbh.BenignDeliveredFrac > advbh.BenignDeliveredFrac {
		t.Fatal("RTBH cannot beat AdvBH on benign delivery")
	}
	// Residual is measured post-congestion: the ~70% non-honoring attack
	// share still saturates the 1 Gbps port, so delivered attack sits at
	// the port ceiling (~1/3 of the 3 Gbps offered) — orders of
	// magnitude above Advanced Blackholing's ~0.
	if rtbh.AttackResidualFrac < 0.2 {
		t.Fatalf("RTBH residual: %v, want port-limited attack remaining", rtbh.AttackResidualFrac)
	}
	if rtbh.AttackResidualFrac < 100*advbh.AttackResidualFrac+0.1 {
		t.Fatalf("RTBH residual %v not >> AdvBH %v", rtbh.AttackResidualFrac, advbh.AttackResidualFrac)
	}
	if !rtbh.PortCongested {
		t.Fatal("RTBH should leave the port congested")
	}

	// ACL: the port still congests — benign delivery suffers upstream
	// of the filter.
	if !acl.PortCongested {
		t.Fatal("ACL should leave the port congested")
	}
	if acl.BenignDeliveredFrac > 0.5 {
		t.Fatalf("ACL benign: %v (should suffer congestion)", acl.BenignDeliveredFrac)
	}

	// Flowspec: no collateral damage on benign traffic (fine-grained),
	// but the refusing peers' attack share remains (port-limited, same
	// ceiling effect as RTBH).
	if fs.AttackResidualFrac < 0.2 {
		t.Fatalf("Flowspec residual: %v", fs.AttackResidualFrac)
	}
	if fs.BenignDeliveredFrac < rtbh.BenignDeliveredFrac {
		t.Fatal("Flowspec benign delivery must beat RTBH (no /32 collateral)")
	}

	// TSS: effective but billed.
	if tss.AttackResidualFrac > 0.05 {
		t.Fatalf("TSS residual: %v", tss.AttackResidualFrac)
	}
	if tss.CostPerHour <= 0 {
		t.Fatal("TSS must have recurring cost")
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestCombinedTSSEconomics(t *testing.T) {
	r := CombinedTSS(DefaultCompareConfig())
	// The pre-filter removes the bulk of the scrubbing bill...
	if r.SavingsFrac < 0.9 {
		t.Fatalf("savings: %v, want >90%%", r.SavingsFrac)
	}
	// ...without hurting benign delivery (it even improves: no detour
	// false positives).
	if r.CombinedBenignFrac < r.TSSAloneBenignFrac-0.01 {
		t.Fatalf("combined benign %v < alone %v", r.CombinedBenignFrac, r.TSSAloneBenignFrac)
	}
	// The scrubber still sees a bounded attack sample for analysis.
	if r.SampleToScrubberMbps <= 0 || r.SampleToScrubberMbps > 60 {
		t.Fatalf("sample: %v Mbps", r.SampleToScrubberMbps)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestCompareDeterministic(t *testing.T) {
	// Identical seeds reproduce the same outcome up to float summation
	// order (delivered-bytes maps are iterated unordered).
	a := CompareMitigations(DefaultCompareConfig())
	b := CompareMitigations(DefaultCompareConfig())
	const tol = 1e-9
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Technique != rb.Technique || ra.PortCongested != rb.PortCongested {
			t.Fatalf("row %d differs: %+v vs %+v", i, ra, rb)
		}
		if d := ra.BenignDeliveredFrac - rb.BenignDeliveredFrac; d > tol || d < -tol {
			t.Fatalf("row %d benign differs: %v vs %v", i, ra.BenignDeliveredFrac, rb.BenignDeliveredFrac)
		}
		if d := ra.AttackResidualFrac - rb.AttackResidualFrac; d > tol || d < -tol {
			t.Fatalf("row %d residual differs: %v vs %v", i, ra.AttackResidualFrac, rb.AttackResidualFrac)
		}
	}
}
