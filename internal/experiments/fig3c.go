package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/bgp"
	"stellar/internal/engine"
	"stellar/internal/flowmon"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// AttackRunConfig parameterizes the controlled booter experiments of
// Sections 2.4 (RTBH, Figure 3c) and 5.3 (Stellar, Figure 10c).
type AttackRunConfig struct {
	Seed uint64
	// Members is the route server population (>650 in the paper).
	Members int
	// HonoringFraction of members acting on RTBH (~0.3: almost 70%
	// do not, Section 2.4).
	HonoringFraction float64
	// AttackPeers is the number of members the booter's reflectors sit
	// behind (~40 in Fig 3c, ~60 in Fig 10c).
	AttackPeers int
	// AttackRateBps is the booter's peak (about 1 Gbps).
	AttackRateBps float64
	// Ticks is the experiment duration in seconds.
	Ticks int
	// AttackStart / AttackEnd bound the booter run.
	AttackStart, AttackEnd int
}

// DefaultFig3cConfig mirrors the Section 2.4 experiment.
func DefaultFig3cConfig() AttackRunConfig {
	return AttackRunConfig{
		Seed: 3, Members: 650, HonoringFraction: 0.30,
		AttackPeers: 40, AttackRateBps: 1e9,
		Ticks: 900, AttackStart: 100, AttackEnd: 700,
	}
}

// Fig3cResult is the RTBH attack time series plus its headline metrics.
type Fig3cResult struct {
	Cfg     AttackRunConfig
	Samples []ixp.Sample
	// RTBHTick is when the /32 blackhole was signaled (280 s after the
	// attack started, as in the paper).
	RTBHTick int
	// PeakBps is the mean delivered rate at attack steady state before
	// RTBH; ResidualBps after RTBH.
	PeakBps     float64
	ResidualBps float64
	// PeersBefore / PeersAfter are mean active peer counts.
	PeersBefore float64
	PeersAfter  float64
	// TopPorts is the victim monitor's UDP source-port ranking across
	// the run — the Figure 3(a)-style evidence that the delivered attack
	// is NTP (port 123) reflection.
	TopPorts []flowmon.PortRank
}

// buildAttackIXP builds the experimental AS setting: a member
// population, the victim with a 10 Gbps port, and the IXP.
func buildAttackIXP(cfg AttackRunConfig, stellarOn bool) (*ixp.IXP, []*member.Member, error) {
	members := member.MakePopulation(member.PopulationConfig{
		N: cfg.Members, HonoringFraction: cfg.HonoringFraction,
		PortCapacityBps: 1e10, Seed: cfg.Seed,
	})
	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
		EnableStellar:    stellarOn,
	})
	if err != nil {
		return nil, nil, err
	}
	return x, members, nil
}

// Fig3c reproduces Figure 3(c): a booter attack on a /32 the
// experimental AS operates, mitigated with classic RTBH. Because ~70% of
// the peers do not honor the blackhole, the attack traffic only drops to
// 600-800 Mbps and the peer count falls by only ~25%.
func Fig3c(cfg AttackRunConfig) (Fig3cResult, error) {
	x, members, err := buildAttackIXP(cfg, false)
	if err != nil {
		return Fig3cResult{}, err
	}
	victim := members[0]
	target := victim.Prefixes[0].Addr().Next()
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		return Fig3cResult{}, err
	}

	rng := stats.NewRand(cfg.Seed + 1)
	attackPeers := ixp.PeersOf(members[1 : 1+cfg.AttackPeers])
	attack := traffic.NewAttack(traffic.VectorNTP, target, attackPeers,
		cfg.AttackRateBps, cfg.AttackStart, cfg.AttackEnd, rng)

	// Drive the stage-graph engine directly: the attack source becomes a
	// one-victim driver carrying its own RTBH event, and the IXP
	// supplies the control and data planes.
	rtbhTick := cfg.AttackStart + 280
	driver := engine.NewSourcesDriver(
		[]engine.VictimSpec{{Port: victim.Name}},
		[][]engine.Source{{attack}},
	).AddEvents(engine.Event{
		Tick: rtbhTick, Name: "signal RTBH /32",
		Do: func() error {
			return x.Announce(victim.Name, host,
				[]bgp.Community{bgp.CommunityBlackhole}, nil)
		},
	})
	series, err := engine.New(engine.Config{
		Driver:       driver,
		Control:      x,
		DataPlane:    x,
		Ticks:        cfg.Ticks,
		Dt:           1,
		MemberFilter: x.MemberFilter(),
	}).Run()
	if err != nil {
		return Fig3cResult{}, err
	}
	samples := series[0].Samples
	res := Fig3cResult{
		Cfg: cfg, Samples: samples, RTBHTick: rtbhTick,
		PeakBps:     ixp.MeanDeliveredBps(samples, cfg.AttackStart+30, rtbhTick),
		ResidualBps: ixp.MeanDeliveredBps(samples, rtbhTick+20, cfg.AttackEnd),
		PeersBefore: ixp.MeanActivePeers(samples, cfg.AttackStart+30, rtbhTick),
		PeersAfter:  ixp.MeanActivePeers(samples, rtbhTick+20, cfg.AttackEnd),
		TopPorts:    series[0].Monitor.TopSrcPorts(3),
	}
	return res, nil
}

// Format renders the time series and headline metrics.
func (r Fig3cResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3(c): active DDoS attack exposing RTBH ineffectiveness\n")
	b.WriteString(formatAttackSeries(r.Samples, 50))
	fmt.Fprintf(&b, "\nattack steady state: %.0f Mbps from %.0f peers\n", r.PeakBps/1e6, r.PeersBefore)
	fmt.Fprintf(&b, "after RTBH (t=%d):   %.0f Mbps from %.0f peers (peer reduction %.0f%%)\n",
		r.RTBHTick, r.ResidualBps/1e6, r.PeersAfter,
		100*(1-r.PeersAfter/r.PeersBefore))
	b.WriteString(formatTopPorts(r.TopPorts))
	return b.String()
}

// formatTopPorts renders a monitor's UDP source-port ranking.
func formatTopPorts(tops []flowmon.PortRank) string {
	if len(tops) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("delivered UDP source ports: ")
	for i, p := range tops {
		if i > 0 {
			b.WriteString(", ")
		}
		name := fmt.Sprintf("%d", p.Port)
		if p.Port == 65535 {
			name = "others"
		}
		fmt.Fprintf(&b, "%s %.1f%%", name, p.Share*100)
	}
	b.WriteString("\n")
	return b.String()
}

func formatAttackSeries(samples []ixp.Sample, every int) string {
	header := []string{"t[s]", "offered[Mbps]", "delivered[Mbps]", "nulled[Mbps]",
		"rule-drop[Mbps]", "shaped-drop[Mbps]", "#peers"}
	var rows [][]string
	for _, s := range samples {
		if s.Tick%every != 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Tick),
			fmt.Sprintf("%8.1f", s.OfferedBps/1e6),
			fmt.Sprintf("%8.1f", s.DeliveredBps/1e6),
			fmt.Sprintf("%8.1f", s.NulledBps/1e6),
			fmt.Sprintf("%8.1f", s.RuleDroppedBps/1e6),
			fmt.Sprintf("%8.1f", s.ShaperDroppedBps/1e6),
			fmt.Sprintf("%d", s.ActivePeers),
		})
	}
	return FormatTable(header, rows)
}
