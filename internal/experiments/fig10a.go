package experiments

import (
	"fmt"
	"strings"

	"stellar/internal/hw"
	"stellar/internal/stats"
)

// Fig10aConfig parameterizes the control-plane CPU study.
type Fig10aConfig struct {
	Seed uint64
	// Rates are the rule-update rates swept (1..5 per second).
	Rates []float64
	// SamplesPerRate is the number of 5-second measurement intervals
	// per rate.
	SamplesPerRate int
	// NoiseStd is the CPU measurement noise in percentage points.
	NoiseStd float64
}

// DefaultFig10aConfig mirrors the paper's sweep.
func DefaultFig10aConfig() Fig10aConfig {
	return Fig10aConfig{Seed: 21, Rates: []float64{1, 2, 3, 4, 5}, SamplesPerRate: 40, NoiseStd: 0.6}
}

// Fig10aResult is the regression of Figure 10(a).
type Fig10aResult struct {
	Cfg Fig10aConfig
	// Samples are the (rate, cpu%) measurements.
	RateSamples []float64
	CPUSamples  []float64
	// Fit is the linear model; SlopeCI95 its 95% confidence half-width.
	Fit       stats.Linear
	SlopeCI95 float64
	// MaxRateAtCap is the update rate at the 15% CPU cap per the fitted
	// model — the paper's median of 4.33 updates/s.
	MaxRateAtCap float64
	// ModelTrueRate is the underlying model's exact rate at the cap.
	ModelTrueRate float64
}

// Fig10a reproduces Figure 10(a): sampled control-plane CPU usage as a
// function of the blackholing-rule update rate, the linear regression
// with its 95% confidence interval, and the sustainable median update
// rate at the router's hard 15% CPU limit.
func Fig10a(cfg Fig10aConfig) (Fig10aResult, error) {
	limits := hw.DefaultEdgeRouterLimits(350, hw.RTBHUnitN)
	model := hw.NewCPUModel(limits, cfg.NoiseStd)
	rng := stats.NewRand(cfg.Seed)

	res := Fig10aResult{Cfg: cfg, ModelTrueRate: model.MaxUpdateRate()}
	for _, rate := range cfg.Rates {
		for i := 0; i < cfg.SamplesPerRate; i++ {
			res.RateSamples = append(res.RateSamples, rate)
			res.CPUSamples = append(res.CPUSamples, model.Sample(rate, rng))
		}
	}
	fit, err := stats.LinearFit(res.RateSamples, res.CPUSamples)
	if err != nil {
		return res, err
	}
	res.Fit = fit
	res.SlopeCI95 = fit.SlopeCI(0.95)
	res.MaxRateAtCap = fit.SolveFor(limits.CPULimitPct)
	return res, nil
}

// Format renders the regression summary.
func (r Fig10aResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 10(a): control plane CPU usage vs. L3 criteria update rate (linear regression, 95% CI)\n")
	header := []string{"rate [1/s]", "mean CPU [%]"}
	var rows [][]string
	for _, rate := range r.Cfg.Rates {
		var sum float64
		n := 0
		for i, x := range r.RateSamples {
			if x == rate {
				sum += r.CPUSamples[i]
				n++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%5.2f", sum/float64(n)),
		})
	}
	b.WriteString(FormatTable(header, rows))
	fmt.Fprintf(&b, "\nfit: cpu%% = %.3f * rate + %.3f (R² %.3f, slope 95%% CI ± %.3f)\n",
		r.Fit.Slope, r.Fit.Intercept, r.Fit.R2, r.SlopeCI95)
	fmt.Fprintf(&b, "median feasible update rate at the 15%% CPU cap: %.2f updates/s (paper: 4.33)\n",
		r.MaxRateAtCap)
	return b.String()
}
