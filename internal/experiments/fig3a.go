package experiments

import (
	"fmt"
	"strings"

	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Fig3aConfig parameterizes the blackholed-traffic port study.
type Fig3aConfig struct {
	Seed uint64
	// Events is the number of blackholing events sampled (two weeks of
	// L-IXP events in the paper).
	Events int
	// Alpha is the significance level of the one-tailed Welch test
	// (0.02 in the paper).
	Alpha float64
}

// DefaultFig3aConfig mirrors the paper's setup.
func DefaultFig3aConfig() Fig3aConfig {
	return Fig3aConfig{Seed: 7, Events: 200, Alpha: 0.02}
}

// Fig3aPort is one bar pair of Figure 3(a).
type Fig3aPort struct {
	Port        uint16
	App         string
	RTBHMean    float64 // mean share in blackholed traffic
	RTBHCI      float64 // 95% CI half-width
	OtherMean   float64 // mean share in non-blackholed traffic
	OtherCI     float64
	WelchP      float64 // one-tailed p for RTBH > other
	Significant bool
}

// Fig3aResult is the full Figure 3(a) dataset plus the Section 2.3
// protocol aggregates.
type Fig3aResult struct {
	Cfg   Fig3aConfig
	Ports []Fig3aPort
	// Protocol mix aggregates (Section 2.3).
	RTBHUDPShare  float64
	RTBHTCPShare  float64
	OtherTCPShare float64
}

var fig3aApps = map[uint16]string{
	0: "unass.", 123: "ntp", 389: "ldap", 11211: "memc.", 53: "domain", 19: "chargen",
}

// Fig3a reproduces Figure 3(a): the UDP source-port decomposition of
// blackholed vs other traffic across blackholing events, with 95%
// confidence intervals and the paper's one-tailed Welch's t-test at
// significance level 0.02.
func Fig3a(cfg Fig3aConfig) (Fig3aResult, error) {
	rng := stats.NewRand(cfg.Seed)
	rtbhEvents := traffic.SampleEvents(traffic.RTBHPortProfile(), cfg.Events, rng)
	otherEvents := traffic.SampleEvents(traffic.OtherPortProfile(), cfg.Events, rng)

	res := Fig3aResult{Cfg: cfg}
	for _, port := range []uint16{0, 123, 389, 11211, 53, 19} {
		rtbhShares := make([]float64, len(rtbhEvents))
		for i, ev := range rtbhEvents {
			rtbhShares[i] = ev.PortShare[port]
		}
		otherShares := make([]float64, len(otherEvents))
		for i, ev := range otherEvents {
			otherShares[i] = ev.PortShare[port]
		}
		rtbhMean, rtbhCI := stats.MeanCI(rtbhShares, 0.95)
		otherMean, otherCI := stats.MeanCI(otherShares, 0.95)
		welch, err := stats.WelchTTest(rtbhShares, otherShares)
		if err != nil {
			return res, err
		}
		res.Ports = append(res.Ports, Fig3aPort{
			Port: port, App: fig3aApps[port],
			RTBHMean: rtbhMean, RTBHCI: rtbhCI,
			OtherMean: otherMean, OtherCI: otherCI,
			WelchP: welch.P, Significant: welch.P < cfg.Alpha,
		})
	}
	rtbhMix := traffic.RTBHProtoMix()
	otherMix := traffic.OtherProtoMix()
	res.RTBHUDPShare = rtbhMix.UDP
	res.RTBHTCPShare = rtbhMix.TCP
	res.OtherTCPShare = otherMix.TCP
	return res, nil
}

// Format renders the figure's bars as a table.
func (r Fig3aResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): UDP source ports of blackholed traffic across RTBH events (95% CI)\n")
	header := []string{"port", "app", "RTBH share [%]", "other share [%]", "Welch p", "significant(α=0.02)"}
	var rows [][]string
	for _, p := range r.Ports {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Port), p.App,
			fmt.Sprintf("%5.2f ± %4.2f", p.RTBHMean*100, p.RTBHCI*100),
			fmt.Sprintf("%5.2f ± %4.2f", p.OtherMean*100, p.OtherCI*100),
			fmt.Sprintf("%.2e", p.WelchP),
			fmt.Sprintf("%v", p.Significant),
		})
	}
	b.WriteString(FormatTable(header, rows))
	fmt.Fprintf(&b, "\nSection 2.3 aggregates: UDP %.2f%% of blackholed bytes (TCP %.2f%%); TCP %.2f%% of other traffic\n",
		r.RTBHUDPShare*100, r.RTBHTCPShare*100, r.OtherTCPShare*100)
	return b.String()
}
