package experiments

import (
	"math"
	"net/netip"
	"testing"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// legacySec52 is a frozen replica of the bespoke serial tick loop the
// experiment ran on before it moved to the scenario engine. It exists
// only as the parity oracle below; the production path is Sec52.
func legacySec52(seed uint64) (Sec52Result, error) {
	rng := stats.NewRand(seed)
	target := netip.MustParseAddr("100.10.10.10")
	victimMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	port := fabric.NewPort("victim", victimMAC, 1e9)

	dropNTP := fabric.MatchAll()
	dropNTP.Proto = netpkt.ProtoUDP
	dropNTP.SrcPort = 123
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: dropNTP, Action: fabric.ActionDrop}); err != nil {
		return Sec52Result{}, err
	}
	shapeDNS := fabric.MatchAll()
	shapeDNS.Proto = netpkt.ProtoUDP
	shapeDNS.SrcPort = 53
	const dnsRate = 100e6
	if err := port.InstallRule(&fabric.Rule{ID: "shape-dns", Match: shapeDNS,
		Action: fabric.ActionShape, ShapeRateBps: dnsRate}); err != nil {
		return Sec52Result{}, err
	}

	peers := traffic.MakePeers(8)
	ntp := traffic.NewAttack(traffic.VectorNTP, target, peers, 5e9, 0, 1000, rng)
	ntp.RampTicks = 0
	dns := traffic.NewAttack(traffic.VectorDNS, target, peers, 4.5e9, 0, 1000, rng)
	dns.RampTicks = 0
	web := traffic.NewWebService(target, peers[:3], 5e8, rng)

	var res Sec52Result
	res.DNSShapeRateBps = dnsRate
	const ticks = 30
	for tick := 0; tick < ticks; tick++ {
		offers := append(ntp.Offers(tick, 1), dns.Offers(tick, 1)...)
		offers = append(offers, web.Offers(tick, 1)...)
		out := port.Egress(offers, 1)
		for flow, bytes := range out.DeliveredByFlow {
			switch {
			case flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 123:
				res.NTPDeliveredBps += bytes * 8 / ticks
			case flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 53:
				res.DNSDeliveredBps += bytes * 8 / ticks
			default:
				res.BenignDeliveredBps += bytes * 8 / ticks
			}
		}
	}
	res.BenignOfferedBps = 5e8
	return res, nil
}

// TestSec52EngineMatchesLegacyLoop pins the engine-based Sec52 to the
// bespoke serial loop it replaced: per-class delivered rates must agree
// to float-summation noise (the two paths accumulate the same flow
// multiset in different orders, so bit-exact equality is not expected).
func TestSec52EngineMatchesLegacyLoop(t *testing.T) {
	for _, seed := range []uint64{9, 1, 42} {
		want, err := legacySec52(seed)
		if err != nil {
			t.Fatalf("seed %d: legacy: %v", seed, err)
		}
		got, err := Sec52(seed)
		if err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		close := func(name string, a, b float64) {
			scale := math.Max(math.Abs(a), math.Abs(b))
			if scale == 0 {
				return
			}
			if math.Abs(a-b) > scale*1e-9 {
				t.Errorf("seed %d: %s diverged: engine %v, legacy %v", seed, name, a, b)
			}
		}
		close("NTP delivered", got.NTPDeliveredBps, want.NTPDeliveredBps)
		close("DNS delivered", got.DNSDeliveredBps, want.DNSDeliveredBps)
		close("benign delivered", got.BenignDeliveredBps, want.BenignDeliveredBps)
		if got.BenignOfferedBps != want.BenignOfferedBps || got.DNSShapeRateBps != want.DNSShapeRateBps {
			t.Errorf("seed %d: constants diverged: %+v vs %+v", seed, got, want)
		}
	}
}
