// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver builds its workload from the substrate
// packages, runs it, and returns a result struct that (a) formats to the
// same rows/series the paper reports and (b) exposes the numbers the
// shape assertions in the test suites check.
//
// Absolute numbers differ from the paper (our substrate is a simulator,
// not DE-CIX hardware); the shapes — who wins, by what factor, where the
// feasibility boundaries fall — are asserted in experiments_test.go.
//
// The drivers are single-threaded but the substrate underneath is not:
// ixp.Tick and fabric.Tick fan member ports out over a worker pool, and
// ports classify offers through the compiled lock-free classifier with
// the traffic generators' pre-hashed flow keys. Results stay
// bit-identical across GOMAXPROCS settings — per-port computation is
// sequential and merges are keyed by port name — so every figure here is
// reproducible at any parallelism.
package experiments

import (
	"fmt"
	"strings"

	"stellar/internal/mitigation"
)

// FormatTable renders rows of cells with padded columns.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Table1Result is the qualitative comparison of Table 1.
type Table1Result struct {
	Matrix map[mitigation.Property]map[mitigation.Technique]mitigation.Rating
}

// Table1 regenerates the paper's Table 1.
func Table1() Table1Result {
	return Table1Result{Matrix: mitigation.Table1()}
}

// Format renders the matrix in the paper's row/column order.
func (r Table1Result) Format() string {
	techs := []mitigation.Technique{
		mitigation.TSS, mitigation.ACL, mitigation.RTBH,
		mitigation.Flowspec, mitigation.AdvancedBlackholing,
	}
	header := []string{"Property"}
	for _, tech := range techs {
		header = append(header, tech.String())
	}
	var rows [][]string
	for p := mitigation.Granularity; p <= mitigation.Costs; p++ {
		row := []string{p.String()}
		for _, tech := range techs {
			row = append(row, r.Matrix[p][tech].String())
		}
		rows = append(rows, row)
	}
	return "Table 1: Advanced Blackholing vs. DDoS mitigation solutions (+ advantage, - disadvantage, o neutral)\n" +
		FormatTable(header, rows)
}
