package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/flowmon"
	"stellar/internal/ixp"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// DefaultFig10cConfig mirrors the Section 5.3 experiment: the same
// booter attack as Figure 3(c) but ~60 peers, mitigated with Stellar.
func DefaultFig10cConfig() AttackRunConfig {
	return AttackRunConfig{
		Seed: 5, Members: 650, HonoringFraction: 0.30,
		AttackPeers: 60, AttackRateBps: 1e9,
		Ticks: 900, AttackStart: 100, AttackEnd: 800,
	}
}

// Fig10cResult is the Stellar attack time series plus headline metrics.
type Fig10cResult struct {
	Cfg     AttackRunConfig
	Samples []ixp.Sample
	// ShapeTick is when the victim signaled IXP:2:123 with a 200 Mbps
	// shape; DropTick is when it escalated to dropping all UDP.
	ShapeTick, DropTick int
	// Phase means.
	PeakBps      float64
	ShapedBps    float64
	FinalBps     float64
	PeersPeak    float64
	PeersShaped  float64
	PeersFinal   float64
	ShapeLatency float64 // signal-to-config delay of the first change
	// TopPorts is the victim monitor's UDP source-port ranking across
	// the run; during the telemetry (shaping) phase the NTP signature
	// stays visible, which is Advanced Blackholing's point.
	TopPorts []flowmon.PortRank
}

// Fig10c reproduces Figure 10(c): the booter attack mitigated with
// Advanced Blackholing. 200 s into the attack the victim signals a
// 200 Mbps shape on UDP source port 123 (telemetry mode); the traffic
// drops to the shaping rate while the peer count stays constant. 200 s
// later it escalates to dropping all UDP, driving the attack to ~zero.
func Fig10c(cfg AttackRunConfig) (Fig10cResult, error) {
	x, members, err := buildAttackIXP(cfg, true)
	if err != nil {
		return Fig10cResult{}, err
	}
	victim := members[0]
	target := victim.Prefixes[0].Addr().Next()
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		return Fig10cResult{}, err
	}

	rng := stats.NewRand(cfg.Seed + 1)
	attackPeers := ixp.PeersOf(members[1 : 1+cfg.AttackPeers])
	attack := traffic.NewAttack(traffic.VectorNTP, target, attackPeers,
		cfg.AttackRateBps, cfg.AttackStart, cfg.AttackEnd, rng)

	// Drive the stage-graph engine directly: one victim, the escalating
	// mitigation events riding on the driver's timeline.
	shapeTick := cfg.AttackStart + 200
	dropTick := shapeTick + 200
	driver := engine.NewSourcesDriver(
		[]engine.VictimSpec{{Port: victim.Name}},
		[][]engine.Source{{attack}},
	).AddEvents(
		engine.Event{Tick: shapeTick, Name: "shape UDP/123 to 200 Mbps (IXP:2:123)",
			Do: func() error {
				return x.Announce(victim.Name, host, nil,
					[]core.RuleSpec{core.ShapeUDPSrcPort(123, 200e6)})
			}},
		engine.Event{Tick: dropTick, Name: "drop all UDP",
			Do: func() error {
				return x.Announce(victim.Name, host, nil,
					[]core.RuleSpec{core.DropProto(netpkt.ProtoUDP)})
			}},
	)
	series, err := engine.New(engine.Config{
		Driver:       driver,
		Control:      x,
		DataPlane:    x,
		Ticks:        cfg.Ticks,
		Dt:           1,
		MemberFilter: x.MemberFilter(),
	}).Run()
	if err != nil {
		return Fig10cResult{}, err
	}
	samples := series[0].Samples
	res := Fig10cResult{
		Cfg: cfg, Samples: samples, ShapeTick: shapeTick, DropTick: dropTick,
		PeakBps:     ixp.MeanDeliveredBps(samples, cfg.AttackStart+30, shapeTick),
		ShapedBps:   ixp.MeanDeliveredBps(samples, shapeTick+20, dropTick),
		FinalBps:    ixp.MeanDeliveredBps(samples, dropTick+20, cfg.AttackEnd),
		PeersPeak:   ixp.MeanActivePeers(samples, cfg.AttackStart+30, shapeTick),
		PeersShaped: ixp.MeanActivePeers(samples, shapeTick+20, dropTick),
		PeersFinal:  ixp.MeanActivePeers(samples, dropTick+20, cfg.AttackEnd),
		TopPorts:    series[0].Monitor.TopSrcPorts(3),
	}
	if lats := x.Mitigations.Latencies(); len(lats) > 0 {
		res.ShapeLatency = lats[0]
	}
	return res, nil
}

// Format renders the time series and phase metrics.
func (r Fig10cResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 10(c): active DDoS attack mitigated with Stellar (Advanced Blackholing)\n")
	b.WriteString(formatAttackSeries(r.Samples, 50))
	fmt.Fprintf(&b, "\nattack steady state:       %.0f Mbps from %.0f peers\n", r.PeakBps/1e6, r.PeersPeak)
	fmt.Fprintf(&b, "shaped (t=%d, 200 Mbps):  %.0f Mbps from %.0f peers (telemetry preserved)\n",
		r.ShapeTick, r.ShapedBps/1e6, r.PeersShaped)
	fmt.Fprintf(&b, "dropped (t=%d, all UDP):  %.0f Mbps from %.0f peers\n",
		r.DropTick, r.FinalBps/1e6, r.PeersFinal)
	fmt.Fprintf(&b, "signal-to-configuration latency of first change: %.2f s\n", r.ShapeLatency)
	b.WriteString(formatTopPorts(r.TopPorts))
	return b.String()
}
