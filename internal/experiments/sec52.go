package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Sec52Result is the lab functionality validation of Section 5.2: a
// 10 Gbps generator drives NTP, DNS and benign flows into a 1 Gbps
// member port, with NTP dropped and DNS shaped.
type Sec52Result struct {
	// Rates delivered per class, bps.
	NTPDeliveredBps    float64
	DNSDeliveredBps    float64
	BenignDeliveredBps float64
	BenignOfferedBps   float64
	DNSShapeRateBps    float64
}

// portPlane adapts a bare single-port fabric to engine.DataPlane: no
// IXP, no null routes — just the port's egress pass, exactly the data
// plane the Section 5.2 lab bench had.
type portPlane struct {
	fab *fabric.Fabric
}

func (p portPlane) EgressTick(r fabric.Runner, offers fabric.TickOffers, dt float64, sink fabric.TickSink) (map[string]engine.PortReport, error) {
	st, err := p.fab.TickStreamOn(r, offers, dt, sink)
	if err != nil {
		return nil, err
	}
	out := make(map[string]engine.PortReport, len(st.PerPort))
	for name, res := range st.PerPort {
		var offered float64
		for _, o := range offers[name] {
			offered += o.Bytes
		}
		out[name] = engine.PortReport{OfferedBytes: offered, Result: res}
	}
	return out, nil
}

// Sec52 reproduces the Section 5.2 lab experiment: flows redirected to
// the dropping queue are not forwarded; flows redirected to a shaping
// queue share the shaping rate; benign traffic passes the port
// untouched even though the generator exceeds the port capacity 10x.
//
// The run goes through the scenario engine — the same pipeline every
// other experiment and the conformance matrix use — with the victim's
// flow monitor providing the per-class accounting (classes are keyed by
// UDP source port, matching the lab's queue assignment).
func Sec52(seed uint64) (Sec52Result, error) {
	rng := stats.NewRand(seed)
	target := netip.MustParseAddr("100.10.10.10")
	victimMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	port := fabric.NewPort("victim", victimMAC, 1e9)

	dropNTP := fabric.MatchAll()
	dropNTP.Proto = netpkt.ProtoUDP
	dropNTP.SrcPort = 123
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: dropNTP, Action: fabric.ActionDrop}); err != nil {
		return Sec52Result{}, err
	}
	shapeDNS := fabric.MatchAll()
	shapeDNS.Proto = netpkt.ProtoUDP
	shapeDNS.SrcPort = 53
	const dnsRate = 100e6
	if err := port.InstallRule(&fabric.Rule{ID: "shape-dns", Match: shapeDNS,
		Action: fabric.ActionShape, ShapeRateBps: dnsRate}); err != nil {
		return Sec52Result{}, err
	}
	fab := fabric.New()
	if err := fab.AddPort(port); err != nil {
		return Sec52Result{}, err
	}

	peers := traffic.MakePeers(8)
	ntp := traffic.NewAttack(traffic.VectorNTP, target, peers, 5e9, 0, 1000, rng)
	ntp.RampTicks = 0
	dns := traffic.NewAttack(traffic.VectorDNS, target, peers, 4.5e9, 0, 1000, rng)
	dns.RampTicks = 0
	web := traffic.NewWebService(target, peers[:3], 5e8, rng)

	const ticks = 30
	mon := flowmon.NewCollector()
	driver := engine.NewSourcesDriver(
		[]engine.VictimSpec{{Port: "victim", Monitor: mon}},
		[][]engine.Source{{ntp, dns, web}})
	if _, err := engine.New(engine.Config{
		Driver:    driver,
		DataPlane: portPlane{fab},
		Ticks:     ticks,
		Dt:        1,
	}).Run(); err != nil {
		return Sec52Result{}, err
	}

	var res Sec52Result
	res.DNSShapeRateBps = dnsRate
	for _, bin := range mon.Bins() {
		ntpBytes := mon.SrcPortBytes(bin, 123)
		dnsBytes := mon.SrcPortBytes(bin, 53)
		res.NTPDeliveredBps += ntpBytes * 8 / ticks
		res.DNSDeliveredBps += dnsBytes * 8 / ticks
		res.BenignDeliveredBps += (mon.TotalBytes(bin) - ntpBytes - dnsBytes) * 8 / ticks
	}
	res.BenignOfferedBps = 5e8
	return res, nil
}

// Format renders the validation summary.
func (r Sec52Result) Format() string {
	var b strings.Builder
	b.WriteString("Section 5.2 functionality: 10 Gbps generator into a 1 Gbps member port\n")
	header := []string{"class", "offered", "delivered", "expected"}
	rows := [][]string{
		{"NTP (drop queue)", "5.0 Gbps", fmt.Sprintf("%.1f Mbps", r.NTPDeliveredBps/1e6), "0"},
		{"DNS (shape queue)", "4.5 Gbps", fmt.Sprintf("%.1f Mbps", r.DNSDeliveredBps/1e6),
			fmt.Sprintf("%.0f Mbps", r.DNSShapeRateBps/1e6)},
		{"benign web", "0.5 Gbps", fmt.Sprintf("%.1f Mbps", r.BenignDeliveredBps/1e6), "500 Mbps (untouched)"},
	}
	b.WriteString(FormatTable(header, rows))
	return b.String()
}
