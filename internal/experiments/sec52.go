package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Sec52Result is the lab functionality validation of Section 5.2: a
// 10 Gbps generator drives NTP, DNS and benign flows into a 1 Gbps
// member port, with NTP dropped and DNS shaped.
type Sec52Result struct {
	// Rates delivered per class, bps.
	NTPDeliveredBps    float64
	DNSDeliveredBps    float64
	BenignDeliveredBps float64
	BenignOfferedBps   float64
	DNSShapeRateBps    float64
}

// Sec52 reproduces the Section 5.2 lab experiment: flows redirected to
// the dropping queue are not forwarded; flows redirected to a shaping
// queue share the shaping rate; benign traffic passes the port
// untouched even though the generator exceeds the port capacity 10x.
func Sec52(seed uint64) (Sec52Result, error) {
	rng := stats.NewRand(seed)
	target := netip.MustParseAddr("100.10.10.10")
	victimMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	port := fabric.NewPort("victim", victimMAC, 1e9)

	dropNTP := fabric.MatchAll()
	dropNTP.Proto = netpkt.ProtoUDP
	dropNTP.SrcPort = 123
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: dropNTP, Action: fabric.ActionDrop}); err != nil {
		return Sec52Result{}, err
	}
	shapeDNS := fabric.MatchAll()
	shapeDNS.Proto = netpkt.ProtoUDP
	shapeDNS.SrcPort = 53
	const dnsRate = 100e6
	if err := port.InstallRule(&fabric.Rule{ID: "shape-dns", Match: shapeDNS,
		Action: fabric.ActionShape, ShapeRateBps: dnsRate}); err != nil {
		return Sec52Result{}, err
	}

	peers := traffic.MakePeers(8)
	ntp := traffic.NewAttack(traffic.VectorNTP, target, peers, 5e9, 0, 1000, rng)
	ntp.RampTicks = 0
	dns := traffic.NewAttack(traffic.VectorDNS, target, peers, 4.5e9, 0, 1000, rng)
	dns.RampTicks = 0
	web := traffic.NewWebService(target, peers[:3], 5e8, rng)

	var res Sec52Result
	res.DNSShapeRateBps = dnsRate
	const ticks = 30
	for tick := 0; tick < ticks; tick++ {
		offers := append(ntp.Offers(tick, 1), dns.Offers(tick, 1)...)
		offers = append(offers, web.Offers(tick, 1)...)
		out := port.Egress(offers, 1)
		for flow, bytes := range out.DeliveredByFlow {
			switch {
			case flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 123:
				res.NTPDeliveredBps += bytes * 8 / ticks
			case flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 53:
				res.DNSDeliveredBps += bytes * 8 / ticks
			default:
				res.BenignDeliveredBps += bytes * 8 / ticks
			}
		}
	}
	res.BenignOfferedBps = 5e8
	return res, nil
}

// Format renders the validation summary.
func (r Sec52Result) Format() string {
	var b strings.Builder
	b.WriteString("Section 5.2 functionality: 10 Gbps generator into a 1 Gbps member port\n")
	header := []string{"class", "offered", "delivered", "expected"}
	rows := [][]string{
		{"NTP (drop queue)", "5.0 Gbps", fmt.Sprintf("%.1f Mbps", r.NTPDeliveredBps/1e6), "0"},
		{"DNS (shape queue)", "4.5 Gbps", fmt.Sprintf("%.1f Mbps", r.DNSDeliveredBps/1e6),
			fmt.Sprintf("%.0f Mbps", r.DNSShapeRateBps/1e6)},
		{"benign web", "0.5 Gbps", fmt.Sprintf("%.1f Mbps", r.BenignDeliveredBps/1e6), "500 Mbps (untouched)"},
	}
	b.WriteString(FormatTable(header, rows))
	return b.String()
}
