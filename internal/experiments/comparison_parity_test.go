package experiments

import (
	"math"
	"net/netip"
	"testing"

	"stellar/internal/fabric"
	"stellar/internal/mitigation"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// legacyCompareMitigations is a frozen replica of the bespoke serial
// port loops the comparison matrix ran on before it moved to the
// scenario engine. It exists only as the parity oracle below; the
// production path is CompareMitigations.
func legacyCompareMitigations(cfg CompareConfig) CompareResult {
	target := netip.MustParseAddr("100.10.10.10")
	res := CompareResult{Cfg: cfg}

	ntpMatch := fabric.MatchAll()
	ntpMatch.Proto = netpkt.ProtoUDP
	ntpMatch.SrcPort = 123

	type tickLoads struct{ attack, web []fabric.Offer }
	makeLoads := func() []tickLoads {
		rng := stats.NewRand(cfg.Seed)
		peers := traffic.MakePeers(cfg.Peers)
		attack := traffic.NewAttack(traffic.VectorNTP, target, peers, cfg.AttackRateBps, 0, cfg.Ticks, rng)
		attack.RampTicks = 0
		web := traffic.NewWebService(target, peers[:5], cfg.WebRateBps, rng)
		loads := make([]tickLoads, cfg.Ticks)
		for t := 0; t < cfg.Ticks; t++ {
			loads[t] = tickLoads{attack: attack.Offers(t, 1), web: web.Offers(t, 1)}
		}
		return loads
	}

	honoringRng := stats.NewRand(cfg.Seed + 99)
	honors := make(map[netpkt.MAC]bool)
	for _, p := range traffic.MakePeers(cfg.Peers) {
		honors[p.MAC] = honoringRng.Float64() < cfg.HonoringFraction
	}

	runPort := func(rules []*fabric.Rule, preFilter func(fabric.Offer) bool, dropBenignAtSource bool) (benign, attackRes float64, congested bool) {
		port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), cfg.PortBps)
		for _, r := range rules {
			if err := port.InstallRule(r); err != nil {
				panic(err)
			}
		}
		var benignDel, benignOff, attackDel, attackOff float64
		for _, l := range makeLoads() {
			var offers []fabric.Offer
			for _, o := range l.attack {
				attackOff += o.Bytes
				if preFilter != nil && preFilter(o) {
					continue
				}
				offers = append(offers, o)
			}
			for _, o := range l.web {
				benignOff += o.Bytes
				if dropBenignAtSource && preFilter != nil && preFilter(o) {
					continue
				}
				offers = append(offers, o)
			}
			out := port.Egress(offers, 1)
			if out.CongestionDroppedBytes > 0 {
				congested = true
			}
			for flow, bytes := range out.DeliveredByFlow {
				if flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 123 {
					attackDel += bytes
				} else {
					benignDel += bytes
				}
			}
		}
		return benignDel / benignOff, attackDel / attackOff, congested
	}

	rtbhFilter := func(o fabric.Offer) bool { return honors[o.Flow.SrcMAC] && o.Flow.Dst == target }
	b, a, c := runPort(nil, rtbhFilter, true)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.RTBH, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})

	aclPortBenign, _, aclCongested := runPort(nil, nil, false)
	res.Rows = append(res.Rows, CompareRow{
		Technique:           mitigation.ACL,
		BenignDeliveredFrac: aclPortBenign,
		AttackResidualFrac:  0,
		PortCongested:       aclCongested,
	})

	fsFilter := func(o fabric.Offer) bool {
		peer := &mitigation.FlowspecPeer{Accepts: honors[o.Flow.SrcMAC], Rules: []fabric.Match{ntpMatch}}
		return peer.FiltersFlow(o.Flow)
	}
	b, a, c = runPort(nil, fsFilter, false)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.Flowspec, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})

	scrubber := &mitigation.Scrubber{
		CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5,
	}
	var tssBenign, tssAttack, tssBenignOff, tssAttackOff float64
	for _, l := range makeLoads() {
		var atk, web float64
		for _, o := range l.attack {
			atk += o.Bytes
		}
		for _, o := range l.web {
			web += o.Bytes
		}
		r := scrubber.Scrub(atk, web, 1)
		tssBenign += r.CleanBenignBytes
		tssAttack += r.LeakedAttackBytes
		tssBenignOff += web
		tssAttackOff += atk
	}
	res.Rows = append(res.Rows, CompareRow{
		Technique:           mitigation.TSS,
		BenignDeliveredFrac: tssBenign / tssBenignOff,
		AttackResidualFrac:  tssAttack / tssAttackOff,
		CostPerHour:         scrubber.TotalCost * 3600 / float64(cfg.Ticks),
	})

	b, a, c = runPort([]*fabric.Rule{{ID: "advbh", Match: ntpMatch, Action: fabric.ActionDrop}}, nil, false)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.AdvancedBlackholing, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})
	return res
}

// legacyCombinedTSS is the frozen pre-engine replica of CombinedTSS,
// including its double per-tick draw from the stateful attack source.
func legacyCombinedTSS(cfg CompareConfig) CombinedTSSResult {
	target := netip.MustParseAddr("100.10.10.10")
	rng := stats.NewRand(cfg.Seed)
	peers := traffic.MakePeers(cfg.Peers)
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers, cfg.AttackRateBps, 0, cfg.Ticks, rng)
	attack.RampTicks = 0
	web := traffic.NewWebService(target, peers[:5], cfg.WebRateBps, rng)

	scrubAll := &mitigation.Scrubber{CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5}
	scrubSample := &mitigation.Scrubber{CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5}

	const sampleRateBps = 50e6
	ntpMatch := fabric.MatchAll()
	ntpMatch.Proto = netpkt.ProtoUDP
	ntpMatch.SrcPort = 123
	port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), cfg.PortBps)
	if err := port.InstallRule(&fabric.Rule{ID: "sample", Match: ntpMatch,
		Action: fabric.ActionShape, ShapeRateBps: sampleRateBps}); err != nil {
		panic(err)
	}

	var aloneBenign, aloneBenignOff, combBenign, combBenignOff, sampleBytes float64
	for t := 0; t < cfg.Ticks; t++ {
		var atk, webBytes float64
		for _, o := range attack.Offers(t, 1) {
			atk += o.Bytes
		}
		webOffers := web.Offers(t, 1)
		for _, o := range webOffers {
			webBytes += o.Bytes
		}

		r := scrubAll.Scrub(atk, webBytes, 1)
		aloneBenign += r.CleanBenignBytes
		aloneBenignOff += webBytes

		out := port.Egress(append(attack.Offers(t, 1), webOffers...), 1)
		var sampled float64
		for flow, bytes := range out.DeliveredByFlow {
			if flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 123 {
				sampled += bytes
			} else {
				combBenign += bytes
			}
		}
		sampleBytes += sampled
		scrubSample.Scrub(sampled, 0, 1)
		combBenignOff += webBytes
	}
	hours := float64(cfg.Ticks) / 3600
	res := CombinedTSSResult{
		TSSAloneCostPerHour:  scrubAll.TotalCost / hours,
		CombinedCostPerHour:  scrubSample.TotalCost / hours,
		TSSAloneBenignFrac:   aloneBenign / aloneBenignOff,
		CombinedBenignFrac:   combBenign / combBenignOff,
		SampleToScrubberMbps: sampleBytes * 8 / float64(cfg.Ticks) / 1e6,
	}
	if res.TSSAloneCostPerHour > 0 {
		res.SavingsFrac = 1 - res.CombinedCostPerHour/res.TSSAloneCostPerHour
	}
	return res
}

// parityClose asserts relative agreement to float-summation noise: the
// engine and legacy paths accumulate the same flow multiset in
// different orders, so bit-exact equality is not expected.
func parityClose(t *testing.T, seed uint64, name string, a, b float64) {
	t.Helper()
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return
	}
	if math.Abs(a-b) > scale*1e-9 {
		t.Errorf("seed %d: %s diverged: engine %v, legacy %v", seed, name, a, b)
	}
}

// TestCompareMitigationsEngineMatchesLegacyLoop pins the engine-based
// comparison matrix to the bespoke serial port loops it replaced.
func TestCompareMitigationsEngineMatchesLegacyLoop(t *testing.T) {
	for _, seed := range []uint64{9, 1, 42} {
		cfg := DefaultCompareConfig()
		cfg.Seed = seed
		want := legacyCompareMitigations(cfg)
		got := CompareMitigations(cfg)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("seed %d: %d rows, want %d", seed, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			w, g := want.Rows[i], got.Rows[i]
			if g.Technique != w.Technique {
				t.Fatalf("seed %d row %d: technique %v, want %v", seed, i, g.Technique, w.Technique)
			}
			if g.PortCongested != w.PortCongested {
				t.Errorf("seed %d %v: congested %v, want %v", seed, g.Technique, g.PortCongested, w.PortCongested)
			}
			label := w.Technique.String()
			parityClose(t, seed, label+" benign delivered", g.BenignDeliveredFrac, w.BenignDeliveredFrac)
			parityClose(t, seed, label+" attack residual", g.AttackResidualFrac, w.AttackResidualFrac)
			parityClose(t, seed, label+" cost/h", g.CostPerHour, w.CostPerHour)
		}
	}
}

// TestCombinedTSSEngineMatchesLegacyLoop pins the engine-based combined
// deployment to the frozen serial replica, double RNG draw and all.
func TestCombinedTSSEngineMatchesLegacyLoop(t *testing.T) {
	for _, seed := range []uint64{9, 1, 42} {
		cfg := DefaultCompareConfig()
		cfg.Seed = seed
		want := legacyCombinedTSS(cfg)
		got := CombinedTSS(cfg)
		parityClose(t, seed, "TSS-alone cost/h", got.TSSAloneCostPerHour, want.TSSAloneCostPerHour)
		parityClose(t, seed, "combined cost/h", got.CombinedCostPerHour, want.CombinedCostPerHour)
		parityClose(t, seed, "TSS-alone benign", got.TSSAloneBenignFrac, want.TSSAloneBenignFrac)
		parityClose(t, seed, "combined benign", got.CombinedBenignFrac, want.CombinedBenignFrac)
		parityClose(t, seed, "savings", got.SavingsFrac, want.SavingsFrac)
		parityClose(t, seed, "sample Mbps", got.SampleToScrubberMbps, want.SampleToScrubberMbps)
	}
}
