package experiments

import (
	"fmt"
	"strings"

	"stellar/internal/core"
	"stellar/internal/stats"
)

// Fig10bConfig parameterizes the queueing study.
type Fig10bConfig struct {
	Seed uint64
	// Rates are the configuration-change dequeue limits to compare
	// (4/s and 5/s, bracketing the measured 4.33/s sustainable rate).
	Rates []float64
	// DurationSec is the replayed trace length.
	DurationSec float64
	// MaxBurstSize is the queue's MBS.
	MaxBurstSize int
}

// DefaultFig10bConfig mirrors the paper's replay.
func DefaultFig10bConfig() Fig10bConfig {
	return Fig10bConfig{Seed: 17, Rates: []float64{4, 5}, DurationSec: 6 * 3600, MaxBurstSize: 25}
}

// Fig10bCurve is the waiting-time distribution for one dequeue rate.
type Fig10bCurve struct {
	Rate float64
	// Waits are the per-change queueing delays in seconds.
	Waits []float64
	ECDF  *stats.ECDF
}

// Fig10bResult is Figure 10(b)'s CDF pair.
type Fig10bResult struct {
	Cfg    Fig10bConfig
	Curves []Fig10bCurve
}

// generateChangeTrace synthesizes a configuration-change arrival trace
// with the character of the L-IXP RTBH service traces the paper replays:
// a steady trickle of individual blackholing changes punctuated by
// occasional large bursts (members scripting rule sets, attack onsets
// triggering many rules at once). Arrival times are returned sorted.
func generateChangeTrace(cfg Fig10bConfig, rng *stats.Rand) []float64 {
	var arrivals []float64
	t := 0.0
	for t < cfg.DurationSec {
		// Singleton changes: mean gap 0.5 s (≈2 changes/s trickle).
		t += rng.ExpFloat64() * 0.5
		if t >= cfg.DurationSec {
			break
		}
		if rng.Float64() < 0.0015 {
			// Burst: a batch of changes arriving together.
			size := int(rng.Pareto(40, 1.4))
			if size > 600 {
				size = 600
			}
			for i := 0; i < size; i++ {
				arrivals = append(arrivals, t)
			}
		} else {
			arrivals = append(arrivals, t)
		}
	}
	return arrivals
}

// Fig10b reproduces Figure 10(b): it replays the synthesized
// RTBH-service change trace through the blackholing controller's token
// bucket queue at dequeue limits of 4/s and 5/s and reports the CDF of
// the time from blackholing signal to configuration. The paper's
// qualitative result: ~70% of changes wait under a second and the 95th
// percentile stays below 100 seconds.
func Fig10b(cfg Fig10bConfig) Fig10bResult {
	res := Fig10bResult{Cfg: cfg}
	for _, rate := range cfg.Rates {
		rng := stats.NewRand(cfg.Seed) // same trace for both rates
		arrivals := generateChangeTrace(cfg, rng)
		q := core.NewChangeQueue(rate, cfg.MaxBurstSize)
		var waits []float64
		i := 0
		// Drive the queue in 100 ms steps, enqueueing due arrivals.
		for now := 0.0; now <= cfg.DurationSec+3600; now += 0.1 {
			for i < len(arrivals) && arrivals[i] <= now {
				q.Enqueue(core.ConfigChange{}, arrivals[i])
				i++
			}
			for _, dq := range q.Drain(now) {
				waits = append(waits, dq.Waited)
			}
			if i >= len(arrivals) && q.Len() == 0 {
				break
			}
		}
		res.Curves = append(res.Curves, Fig10bCurve{Rate: rate, Waits: waits, ECDF: stats.NewECDF(waits)})
	}
	return res
}

// Format renders the CDFs at the paper's thresholds.
func (r Fig10bResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 10(b): required queueing for different announcement frequencies (waiting-time CDF)\n")
	header := []string{"rate limit", "P(wait<=0.1s)", "P(wait<=1s)", "P(wait<=10s)", "P(wait<=100s)", "p95 [s]", "changes"}
	var rows [][]string
	for _, c := range r.Curves {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f/s", c.Rate),
			fmt.Sprintf("%.3f", c.ECDF.P(0.1)),
			fmt.Sprintf("%.3f", c.ECDF.P(1)),
			fmt.Sprintf("%.3f", c.ECDF.P(10)),
			fmt.Sprintf("%.3f", c.ECDF.P(100)),
			fmt.Sprintf("%.1f", stats.Percentile(c.Waits, 95)),
			fmt.Sprintf("%d", len(c.Waits)),
		})
	}
	b.WriteString(FormatTable(header, rows))
	b.WriteString("\npaper: ~70% of configuration changes below 1 s; 95th percentile below 100 s\n")
	return b.String()
}
