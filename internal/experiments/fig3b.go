package experiments

import (
	"fmt"
	"strings"

	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// Fig3bConfig parameterizes the policy-usage study.
type Fig3bConfig struct {
	Seed uint64
	// Announcements is the number of RTBH announcements sampled.
	Announcements int
}

// DefaultFig3bConfig returns the default sampling size.
func DefaultFig3bConfig() Fig3bConfig { return Fig3bConfig{Seed: 13, Announcements: 100000} }

// Fig3bResult is the categorical distribution of export policies on
// blackholing announcements at L-IXP.
type Fig3bResult struct {
	Cfg Fig3bConfig
	// Order lists the categories in the figure's x-axis order.
	Order []string
	// Share maps category to its observed fraction.
	Share map[string]float64
	// PaperShare maps category to the published fraction.
	PaperShare map[string]float64
}

// Fig3b reproduces Figure 3(b): for >93% of blackholing events, the
// prefix owner asks all route server peers to blackhole; small
// minorities carve out exceptions (All-1 ... All-18) or whitelist
// specific ASes.
func Fig3b(cfg Fig3bConfig) Fig3bResult {
	rng := stats.NewRand(cfg.Seed)
	samples := traffic.SamplePolicies(cfg.Announcements, rng)
	counts := make(map[string]int)
	for _, s := range samples {
		counts[s.Label]++
	}
	res := Fig3bResult{
		Cfg:        cfg,
		Share:      make(map[string]float64),
		PaperShare: make(map[string]float64),
	}
	for _, p := range traffic.PolicyShares() {
		res.Order = append(res.Order, p.Label)
		res.PaperShare[p.Label] = p.Share
		res.Share[p.Label] = float64(counts[p.Label]) / float64(cfg.Announcements)
	}
	return res
}

// Format renders the distribution alongside the published values.
func (r Fig3bResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3(b): usage of policy control for RTBH at L-IXP\n")
	header := []string{"affected ASNs", "share of announcements [%]", "paper [%]"}
	var rows [][]string
	for _, label := range r.Order {
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%7.2f", r.Share[label]*100),
			fmt.Sprintf("%7.2f", r.PaperShare[label]*100),
		})
	}
	b.WriteString(FormatTable(header, rows))
	return b.String()
}
