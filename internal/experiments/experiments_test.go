package experiments

import (
	"strings"
	"testing"

	"stellar/internal/mitigation"
)

// ---------------------------------------------------------------------
// Table 1

func TestTable1Shape(t *testing.T) {
	r := Table1()
	out := r.Format()
	if !strings.Contains(out, "Advanced Blackholing") || !strings.Contains(out, "Granularity") {
		t.Fatalf("format:\n%s", out)
	}
	// Advanced Blackholing must dominate every column.
	counts := mitigation.AdvantageCount()
	if counts[mitigation.AdvancedBlackholing] != 10 {
		t.Fatal("AdvBH does not sweep")
	}
}

// ---------------------------------------------------------------------
// Figure 2(c)

func TestFig2cShape(t *testing.T) {
	r := Fig2c(DefaultFig2cConfig())
	if len(r.Shares) != r.Cfg.Bins {
		t.Fatalf("bins: %d", len(r.Shares))
	}
	// Pre-attack: web service profile, HTTPS dominant, no 11211.
	if r.ShareBefore("11211") > 0.001 {
		t.Fatalf("pre-attack 11211 share: %v", r.ShareBefore("11211"))
	}
	if r.ShareBefore("443") < 0.4 {
		t.Fatalf("pre-attack 443 share: %v", r.ShareBefore("443"))
	}
	if r.ShareBefore("443") < r.ShareBefore("80") {
		t.Fatal("443 must dominate 80 pre-attack")
	}
	// During the attack: the memcached port takes over (paper shows a
	// sudden, huge increase; 40 Gbps vs 2 Gbps means >90% share).
	if r.ShareDuring("11211") < 0.9 {
		t.Fatalf("during-attack 11211 share: %v", r.ShareDuring("11211"))
	}
	// The web shares collapse but stay non-zero (service still sending).
	if r.ShareDuring("443") <= 0 || r.ShareDuring("443") > 0.1 {
		t.Fatalf("during-attack 443 share: %v", r.ShareDuring("443"))
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 3(a)

func TestFig3aShape(t *testing.T) {
	r, err := Fig3a(DefaultFig3aConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ports) != 6 {
		t.Fatalf("ports: %d", len(r.Ports))
	}
	for _, p := range r.Ports {
		// Every amplification port carries materially more share in
		// blackholed traffic, and the Welch test confirms it at α=0.02
		// — "all differences are significant" in the paper.
		if p.RTBHMean <= p.OtherMean {
			t.Errorf("port %d: RTBH %v <= other %v", p.Port, p.RTBHMean, p.OtherMean)
		}
		if !p.Significant {
			t.Errorf("port %d: not significant (p=%v)", p.Port, p.WelchP)
		}
		if p.RTBHCI <= 0 {
			t.Errorf("port %d: no CI", p.Port)
		}
	}
	// Ordering: port 0 > 123 > 389 (the figure's bar order).
	if !(r.Ports[0].RTBHMean > r.Ports[1].RTBHMean && r.Ports[1].RTBHMean > r.Ports[2].RTBHMean) {
		t.Fatal("port share ordering broken")
	}
	// Section 2.3 aggregates.
	if r.RTBHUDPShare < 0.99 {
		t.Fatalf("RTBH UDP share: %v, want ~0.9994", r.RTBHUDPShare)
	}
	if r.OtherTCPShare < 0.8 {
		t.Fatalf("other TCP share: %v, want ~0.8681", r.OtherTCPShare)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 3(b)

func TestFig3bShape(t *testing.T) {
	r := Fig3b(DefaultFig3bConfig())
	// "All" dominates at ~93.97%.
	if r.Share["All"] < 0.92 || r.Share["All"] > 0.96 {
		t.Fatalf("All share: %v", r.Share["All"])
	}
	// All-1 is the second-largest category (~5.28%).
	if r.Share["All-1"] < 0.04 || r.Share["All-1"] > 0.07 {
		t.Fatalf("All-1 share: %v", r.Share["All-1"])
	}
	for _, label := range []string{"All-18", "All-5", "All-4", "20", "21"} {
		if r.Share[label] > 0.02 {
			t.Fatalf("%s share too large: %v", label, r.Share[label])
		}
	}
	var total float64
	for _, label := range r.Order {
		total += r.Share[label]
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum: %v", total)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 3(c) — RTBH leaves most of the attack standing.

func fastFig3cConfig() AttackRunConfig {
	cfg := DefaultFig3cConfig()
	cfg.Members = 120 // smaller population, same honoring fraction
	return cfg
}

func TestFig3cShape(t *testing.T) {
	r, err := Fig3c(fastFig3cConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Peak near the booter's 1 Gbps.
	if r.PeakBps < 0.9e9 || r.PeakBps > 1.1e9 {
		t.Fatalf("peak: %v", r.PeakBps)
	}
	// Traffic arrives via ~40 peers.
	if r.PeersBefore < 30 || r.PeersBefore > 41 {
		t.Fatalf("peers before: %v", r.PeersBefore)
	}
	// RTBH removes only the honoring peers' share: 600-800 Mbps remains
	// (the paper's headline RTBH failure).
	if r.ResidualBps < 0.5e9 || r.ResidualBps > 0.85e9 {
		t.Fatalf("residual: %v Mbps", r.ResidualBps/1e6)
	}
	// Peer count falls by roughly 25% (paper), i.e. far from zero.
	reduction := 1 - r.PeersAfter/r.PeersBefore
	if reduction < 0.10 || reduction > 0.45 {
		t.Fatalf("peer reduction: %v", reduction)
	}
	// Before the attack there is no traffic.
	if r.Samples[10].DeliveredBps != 0 {
		t.Fatalf("pre-attack traffic: %v", r.Samples[10].DeliveredBps)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 9 — feasibility grids.

func TestFig9Shape(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.N = 2 // smaller unit: identical grid labels, faster allocation
	r := Fig9(cfg)
	if len(r.Grids) != 3 {
		t.Fatalf("grids: %d", len(r.Grids))
	}
	g20, g60, g100 := r.Grids[0], r.Grids[1], r.Grids[2]

	// Panel (a): 20% adoption — everything OK.
	for _, m := range g20.MACSteps {
		for _, l := range g20.L34Steps {
			if got := g20.Cell(m, l); got != "OK" {
				t.Errorf("20%% (%dN,%dN) = %s", m, l, got)
			}
		}
	}
	// Panel (b): 60% — F1 on the 4N column, F2 on the 10N row otherwise.
	for _, m := range g60.MACSteps {
		if got := g60.Cell(m, 4); got != "F1" {
			t.Errorf("60%% (%dN,4N) = %s, want F1", m, got)
		}
	}
	for _, l := range []int{0, 1, 2, 3} {
		if got := g60.Cell(10, l); got != "F2" {
			t.Errorf("60%% (10N,%dN) = %s, want F2", l, got)
		}
		if got := g60.Cell(8, l); got != "OK" {
			t.Errorf("60%% (8N,%dN) = %s, want OK", l, got)
		}
	}
	// Panel (c): 100% — F1 for L3-L4 >= 2N; F2 for MAC >= 6N at 0/1N.
	for _, m := range g100.MACSteps {
		for _, l := range []int{2, 3, 4} {
			if got := g100.Cell(m, l); got != "F1" {
				t.Errorf("100%% (%dN,%dN) = %s, want F1", m, l, got)
			}
		}
	}
	for _, l := range []int{0, 1} {
		for _, m := range []int{6, 8, 10} {
			if got := g100.Cell(m, l); got != "F2" {
				t.Errorf("100%% (%dN,%dN) = %s, want F2", m, l, got)
			}
		}
		for _, m := range []int{0, 2, 4} {
			if got := g100.Cell(m, l); got != "OK" {
				t.Errorf("100%% (%dN,%dN) = %s, want OK", m, l, got)
			}
		}
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 10(a) — CPU regression.

func TestFig10aShape(t *testing.T) {
	r, err := Fig10a(DefaultFig10aConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The regression recovers a rate close to the paper's 4.33/s.
	if r.MaxRateAtCap < 4.0 || r.MaxRateAtCap > 4.7 {
		t.Fatalf("max rate at cap: %v, want ~4.33", r.MaxRateAtCap)
	}
	// CPU usage is convincingly linear in the update rate.
	if r.Fit.R2 < 0.8 {
		t.Fatalf("R²: %v", r.Fit.R2)
	}
	if r.Fit.Slope <= 0 {
		t.Fatalf("slope: %v", r.Fit.Slope)
	}
	if r.SlopeCI95 <= 0 {
		t.Fatal("no slope CI")
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 10(b) — queue waiting time CDF.

func TestFig10bShape(t *testing.T) {
	cfg := DefaultFig10bConfig()
	cfg.DurationSec = 2 * 3600 // shorter replay for CI speed
	r := Fig10b(cfg)
	if len(r.Curves) != 2 {
		t.Fatalf("curves: %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Waits) < 1000 {
			t.Fatalf("rate %v: only %d changes", c.Rate, len(c.Waits))
		}
		// Paper: ~70% of changes wait under a second.
		if p1 := c.ECDF.P(1); p1 < 0.70 {
			t.Fatalf("rate %v: P(<=1s) = %v, want >= 0.70", c.Rate, p1)
		}
		// Paper: p95 below 100 seconds.
		if p95 := c.ECDF.Quantile(0.95); p95 >= 100 {
			t.Fatalf("rate %v: p95 = %v, want < 100", c.Rate, p95)
		}
	}
	// The faster dequeue rate dominates (stochastically) at 10 s.
	if r.Curves[1].ECDF.P(10) < r.Curves[0].ECDF.P(10) {
		t.Fatal("5/s should wait no longer than 4/s")
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// ---------------------------------------------------------------------
// Figure 10(c) — Stellar mitigates the same attack RTBH could not.

func fastFig10cConfig() AttackRunConfig {
	cfg := DefaultFig10cConfig()
	cfg.Members = 120
	cfg.AttackPeers = 60
	return cfg
}

func TestFig10cShape(t *testing.T) {
	r, err := Fig10c(fastFig10cConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Peak ~1 Gbps from ~60 peers.
	if r.PeakBps < 0.9e9 || r.PeakBps > 1.1e9 {
		t.Fatalf("peak: %v", r.PeakBps)
	}
	if r.PeersPeak < 50 || r.PeersPeak > 61 {
		t.Fatalf("peers at peak: %v", r.PeersPeak)
	}
	// Shaped phase: traffic drops to the 200 Mbps telemetry rate...
	if r.ShapedBps < 0.18e9 || r.ShapedBps > 0.23e9 {
		t.Fatalf("shaped: %v Mbps, want ~200", r.ShapedBps/1e6)
	}
	// ...while the peer count stays (nearly) constant — the shaping
	// queue passes a proportional sample of every peer.
	if r.PeersShaped < r.PeersPeak*0.9 {
		t.Fatalf("peers under shaping: %v (peak %v)", r.PeersShaped, r.PeersPeak)
	}
	// Drop phase: close to zero.
	if r.FinalBps > 0.02e9 {
		t.Fatalf("final: %v Mbps, want ~0", r.FinalBps/1e6)
	}
	if r.PeersFinal > r.PeersPeak*0.1 {
		t.Fatalf("peers after drop: %v", r.PeersFinal)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}

// TestStellarBeatsRTBHHeadToHead is the paper's central comparison:
// on the same attack shape, Stellar removes what RTBH leaves standing.
func TestStellarBeatsRTBHHeadToHead(t *testing.T) {
	rtbh, err := Fig3c(fastFig3cConfig())
	if err != nil {
		t.Fatal(err)
	}
	stellar, err := Fig10c(fastFig10cConfig())
	if err != nil {
		t.Fatal(err)
	}
	// RTBH leaves >half the attack; Stellar's drop phase leaves ~none.
	if rtbh.ResidualBps < 10*stellar.FinalBps {
		t.Fatalf("RTBH residual %v vs Stellar final %v: expected >10x gap",
			rtbh.ResidualBps, stellar.FinalBps)
	}
}

// ---------------------------------------------------------------------
// Section 5.2

func TestSec52Shape(t *testing.T) {
	r, err := Sec52(9)
	if err != nil {
		t.Fatal(err)
	}
	if r.NTPDeliveredBps != 0 {
		t.Fatalf("NTP delivered: %v", r.NTPDeliveredBps)
	}
	// DNS shaped to ~100 Mbps.
	if r.DNSDeliveredBps < 0.9e8 || r.DNSDeliveredBps > 1.1e8 {
		t.Fatalf("DNS delivered: %v", r.DNSDeliveredBps)
	}
	// Benign passes untouched.
	if r.BenignDeliveredBps < r.BenignOfferedBps*0.99 {
		t.Fatalf("benign delivered: %v of %v", r.BenignDeliveredBps, r.BenignOfferedBps)
	}
	if r.Format() == "" {
		t.Fatal("empty format")
	}
}
