package experiments

import (
	"testing"
)

// legacyFig9 is the frozen pre-engine replica of the Figure 9 sweep:
// plain nested loops over the grid, no event train. It exists only as
// the parity oracle below; the production path is Fig9.
func legacyFig9(cfg Fig9Config) Fig9Result {
	res := Fig9Result{Cfg: cfg}
	macSteps := []int{10, 8, 6, 4, 2, 0}
	l34Steps := []int{0, 1, 2, 3, 4}
	for _, adoption := range cfg.Adoptions {
		grid := Fig9Grid{
			Adoption: adoption,
			MACSteps: macSteps,
			L34Steps: l34Steps,
			Cells:    make(map[[2]int]Fig9Cell),
		}
		active := int(adoption * float64(cfg.Ports))
		for _, macN := range macSteps {
			for _, l34N := range l34Steps {
				grid.Cells[[2]int{macN, l34N}] = fig9Cell(cfg, active, macN*cfg.N, l34N*cfg.N)
			}
		}
		res.Grids = append(res.Grids, grid)
	}
	return res
}

// TestFig9EngineMatchesLegacyLoop pins the event-train Fig9 to the
// frozen nested-loop replica, cell for cell. The sweep is fully
// deterministic, so equality is exact.
func TestFig9EngineMatchesLegacyLoop(t *testing.T) {
	for _, cfg := range []Fig9Config{
		DefaultFig9Config(),
		{Ports: 64, N: 16, Adoptions: []float64{0.5, 1.0}},
	} {
		want := legacyFig9(cfg)
		got := Fig9(cfg)
		if len(got.Grids) != len(want.Grids) {
			t.Fatalf("%d grids, want %d", len(got.Grids), len(want.Grids))
		}
		for gi := range want.Grids {
			w, g := want.Grids[gi], got.Grids[gi]
			if g.Adoption != w.Adoption {
				t.Fatalf("grid %d: adoption %v, want %v", gi, g.Adoption, w.Adoption)
			}
			if len(g.Cells) != len(w.Cells) {
				t.Fatalf("grid %d: %d cells, want %d", gi, len(g.Cells), len(w.Cells))
			}
			for key, wc := range w.Cells {
				if gc := g.Cells[key]; gc != wc {
					t.Errorf("adoption %.0f%% mac=%dN l34=%dN: %q, want %q",
						w.Adoption*100, key[0], key[1], gc, wc)
				}
			}
		}
	}
}
