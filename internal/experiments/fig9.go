package experiments

import (
	"errors"
	"fmt"
	"strings"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/hw"
	"stellar/internal/netpkt"
)

// Fig9Config parameterizes the TCAM feasibility grids.
type Fig9Config struct {
	// Ports is the edge router's member port count (>350 in the paper's
	// densest router).
	Ports int
	// N is the grid unit: the 95th percentile of concurrently active
	// RTBH rules per port.
	N int
	// Adoptions are the member adoption rates to evaluate (the paper's
	// 20%, 60% and 100% panels).
	Adoptions []float64
}

// DefaultFig9Config mirrors the paper's panels.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Ports: 350, N: hw.RTBHUnitN, Adoptions: []float64{0.2, 0.6, 1.0}}
}

// Fig9Cell is one grid cell outcome: "OK", "F1" (L3-L4 criteria
// exhausted) or "F2" (MAC filters exhausted).
type Fig9Cell string

// Fig9Grid is one adoption panel: rows indexed by MAC filters per port
// (10N down to 0), columns by L3-L4 criteria per port (0 to 4N).
type Fig9Grid struct {
	Adoption float64
	MACSteps []int // per-port MAC filter counts, in units of N
	L34Steps []int // per-port L3-L4 criteria, in units of N
	Cells    map[[2]int]Fig9Cell
}

// Fig9Result is the full figure.
type Fig9Result struct {
	Cfg   Fig9Config
	Grids []Fig9Grid
}

// Fig9 reproduces Figure 9 by exercising the hardware model for real:
// for each (adoption, MAC-per-port, L3-L4-per-port) combination it
// allocates the implied rule set on a fresh edge router and records
// which budget, if any, is exhausted first. L3-L4 criteria are allocated
// before MAC filters, matching the paper's F1-before-F2 reporting
// precedence.
//
// The sweep runs as a timed event train on the scenario engine — one
// control-plane event per grid cell over a quiet single-port fabric —
// so even the hardware-only experiments share the one pipeline (and
// its event ordering and abort semantics) with the traffic
// experiments.
func Fig9(cfg Fig9Config) Fig9Result {
	res := Fig9Result{Cfg: cfg}
	macSteps := []int{10, 8, 6, 4, 2, 0}
	l34Steps := []int{0, 1, 2, 3, 4}
	var events []engine.Event
	for _, adoption := range cfg.Adoptions {
		grid := Fig9Grid{
			Adoption: adoption,
			MACSteps: macSteps,
			L34Steps: l34Steps,
			Cells:    make(map[[2]int]Fig9Cell),
		}
		active := int(adoption * float64(cfg.Ports))
		for _, macN := range macSteps {
			for _, l34N := range l34Steps {
				macN, l34N := macN, l34N
				cells := grid.Cells
				events = append(events, engine.Event{
					Tick: len(events),
					Name: fmt.Sprintf("fig9 cell adoption=%.0f%% mac=%dN l34=%dN", adoption*100, macN, l34N),
					Do: func() error {
						cells[[2]int{macN, l34N}] = fig9Cell(cfg, active, macN*cfg.N, l34N*cfg.N)
						return nil
					},
				})
			}
		}
		res.Grids = append(res.Grids, grid)
	}

	port := fabric.NewPort("grid", netpkt.MustParseMAC("02:00:00:00:00:f9"), 1e9)
	fab := fabric.New()
	if err := fab.AddPort(port); err != nil {
		panic(err)
	}
	if _, err := engine.New(engine.Config{
		Driver: engine.NewSourcesDriver(
			[]engine.VictimSpec{{Port: "grid", Monitor: flowmon.NewCollector()}}, nil),
		DataPlane: portPlane{fab},
		Events:    events,
		Ticks:     len(events),
		Dt:        1,
	}).Run(); err != nil {
		panic(err)
	}
	return res
}

// fig9Cell allocates the full demand on a fresh router and classifies
// the first failure.
func fig9Cell(cfg Fig9Config, activePorts, macPerPort, l34PerPort int) Fig9Cell {
	limits := hw.DefaultEdgeRouterLimits(cfg.Ports, cfg.N)
	// The stretch test installs individual criteria; lift the per-port
	// policy-slot cap so only the paper's two budget dimensions bind.
	limits.QoSPoliciesPerPort = (macPerPort + l34PerPort + 1) * 2
	router := hw.NewEdgeRouter(limits)
	// Pass 1: L3-L4 criteria on every active port (F1 dimension).
	for port := 0; port < activePorts; port++ {
		for k := 0; k < l34PerPort; k++ {
			if err := router.Allocate(port, 0, 1); err != nil {
				return classifyHWErr(err)
			}
		}
	}
	// Pass 2: MAC filters (F2 dimension).
	for port := 0; port < activePorts; port++ {
		for k := 0; k < macPerPort; k++ {
			if err := router.Allocate(port, 1, 0); err != nil {
				return classifyHWErr(err)
			}
		}
	}
	return "OK"
}

func classifyHWErr(err error) Fig9Cell {
	switch {
	case errors.Is(err, hw.ErrL34Exhausted):
		return "F1"
	case errors.Is(err, hw.ErrMACExhausted):
		return "F2"
	default:
		return Fig9Cell(err.Error())
	}
}

// Cell returns the outcome at (macN, l34N) units for the grid.
func (g Fig9Grid) Cell(macN, l34N int) Fig9Cell { return g.Cells[[2]int{macN, l34N}] }

// Format renders the panels as in the figure.
func (r Fig9Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 9: Stellar scaling limits by IXP member adoption rate (OK / F1=L3-L4 exhausted / F2=MAC exhausted)\n")
	for _, g := range r.Grids {
		fmt.Fprintf(&b, "\nAdoption %.0f%% of member ASes:\n", g.Adoption*100)
		header := []string{"MAC\\L3-L4"}
		for _, l := range g.L34Steps {
			header = append(header, fmt.Sprintf("%dN", l))
		}
		var rows [][]string
		for _, m := range g.MACSteps {
			row := []string{fmt.Sprintf("%dN", m)}
			for _, l := range g.L34Steps {
				row = append(row, string(g.Cell(m, l)))
			}
			rows = append(rows, row)
		}
		b.WriteString(FormatTable(header, rows))
	}
	return b.String()
}
