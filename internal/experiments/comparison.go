package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/mitigation"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// replaySource feeds precomputed per-tick offers into the engine — the
// bridge for experiments whose workload (and its RNG draw order) was
// fixed up front, before the run.
type replaySource struct {
	ticks [][]fabric.Offer
}

// Offers implements engine.Source.
func (r *replaySource) Offers(tick int, _ float64) []fabric.Offer {
	if tick < 0 || tick >= len(r.ticks) {
		return nil
	}
	return r.ticks[tick]
}

// AppendOffers implements engine.OfferAppender.
func (r *replaySource) AppendOffers(dst []fabric.Offer, tick int, _ float64) []fabric.Offer {
	if tick < 0 || tick >= len(r.ticks) {
		return dst
	}
	return append(dst, r.ticks[tick]...)
}

// CompareConfig parameterizes the quantitative five-way comparison that
// backs Table 1's qualitative claims: the same amplification attack and
// benign workload under each mitigation technique's behavioural model.
type CompareConfig struct {
	Seed uint64
	// AttackRateBps and WebRateBps set the workload (default: 3 Gbps NTP
	// reflection vs 400 Mbps web into a 1 Gbps port).
	AttackRateBps float64
	WebRateBps    float64
	PortBps       float64
	// HonoringFraction applies to RTBH peers and Flowspec acceptance
	// alike (the shared cooperation bottleneck).
	HonoringFraction float64
	Peers            int
	Ticks            int
}

// DefaultCompareConfig mirrors the paper's operating point.
func DefaultCompareConfig() CompareConfig {
	return CompareConfig{
		Seed: 23, AttackRateBps: 3e9, WebRateBps: 4e8, PortBps: 1e9,
		HonoringFraction: 0.30, Peers: 40, Ticks: 30,
	}
}

// CompareRow is one technique's measured outcome.
type CompareRow struct {
	Technique mitigation.Technique
	// BenignDeliveredFrac is the fraction of benign traffic surviving.
	BenignDeliveredFrac float64
	// AttackResidualFrac is the fraction of attack traffic still hitting
	// the victim (for ACL: still consuming the member port).
	AttackResidualFrac float64
	// PortCongested reports whether the member port stayed saturated.
	PortCongested bool
	// CostPerHour is the recurring fee (only TSS bills per byte).
	CostPerHour float64
}

// CompareResult is the full comparison.
type CompareResult struct {
	Cfg  CompareConfig
	Rows []CompareRow
}

// CompareMitigations runs the same workload under no mitigation, RTBH,
// ACL filters, Flowspec, TSS and Advanced Blackholing, quantifying
// Table 1's qualitative matrix on one concrete attack.
func CompareMitigations(cfg CompareConfig) CompareResult {
	target := netip.MustParseAddr("100.10.10.10")
	res := CompareResult{Cfg: cfg}

	ntpMatch := fabric.MatchAll()
	ntpMatch.Proto = netpkt.ProtoUDP
	ntpMatch.SrcPort = 123

	type tickLoads struct{ attack, web []fabric.Offer }
	makeLoads := func() []tickLoads {
		rng := stats.NewRand(cfg.Seed)
		peers := traffic.MakePeers(cfg.Peers)
		attack := traffic.NewAttack(traffic.VectorNTP, target, peers, cfg.AttackRateBps, 0, cfg.Ticks, rng)
		attack.RampTicks = 0
		web := traffic.NewWebService(target, peers[:5], cfg.WebRateBps, rng)
		loads := make([]tickLoads, cfg.Ticks)
		for t := 0; t < cfg.Ticks; t++ {
			loads[t] = tickLoads{attack: attack.Offers(t, 1), web: web.Offers(t, 1)}
		}
		return loads
	}

	// honoring marks which peers cooperate (RTBH honoring / Flowspec
	// acceptance) — the same set for a fair comparison.
	honoringRng := stats.NewRand(cfg.Seed + 99)
	honors := make(map[netpkt.MAC]bool)
	for _, p := range traffic.MakePeers(cfg.Peers) {
		honors[p.MAC] = honoringRng.Float64() < cfg.HonoringFraction
	}

	// runPort pushes the per-tick offers through a fresh victim port on
	// the scenario engine and accumulates benign/attack delivery. The
	// pre-filter models peer-edge behaviour (RTBH null routes, Flowspec
	// rules), so it applies before the fabric: the post-filter loads are
	// precomputed and replayed into the engine, and the victim's flow
	// monitor provides the per-class delivery accounting the hand-rolled
	// loop used to pull out of DeliveredByFlow.
	runPort := func(rules []*fabric.Rule, preFilter func(fabric.Offer) bool, dropBenignAtSource bool) (benign, attackRes float64, congested bool) {
		loads := makeLoads()
		perTick := &replaySource{ticks: make([][]fabric.Offer, len(loads))}
		var benignOff, attackOff float64
		for t, l := range loads {
			var offers []fabric.Offer
			for _, o := range l.attack {
				attackOff += o.Bytes
				if preFilter != nil && preFilter(o) {
					continue
				}
				offers = append(offers, o)
			}
			for _, o := range l.web {
				benignOff += o.Bytes
				if dropBenignAtSource && preFilter != nil && preFilter(o) {
					continue
				}
				offers = append(offers, o)
			}
			perTick.ticks[t] = offers
		}

		port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), cfg.PortBps)
		for _, r := range rules {
			if err := port.InstallRule(r); err != nil {
				panic(err)
			}
		}
		fab := fabric.New()
		if err := fab.AddPort(port); err != nil {
			panic(err)
		}
		mon := flowmon.NewCollector()
		series, err := engine.New(engine.Config{
			Driver: engine.NewSourcesDriver(
				[]engine.VictimSpec{{Port: "victim", Monitor: mon}},
				[][]engine.Source{{perTick}}),
			DataPlane: portPlane{fab},
			Ticks:     len(loads),
			Dt:        1,
		}).Run()
		if err != nil {
			panic(err)
		}
		for _, s := range series[0].Samples {
			if s.CongestionDroppedBps > 0 {
				congested = true
			}
		}
		var benignDel, attackDel float64
		for _, bin := range mon.Bins() {
			atk := mon.SrcPortBytes(bin, 123)
			attackDel += atk
			benignDel += mon.TotalBytes(bin) - atk
		}
		return benignDel / benignOff, attackDel / attackOff, congested
	}

	// --- No mitigation baseline (implicit row, used for sanity only).

	// --- RTBH: honoring peers null-route the whole /32 — their benign
	// traffic dies too (collateral damage); non-honoring attack remains.
	rtbhFilter := func(o fabric.Offer) bool { return honors[o.Flow.SrcMAC] && o.Flow.Dst == target }
	b, a, c := runPort(nil, rtbhFilter, true)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.RTBH, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})

	// --- ACL at the victim's own border: perfect filtering, but behind
	// the member port — the port still carries and congests on the full
	// attack (Section 1.1's structural weakness).
	aclPortBenign, _, aclCongested := runPort(nil, nil, false)
	acl := &mitigation.ACLFilter{Rules: []fabric.Match{ntpMatch}}
	// What the port delivered is then filtered downstream; benign that
	// survived congestion passes the ACL untouched.
	_ = acl
	res.Rows = append(res.Rows, CompareRow{
		Technique:           mitigation.ACL,
		BenignDeliveredFrac: aclPortBenign, // congestion already took its toll
		AttackResidualFrac:  0,             // ACL removes what the port let through
		PortCongested:       aclCongested,
	})

	// --- Flowspec: accepting peers filter NTP at their edge; benign
	// traffic untouched. Refusing peers send everything.
	fsFilter := func(o fabric.Offer) bool {
		peer := &mitigation.FlowspecPeer{Accepts: honors[o.Flow.SrcMAC], Rules: []fabric.Match{ntpMatch}}
		return peer.FiltersFlow(o.Flow)
	}
	b, a, c = runPort(nil, fsFilter, false)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.Flowspec, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})

	// --- TSS: everything detours through the scrubbing center.
	scrubber := &mitigation.Scrubber{
		CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5,
	}
	var tssBenign, tssAttack, tssBenignOff, tssAttackOff float64
	for _, l := range makeLoads() {
		var atk, web float64
		for _, o := range l.attack {
			atk += o.Bytes
		}
		for _, o := range l.web {
			web += o.Bytes
		}
		r := scrubber.Scrub(atk, web, 1)
		tssBenign += r.CleanBenignBytes
		tssAttack += r.LeakedAttackBytes
		tssBenignOff += web
		tssAttackOff += atk
	}
	res.Rows = append(res.Rows, CompareRow{
		Technique:           mitigation.TSS,
		BenignDeliveredFrac: tssBenign / tssBenignOff,
		AttackResidualFrac:  tssAttack / tssAttackOff,
		CostPerHour:         scrubber.TotalCost * 3600 / float64(cfg.Ticks),
	})

	// --- Advanced Blackholing: the drop rule on the victim's egress
	// port, no cooperation needed.
	b, a, c = runPort([]*fabric.Rule{{ID: "advbh", Match: ntpMatch, Action: fabric.ActionDrop}}, nil, false)
	res.Rows = append(res.Rows, CompareRow{
		Technique: mitigation.AdvancedBlackholing, BenignDeliveredFrac: b, AttackResidualFrac: a, PortCongested: c,
	})
	return res
}

// Row returns the row for a technique.
func (r CompareResult) Row(t mitigation.Technique) CompareRow {
	for _, row := range r.Rows {
		if row.Technique == t {
			return row
		}
	}
	return CompareRow{}
}

// Format renders the comparison.
func (r CompareResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Quantitative Table-1 check: %.0f Mbps NTP attack + %.0f Mbps web into a %.0f Mbps port (honoring %.0f%%)\n",
		r.Cfg.AttackRateBps/1e6, r.Cfg.WebRateBps/1e6, r.Cfg.PortBps/1e6, r.Cfg.HonoringFraction*100)
	header := []string{"technique", "benign delivered", "attack residual", "port congested", "cost/h"}
	var rows [][]string
	for _, row := range r.Rows {
		cost := "-"
		if row.CostPerHour > 0 {
			cost = fmt.Sprintf("$%.0f", row.CostPerHour)
		}
		rows = append(rows, []string{
			row.Technique.String(),
			fmt.Sprintf("%5.1f%%", row.BenignDeliveredFrac*100),
			fmt.Sprintf("%5.1f%%", row.AttackResidualFrac*100),
			fmt.Sprintf("%v", row.PortCongested),
			cost,
		})
	}
	b.WriteString(FormatTable(header, rows))
	return b.String()
}

// CombinedTSSResult quantifies the Section 6 discussion: Advanced
// Blackholing as a pre-filter drastically reduces scrubbing cost
// without losing efficacy.
type CombinedTSSResult struct {
	TSSAloneCostPerHour  float64
	CombinedCostPerHour  float64
	TSSAloneBenignFrac   float64
	CombinedBenignFrac   float64
	SavingsFrac          float64
	SampleToScrubberMbps float64 // shaped telemetry feed to the scrubber
}

// CombinedTSS runs the same attack through (a) a scrubbing service alone
// and (b) Stellar dropping the known pattern with a 50 Mbps shaped
// sample forwarded to the scrubber for signature extraction.
func CombinedTSS(cfg CompareConfig) CombinedTSSResult {
	target := netip.MustParseAddr("100.10.10.10")
	rng := stats.NewRand(cfg.Seed)
	peers := traffic.MakePeers(cfg.Peers)
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers, cfg.AttackRateBps, 0, cfg.Ticks, rng)
	attack.RampTicks = 0
	web := traffic.NewWebService(target, peers[:5], cfg.WebRateBps, rng)

	scrubAll := &mitigation.Scrubber{CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5}
	scrubSample := &mitigation.Scrubber{CapacityBps: 10e9, DetectionRate: 0.995, FalsePositiveRate: 0.005, CostPerGB: 1.5}

	const sampleRateBps = 50e6
	ntpMatch := fabric.MatchAll()
	ntpMatch.Proto = netpkt.ProtoUDP
	ntpMatch.SrcPort = 123
	port := fabric.NewPort("victim", netpkt.MustParseMAC("02:00:00:00:00:01"), cfg.PortBps)
	// Stellar shapes the known pattern to a small sample; the sample is
	// what reaches the scrubber.
	if err := port.InstallRule(&fabric.Rule{ID: "sample", Match: ntpMatch,
		Action: fabric.ActionShape, ShapeRateBps: sampleRateBps}); err != nil {
		panic(err)
	}

	// The original loop drew from the stateful attack source twice per
	// tick — once to size the full-detour scrub, once for the port load.
	// Precompute both draws in that exact order so the engine run
	// replays the identical workload.
	atkSized := make([]float64, cfg.Ticks)
	webSized := make([]float64, cfg.Ticks)
	portLoads := &replaySource{ticks: make([][]fabric.Offer, cfg.Ticks)}
	for t := 0; t < cfg.Ticks; t++ {
		for _, o := range attack.Offers(t, 1) {
			atkSized[t] += o.Bytes
		}
		webOffers := web.Offers(t, 1)
		for _, o := range webOffers {
			webSized[t] += o.Bytes
		}
		portLoads.ticks[t] = append(attack.Offers(t, 1), webOffers...)
	}

	// (a) TSS alone: the whole load detours to the scrubber.
	var aloneBenign, aloneBenignOff float64
	for t := 0; t < cfg.Ticks; t++ {
		r := scrubAll.Scrub(atkSized[t], webSized[t], 1)
		aloneBenign += r.CleanBenignBytes
		aloneBenignOff += webSized[t]
	}

	// (b) Combined: Stellar's shaping leaves only the sample of the
	// attack; benign traffic flows directly, only the sample is
	// scrubbed (for telemetry/signatures). The port run goes through
	// the scenario engine; the victim monitor's per-bin accounting
	// replaces the hand-rolled DeliveredByFlow walk.
	fab := fabric.New()
	if err := fab.AddPort(port); err != nil {
		panic(err)
	}
	mon := flowmon.NewCollector()
	if _, err := engine.New(engine.Config{
		Driver: engine.NewSourcesDriver(
			[]engine.VictimSpec{{Port: "victim", Monitor: mon}},
			[][]engine.Source{{portLoads}}),
		DataPlane: portPlane{fab},
		Ticks:     cfg.Ticks,
		Dt:        1,
	}).Run(); err != nil {
		panic(err)
	}
	var combBenign, combBenignOff, sampleBytes float64
	for t := 0; t < cfg.Ticks; t++ {
		sampled := mon.SrcPortBytes(t, 123)
		combBenign += mon.TotalBytes(t) - sampled
		sampleBytes += sampled
		scrubSample.Scrub(sampled, 0, 1)
		combBenignOff += webSized[t]
	}
	hours := float64(cfg.Ticks) / 3600
	res := CombinedTSSResult{
		TSSAloneCostPerHour:  scrubAll.TotalCost / hours,
		CombinedCostPerHour:  scrubSample.TotalCost / hours,
		TSSAloneBenignFrac:   aloneBenign / aloneBenignOff,
		CombinedBenignFrac:   combBenign / combBenignOff,
		SampleToScrubberMbps: sampleBytes * 8 / float64(cfg.Ticks) / 1e6,
	}
	if res.TSSAloneCostPerHour > 0 {
		res.SavingsFrac = 1 - res.CombinedCostPerHour/res.TSSAloneCostPerHour
	}
	return res
}

// Format renders the combined-deployment economics.
func (r CombinedTSSResult) Format() string {
	var b strings.Builder
	b.WriteString("Section 6: combining Advanced Blackholing with traffic scrubbing\n")
	header := []string{"deployment", "benign delivered", "scrubbing cost/h"}
	rows := [][]string{
		{"TSS alone (full detour)", fmt.Sprintf("%5.1f%%", r.TSSAloneBenignFrac*100),
			fmt.Sprintf("$%.2f", r.TSSAloneCostPerHour)},
		{"Stellar pre-filter + TSS sample", fmt.Sprintf("%5.1f%%", r.CombinedBenignFrac*100),
			fmt.Sprintf("$%.2f", r.CombinedCostPerHour)},
	}
	b.WriteString(FormatTable(header, rows))
	fmt.Fprintf(&b, "\nscrubbing cost reduced by %.1f%%; scrubber still receives a %.0f Mbps attack sample for signature extraction\n",
		r.SavingsFrac*100, r.SampleToScrubberMbps)
	return b.String()
}
