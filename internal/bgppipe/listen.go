package bgppipe

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
)

// Listen is the server-side speaker stage: it accepts TCP connections,
// runs one BGP session per member, injects everything the members send
// as RX messages, and routes TX messages back to the addressed peer
// (or every established peer when the address is empty). It is the
// stage behind ixpd's -bgp-listen flag.
type Listen struct {
	// Session configures every accepted session (LocalAS, BGPID,
	// HoldTime...).
	Session bgpsession.Config
	// PeerName names an accepted peer from its OPEN; nil defaults to
	// "AS<asn>". Two live sessions resolving to the same name reject the
	// newcomer with a Cease NOTIFICATION (the route server keys RIB
	// state by peer name).
	PeerName func(open *bgp.Open, conn net.Conn) string

	ln   net.Listener
	pipe *Pipe

	mu       sync.Mutex
	sessions map[string]*bgpsession.Session
	stopped  bool
	wg       sync.WaitGroup
}

// NewListen creates a listen stage on an existing listener (use
// net.Listen("tcp", addr); an addr of ":0" picks a free port in tests).
func NewListen(ln net.Listener, cfg bgpsession.Config) *Listen {
	return &Listen{Session: cfg, ln: ln, sessions: make(map[string]*bgpsession.Session)}
}

// Addr returns the listener's address.
func (l *Listen) Addr() net.Addr { return l.ln.Addr() }

// Name implements Stage.
func (l *Listen) Name() string { return "listen:" + l.ln.Addr().String() }

// Attach implements Stage: registers the TX router.
func (l *Listen) Attach(p *Pipe) error {
	if l.ln == nil {
		return errors.New("no listener (use NewListen)")
	}
	l.pipe = p
	p.OnMsg(DirTX, func(m *Msg) bool {
		u := m.Update()
		if u == nil {
			return true
		}
		l.mu.Lock()
		var targets []*bgpsession.Session
		if m.Peer == "" {
			for _, s := range l.sessions {
				targets = append(targets, s)
			}
		} else if s, ok := l.sessions[m.Peer]; ok {
			targets = append(targets, s)
		}
		l.mu.Unlock()
		for _, s := range targets {
			// A failed write means the peer is going down; its PeerDown
			// on RX carries the terminal error.
			_ = s.SendUpdate(u)
		}
		return true
	})
	return nil
}

// Run implements Stage: the accept loop. It returns once the listener
// closes (Stop) and every member session has torn down.
func (l *Listen) Run() error {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			stopped := l.stopped
			l.mu.Unlock()
			l.wg.Wait()
			if stopped {
				return nil
			}
			return err
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.serve(conn)
		}()
	}
}

// serve runs one accepted session to completion, bridging it to the
// pipe exactly like a Speaker does.
func (l *Listen) serve(conn net.Conn) {
	var (
		sessMu sync.Mutex
		name   string
		peerAS uint32
		reject bool
	)
	var sess *bgpsession.Session
	sess = bgpsession.New(conn, l.Session, func(e bgpsession.Event) {
		switch {
		case e.Update != nil:
			sessMu.Lock()
			n, as, rej := name, peerAS, reject
			sessMu.Unlock()
			if rej {
				return
			}
			l.pipe.Send(DirRX, &Msg{Peer: n, PeerAS: as, BGP: e.Update})
		case e.State == bgpsession.StateEstablished:
			open := sess.PeerOpen()
			n := ""
			if l.PeerName != nil {
				n = l.PeerName(open, conn)
			}
			if n == "" {
				n = fmt.Sprintf("AS%d", open.AS)
			}
			l.mu.Lock()
			_, dup := l.sessions[n]
			if !dup {
				l.sessions[n] = sess
			}
			l.mu.Unlock()
			if dup {
				sessMu.Lock()
				reject = true
				sessMu.Unlock()
				_ = sess.Close()
				return
			}
			sessMu.Lock()
			name, peerAS = n, open.AS
			sessMu.Unlock()
			l.pipe.Send(DirRX, &Msg{Peer: n, PeerAS: open.AS, PeerIP: open.BGPID, BGP: open, Event: EventPeerUp})
		}
	})
	err := sess.Run()
	sessMu.Lock()
	n, as := name, peerAS
	sessMu.Unlock()
	if n != "" {
		l.mu.Lock()
		if l.sessions[n] == sess {
			delete(l.sessions, n)
		}
		l.mu.Unlock()
		l.pipe.Send(DirRX, &Msg{Peer: n, PeerAS: as, Event: EventPeerDown, Err: err})
	}
}

// Kick administratively closes the named peer's live session, if any —
// the server-side session-flap primitive (fault injection, operator
// tooling). The peer's PeerDown flows on RX as usual; a remote speaker
// with Reconnect enabled re-establishes and re-announces itself.
func (l *Listen) Kick(peer string) bool {
	l.mu.Lock()
	s := l.sessions[peer]
	l.mu.Unlock()
	if s == nil {
		return false
	}
	_ = s.Close()
	return true
}

// Stop implements Stage: closes the listener and every live session.
func (l *Listen) Stop() error {
	l.mu.Lock()
	l.stopped = true
	sessions := make([]*bgpsession.Session, 0, len(l.sessions))
	for _, s := range l.sessions {
		sessions = append(sessions, s)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, s := range sessions {
		_ = s.Close()
	}
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
