package bgppipe

import (
	"errors"
	"io"
	"sync/atomic"
)

// RecordSource yields replay records in stream order; io.EOF ends the
// stream. MRTScanner and RISScanner implement it.
type RecordSource interface {
	Next() (Record, error)
}

// Replay is the stage form of a record source: it pushes every record
// onto the RX line, announcing each peer with EventPeerUp on first
// sight. A replayed capture therefore drives an RSFeed exactly like a
// set of live Speaker sessions would — except that the capture ending
// is not a session loss, so by default the peers stay up and the
// replayed RIB persists after EOF.
type Replay struct {
	// Source yields the records. Required.
	Source RecordSource
	// Label names the stage ("mrt", "ris-live"); empty means "replay".
	Label string
	// RetirePeers, when set, sends EventPeerDown for every seen peer (in
	// first-seen order) once the stream ends — an RSFeed then withdraws
	// all replayed routes, as if the members had disconnected.
	RetirePeers bool

	pipe    *Pipe
	stopped atomic.Bool
}

// NewMRTReplay builds a replay stage over an MRT dump stream.
func NewMRTReplay(r io.Reader) *Replay {
	return &Replay{Source: NewMRTScanner(r), Label: "mrt"}
}

// NewRISReplay builds a replay stage over a RIS-live JSON stream.
func NewRISReplay(r io.Reader) *Replay {
	return &Replay{Source: NewRISScanner(r), Label: "ris-live"}
}

// Name implements Stage.
func (r *Replay) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "replay"
}

// Attach implements Stage.
func (r *Replay) Attach(p *Pipe) error {
	if r.Source == nil {
		return errors.New("Replay.Source is nil")
	}
	r.pipe = p
	return nil
}

// Run implements Stage: stream the source dry.
func (r *Replay) Run() error {
	var order []string
	seen := make(map[string]bool)
	defer func() {
		if !r.RetirePeers {
			return
		}
		for _, peer := range order {
			r.pipe.Send(DirRX, &Msg{Peer: peer, Event: EventPeerDown})
		}
	}()
	for !r.stopped.Load() {
		rec, err := r.Source.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if !seen[rec.Peer] {
			seen[rec.Peer] = true
			order = append(order, rec.Peer)
			if err := r.pipe.Send(DirRX, &Msg{
				Peer: rec.Peer, PeerAS: rec.PeerAS, PeerIP: rec.PeerIP,
				Time: rec.Time, Event: EventPeerUp,
			}); err != nil {
				return err
			}
		}
		if err := r.pipe.Send(DirRX, &Msg{
			Peer: rec.Peer, PeerAS: rec.PeerAS, PeerIP: rec.PeerIP,
			Time: rec.Time, BGP: rec.Msg,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stop implements Stage: the next Source record is the last delivered.
func (r *Replay) Stop() error {
	r.stopped.Store(true)
	return nil
}
