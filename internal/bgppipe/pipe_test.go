package bgppipe

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
	"stellar/internal/routeserver"
)

// srcStage pushes n RX messages and returns.
type srcStage struct {
	n    int
	pipe *Pipe
}

func (s *srcStage) Name() string         { return "src" }
func (s *srcStage) Attach(p *Pipe) error { s.pipe = p; return nil }
func (s *srcStage) Stop() error          { return nil }
func (s *srcStage) Run() error {
	for i := 0; i < s.n; i++ {
		s.pipe.Send(DirRX, &Msg{Peer: "src", BGP: &bgp.Keepalive{}})
	}
	return nil
}

// TestPipeOrderingAndShutdown pins the pipe contract: handlers run in
// registration order, a false return drops the message from later
// handlers, RX handlers may produce TX messages, and Wait returns only
// after both lines drain — including TX messages produced while the RX
// line was shutting down.
func TestPipeOrderingAndShutdown(t *testing.T) {
	const n = 100
	p := New(Options{Buffer: 4})
	p.Attach(&srcStage{n: n})

	var mu sync.Mutex
	var firstSeen, secondSeen []uint64
	var txSeen []uint64
	p.OnMsg(DirRX, func(m *Msg) bool {
		mu.Lock()
		firstSeen = append(firstSeen, m.Seq)
		mu.Unlock()
		return m.Seq%2 == 0 // drop odd messages from later handlers
	})
	p.OnMsg(DirRX, func(m *Msg) bool {
		mu.Lock()
		secondSeen = append(secondSeen, m.Seq)
		mu.Unlock()
		p.Send(DirTX, &Msg{Peer: m.Peer, BGP: m.BGP})
		return true
	})
	p.OnMsg(DirTX, func(m *Msg) bool {
		mu.Lock()
		txSeen = append(txSeen, m.Seq)
		mu.Unlock()
		return true
	})

	p.Start()
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	if len(firstSeen) != n {
		t.Fatalf("first handler saw %d messages, want %d", len(firstSeen), n)
	}
	for i := 1; i < len(firstSeen); i++ {
		if firstSeen[i] <= firstSeen[i-1] {
			t.Fatalf("RX out of order at %d: %v <= %v", i, firstSeen[i], firstSeen[i-1])
		}
	}
	if len(secondSeen) != n/2 {
		t.Fatalf("second handler saw %d messages, want %d (odd seqs dropped)", len(secondSeen), n/2)
	}
	for _, seq := range secondSeen {
		if seq%2 != 0 {
			t.Fatalf("dropped message leaked to second handler: seq %d", seq)
		}
	}
	// Every TX message produced by the RX chain was delivered before
	// Wait returned.
	if len(txSeen) != n/2 {
		t.Fatalf("TX handler saw %d messages, want %d", len(txSeen), n/2)
	}
}

// TestPipeOnMsgAfterStartPanics pins that the handler chain is frozen
// once the lines are running.
func TestPipeOnMsgAfterStartPanics(t *testing.T) {
	p := New(Options{})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("OnMsg after Start did not panic")
		}
		p.Stop()
		_ = p.Wait()
	}()
	p.OnMsg(DirRX, func(*Msg) bool { return true })
}

// clientPipe wires a Dial speaker plus recording handlers into a pipe,
// the member's side of the e2e test below.
type clientPipe struct {
	pipe    *Pipe
	speaker *Speaker
	up      chan *Msg
	updates chan *bgp.Update
}

func dialClient(t *testing.T, addr string, asn uint32, id string) *clientPipe {
	t.Helper()
	sp, err := Dial(addr, bgpsession.Config{
		LocalAS: asn, BGPID: netip.MustParseAddr(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &clientPipe{
		pipe:    New(Options{}),
		speaker: sp,
		up:      make(chan *Msg, 1),
		updates: make(chan *bgp.Update, 16),
	}
	c.pipe.OnMsg(DirRX, func(m *Msg) bool {
		switch {
		case m.Event == EventPeerUp:
			select {
			case c.up <- m:
			default:
			}
		case m.Update() != nil:
			c.updates <- m.Update()
		}
		return true
	})
	c.pipe.Attach(sp)
	c.pipe.Start()
	select {
	case <-c.up:
	case <-time.After(3 * time.Second):
		t.Fatalf("AS%d: no PeerUp within deadline", asn)
	}
	return c
}

func (c *clientPipe) close(t *testing.T) {
	t.Helper()
	c.pipe.Stop()
	if err := c.pipe.Wait(); err != nil {
		t.Errorf("client pipe: %v", err)
	}
}

// TestListenSpeakerEndToEnd runs the full wire pipeline over real TCP:
// a Listen+RSFeed server pipe and two Dial-speaker member pipes. One
// member announces a prefix; the route server applies it and the other
// member receives the export — all through pipe stages, no Handler
// callbacks.
func TestListenSpeakerEndToEnd(t *testing.T) {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := New(Options{})
	lst := NewListen(ln, bgpsession.Config{
		LocalAS: 6695, BGPID: netip.MustParseAddr("80.81.192.1"),
	})
	server.Attach(lst)
	server.Attach(&RSFeed{RS: rs})
	server.Start()
	defer func() {
		server.Stop()
		if err := server.Wait(); err != nil {
			t.Errorf("server pipe: %v", err)
		}
	}()

	addr := ln.Addr().String()
	observer := dialClient(t, addr, 64513, "10.0.0.13")
	defer observer.close(t)
	announcer := dialClient(t, addr, 64512, "10.0.0.12")
	defer announcer.close(t)

	prefix := netip.MustParsePrefix("203.0.113.0/24")
	announcer.pipe.Send(DirTX, &Msg{BGP: &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("80.81.192.12"),
		},
		NLRI: []bgp.PathPrefix{{Prefix: prefix}},
	}})

	select {
	case u := <-observer.updates:
		if len(u.NLRI) != 1 || u.NLRI[0].Prefix != prefix {
			t.Fatalf("export: %+v", u)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("observer received no export")
	}

	glass := rs.Glass(prefix)
	if len(glass) != 1 || glass[0].Peer != "AS64512" || !glass[0].Best {
		t.Fatalf("looking glass: %+v", glass)
	}
}
