package bgppipe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"stellar/internal/bgp"
)

// RISScanner decodes a stream of RIS-live-shaped JSON messages (one
// envelope per line, as delivered by RIPE's ris-live websocket firehose
// or a saved capture of it) into Records carrying bgp.Update messages.
//
// One envelope may group announcements under several next hops; each
// group becomes its own UPDATE (BGP carries one NEXT_HOP per message),
// with the envelope's withdrawals riding the first emitted record.
// Non-UPDATE envelopes (peer state, keepalives) are skipped.
type RISScanner struct {
	sc      *bufio.Scanner
	pending []Record
}

// risMaxLine bounds one JSON envelope.
const risMaxLine = 1 << 20

// NewRISScanner scans the newline-delimited JSON stream r.
func NewRISScanner(r io.Reader) *RISScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), risMaxLine)
	return &RISScanner{sc: sc}
}

// risEnvelope is the outer {"type":"ris_message","data":{...}} framing.
type risEnvelope struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// risData is the fields of one ris_message we replay.
type risData struct {
	Timestamp     float64           `json:"timestamp"`
	Peer          string            `json:"peer"`
	PeerASN       string            `json:"peer_asn"`
	Type          string            `json:"type"`
	Path          []risPathElem     `json:"path"`
	Community     [][2]uint16       `json:"community"`
	Origin        string            `json:"origin"`
	MED           *uint32           `json:"med"`
	Announcements []risAnnouncement `json:"announcements"`
	Withdrawals   []string          `json:"withdrawals"`
}

type risAnnouncement struct {
	NextHop  string   `json:"next_hop"`
	Prefixes []string `json:"prefixes"`
}

// risPathElem is one AS-path element: a plain ASN, or an array of ASNs
// for an AS_SET.
type risPathElem struct {
	asn uint32
	set []uint32
}

func (e *risPathElem) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '[' {
		return json.Unmarshal(b, &e.set)
	}
	return json.Unmarshal(b, &e.asn)
}

// Next returns the next replayable record, io.EOF at end of stream.
func (s *RISScanner) Next() (Record, error) {
	for {
		if len(s.pending) > 0 {
			rec := s.pending[0]
			s.pending = s.pending[1:]
			return rec, nil
		}
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		var env risEnvelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			return Record{}, fmt.Errorf("bgppipe: RIS envelope: %w", err)
		}
		if env.Type != "ris_message" {
			continue
		}
		var d risData
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return Record{}, fmt.Errorf("bgppipe: RIS data: %w", err)
		}
		if d.Type != "UPDATE" {
			continue
		}
		recs, err := risRecords(&d)
		if err != nil {
			return Record{}, err
		}
		if len(recs) == 0 {
			continue
		}
		s.pending = recs
	}
}

// risRecords converts one UPDATE envelope into its records.
func risRecords(d *risData) ([]Record, error) {
	peerAS64, err := strconv.ParseUint(d.PeerASN, 10, 32)
	if err != nil {
		return nil, fmt.Errorf("bgppipe: RIS peer_asn %q: %w", d.PeerASN, err)
	}
	peerAS := uint32(peerAS64)
	var peerIP netip.Addr
	if d.Peer != "" {
		peerIP, err = netip.ParseAddr(d.Peer)
		if err != nil {
			return nil, fmt.Errorf("bgppipe: RIS peer %q: %w", d.Peer, err)
		}
	}
	sec, frac := int64(d.Timestamp), d.Timestamp-float64(int64(d.Timestamp))
	t := time.Unix(sec, int64(frac*1e9)).UTC()

	base := bgp.PathAttrs{Origin: risOrigin(d.Origin), MED: d.MED}
	for _, e := range d.Path {
		if e.set != nil {
			base.ASPath = append(base.ASPath, bgp.ASPathSegment{Type: bgp.ASSet, ASNs: e.set})
			continue
		}
		if n := len(base.ASPath); n > 0 && base.ASPath[n-1].Type == bgp.ASSequence {
			base.ASPath[n-1].ASNs = append(base.ASPath[n-1].ASNs, e.asn)
		} else {
			base.ASPath = append(base.ASPath, bgp.ASPathSegment{Type: bgp.ASSequence, ASNs: []uint32{e.asn}})
		}
	}
	for _, c := range d.Community {
		base.Communities = append(base.Communities, bgp.MakeCommunity(c[0], c[1]))
	}

	var w4, w6 []bgp.PathPrefix
	for _, p := range d.Withdrawals {
		pfx, err := parseRISPrefix(p)
		if err != nil {
			return nil, err
		}
		if pfx.Addr().Is4() {
			w4 = append(w4, bgp.PathPrefix{Prefix: pfx})
		} else {
			w6 = append(w6, bgp.PathPrefix{Prefix: pfx})
		}
	}

	var updates []*bgp.Update
	for _, a := range d.Announcements {
		nh, err := netip.ParseAddr(a.NextHop)
		if err != nil {
			return nil, fmt.Errorf("bgppipe: RIS next_hop %q: %w", a.NextHop, err)
		}
		var n4, n6 []bgp.PathPrefix
		for _, p := range a.Prefixes {
			pfx, err := parseRISPrefix(p)
			if err != nil {
				return nil, err
			}
			if pfx.Addr().Is4() {
				n4 = append(n4, bgp.PathPrefix{Prefix: pfx})
			} else {
				n6 = append(n6, bgp.PathPrefix{Prefix: pfx})
			}
		}
		if len(n4) > 0 {
			u := &bgp.Update{Attrs: base.Clone(), NLRI: n4}
			if !nh.Is4() {
				return nil, fmt.Errorf("bgppipe: RIS next_hop %v for IPv4 prefixes", nh)
			}
			u.Attrs.NextHop = nh
			updates = append(updates, u)
		}
		if len(n6) > 0 {
			u := &bgp.Update{Attrs: base.Clone()}
			u.Attrs.MPReach = &bgp.MPReach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast, NextHop: nh, NLRI: n6}
			updates = append(updates, u)
		}
	}
	if len(updates) == 0 && (len(w4) > 0 || len(w6) > 0) {
		updates = append(updates, &bgp.Update{})
	}
	if len(updates) > 0 && (len(w4) > 0 || len(w6) > 0) {
		u := updates[0]
		u.Withdrawn = w4
		if len(w6) > 0 {
			u.Attrs.MPUnreach = &bgp.MPUnreach{AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast, NLRI: w6}
		}
	}

	recs := make([]Record, 0, len(updates))
	for _, u := range updates {
		recs = append(recs, Record{
			Time:   t,
			Peer:   fmt.Sprintf("AS%d", peerAS),
			PeerAS: peerAS,
			PeerIP: peerIP,
			Msg:    u,
		})
	}
	return recs, nil
}

// parseRISPrefix parses and mask-normalizes one prefix string.
func parseRISPrefix(s string) (netip.Prefix, error) {
	pfx, err := netip.ParsePrefix(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("bgppipe: RIS prefix %q: %w", s, err)
	}
	return pfx.Masked(), nil
}

// risOrigin maps RIS origin strings onto the ORIGIN attribute.
func risOrigin(s string) bgp.Origin {
	switch strings.ToLower(s) {
	case "igp":
		return bgp.OriginIGP
	case "egp":
		return bgp.OriginEGP
	default:
		return bgp.OriginIncomplete
	}
}
