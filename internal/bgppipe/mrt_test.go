package bgppipe

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
)

// mrtFixture is a small two-peer capture with best-path competition,
// a withdrawal, and an IPv6 announcement — enough routing churn that a
// wire/direct divergence would change the resulting RIB.
type mrtFixtureRec struct {
	peerAS uint32
	peerIP netip.Addr
	msg    bgp.Message
}

func mrtFixture() []mrtFixtureRec {
	attrs := func(path []uint32, nh string) bgp.PathAttrs {
		return bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: path}},
			NextHop: netip.MustParseAddr(nh),
		}
	}
	med := uint32(50)
	a1 := attrs([]uint32{65001}, "80.81.192.10")
	a1.Communities = []bgp.Community{bgp.MakeCommunity(65001, 100)}
	a2 := attrs([]uint32{65002, 65010}, "80.81.192.20")
	a2.MED = &med
	return []mrtFixtureRec{
		{65001, netip.MustParseAddr("80.81.192.10"), &bgp.Update{
			Attrs: a1,
			NLRI: []bgp.PathPrefix{
				{Prefix: netip.MustParsePrefix("203.0.113.0/24")},
				{Prefix: netip.MustParsePrefix("198.51.100.0/24")},
			},
		}},
		{65002, netip.MustParseAddr("80.81.192.20"), &bgp.Update{
			Attrs: a2,
			NLRI:  []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("203.0.113.0/24")}},
		}},
		{65002, netip.MustParseAddr("80.81.192.20"), &bgp.Update{
			Attrs: bgp.PathAttrs{
				Origin: bgp.OriginIGP,
				ASPath: []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65002}}},
				MPReach: &bgp.MPReach{
					AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
					NextHop: netip.MustParseAddr("2001:db8::20"),
					NLRI:    []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("2001:db8:100::/48")}},
				},
			},
		}},
		{65001, netip.MustParseAddr("80.81.192.10"), &bgp.Update{
			Withdrawn: []bgp.PathPrefix{{Prefix: netip.MustParsePrefix("198.51.100.0/24")}},
		}},
		{65001, netip.MustParseAddr("80.81.192.10"), &bgp.Keepalive{}},
	}
}

func mrtFixtureDump(t testing.TB) []byte {
	t.Helper()
	localIP := netip.MustParseAddr("80.81.192.1")
	base := time.Unix(1700000000, 0)
	var dump []byte
	var err error
	for i, r := range mrtFixture() {
		dump, err = AppendMRTMessage(dump, base.Add(time.Duration(i)*time.Second),
			r.peerAS, 6695, r.peerIP, localIP, r.msg, nil)
		if err != nil {
			t.Fatalf("AppendMRTMessage[%d]: %v", i, err)
		}
	}
	return dump
}

// TestMRTScannerRoundtrip writes messages with AppendMRTMessage and
// reads them back, checking attribution and payload survive the trip.
func TestMRTScannerRoundtrip(t *testing.T) {
	recs := mrtFixture()
	sc := NewMRTScanner(bytes.NewReader(mrtFixtureDump(t)))
	for i, want := range recs {
		got, err := sc.Next()
		if err != nil {
			t.Fatalf("Next[%d]: %v", i, err)
		}
		if got.PeerAS != want.peerAS || got.PeerIP != want.peerIP {
			t.Fatalf("record %d attribution: %+v", i, got)
		}
		if got.Peer != fmt.Sprintf("AS%d", want.peerAS) {
			t.Fatalf("record %d peer name: %q", i, got.Peer)
		}
		if got.Time != time.Unix(1700000000+int64(i), 0).UTC() {
			t.Fatalf("record %d time: %v", i, got.Time)
		}
		wantWire, err := bgp.Marshal(want.msg, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotWire, err := bgp.Marshal(got.Msg, nil)
		if err != nil {
			t.Fatalf("record %d remarshal: %v", i, err)
		}
		if !bytes.Equal(wantWire, gotWire) {
			t.Fatalf("record %d payload changed on the wire trip:\n got %x\nwant %x", i, gotWire, wantWire)
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("trailing Next: %v, want io.EOF", err)
	}
}

// ribDump renders a route server's RIB canonically: every path key in
// sorted order with its peer AS, best-path marker, and the marshaled
// attribute bytes. Byte-identical dumps mean identical routing state.
func ribDump(t testing.TB, rs *routeserver.RouteServer) string {
	t.Helper()
	snap := rs.Table().Snapshot()
	keys := make([]rib.PathKey, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var b strings.Builder
	for _, k := range keys {
		p := snap[k]
		best := rs.Table().Best(k.Prefix)
		wire, err := p.Attrs.MarshalAttrs(nil)
		if err != nil {
			t.Fatalf("marshal attrs for %v: %v", k, err)
		}
		fmt.Fprintf(&b, "%v as%d best=%v attrs=%x\n",
			k, p.PeerAS, best != nil && best.Key == k, wire)
	}
	return b.String()
}

// TestMRTReplayEquivalence pins the deprecation contract for the old
// Handler wiring: feeding a capture through the wire pipeline (MRT
// replay stage -> pipe -> RSFeed) produces a byte-identical RIB —
// same paths, same best-path selection, same marshaled attributes — as
// handing the route server the same updates directly through
// HandleUpdateBatch.
func TestMRTReplayEquivalence(t *testing.T) {
	newRS := func() *routeserver.RouteServer {
		return routeserver.New(routeserver.Config{
			ASN:              6695,
			BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		})
	}

	// Wire path: replay the dump through the pipe.
	rsWire := newRS()
	pipe := New(Options{})
	pipe.Attach(NewMRTReplay(bytes.NewReader(mrtFixtureDump(t))))
	pipe.Attach(&RSFeed{RS: rsWire})
	pipe.Start()
	if err := pipe.Wait(); err != nil {
		t.Fatalf("replay pipe: %v", err)
	}

	// Direct path: same updates straight into HandleUpdateBatch.
	rsDirect := newRS()
	for _, r := range mrtFixture() {
		peer := fmt.Sprintf("AS%d", r.peerAS)
		u, ok := r.msg.(*bgp.Update)
		if !ok {
			continue
		}
		err := rsDirect.AddPeer(routeserver.PeerConfig{Name: peer, ASN: r.peerAS})
		if err != nil && err != routeserver.ErrDuplicatePeer {
			t.Fatal(err)
		}
		if _, _, err := rsDirect.HandleUpdateBatch(peer, u); err != nil {
			t.Fatal(err)
		}
	}

	wire, direct := ribDump(t, rsWire), ribDump(t, rsDirect)
	if wire != direct {
		t.Fatalf("wire replay diverged from direct feed:\n--- wire ---\n%s--- direct ---\n%s", wire, direct)
	}
	if wire == "" {
		t.Fatal("empty RIB: the fixture applied nothing")
	}
}

// TestMRTReplayRetirePeers pins the opt-in teardown: with RetirePeers
// the stage sends PeerDown for every replayed peer at EOF and the
// RSFeed withdraws everything the capture installed.
func TestMRTReplayRetirePeers(t *testing.T) {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	rep := NewMRTReplay(bytes.NewReader(mrtFixtureDump(t)))
	rep.RetirePeers = true
	pipe := New(Options{})
	pipe.Attach(rep)
	pipe.Attach(&RSFeed{RS: rs})
	pipe.Start()
	if err := pipe.Wait(); err != nil {
		t.Fatalf("replay pipe: %v", err)
	}
	if n := rs.Table().Len(); n != 0 {
		t.Fatalf("RIB holds %d paths after peer retirement, want 0", n)
	}
}

// FuzzMRTScanner throws mutated MRT bytes at the scanner: it must never
// panic, and every record it does yield must carry a remarshalable
// message.
func FuzzMRTScanner(f *testing.F) {
	f.Add(mrtFixtureDump(f))
	dump := mrtFixtureDump(f)
	f.Add(dump[:len(dump)/2]) // truncated mid-record
	f.Add(dump[:13])          // truncated header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewMRTScanner(bytes.NewReader(data))
		for i := 0; i < 1<<16; i++ {
			rec, err := sc.Next()
			if err != nil {
				return
			}
			if rec.Msg == nil {
				t.Fatal("record with nil message")
			}
			if _, err := bgp.Marshal(rec.Msg, nil); err != nil {
				t.Fatalf("scanner yielded unmarshalable message: %v", err)
			}
		}
	})
}
