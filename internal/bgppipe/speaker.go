package bgppipe

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
)

// Speaker terminates one BGP session on the pipe: it runs a
// bgpsession.Session over the supplied transport, injecting the peer's
// UPDATEs (and lifecycle transitions) as RX messages and writing TX
// messages addressed to the peer back onto the wire.
//
// A Speaker is the wire end of the pipe — combined with an RSFeed stage
// it replaces the bgpsession.Handler callback wiring: the handshake,
// keepalives and hold-timer logic stay in bgpsession, but routing
// content flows through the pipe where replay stages and the route
// server feed share one stream.
type Speaker struct {
	// Peer names the session on the pipe. Empty: derived from the peer's
	// OPEN as "AS<asn>" once Established.
	Peer string
	// Session configures the underlying bgpsession endpoint.
	Session bgpsession.Config
	// Reconnect re-establishes the transport after a session dies, with
	// exponential backoff. It needs a redial function — Dial installs
	// one automatically; NewSpeaker callers set Redial themselves.
	Reconnect Reconnect
	// Redial produces a fresh transport for a reconnect attempt. nil
	// disables reconnection regardless of Reconnect.Enabled.
	Redial func() (net.Conn, error)

	conn net.Conn
	pipe *Pipe

	mu      sync.Mutex
	sess    *bgpsession.Session
	name    string // resolved peer name
	stopped bool
	stopCh  chan struct{}
}

// Reconnect is a Speaker's auto-reconnect policy.
type Reconnect struct {
	// Enabled turns reconnection on (Redial must also be set).
	Enabled bool
	// MaxAttempts bounds consecutive failed cycles before the stage
	// gives up (a cycle that reaches Established resets the count).
	// 0 means retry forever, until Stop.
	MaxAttempts int
	// BaseDelay is the wait before the first reconnect (default 100ms);
	// attempt k waits min(MaxDelay, BaseDelay*2^(k-1)).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
}

func (r Reconnect) delay(attempt int) time.Duration {
	base, max := r.BaseDelay, r.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// NewSpeaker creates a speaker stage over an established transport
// (a dialed TCP connection, an accepted one, or a net.Pipe end).
func NewSpeaker(conn net.Conn, cfg bgpsession.Config) *Speaker {
	return &Speaker{Session: cfg, conn: conn, stopCh: make(chan struct{})}
}

// Dial connects to addr over TCP and returns a speaker for the
// resulting transport — the bgppipe "connect" stage. The speaker keeps
// a redial function for addr, so enabling Reconnect on the returned
// speaker makes it re-establish dropped sessions automatically.
func Dial(addr string, cfg bgpsession.Config) (*Speaker, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := NewSpeaker(conn, cfg)
	s.Redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return s, nil
}

// Name implements Stage.
func (s *Speaker) Name() string {
	if s.Peer != "" {
		return "speaker:" + s.Peer
	}
	return "speaker"
}

// Attach implements Stage: it registers the TX handler writing exports
// owed to this peer back onto the wire.
func (s *Speaker) Attach(p *Pipe) error {
	if s.conn == nil {
		return errors.New("no transport (use NewSpeaker or Dial)")
	}
	s.pipe = p
	p.OnMsg(DirTX, func(m *Msg) bool {
		u := m.Update()
		if u == nil {
			return true
		}
		s.mu.Lock()
		sess, name := s.sess, s.name
		s.mu.Unlock()
		if sess == nil || (m.Peer != "" && m.Peer != name) {
			return true // not up yet, or addressed elsewhere
		}
		// Errors here mean the session is down (or downing); the
		// resulting PeerDown on RX carries the terminal error.
		_ = sess.SendUpdate(u)
		return true
	})
	return nil
}

// Run implements Stage: it drives the session to completion — and, with
// Reconnect enabled, redials and runs fresh sessions until Stop or the
// attempt budget runs out. Session failures are not stage failures —
// they surface as the EventPeerDown message's Err, mirroring how a
// route server treats a flapping peer; each re-established session
// emits a fresh EventPeerUp (pair with RSFeed.Resync for full-table
// resynchronization after the flap).
func (s *Speaker) Run() error {
	attempt := 0
	for {
		established := s.runOnce()
		if established {
			attempt = 0
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped || !s.Reconnect.Enabled || s.Redial == nil {
			return nil
		}
		attempt++
		if max := s.Reconnect.MaxAttempts; max > 0 && attempt > max {
			return nil
		}
		select {
		case <-s.stopCh:
			return nil
		case <-time.After(s.Reconnect.delay(attempt)):
		}
		conn, err := s.Redial()
		if err != nil {
			continue // next cycle backs off longer
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conn = conn
		s.mu.Unlock()
	}
}

// runOnce drives one session over the current transport and reports
// whether it reached Established.
func (s *Speaker) runOnce() bool {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	// The handler runs on the session's goroutines, serialized by
	// bgpsession; it only forwards content events. PeerDown is emitted
	// below after Run returns, so every Send precedes this Run's return
	// no matter which goroutine wins the session-close race.
	sess := bgpsession.New(s.conn, s.Session, func(e bgpsession.Event) {
		switch {
		case e.Update != nil:
			s.mu.Lock()
			name := s.name
			s.mu.Unlock()
			s.pipe.Send(DirRX, &Msg{Peer: name, PeerAS: s.peerAS(), BGP: e.Update})
		case e.State == bgpsession.StateEstablished:
			open := s.sessionOpen()
			name := s.Peer
			if name == "" && open != nil {
				name = fmt.Sprintf("AS%d", open.AS)
			}
			s.mu.Lock()
			s.name = name
			s.mu.Unlock()
			m := &Msg{Peer: name, Event: EventPeerUp}
			if open != nil {
				m.PeerAS = open.AS
				m.PeerIP = open.BGPID
				m.BGP = open
			}
			s.pipe.Send(DirRX, m)
		}
	})
	s.sess = sess
	s.mu.Unlock()

	err := sess.Run()
	s.mu.Lock()
	name, up := s.name, s.name != ""
	s.sess = nil
	s.name = "" // the next session (reconnect) announces itself afresh
	s.mu.Unlock()
	if up {
		s.pipe.Send(DirRX, &Msg{Peer: name, PeerAS: s.peerASOf(sess), Event: EventPeerDown, Err: err})
	}
	return up
}

func (s *Speaker) sessionOpen() *bgp.Open {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	if sess == nil {
		return nil
	}
	return sess.PeerOpen()
}

func (s *Speaker) peerAS() uint32 {
	if open := s.sessionOpen(); open != nil {
		return open.AS
	}
	return 0
}

func (s *Speaker) peerASOf(sess *bgpsession.Session) uint32 {
	if open := sess.PeerOpen(); open != nil {
		return open.AS
	}
	return 0
}

// Stop implements Stage: it closes the session (administrative
// shutdown), cancels any reconnect backoff, and unblocks Run.
func (s *Speaker) Stop() error {
	s.mu.Lock()
	already := s.stopped
	s.stopped = true
	sess := s.sess
	s.mu.Unlock()
	if !already && s.stopCh != nil {
		close(s.stopCh)
	}
	if sess != nil {
		return sess.Close()
	}
	if s.conn != nil {
		_ = s.conn.Close()
	}
	return nil
}
