package bgppipe

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
)

// Speaker terminates one BGP session on the pipe: it runs a
// bgpsession.Session over the supplied transport, injecting the peer's
// UPDATEs (and lifecycle transitions) as RX messages and writing TX
// messages addressed to the peer back onto the wire.
//
// A Speaker is the wire end of the pipe — combined with an RSFeed stage
// it replaces the bgpsession.Handler callback wiring: the handshake,
// keepalives and hold-timer logic stay in bgpsession, but routing
// content flows through the pipe where replay stages and the route
// server feed share one stream.
type Speaker struct {
	// Peer names the session on the pipe. Empty: derived from the peer's
	// OPEN as "AS<asn>" once Established.
	Peer string
	// Session configures the underlying bgpsession endpoint.
	Session bgpsession.Config

	conn net.Conn
	pipe *Pipe

	mu      sync.Mutex
	sess    *bgpsession.Session
	name    string // resolved peer name
	stopped bool
}

// NewSpeaker creates a speaker stage over an established transport
// (a dialed TCP connection, an accepted one, or a net.Pipe end).
func NewSpeaker(conn net.Conn, cfg bgpsession.Config) *Speaker {
	return &Speaker{Session: cfg, conn: conn}
}

// Dial connects to addr over TCP and returns a speaker for the
// resulting transport — the bgppipe "connect" stage.
func Dial(addr string, cfg bgpsession.Config) (*Speaker, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSpeaker(conn, cfg), nil
}

// Name implements Stage.
func (s *Speaker) Name() string {
	if s.Peer != "" {
		return "speaker:" + s.Peer
	}
	return "speaker"
}

// Attach implements Stage: it registers the TX handler writing exports
// owed to this peer back onto the wire.
func (s *Speaker) Attach(p *Pipe) error {
	if s.conn == nil {
		return errors.New("no transport (use NewSpeaker or Dial)")
	}
	s.pipe = p
	p.OnMsg(DirTX, func(m *Msg) bool {
		u := m.Update()
		if u == nil {
			return true
		}
		s.mu.Lock()
		sess, name := s.sess, s.name
		s.mu.Unlock()
		if sess == nil || (m.Peer != "" && m.Peer != name) {
			return true // not up yet, or addressed elsewhere
		}
		// Errors here mean the session is down (or downing); the
		// resulting PeerDown on RX carries the terminal error.
		_ = sess.SendUpdate(u)
		return true
	})
	return nil
}

// Run implements Stage: it drives the session to completion. Session
// failures are not stage failures — they surface as the EventPeerDown
// message's Err, mirroring how a route server treats a flapping peer.
func (s *Speaker) Run() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	// The handler runs on the session's goroutines, serialized by
	// bgpsession; it only forwards content events. PeerDown is emitted
	// below after Run returns, so every Send precedes this Run's return
	// no matter which goroutine wins the session-close race.
	sess := bgpsession.New(s.conn, s.Session, func(e bgpsession.Event) {
		switch {
		case e.Update != nil:
			s.mu.Lock()
			name := s.name
			s.mu.Unlock()
			s.pipe.Send(DirRX, &Msg{Peer: name, PeerAS: s.peerAS(), BGP: e.Update})
		case e.State == bgpsession.StateEstablished:
			open := s.sessionOpen()
			name := s.Peer
			if name == "" && open != nil {
				name = fmt.Sprintf("AS%d", open.AS)
			}
			s.mu.Lock()
			s.name = name
			s.mu.Unlock()
			m := &Msg{Peer: name, Event: EventPeerUp}
			if open != nil {
				m.PeerAS = open.AS
				m.PeerIP = open.BGPID
				m.BGP = open
			}
			s.pipe.Send(DirRX, m)
		}
	})
	s.sess = sess
	s.mu.Unlock()

	err := sess.Run()
	s.mu.Lock()
	name, up := s.name, s.name != ""
	s.sess = nil
	s.mu.Unlock()
	if up {
		s.pipe.Send(DirRX, &Msg{Peer: name, PeerAS: s.peerASOf(sess), Event: EventPeerDown, Err: err})
	}
	return nil
}

func (s *Speaker) sessionOpen() *bgp.Open {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	if sess == nil {
		return nil
	}
	return sess.PeerOpen()
}

func (s *Speaker) peerAS() uint32 {
	if open := s.sessionOpen(); open != nil {
		return open.AS
	}
	return 0
}

func (s *Speaker) peerASOf(sess *bgpsession.Session) uint32 {
	if open := sess.PeerOpen(); open != nil {
		return open.AS
	}
	return 0
}

// Stop implements Stage: it closes the session (administrative
// shutdown), unblocking Run.
func (s *Speaker) Stop() error {
	s.mu.Lock()
	s.stopped = true
	sess := s.sess
	s.mu.Unlock()
	if sess != nil {
		return sess.Close()
	}
	if s.conn != nil {
		_ = s.conn.Close()
	}
	return nil
}
