package bgppipe

import (
	"errors"
	"net/netip"

	"stellar/internal/bgp"
	"stellar/internal/routeserver"
)

// RSFeed bridges the pipe to a routeserver.RouteServer: every RX UPDATE
// is applied with HandleUpdateBatch, and the batched exports the route
// server owes other members come back out as TX messages addressed per
// peer. Peer lifecycle events auto-register members (AddPeer) and flush
// their routes on PeerDown (HandleWithdrawAll).
//
// RSFeed runs on the RX line's goroutine, so the route server sees the
// pipe's messages in stream order — a replayed MRT file produces the
// same RIB transitions on every run.
type RSFeed struct {
	// RS is the route server to feed. Required.
	RS *routeserver.RouteServer

	// Resync replays the full-table export owed to a peer whenever it
	// comes up (routeserver.ExportsTo), so a session reconnecting after
	// a flap converges without waiting for incremental churn. The burst
	// rides the TX line in sorted-prefix order, before any export the
	// peer's own first UPDATE triggers.
	Resync bool

	// OnPeerUp is called after a peer auto-registers (fabric ports, MAC
	// assignment, logging — whatever the embedder attaches to member
	// arrival). Optional.
	OnPeerUp func(peer string, as uint32, bgpID netip.Addr)
	// OnPeerDown is called after a departed peer's routes are flushed.
	// Optional.
	OnPeerDown func(peer string, err error)
	// PreUpdate runs before an UPDATE is applied (ixpd's open-IRR lab
	// registration hooks in here). Optional.
	PreUpdate func(peer string, u *bgp.Update)
	// AfterApply runs after each applied message, exports already
	// emitted (ixpd drives its per-event control tick from it). Optional.
	AfterApply func()
	// OnReject receives import-policy rejections. Optional.
	OnReject func(routeserver.Rejection)
	// OnError receives per-message apply errors (unknown peer, decode
	// trouble). Optional.
	OnError func(peer string, err error)
}

// Name implements Stage.
func (f *RSFeed) Name() string { return "rsfeed" }

// Attach implements Stage: registers the RX consumer.
func (f *RSFeed) Attach(p *Pipe) error {
	if f.RS == nil {
		return errors.New("RSFeed.RS is nil")
	}
	p.OnMsg(DirRX, func(m *Msg) bool {
		switch m.Event {
		case EventPeerUp:
			f.peerUp(p, m)
			return true
		case EventPeerDown:
			f.peerDown(p, m)
			return true
		}
		u := m.Update()
		if u == nil {
			return true
		}
		if f.PreUpdate != nil {
			f.PreUpdate(m.Peer, u)
		}
		exports, rejections, err := f.RS.HandleUpdateBatch(m.Peer, u)
		if err != nil {
			if f.OnError != nil {
				f.OnError(m.Peer, err)
			}
			return true
		}
		if f.OnReject != nil {
			for _, r := range rejections {
				f.OnReject(r)
			}
		}
		f.emit(p, exports)
		if f.AfterApply != nil {
			f.AfterApply()
		}
		return true
	})
	return nil
}

func (f *RSFeed) peerUp(p *Pipe, m *Msg) {
	cfg := routeserver.PeerConfig{Name: m.Peer, ASN: m.PeerAS}
	if open, ok := m.BGP.(*bgp.Open); ok {
		cfg.BGPID = open.BGPID
		if cfg.ASN == 0 {
			cfg.ASN = open.AS
		}
	}
	err := f.RS.AddPeer(cfg)
	if err != nil && !errors.Is(err, routeserver.ErrDuplicatePeer) {
		if f.OnError != nil {
			f.OnError(m.Peer, err)
		}
		return
	}
	if f.OnPeerUp != nil {
		f.OnPeerUp(cfg.Name, cfg.ASN, cfg.BGPID)
	}
	if f.Resync {
		ups, err := f.RS.ExportsTo(m.Peer)
		if err != nil {
			if f.OnError != nil {
				f.OnError(m.Peer, err)
			}
			return
		}
		for _, u := range ups {
			if p.Send(DirTX, &Msg{Peer: m.Peer, BGP: u}) != nil {
				return // pipe shutting down
			}
		}
	}
}

func (f *RSFeed) peerDown(p *Pipe, m *Msg) {
	exports, err := f.RS.HandleWithdrawAll(m.Peer)
	if err == nil {
		f.emit(p, exports)
	}
	if f.OnPeerDown != nil {
		f.OnPeerDown(m.Peer, m.Err)
	}
	if f.AfterApply != nil {
		f.AfterApply()
	}
}

// emit turns the route server's coalesced export batches into TX
// messages, one per (peer, UPDATE), preserving each peer's
// withdrawals-first batch order.
func (f *RSFeed) emit(p *Pipe, exports []routeserver.PeerUpdates) {
	for _, e := range exports {
		for _, u := range e.Updates {
			if p.Send(DirTX, &Msg{Peer: e.Peer, BGP: u}) != nil {
				return // pipe shutting down; remaining exports are moot
			}
		}
	}
}

// Run implements Stage: RSFeed is a pure consumer, so Run returns
// immediately — the pipe's RX line drives it.
func (f *RSFeed) Run() error { return nil }

// Stop implements Stage.
func (f *RSFeed) Stop() error { return nil }

// FeedRouteServer binds replayed records directly to a route server —
// the pipeless apply function engine replay drivers schedule on the
// control spine. Unknown peers auto-register from the record's
// attribution; onExports (optional) receives each applied record's
// coalesced export batches.
func FeedRouteServer(rs *routeserver.RouteServer, onExports func([]routeserver.PeerUpdates)) func(Record) error {
	return func(rec Record) error {
		u, ok := rec.Msg.(*bgp.Update)
		if !ok {
			return nil // OPENs, keepalives, notifications carry no routes
		}
		err := rs.AddPeer(routeserver.PeerConfig{Name: rec.Peer, ASN: rec.PeerAS})
		if err != nil && !errors.Is(err, routeserver.ErrDuplicatePeer) {
			return err
		}
		exports, _, err := rs.HandleUpdateBatch(rec.Peer, u)
		if err != nil {
			return err
		}
		if onExports != nil {
			onExports(exports)
		}
		return nil
	}
}
