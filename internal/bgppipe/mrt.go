package bgppipe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"stellar/internal/bgp"
)

// Record is one replayed routing event: a BGP message attributed to a
// peer at a capture timestamp. MRT and RIS-live scanners both produce
// Records, so one replay stage (and one engine driver) serves both.
type Record struct {
	Time   time.Time
	Peer   string // "AS<asn>" when the source names peers only by ASN
	PeerAS uint32
	PeerIP netip.Addr
	Msg    bgp.Message
}

// MRT record types and subtypes (RFC 6396 §4).
const (
	mrtTypeTableDumpV2 = 13
	mrtTypeBGP4MP      = 16
	mrtTypeBGP4MPET    = 17

	bgp4mpMessage    = 1 // 2-octet peer ASNs; skipped (embedded AS_PATHs are 2-octet too)
	bgp4mpMessageAS4 = 4

	tdv2PeerIndexTable = 1
	tdv2RIBIPv4Unicast = 2
	tdv2RIBIPv6Unicast = 4
)

// maxMRTRecord bounds one record's body; RFC 6396 has no limit but a
// fuzzer-supplied length must not drive allocation.
const maxMRTRecord = 1 << 20

// ErrMRTTruncated reports an MRT record cut short.
var ErrMRTTruncated = errors.New("bgppipe: truncated MRT record")

// mrtPeer is one PEER_INDEX_TABLE entry.
type mrtPeer struct {
	as    uint32
	ip    netip.Addr
	bgpID netip.Addr
}

// MRTScanner reads an MRT dump (RFC 6396) record by record, yielding
// the BGP messages it carries:
//
//   - BGP4MP / BGP4MP_ET MESSAGE_AS4 records yield the embedded
//     message verbatim, attributed to the record's peer.
//   - TABLE_DUMP_V2 RIB snapshots yield one synthesized UPDATE per
//     (prefix, peer) RIB entry — replaying a snapshot reconstructs the
//     table exactly as if every peer had announced its routes live.
//
// Records the route server cannot use (state changes, 2-octet-AS
// message records, non-unicast RIBs) are skipped, not errors: real
// collector dumps interleave them freely.
type MRTScanner struct {
	r       io.Reader
	peers   []mrtPeer
	pending []Record // expansion of a multi-entry TABLE_DUMP_V2 record
}

// NewMRTScanner scans the MRT stream r.
func NewMRTScanner(r io.Reader) *MRTScanner {
	return &MRTScanner{r: r}
}

// Next returns the next usable record, io.EOF at end of stream.
func (s *MRTScanner) Next() (Record, error) {
	for {
		if len(s.pending) > 0 {
			rec := s.pending[0]
			s.pending = s.pending[1:]
			return rec, nil
		}
		var hdr [12]byte
		if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, ErrMRTTruncated
			}
			return Record{}, err
		}
		ts := binary.BigEndian.Uint32(hdr[0:4])
		typ := binary.BigEndian.Uint16(hdr[4:6])
		sub := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > maxMRTRecord {
			return Record{}, fmt.Errorf("bgppipe: MRT record of %d bytes exceeds limit", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(s.r, body); err != nil {
			return Record{}, ErrMRTTruncated
		}
		t := time.Unix(int64(ts), 0).UTC()

		switch typ {
		case mrtTypeBGP4MP, mrtTypeBGP4MPET:
			if typ == mrtTypeBGP4MPET {
				if len(body) < 4 {
					return Record{}, ErrMRTTruncated
				}
				us := binary.BigEndian.Uint32(body[0:4])
				t = t.Add(time.Duration(us) * time.Microsecond)
				body = body[4:]
			}
			if sub != bgp4mpMessageAS4 {
				continue // state changes and 2-octet-AS messages
			}
			rec, err := parseBGP4MPMessageAS4(t, body)
			if err != nil {
				return Record{}, err
			}
			return rec, nil
		case mrtTypeTableDumpV2:
			switch sub {
			case tdv2PeerIndexTable:
				peers, err := parsePeerIndexTable(body)
				if err != nil {
					return Record{}, err
				}
				s.peers = peers
			case tdv2RIBIPv4Unicast:
				recs, err := s.parseRIBEntries(t, body, bgp.AFIIPv4)
				if err != nil {
					return Record{}, err
				}
				s.pending = recs
			case tdv2RIBIPv6Unicast:
				recs, err := s.parseRIBEntries(t, body, bgp.AFIIPv6)
				if err != nil {
					return Record{}, err
				}
				s.pending = recs
			}
		}
	}
}

// parseBGP4MPMessageAS4 decodes a BGP4MP MESSAGE_AS4 body: peer AS,
// local AS, interface index, AFI, both addresses, then the embedded
// BGP message.
func parseBGP4MPMessageAS4(t time.Time, body []byte) (Record, error) {
	if len(body) < 12 {
		return Record{}, ErrMRTTruncated
	}
	peerAS := binary.BigEndian.Uint32(body[0:4])
	afi := binary.BigEndian.Uint16(body[10:12])
	body = body[12:]
	addrLen := 4
	if afi == uint16(bgp.AFIIPv6) {
		addrLen = 16
	}
	if len(body) < 2*addrLen {
		return Record{}, ErrMRTTruncated
	}
	var peerIP netip.Addr
	if addrLen == 4 {
		peerIP = netip.AddrFrom4([4]byte(body[0:4]))
	} else {
		peerIP = netip.AddrFrom16([16]byte(body[0:16]))
	}
	body = body[2*addrLen:]
	msg, _, err := bgp.Unmarshal(body, nil)
	if err != nil {
		return Record{}, fmt.Errorf("bgppipe: embedded BGP message: %w", err)
	}
	return Record{
		Time:   t,
		Peer:   fmt.Sprintf("AS%d", peerAS),
		PeerAS: peerAS,
		PeerIP: peerIP,
		Msg:    msg,
	}, nil
}

// parsePeerIndexTable decodes the TABLE_DUMP_V2 PEER_INDEX_TABLE that
// subsequent RIB records index into.
func parsePeerIndexTable(body []byte) ([]mrtPeer, error) {
	if len(body) < 6 {
		return nil, ErrMRTTruncated
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:6]))
	body = body[6:]
	if len(body) < viewLen+2 {
		return nil, ErrMRTTruncated
	}
	body = body[viewLen:]
	count := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	peers := make([]mrtPeer, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 5 {
			return nil, ErrMRTTruncated
		}
		pt := body[0]
		bgpID := netip.AddrFrom4([4]byte(body[1:5]))
		body = body[5:]
		addrLen, asLen := 4, 2
		if pt&0x01 != 0 {
			addrLen = 16
		}
		if pt&0x02 != 0 {
			asLen = 4
		}
		if len(body) < addrLen+asLen {
			return nil, ErrMRTTruncated
		}
		var ip netip.Addr
		if addrLen == 4 {
			ip = netip.AddrFrom4([4]byte(body[0:4]))
		} else {
			ip = netip.AddrFrom16([16]byte(body[0:16]))
		}
		body = body[addrLen:]
		var as uint32
		if asLen == 2 {
			as = uint32(binary.BigEndian.Uint16(body[0:2]))
		} else {
			as = binary.BigEndian.Uint32(body[0:4])
		}
		body = body[asLen:]
		peers = append(peers, mrtPeer{as: as, ip: ip, bgpID: bgpID})
	}
	return peers, nil
}

// parseRIBEntries expands one RIB_IPVx_UNICAST record into one
// synthesized UPDATE per entry.
func (s *MRTScanner) parseRIBEntries(t time.Time, body []byte, afi bgp.AFI) ([]Record, error) {
	if len(body) < 5 {
		return nil, ErrMRTTruncated
	}
	bits := int(body[4])
	body = body[5:]
	maxBits := 32
	if afi == bgp.AFIIPv6 {
		maxBits = 128
	}
	if bits > maxBits {
		return nil, bgp.ErrBadPrefix
	}
	nBytes := (bits + 7) / 8
	if len(body) < nBytes+2 {
		return nil, ErrMRTTruncated
	}
	var addr netip.Addr
	if afi == bgp.AFIIPv4 {
		var a [4]byte
		copy(a[:], body[:nBytes])
		addr = netip.AddrFrom4(a)
	} else {
		var a [16]byte
		copy(a[:], body[:nBytes])
		addr = netip.AddrFrom16(a)
	}
	prefix := netip.PrefixFrom(addr, bits)
	if prefix != prefix.Masked() {
		return nil, bgp.ErrBadPrefix
	}
	body = body[nBytes:]
	count := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]

	recs := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 8 {
			return nil, ErrMRTTruncated
		}
		peerIdx := int(binary.BigEndian.Uint16(body[0:2]))
		origTime := binary.BigEndian.Uint32(body[2:6])
		attrLen := int(binary.BigEndian.Uint16(body[6:8]))
		body = body[8:]
		if len(body) < attrLen {
			return nil, ErrMRTTruncated
		}
		attrBlock := body[:attrLen]
		body = body[attrLen:]
		if peerIdx >= len(s.peers) {
			return nil, fmt.Errorf("bgppipe: RIB entry references peer %d of %d", peerIdx, len(s.peers))
		}
		peer := s.peers[peerIdx]
		u, err := ribEntryUpdate(attrBlock, prefix, afi)
		if err != nil {
			return nil, err
		}
		et := t
		if origTime != 0 {
			et = time.Unix(int64(origTime), 0).UTC()
		}
		recs = append(recs, Record{
			Time:   et,
			Peer:   fmt.Sprintf("AS%d", peer.as),
			PeerAS: peer.as,
			PeerIP: peer.ip,
			Msg:    u,
		})
	}
	return recs, nil
}

// ribEntryUpdate synthesizes the UPDATE a RIB entry is a snapshot of.
// TABLE_DUMP_V2 stores MP_REACH_NLRI abbreviated — next-hop length and
// next hop only (RFC 6396 §4.3.4) — so that attribute is split off and
// reconstructed around the record's prefix; everything else parses with
// the standard wire decoder.
func ribEntryUpdate(attrBlock []byte, prefix netip.Prefix, afi bgp.AFI) (*bgp.Update, error) {
	std, mpNextHop, err := splitTDV2MPReach(attrBlock)
	if err != nil {
		return nil, err
	}
	attrs, err := bgp.ParseAttrs(std, nil)
	if err != nil {
		return nil, err
	}
	u := &bgp.Update{Attrs: attrs}
	if afi == bgp.AFIIPv4 {
		if mpNextHop.IsValid() && !u.Attrs.NextHop.IsValid() {
			u.Attrs.NextHop = mpNextHop
		}
		u.NLRI = []bgp.PathPrefix{{Prefix: prefix}}
	} else {
		u.Attrs.MPReach = &bgp.MPReach{
			AFI:     bgp.AFIIPv6,
			SAFI:    bgp.SAFIUnicast,
			NextHop: mpNextHop,
			NLRI:    []bgp.PathPrefix{{Prefix: prefix}},
		}
	}
	return u, nil
}

// splitTDV2MPReach walks a raw attribute block, removing any MP_REACH
// attribute (type 14) and returning the remaining block plus the next
// hop decoded from the abbreviated form.
func splitTDV2MPReach(data []byte) (std []byte, nextHop netip.Addr, err error) {
	std = make([]byte, 0, len(data))
	for len(data) > 0 {
		if len(data) < 3 {
			return nil, netip.Addr{}, ErrMRTTruncated
		}
		flags, typ := data[0], data[1]
		hdrLen := 3
		var length int
		if flags&0x10 != 0 { // extended length
			if len(data) < 4 {
				return nil, netip.Addr{}, ErrMRTTruncated
			}
			length = int(binary.BigEndian.Uint16(data[2:4]))
			hdrLen = 4
		} else {
			length = int(data[2])
		}
		if len(data) < hdrLen+length {
			return nil, netip.Addr{}, ErrMRTTruncated
		}
		if typ != 14 {
			std = append(std, data[:hdrLen+length]...)
		} else {
			val := data[hdrLen : hdrLen+length]
			if len(val) < 1 || len(val) < 1+int(val[0]) {
				return nil, netip.Addr{}, ErrMRTTruncated
			}
			switch val[0] {
			case 4:
				nextHop = netip.AddrFrom4([4]byte(val[1:5]))
			case 16, 32: // link-local pair: keep the global address
				nextHop = netip.AddrFrom16([16]byte(val[1:17]))
			}
		}
		data = data[hdrLen+length:]
	}
	return std, nextHop, nil
}

// AppendMRTMessage appends one BGP4MP MESSAGE_AS4 record carrying msg
// to dst — the writer half used to build replay fixtures and fuzz
// corpora from in-memory messages.
func AppendMRTMessage(dst []byte, t time.Time, peerAS, localAS uint32, peerIP, localIP netip.Addr, msg bgp.Message, opts *bgp.Options) ([]byte, error) {
	wire, err := bgp.Marshal(msg, opts)
	if err != nil {
		return nil, err
	}
	if peerIP.Is4() != localIP.Is4() {
		return nil, errors.New("bgppipe: MRT peer and local address families differ")
	}
	afi := bgp.AFIIPv4
	addrLen := 4
	if !peerIP.Is4() {
		afi = bgp.AFIIPv6
		addrLen = 16
	}
	bodyLen := 12 + 2*addrLen + len(wire)

	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(t.Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], mrtTypeBGP4MP)
	binary.BigEndian.PutUint16(hdr[6:8], bgp4mpMessageAS4)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	dst = append(dst, hdr[:]...)

	var fixed [12]byte
	binary.BigEndian.PutUint32(fixed[0:4], peerAS)
	binary.BigEndian.PutUint32(fixed[4:8], localAS)
	binary.BigEndian.PutUint16(fixed[10:12], uint16(afi))
	dst = append(dst, fixed[:]...)
	if addrLen == 4 {
		p, l := peerIP.As4(), localIP.As4()
		dst = append(dst, p[:]...)
		dst = append(dst, l[:]...)
	} else {
		p, l := peerIP.As16(), localIP.As16()
		dst = append(dst, p[:]...)
		dst = append(dst, l[:]...)
	}
	return append(dst, wire...), nil
}
