package bgppipe

import (
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"stellar/internal/bgp"
	"stellar/internal/bgpsession"
	"stellar/internal/routeserver"
)

// TestSendAfterStopReturnsErrClosed is the regression test for the
// stopped-pipe send: a stage emitting onto a retired line must get
// ErrClosed promptly, not block forever on the bounded channel.
func TestSendAfterStopReturnsErrClosed(t *testing.T) {
	p := New(Options{Buffer: 1})
	p.Start()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Two sends: even with Buffer 1 neither may block.
		for i := 0; i < 2; i++ {
			if err := p.Send(DirRX, &Msg{BGP: &bgp.Keepalive{}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Send on stopped pipe = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send on stopped pipe blocked")
	}
	if err := p.Send(DirTX, &Msg{BGP: &bgp.Keepalive{}}); err != ErrClosed {
		t.Fatalf("TX Send on stopped pipe = %v, want ErrClosed", err)
	}
}

// TestSendDuringShutdownNeverPanics hammers Send concurrently with the
// pipe's retirement; the old close(chan)-based shutdown panicked here.
func TestSendDuringShutdownNeverPanics(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := New(Options{Buffer: 2})
		p.OnMsg(DirRX, func(m *Msg) bool { return true })
		p.Attach(&srcStage{n: 5})
		p.Start()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if p.Send(DirRX, &Msg{BGP: &bgp.Keepalive{}}) == ErrClosed {
						return
					}
				}
			}()
		}
		p.Stop()
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// TestReinjectOrdering pins Reinject semantics: a reinjected message is
// processed by the full handler chain after the in-flight message, is
// marked Reinjected, and filters skipping Reinjected messages never
// re-duplicate a duplicate.
func TestReinjectOrdering(t *testing.T) {
	p := New(Options{Buffer: 8})
	var mu sync.Mutex
	var seen []string
	// Handler 1: duplicate every original keepalive once.
	p.OnMsg(DirRX, func(m *Msg) bool {
		if !m.Reinjected {
			p.Reinject(DirRX, &Msg{Peer: m.Peer, BGP: m.BGP})
		}
		return true
	})
	// Handler 2: record arrival order.
	p.OnMsg(DirRX, func(m *Msg) bool {
		mu.Lock()
		tag := m.Peer
		if m.Reinjected {
			tag += "+dup"
		}
		seen = append(seen, tag)
		mu.Unlock()
		return true
	})
	p.Attach(&namedSrc{peers: []string{"a", "b"}})
	p.Start()
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a", "a+dup", "b", "b+dup"}
	if len(seen) != len(want) {
		t.Fatalf("seen %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order %v, want %v", seen, want)
		}
	}
}

// namedSrc pushes one keepalive per listed peer.
type namedSrc struct {
	peers []string
	pipe  *Pipe
}

func (s *namedSrc) Name() string         { return "named-src" }
func (s *namedSrc) Attach(p *Pipe) error { s.pipe = p; return nil }
func (s *namedSrc) Stop() error          { return nil }
func (s *namedSrc) Run() error {
	for _, peer := range s.peers {
		if err := s.pipe.Send(DirRX, &Msg{Peer: peer, BGP: &bgp.Keepalive{}}); err != nil {
			return err
		}
	}
	return nil
}

// TestSpeakerReconnectWithResync flaps a live session server-side
// (Listen.Kick) and verifies the reconnect-enabled speaker comes back
// and receives the full-table resync through RSFeed.
func TestSpeakerReconnectWithResync(t *testing.T) {
	rs := routeserver.New(routeserver.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := New(Options{})
	lst := NewListen(ln, bgpsession.Config{
		LocalAS: 6695, BGPID: netip.MustParseAddr("80.81.192.1"),
	})
	server.Attach(lst)
	server.Attach(&RSFeed{RS: rs, Resync: true})
	server.Start()
	defer func() {
		server.Stop()
		if err := server.Wait(); err != nil {
			t.Errorf("server pipe: %v", err)
		}
	}()

	addr := ln.Addr().String()
	announcer := dialClient(t, addr, 64512, "10.0.0.12")
	defer announcer.close(t)

	prefix := netip.MustParsePrefix("203.0.113.0/24")
	announcer.pipe.Send(DirTX, &Msg{BGP: &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{64512}}},
			NextHop: netip.MustParseAddr("80.81.192.12"),
		},
		NLRI: []bgp.PathPrefix{{Prefix: prefix}},
	}})

	// The observer joins AFTER the announcement: its very first table
	// view arrives via resync, pinning ExportsTo end to end.
	sp, err := Dial(addr, bgpsession.Config{
		LocalAS: 64513, BGPID: netip.MustParseAddr("10.0.0.13"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Reconnect = Reconnect{Enabled: true, BaseDelay: 50 * time.Millisecond}
	observer := &clientPipe{
		pipe:    New(Options{}),
		speaker: sp,
		up:      make(chan *Msg, 4),
		updates: make(chan *bgp.Update, 16),
	}
	observer.pipe.OnMsg(DirRX, func(m *Msg) bool {
		switch {
		case m.Event == EventPeerUp:
			select {
			case observer.up <- m:
			default:
			}
		case m.Update() != nil:
			observer.updates <- m.Update()
		}
		return true
	})
	observer.pipe.Attach(sp)
	observer.pipe.Start()
	defer observer.close(t)

	waitExport := func(phase string) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case u := <-observer.updates:
				if len(u.NLRI) == 1 && u.NLRI[0].Prefix == prefix {
					return
				}
			case <-deadline:
				t.Fatalf("%s: no resync export within deadline", phase)
			}
		}
	}
	select {
	case <-observer.up:
	case <-time.After(3 * time.Second):
		t.Fatal("no initial PeerUp")
	}
	waitExport("initial join")

	// Flap: the server kicks the session; the speaker must redial,
	// re-establish, and receive the table again.
	for i := 0; i < 50; i++ {
		if lst.Kick("AS64513") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	select {
	case <-observer.up:
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerUp after flap (reconnect failed)")
	}
	waitExport("after flap")
}

// TestShutdownGoroutineLeaks runs full pipe lifecycles (including a live
// TCP listen/speaker pair) and checks the goroutine count returns to its
// baseline — the shutdown paths leak nothing.
func TestShutdownGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		rs := routeserver.New(routeserver.Config{ASN: 6695})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		server := New(Options{})
		server.Attach(NewListen(ln, bgpsession.Config{
			LocalAS: 6695, BGPID: netip.MustParseAddr("80.81.192.1"),
		}))
		server.Attach(&RSFeed{RS: rs, Resync: true})
		server.Start()
		client := dialClient(t, ln.Addr().String(), 64512, "10.0.0.12")
		client.close(t)
		server.Stop()
		if err := server.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Session goroutines wind down asynchronously after Wait; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after shutdown\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
